// scenario_run: load a .scn file, run it, print (and optionally save) the
// deterministic metrics JSON.
//
//   scenario_run --scenario=scenarios/fat_tree_1k.scn            # as configured
//   scenario_run --scenario=... --shards=16 --duration=0.05      # overrides
//   scenario_run --scenario=... --smoke                          # CI gate
//   scenario_run --scenario=... --json=BENCH_scenario.json
//
// --smoke is the CI scenario gate: after the run it asserts that the
// workload actually moved traffic (delivered packets > 0) and that the
// shard-local allocator never fell off its fast path (pool spills == 0),
// exiting 1 with a diagnostic otherwise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench/harness.hpp"
#include "mem/pool.hpp"
#include "scenario/scenario.hpp"

using namespace asp;

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(
      argc, argv, {}, {"--scenario=", "--smoke", "--json="});
  opts.shards = 0;  // default: take the shard count from the .scn [run] section

  std::string path;
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scenario=", 11) == 0) path = a + 11;
    else if (std::strncmp(a, "--json=", 7) == 0) json_path = a + 7;
    else if (std::strcmp(a, "--smoke") == 0) smoke = true;
    else if (std::strncmp(a, "--shards=", 9) == 0) opts.shards = std::atoi(a + 9);
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: scenario_run --scenario=FILE.scn "
                 "[--shards=N] [--duration=SECS] [--smoke] [--json=OUT]\n");
    return 2;
  }

  scenario::ScenarioConfig cfg;
  std::string error;
  if (!scenario::load_scn_file(path, cfg, error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  if (opts.duration_s > 0) {
    cfg.run.duration = static_cast<net::SimTime>(opts.duration_s * 1e9);
  }

  scenario::Scenario sc(cfg);
  std::printf("scenario %s: %zu nodes (%zu hosts, %zu routers), digest %016llx\n",
              cfg.name.c_str(), sc.topology().node_count(),
              sc.topology().hosts.size(), sc.topology().routers.size(),
              static_cast<unsigned long long>(
                  scenario::topology_digest(sc.network())));

  const scenario::ScenarioMetrics m = sc.run(opts.shards);
  const std::string json = m.to_json();
  std::printf("shards=%d islands=%d\n%s\n", m.shards, m.islands, json.c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json << "\n";
  }

  if (smoke) {
    const mem::PoolTotals pools = mem::total_pool_stats();
    if (m.delivered_packets == 0) {
      std::fprintf(stderr, "smoke FAIL: no packets delivered\n");
      return 1;
    }
    if (pools.spills != 0) {
      std::fprintf(stderr, "smoke FAIL: %llu pool spills (expected 0)\n",
                   static_cast<unsigned long long>(pools.spills));
      return 1;
    }
    // With a cache tier configured, the run must actually hit in it — a
    // scenario whose edge caches never serve is a miswired scenario.
    if (cfg.asp_cache != "none" && m.cache_hits == 0) {
      std::fprintf(stderr, "smoke FAIL: cache tier configured (%s) but 0 hits\n",
                   cfg.asp_cache.c_str());
      return 1;
    }
    std::printf("smoke OK: %llu packets delivered, %llu cache hits, "
                "0 pool spills\n",
                static_cast<unsigned long long>(m.delivered_packets),
                static_cast<unsigned long long>(m.cache_hits));
  }
  return 0;
}
