// A multipoint MPEG service from a point-to-point server (paper §3.3).
//
// Four clients on one segment watch the same movie. The first opens a normal
// connection; the monitor ASP notices it; the other three ask the monitor,
// install a capture ASP and ride the existing stream. The server never
// learns there was more than one viewer.
#include <cstdio>

#include "apps/mpeg/experiment.hpp"
#include "bench/harness.hpp"

using namespace asp::apps;

int main(int argc, char** argv) {
  asp::bench::Options opts =
      asp::bench::parse_options(argc, argv, {.duration_s = 8.0});
  std::printf("--- without ASPs: every client opens its own stream ---\n");
  MpegExperiment base(/*sharing=*/false, 4);
  MpegRunResult r0 = base.run(opts.duration_s);
  std::printf("server streams: %d, server egress: %.2f Mb/s\n", r0.server_streams,
              r0.server_egress_mbps);

  std::printf("\n--- with monitor + capture ASPs ---\n");
  MpegExperiment shared(/*sharing=*/true, 4);
  MpegRunResult r1 = shared.run(opts.duration_s);
  std::printf("server streams: %d, server egress: %.2f Mb/s\n", r1.server_streams,
              r1.server_egress_mbps);
  std::printf("clients playing: %d (of which %d fed by the capture ASP)\n",
              r1.clients_playing, r1.clients_sharing);
  std::printf("client receive rates: %.2f .. %.2f Mb/s (full stream is ~0.8)\n",
              r1.min_client_mbps, r1.max_client_mbps);
  std::printf("\nthe video server still believes it has exactly one viewer.\n");
  return 0;
}
