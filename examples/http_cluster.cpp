// An extensible HTTP server with load balancing (paper §3.2).
//
// Two stock web servers become one logical server behind a PLAN-P gateway:
// clients talk to the virtual address, the ASP routes each connection to a
// physical server and hides the cluster on the way back.
#include <cstdio>

#include "apps/http/experiment.hpp"
#include "bench/harness.hpp"
#include "net/exec.hpp"

using namespace asp::apps;

int main(int argc, char** argv) {
  // --shards=N runs the simulation on the sharded parallel executor (each
  // client machine is its own island); results are bit-identical to --shards=1.
  asp::bench::Options run_opts =
      asp::bench::parse_options(argc, argv, {.duration_s = 15.0});
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.client_machines = 4;
  opts.processes_per_machine = 3;
  opts.trace_accesses = 20'000;

  HttpExperiment exp(opts);
  std::unique_ptr<asp::net::ParallelExecutor> exec;
  if (run_opts.shards > 1) {
    exec = std::make_unique<asp::net::ParallelExecutor>(exp.network(), run_opts.shards);
    std::printf("parallel executor: %d shard(s), %d island(s)\n", exec->shard_count(),
                exec->island_count());
  }
  std::printf("running %.0f s of trace replay against the virtual server...\n",
              run_opts.duration_s);
  HttpRunResult r = exp.run(run_opts.duration_s);

  std::printf("\ncompleted requests : %llu (%.1f requests/s)\n",
              static_cast<unsigned long long>(r.completed), r.requests_per_sec);
  std::printf("failed requests    : %llu\n", static_cast<unsigned long long>(r.failed));
  std::printf("mean latency       : %.1f ms\n", r.mean_latency_ms);
  std::printf("server 0 served    : %llu\n",
              static_cast<unsigned long long>(exp.servers()[0]->requests_served()));
  std::printf("server 1 served    : %llu\n",
              static_cast<unsigned long long>(exp.servers()[1]->requests_served()));

  double s0 = static_cast<double>(exp.servers()[0]->requests_served());
  double s1 = static_cast<double>(exp.servers()[1]->requests_served());
  std::printf("balance            : %.1f%% / %.1f%%\n", 100 * s0 / (s0 + s1),
              100 * s1 / (s0 + s1));
  std::printf("\nthe clients only ever saw the virtual address; the ASP did the rest.\n");
  return 0;
}
