// ASP deployment over the network itself (paper §5: protocol management).
//
// A management station pushes the audio-adaptation ASP to two routers it has
// never touched, watches one deployment be rejected by the verification
// gate, and overrides with an authenticated push — all over simulated TCP.
#include <cstdio>

#include "apps/asp_sources.hpp"
#include "net/network.hpp"
#include "runtime/deploy.hpp"

using namespace asp;

int main() {
  net::Network network;
  net::Node& admin = network.add_node("admin");
  net::Node& r1 = network.add_router("router1");
  net::Node& r2 = network.add_router("router2");
  network.link(admin, net::ip("10.0.1.1"), r1, net::ip("10.0.1.254"), 10e6,
               net::millis(1));
  network.link(r1, net::ip("10.0.2.1"), r2, net::ip("10.0.2.254"), 10e6,
               net::millis(2));
  admin.routes().add_default(0);
  r1.routes().add_default(1);  // towards r2
  r2.routes().add_default(0);  // replies go back through r1

  runtime::AspRuntime rt1(r1), rt2(r2);
  runtime::DeployServer daemon1(rt1), daemon2(rt2);
  runtime::Deployer deployer(admin);

  auto report = [](const char* what) {
    return [what](const runtime::DeployResult& r) {
      if (r.ok) {
        std::printf("%-34s -> OK %d channel(s), codegen %.1f us\n", what,
                    r.channels, r.codegen_us);
      } else {
        std::printf("%-34s -> ERR %s\n", what, r.error.c_str());
      }
    };
  };

  // 1. Push the verified audio router ASP to both routers.
  deployer.deploy(r1.addr(), apps::audio_router_asp(), report("audio ASP to router1"));
  deployer.deploy(net::ip("10.0.2.254"), apps::audio_router_asp(),
                  report("audio ASP to router2"));
  network.run_until(net::seconds(2));

  // 2. A buggy ping-pong protocol is stopped by the gate...
  const char* ping_pong = R"(
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  if ipDst(#1 p) = 10.0.0.1 then
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))
  else
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))
)";
  deployer.deploy(r1.addr(), ping_pong, report("ping-pong (unauthenticated)"));
  network.run_until(net::seconds(4));

  // 3. ...unless the administrator authenticates (paper 2.1's escape hatch).
  runtime::Deployer::Options auth;
  auth.authenticated = true;
  deployer.deploy(r1.addr(), ping_pong, report("ping-pong (authenticated)"), auth);
  network.run_until(net::seconds(6));

  std::printf("\nrouter1: %d deployments, %d rejections\n", daemon1.deployments(),
              daemon1.rejections());
  std::printf("router2: %d deployments, %d rejections\n", daemon2.deployments(),
              daemon2.rejections());
  return 0;
}
