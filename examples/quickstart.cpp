// Quickstart: write an ASP, verify it, JIT it into a router, watch it work.
//
// Builds a 3-node network (client -- router -- server), downloads a tiny
// port-redirect ASP into the router, and shows the full pipeline: parse ->
// typecheck -> safety analyses -> run-time specialization -> execution.
#include <cstdio>

#include "net/network.hpp"
#include "runtime/engine.hpp"

using namespace asp;

int main() {
  // 1. The protocol, in PLAN-P. It redirects UDP port 7000 to port 7777 and
  //    forwards everything else untouched.
  const std::string source = R"(
-- my first ASP: redirect UDP port 7000 to 7777
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  if udpDst(#2 p) = 7000 then
    (OnRemote(network, (#1 p, udpDstSet(#2 p, 7777), #3 p)); (ps + 1, ss))
  else
    (OnRemote(network, p); (ps, ss))
)";

  // 2. A small network: client -- router -- server.
  net::Network network;
  net::Node& client = network.add_node("client");
  net::Node& router = network.add_router("router");
  net::Node& server = network.add_node("server");
  network.link(client, net::ip("10.0.1.1"), router, net::ip("10.0.1.254"), 10e6,
               net::millis(1));
  network.link(router, net::ip("10.0.2.254"), server, net::ip("10.0.2.1"), 10e6,
               net::millis(1));
  client.routes().add_default(0);
  server.routes().add_default(0);

  // 3. Download the ASP into the router. install() runs the whole pipeline
  //    and throws if the program fails type checking or the safety gate.
  runtime::AspRuntime rt(router);
  planp::Protocol& proto = rt.install(source);
  const planp::AnalysisReport& report = proto.report();
  std::printf("verification: termination=%s delivery=%s duplication=%s (%d states)\n",
              report.global_termination ? "proved" : "unproved",
              report.guaranteed_delivery ? "proved" : "unproved",
              report.linear_duplication ? "proved" : "unproved",
              report.states_explored);
  if (const planp::CodegenStats* s = proto.codegen_stats()) {
    std::printf("JIT: %d source lines -> %zu templates in %.3f ms\n",
                s->source_lines, s->output_instrs, s->generation_ms);
  }

  // 4. Applications on the end hosts: one listener on the original port,
  //    one on the redirected port.
  int at_7000 = 0, at_7777 = 0;
  net::UdpSocket original(server, 7000, [&](const net::Packet&) { ++at_7000; });
  net::UdpSocket redirected(server, 7777, [&](const net::Packet&) { ++at_7777; });

  net::UdpSocket sender(client, 9999, nullptr);
  for (int i = 0; i < 5; ++i) {
    sender.send_to(server.addr(), 7000, net::bytes_of("hello " + std::to_string(i)));
  }
  sender.send_to(server.addr(), 8888, net::bytes_of("other traffic"));

  network.run();

  std::printf("packets at port 7000: %d (expected 0 - redirected)\n", at_7000);
  std::printf("packets at port 7777: %d (expected 5)\n", at_7777);
  asp::runtime::RuntimeStats stats = rt.stats();
  std::printf("ASP handled %llu packets, passed %llu through\n",
              static_cast<unsigned long long>(stats.packets_handled),
              static_cast<unsigned long long>(stats.packets_passed));
  return at_7777 == 5 ? 0 : 1;
}
