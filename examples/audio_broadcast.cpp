// Audio broadcasting with in-router bandwidth adaptation (paper §3.1).
//
// Runs the Figure 5 topology for 60 s: the segment is quiet, then loaded at
// t=15 s and relieved at t=40 s. Watch the router degrade the stream from
// 16-bit stereo to 8-bit mono and back — with no change to the audio
// source or player.
#include <cstdio>

#include "apps/audio/experiment.hpp"
#include "bench/harness.hpp"
#include "net/exec.hpp"

using namespace asp::apps;

int main(int argc, char** argv) {
  // --shards=N runs the simulation on the sharded parallel executor (N capped
  // to the topology's 2 islands); results are bit-identical to --shards=1.
  asp::bench::Options opts =
      asp::bench::parse_options(argc, argv, {.duration_s = 60.0});
  AudioExperiment exp(/*adaptation=*/true);
  std::unique_ptr<asp::net::ParallelExecutor> exec;
  if (opts.shards > 1) {
    exec = std::make_unique<asp::net::ParallelExecutor>(exp.network(), opts.shards);
    std::printf("parallel executor: %d shard(s), %d island(s)\n", exec->shard_count(),
                exec->island_count());
  }
  std::vector<LoadStep> schedule = {
      {0.0, 0.0},     // quiet
      {15.0, 9.7e6},  // heavy competing traffic
      {40.0, 2.0e6},  // load mostly gone
  };

  std::printf("%6s %14s %10s  %s\n", "t(s)", "audio(kb/s)", "level", "quality");
  AudioRunResult r = exp.run(opts.duration_s, schedule, 2.0);
  const char* names[] = {"16-bit stereo", "16-bit mono", "8-bit mono"};
  for (const AudioSample& s : r.series) {
    int level = s.level < 0 ? 0 : s.level;
    std::printf("%6.0f %14.1f %10d  %s\n", s.t_sec, s.audio_kbps, s.level,
                names[level]);
  }
  std::printf("\nplayback: %llu frames received, %d silent periods\n",
              static_cast<unsigned long long>(r.frames_received), r.silent_periods);
  return 0;
}
