// Tier-1 coverage for the scenario layer (DESIGN.md §6g): generator
// determinism, island structure, the .scn parser's reject-typos policy, the
// serial-vs-sharded determinism gate on the checked-in 1k-node scenario, and
// the tx_time rounding regression that the 10^5-user workloads exposed.
#include <string>

#include <gtest/gtest.h>

#include "net/exec.hpp"
#include "net/network.hpp"
#include "net/time.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scn.hpp"
#include "scenario/topology.hpp"

namespace asp::scenario {
namespace {

// ---------------------------------------------------------------------------
// tx_time rounding (regression: truncation gave 0 ns for small frames on
// fast links, stacking every event of an aggregated flow on one timestamp).

TEST(TxTime, NeverZeroForNonemptyFrame) {
  // 64 B at 1 Tb/s is 0.512 ns — must round UP to 1, not down to 0.
  EXPECT_EQ(net::tx_time(64, 1e12), 1u);
  EXPECT_EQ(net::tx_time(1, 1e18), 1u);
}

TEST(TxTime, RoundsUpFractionalResults) {
  // 100 B at 1 Gb/s = 800 ns exactly; 101 B = 808 ns exactly.
  EXPECT_EQ(net::tx_time(100, 1e9), 800u);
  // 100 B at 3 Gb/s = 266.67 ns -> 267.
  EXPECT_EQ(net::tx_time(100, 3e9), 267u);
}

TEST(TxTime, ExactAndEmptyCasesUnchanged) {
  EXPECT_EQ(net::tx_time(0, 1e9), 0u);          // nothing to serialize
  EXPECT_EQ(net::tx_time(1500, 1e9), 12000u);   // exact: no spurious +1
}

// ---------------------------------------------------------------------------
// Generator determinism: same (seed, params) => byte-identical topology,
// witnessed by the structural digest plus node/media counts.

TEST(TopologyGen, SameParamsSameDigest) {
  TopologyParams p;
  p.kind = "fat_tree";
  p.k = 4;
  p.hosts_per_edge = 2;

  net::Network a, b;
  BuiltTopology ta = build_topology(a, p);
  BuiltTopology tb = build_topology(b, p);
  EXPECT_EQ(ta.node_count(), tb.node_count());
  EXPECT_EQ(topology_digest(a), topology_digest(b));
}

TEST(TopologyGen, SeedChangesAsHierarchyDigest) {
  TopologyParams p;
  p.kind = "as_hierarchy";
  p.t1_count = 3;
  p.t2_per_t1 = 2;
  p.seed = 1;

  net::Network a, b;
  build_topology(a, p);
  p.seed = 2;  // different multihoming choices
  build_topology(b, p);
  EXPECT_NE(topology_digest(a), topology_digest(b));
}

TEST(TopologyGen, FatTreeCounts) {
  TopologyParams p;
  p.kind = "fat_tree";
  p.k = 4;
  p.hosts_per_edge = 2;  // 4 pods x 2 edges x 2 hosts = 16 hosts, 20 switches

  net::Network net;
  BuiltTopology t = build_topology(net, p);
  EXPECT_EQ(t.hosts.size(), 16u);
  EXPECT_EQ(t.routers.size(), 20u);
  EXPECT_EQ(t.top_routers.size(), 4u);  // (k/2)^2 cores
  // Access media touch hosts; everything else is fabric.
  EXPECT_EQ(t.access_media.size(), 16u);
  EXPECT_EQ(t.fabric_media.size(), 8u * 2 + 8u * 2);  // edge-agg + agg-core
}

TEST(TopologyGen, RejectsBadParameters) {
  net::Network net;
  TopologyParams p;
  p.kind = "fat_tree";
  p.k = 5;  // odd
  EXPECT_THROW(build_topology(net, p), std::invalid_argument);
  p.k = 4;
  p.kind = "no_such_kind";
  EXPECT_THROW(build_topology(net, p), std::invalid_argument);
}

// Every generated fabric must decompose for the partitioner: p2p links with
// nonzero delay are cuttable, so even the small instances split into many
// islands (>= the host count, since every access link is also p2p).
TEST(TopologyGen, PartitionsIntoManyIslands) {
  TopologyParams p;
  p.kind = "fat_tree";
  p.k = 4;
  p.hosts_per_edge = 2;
  net::Network net;
  BuiltTopology t = build_topology(net, p);
  net::ParallelExecutor exec(net, 4);
  EXPECT_GE(exec.island_count(), static_cast<int>(t.hosts.size()));
  EXPECT_EQ(exec.shard_count(), 4);
}

TEST(TopologyGen, MetroAccessLansAreSingleIslands) {
  TopologyParams p;
  p.kind = "metro_access";
  p.metros = 2;
  p.aggs_per_metro = 2;
  p.lans_per_agg = 2;
  p.hosts_per_lan = 4;
  net::Network net;
  BuiltTopology t = build_topology(net, p);
  net::ParallelExecutor exec(net, 2);
  // EthernetSegment LANs are never cut, so islands track routers, not hosts:
  // 1 core + 2 metros + 4 aggs (each agg glued to its LAN hosts) = 7.
  EXPECT_EQ(exec.island_count(), 7);
  EXPECT_EQ(t.hosts.size(), 2u * 2u * 2u * 4u);
}

// ---------------------------------------------------------------------------
// .scn parser: happy path and the reject-typos policy.

TEST(ScnParser, ParsesFullConfig) {
  const std::string text = R"(
# comment
[topology]
kind = metro_access
metros = 3
hosts_per_lan = 5

[impairments]
scope = all
loss_rate = 0.25
jitter_us = 50

[workload]
profile = audio
users = 777
think_ms = 1500

[asp]
monitors = core

[run]
shards = 16
duration_ms = 250
)";
  ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_scn(text, cfg, err)) << err;
  EXPECT_EQ(cfg.topology.kind, "metro_access");
  EXPECT_EQ(cfg.topology.metros, 3);
  EXPECT_EQ(cfg.topology.hosts_per_lan, 5);
  EXPECT_EQ(cfg.impairments.scope, "all");
  EXPECT_DOUBLE_EQ(cfg.impairments.loss_rate, 0.25);
  EXPECT_EQ(cfg.impairments.jitter, net::micros(50));
  EXPECT_EQ(cfg.workload.users, 777u);
  EXPECT_DOUBLE_EQ(cfg.workload.think_mean_ms, 1500.0);
  // profile=audio set the shape defaults
  EXPECT_EQ(cfg.workload.frames_per_response, 8u);
  EXPECT_EQ(cfg.asp_monitors, "core");
  EXPECT_EQ(cfg.run.shards, 16);
  EXPECT_EQ(cfg.run.duration, net::millis(250));
}

TEST(ScnParser, RejectsUnknownKeyWithLineNumber) {
  ScenarioConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_scn("[topology]\nkindd = fat_tree\n", cfg, err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("kindd"), std::string::npos) << err;
}

TEST(ScnParser, RejectsUnknownSectionAndOrphanKeys) {
  ScenarioConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_scn("[topolgy]\n", cfg, err));
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  // A key before any section header is an error, not part of some default.
  EXPECT_FALSE(parse_scn("kind = fat_tree\n", cfg, err));
}

TEST(ScnParser, RejectsBadValues) {
  ScenarioConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_scn("[workload]\nprofile = cbr\n", cfg, err));
  EXPECT_FALSE(parse_scn("[impairments]\nscope = sometimes\n", cfg, err));
  EXPECT_FALSE(parse_scn("[asp]\nmonitors = everywhere\n", cfg, err));
}

TEST(ScnParser, CacheProfileSetsObjectUniverse) {
  ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_scn("[workload]\nprofile = cache\n", cfg, err)) << err;
  EXPECT_EQ(cfg.workload.request_bytes, 64u);
  EXPECT_EQ(cfg.workload.frames_per_response, 1u);  // single-frame: cacheable
  EXPECT_EQ(cfg.workload.objects, 512u);
  EXPECT_DOUBLE_EQ(cfg.workload.zipf_skew, 1.0);
  // Non-cache profiles must NOT leak an object universe (obj=0 on the wire
  // keeps their packet bytes — and goldens — unchanged).
  ASSERT_TRUE(parse_scn("[workload]\nprofile = audio\n", cfg, err)) << err;
  EXPECT_EQ(cfg.workload.objects, 0u);
}

TEST(ScnParser, RejectsCacheProfileTypoWithLineNumber) {
  ScenarioConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_scn("[workload]\nusers = 10\nprofile = cachee\n", cfg, err));
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
  EXPECT_NE(err.find("http|audio|mpeg|cache"), std::string::npos) << err;
}

TEST(ScnParser, ParsesAspCacheKeys) {
  ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_scn(
      "[asp]\ncache = native\ncache_entries = 64\ncache_ttl_ms = 250\n", cfg,
      err))
      << err;
  EXPECT_EQ(cfg.asp_cache, "native");
  EXPECT_EQ(cfg.cache_entries, 64);
  EXPECT_EQ(cfg.cache_ttl_ms, 250);
  // Defaults when the section never mentions a cache tier.
  ScenarioConfig fresh;
  ASSERT_TRUE(parse_scn("[asp]\nmonitors = core\n", fresh, err)) << err;
  EXPECT_EQ(fresh.asp_cache, "none");
}

TEST(ScnParser, RejectsBadAspCacheValuesWithLineNumbers) {
  ScenarioConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_scn("[asp]\ncache = squid\n", cfg, err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_FALSE(parse_scn("[asp]\ncache = planp\ncache_entries = 0\n", cfg, err));
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
  EXPECT_FALSE(parse_scn("[asp]\ncache_ttl_ms = -5\n", cfg, err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// End-to-end determinism on the checked-in 1k-node scenario: a serial run
// and a 4-shard run of the same .scn must serialize byte-identical metrics
// (the ISSUE's acceptance gate, sized for tier-1).

TEST(ScenarioDeterminism, SerialMatchesShardedOn1kFatTree) {
  ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(load_scn_file(std::string(ASP_SCENARIO_DIR) + "/fat_tree_1k.scn",
                            cfg, err))
      << err;
  cfg.run.duration = net::millis(40);  // keep tier-1 fast; still ~190 requests

  std::string serial, sharded;
  {
    Scenario sc(cfg);
    ScenarioMetrics m = sc.run(1);
    serial = m.to_json();
    EXPECT_GT(m.delivered_packets, 0u);
    EXPECT_GT(m.workload.completed, 0u);
  }
  {
    Scenario sc(cfg);
    ScenarioMetrics m = sc.run(4);
    sharded = m.to_json();
    EXPECT_EQ(m.shards, 4);
    EXPECT_GT(m.islands, 100);  // 125 switch-anchored islands
  }
  EXPECT_EQ(serial, sharded);
}

// Same config, two fresh instantiations, same seed => identical metrics:
// nothing in the build or run path leaks real randomness or address-ordering.
TEST(ScenarioDeterminism, RebuildReproducesMetrics) {
  ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(load_scn_file(
      std::string(ASP_SCENARIO_DIR) + "/metro_access_audio.scn", cfg, err))
      << err;
  cfg.run.duration = net::millis(30);

  std::string first, second;
  {
    Scenario sc(cfg);
    first = sc.run(1).to_json();
  }
  {
    Scenario sc(cfg);
    second = sc.run(2).to_json();
  }
  EXPECT_EQ(first, second);
}

// The verified edge-cache tier on the checked-in cache scenario: hits must
// happen, hits must offload the origin relative to completed fetches, and
// the metrics JSON must stay byte-identical serial vs sharded (the cache
// counters are part of the serialized surface, so this also witnesses that
// per-edge CacheStore state aggregates deterministically).
TEST(ScenarioCache, EdgeCacheHitsAndStaysDeterministic) {
  ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(load_scn_file(
      std::string(ASP_SCENARIO_DIR) + "/fat_tree_cache.scn", cfg, err))
      << err;
  ASSERT_EQ(cfg.asp_cache, "planp");
  cfg.run.duration = net::millis(120);  // tier-1 sized; plenty of re-fetches

  std::string serial, sharded;
  ScenarioMetrics ms;
  {
    Scenario sc(cfg);
    ms = sc.run(1);
    serial = ms.to_json();
  }
  EXPECT_GT(ms.cache_hits, 0u);
  EXPECT_GT(ms.cache_fills, 0u);
  EXPECT_GT(ms.workload.completed, 0u);
  // Every completed fetch is either served at the edge or by the origin.
  EXPECT_LT(ms.workload.origin_requests, ms.workload.completed);
  {
    Scenario sc(cfg);
    sharded = sc.run(4).to_json();
  }
  EXPECT_EQ(serial, sharded);
}

// The hand-written native hook is a drop-in twin of the PLAN-P ASP: same
// scenario, same seed, exactly the same cache verdicts and origin load.
TEST(ScenarioCache, NativeTierMatchesPlanpVerdicts) {
  ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(load_scn_file(
      std::string(ASP_SCENARIO_DIR) + "/fat_tree_cache.scn", cfg, err))
      << err;
  cfg.run.duration = net::millis(120);

  ScenarioMetrics planp, native;
  {
    cfg.asp_cache = "planp";
    Scenario sc(cfg);
    planp = sc.run(1);
  }
  {
    cfg.asp_cache = "native";
    Scenario sc(cfg);
    native = sc.run(1);
  }
  EXPECT_EQ(planp.cache_hits, native.cache_hits);
  EXPECT_EQ(planp.cache_misses, native.cache_misses);
  EXPECT_EQ(planp.cache_fills, native.cache_fills);
  EXPECT_EQ(planp.workload.origin_requests, native.workload.origin_requests);
  EXPECT_EQ(planp.workload.completed, native.workload.completed);
  EXPECT_GT(planp.cache_hits, 0u);
}

// The ASP monitor tier actually sees traffic: metro_access with monitors=core
// forwards every cross-metro packet through the counting ASP.
TEST(ScenarioAsp, CoreMonitorCountsTransitTraffic) {
  ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(load_scn_file(
      std::string(ASP_SCENARIO_DIR) + "/metro_access_audio.scn", cfg, err))
      << err;
  ASSERT_EQ(cfg.asp_monitors, "core");
  cfg.run.duration = net::millis(30);

  Scenario sc(cfg);
  ScenarioMetrics m = sc.run(1);
  EXPECT_GT(m.asp_handled, 0u);
  EXPECT_EQ(m.asp_handled, m.asp_sent);  // pure forwarder: no drops
  EXPECT_GT(m.workload.completed, 0u);   // requests survive the ASP hop
}

}  // namespace
}  // namespace asp::scenario
