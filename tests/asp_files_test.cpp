// The human-readable ASP sources in /asps must stay in sync with the
// embedded generators in asp_sources.hpp (the files are generated from them;
// see README). Also: every shipped .planp file must take the full pipeline.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "apps/asp_sources.hpp"
#include "net/network.hpp"
#include "planp/parser.hpp"
#include "planp/typecheck.hpp"

#ifndef ASP_SOURCE_DIR
#define ASP_SOURCE_DIR "asps"
#endif

namespace asp::apps {
namespace {

std::string read_file(const std::string& name) {
  std::ifstream in(std::string(ASP_SOURCE_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct Entry {
  const char* file;
  std::string source;
};

std::vector<Entry> entries() {
  return {
      {"audio_router.planp", audio_router_asp()},
      {"audio_client.planp", audio_client_asp()},
      {"http_gateway.planp",
       http_gateway_asp(net::ip("10.0.9.9"), net::ip("131.254.60.81"),
                        net::ip("131.254.60.109"))},
      {"http_gateway_hash.planp",
       http_gateway_hash_asp(net::ip("10.0.9.9"), net::ip("131.254.60.81"),
                             net::ip("131.254.60.109"))},
      {"http_gateway_failover.planp",
       http_gateway_failover_asp(net::ip("10.0.9.9"), net::ip("131.254.60.81"),
                                 net::ip("131.254.60.109"))},
      {"image_distill.planp", image_distill_asp()},
      {"bridge.planp", bridge_asp()},
      {"audio_router_hysteresis.planp", audio_router_hysteresis_asp()},
      {"mpeg_monitor.planp", mpeg_monitor_asp(net::ip("10.0.1.1"))},
      {"mpeg_reply.planp", mpeg_reply_asp()},
      {"mpeg_capture.planp", mpeg_capture_asp(net::ip("192.168.1.1"), 7000, 7010)},
  };
}

TEST(AspFiles, MirrorFilesMatchEmbeddedSources) {
  for (const Entry& e : entries()) {
    EXPECT_EQ(read_file(e.file), e.source) << e.file << " out of sync";
  }
}

TEST(AspFiles, EveryShippedAspTypechecks) {
  for (const Entry& e : entries()) {
    EXPECT_NO_THROW(planp::typecheck(planp::parse(e.source))) << e.file;
  }
}

TEST(AspFiles, SizesMatchThePapersOrderOfMagnitude) {
  // Paper figure 3: programs of 28..161 lines, "average size about 130 lines
  // of PLAN-P". Ours are comparably small.
  int total = 0, n = 0;
  for (const Entry& e : entries()) {
    planp::Program p = planp::parse(e.source);
    EXPECT_GT(p.source_lines, 1) << e.file;
    EXPECT_LT(p.source_lines, 200) << e.file;
    total += p.source_lines;
    ++n;
  }
  EXPECT_LT(total / n, 161);
}

}  // namespace
}  // namespace asp::apps
