#include "apps/http/experiment.hpp"

#include <gtest/gtest.h>

#include "apps/asp_sources.hpp"
#include "net/network.hpp"
#include "planp/analysis.hpp"
#include "planp/parser.hpp"

namespace asp::apps {
namespace {

using asp::net::ip;

TEST(HttpTrace, HasRequestedLengthAndPlausibleShape) {
  auto trace = make_trace(10'000, 500);
  ASSERT_EQ(trace.size(), 10'000u);
  // Zipf: the most popular file should appear far more often than average.
  std::map<std::string, int> counts;
  std::uint64_t total = 0;
  for (const auto& e : trace) {
    ++counts[e.path];
    total += e.size;
  }
  int max_count = 0;
  for (const auto& [p, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 500);            // head file ~ 1/H(500) ~ 15% of accesses
  EXPECT_GT(counts.size(), 250u);       // long tail is present
  double mean = static_cast<double>(total) / 10'000.0;
  EXPECT_GT(mean, 3'000);
  EXPECT_LT(mean, 40'000);
}

TEST(HttpTrace, PathEncodesSize) {
  EXPECT_EQ(size_from_path(trace_path(17, 8192)), 8192u);
  EXPECT_EQ(size_from_path("/weird"), 1024u);
}

TEST(HttpTrace, DeterministicForSeed) {
  auto a = make_trace(1000, 100, 7);
  auto b = make_trace(1000, 100, 7);
  auto c = make_trace(1000, 100, 8);
  EXPECT_EQ(a[0].path, b[0].path);
  EXPECT_EQ(a[999].path, b[999].path);
  bool any_diff = false;
  for (std::size_t i = 0; i < 1000; ++i) any_diff |= a[i].path != c[i].path;
  EXPECT_TRUE(any_diff);
}

TEST(HttpServerModel, ServesQueuedRequestsThroughChildPool) {
  asp::net::Network net;
  asp::net::Node& server = net.add_node("server");
  asp::net::Node& client = net.add_node("client");
  net.link(client, ip("10.0.0.1"), server, ip("10.0.0.2"), 100e6, asp::net::millis(1));

  HttpServer::Options opts;
  opts.children = 2;
  opts.fixed_overhead_ms = 10;
  HttpServer srv(server, opts);
  HttpClientPool pool(client, server.addr(), make_trace(100, 10), 6);
  pool.start();
  net.run_until(asp::net::seconds(5));
  EXPECT_GT(pool.completed(), 100u);
  EXPECT_EQ(pool.failed(), 0u);
  EXPECT_GE(srv.requests_served(), pool.completed());  // a couple may be in flight
  // 2 children at ~11 ms a request cap the rate around 180/s.
  EXPECT_LT(pool.completed(), 5 * 200u);
}

TEST(HttpGatewayAsp, IsRejectedByTheGateButLoadsAuthenticated) {
  // The two-server gateway is a "legitimate protocol that can not be proven
  // to terminate" (paper §2.1): the conservative analysis sees the
  // destination alternating between two literals. It must be rejected by
  // the gate and loadable via the privileged path.
  auto report = planp::analyze(planp::typecheck(
      planp::parse(http_gateway_asp(ip("10.0.9.9"), ip("10.0.2.1"), ip("10.0.2.2")))));
  EXPECT_TRUE(report.local_termination);
  EXPECT_FALSE(report.global_termination);
  EXPECT_TRUE(report.linear_duplication) << report.duplication_detail;
  EXPECT_TRUE(report.guaranteed_delivery) << report.delivery_detail;
}

struct HttpThroughput {
  double single, asp, builtin, disjoint;
};

HttpThroughput measure(double secs, int machines, int procs) {
  HttpThroughput out{};
  for (HttpConfig cfg : {HttpConfig::kSingleServer, HttpConfig::kAspGateway,
                         HttpConfig::kBuiltinGateway, HttpConfig::kDisjoint}) {
    HttpExperiment::Options opts;
    opts.config = cfg;
    opts.client_machines = machines;
    opts.processes_per_machine = procs;
    opts.trace_accesses = 20'000;
    HttpExperiment exp(opts);
    double rps = exp.run(secs).requests_per_sec;
    switch (cfg) {
      case HttpConfig::kSingleServer: out.single = rps; break;
      case HttpConfig::kAspGateway: out.asp = rps; break;
      case HttpConfig::kBuiltinGateway: out.builtin = rps; break;
      case HttpConfig::kDisjoint: out.disjoint = rps; break;
    }
  }
  return out;
}

TEST(HttpCluster, Figure8ShapeHolds) {
  // Saturating load: the Figure 8 claims.
  HttpThroughput t = measure(20.0, 8, 4);

  // Both servers beat one server substantially (paper: 1.75x).
  EXPECT_GT(t.asp, 1.5 * t.single);
  // The ASP gateway matches the built-in C gateway (paper: "little or no
  // difference").
  EXPECT_NEAR(t.asp, t.builtin, 0.08 * t.builtin);
  // The gateway is a contention point: cluster <= disjoint servers, roughly
  // the paper's 85%.
  EXPECT_LT(t.asp, t.disjoint);
  EXPECT_GT(t.asp, 0.7 * t.disjoint);
}

TEST(HttpCluster, GatewayPreservesRequestIntegrity) {
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.client_machines = 2;
  opts.processes_per_machine = 2;
  opts.trace_accesses = 1000;
  HttpExperiment exp(opts);
  auto r = exp.run(5.0);
  EXPECT_GT(r.completed, 50u);
  // Both servers participated.
  EXPECT_GT(exp.servers()[0]->requests_served(), 0u);
  EXPECT_GT(exp.servers()[1]->requests_served(), 0u);
  // Everything completed end-to-end arrived byte-correct (completion implies
  // full response via the virtual address).
  std::uint64_t total_served =
      exp.servers()[0]->requests_served() + exp.servers()[1]->requests_served();
  EXPECT_GE(total_served, r.completed);
}

TEST(HttpCluster, LightLoadServedWithoutFailures) {
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.client_machines = 1;
  opts.processes_per_machine = 1;
  opts.trace_accesses = 500;
  HttpExperiment exp(opts);
  auto r = exp.run(10.0);
  EXPECT_GT(r.completed, 100u);
  EXPECT_EQ(r.failed, 0u);
}

}  // namespace
}  // namespace asp::apps
