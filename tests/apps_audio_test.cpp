#include "apps/audio/experiment.hpp"

#include <gtest/gtest.h>

#include "apps/asp_sources.hpp"
#include "planp/analysis.hpp"
#include "planp/parser.hpp"

namespace asp::apps {
namespace {

TEST(AudioAsps, RouterAspPassesAllFourAnalyses) {
  auto report = planp::analyze(planp::typecheck(planp::parse(audio_router_asp())));
  EXPECT_TRUE(report.local_termination);
  EXPECT_TRUE(report.global_termination) << report.global_termination_detail;
  EXPECT_TRUE(report.guaranteed_delivery) << report.delivery_detail;
  EXPECT_TRUE(report.linear_duplication) << report.duplication_detail;
}

TEST(AudioAsps, ClientAspPassesAllFourAnalyses) {
  auto report = planp::analyze(planp::typecheck(planp::parse(audio_client_asp())));
  EXPECT_TRUE(report.fully_verified());
}

TEST(AudioApp, SourceStreamsAtPaperRate) {
  // 16-bit stereo at 5512 Hz = 176 kb/s of PCM payload.
  AudioExperiment exp(/*adaptation=*/false);
  auto result = exp.run(10.0, {{0.0, 0.0}});
  ASSERT_FALSE(result.series.empty());
  double kbps = result.series.back().audio_kbps;
  // Wire rate = payload + UDP/IP headers: slightly above 176.
  EXPECT_NEAR(kbps, 187, 8);
  EXPECT_GT(result.frames_received, 480u);  // ~50 frames/s for 10 s
}

TEST(AudioApp, WithoutLoadFullQualityIsKept) {
  AudioExperiment exp(/*adaptation=*/true);
  auto result = exp.run(10.0, {{0.0, 0.0}});
  EXPECT_EQ(result.series.back().level, 0);
  EXPECT_NEAR(result.series.back().audio_kbps, 190, 10);  // + channel tag bytes
  EXPECT_EQ(result.silent_periods, 0);
}

TEST(AudioApp, LargeLoadDegradesToEightBitMono) {
  AudioExperiment exp(/*adaptation=*/true);
  auto result = exp.run(20.0, {{0.0, 0.0}, {5.0, 9.7e6}});
  // After the step the client receives level-2 audio at ~44 kb/s + headers.
  const AudioSample& last = result.series.back();
  EXPECT_EQ(last.level, 2);
  EXPECT_LT(last.audio_kbps, 80);
  EXPECT_GT(last.audio_kbps, 30);
}

TEST(AudioApp, SmallLoadDegradesToSixteenBitMono) {
  AudioExperiment exp(/*adaptation=*/true);
  auto result = exp.run(20.0, {{0.0, 0.0}, {5.0, 7.0e6}});
  const AudioSample& last = result.series.back();
  EXPECT_EQ(last.level, 1);
  EXPECT_NEAR(last.audio_kbps, 100, 20);  // ~88 payload + headers
}

TEST(AudioApp, AdaptationIsImmediate) {
  // Paper: "the protocol immediately switches ... avoiding the need for
  // software feedback". The switch must complete within ~2 s of the step
  // (one monitoring window, no end-to-end feedback round).
  AudioExperiment exp(/*adaptation=*/true);
  auto result = exp.run(12.0, {{0.0, 0.0}, {5.0, 9.7e6}}, 0.25);
  double switch_time = -1;
  for (const auto& s : result.series) {
    if (s.t_sec > 5.0 && s.level == 2) {
      switch_time = s.t_sec;
      break;
    }
  }
  ASSERT_GT(switch_time, 0) << "never switched";
  EXPECT_LE(switch_time, 7.0);
}

TEST(AudioApp, AdaptationReducesSilentPeriods) {
  // Figure 7: under a saturating load, adaptation removes most playback gaps.
  auto schedule = std::vector<LoadStep>{{0.0, 0.0}, {3.0, 9.9e6}};
  AudioExperiment without(/*adaptation=*/false);
  auto r0 = without.run(30.0, schedule);
  AudioExperiment with(/*adaptation=*/true);
  auto r1 = with.run(30.0, schedule);

  EXPECT_GT(r0.silent_periods, 5) << "congestion should cause gaps without adaptation";
  EXPECT_LT(r1.silent_periods, r0.silent_periods / 2)
      << "adaptation should remove most gaps";
}

TEST(AudioApp, ClientReceivesReconstructedStereoFrames) {
  // Whatever the wire level, the app sees full-size 16-bit stereo frames.
  AudioExperiment exp(/*adaptation=*/true);
  auto result = exp.run(15.0, {{0.0, 9.7e6}});
  ASSERT_GT(result.frames_received, 0u);
  // Payload per frame after reconstruction equals the stereo frame size.
  // (frames * 440 == payload bytes)
  // Allow for a couple of in-flight frames at the end of the run.
  AudioExperiment exp2(/*adaptation=*/true);
  auto r2 = exp2.run(5.0, {{0.0, 9.7e6}});
  EXPECT_GT(r2.frames_received, 100u);
}

TEST(AudioApp, PerSegmentAdaptationLeavesUplinkUntouched)
{
  // The source-to-router uplink always carries full quality; only the
  // congested segment is degraded (paper: clients at IRISA still get CD
  // quality). We verify the router *input* stays at the full rate by
  // checking the source's send count is unaffected by segment load.
  AudioExperiment exp(/*adaptation=*/true);
  auto result = exp.run(10.0, {{0.0, 9.9e6}});
  EXPECT_GE(result.frames_sent, 490u);
  EXPECT_EQ(result.series.back().level, 2);
}

}  // namespace
}  // namespace asp::apps
