// Per-segment adaptation with a chain of routers (paper §3.1: "clients on
// different paths in the network can receive different levels of quality
// depending only on the traffic on that path" — "audio clients in IRISA may
// still receive high-quality audio" while the loaded segment degrades).
#include <gtest/gtest.h>

#include "apps/asp_sources.hpp"
#include "apps/audio/audio.hpp"
#include "net/network.hpp"
#include "runtime/engine.hpp"

namespace asp::apps {
namespace {

using asp::net::ip;
using asp::net::millis;
using asp::net::Network;
using asp::net::Node;
using asp::net::seconds;

TEST(AudioTwoTier, OnlyTheLoadedSegmentIsDegraded) {
  Network net;
  const asp::net::Ipv4Addr group = ip("224.1.1.1");

  Node& source = net.add_node("source");
  Node& r1 = net.add_router("r1");
  Node& r2 = net.add_router("r2");
  net.link(source, ip("10.0.1.1"), r1, ip("10.0.1.254"), 100e6, millis(1));
  auto& seg_fast = net.segment("fast-lan", 10e6);  // quiet segment at r1
  net.attach(r1, seg_fast, ip("192.168.1.254"));
  net.link(r1, ip("10.0.2.1"), r2, ip("10.0.2.254"), 100e6, millis(1));
  auto& seg_slow = net.segment("slow-lan", 10e6);  // loaded segment at r2
  net.attach(r2, seg_slow, ip("192.168.2.254"));

  Node& client_fast = net.add_node("client-fast");
  net.attach(client_fast, seg_fast, ip("192.168.1.1"));
  Node& client_slow = net.add_node("client-slow");
  net.attach(client_slow, seg_slow, ip("192.168.2.1"));
  Node& loadgen = net.add_node("loadgen");
  net.attach(loadgen, seg_slow, ip("192.168.2.2"));
  Node& sink = net.add_node("sink");
  net.attach(sink, seg_slow, ip("192.168.2.3"));

  // Multicast plumbing: source -> r1 -> {fast segment, r2}; r2 -> slow segment.
  source.add_mroute(group, {0});
  source.routes().add_default(0);
  r1.add_mroute(group, {1, 2});
  r2.add_mroute(group, {1});

  // The same adaptation ASP in both routers, each watching its own segment.
  asp::runtime::AspRuntime rt1(r1), rt2(r2);
  rt1.set_monitored_medium(&seg_fast);
  rt1.install(audio_router_asp());
  rt2.set_monitored_medium(&seg_slow);
  rt2.install(audio_router_asp());

  asp::runtime::AspRuntime rt_cf(client_fast), rt_cs(client_slow);
  rt_cf.install(audio_client_asp());
  rt_cs.install(audio_client_asp());

  AudioSource src(source, group);
  AudioClient fast(client_fast, group);
  AudioClient slow(client_slow, group);
  LoadGenerator gen(loadgen, sink.addr());

  src.start();
  fast.start();
  slow.start();
  gen.start();
  gen.set_rate_bps(9.7e6);  // saturate only the slow segment

  net.run_until(seconds(15));

  // The fast client still gets full 16-bit stereo; the slow client gets
  // 8-bit mono, degraded by the *second* router.
  EXPECT_EQ(fast.last_level(), 0);
  EXPECT_EQ(slow.last_level(), 2);
  EXPECT_GT(fast.frames_received(), 700u);
  EXPECT_GT(slow.frames_received(), 700u);
  // Both play the same stream; both ASPs were active.
  EXPECT_GT(rt1.stats().packets_handled, 0u);
  EXPECT_GT(rt2.stats().packets_handled, 0u);
  // The wire rates differ by the expected factor (~190 vs ~58 kb/s).
  EXPECT_NEAR(fast.wire_rate_bps() / 1000.0, 190, 15);
  EXPECT_NEAR(slow.wire_rate_bps() / 1000.0, 58, 15);
}

TEST(AudioTwoTier, UpstreamDegradationIsNotUndoneDownstream) {
  // Load the FIRST segment instead: the second router must pass the already
  // degraded stream through unchanged (need > cur fails), not upgrade it.
  Network net;
  const asp::net::Ipv4Addr group = ip("224.1.1.2");

  Node& source = net.add_node("source");
  Node& r1 = net.add_router("r1");
  Node& r2 = net.add_router("r2");
  net.link(source, ip("10.0.1.1"), r1, ip("10.0.1.254"), 100e6, millis(1));
  auto& seg_mid = net.segment("mid-lan", 10e6);  // loaded middle segment
  net.attach(r1, seg_mid, ip("192.168.1.254"));
  net.attach(r2, seg_mid, ip("192.168.1.253"));
  auto& seg_leaf = net.segment("leaf-lan", 10e6);  // quiet leaf segment
  net.attach(r2, seg_leaf, ip("192.168.2.254"));

  Node& client = net.add_node("client");
  net.attach(client, seg_leaf, ip("192.168.2.1"));
  Node& loadgen = net.add_node("loadgen");
  net.attach(loadgen, seg_mid, ip("192.168.1.2"));
  Node& sink = net.add_node("sink");
  net.attach(sink, seg_mid, ip("192.168.1.3"));

  source.add_mroute(group, {0});
  source.routes().add_default(0);
  r1.add_mroute(group, {1});
  r2.add_mroute(group, {1});

  asp::runtime::AspRuntime rt1(r1), rt2(r2);
  rt1.set_monitored_medium(&seg_mid);
  rt1.install(audio_router_asp());
  rt2.set_monitored_medium(&seg_leaf);
  rt2.install(audio_router_asp());
  asp::runtime::AspRuntime rt_c(client);
  rt_c.install(audio_client_asp());

  AudioSource src(source, group);
  AudioClient c(client, group);
  LoadGenerator gen(loadgen, sink.addr());
  src.start();
  c.start();
  gen.start();
  gen.set_rate_bps(9.7e6);

  net.run_until(seconds(15));
  // Degraded at r1 for the mid segment; r2's quiet leaf cannot restore what
  // was lost upstream — the level stays 2.
  EXPECT_EQ(c.last_level(), 2);
  EXPECT_GT(c.frames_received(), 700u);
}

}  // namespace
}  // namespace asp::apps
