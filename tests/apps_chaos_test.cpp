// Chaos runs of the paper's experiments: the §3.1 audio broadcast and the
// §3.2 HTTP cluster keep working (degraded, not dead) while their networks
// lose, corrupt and partition traffic via the Impairments model.
#include <gtest/gtest.h>

#include "apps/audio/experiment.hpp"
#include "apps/http/experiment.hpp"
#include "net/network.hpp"

namespace asp::apps {
namespace {

using asp::net::Impairments;
using asp::net::millis;
using asp::net::seconds;

TEST(AppsChaos, AudioSurvivesLossOnClientLan) {
  AudioExperiment exp(/*adaptation=*/true);
  asp::net::Medium* lan = exp.network().find_medium("client-lan");
  ASSERT_NE(lan, nullptr);
  Impairments imp;
  imp.loss_rate = 0.10;
  imp.seed = 41;
  lan->set_impairments(imp);

  auto result = exp.run(10.0, {{0.0, 0.0}});

  EXPECT_GT(lan->dropped_loss(), 0u);
  // ~500 frames offered; 10% random loss thins the stream but the client
  // keeps hearing full-quality audio (loss is not congestion: the measured
  // load stays low, so the adaptation ASP has no reason to degrade).
  EXPECT_GT(result.frames_received, result.frames_sent / 2);
  EXPECT_LT(result.frames_received, result.frames_sent);
  EXPECT_EQ(result.series.back().level, 0);
}

TEST(AppsChaos, AudioPartitionSilencesThenRecovers) {
  AudioExperiment exp(/*adaptation=*/true);
  asp::net::Medium* lan = exp.network().find_medium("client-lan");
  ASSERT_NE(lan, nullptr);
  lan->schedule_outage(seconds(3), seconds(5));

  auto result = exp.run(10.0, {{0.0, 0.0}});

  EXPECT_GT(lan->dropped_down(), 0u) << "the partition must have eaten frames";
  EXPECT_GT(result.silent_ticks, 0) << "the client goes silent mid-partition";
  // After the heal the stream resumes at full quality.
  const AudioSample& last = result.series.back();
  EXPECT_EQ(last.level, 0);
  EXPECT_GT(last.audio_kbps, 100);
}

TEST(AppsChaos, HttpClusterCompletesRequestsUnderLoss) {
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.client_machines = 1;
  opts.processes_per_machine = 2;
  opts.trace_accesses = 500;

  HttpExperiment exp(opts);
  asp::net::Medium* lan = exp.network().find_medium("server-lan");
  ASSERT_NE(lan, nullptr);
  Impairments imp;
  imp.loss_rate = 0.05;
  imp.seed = 43;
  lan->set_impairments(imp);

  auto result = exp.run(5.0);

  EXPECT_GT(lan->dropped_loss(), 0u);
  // TCP retransmission rides through 5% loss: requests still complete.
  EXPECT_GT(result.completed, 50u);
}

}  // namespace
}  // namespace asp::apps
