#include "planp/lexer.hpp"

#include <gtest/gtest.h>

namespace asp::planp {
namespace {

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputIsJustEof) {
  EXPECT_EQ(kinds(""), (std::vector<Tok>{Tok::kEof}));
  EXPECT_EQ(kinds("   \n\t  "), (std::vector<Tok>{Tok::kEof}));
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto ks = kinds("val fun channel initstate is let in end if then else foo _bar x1");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::kVal, Tok::kFun, Tok::kChannel, Tok::kInitstate,
                                  Tok::kIs, Tok::kLet, Tok::kIn, Tok::kEnd, Tok::kIf,
                                  Tok::kThen, Tok::kElse, Tok::kIdent, Tok::kIdent,
                                  Tok::kIdent, Tok::kEof}));
}

TEST(Lexer, IntegerLiteral) {
  auto toks = lex("42 0 123456789");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].int_val, 42);
  EXPECT_EQ(toks[1].int_val, 0);
  EXPECT_EQ(toks[2].int_val, 123456789);
}

TEST(Lexer, IpAddressLiteralIsOneToken) {
  auto toks = lex("131.254.60.81");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::kHost);
  EXPECT_EQ(toks[0].host_val.str(), "131.254.60.81");
}

TEST(Lexer, MalformedIpAddressThrows) {
  EXPECT_THROW(lex("1.2.3"), PlanPError);
  EXPECT_THROW(lex("1.2.3.999"), PlanPError);
}

TEST(Lexer, StringLiteralWithEscapes) {
  auto toks = lex(R"("CmdA: " "a\nb" "q\"q")");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "CmdA: ");
  EXPECT_EQ(toks[1].text, "a\nb");
  EXPECT_EQ(toks[2].text, "q\"q");
}

TEST(Lexer, UnterminatedStringThrows) { EXPECT_THROW(lex("\"abc"), PlanPError); }

TEST(Lexer, CharLiteral) {
  auto toks = lex(R"('a' '\n' '\'')");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].char_val, 'a');
  EXPECT_EQ(toks[1].char_val, '\n');
  EXPECT_EQ(toks[2].char_val, '\'');
}

TEST(Lexer, CommentsRunToEndOfLine) {
  auto ks = kinds("val -- this is a comment val fun\nx");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::kVal, Tok::kIdent, Tok::kEof}));
}

TEST(Lexer, MinusVersusComment) {
  // A single '-' is the operator; '--' starts a comment.
  auto ks = kinds("a - b");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::kIdent, Tok::kMinus, Tok::kIdent, Tok::kEof}));
  auto ks2 = kinds("a -- b");
  EXPECT_EQ(ks2, (std::vector<Tok>{Tok::kIdent, Tok::kEof}));
}

TEST(Lexer, CompositeOperators) {
  auto ks = kinds("<> <= >= < > = # ^ %");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::kNe, Tok::kLe, Tok::kGe, Tok::kLt, Tok::kGt,
                                  Tok::kEq, Tok::kHash, Tok::kCaret, Tok::kPercent,
                                  Tok::kEof}));
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = lex("val\n  x");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.col, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(Lexer, RejectsUnknownCharacter) {
  EXPECT_THROW(lex("val @ x"), PlanPError);
  EXPECT_THROW(lex("a ! b"), PlanPError);
}

TEST(Lexer, HashTableIsAKeyword) {
  EXPECT_EQ(kinds("hash_table"), (std::vector<Tok>{Tok::kHashTable, Tok::kEof}));
}

TEST(Lexer, PaperFigure2FirstLineLexes) {
  auto toks = lex("channel network(ps : int, ss : (int, host) hash_table, "
                  "p : ip*tcp*blob)");
  EXPECT_EQ(toks.front().kind, Tok::kChannel);
  EXPECT_EQ(toks.back().kind, Tok::kEof);
}

}  // namespace
}  // namespace asp::planp
