#include "runtime/netapi.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "planp/parser.hpp"

namespace asp::runtime {
namespace {

using asp::net::ip;
using asp::net::IpProto;
using asp::net::Packet;
using planp::Type;
using planp::TypePtr;
using planp::Value;

TypePtr ptype(const std::string& t) {
  // Parse a packet type by embedding it in a channel declaration.
  planp::Program p = planp::parse(
      "channel c(ps : unit, ss : unit, p : " + t + ") is (deliver(p); (ps, ss))");
  return std::get<planp::ChannelDef>(p.decls[0]).packet_type;
}

TEST(NetApi, DecodesTcpBlob) {
  Packet p = Packet::make_tcp(ip("1.1.1.1"), ip("2.2.2.2"), {1000, 80, 7, 8, 0, 0},
                              {10, 20, 30});
  auto v = decode_packet(p, ptype("ip*tcp*blob"));
  ASSERT_TRUE(v.has_value());
  const auto& t = v->as_tuple();
  EXPECT_EQ(t[0].as_ip().src, ip("1.1.1.1"));
  EXPECT_EQ(t[1].as_tcp().dport, 80);
  EXPECT_EQ(t[2].as_blob()->size(), 3u);
}

TEST(NetApi, TcpPatternRejectsUdpPacket) {
  Packet p = Packet::make_udp(ip("1.1.1.1"), ip("2.2.2.2"), 1000, 80, {1});
  EXPECT_FALSE(decode_packet(p, ptype("ip*tcp*blob")).has_value());
  EXPECT_TRUE(decode_packet(p, ptype("ip*udp*blob")).has_value());
}

TEST(NetApi, HeaderOnlyPatternAcceptsAnyProtocol) {
  Packet tcp = Packet::make_tcp(ip("1.1.1.1"), ip("2.2.2.2"), {}, {9});
  Packet udp = Packet::make_udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, {9});
  Packet raw = Packet::make_raw(ip("1.1.1.1"), ip("2.2.2.2"), {9});
  EXPECT_TRUE(decode_packet(tcp, ptype("ip*blob")).has_value());
  EXPECT_TRUE(decode_packet(udp, ptype("ip*blob")).has_value());
  EXPECT_TRUE(decode_packet(raw, ptype("ip*blob")).has_value());
}

TEST(NetApi, DecodesScalarPayloadFields) {
  // char 'A', int 0x01020304, bool true, rest blob.
  Packet p = Packet::make_tcp(ip("1.1.1.1"), ip("2.2.2.2"), {},
                              {'A', 1, 2, 3, 4, 1, 0xAA, 0xBB});
  auto v = decode_packet(p, ptype("ip*tcp*char*int*bool*blob"));
  ASSERT_TRUE(v.has_value());
  const auto& t = v->as_tuple();
  EXPECT_EQ(t[2].as_char(), 'A');
  EXPECT_EQ(t[3].as_int(), 0x01020304);
  EXPECT_TRUE(t[4].as_bool());
  EXPECT_EQ(t[5].as_blob()->size(), 2u);
}

TEST(NetApi, ShortPayloadDoesNotMatch) {
  Packet p = Packet::make_tcp(ip("1.1.1.1"), ip("2.2.2.2"), {}, {'A', 1, 2});
  EXPECT_FALSE(decode_packet(p, ptype("ip*tcp*char*int")).has_value());
}

TEST(NetApi, IntIsBigEndianAndSigned) {
  Packet p = Packet::make_tcp(ip("1.1.1.1"), ip("2.2.2.2"), {}, {0xFF, 0xFF, 0xFF, 0xFE});
  auto v = decode_packet(p, ptype("ip*tcp*int"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_tuple()[2].as_int(), -2);
}

TEST(NetApi, EncodeDecodeRoundTrip) {
  TypePtr t = ptype("ip*tcp*char*int*blob");
  Packet p = Packet::make_tcp(ip("9.9.9.9"), ip("8.8.8.8"), {4242, 80, 1, 2, 0x10, 512},
                              {'Z', 0, 0, 1, 0, 5, 6, 7});
  auto v = decode_packet(p, t);
  ASSERT_TRUE(v.has_value());
  Packet q = encode_packet(*v, "");
  EXPECT_EQ(q.ip.src, p.ip.src);
  EXPECT_EQ(q.ip.dst, p.ip.dst);
  EXPECT_EQ(q.tcp->sport, p.tcp->sport);
  EXPECT_EQ(q.tcp->flags, p.tcp->flags);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(NetApi, EncodeAttachesChannelTag) {
  TypePtr t = ptype("ip*blob");
  Packet p = Packet::make_raw(ip("1.1.1.1"), ip("2.2.2.2"), {1});
  auto v = decode_packet(p, t);
  Packet q = encode_packet(*v, "audio");
  EXPECT_EQ(q.channel, "audio");
  EXPECT_EQ(q.wire_size(), p.wire_size() + 4);
}

TEST(NetApi, HeaderOnlyBlobCarriesTransportHeader) {
  // An `ip*blob` channel sees "everything after the IP header" as the blob,
  // so re-emitting the blob reconstructs the whole packet (what the learning
  // bridge relies on).
  Packet p = Packet::make_udp(ip("1.1.1.1"), ip("2.2.2.2"), 4321, 7, {9, 8, 7});
  auto v = decode_packet(p, ptype("ip*blob"));
  ASSERT_TRUE(v.has_value());
  // blob = 8-byte UDP header + payload
  EXPECT_EQ(v->as_tuple()[1].as_blob()->size(), 8u + 3u);

  Packet q = encode_packet(*v, "");
  ASSERT_TRUE(q.udp.has_value());
  EXPECT_EQ(q.udp->sport, 4321);
  EXPECT_EQ(q.udp->dport, 7);
  EXPECT_EQ(q.payload, p.payload);
  EXPECT_EQ(q.ip.proto, IpProto::kUdp);
}

TEST(NetApi, HeaderOnlyBlobRoundTripsTcp) {
  Packet p = Packet::make_tcp(ip("1.1.1.1"), ip("2.2.2.2"),
                              {1000, 80, 12345, 678, 0x12, 555}, {1, 2});
  auto v = decode_packet(p, ptype("ip*blob"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_tuple()[1].as_blob()->size(), 20u + 2u);
  Packet q = encode_packet(*v, "");
  ASSERT_TRUE(q.tcp.has_value());
  EXPECT_EQ(q.tcp->sport, 1000);
  EXPECT_EQ(q.tcp->seq, 12345u);
  EXPECT_EQ(q.tcp->ack, 678u);
  EXPECT_EQ(q.tcp->flags, 0x12);
  EXPECT_EQ(q.tcp->wnd, 555);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(NetApi, RawPacketsHaveNoHiddenHeader) {
  Packet p = Packet::make_raw(ip("1.1.1.1"), ip("2.2.2.2"), {5, 5});
  auto v = decode_packet(p, ptype("ip*blob"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_tuple()[1].as_blob()->size(), 2u);
  Packet q = encode_packet(*v, "");
  EXPECT_EQ(q.ip.proto, IpProto::kRaw);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(NetApi, BoolStrictEncoding) {
  Packet p = Packet::make_tcp(ip("1.1.1.1"), ip("2.2.2.2"), {}, {2});
  EXPECT_FALSE(decode_packet(p, ptype("ip*tcp*bool")).has_value());
}

}  // namespace
}  // namespace asp::runtime
