#include "net/trace.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/tcp.hpp"

namespace asp::net {
namespace {

TEST(Describe, UdpSummary) {
  Packet p = Packet::make_udp(ip("10.0.0.1"), ip("10.0.0.2"), 4321, 7, {1, 2, 3});
  EXPECT_EQ(describe(p), "10.0.0.1:4321 > 10.0.0.2:7 udp len=3 ttl=64");
}

TEST(Describe, TcpSynSummary) {
  TcpHeader h{1000, 80, 1, 0, tcpflag::kSyn, 0};
  Packet p = Packet::make_tcp(ip("1.1.1.1"), ip("2.2.2.2"), h, {});
  EXPECT_EQ(describe(p), "1.1.1.1:1000 > 2.2.2.2:80 tcp S seq=1 ack=0 len=0 ttl=64");
}

TEST(Describe, RawAndChannelTag) {
  Packet p = Packet::make_raw(ip("1.1.1.1"), ip("2.2.2.2"), {9});
  p.channel = "audio";
  EXPECT_EQ(describe(p), "1.1.1.1 > 2.2.2.2 raw len=1 ttl=64 chan=audio");
}

TEST(PacketTracer, RecordsArrivalsWithTimestamps) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  PacketTracer tracer;
  tracer.set_clock([&] { return net.now(); });
  tracer.attach(b);

  UdpSocket sink(b, 7, nullptr);
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, bytes_of("one"));
  src.send_to(b.addr(), 7, bytes_of("two"));
  net.run();

  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_GT(tracer.events()[0].time, 0u);
  EXPECT_LE(tracer.events()[0].time, tracer.events()[1].time);
  EXPECT_EQ(tracer.events()[0].node, "b");
  EXPECT_NE(tracer.events()[0].summary.find("udp"), std::string::npos);
}

TEST(PacketTracer, GrepFiltersBySummary) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
  PacketTracer tracer;
  tracer.attach(b);
  UdpSocket s7(b, 7, nullptr);
  UdpSocket s8(b, 8, nullptr);
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, {});
  src.send_to(b.addr(), 8, {});
  src.send_to(b.addr(), 8, {});
  net.run();
  EXPECT_EQ(tracer.grep(":7 udp").size(), 1u);
  EXPECT_EQ(tracer.grep(":8 udp").size(), 2u);
  EXPECT_EQ(tracer.grep("tcp").size(), 0u);
}

TEST(PacketTracer, TracesTcpHandshake) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
  PacketTracer at_b;
  at_b.set_clock([&] { return net.now(); });
  at_b.attach(b);

  b.tcp().listen(80, [](std::shared_ptr<TcpConnection> c) {
    c->on_data([c](const std::vector<std::uint8_t>&) { c->close(); });
  });
  auto c = a.tcp().connect(b.addr(), 80);
  c->on_established([&] {
    c->send("hi");
    c->close();
  });
  net.run_until(seconds(5));

  // b saw: SYN, ACK, data, FIN(+combinations of acks).
  EXPECT_GE(at_b.grep("tcp S seq").size(), 1u);  // the SYN
  EXPECT_GE(at_b.grep("F").size(), 1u);          // a FIN
  std::string dump = at_b.dump();
  EXPECT_NE(dump.find("tcp"), std::string::npos);
  EXPECT_NE(dump.find("] b"), std::string::npos);
}

TEST(RxTaps, TracerAndProbeCoexist) {
  // Regression: attach() used to take over the node's single rx tap, so a
  // tracer silently disabled any metrics probe (and vice versa). Taps are now
  // a multicast list.
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  int probed = 0;
  b.add_rx_tap([&](const Packet&, const Interface&) { ++probed; });
  PacketTracer tracer;
  tracer.attach(b);  // must not displace the probe

  UdpSocket sink(b, 7, nullptr);
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, bytes_of("one"));
  src.send_to(b.addr(), 7, bytes_of("two"));
  net.run();

  EXPECT_EQ(probed, 2);
  EXPECT_EQ(tracer.events().size(), 2u);
}

TEST(RxTaps, TwoTracersBothRecord) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  PacketTracer first, second;
  first.attach(b);
  second.attach(b);

  UdpSocket sink(b, 7, nullptr);
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, bytes_of("x"));
  net.run();

  EXPECT_EQ(first.events().size(), 1u);
  EXPECT_EQ(second.events().size(), 1u);
}

TEST(RxTaps, DeprecatedSetterClearsThenAdds) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  int old_tap = 0, new_tap = 0;
  b.add_rx_tap([&](const Packet&, const Interface&) { ++old_tap; });
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  b.set_rx_tap([&](const Packet&, const Interface&) { ++new_tap; });
#pragma GCC diagnostic pop

  UdpSocket sink(b, 7, nullptr);
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, bytes_of("x"));
  net.run();

  EXPECT_EQ(old_tap, 0);  // the shim keeps its replace-everything contract
  EXPECT_EQ(new_tap, 1);
}

TEST(PacketTracer, CapacityBoundIsEnforced) {
  PacketTracer tracer(100);
  Packet p = Packet::make_raw(ip("1.1.1.1"), ip("2.2.2.2"), {});
  for (int i = 0; i < 500; ++i) tracer.record(i + 1, "x", p);
  EXPECT_LE(tracer.events().size(), 100u);
  EXPECT_TRUE(tracer.truncated());
  // The newest events survive.
  EXPECT_EQ(tracer.events().back().time, 500u);
}


// Regression: attach() used to capture the clock eagerly (recording time=0
// for every arrival unless set_clock() was wired up separately). It now reads
// the node's own queue at arrival time, so timestamps are nonzero and
// monotone with no extra plumbing — and follow the node across shard rebinds.
TEST(PacketTracer, AttachAloneYieldsMonotoneNonzeroTimestamps) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  PacketTracer tracer;  // note: no set_clock()
  tracer.attach(b);

  UdpSocket sink(b, 7, nullptr);
  UdpSocket src(a, 9999, nullptr);
  for (int i = 0; i < 3; ++i) src.send_to(b.addr(), 7, bytes_of("ping"));
  net.run();

  ASSERT_EQ(tracer.events().size(), 3u);
  SimTime prev = 0;
  for (const TraceEvent& e : tracer.events()) {
    EXPECT_GT(e.time, 0u) << "arrival must carry the sim clock, not 0";
    EXPECT_GE(e.time, prev) << "timestamps must be monotone";
    prev = e.time;
  }
  EXPECT_GE(prev, millis(1)) << "at least the link delay has elapsed";
}

}  // namespace
}  // namespace asp::net
