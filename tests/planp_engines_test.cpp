// Cross-engine semantics: the interpreter is the reference implementation;
// the bytecode VM and the run-time-specialized JIT must agree with it on
// results, state updates, emitted packets and raised exceptions. This mirrors
// the paper's claim that the JIT is *derived from* the interpreter and
// preserves its semantics.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "planp/compile.hpp"
#include "planp/interp.hpp"
#include "planp/jit.hpp"
#include "planp/parser.hpp"

namespace asp::planp {
namespace {

enum class Which { kInterp, kVm, kJit };

std::string which_name(Which w) {
  switch (w) {
    case Which::kInterp: return "interp";
    case Which::kVm: return "vm";
    case Which::kJit: return "jit";
  }
  return "?";
}

struct Loaded {
  CheckedProgram checked;
  CompiledProgram compiled;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NullEnv> env;
};

Loaded load(const std::string& src, Which w) {
  Loaded l;
  l.env = std::make_unique<NullEnv>();
  l.checked = typecheck(parse(src));
  switch (w) {
    case Which::kInterp:
      l.engine = std::make_unique<Interp>(l.checked, *l.env);
      break;
    case Which::kVm:
      l.compiled = compile(l.checked);
      l.engine = std::make_unique<VmEngine>(l.compiled, *l.env);
      break;
    case Which::kJit:
      l.compiled = compile(l.checked);
      l.engine = std::make_unique<JitEngine>(l.compiled, *l.env);
      break;
  }
  return l;
}

class EngineSuite : public ::testing::TestWithParam<Which> {};

Value mk_tcp_packet(const char* src, const char* dst, std::uint16_t sport,
                    std::uint16_t dport, std::vector<std::uint8_t> body = {1, 2, 3}) {
  return Value::of_tuple(
      {Value::of_ip({asp::net::ip(src), asp::net::ip(dst), asp::net::IpProto::kTcp}),
       Value::of_tcp({sport, dport, 0, 0, 0, 0}), Value::of_blob(std::move(body))});
}

TEST_P(EngineSuite, CountsPacketsInState) {
  Loaded l = load(
      "channel c(ps : int, ss : int, p : ip*tcp*blob) initstate 0 is\n"
      "  (deliver(p); (ps + 1, ss + blobLen(#3 p)))",
      GetParam());
  Value ps = Value::of_int(0);
  Value ss = l.engine->init_state(0);
  EXPECT_EQ(ss.as_int(), 0);
  for (int i = 0; i < 5; ++i) {
    Value out = l.engine->run_channel(0, ps, ss, mk_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2));
    ps = out.as_tuple()[0];
    ss = out.as_tuple()[1];
  }
  EXPECT_EQ(ps.as_int(), 5);
  EXPECT_EQ(ss.as_int(), 15);
  EXPECT_EQ(l.env->delivered.size(), 5u);
}

TEST_P(EngineSuite, Figure2GatewayBalancesAlternately) {
  // Complete version of the paper's Figure 2 load balancer.
  Loaded l = load(R"(
fun getSetS(src : host, sport : int,
            ss : (host*int, int) hash_table, ps : int) : int =
  try tableGet(ss, (src, sport))
  with (tableSet(ss, (src, sport), ps % 2); ps % 2)

channel network(ps : int, ss : (host*int, int) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let val iph : ip = #1 p
      val tcph : tcp = #2 p
      val body : blob = #3 p
  in
    if tcpDst(tcph) = 80 then
      let val con : int = getSetS(ipSrc(iph), tcpSrc(tcph), ss, ps) in
        if con = 0 then
          (OnRemote(network, (ipDestSet(iph, 131.254.60.81), tcph, body));
           (ps + 1, ss))
        else
          (OnRemote(network, (ipDestSet(iph, 131.254.60.109), tcph, body));
           (ps + 1, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
)",
                  GetParam());
  Value ps = Value::of_int(0);
  Value ss = l.engine->init_state(0);

  auto run = [&](const char* src, std::uint16_t sport, std::uint16_t dport) {
    Value out =
        l.engine->run_channel(0, ps, ss, mk_tcp_packet(src, "9.9.9.9", sport, dport));
    ps = out.as_tuple()[0];
    ss = out.as_tuple()[1];
    return l.env->sends.back().second.as_tuple()[0].as_ip().dst.str();
  };

  // Two distinct connections alternate between the physical servers.
  EXPECT_EQ(run("1.1.1.1", 1000, 80), "131.254.60.81");
  EXPECT_EQ(run("2.2.2.2", 2000, 80), "131.254.60.109");
  // Stickiness: the same connection keeps its server.
  EXPECT_EQ(run("1.1.1.1", 1000, 80), "131.254.60.81");
  EXPECT_EQ(run("2.2.2.2", 2000, 80), "131.254.60.109");
  // Non-HTTP traffic passes through unmodified.
  EXPECT_EQ(run("3.3.3.3", 3000, 22), "9.9.9.9");
  EXPECT_EQ(ps.as_int(), 4);  // one increment per HTTP packet
}

TEST_P(EngineSuite, OverloadedChannelsRunIndependently) {
  Loaded l = load(R"(
val CmdA : int = 65
channel network(ps : unit, ss : int, p : ip*tcp*char*int) initstate 0 is
  if charPos(#3 p) = CmdA then (deliver(p); (ps, ss + #4 p)) else (drop(); (ps, ss))
channel network(ps : unit, ss : int, p : ip*tcp*char*bool) initstate 0 is
  (deliver(p); (ps, if #4 p then ss + 1 else ss))
)",
                  GetParam());
  Value p_int = Value::of_tuple(
      {Value::of_ip({}), Value::of_tcp({}), Value::of_char('A'), Value::of_int(10)});
  Value out =
      l.engine->run_channel(0, Value::unit(), l.engine->init_state(0), p_int);
  EXPECT_EQ(out.as_tuple()[1].as_int(), 10);

  Value p_bool = Value::of_tuple(
      {Value::of_ip({}), Value::of_tcp({}), Value::of_char('B'), Value::of_bool(true)});
  Value out2 =
      l.engine->run_channel(1, Value::unit(), l.engine->init_state(1), p_bool);
  EXPECT_EQ(out2.as_tuple()[1].as_int(), 1);
}

TEST_P(EngineSuite, ExceptionInChannelPropagates) {
  Loaded l = load(
      "channel c(ps : unit, ss : unit, p : ip*blob) is\n"
      "  (if blobLen(#2 p) > 100 then raise \"TooBig\" else deliver(p); (ps, ss))",
      GetParam());
  Value small = Value::of_tuple({Value::of_ip({}), Value::of_blob(std::vector<std::uint8_t>(10))});
  Value big = Value::of_tuple({Value::of_ip({}), Value::of_blob(std::vector<std::uint8_t>(200))});
  EXPECT_NO_THROW(l.engine->run_channel(0, Value::unit(), Value::unit(), small));
  EXPECT_THROW(l.engine->run_channel(0, Value::unit(), Value::unit(), big),
               PlanPException);
}

TEST_P(EngineSuite, TryWithStateRestoredAfterHandler) {
  Loaded l = load(R"(
channel c(ps : int, ss : (int, int) hash_table, p : ip*blob)
initstate mkTable(4) is
  let val v : int = try tableGet(ss, blobLen(#2 p)) with -1
  in (deliver(p); (tableSet(ss, blobLen(#2 p), ps); (v, ss))) end
)",
                  GetParam());
  Value ss = l.engine->init_state(0);
  Value pkt = Value::of_tuple({Value::of_ip({}), Value::of_blob({1, 2})});
  // First packet: miss -> -1; records 0. Second: hit -> 0.
  Value o1 = l.engine->run_channel(0, Value::of_int(0), ss, pkt);
  EXPECT_EQ(o1.as_tuple()[0].as_int(), -1);
  Value o2 = l.engine->run_channel(0, Value::of_int(7), o1.as_tuple()[1], pkt);
  EXPECT_EQ(o2.as_tuple()[0].as_int(), 0);
}

TEST_P(EngineSuite, GlobalsSharedAcrossChannels) {
  Loaded l = load(R"(
val threshold : int = 50
channel c(ps : int, ss : unit, p : ip*blob) is
  (deliver(p); (if blobLen(#2 p) > threshold then ps + 1 else ps, ss))
)",
                  GetParam());
  Value big = Value::of_tuple({Value::of_ip({}), Value::of_blob(std::vector<std::uint8_t>(60))});
  Value out = l.engine->run_channel(0, Value::of_int(0), Value::unit(), big);
  EXPECT_EQ(out.as_tuple()[0].as_int(), 1);
}

TEST_P(EngineSuite, DeepExpressionNesting) {
  // Exercises stack discipline across branches, tries and calls.
  Loaded l = load(R"(
fun f(a : int, b : int) : int = if a > b then a - b else b - a
fun g(a : int) : int = f(a * 3, a + 7) + (try a / (a - a) with 11)
channel c(ps : int, ss : unit, p : ip*blob) is
  (deliver(p); (g(ps) + f(1, 2) + (if ps % 2 = 0 then 100 else 200), ss))
)",
                  GetParam());
  Value pkt = Value::of_tuple({Value::of_ip({}), Value::of_blob({})});
  // ps=4: f(12,11)=1, try 4/0 -> 11 => g=12; f(1,2)=1; even -> +100 => 113.
  Value out = l.engine->run_channel(0, Value::of_int(4), Value::unit(), pkt);
  EXPECT_EQ(out.as_tuple()[0].as_int(), 113);
  // ps=5: f(15,12)=3 + 11 = 14; +1; odd -> +200 => 215.
  Value out2 = l.engine->run_channel(0, Value::of_int(5), Value::unit(), pkt);
  EXPECT_EQ(out2.as_tuple()[0].as_int(), 215);
}

TEST_P(EngineSuite, PrintsMatchReference) {
  Loaded l = load(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*char*int) is
  if charPos(#3 p) = 65 then
    (print("CmdA: "); println(#4 p); (deliver(p); (ps, ss)))
  else (deliver(p); (ps, ss))
)",
                  GetParam());
  Value pkt = Value::of_tuple(
      {Value::of_ip({}), Value::of_tcp({}), Value::of_char('A'), Value::of_int(42)});
  l.engine->run_channel(0, Value::unit(), Value::unit(), pkt);
  EXPECT_EQ(l.env->output, "CmdA: 42\n");
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineSuite,
                         ::testing::Values(Which::kInterp, Which::kVm, Which::kJit),
                         [](const ::testing::TestParamInfo<Which>& info) {
                           return which_name(info.param);
                         });

// ---------------------------------------------------------------------------
// Exhaustive differential sweep: many small expressions, three engines, one
// packet matrix — results must be bit-identical across engines.
// ---------------------------------------------------------------------------

class DifferentialSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DifferentialSweep, EnginesAgree) {
  std::string body = GetParam();
  std::string src =
      "channel c(ps : int, ss : int, p : ip*tcp*blob) initstate 0 is\n"
      "  (deliver(p); ((" + body + "), ss))";

  std::vector<Value> results;
  std::vector<std::string> outputs;
  for (Which w : {Which::kInterp, Which::kVm, Which::kJit}) {
    Loaded l = load(src, w);
    Value acc = Value::of_int(0);
    for (int ps = -3; ps <= 3; ++ps) {
      Value pkt = mk_tcp_packet("10.0.0.1", "10.0.0.2", 1000 + ps, 80,
                                std::vector<std::uint8_t>(static_cast<std::size_t>(ps + 4)));
      Value out = l.engine->run_channel(0, Value::of_int(ps), Value::of_int(0), pkt);
      acc = Value::of_int(acc.as_int() * 31 + out.as_tuple()[0].as_int());
    }
    results.push_back(acc);
    outputs.push_back(l.env->output);
  }
  EXPECT_TRUE(results[0].equals(results[1]))
      << "interp=" << results[0].str() << " vm=" << results[1].str();
  EXPECT_TRUE(results[0].equals(results[2]))
      << "interp=" << results[0].str() << " jit=" << results[2].str();
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, DifferentialSweep,
    ::testing::Values(
        "ps + 1", "ps * ps - 3", "ps % 3 + ps / 2",
        "if ps > 0 then ps else -ps",
        "if ps = 0 then 100 else try 60 / ps with -9",
        "blobLen(#3 p) * 2 + tcpSrc(#2 p)",
        "(let val a : int = ps * 2 in a + (let val b : int = a + 1 in b * b end) end)",
        "if ps > 1 and ps < 3 then 1 else 0",
        "if ps < -1 or ps > 1 then 7 else 8",
        "max(min(ps, 2), -2) * 10",
        "abs(ps) + charPos('a')",
        "stringLen(intToString(ps * 1000))",
        "(try raise \"X\" with 5) + ps",
        "if tcpDst(#2 p) = 80 then ps + blobLen(#3 p) else raise \"NoMatch\"",
        "#1 (ps + 1, ps + 2) * #2 (ps + 3, ps + 4)",
        "(if ps % 2 = 0 then min(ps, 0) else max(ps, 0)) - (ps - 1)"));

}  // namespace
}  // namespace asp::planp
