// Image distillation extension (paper §5 medium-term goals).
#include <gtest/gtest.h>

#include "apps/asp_sources.hpp"
#include "net/network.hpp"
#include "planp/analysis.hpp"
#include "planp/parser.hpp"
#include "runtime/engine.hpp"

namespace asp::apps {
namespace {

using asp::net::ip;
using asp::net::millis;
using asp::net::Network;
using asp::net::Node;
using asp::net::Packet;
using asp::net::UdpSocket;

TEST(ImageDistill, AspPassesAllAnalyses) {
  auto r = planp::analyze(planp::typecheck(planp::parse(image_distill_asp())));
  EXPECT_TRUE(r.fully_verified())
      << r.global_termination_detail << r.delivery_detail << r.duplication_detail;
}

struct ImageRig {
  ImageRig() {
    src = &net.add_node("image-server");
    router = &net.add_router("router");
    dst = &net.add_node("viewer");
    net.link(*src, ip("10.0.1.1"), *router, ip("10.0.1.254"), 100e6, millis(1));
    seg = &net.segment("lan", 10e6, asp::net::micros(50));
    net.attach(*router, *seg, ip("192.168.1.254"));
    net.attach(*dst, *seg, ip("192.168.1.1"));
    src->routes().add_default(0);

    rt = std::make_unique<asp::runtime::AspRuntime>(*router);
    rt->set_monitored_medium(seg);
    rt->install(image_distill_asp());
  }

  std::size_t send_image(std::size_t bytes) {
    std::size_t received = 0;
    UdpSocket sink(*dst, 8008, [&](const Packet& p) { received += p.payload.size(); });
    UdpSocket out(*src, 8008, nullptr);
    out.send_to(dst->addr(), 8008, std::vector<std::uint8_t>(bytes, 0x7F));
    net.run_until(net.now() + asp::net::seconds(1));
    return received;
  }

  void load_segment(double fraction) {
    // Pre-warm the segment meter with synthetic carried traffic: enough
    // bytes in the trailing window to read as `fraction` utilization. The
    // meter averages over elapsed history when less than a window exists, so
    // start its clock one full window early (0-byte sentinel) for the burst
    // to read as a window-average.
    asp::net::BandwidthMeter& m = seg->meter();
    asp::net::SimTime window = m.window();
    double window_sec = asp::net::to_seconds(window);
    auto bytes = static_cast<std::uint64_t>(10e6 * fraction * window_sec / 8.0);
    net.run_until(net.now() + window);
    m.record(net.now() - window, 0);
    m.record(net.now(), bytes);
  }

  Network net;
  Node* src;
  Node* router;
  Node* dst;
  asp::net::EthernetSegment* seg;
  std::unique_ptr<asp::runtime::AspRuntime> rt;
};

TEST(ImageDistill, QuietLinkPassesImagesUntouched) {
  ImageRig rig;
  EXPECT_EQ(rig.send_image(8000), 8000u);
}

TEST(ImageDistill, LoadedLinkShrinksImages) {
  ImageRig rig;
  rig.load_segment(0.75);
  std::size_t got = rig.send_image(8000);
  EXPECT_EQ(got, 2000u);  // quality 4 at >=70% load
}

TEST(ImageDistill, SaturatedLinkShrinksHarder) {
  ImageRig rig;
  rig.load_segment(0.95);
  std::size_t got = rig.send_image(8000);
  EXPECT_EQ(got, 1000u);  // quality 8 at >=90% load
}

TEST(ImageDistill, PrimitiveSemantics) {
  planp::NullEnv env;
  auto checked = planp::typecheck(planp::parse(
      "val img : blob = blobFromString(\"abcdefgh\")\n"
      "val half : int = blobLen(distillImage(img, 2))\n"
      "val full : int = blobLen(distillImage(img, 1))\n"
      "val bad : int = try blobLen(distillImage(img, 99)) with -1"));
  planp::Interp interp(checked, env);
  EXPECT_EQ(interp.global(1).as_int(), 4);
  EXPECT_EQ(interp.global(2).as_int(), 8);
  EXPECT_EQ(interp.global(3).as_int(), -1);
}

}  // namespace
}  // namespace asp::apps
