#include "net/medium.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/node.hpp"

namespace asp::net {
namespace {

// Collects UDP payload deliveries on a node.
struct Sink {
  explicit Sink(Node& n, std::uint16_t port = 7)
      : sock(n, port, [this](const Packet& p) {
          packets.push_back(p);
          times.push_back(n_->events().now());
        }),
        n_(&n) {}
  UdpSocket sock;
  std::vector<Packet> packets;
  std::vector<SimTime> times;
  Node* n_;
};

Packet udp_to(Node& from, Ipv4Addr dst, std::size_t payload_bytes,
              std::uint16_t dport = 7) {
  return Packet::make_udp(from.addr(), dst, 9999, dport,
                          std::vector<std::uint8_t>(payload_bytes));
}

TEST(PointToPointLink, DeliversWithSerializationAndPropagationDelay) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  // 10 Mb/s, 1 ms propagation.
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
  Sink sink(b);

  // 1222-byte payload + 28 header = 1250 bytes = 1 ms at 10 Mb/s.
  a.send_ip(udp_to(a, b.addr(), 1222));
  net.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.times[0], millis(2));  // 1 ms serialize + 1 ms propagate
}

TEST(PointToPointLink, BackToBackPacketsQueueBehindEachOther) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
  Sink sink(b);

  a.send_ip(udp_to(a, b.addr(), 1222));  // 1250B -> 1ms
  a.send_ip(udp_to(a, b.addr(), 1222));
  net.run();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.times[0], millis(2));
  EXPECT_EQ(sink.times[1], millis(3));  // queued one serialization time later
}

TEST(PointToPointLink, IsFullDuplex) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
  Sink sink_a(a);
  Sink sink_b(b);

  a.send_ip(udp_to(a, b.addr(), 1222));
  b.send_ip(udp_to(b, a.addr(), 1222));
  net.run();
  // Both arrive at 2 ms: directions do not contend.
  ASSERT_EQ(sink_a.times.size(), 1u);
  ASSERT_EQ(sink_b.times.size(), 1u);
  EXPECT_EQ(sink_a.times[0], millis(2));
  EXPECT_EQ(sink_b.times[0], millis(2));
}

TEST(PointToPointLink, DropsWhenQueueOverflows) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  // Tiny queue: 2000 bytes of backlog allowed.
  auto& l = net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 1e6, millis(1), 2000);
  Sink sink(b);

  for (int i = 0; i < 10; ++i) a.send_ip(udp_to(a, b.addr(), 1000));
  net.run();
  EXPECT_GT(l.dropped_packets(), 0u);
  EXPECT_LT(sink.packets.size(), 10u);
  EXPECT_EQ(sink.packets.size() + l.dropped_packets(), 10u);
}

TEST(EthernetSegment, DeliversToAddressedStationOnly) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Node& c = net.add_node("c");
  auto& seg = net.segment("lan", 10e6);
  net.attach(a, seg, ip("192.168.1.1"));
  net.attach(b, seg, ip("192.168.1.2"));
  net.attach(c, seg, ip("192.168.1.3"));
  Sink sink_b(b);
  Sink sink_c(c);

  a.send_ip(udp_to(a, b.addr(), 100));
  net.run();
  EXPECT_EQ(sink_b.packets.size(), 1u);
  EXPECT_EQ(sink_c.packets.size(), 0u);
}

TEST(EthernetSegment, SharedMediumContends) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Node& c = net.add_node("c");
  auto& seg = net.segment("lan", 10e6, 0);  // zero propagation for exactness
  net.attach(a, seg, ip("192.168.1.1"));
  net.attach(b, seg, ip("192.168.1.2"));
  net.attach(c, seg, ip("192.168.1.3"));
  Sink sink_c(c);

  // Both a and b send 1250-byte packets (1 ms each) to c at t=0; the second
  // must wait for the first: arrivals at 1 ms and 2 ms.
  a.send_ip(udp_to(a, c.addr(), 1222));
  b.send_ip(udp_to(b, c.addr(), 1222));
  net.run();
  ASSERT_EQ(sink_c.times.size(), 2u);
  EXPECT_EQ(sink_c.times[0], millis(1));
  EXPECT_EQ(sink_c.times[1], millis(2));
}

TEST(EthernetSegment, MulticastReachesAllGroupMembers) {
  Network net;
  Node& src = net.add_node("src");
  Node& m1 = net.add_node("m1");
  Node& m2 = net.add_node("m2");
  Node& out = net.add_node("out");
  auto& seg = net.segment("lan", 10e6);
  net.attach(src, seg, ip("192.168.1.1"));
  net.attach(m1, seg, ip("192.168.1.2"));
  net.attach(m2, seg, ip("192.168.1.3"));
  net.attach(out, seg, ip("192.168.1.4"));

  Ipv4Addr group = ip("224.1.2.3");
  m1.join_group(group);
  m2.join_group(group);
  Sink s1(m1);
  Sink s2(m2);
  Sink s3(out);

  src.send_ip(udp_to(src, group, 100));
  net.run();
  EXPECT_EQ(s1.packets.size(), 1u);
  EXPECT_EQ(s2.packets.size(), 1u);
  EXPECT_EQ(s3.packets.size(), 0u);  // attached but not joined
}

TEST(EthernetSegment, PromiscuousInterfaceSeesForeignUnicast) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Node& spy = net.add_node("spy");
  auto& seg = net.segment("lan", 10e6);
  net.attach(a, seg, ip("192.168.1.1"));
  net.attach(b, seg, ip("192.168.1.2"));
  Interface& spy_if = net.attach(spy, seg, ip("192.168.1.3"));
  spy_if.set_promiscuous(true);

  int spied = 0;
  spy.set_ip_hook([&](Packet& p, Interface&) {
    if (!spy.owns(p.ip.dst)) ++spied;
    return false;  // observe only
  });
  Sink sink_b(b);

  a.send_ip(udp_to(a, b.addr(), 100));
  net.run();
  EXPECT_EQ(sink_b.packets.size(), 1u);  // normal delivery unaffected
  EXPECT_EQ(spied, 1);
}

TEST(EthernetSegment, UnmatchedUnicastGoesToGateway) {
  Network net;
  Node& a = net.add_node("a");
  Node& r = net.add_router("r");
  auto& seg = net.segment("lan", 10e6);
  net.attach(a, seg, ip("192.168.1.1"));
  net.attach(r, seg, ip("192.168.1.254"));
  Node& far = net.add_node("far");
  net.link(r, ip("10.0.0.1"), far, ip("10.0.0.2"), 10e6, millis(1));

  a.routes().add_default(0, ip("192.168.1.254"));
  r.routes().add(ip("10.0.0.0"), 24, 1);
  Sink sink(far);

  a.send_ip(udp_to(a, far.addr(), 100));
  net.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(EthernetSegment, UtilizationTracksOfferedLoad) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& seg = net.segment("lan", 10e6, 0);
  net.attach(a, seg, ip("192.168.1.1"));
  net.attach(b, seg, ip("192.168.1.2"));
  Sink sink(b);

  // Send 5 Mb/s for half a second: 625 kB in 0.5s, as 1250B packets every 2ms.
  for (int i = 0; i < 250; ++i) {
    net.events().schedule_at(millis(2) * i,
                             [&] { a.send_ip(udp_to(a, b.addr(), 1222)); });
  }
  net.run_until(millis(500));
  EXPECT_NEAR(seg.utilization(), 0.5, 0.05);
}

}  // namespace
}  // namespace asp::net
