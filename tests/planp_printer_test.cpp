// Pretty-printer round trips: print(parse(src)) re-parses to a program that
// prints identically — i.e. printing is a normal form. Checked for every
// shipped ASP and for randomly generated expressions.
#include <gtest/gtest.h>

#include <random>

#include "apps/asp_sources.hpp"
#include "net/network.hpp"
#include "planp/parser.hpp"
#include "planp/typecheck.hpp"

namespace asp::planp {
namespace {

void expect_roundtrip_program(const std::string& src) {
  Program p1 = parse(src);
  std::string printed1 = to_string(p1);
  Program p2;
  ASSERT_NO_THROW(p2 = parse(printed1)) << "printer produced unparseable output:\n"
                                        << printed1;
  EXPECT_EQ(to_string(p2), printed1) << "printing is not a normal form for:\n" << src;
  // And it still typechecks to the same interface.
  CheckedProgram c1 = typecheck(parse(src));
  CheckedProgram c2 = typecheck(std::move(p2));
  EXPECT_EQ(c1.channels.size(), c2.channels.size());
  EXPECT_EQ(c1.functions.size(), c2.functions.size());
}

TEST(Printer, AllShippedAspsRoundTrip) {
  using namespace asp::apps;
  for (const std::string& src :
       {audio_router_asp(), audio_client_asp(),
        http_gateway_asp(net::ip("10.0.9.9"), net::ip("10.0.2.1"), net::ip("10.0.2.2")),
        http_gateway_hash_asp(net::ip("10.0.9.9"), net::ip("10.0.2.1"),
                              net::ip("10.0.2.2")),
        http_gateway_failover_asp(net::ip("10.0.9.9"), net::ip("10.0.2.1"),
                                  net::ip("10.0.2.2")),
        mpeg_monitor_asp(net::ip("10.0.1.1")), mpeg_reply_asp(),
        mpeg_capture_asp(net::ip("192.168.1.1"), 7000, 7010), image_distill_asp(),
        bridge_asp(), audio_router_hysteresis_asp()}) {
    expect_roundtrip_program(src);
  }
}

TEST(Printer, EscapesStringsAndChars) {
  Program p = parse(R"(val s : string = "a\nb\"c\\d"
val c : char = '\n')");
  std::string printed = to_string(p);
  Program p2 = parse(printed);
  const auto& v = std::get<ValDef>(p2.decls[0]);
  EXPECT_EQ(v.init->str_val, "a\nb\"c\\d");
  const auto& c = std::get<ValDef>(p2.decls[1]);
  EXPECT_EQ(c.init->char_val, '\n');
}

TEST(Printer, TryBindsTighterThanSurroundingOperators) {
  // A regression trap: `(try a with b) + 1` must not re-parse as
  // `try a with (b + 1)`.
  ExprPtr e = parse_expr("(try 1 with 2) + 1");
  std::string printed = to_string(*e);
  ExprPtr e2 = parse_expr(printed);
  EXPECT_EQ(to_string(*e2), printed);
  EXPECT_EQ(e2->kind, Expr::Kind::kBinOp);  // '+' stays outermost
}

TEST(Printer, RandomExpressionsRoundTrip) {
  std::mt19937 rng(2026);
  // Build nested expressions out of printable pieces and check the normal
  // form property on each.
  std::vector<std::string> pool = {
      "1", "ps", "true", "(1, 2)", "#1 (ps, 2)", "min(ps, 3)",
      "(try raise \"X\" with 0)", "(if ps > 0 then 1 else 2)",
      "(let val q : int = ps in q end)", "-ps", "(ps; 1)",
  };
  for (int round = 0; round < 50; ++round) {
    std::string a = pool[rng() % pool.size()];
    std::string b = pool[rng() % pool.size()];
    const char* ops[] = {" + ", " - ", " * ", " = ", " < "};
    std::string src = "(" + a + ops[rng() % 3] + b + ")";  // arith only: types ok
    ExprPtr e1 = parse_expr(src);
    std::string printed = to_string(*e1);
    ExprPtr e2;
    ASSERT_NO_THROW(e2 = parse_expr(printed)) << printed;
    EXPECT_EQ(to_string(*e2), printed) << src;
  }
}

}  // namespace
}  // namespace asp::planp
