#include "planp/disasm.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "planp/parser.hpp"

namespace asp::planp {
namespace {

CompiledProgram compile_src(const std::string& src, CheckedProgram& checked) {
  checked = typecheck(parse(src));
  return compile(checked);
}

TEST(Disasm, BytecodeListingNamesOpsAndConstants) {
  CheckedProgram checked;
  CompiledProgram prog = compile_src(
      "channel c(ps : int, ss : unit, p : ip*blob) is (deliver(p); (ps + 42, ss))",
      checked);
  std::string listing = disassemble(prog);
  EXPECT_NE(listing.find("channel c"), std::string::npos);
  EXPECT_NE(listing.find("LoadLocal"), std::string::npos);
  EXPECT_NE(listing.find("; 42"), std::string::npos);
  EXPECT_NE(listing.find("Send"), std::string::npos);
  EXPECT_NE(listing.find("Return"), std::string::npos);
}

TEST(Disasm, FusionShowsUpInSpecializedListing) {
  CheckedProgram checked;
  CompiledProgram prog = compile_src(R"(
channel c(ps : int, ss : unit, p : ip*tcp*blob) is
  let val iph : ip = #1 p in
    (deliver(p); (if tcpDst(#2 p) = 80 then ps + 1 else ps, ss))
  end
)",
                                     checked);
  JitBlock fused = specialize_block(prog.channel_bodies[0], prog, /*fuse=*/true);
  JitBlock plain = specialize_block(prog.channel_bodies[0], prog, /*fuse=*/false);
  std::string listing = disassemble(fused);
  // `val iph = #1 p` fuses to MoveField; `tcpDst(#2 p)` projects then calls;
  // `= 80` fuses to EqConst.
  EXPECT_NE(listing.find("MoveField*"), std::string::npos) << listing;
  EXPECT_NE(listing.find("EqConst*"), std::string::npos) << listing;
  EXPECT_LT(fused.code.size(), plain.code.size());
  // The unfused listing has no superinstructions at all.
  std::string plain_listing = disassemble(plain);
  EXPECT_EQ(plain_listing.find('*'), std::string::npos) << plain_listing;
}

TEST(Disasm, JumpTargetsStayInRangeAfterFusion) {
  CheckedProgram checked;
  CompiledProgram prog = compile_src(R"(
fun clas(x : int) : int =
  if x > 100 then 3 else if x > 10 then 2 else if x > 1 then 1 else 0
channel c(ps : int, ss : unit, p : ip*blob) is
  (deliver(p); (clas(ps) + clas(blobLen(#2 p)), ss))
)",
                                     checked);
  for (const CodeBlock* block :
       {&prog.functions[0], &prog.channel_bodies[0]}) {
    JitBlock jb = specialize_block(*block, prog, true);
    for (const SInstr& in : jb.code) {
      if (in.op == jop::kJump || in.op == jop::kJumpIfFalse ||
          in.op == jop::kJumpIfTrue || in.op == jop::kTryPush) {
        EXPECT_GE(in.a, 0);
        EXPECT_LE(in.a, static_cast<std::int32_t>(jb.code.size()));
      }
    }
  }
}

TEST(Disasm, EveryOpcodeHasAName) {
  for (int op = 0; op < static_cast<int>(jop::kCount); ++op) {
    EXPECT_STRNE(jop_name(op), "?") << "jop " << op;
  }
}

}  // namespace
}  // namespace asp::planp
