#include "planp/analysis.hpp"

#include <gtest/gtest.h>

#include "planp/parser.hpp"
#include "planp/program.hpp"
#include "planp/primitives.hpp"

namespace asp::planp {
namespace {

AnalysisReport run(const std::string& src) { return analyze(typecheck(parse(src))); }

TEST(Analysis, LocalTerminationAlwaysHolds) {
  // By construction: no loops, no recursion. The checker rejects recursion
  // before the analysis even runs; anything that checks locally terminates.
  AnalysisReport r = run("channel c(ps : unit, ss : unit, p : ip*blob) is (deliver(p); (ps, ss))");
  EXPECT_TRUE(r.local_termination);
}

// --- global termination ------------------------------------------------------

TEST(Analysis, ForwardingWithUnchangedDestinationTerminates) {
  AnalysisReport r = run(
      "channel c(ps : unit, ss : unit, p : ip*tcp*blob) is (OnRemote(c, p); (ps, ss))");
  EXPECT_TRUE(r.global_termination) << r.global_termination_detail;
  EXPECT_GT(r.states_explored, 0);
}

TEST(Analysis, RewriteToFixedServerTerminates) {
  // The HTTP gateway shape: rewrite to a literal once; afterwards preserved.
  AnalysisReport r = run(R"(
channel network(ps : unit, ss : unit, p : ip*tcp*blob) is
  if tcpDst(#2 p) = 80 then
    (OnRemote(network, (ipDestSet(#1 p, 131.254.60.81), #2 p, #3 p)); (ps, ss))
  else (OnRemote(network, p); (ps, ss))
)");
  EXPECT_TRUE(r.global_termination) << r.global_termination_detail;
}

TEST(Analysis, PingPongBetweenTwoLiteralsIsRejected) {
  AnalysisReport r = run(R"(
channel c(ps : unit, ss : unit, p : ip*blob) is
  if ipDst(#1 p) = 10.0.0.1 then
    (OnRemote(c, (ipDestSet(#1 p, 10.0.0.2), #2 p)); (ps, ss))
  else
    (OnRemote(c, (ipDestSet(#1 p, 10.0.0.1), #2 p)); (ps, ss))
)");
  EXPECT_FALSE(r.global_termination);
  EXPECT_NE(r.global_termination_detail.find("cycle"), std::string::npos);
}

TEST(Analysis, BounceBackToSourceIsRejected) {
  // dst := src every hop could ping-pong forever.
  AnalysisReport r = run(R"(
channel c(ps : unit, ss : unit, p : ip*blob) is
  (OnRemote(c, (ipDestSet(ipSrcSet(#1 p, ipDst(#1 p)), ipSrc(#1 p)), #2 p)); (ps, ss))
)");
  EXPECT_FALSE(r.global_termination);
}

TEST(Analysis, SingleReplyToSourceTerminates) {
  // Reply once on a *different* channel that only delivers: no cycle.
  AnalysisReport r = run(R"(
channel sink(ps : unit, ss : unit, p : ip*blob) is (deliver(p); (ps, ss))
channel c(ps : unit, ss : unit, p : ip*blob) is
  (OnRemote(sink, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p)); (ps, ss))
)");
  EXPECT_TRUE(r.global_termination) << r.global_termination_detail;
}

TEST(Analysis, UnknownDestinationInCycleIsRejected) {
  AnalysisReport r = run(R"(
val mirror : host = 10.0.0.9
fun pick(a : host, b : host, n : int) : host = if n % 2 = 0 then a else b
channel c(ps : int, ss : unit, p : ip*blob) is
  (OnRemote(c, (ipDestSet(#1 p, pick(ipSrc(#1 p), mirror, ps)), #2 p)); (ps + 1, ss))
)");
  EXPECT_FALSE(r.global_termination);
}

TEST(Analysis, StateSpaceIsSmallForRealProtocols) {
  // Paper §2.1: the exploration is on the order of r*d*2^d with tiny r and d.
  AnalysisReport r = run(R"(
channel network(ps : unit, ss : unit, p : ip*tcp*blob) is
  if tcpDst(#2 p) = 80 then
    (OnRemote(network, (ipDestSet(#1 p, 131.254.60.81), #2 p, #3 p)); (ps, ss))
  else (OnRemote(network, p); (ps, ss))
)");
  EXPECT_LE(r.states_explored, 16);
}

// --- guaranteed delivery -----------------------------------------------------

TEST(Analysis, AllPathsForwardOrDeliverPasses) {
  AnalysisReport r = run(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*blob) is
  if tcpDst(#2 p) = 80 then (OnRemote(c, p); (ps, ss))
  else (deliver(p); (ps, ss))
)");
  EXPECT_TRUE(r.guaranteed_delivery) << r.delivery_detail;
}

TEST(Analysis, PathWithoutSendFailsDelivery) {
  AnalysisReport r = run(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*blob) is
  if tcpDst(#2 p) = 80 then (deliver(p); (ps, ss))
  else (ps, ss)
)");
  EXPECT_FALSE(r.guaranteed_delivery);
  EXPECT_NE(r.delivery_detail.find("drops"), std::string::npos);
}

TEST(Analysis, ExplicitDropFailsDelivery) {
  AnalysisReport r = run(
      "channel c(ps : unit, ss : unit, p : ip*blob) is (drop(); (ps, ss))");
  EXPECT_FALSE(r.guaranteed_delivery);
}

TEST(Analysis, UnhandledExceptionFailsDelivery) {
  AnalysisReport r = run(R"(
channel c(ps : unit, ss : (int, int) hash_table, p : ip*blob)
initstate mkTable(4) is
  (println(tableGet(ss, blobLen(#2 p))); (deliver(p); (ps, ss)))
)");
  EXPECT_FALSE(r.guaranteed_delivery);
  EXPECT_NE(r.delivery_detail.find("exception"), std::string::npos);
}

TEST(Analysis, HandledExceptionPassesDelivery) {
  AnalysisReport r = run(R"(
channel c(ps : unit, ss : (int, int) hash_table, p : ip*blob)
initstate mkTable(4) is
  (println(try tableGet(ss, blobLen(#2 p)) with 0); (deliver(p); (ps, ss)))
)");
  EXPECT_TRUE(r.guaranteed_delivery) << r.delivery_detail;
}

TEST(Analysis, DivisionByNonConstantMayRaise) {
  AnalysisReport r = run(
      "channel c(ps : int, ss : unit, p : ip*blob) is\n"
      "  (deliver(p); (blobLen(#2 p) / ps, ss))");
  EXPECT_FALSE(r.guaranteed_delivery);
  // Constant divisor is fine:
  AnalysisReport r2 = run(
      "channel c(ps : int, ss : unit, p : ip*blob) is\n"
      "  (deliver(p); (ps / 2, ss))");
  EXPECT_TRUE(r2.guaranteed_delivery) << r2.delivery_detail;
}

TEST(Analysis, HandlerOnlyDeliversIfBothSidesDo) {
  // Protected part may raise before sending; the handler must send too.
  AnalysisReport good = run(R"(
channel c(ps : unit, ss : (int, int) hash_table, p : ip*blob)
initstate mkTable(4) is
  (try (println(tableGet(ss, 1)); deliver(p)) with deliver(p); (ps, ss))
)");
  EXPECT_TRUE(good.guaranteed_delivery) << good.delivery_detail;

  AnalysisReport bad = run(R"(
channel c(ps : unit, ss : (int, int) hash_table, p : ip*blob)
initstate mkTable(4) is
  (try (println(tableGet(ss, 1)); deliver(p)) with println(0); (ps, ss))
)");
  EXPECT_FALSE(bad.guaranteed_delivery);
}

// --- linear duplication ------------------------------------------------------

TEST(Analysis, SingleSendPerPathIsLinear) {
  AnalysisReport r = run(
      "channel c(ps : unit, ss : unit, p : ip*blob) is (OnRemote(c, p); (ps, ss))");
  EXPECT_TRUE(r.linear_duplication) << r.duplication_detail;
}

TEST(Analysis, DuplicationIntoDeadEndIsLinear) {
  // Two sends per path, but the target never re-emits: a bounded tree.
  AnalysisReport r = run(R"(
channel sink(ps : unit, ss : unit, p : ip*blob) is (deliver(p); (ps, ss))
channel c(ps : unit, ss : unit, p : ip*blob) is
  (OnRemote(sink, p); OnRemote(sink, p); (ps, ss))
)");
  EXPECT_TRUE(r.linear_duplication) << r.duplication_detail;
}

TEST(Analysis, SelfDuplicationIsExponentialAndRejected) {
  AnalysisReport r = run(R"(
channel c(ps : unit, ss : unit, p : ip*blob) is
  (OnRemote(c, p); OnRemote(c, p); (ps, ss))
)");
  EXPECT_FALSE(r.linear_duplication);
  EXPECT_NE(r.duplication_detail.find("duplicates"), std::string::npos);
}

TEST(Analysis, DuplicationThroughACycleIsRejected) {
  AnalysisReport r = run(R"(
channel a(ps : unit, ss : unit, p : ip*blob) is
  (OnRemote(b, p); OnRemote(b, p); (ps, ss))
channel b(ps : unit, ss : unit, p : ip*blob) is (OnRemote(a, p); (ps, ss))
)");
  EXPECT_FALSE(r.linear_duplication);
}

TEST(Analysis, BranchesDoNotSumSends) {
  // One send per branch: max over branches is 1 -> linear, even in a cycle.
  AnalysisReport r = run(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*blob) is
  if tcpDst(#2 p) = 80 then (OnRemote(c, p); (ps, ss))
  else (OnRemote(c, p); (ps, ss))
)");
  EXPECT_TRUE(r.linear_duplication) << r.duplication_detail;
}

TEST(Analysis, FixpointIterationCountReported) {
  AnalysisReport r = run(R"(
channel a(ps : unit, ss : unit, p : ip*blob) is (OnRemote(b, p); (ps, ss))
channel b(ps : unit, ss : unit, p : ip*blob) is (OnRemote(a, p); (ps, ss))
)");
  EXPECT_GE(r.fixpoint_iterations, 1);
}

// --- the verification gate ----------------------------------------------------

TEST(Verification, GateAcceptsSafeProtocol) {
  NullEnv env;
  auto proto = Protocol::load(
      "channel c(ps : unit, ss : unit, p : ip*blob) is (deliver(p); (ps, ss))", env);
  EXPECT_TRUE(proto->report().accepted());
}

TEST(Verification, GateRejectsNonTerminatingProtocol) {
  NullEnv env;
  EXPECT_THROW(Protocol::load(R"(
channel c(ps : unit, ss : unit, p : ip*blob) is
  if ipDst(#1 p) = 10.0.0.1 then
    (OnRemote(c, (ipDestSet(#1 p, 10.0.0.2), #2 p)); (ps, ss))
  else
    (OnRemote(c, (ipDestSet(#1 p, 10.0.0.1), #2 p)); (ps, ss))
)",
                              env),
               VerificationError);
}

TEST(Verification, PrivilegedLoadBypassesGate) {
  NullEnv env;
  Protocol::Options opts;
  opts.require_verified = false;
  auto proto = Protocol::load(R"(
channel c(ps : unit, ss : unit, p : ip*blob) is
  (OnRemote(c, p); OnRemote(c, p); (ps, ss))
)",
                              env, opts);
  EXPECT_FALSE(proto->report().accepted());
  EXPECT_FALSE(proto->report().linear_duplication);
}

TEST(Verification, DeliveryIsAdvisoryNotBlocking) {
  NullEnv env;
  auto proto = Protocol::load(
      "channel c(ps : unit, ss : unit, p : ip*blob) is (drop(); (ps, ss))", env);
  EXPECT_TRUE(proto->report().accepted());
  EXPECT_FALSE(proto->report().fully_verified());
}

}  // namespace
}  // namespace asp::planp
