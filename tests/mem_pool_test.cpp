// The pooled-buffer & arena memory subsystem: recycling really reuses
// storage, COW aliasing keeps shared bytes intact, poison-on-free scribbles
// recycled memory, and the inline reps (ScalarPair, SmallFn) stay off the
// heap while remaining observably identical to their boxed forms.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/binmap.hpp"
#include "mem/pool.hpp"
#include "mem/shard.hpp"
#include "mem/smallfn.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "planp/value.hpp"

namespace asp {
namespace {

using mem::PoolStats;
using planp::Value;

/// Poison mode is a process-global toggle shared with every other test in
/// this binary; always restore it.
struct PoisonGuard {
  bool prev;
  explicit PoisonGuard(bool on) : prev(mem::poison_enabled()) { mem::set_poison(on); }
  ~PoisonGuard() { mem::set_poison(prev); }
};

// --- binmap -------------------------------------------------------------------

TEST(Binmap, FindFirstTracksLowestSetIndex) {
  mem::Binmap bm;
  EXPECT_FALSE(bm.any());
  EXPECT_EQ(bm.find_first(), -1);

  bm.set(70);
  bm.set(7);
  bm.set(4099);  // third l1 group — exercises every tier
  EXPECT_TRUE(bm.test(7));
  EXPECT_TRUE(bm.test(70));
  EXPECT_TRUE(bm.test(4099));
  EXPECT_FALSE(bm.test(8));
  EXPECT_EQ(bm.find_first(), 7);

  bm.clear(7);
  EXPECT_EQ(bm.find_first(), 70);
  bm.clear(70);
  EXPECT_EQ(bm.find_first(), 4099);
  bm.clear(4099);
  EXPECT_FALSE(bm.any());
  EXPECT_EQ(bm.find_first(), -1);
}

TEST(Binmap, ClearBeyondGrowthIsANoOp) {
  mem::Binmap bm;
  bm.clear(100000);  // never set, l2 never grown: must not grow or crash
  bm.set(3);
  bm.clear(100000);
  EXPECT_EQ(bm.find_first(), 3);
}

// --- reset hook ---------------------------------------------------------------

TEST(PoolReset, ResetForTestZeroesCountersAndPurgesFreelists) {
  mem::reset_for_test();
  const PoolStats& st = mem::buffer_pool().stats();
  { auto warm = mem::buffer_pool().acquire(100); }
  EXPECT_GT(st.misses + st.hits, 0u);

  mem::reset_for_test();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_EQ(st.recycled, 0u);
  EXPECT_EQ(st.spills, 0u);
  // Freelists purged: the next acquire deterministically misses, regardless
  // of what earlier tests in this binary recycled.
  auto buf = mem::buffer_pool().acquire(100);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 0u);
}

// --- buffer pool --------------------------------------------------------------

TEST(BufferPool, RecyclingReusesStorageAndCapacity) {
  mem::reset_for_test();  // deterministic stats baseline (DESIGN.md §6e)
  const PoolStats& st = mem::buffer_pool().stats();

  auto first = mem::buffer_pool().acquire(1000);
  first->assign(1000, 0x11);
  const std::uint8_t* storage = first->data();
  const std::size_t cap = first->capacity();
  first.reset();  // recycles: capacity-classed freelist, not the allocator

  std::uint64_t hits_before = st.hits;
  auto second = mem::buffer_pool().acquire(1000);
  EXPECT_EQ(st.hits, hits_before + 1) << "same-class acquire missed the freelist";
  EXPECT_EQ(second->data(), storage) << "freelist did not hand back the node";
  EXPECT_GE(second->capacity(), cap);
  EXPECT_TRUE(second->empty()) << "recycled buffer not cleared";
}

TEST(BufferPool, AdoptTakesStorageWithoutCopying) {
  std::vector<std::uint8_t> bytes(256, 0x2A);
  const std::uint8_t* storage = bytes.data();
  net::Buffer b = net::make_buffer(std::move(bytes));
  EXPECT_EQ(b->data(), storage) << "make_buffer copied instead of adopting";
  EXPECT_EQ(b->size(), 256u);
}

TEST(BufferPool, CowMutateClonesOnlyWhenShared) {
  net::Payload p(std::vector<std::uint8_t>{1, 2, 3, 4});
  net::Buffer alias = p.buffer();  // a blob Value or aliased packet
  EXPECT_EQ(alias.use_count(), 2);

  p.mutate()[0] = 9;  // shared -> must clone into a fresh pooled buffer
  EXPECT_EQ((*alias)[0], 1) << "COW clone wrote through the alias";
  EXPECT_EQ(p.bytes()[0], 9);
  EXPECT_EQ(alias.use_count(), 1) << "payload still aliases the old buffer";

  const std::uint8_t* unshared = p.bytes().data();
  p.mutate()[1] = 8;  // sole owner -> must mutate in place
  EXPECT_EQ(p.bytes().data(), unshared) << "unshared mutate cloned needlessly";
}

TEST(BufferPool, AliasKeepsRecycledBufferAlive) {
  // The recycler must only run when the *last* reference drops: a blob Value
  // aliasing a payload keeps the bytes valid after the packet dies.
  net::Buffer alias;
  {
    net::Payload p(std::vector<std::uint8_t>{7, 7, 7});
    alias = p.buffer();
  }
  ASSERT_EQ(alias.use_count(), 1);
  EXPECT_EQ((*alias)[2], 7);
}

TEST(BufferPool, PoisonOnFreeScribblesRecycledBytes) {
  PoisonGuard poison(true);
  auto buf = mem::buffer_pool().acquire(128);
  buf->assign(128, 0x11);
  const std::uint8_t* storage = buf->data();
  buf.reset();
  // The node sits on the freelist; its storage is still mapped, and poison
  // mode must have overwritten the stale contents.
  EXPECT_EQ(storage[0], mem::kPoisonByte);
  EXPECT_EQ(storage[127], mem::kPoisonByte);
}

// --- slab pool ----------------------------------------------------------------

TEST(SlabPool, SameClassRoundTripReusesBlock) {
  // Binmap allocation is lowest-free-first: freeing the lowest block makes
  // it the very next allocation in its class again.
  void* a = mem::slab_pool().allocate(64);
  mem::slab_pool().deallocate(a, 64);
  void* b = mem::slab_pool().allocate(64);
  EXPECT_EQ(a, b) << "freed slab block was not first in line for reuse";
  mem::slab_pool().deallocate(b, 64);
}

TEST(SlabPool, OversizedRequestsFallThrough) {
  void* p = mem::slab_pool().allocate(mem::SlabPool::kMaxBlock + 1);
  ASSERT_NE(p, nullptr);
  mem::slab_pool().deallocate(p, mem::SlabPool::kMaxBlock + 1);
}

// --- tuple pool / Value reps --------------------------------------------------

TEST(TuplePool, TupleStorageIsRecycled) {
  // The engines' steady-state path: make_tuple_storage + push_back keeps the
  // element capacity across recycles (of_tuple instead *adopts* the caller's
  // vector, so its storage is whatever the caller built). LIFO freelist and
  // a single-threaded test body make the reuse deterministic.
  const Value* data_before;
  {
    planp::TupleRep t = Value::make_tuple_storage(3);
    for (int i = 1; i <= 3; ++i) t->push_back(Value::of_int(i));
    Value v = Value::of_tuple_rep(std::move(t));
    data_before = v.as_tuple().data();
  }
  planp::TupleRep t2 = Value::make_tuple_storage(3);
  EXPECT_EQ(t2->data(), data_before) << "tuple storage not recycled";
  EXPECT_GE(t2->capacity(), 3u) << "recycled capacity lost";
  EXPECT_TRUE(t2->empty());
}

TEST(TuplePool, RecycledTupleReleasesElementRefs) {
  // Clearing on recycle must drop element references (a held blob would
  // otherwise pin its buffer forever from the freelist).
  net::Buffer alias;
  {
    net::Payload p(std::vector<std::uint8_t>{9, 9});
    alias = p.buffer();
    Value t = Value::of_tuple({Value::of_blob_shared(alias), Value::of_int(1)});
    EXPECT_EQ(alias.use_count(), 3);  // payload + tuple element + alias
  }
  EXPECT_EQ(alias.use_count(), 1) << "recycled tuple still holds the blob";
}

TEST(ValueRep, ScalarPairStaysInline) {
  Value p = Value::of_pair(Value::of_int(1), Value::of_bool(true));
  EXPECT_TRUE(std::holds_alternative<planp::ScalarPair>(p.rep()));
  EXPECT_TRUE(p.is_tuple());
  EXPECT_EQ(p.tuple_size(), 2u);
  EXPECT_EQ(p.tuple_at(0).as_int(), 1);
  EXPECT_TRUE(p.tuple_at(1).as_bool());

  // A non-scalar element forces the pooled rep.
  Value q = Value::of_pair(Value::of_string("x"), Value::of_int(2));
  EXPECT_TRUE(std::holds_alternative<planp::TupleRep>(q.rep()));
}

TEST(ValueRep, ScalarPairIndistinguishableFromHeapTuple) {
  Value inline_pair = Value::of_pair(Value::of_int(42), Value::of_char('z'));
  Value heap_pair = Value::of_tuple({Value::of_int(42), Value::of_char('z')});
  ASSERT_TRUE(std::holds_alternative<planp::ScalarPair>(inline_pair.rep()));
  ASSERT_TRUE(std::holds_alternative<planp::TupleRep>(heap_pair.rep()));

  EXPECT_TRUE(inline_pair.equals(heap_pair));
  EXPECT_TRUE(heap_pair.equals(inline_pair));
  EXPECT_EQ(inline_pair.hash(), heap_pair.hash());
  EXPECT_EQ(inline_pair.str(), heap_pair.str());
}

TEST(ValueRep, AsTuplePromotesScalarPairLazily) {
  Value p = Value::of_pair(Value::of_int(3), Value::of_int(4));
  ASSERT_TRUE(std::holds_alternative<planp::ScalarPair>(p.rep()));
  const std::vector<Value>& vec = p.as_tuple();  // promotes
  ASSERT_EQ(vec.size(), 2u);
  EXPECT_EQ(vec[0].as_int(), 3);
  EXPECT_TRUE(std::holds_alternative<planp::TupleRep>(p.rep()));
  // Promotion must not change observable identity.
  EXPECT_TRUE(p.equals(Value::of_pair(Value::of_int(3), Value::of_int(4))));
}

// --- box pool -----------------------------------------------------------------

TEST(BoxPool, BoxedPacketRecyclesAndReleasesPayload) {
  mem::reset_for_test();  // deterministic stats baseline
  const PoolStats& st = net::packet_boxes().stats();

  net::Buffer alias;
  std::uint64_t live_before = st.live;
  {
    net::Packet p = net::Packet::make_udp(net::ip("10.0.0.1"), net::ip("10.0.0.2"),
                                          1, 2, std::vector<std::uint8_t>(64, 0xEE));
    alias = p.payload.buffer();
    auto box = net::packet_boxes().box(std::move(p));
    EXPECT_EQ(st.live, live_before + 1);
    EXPECT_EQ(box->payload.size(), 64u);
  }
  EXPECT_EQ(st.live, live_before) << "box handle did not recycle";
  // Recycling resets the node to Packet{}, so the payload buffer was let go.
  EXPECT_EQ(alias.use_count(), 1) << "recycled box still pins the payload";

  std::uint64_t hits_before = st.hits;
  auto again = net::packet_boxes().box(net::Packet{});
  EXPECT_EQ(st.hits, hits_before + 1) << "second box missed the freelist";
}

// --- frame arena --------------------------------------------------------------

TEST(FrameArena, FrameAddressesSurviveGrowth) {
  mem::FrameArena<int> arena;
  auto& f0 = arena.at_depth(0);
  f0.locals.assign({1, 2, 3});
  int* data = f0.locals.data();
  arena.at_depth(7);  // forces growth past depth 0
  EXPECT_EQ(arena.depth(), 8u);
  EXPECT_EQ(arena.at_depth(0).locals.data(), data)
      << "growing the arena moved an outstanding frame";
}

TEST(FrameArena, ScribbleOverwritesEverySlot) {
  mem::FrameArena<int> arena;
  auto& f = arena.at_depth(0);
  f.locals.assign({1, 2});
  f.stack.assign({3});
  f.args.assign({4, 5, 6});
  arena.scribble(0, 99);
  for (int v : f.locals) EXPECT_EQ(v, 99);
  for (int v : f.stack) EXPECT_EQ(v, 99);
  for (int v : f.args) EXPECT_EQ(v, 99);
  arena.scribble(12, 99);  // beyond depth: must be a no-op, not a crash
}

// --- SmallFn ------------------------------------------------------------------

TEST(SmallFn, SmallCapturesLiveInline) {
  std::uint64_t heap_before = mem::heap_capture_count();
  int hit = 0;
  int* p = &hit;
  mem::SmallFn<64> fn([p] { ++*p; });
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(hit, 1);
  EXPECT_EQ(mem::heap_capture_count(), heap_before) << "small capture went to heap";
}

TEST(SmallFn, OversizedCapturesFallBackToCountedHeap) {
  std::uint64_t heap_before = mem::heap_capture_count();
  struct Big {
    char pad[128];
  } big{};
  big.pad[0] = 7;
  int out = 0;
  mem::SmallFn<64> fn([big, &out] { out = big.pad[0]; });
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(mem::heap_capture_count(), heap_before + 1)
      << "heap fallback not counted";
  fn();
  EXPECT_EQ(out, 7);
}

TEST(SmallFn, MoveTransfersTheTarget) {
  auto counter = std::make_shared<int>(0);
  mem::SmallFn<64> a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  mem::SmallFn<64> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(counter.use_count(), 2) << "move copied the capture";
  b();
  EXPECT_EQ(*counter, 1);
  b = mem::SmallFn<64>([counter] { *counter += 10; });
  b();
  EXPECT_EQ(*counter, 11);
}

}  // namespace
}  // namespace asp
