// The in-network caching proxy (ROADMAP item 2): CacheStore semantics, the
// cache ASP's verification verdicts, planp-vs-native byte equivalence, origin
// offload, chaos convergence, and sharded determinism of the cache counters.
#include "apps/cache/experiment.hpp"

#include <gtest/gtest.h>

#include <map>

#include "apps/asp_sources.hpp"
#include "net/exec.hpp"
#include "net/network.hpp"
#include "planp/analysis.hpp"
#include "planp/cache.hpp"
#include "planp/parser.hpp"
#include "planp/typecheck.hpp"

namespace asp::apps {
namespace {

using asp::net::ip;
using asp::planp::CacheStore;

// --- CacheStore units --------------------------------------------------------

TEST(CacheStore, HitMissFillCounters) {
  CacheStore c;
  c.configure(8, 0);
  EXPECT_EQ(c.lookup(1, 0), nullptr);
  c.store(1, asp::net::make_buffer({1, 2, 3}), 0);
  const asp::net::Buffer* b = c.lookup(1, 5);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ((*b)->size(), 3u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().fills, 1u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(CacheStore, TtlExpiryCountsExpiredNotMiss) {
  CacheStore c;
  c.configure(8, 100);
  c.store(7, asp::net::make_buffer({9}), 1000);
  EXPECT_NE(c.lookup(7, 1100), nullptr);  // exactly at the deadline: fresh
  EXPECT_EQ(c.lookup(7, 1101), nullptr);  // one past: expired and dropped
  EXPECT_EQ(c.stats().expired, 1u);
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_EQ(c.size(), 0u);
}

TEST(CacheStore, LruEvictsColdestAndPromotionProtects) {
  CacheStore c;
  c.configure(2, 0);
  c.store(1, asp::net::make_buffer({1}), 0);
  c.store(2, asp::net::make_buffer({2}), 0);
  EXPECT_NE(c.lookup(1, 1), nullptr);  // promote 1; 2 is now LRU
  c.store(3, asp::net::make_buffer({3}), 2);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_NE(c.lookup(1, 3), nullptr);
  EXPECT_EQ(c.lookup(2, 3), nullptr) << "coldest entry must be the one evicted";
  EXPECT_NE(c.lookup(3, 3), nullptr);
}

TEST(CacheStore, RefillReplacesBodyAndRefreshesTtl) {
  CacheStore c;
  c.configure(4, 100);
  c.store(5, asp::net::make_buffer({1}), 0);
  c.store(5, asp::net::make_buffer({2, 2}), 80);  // refresh at t=80
  const asp::net::Buffer* b = c.lookup(5, 150);   // stale under the old fill
  ASSERT_NE(b, nullptr);
  EXPECT_EQ((*b)->size(), 2u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(CacheStore, ReconfigureClearsResidencyKeepsCounters) {
  CacheStore c;
  c.configure(4, 0);
  c.store(1, asp::net::make_buffer({1}), 0);
  EXPECT_NE(c.lookup(1, 1), nullptr);
  c.configure(8, 0);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.stats().hits, 1u) << "counters survive reconfiguration";
}

TEST(CacheStore, KeyOfSeparatesFields) {
  // "GET /ab" vs "GET /a" + "b…" must not collide: fields are delimited.
  EXPECT_NE(CacheStore::key_of("GET", 1, "/ab"), CacheStore::key_of("GETb", 1, "/a"));
  EXPECT_NE(CacheStore::key_of("GET", 1, "/a"), CacheStore::key_of("GET", 2, "/a"));
  EXPECT_NE(CacheStore::key_of(std::uint64_t{1}, 2), CacheStore::key_of(std::uint64_t{2}, 1));
}

// --- the ASP itself ----------------------------------------------------------

TEST(CacheProxyAsp, PassesAllFiveAnalyses) {
  // Unlike the load-balancing gateway, the cache proxy is fully verifiable:
  // hit replies ride the destination-preserving `hit` channel, so the global
  // termination scan never sees a changed cycle, and every raising primitive
  // is wrapped in try. The cost analysis must also clear the budget.
  auto report = planp::analyze(
      planp::typecheck(planp::parse(cache_proxy_asp(ip("10.0.2.1")))));
  EXPECT_TRUE(report.local_termination);
  EXPECT_TRUE(report.global_termination) << report.global_termination_detail;
  EXPECT_TRUE(report.guaranteed_delivery) << report.delivery_detail;
  EXPECT_TRUE(report.linear_duplication) << report.duplication_detail;
  EXPECT_TRUE(report.cost_bounded) << report.cost_detail;
  EXPECT_TRUE(report.accepted());
}

// --- experiment: offload, equivalence, chaos, determinism --------------------

CacheExperiment::Options small_opts(CacheMode mode) {
  CacheExperiment::Options o;
  o.mode = mode;
  o.client_machines = 3;
  o.processes_per_machine = 2;
  o.trace_accesses = 4'000;
  o.trace_files = 50;       // hot universe: high hit ratio
  o.cache_entries = 64;
  return o;
}

TEST(CacheExperiment, ProxyOffloadsOrigin) {
  CacheExperiment uncached(small_opts(CacheMode::kNoCache));
  auto base = uncached.run(5.0);
  ASSERT_GT(base.completed, 100u);
  // Every completion crossed the origin (a few more may be in flight).
  EXPECT_GE(base.origin_served, base.completed) << "no cache: all to origin";

  CacheExperiment cached(small_opts(CacheMode::kAspProxy));
  auto prox = cached.run(5.0);
  ASSERT_GT(prox.completed, 100u);
  EXPECT_GT(prox.cache.hits, 0u);
  // The acceptance bar: a Zipf workload against a hot cache cuts origin
  // traffic at least in half per completed request.
  double base_ratio = static_cast<double>(base.origin_served) /
                      static_cast<double>(base.completed);
  double prox_ratio = static_cast<double>(prox.origin_served) /
                      static_cast<double>(prox.completed);
  EXPECT_LT(prox_ratio, base_ratio / 2.0)
      << "origin=" << prox.origin_served << " completed=" << prox.completed;
}

TEST(CacheExperiment, PlanpAndNativeProxiesAreByteEquivalent) {
  std::map<std::string, std::vector<std::uint8_t>> asp_bodies, native_bodies;
  planp::CacheStore::Stats asp_stats, native_stats;
  for (CacheMode mode : {CacheMode::kAspProxy, CacheMode::kNativeProxy}) {
    auto& bodies = mode == CacheMode::kAspProxy ? asp_bodies : native_bodies;
    CacheExperiment exp(small_opts(mode));
    for (auto& pool : exp.pools()) {
      pool->on_response([&bodies](const std::string& path,
                                  const std::vector<std::uint8_t>& body) {
        auto it = bodies.find(path);
        if (it == bodies.end()) {
          bodies.emplace(path, body);
        } else {
          EXPECT_EQ(it->second, body) << "response for " << path
                                      << " changed between deliveries";
        }
      });
    }
    auto r = exp.run(3.0);
    ASSERT_GT(r.completed, 50u) << cache_mode_name(mode);
    EXPECT_GT(r.cache.hits, 0u) << cache_mode_name(mode);
    (mode == CacheMode::kAspProxy ? asp_stats : native_stats) = r.cache;
  }
  // Same policy, same wire bytes: every path both rigs saw must agree, and
  // every body must be the origin-canonical one (hits are not stale blends).
  ASSERT_FALSE(asp_bodies.empty());
  for (const auto& [path, body] : asp_bodies) {
    EXPECT_EQ(body, cache_response_body(path)) << path;
    auto it = native_bodies.find(path);
    if (it != native_bodies.end()) EXPECT_EQ(it->second, body) << path;
  }
  // Identical closed-loop schedules: the two proxies see the same requests,
  // so the cache verdicts line up exactly.
  EXPECT_EQ(asp_stats.hits, native_stats.hits);
  EXPECT_EQ(asp_stats.misses, native_stats.misses);
  EXPECT_EQ(asp_stats.fills, native_stats.fills);
}

TEST(CacheExperiment, ConvergesUnderTenPercentLoss) {
  CacheExperiment exp(small_opts(CacheMode::kAspProxy));
  asp::net::Medium* lan = exp.network().find_medium("origin-lan");
  ASSERT_NE(lan, nullptr);
  asp::net::Impairments imp;
  imp.loss_rate = 0.10;
  imp.seed = 41;
  lan->set_impairments(imp);
  auto r = exp.run(10.0);
  EXPECT_GT(lan->dropped_loss(), 0u) << "the chaos scenario must actually drop";
  // Losses cost watchdog timeouts, but the pools keep making progress and
  // the cache keeps serving hits (a hit never crosses the lossy origin LAN).
  EXPECT_GT(r.completed, 200u);
  EXPECT_GT(r.cache.hits, 0u);
}

struct CacheOutcome {
  CacheRunResult result;
};

CacheOutcome run_sharded(int shards) {
  CacheExperiment exp(small_opts(CacheMode::kAspProxy));
  std::unique_ptr<asp::net::ParallelExecutor> exec;
  if (shards > 1) {
    // 3 client access links are cuttable: clients + origin complex = 4 islands.
    exec = std::make_unique<asp::net::ParallelExecutor>(exp.network(), shards);
    EXPECT_GE(exec->shard_count(), 2);
  }
  return CacheOutcome{exp.run(5.0)};
}

TEST(CacheExperiment, ShardedCacheCountersEqualSerial) {
  CacheOutcome serial = run_sharded(1);
  CacheOutcome sharded = run_sharded(4);
  EXPECT_EQ(serial.result.completed, sharded.result.completed);
  EXPECT_EQ(serial.result.failed, sharded.result.failed);
  EXPECT_EQ(serial.result.origin_served, sharded.result.origin_served);
  EXPECT_EQ(serial.result.cache.hits, sharded.result.cache.hits);
  EXPECT_EQ(serial.result.cache.misses, sharded.result.cache.misses);
  EXPECT_EQ(serial.result.cache.fills, sharded.result.cache.fills);
  EXPECT_EQ(serial.result.cache.evictions, sharded.result.cache.evictions);
  EXPECT_GT(serial.result.cache.hits, 0u);
}

}  // namespace
}  // namespace asp::apps
