#include "apps/mpeg/experiment.hpp"

#include <gtest/gtest.h>

#include "apps/asp_sources.hpp"
#include "net/network.hpp"
#include "planp/analysis.hpp"
#include "planp/parser.hpp"

namespace asp::apps {
namespace {

using asp::net::ip;

TEST(MpegAsps, MonitorAspTypechecksAndTerminates) {
  auto report = planp::analyze(
      planp::typecheck(planp::parse(mpeg_monitor_asp(ip("10.0.1.1")))));
  EXPECT_TRUE(report.local_termination);
  EXPECT_TRUE(report.global_termination) << report.global_termination_detail;
  EXPECT_TRUE(report.linear_duplication) << report.duplication_detail;
  // The monitor intentionally drops its observed copies: delivery is
  // (correctly) not guaranteed, which is advisory.
  EXPECT_FALSE(report.guaranteed_delivery);
}

TEST(MpegAsps, CaptureAspVerifies) {
  auto report = planp::analyze(
      planp::typecheck(planp::parse(mpeg_capture_asp(ip("192.168.1.1"), 7000, 7010))));
  EXPECT_TRUE(report.accepted());
}

TEST(MpegApp, SingleClientStreamsFromServer) {
  MpegExperiment exp(/*sharing=*/false, 1);
  auto r = exp.run(5.0);
  EXPECT_EQ(r.server_streams, 1);
  EXPECT_EQ(r.clients_playing, 1);
  EXPECT_EQ(r.clients_sharing, 0);
  // GOP 9 frames = 29 kB at 30 fps => ~0.77 Mb/s + headers.
  EXPECT_NEAR(r.server_egress_mbps, 0.8, 0.25);
  EXPECT_NEAR(r.min_client_mbps, 0.8, 0.25);
}

TEST(MpegApp, WithoutSharingServerLoadGrowsLinearly) {
  MpegExperiment exp(/*sharing=*/false, 4);
  auto r = exp.run(6.0);
  EXPECT_EQ(r.server_streams, 4);
  EXPECT_NEAR(r.server_egress_mbps, 4 * 0.8, 0.8);
}

TEST(MpegApp, SharingServesManyClientsFromOneStream) {
  MpegExperiment exp(/*sharing=*/true, 4);
  auto r = exp.run(6.0);
  // The paper's claim: the server still serves a single point-to-point
  // stream, later clients capture it on the segment.
  EXPECT_EQ(r.server_streams, 1);
  EXPECT_EQ(r.clients_playing, 4);
  EXPECT_EQ(r.clients_sharing, 3);
  EXPECT_NEAR(r.server_egress_mbps, 0.8, 0.25);
  // Every client still receives the full stream rate.
  EXPECT_NEAR(r.min_client_mbps, 0.8, 0.25);
  EXPECT_NEAR(r.max_client_mbps, 0.8, 0.25);
}

TEST(MpegApp, FirstClientIsUnshared) {
  MpegExperiment exp(/*sharing=*/true, 1);
  auto r = exp.run(4.0);
  EXPECT_EQ(r.server_streams, 1);
  EXPECT_EQ(r.clients_sharing, 0);  // monitor had nothing to offer
  EXPECT_EQ(r.clients_playing, 1);
}

TEST(MpegApp, SharingScalesToEightClients) {
  MpegExperiment exp(/*sharing=*/true, 8);
  auto r = exp.run(8.0);
  EXPECT_EQ(r.server_streams, 1);
  EXPECT_EQ(r.clients_sharing, 7);
  EXPECT_NEAR(r.min_client_mbps, 0.8, 0.25);
}

}  // namespace
}  // namespace asp::apps
