// Systematic coverage of the PLAN-P primitive library: every primitive,
// every overload, including the exceptions they raise.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "planp/interp.hpp"
#include "planp/parser.hpp"

namespace asp::planp {
namespace {

Value eval(const std::string& type, const std::string& expr, NullEnv* env = nullptr) {
  static NullEnv scratch;
  NullEnv& e = env != nullptr ? *env : scratch;
  CheckedProgram p = typecheck(parse("val x : " + type + " = " + expr));
  Interp interp(p, e);
  return interp.global(0);
}

std::int64_t eval_int(const std::string& expr) { return eval("int", expr).as_int(); }
bool eval_bool(const std::string& expr) { return eval("bool", expr).as_bool(); }
std::string eval_str(const std::string& expr) { return eval("string", expr).as_string(); }

// --- output ------------------------------------------------------------------

TEST(Primitives, PrintOverloads) {
  NullEnv env;
  eval("unit",
       "(print(\"s\"); print(1); print(true); print('c'); print(9.8.7.6))", &env);
  EXPECT_EQ(env.output, "s1truec9.8.7.6");
}

TEST(Primitives, PrintlnAppendsNewline) {
  NullEnv env;
  eval("unit", "(println(1); println(false))", &env);
  EXPECT_EQ(env.output, "1\nfalse\n");
}

// --- conversions ----------------------------------------------------------------

TEST(Primitives, Conversions) {
  EXPECT_EQ(eval_str("intToString(-42)"), "-42");
  EXPECT_EQ(eval_str("hostToString(10.0.0.1)"), "10.0.0.1");
  EXPECT_EQ(eval_int("stringToInt(\"123\")"), 123);
  EXPECT_EQ(eval_int("stringToInt(\"-7\")"), -7);
  EXPECT_EQ(eval_int("try stringToInt(\"12x\") with -1"), -1);
  EXPECT_EQ(eval_int("try stringToInt(\"\") with -1"), -1);
  EXPECT_EQ(eval("host", "stringToHost(\"1.2.3.4\")").as_host().str(), "1.2.3.4");
  EXPECT_EQ(eval_int("try hostToInt(stringToHost(\"nope\")) with -1"), -1);
  EXPECT_EQ(eval_int("hostToInt(0.0.0.7)"), 7);
}

TEST(Primitives, CharFamily) {
  EXPECT_EQ(eval_int("charPos('0')"), 48);
  EXPECT_EQ(eval_int("ord('z')"), 122);
  EXPECT_EQ(eval("char", "chr(97)").as_char(), 'a');
  EXPECT_EQ(eval_int("try charPos(chr(-1)) with -5"), -5);
  EXPECT_EQ(eval_int("try charPos(chr(256)) with -5"), -5);
  EXPECT_EQ(eval_int("charPos(chr(255))"), 255);
}

TEST(Primitives, IntHelpers) {
  EXPECT_EQ(eval_int("abs(-9)"), 9);
  EXPECT_EQ(eval_int("abs(9)"), 9);
  EXPECT_EQ(eval_int("min(3, -2)"), -2);
  EXPECT_EQ(eval_int("max(3, -2)"), 3);
}

// --- strings ----------------------------------------------------------------------

TEST(Primitives, StringFamily) {
  EXPECT_EQ(eval_int("stringLen(\"\")"), 0);
  EXPECT_EQ(eval_str("substring(\"abcdef\", 2, 3)"), "cde");
  EXPECT_EQ(eval_str("substring(\"abc\", 0, 0)"), "");
  EXPECT_EQ(eval_str("try substring(\"abc\", 1, 5) with \"oops\""), "oops");
  EXPECT_EQ(eval_str("try substring(\"abc\", -1, 2) with \"oops\""), "oops");
  EXPECT_TRUE(eval_bool("startsWith(\"PLAY movie\", \"PLAY \")"));
  EXPECT_FALSE(eval_bool("startsWith(\"PL\", \"PLAY\")"));
  EXPECT_TRUE(eval_bool("startsWith(\"x\", \"\")"));
  EXPECT_EQ(eval_int("strIndex(\"abcabc\", \"bc\")"), 1);
  EXPECT_EQ(eval_int("strIndex(\"abc\", \"\")"), 0);
}

TEST(Primitives, StrWord) {
  EXPECT_EQ(eval_str("strWord(\"PLAY movie.mpg 7000\", 0)"), "PLAY");
  EXPECT_EQ(eval_str("strWord(\"PLAY movie.mpg 7000\", 1)"), "movie.mpg");
  EXPECT_EQ(eval_str("strWord(\"PLAY movie.mpg 7000\", 2)"), "7000");
  EXPECT_EQ(eval_str("strWord(\"  a   b \", 1)"), "b");
  EXPECT_EQ(eval_str("try strWord(\"a b\", 2) with \"none\""), "none");
  EXPECT_EQ(eval_str("try strWord(\"\", 0) with \"none\""), "none");
}

// --- hash tables --------------------------------------------------------------------

TEST(Primitives, TableFamily) {
  EXPECT_EQ(eval_int(R"(
let val t : (string, int) hash_table = mkTable(4)
    val a : unit = tableSet(t, "k", 1)
    val b : unit = tableSet(t, "k", 2)   -- overwrite
in tableGet(t, "k") + tableSize(t) end)"),
            3);
  EXPECT_TRUE(eval_bool(R"(
let val t : (int, bool) hash_table = mkTable(4)
    val a : unit = tableSet(t, 5, true)
    val r : unit = tableRemove(t, 5)
in not tableMem(t, 5) and tableSize(t) = 0 end)"));
  EXPECT_EQ(eval_int(R"(
let val t : (int, int) hash_table = mkTable(4)
in tableGetDefault(t, 9, 42) end)"),
            42);
  // mkTable tolerates degenerate sizes.
  EXPECT_EQ(eval_int(
      "let val t : (int, int) hash_table = mkTable(0) in tableSize(t) end"), 0);
}

// --- headers -----------------------------------------------------------------------

TEST(Primitives, IpHeaderFamily) {
  NullEnv env;
  CheckedProgram p = typecheck(parse(R"(
channel c(ps : unit, ss : unit, p : ip*blob) is
  let val h : ip = ipTosSet(ipSrcSet(ipDestSet(#1 p, 1.1.1.1), 2.2.2.2), 7)
  in
    (println(ipSrc(h)); println(ipDst(h)); println(ipTos(h));
     println(ipTtl(h)); println(ipProto(h));
     println(isMulticast(224.0.0.1)); println(isMulticast(ipDst(h)));
     deliver(p); (ps, ss))
  end
)"));
  Interp interp(p, env);
  asp::net::IpHeader hdr;
  hdr.src = asp::net::ip("9.9.9.9");
  hdr.dst = asp::net::ip("8.8.8.8");
  hdr.ttl = 33;
  hdr.proto = asp::net::IpProto::kUdp;
  interp.run_channel(0, Value::unit(), Value::unit(),
                     Value::of_tuple({Value::of_ip(hdr), Value::of_blob({})}));
  EXPECT_EQ(env.output, "2.2.2.2\n1.1.1.1\n7\n33\n17\ntrue\nfalse\n");
}

TEST(Primitives, TcpHeaderFamily) {
  NullEnv env;
  CheckedProgram p = typecheck(parse(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*blob) is
  let val t : tcp = tcpSrcSet(tcpDstSet(#2 p, 8080), 999)
  in
    (println(tcpSrc(t)); println(tcpDst(t)); println(tcpSeq(t));
     println(tcpAckNo(t)); println(tcpSyn(t)); println(tcpAck(t));
     println(tcpFin(t)); println(tcpRst(t));
     deliver(p); (ps, ss))
  end
)"));
  Interp interp(p, env);
  asp::net::TcpHeader t{1, 2, 100, 200, asp::net::tcpflag::kSyn, 0};
  interp.run_channel(0, Value::unit(), Value::unit(),
                     Value::of_tuple({Value::of_ip({}), Value::of_tcp(t),
                                      Value::of_blob({})}));
  EXPECT_EQ(env.output, "999\n8080\n100\n200\ntrue\nfalse\nfalse\nfalse\n");
}

TEST(Primitives, UdpHeaderFamily) {
  NullEnv env;
  CheckedProgram p = typecheck(parse(R"(
channel c(ps : unit, ss : unit, p : ip*udp*blob) is
  let val u : udp = udpSrcSet(udpDstSet(#2 p, 53), 5353)
  in (println(udpSrc(u)); println(udpDst(u)); deliver(p); (ps, ss)) end
)"));
  Interp interp(p, env);
  interp.run_channel(0, Value::unit(), Value::unit(),
                     Value::of_tuple({Value::of_ip({}),
                                      Value::of_udp(asp::net::UdpHeader{1, 2}),
                                      Value::of_blob({})}));
  EXPECT_EQ(env.output, "5353\n53\n");
}

// --- blobs --------------------------------------------------------------------------

TEST(Primitives, BlobFamily) {
  EXPECT_EQ(eval_int("blobLen(blobFromString(\"hello\"))"), 5);
  EXPECT_EQ(eval_str("blobToString(blobFromString(\"round\"))"), "round");
  EXPECT_EQ(eval_int("blobByte(blobFromString(\"A\"), 0)"), 65);
  EXPECT_EQ(eval_int("try blobByte(blobFromString(\"A\"), 1) with -1"), -1);
  EXPECT_EQ(eval_int("try blobByte(blobFromString(\"A\"), -1) with -1"), -1);
  EXPECT_EQ(eval_str("blobToString(blobSub(blobFromString(\"abcdef\"), 1, 3))"), "bcd");
  EXPECT_EQ(eval_int("try blobLen(blobSub(blobFromString(\"ab\"), 1, 5)) with -1"), -1);
  EXPECT_EQ(eval_str(
                "blobToString(blobCat(blobFromString(\"ab\"), blobFromString(\"cd\")))"),
            "abcd");
}

// blobInt/blobPutInt are TOTAL (out-of-range reads 0 / writes nothing) so
// verified ASPs — where a raise on every path fails guaranteed delivery —
// can parse binary packet fields without a try. The edge-cache ASP depends
// on this contract.
TEST(Primitives, BlobIntIsTotalLittleEndian) {
  // "ABCDEFGH" little-endian u64 = 0x4847464544434241.
  EXPECT_EQ(eval_int("blobInt(blobFromString(\"ABCDEFGH\"), 0)"),
            0x4847464544434241LL);
  // Out of range (short blob, negative offset, past-the-end) reads 0.
  EXPECT_EQ(eval_int("blobInt(blobFromString(\"short\"), 0)"), 0);
  EXPECT_EQ(eval_int("blobInt(blobFromString(\"ABCDEFGH\"), 1)"), 0);
  EXPECT_EQ(eval_int("blobInt(blobFromString(\"ABCDEFGH\"), -1)"), 0);
}

TEST(Primitives, BlobPutIntIsTotalAndRoundTrips) {
  EXPECT_EQ(eval_int("blobInt(blobPutInt(blobFromString(\"xxxxxxxx\"), 0, 7), 0)"),
            7);
  // Out-of-range writes return the blob unchanged, not a raise.
  EXPECT_EQ(eval_str("blobToString(blobPutInt(blobFromString(\"ab\"), 0, 7))"),
            "ab");
  // Patch bytes [1, 9): length and the bytes outside the window survive.
  EXPECT_EQ(eval_int("blobLen(blobPutInt(blobFromString(\"ABCDEFGHI\"), 1, 0))"),
            9);
  EXPECT_EQ(eval_int("blobByte(blobPutInt(blobFromString(\"ABCDEFGHI\"), 1, 0), 0)"),
            65);  // 'A'
  EXPECT_EQ(eval_int("blobByte(blobPutInt(blobFromString(\"ABCDEFGHI\"), 1, 0), 4)"),
            0);
  // The original blob is not mutated in place (pooled copy-on-write).
  EXPECT_EQ(eval_str("let val b : blob = blobFromString(\"AAAAAAAA\") in "
                     "(blobPutInt(b, 0, 0); blobToString(b)) end"),
            "AAAAAAAA");
}

// --- audio --------------------------------------------------------------------------

TEST(Primitives, AudioChainHalvesAtEachStage) {
  // 16-bit stereo -> mono halves; 16 -> 8 bit halves again.
  EXPECT_EQ(eval_int("blobLen(audioStereoToMono(blobFromString(\"aabbccdd\")))"), 4);
  EXPECT_EQ(eval_int("blobLen(audio16To8(audioStereoToMono("
                     "blobFromString(\"aabbccdd\"))))"),
            2);
  // And the reconstruction chain restores the size.
  EXPECT_EQ(eval_int("blobLen(audioMonoToStereo(audio8To16(audio16To8("
                     "audioStereoToMono(blobFromString(\"aabbccdd\"))))))"),
            8);
}

TEST(Primitives, AudioTranscodingIsMeaningful) {
  // A loud left / silent right pair averages to half amplitude.
  std::vector<std::uint8_t> pcm = {0x00, 0x40, 0x00, 0x00};  // L=0x4000, R=0
  auto mono = audio_stereo_to_mono16(pcm);
  ASSERT_EQ(mono.size(), 2u);
  std::int16_t s = static_cast<std::int16_t>(mono[0] | (mono[1] << 8));
  EXPECT_EQ(s, 0x2000);
  // 8-bit round trip preserves the top byte.
  auto eight = audio_16_to_8(mono);
  auto sixteen = audio_8_to_16(eight);
  std::int16_t s2 = static_cast<std::int16_t>(sixteen[0] | (sixteen[1] << 8));
  EXPECT_EQ(s2, 0x2000);
}

// --- images --------------------------------------------------------------------------

TEST(Primitives, DistillImage) {
  EXPECT_EQ(eval_int("blobLen(distillImage(blobFromString(\"12345678\"), 2))"), 4);
  EXPECT_EQ(eval_int("blobLen(distillImage(blobFromString(\"12345678\"), 8))"), 1);
  EXPECT_EQ(eval_str("blobToString(distillImage(blobFromString(\"abcdef\"), 1))"),
            "abcdef");
  EXPECT_EQ(eval_int("try blobLen(distillImage(blobFromString(\"a\"), 0)) with -1"), -1);
}

// --- environment ------------------------------------------------------------------

TEST(Primitives, EnvironmentFamily) {
  NullEnv env;
  env.host = asp::net::ip("4.4.4.4");
  env.now_ms = 777;
  env.load_percent = 42;
  env.bandwidth_kbps = 100'000;
  env.arrival = 3;
  CheckedProgram p = typecheck(parse(
      "val a : host = thisHost()\nval b : int = getTime()\n"
      "val c : int = linkLoad()\nval d : int = linkBandwidth()\n"
      "val e : int = arrivalIface()"));
  Interp interp(p, env);
  EXPECT_EQ(interp.global(0).as_host().str(), "4.4.4.4");
  EXPECT_EQ(interp.global(1).as_int(), 777);
  EXPECT_EQ(interp.global(2).as_int(), 42);
  EXPECT_EQ(interp.global(3).as_int(), 100'000);
  EXPECT_EQ(interp.global(4).as_int(), 3);
}

}  // namespace
}  // namespace asp::planp
