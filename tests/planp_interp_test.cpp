#include "planp/interp.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "planp/parser.hpp"

namespace asp::planp {
namespace {

// Evaluates a top-level `val x : <type> = <expr>` and returns the value.
Value eval_val(const std::string& type, const std::string& expr,
               NullEnv* env_out = nullptr) {
  static NullEnv default_env;
  NullEnv& env = env_out != nullptr ? *env_out : default_env;
  CheckedProgram p = typecheck(parse("val x : " + type + " = " + expr));
  Interp interp(p, env);
  return interp.global(0);
}

TEST(Interp, Arithmetic) {
  EXPECT_EQ(eval_val("int", "1 + 2 * 3").as_int(), 7);
  EXPECT_EQ(eval_val("int", "(10 - 4) / 2").as_int(), 3);
  EXPECT_EQ(eval_val("int", "10 % 3").as_int(), 1);
  EXPECT_EQ(eval_val("int", "-(5)").as_int(), -5);
  EXPECT_EQ(eval_val("int", "- - 5").as_int(), 5);
}

TEST(Interp, DivisionByZeroRaises) {
  EXPECT_THROW(eval_val("int", "let val z : int = 0 in 1 / z end"), PlanPException);
  EXPECT_THROW(eval_val("int", "let val z : int = 0 in 1 % z end"), PlanPException);
  EXPECT_EQ(eval_val("int", "try let val z : int = 0 in 1 / z end with 99").as_int(), 99);
}

TEST(Interp, Comparisons) {
  EXPECT_TRUE(eval_val("bool", "1 < 2").as_bool());
  EXPECT_FALSE(eval_val("bool", "2 < 1").as_bool());
  EXPECT_TRUE(eval_val("bool", "'a' < 'b'").as_bool());
  EXPECT_TRUE(eval_val("bool", "\"abc\" < \"abd\"").as_bool());
  EXPECT_TRUE(eval_val("bool", "3 >= 3").as_bool());
  EXPECT_TRUE(eval_val("bool", "1.2.3.4 = 1.2.3.4").as_bool());
  EXPECT_TRUE(eval_val("bool", "1.2.3.4 <> 1.2.3.5").as_bool());
}

TEST(Interp, BooleanShortCircuit) {
  // The right operand would raise; short-circuit must avoid it.
  EXPECT_FALSE(
      eval_val("bool", "false and (try raise \"X\" with true)").as_bool());
  EXPECT_FALSE(eval_val("bool", "let val z : int = 0 in false and (1 / z = 1) end")
                   .as_bool());
  EXPECT_TRUE(eval_val("bool", "let val z : int = 0 in true or (1 / z = 1) end")
                  .as_bool());
}

TEST(Interp, LetShadowing) {
  EXPECT_EQ(eval_val("int",
                     "let val a : int = 1 in "
                     "(let val a : int = 2 in a end) + a end")
                .as_int(),
            3);
}

TEST(Interp, TuplesAndProjection) {
  EXPECT_EQ(eval_val("int", "#2 (1, 42, 3)").as_int(), 42);
  EXPECT_TRUE(eval_val("bool", "#1 (true, 1)").as_bool());
  EXPECT_EQ(eval_val("int", "#1 #2 ((1, 2), (30, 4))").as_int(), 30);
}

TEST(Interp, Sequencing) {
  NullEnv env;
  eval_val("unit", "(print(\"a\"); print(\"b\"); print(\"c\"))", &env);
  EXPECT_EQ(env.output, "abc");
}

TEST(Interp, StringOps) {
  EXPECT_EQ(eval_val("string", "\"foo\" ^ \"bar\"").as_string(), "foobar");
  EXPECT_EQ(eval_val("int", "stringLen(\"hello\")").as_int(), 5);
  EXPECT_EQ(eval_val("string", "substring(\"hello\", 1, 3)").as_string(), "ell");
  EXPECT_TRUE(eval_val("bool", "startsWith(\"GET /x\", \"GET\")").as_bool());
  EXPECT_EQ(eval_val("int", "strIndex(\"hello\", \"ll\")").as_int(), 2);
  EXPECT_EQ(eval_val("int", "strIndex(\"hello\", \"zz\")").as_int(), -1);
}

TEST(Interp, CharOps) {
  EXPECT_EQ(eval_val("int", "charPos('A')").as_int(), 65);
  EXPECT_EQ(eval_val("char", "chr(66)").as_char(), 'B');
  EXPECT_THROW(eval_val("char", "chr(300)"), PlanPException);
}

TEST(Interp, ExceptionsPropagateAndAreCaught) {
  EXPECT_THROW(eval_val("int", "raise \"Boom\""), PlanPException);
  EXPECT_EQ(eval_val("int", "try raise \"Boom\" with 7").as_int(), 7);
  EXPECT_EQ(eval_val("int", "try 5 with 7").as_int(), 5);
  // Nested: inner catches, outer unaffected.
  EXPECT_EQ(eval_val("int", "try (try raise \"A\" with 1) with 2").as_int(), 1);
  // Exception escaping the protected part of an inner try reaches the outer.
  EXPECT_EQ(eval_val("int", "try (try 1 with 2) + (raise \"B\") with 9").as_int(), 9);
}

TEST(Interp, UserFunctions) {
  NullEnv env;
  CheckedProgram p = typecheck(parse(R"(
fun double(x : int) : int = x * 2
fun quad(x : int) : int = double(double(x))
val r : int = quad(5)
)"));
  Interp interp(p, env);
  EXPECT_EQ(interp.eval_expr(*p.globals[0]->init).as_int(), 20);
}

TEST(Interp, HashTablesAreMutableSharedState) {
  NullEnv env;
  CheckedProgram p = typecheck(parse(R"(
val t : (host, int) hash_table = mkTable(8)
val a : unit = tableSet(t, 10.0.0.1, 42)
val b : int = tableGet(t, 10.0.0.1)
val c : bool = tableMem(t, 10.0.0.2)
val d : int = tableGetDefault(t, 10.0.0.2, -1)
val e : int = tableSize(t)
)"));
  Interp interp(p, env);
  EXPECT_EQ(interp.global(2).as_int(), 42);
  EXPECT_FALSE(interp.global(3).as_bool());
  EXPECT_EQ(interp.global(4).as_int(), -1);
  EXPECT_EQ(interp.global(5).as_int(), 1);
}

TEST(Interp, TableGetMissingKeyRaises) {
  EXPECT_THROW(
      eval_val("int",
               "let val t : (int, int) hash_table = mkTable(4) in tableGet(t, 1) end"),
      PlanPException);
}

TEST(Interp, TupleKeysInTables) {
  EXPECT_EQ(eval_val("int", R"(
let val t : (host*int, int) hash_table = mkTable(4)
    val u : unit = tableSet(t, (10.0.0.1, 80), 1)
    val v : unit = tableSet(t, (10.0.0.1, 81), 2)
in tableGet(t, (10.0.0.1, 81)) end)")
                .as_int(),
            2);
}

TEST(Interp, HeaderPrimitives) {
  NullEnv env;
  CheckedProgram p = typecheck(parse(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*blob) is
  let val iph : ip = ipDestSet(#1 p, 9.9.9.9)
  in (OnRemote(c, (iph, tcpDstSet(#2 p, 8080), #3 p)); (ps, ss)) end
)"));
  Interp interp(p, env);
  Value pkt = Value::of_tuple(
      {Value::of_ip({asp::net::ip("1.1.1.1"), asp::net::ip("2.2.2.2"),
                     asp::net::IpProto::kTcp}),
       Value::of_tcp({1234, 80, 0, 0, 0, 0}), Value::of_blob({1, 2, 3})});
  interp.run_channel(0, Value::unit(), Value::unit(), pkt);
  ASSERT_EQ(env.sends.size(), 1u);
  const auto& sent = env.sends[0].second.as_tuple();
  EXPECT_EQ(sent[0].as_ip().dst.str(), "9.9.9.9");
  EXPECT_EQ(sent[0].as_ip().src.str(), "1.1.1.1");
  EXPECT_EQ(sent[1].as_tcp().dport, 8080);
}

TEST(Interp, ChannelStateThreading) {
  NullEnv env;
  CheckedProgram p = typecheck(parse(
      "channel counter(ps : int, ss : int, p : ip*blob) initstate 100 is\n"
      "  (deliver(p); (ps + 1, ss + 2))"));
  Interp interp(p, env);
  EXPECT_EQ(interp.init_state(0).as_int(), 100);
  Value pkt = Value::of_tuple({Value::of_ip({}), Value::of_blob({})});
  Value out = interp.run_channel(0, Value::of_int(0), Value::of_int(100), pkt);
  EXPECT_EQ(out.as_tuple()[0].as_int(), 1);
  EXPECT_EQ(out.as_tuple()[1].as_int(), 102);
}

TEST(Interp, EnvPrimitives) {
  NullEnv env;
  env.host = asp::net::ip("5.5.5.5");
  env.now_ms = 12345;
  env.load_percent = 73;
  CheckedProgram p = typecheck(parse(
      "val h : host = thisHost()\nval t : int = getTime()\nval l : int = linkLoad()"));
  Interp interp(p, env);
  EXPECT_EQ(interp.eval_expr(*p.globals[0]->init).as_host().str(), "5.5.5.5");
  EXPECT_EQ(interp.eval_expr(*p.globals[1]->init).as_int(), 12345);
  EXPECT_EQ(interp.eval_expr(*p.globals[2]->init).as_int(), 73);
}

TEST(Interp, AudioPrimitivesRoundTrip) {
  // 2 stereo frames of 16-bit samples.
  EXPECT_EQ(eval_val("int",
                     "blobLen(audioStereoToMono(blobSub(blobFromString(\"abcdefgh\"), 0, 8)))")
                .as_int(),
            4);
  EXPECT_EQ(eval_val("int", "blobLen(audio16To8(blobFromString(\"abcd\")))").as_int(), 2);
  EXPECT_EQ(eval_val("int", "blobLen(audio8To16(blobFromString(\"ab\")))").as_int(), 4);
  EXPECT_EQ(eval_val("int", "blobLen(audioMonoToStereo(blobFromString(\"ab\")))").as_int(),
            4);
}

TEST(Interp, DropAndDeliverEffects) {
  NullEnv env;
  CheckedProgram p = typecheck(parse(
      "channel c(ps : unit, ss : unit, p : ip*blob) is\n"
      "  (if blobLen(#2 p) > 0 then deliver(p) else drop(); (ps, ss))"));
  Interp interp(p, env);
  Value with_data = Value::of_tuple({Value::of_ip({}), Value::of_blob({1})});
  Value empty = Value::of_tuple({Value::of_ip({}), Value::of_blob({})});
  interp.run_channel(0, Value::unit(), Value::unit(), with_data);
  interp.run_channel(0, Value::unit(), Value::unit(), empty);
  EXPECT_EQ(env.delivered.size(), 1u);
  EXPECT_EQ(env.drops, 1);
}

}  // namespace
}  // namespace asp::planp
