// The Impairments fault model: duplication, corruption, reordering jitter,
// link outages (partitions), per-cause drop accounting, and determinism
// under a fixed seed.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"

namespace asp::net {
namespace {

struct UdpPair {
  UdpPair(double bps = 100e6, SimTime delay = millis(1)) {
    a = &net.add_node("a");
    b = &net.add_node("b");
    link = &net.link(*a, ip("10.0.0.1"), *b, ip("10.0.0.2"), bps, delay);
  }
  Network net;
  Node* a;
  Node* b;
  PointToPointLink* link;
};

TEST(Impairments, DuplicationDeliversExtraCopies) {
  UdpPair pair;
  Impairments imp;
  imp.duplicate_rate = 0.5;
  imp.seed = 1234;
  pair.link->set_impairments(imp);

  int got = 0;
  UdpSocket sink(*pair.b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(*pair.a, 9999, nullptr);
  for (int i = 0; i < 1000; ++i) src.send_to(pair.b->addr(), 7, {1});
  pair.net.run();

  EXPECT_NEAR(got, 1500, 75);
  EXPECT_EQ(got, 1000 + static_cast<int>(pair.link->duplicated_packets()));
  EXPECT_EQ(pair.link->delivered_packets(), static_cast<std::uint64_t>(got));
}

TEST(Impairments, CorruptionFlipsExactlyOnePayloadByte) {
  UdpPair pair;
  Impairments imp;
  imp.corrupt_rate = 1.0;
  pair.link->set_impairments(imp);

  std::vector<std::uint8_t> sent(64, 0xAA);
  int diffs = -1;
  UdpSocket sink(*pair.b, 7, [&](const Packet& p) {
    diffs = 0;
    for (std::size_t i = 0; i < sent.size(); ++i)
      if (p.payload[i] != sent[i]) ++diffs;
  });
  UdpSocket src(*pair.a, 9999, nullptr);
  src.send_to(pair.b->addr(), 7, sent);
  pair.net.run();

  EXPECT_EQ(diffs, 1);  // delivered, with exactly one byte flipped
  EXPECT_EQ(pair.link->corrupted_packets(), 1u);
  EXPECT_EQ(pair.link->dropped_packets(), 0u);  // corruption is not loss
}

TEST(Impairments, EmptyPayloadsAreNeverCorrupted) {
  UdpPair pair;
  Impairments imp;
  imp.corrupt_rate = 1.0;
  pair.link->set_impairments(imp);

  int got = 0;
  UdpSocket sink(*pair.b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(*pair.a, 9999, nullptr);
  src.send_to(pair.b->addr(), 7, {});
  pair.net.run();

  EXPECT_EQ(got, 1);
  EXPECT_EQ(pair.link->corrupted_packets(), 0u);
}

TEST(Impairments, JitterReordersBackToBackPackets) {
  UdpPair pair;
  Impairments imp;
  imp.jitter = millis(5);
  imp.seed = 99;
  pair.link->set_impairments(imp);

  std::vector<int> order;
  UdpSocket sink(*pair.b, 7, [&](const Packet& p) { order.push_back(p.payload[0]); });
  UdpSocket src(*pair.a, 9999, nullptr);
  for (int i = 0; i < 100; ++i)
    src.send_to(pair.b->addr(), 7, {static_cast<std::uint8_t>(i)});
  pair.net.run();

  ASSERT_EQ(order.size(), 100u);  // jitter delays, never drops
  int inversions = 0;
  for (std::size_t i = 1; i < order.size(); ++i)
    if (order[i] < order[i - 1]) ++inversions;
  EXPECT_GT(inversions, 0) << "5 ms jitter on back-to-back sends must reorder";
}

TEST(Impairments, DownLinkDropsAtTransmission) {
  UdpPair pair;
  pair.link->set_link_up(false);

  int got = 0;
  UdpSocket sink(*pair.b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(*pair.a, 9999, nullptr);
  for (int i = 0; i < 10; ++i) src.send_to(pair.b->addr(), 7, {1});
  pair.net.run();

  EXPECT_EQ(got, 0);
  EXPECT_EQ(pair.link->dropped_down(), 10u);
  EXPECT_EQ(pair.link->dropped_packets(), 10u);
}

TEST(Impairments, ScheduledOutageIsAPartitionWindow) {
  UdpPair pair;
  pair.link->schedule_outage(seconds(1), seconds(2));

  std::vector<double> arrival_sec;
  UdpSocket sink(*pair.b, 7,
                 [&](const Packet&) { arrival_sec.push_back(to_seconds(pair.net.now())); });
  UdpSocket src(*pair.a, 9999, nullptr);
  // One packet every 100 ms for 3 s: 1.0..1.9 fall inside the outage.
  for (int i = 0; i < 30; ++i) {
    pair.net.events().schedule_at(millis(100) * i, [&] {
      src.send_to(pair.b->addr(), 7, {1});
    });
  }
  pair.net.run();

  for (double t : arrival_sec) EXPECT_TRUE(t < 1.0 || t >= 2.0) << "arrived at " << t;
  EXPECT_EQ(arrival_sec.size(), 20u);
  EXPECT_EQ(pair.link->dropped_down(), 10u);
}

TEST(Impairments, PartitionKillsFramesInFlight) {
  // 100 ms propagation delay: a frame sent at t=950 ms is mid-flight when
  // the link drops at t=1 s, and dies there.
  UdpPair pair(100e6, millis(100));
  pair.link->schedule_link_state(seconds(1), false);

  int got = 0;
  UdpSocket sink(*pair.b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(*pair.a, 9999, nullptr);
  pair.net.events().schedule_at(millis(950), [&] { src.send_to(pair.b->addr(), 7, {1}); });
  pair.net.run();

  EXPECT_EQ(got, 0);
  EXPECT_EQ(pair.link->dropped_down(), 1u);
}

TEST(Impairments, PerCauseCountersSeparateQueueFromLoss) {
  // A slow link with a tiny queue and injected loss: both causes occur, and
  // each is attributed, with the legacy aggregate equal to the sum.
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& l = net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 1e6, millis(1), 2000);
  Impairments imp;
  imp.loss_rate = 0.2;
  imp.seed = 7;
  l.set_impairments(imp);

  UdpSocket sink(b, 7, nullptr);
  UdpSocket src(a, 9999, nullptr);
  // 40 bursts of 10 packets; each burst overflows the queue (only ~4 of the
  // 528-byte frames fit in a 2 kB backlog at 1 Mb/s) and drains before the
  // next, so both tail-drops and random losses accumulate.
  for (int burst = 0; burst < 40; ++burst) {
    net.events().schedule_at(millis(100) * burst, [&] {
      for (int i = 0; i < 10; ++i) src.send_to(b.addr(), 7, std::vector<std::uint8_t>(500));
    });
  }
  net.run();

  EXPECT_GT(l.dropped_queue(), 0u) << "burst into a 2 kB queue must tail-drop";
  EXPECT_GT(l.dropped_loss(), 0u);
  EXPECT_EQ(l.dropped_packets(),
            l.dropped_queue() + l.dropped_loss() + l.dropped_down() +
                l.dropped_unaddressed());
}

TEST(Impairments, SegmentSupportsImpairmentsToo) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& seg = net.segment("lan", 10e6);
  net.attach(a, seg, ip("10.0.0.1"));
  net.attach(b, seg, ip("10.0.0.2"));
  Impairments imp;
  imp.loss_rate = 0.3;
  imp.seed = 5;
  seg.set_impairments(imp);

  int got = 0;
  UdpSocket sink(b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(a, 9999, nullptr);
  for (int i = 0; i < 1000; ++i) {
    net.events().schedule_at(micros(500) * i, [&] { src.send_to(b.addr(), 7, {1}); });
  }
  net.run();

  EXPECT_NEAR(got, 700, 60);
  EXPECT_NEAR(static_cast<double>(seg.dropped_loss()), 300, 60);
}

struct ChaosCounts {
  std::uint64_t delivered, loss, queue, down, dup, corrupt;
  bool operator==(const ChaosCounts& o) const {
    return delivered == o.delivered && loss == o.loss && queue == o.queue &&
           down == o.down && dup == o.dup && corrupt == o.corrupt;
  }
};

ChaosCounts run_chaos_scenario(std::uint64_t seed) {
  UdpPair pair(10e6, millis(2));
  Impairments imp;
  imp.loss_rate = 0.1;
  imp.duplicate_rate = 0.05;
  imp.corrupt_rate = 0.05;
  imp.jitter = millis(3);
  imp.seed = seed;
  pair.link->set_impairments(imp);
  pair.link->schedule_outage(seconds(1), millis(1500));

  UdpSocket sink(*pair.b, 7, nullptr);
  UdpSocket src(*pair.a, 9999, nullptr);
  for (int i = 0; i < 500; ++i) {
    pair.net.events().schedule_at(millis(5) * i, [&] {
      src.send_to(pair.b->addr(), 7, std::vector<std::uint8_t>(200));
    });
  }
  pair.net.run();
  const auto& s = pair.link->impairment_stats();
  return {pair.link->delivered_packets(), s.dropped_loss, s.dropped_queue,
          s.dropped_down,                 s.duplicated,   s.corrupted};
}

TEST(Impairments, FixedSeedReplaysBitForBit) {
  ChaosCounts first = run_chaos_scenario(42);
  ChaosCounts second = run_chaos_scenario(42);
  EXPECT_TRUE(first == second) << "same seed must replay identically";
  EXPECT_GT(first.delivered, 0u);
  EXPECT_GT(first.loss, 0u);
  EXPECT_GT(first.down, 0u);
  EXPECT_GT(first.dup, 0u);
  EXPECT_GT(first.corrupt, 0u);

  ChaosCounts other = run_chaos_scenario(43);
  EXPECT_FALSE(first == other) << "different seeds should diverge";
}

TEST(Impairments, MidRunRateChangeKeepsStreamPosition) {
  // impairments() lets a schedule heal the link mid-run without reseeding.
  UdpPair pair;
  Impairments imp;
  imp.loss_rate = 1.0;
  pair.link->set_impairments(imp);
  pair.net.events().schedule_at(millis(500),
                                [&] { pair.link->impairments().loss_rate = 0; });

  int got = 0;
  UdpSocket sink(*pair.b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(*pair.a, 9999, nullptr);
  for (int i = 0; i < 10; ++i) {
    pair.net.events().schedule_at(millis(100) * i, [&] {
      src.send_to(pair.b->addr(), 7, {1});
    });
  }
  pair.net.run();
  EXPECT_EQ(got, 5);  // sends at 0.5..0.9 s survive
}

}  // namespace
}  // namespace asp::net
