// Fast-path dispatch and copy-on-write payload semantics: the interned
// dispatch index must preserve the paper's channel model (overloads sharing a
// name all fire, untagged traffic goes to `network`, unknown tags fall
// through to IP), and payload fan-out must alias one buffer until a writer
// appears.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "runtime/engine.hpp"
#include "runtime/netapi.hpp"

namespace asp::runtime {
namespace {

using asp::net::ip;
using asp::net::millis;
using asp::net::Network;
using asp::net::Node;
using asp::net::Packet;
using asp::net::UdpSocket;

Packet tagged_udp(const char* tag, std::vector<std::uint8_t> payload) {
  Packet p = Packet::make_udp(ip("10.0.0.1"), ip("10.0.0.2"), 9999, 7,
                              std::move(payload));
  p.set_channel(tag);
  return p;
}

TEST(Dispatch, OverloadedChannelsSharingANameAllFire) {
  Network net;
  Node& n = net.add_node("n");
  n.add_interface(ip("10.0.0.2"));
  AspRuntime rt(n);
  rt.install(R"(
channel ctrl(ps : int, ss : unit, p : ip*udp*char*int) is
  (println("ci"); drop(); (ps + 1, ss))
channel ctrl(ps : int, ss : unit, p : ip*udp*blob) is
  (println("b"); drop(); (ps + 1, ss))
)");
  // A 5-byte payload decodes as char*int AND as blob: both overloads of the
  // tagged channel must run, in declaration order.
  EXPECT_TRUE(rt.inject(tagged_udp("ctrl", {'A', 0, 0, 0, 1})));
  EXPECT_EQ(rt.log(), "ci\nb\n");
  EXPECT_EQ(rt.stats().packets_handled, 2u);
}

TEST(Dispatch, UntaggedTrafficReachesNetworkChannels) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
  AspRuntime rt(b);
  rt.install(R"(
channel ctrl(ps : unit, ss : unit, p : ip*udp*blob) is
  (println("ctrl"); drop(); (ps, ss))
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (println("net"); deliver(p); (ps, ss))
)");
  int got = 0;
  UdpSocket sock(b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, asp::net::bytes_of("hello"));
  net.run();
  // Plain UDP traffic carries no tag: only the `network` channel sees it.
  EXPECT_EQ(rt.log(), "net\n");
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rt.stats().packets_handled, 1u);
}

TEST(Dispatch, UnknownTagFallsThroughToIp) {
  Network net;
  Node& n = net.add_node("n");
  n.add_interface(ip("10.0.0.2"));
  AspRuntime rt(n);
  rt.install(R"(
channel ctrl(ps : unit, ss : unit, p : ip*udp*blob) is (drop(); (ps, ss))
channel network(ps : unit, ss : unit, p : ip*udp*blob) is (drop(); (ps, ss))
)");
  // A tag no channel declares: the protocol must not claim the packet — it
  // falls through to standard IP processing.
  EXPECT_FALSE(rt.inject(tagged_udp("nosuch", {1, 2, 3})));
  EXPECT_EQ(rt.stats().packets_passed, 1u);
  EXPECT_EQ(rt.stats().packets_handled, 0u);
}

TEST(Dispatch, TagResolvedLazilyWhenChannelStringSetDirectly) {
  Network net;
  Node& n = net.add_node("n");
  n.add_interface(ip("10.0.0.2"));
  AspRuntime rt(n);
  rt.install(R"(
channel ctrl(ps : unit, ss : unit, p : ip*udp*blob) is
  (println("c"); drop(); (ps, ss))
)");
  // Assigning the string member directly (no set_channel) leaves channel_tag
  // at 0; the runtime must intern it on first dispatch.
  Packet p = Packet::make_udp(ip("10.0.0.1"), ip("10.0.0.2"), 9999, 7,
                              std::vector<std::uint8_t>{1});
  p.channel = "ctrl";
  ASSERT_EQ(p.channel_tag, 0u);
  EXPECT_TRUE(rt.inject(std::move(p)));
  EXPECT_EQ(rt.log(), "c\n");
}

TEST(Payload, CopiesAliasOneBufferUntilMutation) {
  Packet p1 = Packet::make_udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2,
                               std::vector<std::uint8_t>{1, 2, 3, 4});
  Packet p2 = p1;
  EXPECT_EQ(p1.payload.buffer().get(), p2.payload.buffer().get());

  p2.mutable_payload()[0] = 9;  // first write clones
  EXPECT_NE(p1.payload.buffer().get(), p2.payload.buffer().get());
  EXPECT_EQ(p1.payload[0], 1);
  EXPECT_EQ(p2.payload[0], 9);

  // A sole owner mutates in place: no further cloning.
  const auto* rep = p2.payload.buffer().get();
  p2.mutable_payload()[1] = 8;
  EXPECT_EQ(p2.payload.buffer().get(), rep);
}

TEST(Payload, EthernetFanOutSharesOnePayloadBuffer) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Node& c = net.add_node("c");
  auto& seg = net.segment("lan", 10e6);
  net.attach(a, seg, ip("10.0.0.1"));
  net.attach(b, seg, ip("10.0.0.2"));
  net.attach(c, seg, ip("10.0.0.3"));
  c.iface(0).set_promiscuous(true);

  const std::vector<std::uint8_t>* seen_b = nullptr;
  const std::vector<std::uint8_t>* seen_c = nullptr;
  b.set_ip_hook([&](Packet& p, asp::net::Interface&) {
    seen_b = p.payload.buffer().get();
    return false;
  });
  c.set_ip_hook([&](Packet& p, asp::net::Interface&) {
    seen_c = p.payload.buffer().get();
    return false;
  });

  Packet p = Packet::make_udp(ip("10.0.0.1"), ip("10.0.0.2"), 9999, 7,
                              std::vector<std::uint8_t>(512, 0xAB));
  const auto* sent = p.payload.buffer().get();
  a.send_ip(std::move(p));
  net.run();

  // Both stations on the segment saw the frame, and neither delivery copied
  // the payload: all three views alias the sender's buffer.
  ASSERT_NE(seen_b, nullptr);
  ASSERT_NE(seen_c, nullptr);
  EXPECT_EQ(seen_b, sent);
  EXPECT_EQ(seen_c, sent);
}

TEST(Payload, DecodedBlobAliasesThePacketBuffer) {
  Packet p = Packet::make_udp(ip("10.0.0.1"), ip("10.0.0.2"), 9999, 7,
                              std::vector<std::uint8_t>{5, 6, 7});
  planp::TypePtr t = planp::Type::Tuple(
      {planp::Type::Ip(), planp::Type::Udp(), planp::Type::Blob()});
  std::optional<planp::Value> v = decode_packet(p, t);
  ASSERT_TRUE(v.has_value());
  const planp::Blob& blob = std::get<planp::Blob>(v->as_tuple()[2].rep());
  EXPECT_EQ(blob.get(), p.payload.buffer().get());
}

}  // namespace
}  // namespace asp::runtime
