#include "net/addr.hpp"

#include <gtest/gtest.h>

#include "net/meter.hpp"
#include "net/packet.hpp"

namespace asp::net {
namespace {

TEST(Ipv4Addr, ParsesDottedQuad) {
  auto a = Ipv4Addr::parse("131.254.60.81");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->str(), "131.254.60.81");
  EXPECT_EQ(a->bits(), (131u << 24) | (254u << 16) | (60u << 8) | 81u);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..3.4").has_value());
  EXPECT_FALSE(Ipv4Addr::parse(" 1.2.3.4").has_value());
}

TEST(Ipv4Addr, RoundTripsAllOctetBoundaries) {
  for (const char* s : {"0.0.0.0", "255.255.255.255", "10.0.0.1", "224.0.0.1"}) {
    auto a = Ipv4Addr::parse(s);
    ASSERT_TRUE(a.has_value()) << s;
    EXPECT_EQ(a->str(), s);
  }
}

TEST(Ipv4Addr, MulticastRange) {
  EXPECT_TRUE(Ipv4Addr(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Addr(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Addr(223, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Addr(240, 0, 0, 0).is_multicast());
}

TEST(Ipv4Addr, PrefixMatching) {
  Ipv4Addr a(192, 168, 1, 57);
  EXPECT_TRUE(a.in_prefix(Ipv4Addr(192, 168, 1, 0), 24));
  EXPECT_FALSE(a.in_prefix(Ipv4Addr(192, 168, 2, 0), 24));
  EXPECT_TRUE(a.in_prefix(Ipv4Addr(192, 168, 0, 0), 16));
  EXPECT_TRUE(a.in_prefix({}, 0));  // default route matches everything
  EXPECT_TRUE(a.in_prefix(a, 32));
  EXPECT_FALSE(Ipv4Addr(192, 168, 1, 58).in_prefix(a, 32));
}

TEST(Packet, WireSizeIncludesHeaders) {
  Packet u = Packet::make_udp(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1000, 2000,
                              std::vector<std::uint8_t>(100));
  EXPECT_EQ(u.wire_size(), 20u + 8u + 100u);

  TcpHeader th;
  Packet t = Packet::make_tcp(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), th,
                              std::vector<std::uint8_t>(50));
  EXPECT_EQ(t.wire_size(), 20u + 20u + 50u);

  Packet r = Packet::make_raw(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), {});
  EXPECT_EQ(r.wire_size(), 20u);

  r.channel = "audio";
  EXPECT_EQ(r.wire_size(), 24u);  // +4 channel tag
}

TEST(Packet, StringPayloadRoundTrip) {
  auto b = bytes_of("GET /index.html");
  EXPECT_EQ(string_of(b), "GET /index.html");
}

TEST(BandwidthMeter, ComputesWindowRate) {
  BandwidthMeter m(kNsPerSec);  // 1 s window
  m.record(0, 1000);
  m.record(kNsPerSec / 2, 1000);
  // Only 0.5 s of history exists, so the average runs over the elapsed time,
  // not the whole window: 2000 bytes in 0.5 s -> 32 kb/s (dividing by the
  // full window would underreport start-up bandwidth, see meter.hpp).
  EXPECT_DOUBLE_EQ(m.rate_bps(kNsPerSec / 2), 32000.0);
  // Once a full window has elapsed, the same bytes average over the window.
  EXPECT_DOUBLE_EQ(m.rate_bps(kNsPerSec), 16000.0);
}

TEST(BandwidthMeter, EvictsOldSamples) {
  BandwidthMeter m(kNsPerSec);
  m.record(0, 1000);
  m.record(2 * kNsPerSec, 500);
  EXPECT_EQ(m.window_bytes(2 * kNsPerSec), 500u);
  EXPECT_DOUBLE_EQ(m.rate_bps(2 * kNsPerSec), 4000.0);
}

TEST(BandwidthMeter, EmptyWindowIsZero) {
  BandwidthMeter m;
  EXPECT_DOUBLE_EQ(m.rate_bps(5 * kNsPerSec), 0.0);
}

}  // namespace
}  // namespace asp::net
