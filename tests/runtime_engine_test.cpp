#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/tcp.hpp"

namespace asp::runtime {
namespace {

using asp::net::ip;
using asp::net::millis;
using asp::net::Network;
using asp::net::Node;
using asp::net::Packet;
using asp::net::seconds;
using asp::net::UdpSocket;

TEST(AspRuntime, PassThroughWhenNothingMatches) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  AspRuntime rt(b);
  rt.install("channel network(ps : unit, ss : unit, p : ip*tcp*blob) is "
             "(deliver(p); (ps, ss))");
  int got = 0;
  UdpSocket sock(b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, asp::net::bytes_of("x"));
  net.run();
  // The TCP-only protocol ignores UDP: default IP behaviour delivers it.
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rt.stats().packets_passed, 1u);
  EXPECT_EQ(rt.stats().packets_handled, 0u);
}

TEST(AspRuntime, ChannelConsumesAndRedirects) {
  // A router ASP that redirects TCP traffic for 10.0.2.1 to 10.0.3.1.
  Network net;
  Node& a = net.add_node("a");
  Node& r = net.add_router("r");
  Node& b1 = net.add_node("b1");
  Node& b2 = net.add_node("b2");
  net.link(a, ip("10.0.1.1"), r, ip("10.0.1.254"), 10e6, millis(1));
  net.link(r, ip("10.0.2.254"), b1, ip("10.0.2.1"), 10e6, millis(1));
  net.link(r, ip("10.0.3.254"), b2, ip("10.0.3.1"), 10e6, millis(1));
  a.routes().add_default(0);
  b1.routes().add_default(0);
  b2.routes().add_default(0);

  AspRuntime rt(r);
  rt.install(R"(
channel network(ps : unit, ss : unit, p : ip*tcp*blob) is
  if ipDst(#1 p) = 10.0.2.1 then
    (OnRemote(network, (ipDestSet(#1 p, 10.0.3.1), #2 p, #3 p)); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
)");

  std::string got1, got2;
  b1.tcp().listen(80, [&](std::shared_ptr<asp::net::TcpConnection> c) {
    c->on_data([&](const std::vector<std::uint8_t>& d) { got1 += asp::net::string_of(d); });
  });
  b2.tcp().listen(80, [&](std::shared_ptr<asp::net::TcpConnection> c) {
    c->on_data([&](const std::vector<std::uint8_t>& d) { got2 += asp::net::string_of(d); });
  });
  // Client must talk to b2 even though it addresses b1... but replies come
  // from b2's address, so connect to b2 via the rewritten path is one-way.
  // For this unit test just verify raw TCP SYN redirection happened.
  auto c = a.tcp().connect(ip("10.0.2.1"), 80);
  net.run_until(seconds(1));
  EXPECT_GT(rt.stats().packets_handled, 0u);
  // b2 received the SYN (a connection attempt was registered there).
  EXPECT_GE(b2.tcp().open_connections(), 1u);
  EXPECT_EQ(b1.tcp().open_connections(), 0u);
}

TEST(AspRuntime, StatePersistsAcrossPackets) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  AspRuntime rt(b);
  rt.install(R"(
channel network(ps : int, ss : int, p : ip*udp*blob) initstate 0 is
  (println(ss); deliver(p); (ps, ss + 1))
)");
  UdpSocket sock(b, 7, [](const Packet&) {});
  UdpSocket src(a, 9999, nullptr);
  for (int i = 0; i < 3; ++i) src.send_to(b.addr(), 7, asp::net::bytes_of("x"));
  net.run();
  EXPECT_EQ(rt.log(), "0\n1\n2\n");
  EXPECT_EQ(rt.stats().packets_handled, 3u);
}

TEST(AspRuntime, SharedProtocolStateAcrossOverloads) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  AspRuntime rt(b);
  rt.install(R"(
channel network(ps : int, ss : unit, p : ip*udp*char*int) is
  (println(ps); deliver(p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (println(ps); deliver(p); (ps + 1, ss))
)");
  UdpSocket sock(b, 7, [](const Packet&) {});
  UdpSocket src(a, 9999, nullptr);
  // A 5-byte payload decodes as char*int AND as blob: both overloads run and
  // share the protocol state.
  src.send_to(b.addr(), 7, {'A', 0, 0, 0, 1});
  net.run();
  EXPECT_EQ(rt.log(), "0\n1\n");
}

TEST(AspRuntime, MismatchedProtocolStateTypesRejected) {
  Network net;
  Node& n = net.add_node("n");
  n.add_interface(ip("10.0.0.1"));
  AspRuntime rt(n);
  EXPECT_THROW(rt.install(R"(
channel network(ps : int, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))
channel network(ps : bool, ss : unit, p : ip*tcp*blob) is (deliver(p); (ps, ss))
)"),
               planp::PlanPError);
  EXPECT_FALSE(rt.installed());
}

TEST(AspRuntime, UserChannelDispatchByTag) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
  a.routes().add_default(0);

  // Node a rewraps UDP packets onto the user channel "mychan"; node b's
  // protocol handles "mychan" packets only.
  AspRuntime rt_a(a);
  rt_a.install(R"(
channel mychan(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(mychan, p); (ps, ss))
)");
  AspRuntime rt_b(b);
  rt_b.install(R"(
channel mychan(ps : unit, ss : unit, p : ip*udp*blob) is
  (println("tagged"); deliver(p); (ps, ss))
)");

  int got = 0;
  UdpSocket sock(b, 7, [&](const Packet&) { ++got; });
  // Inject an outgoing packet through a's ASP (send-path processing).
  Packet p = Packet::make_udp(a.addr(), b.addr(), 9999, 7, {1, 2, 3});
  EXPECT_TRUE(rt_a.inject(p));
  net.run();
  EXPECT_EQ(rt_b.log(), "tagged\n");
  EXPECT_EQ(got, 1);
}

TEST(AspRuntime, UnhandledChannelExceptionConsumesPacketAndLogs) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  AspRuntime rt(b);
  planp::Protocol::Options opts;  // delivery analysis would flag this; gate
  opts.require_verified = true;   // still accepts (delivery is advisory)
  rt.install(
      "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n"
      "  (raise \"Boom\"; (ps, ss))",
      opts);
  int got = 0;
  UdpSocket sock(b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, asp::net::bytes_of("x"));
  net.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(rt.stats().runtime_errors, 1u);
  EXPECT_NE(rt.log().find("Boom"), std::string::npos);
}

TEST(AspRuntime, LinkLoadReflectsMonitoredMedium) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& seg = net.segment("lan", 10e6, 0);
  net.attach(a, seg, ip("192.168.1.1"));
  net.attach(b, seg, ip("192.168.1.2"));

  AspRuntime rt(a);
  rt.set_monitored_medium(&seg);
  rt.install("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
             "(println(linkLoad()); deliver(p); (ps, ss))");

  // ~50% load for half a second, then probe.
  UdpSocket sink(b, 9, nullptr);
  UdpSocket srcb(b, 8888, nullptr);
  for (int i = 0; i < 250; ++i) {
    net.events().schedule_at(millis(2) * i, [&] {
      srcb.send_to(ip("192.168.1.9"), 9, std::vector<std::uint8_t>(1222));
    });
  }
  net.events().schedule_at(millis(400), [&] {
    srcb.send_to(a.addr(), 7, asp::net::bytes_of("probe"));
  });
  UdpSocket sock_a(a, 7, [](const Packet&) {});
  net.run_until(millis(600));
  // linkLoad printed something close to 50.
  int load = std::stoi(rt.log());
  EXPECT_NEAR(load, 50, 15);
}

TEST(AspRuntime, TtlGuardStopsRunawayForwarding) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
  a.routes().add_default(0);
  b.routes().add_default(0);

  // Pathological ping-pong, loaded unverified: the runtime TTL guard bounds it.
  planp::Protocol::Options opts;
  opts.require_verified = false;
  auto asp_src = R"(
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  if ipDst(#1 p) = 10.0.0.1 then
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))
  else
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))
)";
  AspRuntime rt_a(a);
  rt_a.install(asp_src, opts);
  AspRuntime rt_b(b);
  rt_b.install(asp_src, opts);

  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, asp::net::bytes_of("x"));
  net.run_until(seconds(10));
  EXPECT_TRUE(net.events().empty());  // the storm died out
  EXPECT_LE(rt_a.stats().packets_sent + rt_b.stats().packets_sent, 70u);  // bounded by TTL
}

TEST(AspRuntime, UninstallRestoresDefaultBehaviour) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  AspRuntime rt(b);
  rt.install("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
             "(drop(); (ps, ss))");
  int got = 0;
  UdpSocket sock(b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, asp::net::bytes_of("x"));
  net.run();
  EXPECT_EQ(got, 0);  // ASP dropped it

  rt.uninstall();
  src.send_to(b.addr(), 7, asp::net::bytes_of("x"));
  net.run();
  EXPECT_EQ(got, 1);  // standard IP behaviour restored
}

TEST(AspRuntime, EngineChoiceDoesNotChangeBehaviour) {
  for (planp::EngineKind kind :
       {planp::EngineKind::kInterp, planp::EngineKind::kBytecode,
        planp::EngineKind::kJit}) {
    Network net;
    Node& a = net.add_node("a");
    Node& b = net.add_node("b");
    net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
    AspRuntime rt(b);
    planp::Protocol::Options opts;
    opts.engine = kind;
    rt.install(R"(
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (println(ps * 2); deliver(p); (ps + 1, ss))
)",
               opts);
    UdpSocket sock(b, 7, [](const Packet&) {});
    UdpSocket src(a, 9999, nullptr);
    for (int i = 0; i < 3; ++i) src.send_to(b.addr(), 7, asp::net::bytes_of("x"));
    net.run();
    EXPECT_EQ(rt.log(), "0\n2\n4\n") << "engine " << static_cast<int>(kind);
  }
}

TEST(AspRuntime, MetricsReachGlobalRegistry) {
  // stats() reports per-instance deltas, but the same numbers accumulate in
  // the process-wide registry under node/<name>/asp/* (plus per-channel
  // dispatch counts and a handling-latency histogram).
  obs::MetricsRegistry& reg = obs::registry();
  std::uint64_t handled0 = reg.counter("node/mreg/asp/packets_handled").value();
  std::uint64_t chan0 =
      reg.counter("node/mreg/asp/channel/network/handled").value();
  std::uint64_t lat0 = reg.histogram("node/mreg/asp/handle_us").count();

  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("mreg");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  AspRuntime rt(b);
  rt.install("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
             "(deliver(p); (ps, ss))");
  UdpSocket sock(b, 7, [](const Packet&) {});
  UdpSocket src(a, 9999, nullptr);
  for (int i = 0; i < 3; ++i) src.send_to(b.addr(), 7, asp::net::bytes_of("x"));
  net.run();

  EXPECT_EQ(rt.stats().packets_handled, 3u);
  EXPECT_EQ(reg.counter("node/mreg/asp/packets_handled").value(), handled0 + 3);
  EXPECT_EQ(reg.counter("node/mreg/asp/channel/network/handled").value(),
            chan0 + 3);
  // Handler latency is sampled 1-in-16 dispatches (first always): 3 packets
  // through a fresh runtime record exactly one observation.
  EXPECT_EQ(reg.histogram("node/mreg/asp/handle_us").count(), lat0 + 1);
}

}  // namespace
}  // namespace asp::runtime
