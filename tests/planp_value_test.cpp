// Value model properties: equality/hash consistency (what the hash tables
// rely on), default values, display forms.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "planp/parser.hpp"
#include "planp/value.hpp"

namespace asp::planp {
namespace {

std::vector<Value> key_values() {
  return {
      Value::of_int(0),
      Value::of_int(-5),
      Value::of_int(1LL << 40),
      Value::of_bool(true),
      Value::of_bool(false),
      Value::of_char('a'),
      Value::of_char('\0'),
      Value::of_string(""),
      Value::of_string("hello"),
      Value::of_host(asp::net::ip("10.0.0.1")),
      Value::of_host(asp::net::ip("10.0.0.2")),
      Value::of_tuple({Value::of_int(1), Value::of_bool(true)}),
      Value::of_tuple({Value::of_int(1), Value::of_bool(false)}),
      Value::of_tuple({Value::of_host(asp::net::ip("1.1.1.1")), Value::of_int(80)}),
      Value::unit(),
  };
}

TEST(Value, EqualsIsReflexiveAndHashConsistent) {
  for (const Value& v : key_values()) {
    EXPECT_TRUE(v.equals(v)) << v.str();
    EXPECT_EQ(v.hash(), v.hash());
  }
}

TEST(Value, DistinctKeysCompareUnequal) {
  auto vals = key_values();
  for (std::size_t i = 0; i < vals.size(); ++i) {
    for (std::size_t j = 0; j < vals.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(vals[i].equals(vals[j]))
          << vals[i].str() << " vs " << vals[j].str();
    }
  }
}

TEST(Value, StructurallyEqualValuesShareHashes) {
  Value a = Value::of_tuple({Value::of_int(7), Value::of_string("x")});
  Value b = Value::of_tuple({Value::of_int(7), Value::of_string("x")});
  EXPECT_TRUE(a.equals(b));
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Value, CrossTypeComparisonsAreFalseNotFatal) {
  EXPECT_FALSE(Value::of_int(1).equals(Value::of_bool(true)));
  EXPECT_FALSE(Value::of_char('1').equals(Value::of_int('1')));
  EXPECT_FALSE(Value::unit().equals(Value::of_int(0)));
}

TEST(Value, BlobsCompareByContent) {
  Value a = Value::of_blob({1, 2, 3});
  Value b = Value::of_blob({1, 2, 3});
  Value c = Value::of_blob({1, 2, 4});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
}

TEST(Value, TablesCompareByIdentity) {
  auto t1 = std::make_shared<HashTable>();
  auto t2 = std::make_shared<HashTable>();
  EXPECT_TRUE(Value::of_table(t1).equals(Value::of_table(t1)));
  EXPECT_FALSE(Value::of_table(t1).equals(Value::of_table(t2)));
}

TEST(Value, BlobsHashByContentAndMemoize) {
  Value a = Value::of_blob({1, 2, 3});
  Value b = Value::of_blob({1, 2, 3});
  Value c = Value::of_blob({1, 2, 4});
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_EQ(a.hash(), a.hash());  // cached second call agrees
}

TEST(Value, UnhashableKindsThrowEvalBug) {
  EXPECT_THROW(Value::of_ip({}).hash(), EvalBug);
  EXPECT_THROW(Value::of_table(std::make_shared<HashTable>()).hash(), EvalBug);
}

TEST(Value, AccessorsGuardAgainstWrongKind) {
  EXPECT_THROW(Value::of_int(1).as_bool(), EvalBug);
  EXPECT_THROW(Value::of_bool(true).as_string(), EvalBug);
  EXPECT_THROW(Value::unit().as_tuple(), EvalBug);
}

TEST(Value, DisplayForms) {
  EXPECT_EQ(Value::of_int(-3).str(), "-3");
  EXPECT_EQ(Value::of_bool(true).str(), "true");
  EXPECT_EQ(Value::of_char('z').str(), "z");
  EXPECT_EQ(Value::of_string("s").str(), "s");
  EXPECT_EQ(Value::of_host(asp::net::ip("1.2.3.4")).str(), "1.2.3.4");
  EXPECT_EQ(Value::of_blob({1, 2}).str(), "<blob:2>");
  EXPECT_EQ(Value::of_tuple({Value::of_int(1), Value::of_int(2)}).str(), "(1, 2)");
  EXPECT_EQ(Value::unit().str(), "()");
}

TEST(Value, DefaultValuesMatchTypes) {
  Program p = parse(
      "channel c(ps : int*bool*(host, int) hash_table, ss : unit, p : ip*blob) is "
      "(deliver(p); (ps, ss))");
  const auto& c = std::get<ChannelDef>(p.decls[0]);
  Value d = default_value(c.ps_type);
  const auto& t = d.as_tuple();
  EXPECT_EQ(t[0].as_int(), 0);
  EXPECT_FALSE(t[1].as_bool());
  EXPECT_EQ(t[2].as_table()->size(), 0u);
}

TEST(HashTableUnit, CollisionsAndOverwrite) {
  HashTable t(2);  // tiny bucket hint: lots of collisions
  for (int i = 0; i < 100; ++i) t.set(Value::of_int(i), Value::of_int(i * 2));
  EXPECT_EQ(t.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto v = t.get(Value::of_int(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->as_int(), i * 2);
  }
  t.set(Value::of_int(5), Value::of_string("replaced"));
  EXPECT_EQ(t.get(Value::of_int(5))->as_string(), "replaced");
  EXPECT_EQ(t.size(), 100u);
  EXPECT_TRUE(t.remove(Value::of_int(5)));
  EXPECT_FALSE(t.remove(Value::of_int(5)));
  EXPECT_EQ(t.size(), 99u);
}

}  // namespace
}  // namespace asp::planp
