#include "planp/typecheck.hpp"

#include <gtest/gtest.h>

#include "planp/parser.hpp"

namespace asp::planp {
namespace {

CheckedProgram check(const std::string& src) { return typecheck(parse(src)); }

void expect_type_error(const std::string& src, const std::string& fragment = "") {
  try {
    check(src);
    FAIL() << "expected type error for:\n" << src;
  } catch (const PlanPError& e) {
    if (!fragment.empty()) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << "actual: " << e.what();
    }
  }
}

TEST(Typecheck, ValWithMatchingType) {
  CheckedProgram p = check("val x : int = 1 + 2 * 3");
  ASSERT_EQ(p.globals.size(), 1u);
  EXPECT_TRUE(p.globals[0]->init->type->is(Type::Kind::kInt));
}

TEST(Typecheck, ValWithMismatchedTypeFails) {
  expect_type_error("val x : int = true", "expected int");
  expect_type_error("val x : string = 5");
  expect_type_error("val x : host = \"1.2.3.4\"");
}

TEST(Typecheck, ArithmeticRequiresInts) {
  expect_type_error("val x : int = 1 + true");
  expect_type_error("val x : int = \"a\" * 2");
}

TEST(Typecheck, StringConcat) {
  check("val x : string = \"a\" ^ \"b\"");
  expect_type_error("val x : string = \"a\" ^ 1");
}

TEST(Typecheck, EqualityOnEqualityTypesOnly) {
  check("val x : bool = 1 = 2");
  check("val x : bool = 1.2.3.4 <> 5.6.7.8");
  check("val x : bool = (1, true) = (2, false)");
  expect_type_error(
      "channel c(ps : unit, ss : unit, p : ip*blob) is\n"
      "  (if #2 p = #2 p then (deliver(p); (ps,ss)) else (ps,ss))",
      "equality");
}

TEST(Typecheck, EqualityRequiresSameTypes) {
  expect_type_error("val x : bool = 1 = true");
  expect_type_error("val x : bool = 'c' = \"c\"");
}

TEST(Typecheck, OrderingOnIntCharString) {
  check("val a : bool = 1 < 2");
  check("val b : bool = 'a' <= 'b'");
  check("val c : bool = \"a\" > \"b\"");
  expect_type_error("val d : bool = true < false");
  expect_type_error("val e : bool = (1,2) < (3,4)");
}

TEST(Typecheck, UnboundVariable) {
  expect_type_error("val x : int = y", "unbound variable 'y'");
}

TEST(Typecheck, LetBindingScopes) {
  check("val x : int = let val a : int = 1 in a + a end");
  expect_type_error("val x : int = (let val a : int = 1 in a end) + a",
                    "unbound variable 'a'");
}

TEST(Typecheck, LetAnnotationEnforced) {
  expect_type_error("val x : int = let val a : bool = 1 in 2 end");
}

TEST(Typecheck, IfBranchesMustAgree) {
  check("val x : int = if true then 1 else 2");
  expect_type_error("val x : int = if true then 1 else false");
  expect_type_error("val x : int = if 1 then 2 else 3", "expected bool");
}

TEST(Typecheck, RaiseAdoptsContextType) {
  check("val x : int = if true then 1 else raise \"Bad\"");
  check("val x : string = try raise \"Oops\" with \"fallback\"");
}

TEST(Typecheck, ProjectionRanges) {
  check("val x : bool = #2 (1, true, 'c')");
  expect_type_error("val x : int = #4 (1, 2, 3)", "out of range");
  expect_type_error("val x : int = #0 (1, 2)", "out of range");
  expect_type_error("val x : int = #1 5", "non-tuple");
}

TEST(Typecheck, FunctionsCheckArgumentsAndResult) {
  check("fun add(a : int, b : int) : int = a + b\n"
        "val x : int = add(1, 2)");
  expect_type_error("fun f(a : int) : int = a\nval x : int = f(true)");
  expect_type_error("fun f(a : int) : int = a\nval x : int = f(1, 2)", "expects 1");
  expect_type_error("fun f(a : int) : bool = a");
}

TEST(Typecheck, NoRecursion) {
  // A function cannot call itself...
  expect_type_error("fun f(a : int) : int = f(a)", "unknown function");
  // ...nor a function defined later (no mutual recursion).
  expect_type_error("fun f(a : int) : int = g(a)\nfun g(a : int) : int = f(a)",
                    "unknown function");
}

TEST(Typecheck, FunctionsMayNotShadowPrimitives) {
  expect_type_error("fun min(a : int, b : int) : int = a", "shadows a built-in");
}

TEST(Typecheck, DuplicateDefinitionsRejected) {
  expect_type_error("val x : int = 1\nval x : int = 2", "duplicate");
  expect_type_error("fun f(a : int) : int = a\nval f : int = 1", "duplicate");
}

TEST(Typecheck, MkTableInfersFromAnnotation) {
  CheckedProgram p = check("val t : (host, int) hash_table = mkTable(64)");
  EXPECT_EQ(p.globals[0]->init->type->str(), "(host, int) hash_table");
}

TEST(Typecheck, MkTableWithoutContextFails) {
  expect_type_error(
      "channel c(ps : unit, ss : unit, p : ip*blob) is (deliver(p); (ps, mkTable(4)))",
      "cannot infer");
}

TEST(Typecheck, TableOpsUnifyKeyAndValueTypes) {
  check(R"(
val t : (host, int) hash_table = mkTable(16)
val u : unit = tableSet(t, 1.2.3.4, 42)
val x : int = tableGet(t, 5.6.7.8)
val b : bool = tableMem(t, 1.2.3.4)
)");
  expect_type_error(
      "val t : (host, int) hash_table = mkTable(16)\n"
      "val x : int = tableGet(t, 99)");
  expect_type_error(
      "val t : (host, int) hash_table = mkTable(16)\n"
      "val u : unit = tableSet(t, 1.2.3.4, true)");
}

TEST(Typecheck, PrimitiveOverloadsResolveByArgument) {
  check("val a : unit = println(1)\n"
        "val b : unit = println(\"s\")\n"
        "val c : unit = println(true)\n"
        "val d : unit = println(1.2.3.4)");
  expect_type_error("val a : unit = println((1, 2))", "no matching overload");
}

TEST(Typecheck, UnknownPrimitive) {
  expect_type_error("val x : int = frobnicate(1)", "unknown function or primitive");
}

TEST(Typecheck, ChannelBodyMustReturnStatePair) {
  check("channel c(ps : int, ss : int, p : ip*blob) is (deliver(p); (ps + 1, ss))");
  expect_type_error(
      "channel c(ps : int, ss : int, p : ip*blob) is (ps, ss, 1)");
  expect_type_error("channel c(ps : int, ss : int, p : ip*blob) is ps");
}

TEST(Typecheck, ChannelPacketTypeValidation) {
  expect_type_error("channel c(ps : unit, ss : unit, p : int) is (ps, ss)",
                    "not a valid packet type");
  expect_type_error("channel c(ps : unit, ss : unit, p : tcp*ip*blob) is (ps, ss)",
                    "not a valid packet type");
  expect_type_error("channel c(ps : unit, ss : unit, p : ip*blob*int) is (ps, ss)",
                    "not a valid packet type");
  // Valid shapes:
  check("channel c(ps : unit, ss : unit, p : ip*tcp*blob) is (deliver(p); (ps, ss))");
  check("channel c(ps : unit, ss : unit, p : ip*udp*char*int*blob) is (deliver(p); (ps, ss))");
  check("channel c(ps : unit, ss : unit, p : ip*blob) is (deliver(p); (ps, ss))");
}

TEST(Typecheck, InitstateMustMatchChannelStateType) {
  check("channel c(ps : unit, ss : int, p : ip*blob) initstate 5 is (deliver(p); (ps, ss))");
  expect_type_error(
      "channel c(ps : unit, ss : int, p : ip*blob) initstate true is (ps, ss)");
}

TEST(Typecheck, OverloadedChannelsNeedDistinctPacketTypes) {
  expect_type_error(
      "channel c(ps : unit, ss : unit, p : ip*blob) is (deliver(p); (ps, ss))\n"
      "channel c(ps : unit, ss : unit, p : ip*blob) is (deliver(p); (ps, ss))",
      "duplicate channel");
}

TEST(Typecheck, OnRemoteChecksPacketAgainstChannelType) {
  check(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*blob) is
  (OnRemote(c, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))
)");
  expect_type_error(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*blob) is
  (OnRemote(c, (#2 p, #1 p, #3 p)); (ps, ss))
)");
  expect_type_error(
      "channel c(ps : unit, ss : unit, p : ip*blob) is (OnRemote(nochan, p); (ps, ss))",
      "unknown channel");
}

TEST(Typecheck, OverloadedChannelSendMatchesOneOverload) {
  check(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*char*int) is (deliver(p); (ps, ss))
channel c(ps : unit, ss : unit, p : ip*tcp*char*bool) is (deliver(p); (ps, ss))
channel d(ps : unit, ss : unit, p : ip*tcp*blob) is
  (OnRemote(c, (#1 p, #2 p, 'a', 5)); (ps, ss))
)");
  expect_type_error(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*char*int) is (deliver(p); (ps, ss))
channel c(ps : unit, ss : unit, p : ip*tcp*char*bool) is (deliver(p); (ps, ss))
channel d(ps : unit, ss : unit, p : ip*tcp*blob) is
  (OnRemote(c, (#1 p, #2 p, "x", 5)); (ps, ss))
)",
                    "no overload");
}

TEST(Typecheck, DeliverRequiresPacketValue) {
  expect_type_error("channel c(ps : unit, ss : unit, p : ip*blob) is (deliver(5); (ps, ss))",
                    "requires a packet value");
}

TEST(Typecheck, HeaderAccessors) {
  check(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*blob) is
  let val iph : ip = #1 p
      val t : tcp = #2 p
      val src : host = ipSrc(iph)
      val port : int = tcpDst(t)
      val n : int = blobLen(#3 p)
  in (deliver(p); (ps, ss)) end
)");
  expect_type_error("channel c(ps : unit, ss : unit, p : ip*udp*blob) is\n"
                    "  (println(tcpDst(#2 p)); (deliver(p); (ps, ss)))");
}

TEST(Typecheck, PaperFigure2GatewayFragmentChecks) {
  // The load-balancing fragment of Figure 2, completed and adapted to our
  // (key, value) hash_table syntax.
  check(R"(
fun getSetS(src : host, dst : host, sport : int,
            ss : (host*int, int) hash_table, ps : int) : int =
  try tableGet(ss, (src, sport))
  with (tableSet(ss, (src, sport), ps % 2); ps % 2)

channel network(ps : int, ss : (host*int, int) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let val iph : ip = #1 p
      val tcph : tcp = #2 p
      val body : blob = #3 p
  in
    if tcpDst(tcph) = 80 then
      let val con : int = getSetS(ipSrc(iph), ipDst(iph), tcpSrc(tcph), ss, ps) in
        if con = 0 then
          (OnRemote(network, (ipDestSet(iph, 131.254.60.81), tcph, body));
           (con, ss))
        else
          (OnRemote(network, (ipDestSet(iph, 131.254.60.109), tcph, body));
           (con, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
)");
}

TEST(Typecheck, GlobalsVisibleInChannels) {
  check("val limit : int = 50\n"
        "channel c(ps : int, ss : unit, p : ip*blob) is\n"
        "  (deliver(p); (if ps > limit then 0 else ps + 1, ss))");
}

TEST(Typecheck, FrameSlotsAssigned) {
  CheckedProgram p = check(R"(
channel c(ps : unit, ss : unit, p : ip*tcp*blob) is
  let val a : ip = #1 p
      val b : tcp = #2 p
  in (deliver(p); (ps, ss)) end
)");
  ASSERT_EQ(p.channels.size(), 1u);
  EXPECT_GE(p.channels[0]->frame_slots, 5);  // ps, ss, p, a, b
}

}  // namespace
}  // namespace asp::planp
