// Extension tests: alternative load-balancing strategies and fault tolerance
// (the paper's §5 future work for the HTTP cluster).
#include <gtest/gtest.h>

#include "apps/asp_sources.hpp"
#include "apps/http/experiment.hpp"
#include "net/network.hpp"
#include "planp/analysis.hpp"
#include "planp/parser.hpp"

namespace asp::apps {
namespace {

using asp::net::ip;
using asp::net::seconds;

TEST(HttpStrategies, HashGatewayTypechecks) {
  auto r = planp::analyze(planp::typecheck(
      planp::parse(http_gateway_hash_asp(ip("10.0.9.9"), ip("10.0.2.1"), ip("10.0.2.2")))));
  EXPECT_TRUE(r.guaranteed_delivery) << r.delivery_detail;
  EXPECT_TRUE(r.linear_duplication) << r.duplication_detail;
}

TEST(HttpStrategies, FailoverGatewayTypechecks) {
  auto r = planp::analyze(planp::typecheck(planp::parse(
      http_gateway_failover_asp(ip("10.0.9.9"), ip("10.0.2.1"), ip("10.0.2.2")))));
  EXPECT_TRUE(r.linear_duplication) << r.duplication_detail;
}

TEST(HttpStrategies, HashStrategyBalancesAndCompletes) {
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.strategy = GatewayStrategy::kHash;
  opts.client_machines = 4;
  opts.processes_per_machine = 2;
  opts.trace_accesses = 2000;
  HttpExperiment exp(opts);
  auto r = exp.run(8.0);
  EXPECT_GT(r.completed, 200u);
  EXPECT_GT(exp.servers()[0]->requests_served(), 0u);
  EXPECT_GT(exp.servers()[1]->requests_served(), 0u);
}

TEST(HttpStrategies, StrategiesAreComparableAtSaturation) {
  // The point of the exercise in the paper: swap the ASP, compare strategies.
  double rps[2];
  int i = 0;
  for (GatewayStrategy s : {GatewayStrategy::kModulo, GatewayStrategy::kHash}) {
    HttpExperiment::Options opts;
    opts.config = HttpConfig::kAspGateway;
    opts.strategy = s;
    opts.client_machines = 6;
    opts.processes_per_machine = 4;
    opts.trace_accesses = 20'000;
    HttpExperiment exp(opts);
    rps[i++] = exp.run(10.0).requests_per_sec;
  }
  EXPECT_NEAR(rps[0], rps[1], 0.2 * rps[0]);
}

TEST(HttpFailover, TrafficMovesToSurvivingServer) {
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.strategy = GatewayStrategy::kFailover;
  opts.client_machines = 2;
  opts.processes_per_machine = 2;
  opts.trace_accesses = 5000;
  HttpExperiment exp(opts);

  // At t=4 s server 0 crashes and the administrator marks it down.
  exp.network().events().schedule_at(seconds(4.0), [&] {
    exp.kill_server(0);
    exp.mark_server(0, /*down=*/true);
  });

  auto r = exp.run(12.0);
  std::uint64_t s0_before = exp.servers()[0]->requests_served();
  std::uint64_t s1 = exp.servers()[1]->requests_served();
  EXPECT_GT(s0_before, 0u);  // both served before the crash
  EXPECT_GT(s1, s0_before);  // the survivor carried the rest of the run
  // Service continued: far more requests completed than fit in 4 s.
  EXPECT_GT(r.completed, 2u * s0_before);
}

TEST(HttpFailover, RecoveryRestoresBalancing) {
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.strategy = GatewayStrategy::kFailover;
  opts.client_machines = 2;
  opts.processes_per_machine = 2;
  opts.trace_accesses = 5000;
  HttpExperiment exp(opts);

  // Down for the middle third of the run, then back up.
  exp.network().events().schedule_at(seconds(3.0),
                                     [&] { exp.mark_server(0, true); });
  std::uint64_t served_at_recovery = 0;
  exp.network().events().schedule_at(seconds(6.0), [&] {
    exp.mark_server(0, false);
    served_at_recovery = exp.servers()[0]->requests_served();
  });
  exp.run(12.0);
  // New connections reached server 0 again after recovery.
  EXPECT_GT(exp.servers()[0]->requests_served(), served_at_recovery);
}

}  // namespace
}  // namespace asp::apps
