#include "planp/parser.hpp"

#include <gtest/gtest.h>

namespace asp::planp {
namespace {

TEST(Parser, ExpressionPrecedence) {
  EXPECT_EQ(to_string(*parse_expr("1 + 2 * 3")), "(1 + (2 * 3))");
  EXPECT_EQ(to_string(*parse_expr("(1 + 2) * 3")), "((1 + 2) * 3)");
  EXPECT_EQ(to_string(*parse_expr("1 + 2 = 3 + 4")), "((1 + 2) = (3 + 4))");
  EXPECT_EQ(to_string(*parse_expr("a and b or c")), "((a and b) or c)");
  EXPECT_EQ(to_string(*parse_expr("not a and b")), "(not a and b)");
  EXPECT_EQ(to_string(*parse_expr("1 - 2 - 3")), "((1 - 2) - 3)");
}

TEST(Parser, UnaryMinusAndProjectionBindTightly) {
  EXPECT_EQ(to_string(*parse_expr("-x + 1")), "(- x + 1)");
  EXPECT_EQ(to_string(*parse_expr("#1 p = 3")), "(#1 p = 3)");
  EXPECT_EQ(to_string(*parse_expr("#2 #1 p")), "#2 #1 p");
}

TEST(Parser, ParenDisambiguation) {
  // (a; b) is a sequence, (a, b) a tuple, (a) grouping, () unit.
  EXPECT_EQ(parse_expr("(a; b)")->kind, Expr::Kind::kSeq);
  EXPECT_EQ(parse_expr("(a, b)")->kind, Expr::Kind::kTuple);
  EXPECT_EQ(parse_expr("(a)")->kind, Expr::Kind::kVar);
  EXPECT_EQ(parse_expr("()")->kind, Expr::Kind::kUnitLit);
}

TEST(Parser, LetDesugarsMultipleBindings) {
  ExprPtr e = parse_expr(
      "let val x : int = 1 val y : int = 2 in x + y end");
  ASSERT_EQ(e->kind, Expr::Kind::kLet);
  EXPECT_EQ(e->name, "x");
  ASSERT_EQ(e->args[1]->kind, Expr::Kind::kLet);
  EXPECT_EQ(e->args[1]->name, "y");
}

TEST(Parser, LetRequiresBinding) {
  EXPECT_THROW(parse_expr("let in 1 end"), PlanPError);
}

TEST(Parser, IfRequiresElse) {
  EXPECT_THROW(parse_expr("if a then b"), PlanPError);
}

TEST(Parser, SendForms) {
  ExprPtr r = parse_expr("OnRemote(network, (iph, tcp, body))");
  ASSERT_EQ(r->kind, Expr::Kind::kSend);
  EXPECT_EQ(r->send_kind, SendKind::kOnRemote);
  EXPECT_EQ(r->name, "network");

  ExprPtr n = parse_expr("OnNeighbor(audio, p)");
  EXPECT_EQ(n->send_kind, SendKind::kOnNeighbor);

  ExprPtr d = parse_expr("deliver(p)");
  EXPECT_EQ(d->send_kind, SendKind::kDeliver);

  ExprPtr dr = parse_expr("drop()");
  EXPECT_EQ(dr->send_kind, SendKind::kDrop);
  EXPECT_TRUE(dr->args.empty());
}

TEST(Parser, TryRaise) {
  ExprPtr e = parse_expr("try tableGet(t, k) with 0");
  ASSERT_EQ(e->kind, Expr::Kind::kTry);
  ExprPtr r = parse_expr("raise \"NotFound\"");
  EXPECT_EQ(r->kind, Expr::Kind::kRaise);
  EXPECT_EQ(r->str_val, "NotFound");
}

TEST(Parser, ValDefinition) {
  Program p = parse("val CmdA : int = 1\nval CmdB : int = 2");
  ASSERT_EQ(p.decls.size(), 2u);
  const auto& v = std::get<ValDef>(p.decls[0]);
  EXPECT_EQ(v.name, "CmdA");
  EXPECT_TRUE(v.type->is(Type::Kind::kInt));
}

TEST(Parser, FunDefinition) {
  Program p = parse("fun add(a : int, b : int) : int = a + b");
  const auto& f = std::get<FunDef>(p.decls[0]);
  EXPECT_EQ(f.name, "add");
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_EQ(f.params[0].first, "a");
  EXPECT_TRUE(f.ret->is(Type::Kind::kInt));
}

TEST(Parser, ChannelDefinitionWithInitstate) {
  Program p = parse(
      "channel network(ps : int, ss : (host, int) hash_table, p : ip*tcp*blob)\n"
      "initstate mkTable(256) is (ps, ss)");
  const auto& c = std::get<ChannelDef>(p.decls[0]);
  EXPECT_EQ(c.name, "network");
  EXPECT_EQ(c.ps_name, "ps");
  EXPECT_EQ(c.ss_name, "ss");
  EXPECT_EQ(c.p_name, "p");
  ASSERT_NE(c.init_state, nullptr);
  EXPECT_EQ(c.packet_type->str(), "ip*tcp*blob");
  EXPECT_EQ(c.ss_type->str(), "(host, int) hash_table");
}

TEST(Parser, ChannelWithoutInitstate) {
  Program p = parse("channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)");
  const auto& c = std::get<ChannelDef>(p.decls[0]);
  EXPECT_EQ(c.init_state, nullptr);
}

TEST(Parser, TupleTypesNest) {
  Program p = parse("val x : int*(bool*char)*host = (1, (true, 'c'), 10.0.0.1)");
  const auto& v = std::get<ValDef>(p.decls[0]);
  EXPECT_EQ(v.type->str(), "int*(bool*char)*host");
}

TEST(Parser, HashTableTypeRequiresKeyAndValue) {
  EXPECT_THROW(parse("val t : (int) hash_table = mkTable(4)"), PlanPError);
}

TEST(Parser, SourceLineCountSkipsBlanksAndPureComments) {
  Program p = parse("val a : int = 1\n\n-- comment only\nval b : int = 2\n");
  EXPECT_EQ(p.source_lines, 3);  // two defs + the comment line (non-blank)
}

TEST(Parser, PaperFigure4OverloadedChannelsParse) {
  // Figure 4 of the paper, adapted to our hash_table-free fragment.
  Program p = parse(R"(
val CmdA : int = 1
val CmdB : int = 2

channel network(ps : unit, ss : unit, p : ip*tcp*char*int) is
  if charPos(#3 p) = CmdA then
    (print("CmdA: "); println(#4 p); (ps, ss))
  else
    (ps, ss)

channel network(ps : unit, ss : unit, p : ip*tcp*char*bool) is
  if charPos(#3 p) = CmdB then
    (print("CmdB: "); println(#4 p); (ps, ss))
  else
    (ps, ss)
)");
  auto chans = p.channels();
  ASSERT_EQ(chans.size(), 2u);
  EXPECT_EQ(chans[0]->name, "network");
  EXPECT_EQ(chans[1]->name, "network");
  EXPECT_EQ(chans[0]->packet_type->str(), "ip*tcp*char*int");
  EXPECT_EQ(chans[1]->packet_type->str(), "ip*tcp*char*bool");
}

TEST(Parser, ErrorsCarryLocation) {
  try {
    parse("val x : int = \n  1 +");
    FAIL() << "expected parse error";
  } catch (const PlanPError& e) {
    EXPECT_EQ(e.loc().line, 2);
  }
}

TEST(Parser, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_expr("1 + 2 junk"), PlanPError);
  EXPECT_THROW(parse("val x : int = 1 42"), PlanPError);
}

}  // namespace
}  // namespace asp::planp
