#include "net/event.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace asp::net {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, EqualTimesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(100, [&, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInUsesCurrentTime) {
  EventQueue q;
  SimTime seen = 0;
  q.schedule_at(50, [&] {
    q.schedule_in(25, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 75u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.schedule_at(10, [&] { ran = true; });
  q.cancel(id);
  q.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.cancel(12345);
  bool ran = false;
  q.schedule_at(1, [&] { ran = true; });
  q.run();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.schedule_at(10, [&] { fired.push_back(10); });
  q.schedule_at(20, [&] { fired.push_back(20); });
  q.schedule_at(30, [&] { fired.push_back(30); });
  q.run_until(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(q.now(), 20u);
  q.run_until(100);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) q.schedule_in(5, tick);
  };
  q.schedule_at(0, tick);
  q.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(q.now(), 45u);
}

TEST(EventQueue, RunLimitStopsEarly) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(q.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.pending(), 7u);
}

TEST(EventQueue, PendingCountsOutCancelled) {
  EventQueue q;
  EventId a = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(SimTimeHelpers, Conversions) {
  EXPECT_EQ(seconds(1.5), 1'500'000'000u);
  EXPECT_EQ(millis(2), 2'000'000u);
  EXPECT_EQ(micros(3), 3'000u);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(42.0)), 42.0);
}

TEST(SimTimeHelpers, TxTimeMatchesLinkRate) {
  // 1250 bytes at 10 Mb/s = 1 ms.
  EXPECT_EQ(tx_time(1250, 10e6), kNsPerMs);
  // 1 byte at 8 bits/s = 1 s.
  EXPECT_EQ(tx_time(1, 8.0), kNsPerSec);
}


TEST(EventQueue, NextEventTimeSkipsCancelledHead) {
  EventQueue q;
  EventId dead = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  q.cancel(dead);
  EXPECT_EQ(q.next_event_time(), 20u);
  q.run();
  EXPECT_EQ(q.next_event_time(), EventQueue::kNever);
}

// Regression: run_until(t) used to look only at the raw heap head, so a
// cancelled entry at the head with time <= t let it run a live event
// scheduled PAST t. The parallel executor's window math relies on the bound
// being exact.
TEST(EventQueue, RunUntilNeverRunsPastTheBound) {
  EventQueue q;
  int fired_late = 0;
  EventId dead = q.schedule_at(10, [] {});
  q.schedule_at(100, [&] { ++fired_late; });
  q.cancel(dead);
  q.run_until(50);
  EXPECT_EQ(fired_late, 0) << "event at t=100 must not run in run_until(50)";
  EXPECT_EQ(q.now(), 50u);
  q.run_until(100);
  EXPECT_EQ(fired_late, 1);
}

}  // namespace
}  // namespace asp::net
