// The determinism contract (DESIGN.md §6f): with the same seeds, a run under
// ParallelExecutor with N shards produces byte-identical results to the
// serial run — same per-app statistics, same per-cause drop counters. These
// are the paper's own experiments, re-run sharded and compared field by
// field against the single-queue baseline.
#include <gtest/gtest.h>

#include "apps/audio/experiment.hpp"
#include "apps/http/experiment.hpp"
#include "net/exec.hpp"
#include "net/network.hpp"

namespace asp::apps {
namespace {

using asp::net::Impairments;
using asp::net::ParallelExecutor;
using asp::net::seconds;

struct AudioOutcome {
  AudioRunResult result;
  std::uint64_t dropped_loss = 0, dropped_queue = 0;
};

// The §3.1 audio chaos scenario: 10% random loss on the client LAN. The LAN
// is a segment (never cut), so its RNG stream is shard-confined; the cut
// source->router uplink carries the stream across shards.
AudioOutcome run_audio(int shards) {
  AudioExperiment exp(/*adaptation=*/true);
  asp::net::Medium* lan = exp.network().find_medium("client-lan");
  EXPECT_NE(lan, nullptr);
  Impairments imp;
  imp.loss_rate = 0.10;
  imp.seed = 41;
  lan->set_impairments(imp);

  std::unique_ptr<ParallelExecutor> exec;
  if (shards > 1) {
    exec = std::make_unique<ParallelExecutor>(exp.network(), shards);
    EXPECT_EQ(exec->shard_count(), 2) << "audio topology has two islands";
  }
  AudioOutcome out;
  out.result = exp.run(10.0, {{0.0, 0.0}});
  out.dropped_loss = lan->dropped_loss();
  out.dropped_queue = lan->dropped_queue();
  return out;
}

TEST(ParallelDeterminism, AudioChaosShardedEqualsSerial) {
  AudioOutcome serial = run_audio(1);
  AudioOutcome sharded = run_audio(4);  // capped to the 2 islands

  EXPECT_EQ(serial.result.frames_sent, sharded.result.frames_sent);
  EXPECT_EQ(serial.result.frames_received, sharded.result.frames_received);
  EXPECT_EQ(serial.result.silent_periods, sharded.result.silent_periods);
  EXPECT_EQ(serial.result.silent_ticks, sharded.result.silent_ticks);
  EXPECT_EQ(serial.result.level_switches, sharded.result.level_switches);
  EXPECT_EQ(serial.dropped_loss, sharded.dropped_loss);
  EXPECT_EQ(serial.dropped_queue, sharded.dropped_queue);
  ASSERT_EQ(serial.result.series.size(), sharded.result.series.size());
  for (std::size_t i = 0; i < serial.result.series.size(); ++i) {
    const AudioSample& s = serial.result.series[i];
    const AudioSample& p = sharded.result.series[i];
    EXPECT_EQ(s.audio_kbps, p.audio_kbps) << "t=" << s.t_sec;
    EXPECT_EQ(s.load_kbps, p.load_kbps) << "t=" << s.t_sec;
    EXPECT_EQ(s.level, p.level) << "t=" << s.t_sec;
  }
  EXPECT_GT(serial.dropped_loss, 0u) << "the chaos scenario must actually drop";
}

struct HttpOutcome {
  HttpRunResult result;
  std::uint64_t lan_loss = 0, lan_queue = 0, lan_unaddressed = 0;
  std::uint64_t link_queue = 0, link_loss = 0;
  std::uint64_t delivered = 0;
};

// The §3.2 cluster under 5% server-LAN loss. Each client machine hangs off
// its own clean 1 ms access link, so with 3 machines the topology splits
// into 4 islands (clients + server complex) — a real shards=4 run.
HttpOutcome run_http(int shards) {
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.client_machines = 3;
  opts.processes_per_machine = 2;
  opts.trace_accesses = 400;

  HttpExperiment exp(opts);
  asp::net::Medium* lan = exp.network().find_medium("server-lan");
  EXPECT_NE(lan, nullptr);
  Impairments imp;
  imp.loss_rate = 0.05;
  imp.seed = 43;
  lan->set_impairments(imp);

  std::unique_ptr<ParallelExecutor> exec;
  if (shards > 1) {
    exec = std::make_unique<ParallelExecutor>(exp.network(), shards);
    EXPECT_EQ(exec->island_count(), 4);
    EXPECT_EQ(exec->shard_count(), shards);
  }

  HttpOutcome out;
  out.result = exp.run(5.0);
  out.lan_loss = lan->dropped_loss();
  out.lan_queue = lan->dropped_queue();
  out.lan_unaddressed = lan->dropped_unaddressed();
  out.delivered = lan->delivered_packets();
  for (const auto& m : exp.network().media()) {
    if (m.get() == lan) continue;
    out.link_queue += m->dropped_queue();
    out.link_loss += m->dropped_loss();
    out.delivered += m->delivered_packets();
  }
  return out;
}

TEST(ParallelDeterminism, HttpClusterShardedEqualsSerial) {
  HttpOutcome serial = run_http(1);
  HttpOutcome sharded = run_http(4);

  EXPECT_EQ(serial.result.completed, sharded.result.completed);
  EXPECT_EQ(serial.result.failed, sharded.result.failed);
  EXPECT_EQ(serial.result.mean_latency_ms, sharded.result.mean_latency_ms);
  EXPECT_EQ(serial.lan_loss, sharded.lan_loss);
  EXPECT_EQ(serial.lan_queue, sharded.lan_queue);
  EXPECT_EQ(serial.lan_unaddressed, sharded.lan_unaddressed);
  EXPECT_EQ(serial.link_queue, sharded.link_queue);
  EXPECT_EQ(serial.link_loss, sharded.link_loss);
  EXPECT_EQ(serial.delivered, sharded.delivered);
  EXPECT_GT(serial.lan_loss, 0u);
  EXPECT_GT(serial.result.completed, 50u);
}

}  // namespace
}  // namespace asp::apps
