// Differential fuzzing: randomly generated well-typed PLAN-P programs must
// behave identically on the interpreter, the bytecode VM and the JIT —
// including which PLAN-P exceptions they raise. This is the mechanized form
// of the paper's claim that the JIT is *derived* from the interpreter and
// therefore preserves its semantics.
//
// The same corpus also runs with mem pool poisoning on (ASP_MEM_POISON
// semantics): recycled buffers/tuple slots/frames are scribbled with
// sentinels between packets, so an engine holding a stale reference into
// recycled pool memory diverges loudly instead of silently reading stale
// bytes.
#include <gtest/gtest.h>

#include <random>

#include "mem/pool.hpp"
#include "planp/compile.hpp"
#include "planp/interp.hpp"
#include "planp/jit.hpp"
#include "planp/parser.hpp"

namespace asp::planp {
namespace {

/// Generates random well-typed expressions over `ps : int` and a few lets.
class ExprGen {
 public:
  explicit ExprGen(std::uint32_t seed) : rng_(seed) {}

  std::string int_expr(int depth) {
    if (depth <= 0) return leaf();
    switch (rng_() % 12) {
      case 0: case 1: return leaf();
      case 2: return "(" + int_expr(depth - 1) + " + " + int_expr(depth - 1) + ")";
      case 3: return "(" + int_expr(depth - 1) + " - " + int_expr(depth - 1) + ")";
      case 4: return "(" + int_expr(depth - 1) + " * " + small() + ")";
      case 5:
        // Division can raise DivByZero; keep it under a try half the time so
        // both raising and non-raising paths are exercised.
        if (rng_() % 2 == 0) {
          return "(try " + int_expr(depth - 1) + " / " + int_expr(depth - 1) +
                 " with " + small() + ")";
        }
        return "(" + int_expr(depth - 1) + " % 7 + 1)";
      case 6:
        return "(if " + bool_expr(depth - 1) + " then " + int_expr(depth - 1) +
               " else " + int_expr(depth - 1) + ")";
      case 7: {
        std::string v = fresh();
        return "(let val " + v + " : int = " + int_expr(depth - 1) + " in " + v +
               " + " + v + " end)";
      }
      case 8: return "min(" + int_expr(depth - 1) + ", " + int_expr(depth - 1) + ")";
      case 9: return "max(" + int_expr(depth - 1) + ", " + small() + ")";
      case 10: return "abs(" + int_expr(depth - 1) + ")";
      default:
        return "(try (if " + bool_expr(depth - 1) + " then raise \"F\" else " +
               int_expr(depth - 1) + ") with " + small() + ")";
    }
  }

  std::string bool_expr(int depth) {
    if (depth <= 0) return rng_() % 2 == 0 ? "true" : "(ps > 0)";
    switch (rng_() % 6) {
      case 0: return "(" + int_expr(depth - 1) + " < " + int_expr(depth - 1) + ")";
      case 1: return "(" + int_expr(depth - 1) + " = " + int_expr(depth - 1) + ")";
      case 2: return "(" + bool_expr(depth - 1) + " and " + bool_expr(depth - 1) + ")";
      case 3: return "(" + bool_expr(depth - 1) + " or " + bool_expr(depth - 1) + ")";
      case 4: return "not " + bool_expr(depth - 1);
      default: return "(" + int_expr(depth - 1) + " >= " + small() + ")";
    }
  }

 private:
  std::string leaf() {
    switch (rng_() % 3) {
      case 0: return "ps";
      case 1: return small();
      default: return "(ps % 5)";
    }
  }
  std::string small() { return std::to_string(static_cast<int>(rng_() % 9) - 4); }
  std::string fresh() { return "v" + std::to_string(var_counter_++); }

  std::mt19937 rng_;
  int var_counter_ = 0;
};

struct Outcome {
  bool raised = false;
  std::string exception;
  std::int64_t value = 0;

  bool operator==(const Outcome& o) const {
    return raised == o.raised && exception == o.exception &&
           (raised || value == o.value);
  }
  std::string str() const {
    return raised ? "raise " + exception : std::to_string(value);
  }
};

Outcome run_one(Engine& engine, std::int64_t ps) {
  Value pkt = Value::of_tuple({Value::of_ip({}), Value::of_blob({1, 2, 3})});
  Outcome out;
  try {
    Value result = engine.run_channel(0, Value::of_int(ps), Value::unit(), pkt);
    out.value = result.as_tuple()[0].as_int();
  } catch (const PlanPException& e) {
    out.raised = true;
    out.exception = e.name;
  }
  return out;
}

void check_engines_agree(std::uint32_t seed) {
  ExprGen gen(seed);
  std::string body = gen.int_expr(5);
  std::string src =
      "channel c(ps : int, ss : unit, p : ip*blob) is\n"
      "  (deliver(p); ((" + body + "), ss))";

  CheckedProgram checked;
  try {
    checked = typecheck(parse(src));
  } catch (const PlanPError& e) {
    FAIL() << "generator produced an ill-formed program: " << e.what() << "\n" << src;
  }

  NullEnv env_i, env_v, env_j;
  Interp interp(checked, env_i);
  CompiledProgram compiled = compile(checked);
  VmEngine vm(compiled, env_v);
  JitEngine jit(compiled, env_j);

  for (std::int64_t ps : {-17, -3, -1, 0, 1, 2, 5, 42, 1000}) {
    Outcome a = run_one(interp, ps);
    Outcome b = run_one(vm, ps);
    Outcome c = run_one(jit, ps);
    EXPECT_EQ(a, b) << "interp=" << a.str() << " vm=" << b.str() << " at ps=" << ps
                    << "\n" << src;
    EXPECT_EQ(a, c) << "interp=" << a.str() << " jit=" << c.str() << " at ps=" << ps
                    << "\n" << src;
  }
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FuzzSeeds, EnginesAgreeOnRandomPrograms) { check_engines_agree(GetParam()); }

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FuzzSeeds, ::testing::Range(0u, 40u));

// The same corpus under poison-on-free: every recycled buffer, tuple slot and
// execution frame is scribbled with sentinels between channel runs, so a
// use-after-recycle in any engine shows up as a divergence (or a loud
// sentinel value) rather than a silent right answer from stale memory.
class PoisonedFuzzSeeds : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void SetUp() override {
    prev_ = mem::poison_enabled();
    mem::set_poison(true);
  }
  void TearDown() override { mem::set_poison(prev_); }

 private:
  bool prev_ = false;
};

TEST_P(PoisonedFuzzSeeds, EnginesAgreeWithPoolPoisoning) {
  check_engines_agree(GetParam());
}

INSTANTIATE_TEST_SUITE_P(PoisonedPrograms, PoisonedFuzzSeeds,
                         ::testing::Range(0u, 20u));

}  // namespace
}  // namespace asp::planp
