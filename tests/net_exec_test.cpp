// ParallelExecutor: partitioning rules, window/lookahead math, cross-shard
// delivery, and the hard determinism contract (N shards == serial, exactly).
#include "net/exec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"

namespace asp::net {
namespace {

// ---------------------------------------------------------------------- //
// Partitioning

TEST(ParallelExecutor, CleanDelayedLinkIsCut) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  ParallelExecutor exec(net, 2);
  EXPECT_EQ(exec.island_count(), 2);
  EXPECT_EQ(exec.shard_count(), 2);
  EXPECT_NE(exec.shard_of(a), exec.shard_of(b));
  EXPECT_EQ(exec.lookahead(), millis(1));
}

TEST(ParallelExecutor, ImpairedLinkIsNeverCut) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  PointToPointLink& l = net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));
  Impairments imp;
  imp.loss_rate = 0.1;
  l.set_impairments(imp);

  ParallelExecutor exec(net, 2);
  // The RNG draw order on an impaired link must stay serial, so the island
  // cannot be split no matter how many shards were requested.
  EXPECT_EQ(exec.island_count(), 1);
  EXPECT_EQ(exec.shard_count(), 1);
  EXPECT_EQ(exec.shard_of(a), exec.shard_of(b));
}

TEST(ParallelExecutor, ZeroDelayLinkIsNeverCut) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, /*delay=*/0);

  ParallelExecutor exec(net, 2);
  EXPECT_EQ(exec.island_count(), 1);  // zero lookahead: no window could make progress
}

TEST(ParallelExecutor, SegmentStationsShareAShard) {
  Network net;
  EthernetSegment& seg = net.segment("lan", 10e6);
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Node& c = net.add_node("c");
  net.attach(a, seg, ip("10.0.0.1"));
  net.attach(b, seg, ip("10.0.0.2"));
  net.attach(c, seg, ip("10.0.0.3"));

  ParallelExecutor exec(net, 3);
  EXPECT_EQ(exec.island_count(), 1);
  EXPECT_EQ(exec.shard_of(a), exec.shard_of(b));
  EXPECT_EQ(exec.shard_of(b), exec.shard_of(c));
}

TEST(ParallelExecutor, LookaheadIsMinCutDelay) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Node& c = net.add_node("c");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(5));
  net.link(b, ip("10.0.1.1"), c, ip("10.0.1.2"), 10e6, millis(2));

  ParallelExecutor exec(net, 3);
  EXPECT_EQ(exec.island_count(), 3);
  EXPECT_EQ(exec.lookahead(), millis(2));
}

TEST(ParallelExecutor, RequestingFewerShardsMergesIslands) {
  Network net;
  std::vector<Node*> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(&net.add_node("n" + std::to_string(i)));
  for (int i = 0; i + 1 < 6; ++i)
    net.link(*nodes[static_cast<std::size_t>(i)], Ipv4Addr(10, 0, std::uint8_t(i), 1),
             *nodes[static_cast<std::size_t>(i + 1)], Ipv4Addr(10, 0, std::uint8_t(i), 2),
             10e6, millis(1));

  ParallelExecutor exec(net, 2);
  EXPECT_EQ(exec.island_count(), 6);
  EXPECT_EQ(exec.shard_count(), 2);
  int in0 = 0;
  for (Node* n : nodes)
    if (exec.shard_of(*n) == 0) ++in0;
  EXPECT_EQ(in0, 3) << "LPT on equal weights must balance 6 islands 3/3";
}

// ---------------------------------------------------------------------- //
// Execution

// Ping-pong over one cut link; returns the times at which each side saw a
// datagram, as observed from each node's own clock.
struct PingPong {
  Network net;
  Node* a;
  Node* b;
  std::vector<SimTime> a_times, b_times;
  std::unique_ptr<UdpSocket> sa, sb;

  explicit PingPong(int rounds) {
    a = &net.add_node("a");
    b = &net.add_node("b");
    net.link(*a, ip("10.0.0.1"), *b, ip("10.0.0.2"), 10e6, millis(1));
    a->routes().add_default(0);
    b->routes().add_default(0);
    sb = std::make_unique<UdpSocket>(*b, 7, [this](const Packet& p) {
      b_times.push_back(b->events().now());
      sb->send_to(p.ip.src, p.udp->sport, {4, 5, 6});
    });
    sa = std::make_unique<UdpSocket>(*a, 9000, [this, rounds](const Packet&) {
      a_times.push_back(a->events().now());
      if (static_cast<int>(a_times.size()) < rounds)
        sa->send_to(ip("10.0.0.2"), 7, {1, 2, 3});
    });
  }
  void kick() { sa->send_to(ip("10.0.0.2"), 7, {1, 2, 3}); }
};

TEST(ParallelExecutor, CrossShardPingPongMatchesSerial) {
  constexpr int kRounds = 50;

  PingPong serial(kRounds);
  serial.kick();
  serial.net.run();

  PingPong sharded(kRounds);
  ParallelExecutor exec(sharded.net, 2);
  ASSERT_EQ(exec.shard_count(), 2);
  sharded.kick();
  sharded.net.run();  // override routes into the windowed loop

  ASSERT_EQ(serial.a_times.size(), static_cast<std::size_t>(kRounds));
  EXPECT_EQ(serial.a_times, sharded.a_times);
  EXPECT_EQ(serial.b_times, sharded.b_times);
  EXPECT_EQ(exec.stats().cross_messages, static_cast<std::uint64_t>(2 * kRounds));
  EXPECT_GT(exec.stats().windows, 0u);
}

TEST(ParallelExecutor, RunUntilAdvancesEveryShardClock) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(1));

  ParallelExecutor exec(net, 2);
  net.run_until(seconds(3));
  EXPECT_EQ(a.events().now(), seconds(3));
  EXPECT_EQ(b.events().now(), seconds(3));
  EXPECT_EQ(net.now(), seconds(3));
}

TEST(ParallelExecutor, DetachRestoresSerialOperation) {
  PingPong pp(4);
  {
    ParallelExecutor exec(pp.net, 2);
    pp.kick();
    pp.net.run();
  }
  // Executor destroyed: queues rebound to the primary, overrides cleared.
  std::size_t before = pp.a_times.size();
  EXPECT_EQ(&pp.a->events(), &pp.net.events());
  EXPECT_EQ(&pp.b->events(), &pp.net.events());
  pp.kick();
  pp.net.run();
  EXPECT_GT(pp.a_times.size(), before);
}

TEST(ParallelExecutor, SingleShardFallbackStillRuns) {
  PingPong pp(3);
  ParallelExecutor exec(pp.net, 1);
  EXPECT_EQ(exec.shard_count(), 1);
  pp.kick();
  pp.net.run();
  EXPECT_EQ(pp.a_times.size(), 3u);
  EXPECT_EQ(exec.stats().cross_messages, 0u);
}

TEST(ParallelExecutor, DisjointIslandsRunInOneWindow) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");  // no media at all: two isolated islands
  int a_fired = 0, b_fired = 0;
  ParallelExecutor exec(net, 2);
  ASSERT_EQ(exec.shard_count(), 2);
  a.events().schedule_at(seconds(1), [&] { ++a_fired; });
  b.events().schedule_at(seconds(2), [&] { ++b_fired; });
  net.run_until(seconds(5));
  EXPECT_EQ(a_fired, 1);
  EXPECT_EQ(b_fired, 1);
}

}  // namespace
}  // namespace asp::net
