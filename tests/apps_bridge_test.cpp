// The PLAN-P learning Ethernet bridge (cited claim of paper §1/§2.4).
#include <gtest/gtest.h>

#include "apps/asp_sources.hpp"
#include "net/network.hpp"
#include "planp/analysis.hpp"
#include "planp/parser.hpp"
#include "runtime/engine.hpp"

namespace asp::apps {
namespace {

using asp::net::ip;
using asp::net::Network;
using asp::net::Node;
using asp::net::Packet;
using asp::net::UdpSocket;

TEST(BridgeAsp, PassesAllFourAnalyses) {
  auto r = planp::analyze(planp::typecheck(planp::parse(bridge_asp())));
  EXPECT_TRUE(r.local_termination);
  EXPECT_TRUE(r.global_termination) << r.global_termination_detail;
  EXPECT_TRUE(r.linear_duplication) << r.duplication_detail;
  // drop() is intentional bridge filtering: delivery is (correctly) advisory.
  EXPECT_FALSE(r.guaranteed_delivery);
}

// Two segments joined by a bridge machine; all hosts share one subnet.
struct BridgeRig {
  BridgeRig() {
    bridge = &net.add_node("bridge");
    seg_a = &net.segment("segA", 10e6, asp::net::micros(10));
    seg_b = &net.segment("segB", 10e6, asp::net::micros(10));
    asp::net::Interface& ia = net.attach(*bridge, *seg_a, ip("10.0.0.254"));
    asp::net::Interface& ib = net.attach(*bridge, *seg_b, ip("10.0.0.253"));
    ia.set_promiscuous(true);
    ib.set_promiscuous(true);

    a1 = add_host("a1", *seg_a, "10.0.0.1");
    a2 = add_host("a2", *seg_a, "10.0.0.2");
    b1 = add_host("b1", *seg_b, "10.0.0.11");
    b2 = add_host("b2", *seg_b, "10.0.0.12");

    rt = std::make_unique<asp::runtime::AspRuntime>(*bridge);
    rt->install(bridge_asp());
  }

  Node* add_host(const char* name, asp::net::EthernetSegment& seg, const char* addr) {
    Node& n = net.add_node(name);
    net.attach(n, seg, ip(addr));
    return &n;
  }

  int count_at(Node& n, std::uint16_t port, std::function<void()> traffic) {
    int got = 0;
    UdpSocket sock(n, port, [&](const Packet&) { ++got; });
    traffic();
    net.run_until(net.now() + asp::net::seconds(1));
    return got;
  }

  Network net;
  Node* bridge;
  asp::net::EthernetSegment* seg_a;
  asp::net::EthernetSegment* seg_b;
  Node *a1, *a2, *b1, *b2;
  std::unique_ptr<asp::runtime::AspRuntime> rt;
};

TEST(Bridge, ForwardsAcrossSegments) {
  BridgeRig rig;
  UdpSocket src(*rig.a1, 9999, nullptr);
  int got = rig.count_at(*rig.b1, 7, [&] {
    src.send_to(rig.b1->addr(), 7, asp::net::bytes_of("cross"));
  });
  EXPECT_EQ(got, 1);
}

TEST(Bridge, LearnsAndFiltersSameSegmentTraffic) {
  BridgeRig rig;
  // Teach the bridge where a2 lives: a2 sends something first.
  UdpSocket src_a2(*rig.a2, 9998, nullptr);
  UdpSocket src_a1(*rig.a1, 9999, nullptr);
  UdpSocket sink_b(*rig.b1, 9, nullptr);
  src_a2.send_to(rig.b1->addr(), 9, asp::net::bytes_of("hello"));
  rig.net.run_until(rig.net.now() + asp::net::seconds(1));

  std::uint64_t sent_before = rig.rt->stats().packets_sent;
  // a1 -> a2 is same-segment: the segment delivers it directly, and the
  // learned bridge must NOT re-emit it onto segment B.
  int got = rig.count_at(*rig.a2, 7, [&] {
    src_a1.send_to(rig.a2->addr(), 7, asp::net::bytes_of("local"));
  });
  EXPECT_EQ(got, 1);                               // direct segment delivery
  EXPECT_EQ(rig.rt->stats().packets_sent, sent_before);  // bridge stayed silent
}

TEST(Bridge, UnknownDestinationIsFlooded) {
  BridgeRig rig;
  UdpSocket src(*rig.a1, 9999, nullptr);
  std::uint64_t sent_before = rig.rt->stats().packets_sent;
  // 10.0.0.99 does not exist: the bridge has never seen it, so it floods.
  src.send_to(ip("10.0.0.99"), 7, asp::net::bytes_of("who?"));
  rig.net.run_until(rig.net.now() + asp::net::seconds(1));
  EXPECT_EQ(rig.rt->stats().packets_sent, sent_before + 1);
}

TEST(Bridge, BidirectionalConversation) {
  BridgeRig rig;
  int at_b = 0, at_a = 0;
  UdpSocket pong(*rig.b2, 7, [&](const Packet& p) {
    ++at_b;
    // reply
    UdpSocket tmp(*rig.b2, 9997, nullptr);
    tmp.send_to(p.ip.src, 8, asp::net::bytes_of("pong"));
  });
  UdpSocket ping_back(*rig.a1, 8, [&](const Packet&) { ++at_a; });
  UdpSocket src(*rig.a1, 9999, nullptr);
  for (int i = 0; i < 3; ++i) {
    src.send_to(rig.b2->addr(), 7, asp::net::bytes_of("ping"));
  }
  rig.net.run_until(rig.net.now() + asp::net::seconds(2));
  EXPECT_EQ(at_b, 3);
  EXPECT_EQ(at_a, 3);
}

TEST(Bridge, BuiltinCBridgeBehavesIdentically) {
  // The comparison baseline: same logic against the packet structs.
  BridgeRig rig;
  rig.rt->uninstall();
  auto table = std::make_shared<std::map<std::uint32_t, int>>();
  rig.bridge->set_ip_hook([table, bridge = rig.bridge](Packet& p,
                                                       asp::net::Interface& in) {
    (*table)[p.ip.src.bits()] = in.index();
    auto it = table->find(p.ip.dst.bits());
    int side = it != table->end() ? it->second : -1;
    if (side == in.index()) return true;  // filter
    for (std::size_t i = 0; i < bridge->iface_count(); ++i) {
      if (static_cast<int>(i) == in.index()) continue;
      Packet copy = p;
      bridge->iface(static_cast<int>(i)).transmit(std::move(copy));
    }
    return true;
  });

  UdpSocket src(*rig.a1, 9999, nullptr);
  int got = rig.count_at(*rig.b1, 7, [&] {
    src.send_to(rig.b1->addr(), 7, asp::net::bytes_of("cross"));
  });
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace asp::apps
