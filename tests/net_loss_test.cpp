// Failure injection: uniform random loss on media, and TCP's behaviour
// under it (a property sweep: whatever the loss rate, delivered data is
// exactly the sent data — reliability may cost time, never correctness).
#include <gtest/gtest.h>

#include <numeric>

#include "net/network.hpp"
#include "net/tcp.hpp"

namespace asp::net {
namespace {

TEST(LossInjection, DropsApproximatelyTheConfiguredFraction) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& l = net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 100e6, millis(1));
  l.set_loss_rate(0.25);

  int got = 0;
  UdpSocket sink(b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(a, 9999, nullptr);
  for (int i = 0; i < 2000; ++i) src.send_to(b.addr(), 7, {1});
  net.run();
  EXPECT_NEAR(static_cast<double>(got) / 2000.0, 0.75, 0.05);
  EXPECT_NEAR(static_cast<double>(l.dropped_packets()) / 2000.0, 0.25, 0.05);
}

TEST(LossInjection, ZeroRateDropsNothing) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& l = net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 100e6, millis(1));
  int got = 0;
  UdpSocket sink(b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(a, 9999, nullptr);
  for (int i = 0; i < 500; ++i) src.send_to(b.addr(), 7, {1});
  net.run();
  EXPECT_EQ(got, 500);
  EXPECT_EQ(l.dropped_packets(), 0u);
}

class TcpLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(TcpLossSweep, BulkTransferSurvivesLoss) {
  double loss = GetParam() / 100.0;
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  auto& l = net.link(a, ip("10.0.0.1"), b, ip("10.0.0.2"), 10e6, millis(2));
  l.set_loss_rate(loss);

  std::vector<std::uint8_t> sent(60'000);
  std::iota(sent.begin(), sent.end(), 0);
  std::vector<std::uint8_t> got;
  bool closed = false;
  b.tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([&](const std::vector<std::uint8_t>& d) {
      got.insert(got.end(), d.begin(), d.end());
    });
    c->on_closed([&] { closed = true; });
  });
  auto c = a.tcp().connect(b.addr(), 80);
  c->on_established([&] {
    c->send(sent);
    c->close();
  });
  net.run_until(seconds(120));

  EXPECT_EQ(got, sent) << "at loss rate " << loss;
  if (loss > 0) EXPECT_GT(c->retransmissions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep, ::testing::Values(0, 1, 3, 5, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "loss" + std::to_string(info.param) + "pct";
                         });

TEST(LossInjection, AudioOverLossyUplinkDegradesGracefully) {
  // UDP media: loss hurts but nothing wedges; the receiver just sees fewer
  // frames (the property the paper's reliability assumption footnote makes).
  Network net;
  Node& src = net.add_node("src");
  Node& dst = net.add_node("dst");
  auto& l = net.link(src, ip("10.0.0.1"), dst, ip("10.0.0.2"), 10e6, millis(1));
  l.set_loss_rate(0.10);
  int got = 0;
  UdpSocket sink(dst, 5004, [&](const Packet&) { ++got; });
  UdpSocket out(src, 5004, nullptr);
  // Paced like a real media stream (back-to-back would tail-drop the queue).
  for (int i = 0; i < 1000; ++i) {
    net.events().schedule_at(millis(1) * i, [&] {
      out.send_to(dst.addr(), 5004, std::vector<std::uint8_t>(440));
    });
  }
  net.run();
  EXPECT_GT(got, 800);
  EXPECT_LT(got, 1000);
}

}  // namespace
}  // namespace asp::net
