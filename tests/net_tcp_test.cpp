#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "net/network.hpp"

namespace asp::net {
namespace {

// Two hosts joined by a 10 Mb/s, 1 ms link.
struct Pair {
  Pair(double bps = 10e6, SimTime delay = millis(1), std::uint64_t queue = 64 * 1024) {
    a = &net.add_node("a");
    b = &net.add_node("b");
    net.link(*a, ip("10.0.0.1"), *b, ip("10.0.0.2"), bps, delay, queue);
    a->routes().add_default(0);
    b->routes().add_default(0);
  }
  Network net;
  Node* a;
  Node* b;
};

TEST(Tcp, HandshakeEstablishesBothEnds) {
  Pair p;
  bool server_est = false, client_est = false;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_established([&] { server_est = true; });
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] { client_est = true; });
  p.net.run();
  EXPECT_TRUE(server_est);
  EXPECT_TRUE(client_est);
  EXPECT_EQ(c->state(), TcpConnection::State::kEstablished);
}

TEST(Tcp, ConnectToClosedPortNeverEstablishes) {
  Pair p;
  bool est = false;
  auto c = p.a->tcp().connect(p.b->addr(), 81);
  c->on_established([&] { est = true; });
  p.net.run_until(seconds(2));
  EXPECT_FALSE(est);
}

TEST(Tcp, TransfersSmallMessageBothWays) {
  Pair p;
  std::string at_server, at_client;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([&, c](const std::vector<std::uint8_t>& d) {
      at_server += string_of(d);
      c->send("pong");
    });
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] { c->send("ping"); });
  c->on_data([&](const std::vector<std::uint8_t>& d) { at_client += string_of(d); });
  p.net.run();
  EXPECT_EQ(at_server, "ping");
  EXPECT_EQ(at_client, "pong");
}

TEST(Tcp, TransfersBulkDataIntact) {
  Pair p;
  std::vector<std::uint8_t> sent(200'000);
  std::iota(sent.begin(), sent.end(), 0);
  std::vector<std::uint8_t> got;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([&](const std::vector<std::uint8_t>& d) {
      got.insert(got.end(), d.begin(), d.end());
    });
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] { c->send(sent); });
  p.net.run_until(seconds(10));
  EXPECT_EQ(got, sent);
}

TEST(Tcp, BulkThroughputApproachesLinkRate) {
  Pair p(10e6, millis(1));
  std::vector<std::uint8_t> sent(1'000'000);
  std::size_t got = 0;
  SimTime done_at = 0;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([&](const std::vector<std::uint8_t>& d) {
      got += d.size();
      if (got == sent.size()) done_at = p.net.now();
    });
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] { c->send(sent); });
  p.net.run_until(seconds(30));
  ASSERT_EQ(got, sent.size());
  double goodput = 8.0 * static_cast<double>(got) / to_seconds(done_at);
  EXPECT_GT(goodput, 5e6);  // at least half the 10 Mb/s link
}

TEST(Tcp, RecoversFromLossViaRetransmission) {
  // Small queue forces drops under slow start bursts.
  Pair p(1e6, millis(1), 4000);
  std::vector<std::uint8_t> sent(100'000, 0xAB);
  std::vector<std::uint8_t> got;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([&](const std::vector<std::uint8_t>& d) {
      got.insert(got.end(), d.begin(), d.end());
    });
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] { c->send(sent); });
  p.net.run_until(seconds(60));
  EXPECT_EQ(got.size(), sent.size());
  EXPECT_GT(c->retransmissions(), 0u);
}

TEST(Tcp, CloseCompletesAfterDataDelivered) {
  Pair p;
  std::string got;
  bool server_closed = false, client_closed = false;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([&, c](const std::vector<std::uint8_t>& d) {
      got += string_of(d);
      c->close();  // respond to client close with our own
    });
    c->on_closed([&] { server_closed = true; });
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] {
    c->send("bye");
    c->close();
  });
  c->on_closed([&] { client_closed = true; });
  p.net.run_until(seconds(5));
  EXPECT_EQ(got, "bye");
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(p.a->tcp().open_connections(), 0u);
  EXPECT_EQ(p.b->tcp().open_connections(), 0u);
}

TEST(Tcp, ManyConcurrentConnectionsAreDemuxedIndependently) {
  Pair p;
  int completed = 0;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([c](const std::vector<std::uint8_t>& d) {
      c->send(d);  // echo
      c->close();
    });
  });
  constexpr int kConns = 20;
  std::vector<std::shared_ptr<TcpConnection>> conns;
  for (int i = 0; i < kConns; ++i) {
    auto c = p.a->tcp().connect(p.b->addr(), 80);
    std::string msg = "msg-" + std::to_string(i);
    c->on_established([c, msg] { c->send(msg); });
    c->on_data([&, msg](const std::vector<std::uint8_t>& d) {
      EXPECT_EQ(string_of(d), msg);
      ++completed;
    });
    conns.push_back(std::move(c));
  }
  p.net.run_until(seconds(10));
  EXPECT_EQ(completed, kConns);
}

TEST(Tcp, WorksThroughAnAddressRewritingGateway) {
  // End-to-end sanity for the §3.2 gateway scheme: a router rewrites the
  // virtual server address to a physical one on the way in, and the physical
  // source back to the virtual one on the way out.
  Network net;
  Node& client = net.add_node("client");
  Node& gw = net.add_router("gw");
  Node& server = net.add_node("server");
  net.link(client, ip("10.0.1.1"), gw, ip("10.0.1.254"), 10e6, millis(1));
  net.link(gw, ip("10.0.2.254"), server, ip("10.0.2.1"), 10e6, millis(1));
  client.routes().add_default(0);
  server.routes().add_default(0);
  gw.routes().add(ip("10.0.1.0"), 24, 0);
  gw.routes().add(ip("10.0.2.0"), 24, 1);
  gw.routes().add(ip("10.0.9.0"), 24, 1);  // virtual subnet "towards" servers

  Ipv4Addr virtual_ip = ip("10.0.9.9");
  Ipv4Addr physical_ip = ip("10.0.2.1");
  gw.set_ip_hook([&](Packet& p, Interface&) {
    if (p.ip.dst == virtual_ip) {
      p.ip.dst = physical_ip;
      --p.ip.ttl;
      gw.forward(std::move(p));
      return true;
    }
    if (p.ip.src == physical_ip) {
      p.ip.src = virtual_ip;
      --p.ip.ttl;
      gw.forward(std::move(p));
      return true;
    }
    return false;
  });

  std::string got;
  server.tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([c](const std::vector<std::uint8_t>&) { c->send("response"); });
  });
  auto c = client.tcp().connect(virtual_ip, 80);
  c->on_established([&] { c->send("request"); });
  c->on_data([&](const std::vector<std::uint8_t>& d) { got += string_of(d); });
  net.run_until(seconds(5));
  EXPECT_EQ(got, "response");
}

}  // namespace
}  // namespace asp::net
