// TCP edge cases: aborts, dead peers, listener lifecycle, back-to-back
// connections, zero-length writes.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/tcp.hpp"

namespace asp::net {
namespace {

struct Pair {
  Pair() {
    a = &net.add_node("a");
    b = &net.add_node("b");
    net.link(*a, ip("10.0.0.1"), *b, ip("10.0.0.2"), 10e6, millis(1));
  }
  Network net;
  Node* a;
  Node* b;
};

TEST(TcpEdge, SenderGivesUpOnDeadPeer) {
  Pair p;
  p.b->tcp().listen(80, [](std::shared_ptr<TcpConnection> c) {
    c->on_data([c](const std::vector<std::uint8_t>&) {});
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  bool closed = false;
  c->on_closed([&] { closed = true; });
  c->on_established([&] {
    // Peer crashes the instant the handshake completes: no RST, no FIN —
    // everything sent from here on falls into a black hole.
    p.b->set_ip_hook([](Packet&, Interface&) { return true; });
    c->send(std::vector<std::uint8_t>(10'000, 1));
  });
  p.net.run_until(seconds(60));
  EXPECT_TRUE(closed);  // retry cap fired
  EXPECT_EQ(c->state(), TcpConnection::State::kClosed);
  EXPECT_TRUE(p.net.events().empty()) << "no immortal retransmit timers";
}

TEST(TcpEdge, ConnectToNowhereEventuallyCloses) {
  Pair p;
  auto c = p.a->tcp().connect(ip("10.0.0.99"), 80);  // no such host
  bool closed = false;
  c->on_closed([&] { closed = true; });
  p.net.run_until(seconds(60));
  EXPECT_TRUE(closed);
  EXPECT_EQ(p.a->tcp().open_connections(), 0u);
}

TEST(TcpEdge, AbortDropsStateImmediately) {
  Pair p;
  p.b->tcp().listen(80, [](std::shared_ptr<TcpConnection>) {});
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] { c->abort(); });
  p.net.run_until(seconds(1));
  EXPECT_EQ(p.a->tcp().open_connections(), 0u);
  EXPECT_EQ(c->state(), TcpConnection::State::kClosed);
}

TEST(TcpEdge, StopListeningRefusesNewConnections) {
  Pair p;
  int accepted = 0;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection>) { ++accepted; });
  auto c1 = p.a->tcp().connect(p.b->addr(), 80);
  p.net.run_until(seconds(1));
  EXPECT_EQ(accepted, 1);

  p.b->tcp().stop_listening(80);
  auto c2 = p.a->tcp().connect(p.b->addr(), 80);
  bool est2 = false;
  c2->on_established([&] { est2 = true; });
  p.net.run_until(seconds(30));
  EXPECT_EQ(accepted, 1);
  EXPECT_FALSE(est2);
}

TEST(TcpEdge, SequentialConnectionsFromSameClient) {
  Pair p;
  int served = 0;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([c, &served](const std::vector<std::uint8_t>&) {
      ++served;
      c->send("done");
      c->close();
    });
  });
  std::function<void(int)> issue = [&](int remaining) {
    if (remaining == 0) return;
    auto c = p.a->tcp().connect(p.b->addr(), 80);
    c->on_established([c] { c->send("req"); });
    c->on_data([c, &issue, remaining](const std::vector<std::uint8_t>&) {
      c->close();
      issue(remaining - 1);
    });
  };
  issue(10);
  p.net.run_until(seconds(30));
  EXPECT_EQ(served, 10);
  EXPECT_EQ(p.a->tcp().open_connections(), 0u);
  EXPECT_EQ(p.b->tcp().open_connections(), 0u);
}

TEST(TcpEdge, EmptySendIsANoop) {
  Pair p;
  std::size_t got = 0;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([&](const std::vector<std::uint8_t>& d) { got += d.size(); });
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] {
    c->send(std::vector<std::uint8_t>{});
    c->send("x");
  });
  p.net.run_until(seconds(2));
  EXPECT_EQ(got, 1u);
}

TEST(TcpEdge, SendAfterCloseIsIgnored) {
  Pair p;
  std::size_t got = 0;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data([&](const std::vector<std::uint8_t>& d) { got += d.size(); });
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] {
    c->send("ok");
    c->close();
    c->send("after-close-must-not-arrive");
  });
  p.net.run_until(seconds(5));
  EXPECT_EQ(got, 2u);
}

TEST(TcpEdge, BidirectionalSimultaneousTransfer) {
  Pair p;
  std::vector<std::uint8_t> blob_a(40'000, 0xA1), blob_b(30'000, 0xB2);
  std::size_t got_at_b = 0, got_at_a = 0;
  p.b->tcp().listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->send(blob_b);
    c->on_data([&](const std::vector<std::uint8_t>& d) { got_at_b += d.size(); });
  });
  auto c = p.a->tcp().connect(p.b->addr(), 80);
  c->on_established([&] { c->send(blob_a); });
  c->on_data([&](const std::vector<std::uint8_t>& d) { got_at_a += d.size(); });
  p.net.run_until(seconds(30));
  EXPECT_EQ(got_at_b, blob_a.size());
  EXPECT_EQ(got_at_a, blob_b.size());
}

}  // namespace
}  // namespace asp::net
