// Regression tests for BandwidthMeter's start-up window (the §3.1 adaptation
// ASP reads the meter from the first packet onwards; dividing by the full
// window before one window of history exists underreported bandwidth and
// skewed the early adaptation decision).
#include <gtest/gtest.h>

#include "net/meter.hpp"

namespace asp::net {
namespace {

TEST(MeterStartup, EarlyWindowRateIsNotUnderreported) {
  BandwidthMeter m(kNsPerSec);  // 1 s window
  // A steady 100 kb/s stream: 125 bytes every 10 ms.
  for (int i = 0; i < 10; ++i) m.record(millis(10) * i, 125);
  // After only 100 ms of history the meter must already read ~100 kb/s; the
  // old full-window divisor reported 10 kb/s here.
  double rate = m.rate_bps(millis(100));
  EXPECT_NEAR(rate, 100e3, 20e3);
  EXPECT_GT(rate, 50e3) << "start-up rate underreported";
}

TEST(MeterStartup, FirstInstantIsFiniteViaFloor) {
  BandwidthMeter m(kNsPerSec);
  m.record(0, 1250);
  // Queried at the very instant of the first sample: the 1 ms floor keeps
  // the rate finite (1250 bytes / 1 ms = 10 Mb/s), not a division by zero.
  double rate = m.rate_bps(0);
  EXPECT_DOUBLE_EQ(rate, 10e6);
}

TEST(MeterStartup, ConvergesToWindowAverageAfterFullWindow) {
  BandwidthMeter m(kNsPerSec);
  // 100 kb/s for two full windows.
  for (int i = 0; i < 200; ++i) m.record(millis(10) * i, 125);
  EXPECT_NEAR(m.rate_bps(seconds(2)), 100e3, 5e3);
}

TEST(MeterStartup, EmptyMeterStaysZero) {
  BandwidthMeter m(kNsPerSec);
  EXPECT_DOUBLE_EQ(m.rate_bps(0), 0.0);
  EXPECT_DOUBLE_EQ(m.rate_bps(seconds(10)), 0.0);
}

TEST(MeterStartup, TinyWindowFloorsAtTheWindowItself) {
  BandwidthMeter m(micros(100));  // window shorter than the 1 ms floor
  m.record(0, 100);
  // The floor is clamped to the window, so the rate never reads below the
  // window-average the old code would have produced.
  EXPECT_DOUBLE_EQ(m.rate_bps(0), 100 * 8.0 / to_seconds(micros(100)));
}

TEST(MeterStartup, IdleGapAfterStartupStillEvicts) {
  BandwidthMeter m(kNsPerSec);
  m.record(0, 1000);
  // Long after the sample left the window, the rate is zero again.
  EXPECT_DOUBLE_EQ(m.rate_bps(seconds(5)), 0.0);
}

}  // namespace
}  // namespace asp::net
