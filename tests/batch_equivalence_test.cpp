// Batched-vs-single dispatch equivalence (DESIGN.md §6c).
//
// The batch drain's contract is that batching is purely mechanical: any
// batch limit (including 1, which disables batching) replays the identical
// simulation — same traces, same per-cause drop counters, byte for byte.
// These tests sweep EventQueue's process-default batch limit through
// 1/4/32 and replay the chaos scenarios from the determinism suite (audio
// and HTTP, impairments on), serial and sharded, comparing every outcome
// field against the batch=1 serial baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/audio/experiment.hpp"
#include "apps/http/experiment.hpp"
#include "net/event.hpp"
#include "net/exec.hpp"
#include "net/network.hpp"

namespace asp::apps {
namespace {

using asp::net::EventQueue;
using asp::net::Impairments;
using asp::net::PacketBatch;
using asp::net::ParallelExecutor;

// Networks snapshot the default batch limit at queue construction, so the
// limit must be set before the experiment is built and restored afterwards
// (other tests rely on the process default).
struct ScopedBatchLimit {
  std::size_t saved;
  explicit ScopedBatchLimit(std::size_t n) : saved(EventQueue::default_batch_limit()) {
    EventQueue::set_default_batch_limit(n);
  }
  ~ScopedBatchLimit() { EventQueue::set_default_batch_limit(saved); }
};

constexpr std::size_t kBatchLimits[] = {1, 4, 32};
constexpr int kShardCounts[] = {1, 4};

// --- audio chaos scenario (§3.1, 10% loss on the client LAN) -----------------

struct AudioOutcome {
  AudioRunResult result;
  std::uint64_t dropped_loss = 0, dropped_queue = 0, delivered = 0;

  bool operator==(const AudioOutcome& o) const {
    if (result.frames_sent != o.result.frames_sent) return false;
    if (result.frames_received != o.result.frames_received) return false;
    if (result.silent_periods != o.result.silent_periods) return false;
    if (result.silent_ticks != o.result.silent_ticks) return false;
    if (result.level_switches != o.result.level_switches) return false;
    if (dropped_loss != o.dropped_loss) return false;
    if (dropped_queue != o.dropped_queue) return false;
    if (delivered != o.delivered) return false;
    if (result.series.size() != o.result.series.size()) return false;
    for (std::size_t i = 0; i < result.series.size(); ++i) {
      const AudioSample& a = result.series[i];
      const AudioSample& b = o.result.series[i];
      if (a.audio_kbps != b.audio_kbps || a.load_kbps != b.load_kbps ||
          a.level != b.level) {
        return false;
      }
    }
    return true;
  }
};

AudioOutcome run_audio(std::size_t batch_limit, int shards) {
  ScopedBatchLimit scoped(batch_limit);
  AudioExperiment exp(/*adaptation=*/true);
  asp::net::Medium* lan = exp.network().find_medium("client-lan");
  EXPECT_NE(lan, nullptr);
  Impairments imp;
  imp.loss_rate = 0.10;
  imp.seed = 41;
  lan->set_impairments(imp);

  std::unique_ptr<ParallelExecutor> exec;
  if (shards > 1) exec = std::make_unique<ParallelExecutor>(exp.network(), shards);

  AudioOutcome out;
  out.result = exp.run(10.0, {{0.0, 0.0}});
  out.dropped_loss = lan->dropped_loss();
  out.dropped_queue = lan->dropped_queue();
  out.delivered = lan->delivered_packets();
  return out;
}

TEST(BatchEquivalence, AudioChaosIdenticalAcrossBatchSizesAndShards) {
  AudioOutcome baseline = run_audio(/*batch_limit=*/1, /*shards=*/1);
  EXPECT_GT(baseline.dropped_loss, 0u) << "the chaos scenario must actually drop";
  for (std::size_t limit : kBatchLimits) {
    for (int shards : kShardCounts) {
      if (limit == 1 && shards == 1) continue;  // the baseline itself
      AudioOutcome run = run_audio(limit, shards);
      EXPECT_TRUE(run == baseline)
          << "audio trace diverged at batch_limit=" << limit
          << " shards=" << shards;
    }
  }
}

// --- http chaos scenario (§3.2, 5% loss on the server LAN) -------------------

struct HttpOutcome {
  HttpRunResult result;
  std::uint64_t lan_loss = 0, lan_queue = 0, lan_unaddressed = 0;
  std::uint64_t link_queue = 0, link_loss = 0;
  std::uint64_t delivered = 0;

  bool operator==(const HttpOutcome& o) const {
    return result.completed == o.result.completed &&
           result.failed == o.result.failed &&
           result.mean_latency_ms == o.result.mean_latency_ms &&
           lan_loss == o.lan_loss && lan_queue == o.lan_queue &&
           lan_unaddressed == o.lan_unaddressed && link_queue == o.link_queue &&
           link_loss == o.link_loss && delivered == o.delivered;
  }
};

HttpOutcome run_http(std::size_t batch_limit, int shards) {
  ScopedBatchLimit scoped(batch_limit);
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.client_machines = 3;
  opts.processes_per_machine = 2;
  opts.trace_accesses = 400;

  HttpExperiment exp(opts);
  asp::net::Medium* lan = exp.network().find_medium("server-lan");
  EXPECT_NE(lan, nullptr);
  Impairments imp;
  imp.loss_rate = 0.05;
  imp.seed = 43;
  lan->set_impairments(imp);

  std::unique_ptr<ParallelExecutor> exec;
  if (shards > 1) exec = std::make_unique<ParallelExecutor>(exp.network(), shards);

  HttpOutcome out;
  out.result = exp.run(5.0);
  out.lan_loss = lan->dropped_loss();
  out.lan_queue = lan->dropped_queue();
  out.lan_unaddressed = lan->dropped_unaddressed();
  out.delivered = lan->delivered_packets();
  for (const auto& m : exp.network().media()) {
    if (m.get() == lan) continue;
    out.link_queue += m->dropped_queue();
    out.link_loss += m->dropped_loss();
    out.delivered += m->delivered_packets();
  }
  return out;
}

TEST(BatchEquivalence, HttpChaosIdenticalAcrossBatchSizesAndShards) {
  HttpOutcome baseline = run_http(/*batch_limit=*/1, /*shards=*/1);
  EXPECT_GT(baseline.lan_loss, 0u);
  EXPECT_GT(baseline.result.completed, 50u);
  for (std::size_t limit : kBatchLimits) {
    for (int shards : kShardCounts) {
      if (limit == 1 && shards == 1) continue;
      HttpOutcome run = run_http(limit, shards);
      EXPECT_TRUE(run == baseline)
          << "http counters diverged at batch_limit=" << limit
          << " shards=" << shards;
    }
  }
}

// --- batch drain mechanics ----------------------------------------------------

// A sink that records each batch it receives as (key, sizes, payload bytes)
// so tests can see exactly how the drain grouped deliveries.
struct RecordingSink : asp::net::DeliverySink {
  struct Got {
    std::uint32_t key;
    std::vector<std::uint8_t> first_bytes;  // payload[0] of each member
  };
  std::vector<Got> batches;

  void deliver_batch(std::uint32_t key, PacketBatch&& batch) override {
    Got g{key, {}};
    for (std::size_t i = 0; i < batch.size(); ++i) {
      g.first_bytes.push_back(batch[i].payload.empty() ? 0 : batch[i].payload[0]);
    }
    batches.push_back(std::move(g));
    batch.clear();
  }
};

asp::net::PacketBatch::Box boxed(std::uint8_t marker) {
  asp::net::Packet p = asp::net::Packet::make_udp(
      asp::net::ip("10.0.0.1"), asp::net::ip("10.0.0.2"), 1, 2, {marker});
  return asp::net::packet_boxes().box(std::move(p));
}

TEST(BatchEquivalence, DrainGroupsSameSinkKeyAndTime) {
  EventQueue q;
  q.set_batch_limit(32);
  RecordingSink sink;
  for (std::uint8_t m = 0; m < 5; ++m) {
    q.schedule_delivery(/*t=*/100, /*sched=*/0, /*rank=*/m, sink, /*key=*/7,
                        boxed(m));
  }
  q.run();
  ASSERT_EQ(sink.batches.size(), 1u) << "one batch for 5 same-(sink,key,t) deliveries";
  EXPECT_EQ(sink.batches[0].key, 7u);
  EXPECT_EQ(sink.batches[0].first_bytes, (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
}

TEST(BatchEquivalence, DrainSplitsOnKeyTimeAndLimit) {
  EventQueue q;
  q.set_batch_limit(2);
  RecordingSink sink;
  // Same (sink, key, t): limit 2 splits 3 deliveries into batches of 2 + 1.
  for (std::uint8_t m = 0; m < 3; ++m) {
    q.schedule_delivery(100, 0, m, sink, 1, boxed(m));
  }
  // Different key at the same time: never grouped with the above.
  q.schedule_delivery(100, 0, 3, sink, 2, boxed(10));
  // Same key, later time: its own batch.
  q.schedule_delivery(200, 0, 0, sink, 1, boxed(20));
  q.run();
  ASSERT_EQ(sink.batches.size(), 4u);
  EXPECT_EQ(sink.batches[0].first_bytes, (std::vector<std::uint8_t>{0, 1}));
  EXPECT_EQ(sink.batches[1].first_bytes, (std::vector<std::uint8_t>{2}));
  EXPECT_EQ(sink.batches[2].key, 2u);
  EXPECT_EQ(sink.batches[3].first_bytes, (std::vector<std::uint8_t>{20}));
}

}  // namespace
}  // namespace asp::apps
