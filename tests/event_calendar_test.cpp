// Calendar-queue internals (DESIGN.md §6h): generation-checked handle
// cancellation (the cancelled-set accounting leak regression, stale-handle
// safety across slot reuse), far-band / cascade ordering, and the bucket
// width determinism sweep — any level-0 bucket width must produce
// byte-identical simulations at any shard count, exactly like the batch
// limit sweep in batch_equivalence_test.cpp.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/event.hpp"
#include "net/time.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scn.hpp"

namespace asp::net {
namespace {

struct ScopedBucketWidth {
  unsigned saved;
  explicit ScopedBucketWidth(unsigned w)
      : saved(EventQueue::default_bucket_width_log2()) {
    EventQueue::set_default_bucket_width_log2(w);
  }
  ~ScopedBucketWidth() { EventQueue::set_default_bucket_width_log2(saved); }
};

// Regression for the cancelled-id leak: the old implementation kept every
// cancel() of an already-run id in `cancelled_` forever, permanently skewing
// pending()/empty() (computed as queue size minus cancelled size). The
// tcp.cpp pattern — fire, then finish() cancels the stale rto_timer_ id —
// hit this on every connection teardown.
TEST(EventCalendar, CancelAfterFireKeepsAccountingExact) {
  EventQueue q;
  EventId rto = q.schedule_at(10, [] {});
  q.run();
  EXPECT_TRUE(q.empty());
  q.cancel(rto);  // already ran: must be a pure no-op
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  bool ran = false;
  q.schedule_at(20, [&] { ran = true; });
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.run(), 1u);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(q.empty()) << "cancel of a fired id must not skew empty()";
}

// A stale handle must never hit the event that reused its slot: the
// generation half of the id changes when the slot is reclaimed.
TEST(EventCalendar, StaleHandleCannotCancelReusedSlot) {
  EventQueue q;
  EventId a = q.schedule_at(10, [] {});
  q.run();
  bool b_ran = false;
  EventId b = q.schedule_at(20, [&] { b_ran = true; });
  EXPECT_EQ(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b))
      << "test premise: b reuses a's slab slot";
  EXPECT_NE(a, b) << "generations must differ";
  q.cancel(a);  // stale: must not touch b
  q.run();
  EXPECT_TRUE(b_ran);
}

TEST(EventCalendar, DoubleCancelIsIdempotent) {
  EventQueue q;
  bool other = false;
  EventId a = q.schedule_at(10, [] {});
  q.schedule_at(20, [&] { other = true; });
  q.cancel(a);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run(), 1u);
  EXPECT_TRUE(other);
}

TEST(EventCalendar, HandlerCancellingOwnIdIsNoop) {
  EventQueue q;
  EventId self = 0;
  bool later = false;
  self = q.schedule_at(10, [&] { q.cancel(self); });
  q.schedule_at(20, [&] { later = true; });
  q.run();
  EXPECT_TRUE(later);
  EXPECT_TRUE(q.empty());
}

// cancel() destroys the callback's captures eagerly — a cancelled RTO timer
// must not pin its connection state until the dead entry drains.
TEST(EventCalendar, CancelReleasesCapturesEagerly) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  EventId id = q.schedule_at(1'000'000, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  q.cancel(id);
  EXPECT_EQ(token.use_count(), 1) << "capture must be destroyed at cancel";
}

// Drain order across very spread-out timestamps (wheel levels + far band +
// cascades) must match the canonical order exactly, for any bucket width.
TEST(EventCalendar, FarFutureOrderingMatchesAcrossWidths) {
  std::vector<std::vector<int>> orders;
  for (unsigned w : {4u, 10u, 14u, 20u}) {
    ScopedBucketWidth width(w);
    EventQueue q;
    std::vector<int> order;
    std::uint64_t rng = 0x243F6A8885A308D3ull;
    std::vector<SimTime> times;
    for (int i = 0; i < 400; ++i) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      // Spread from ns to ~3 simulated hours: far beyond every wheel horizon
      // at width 4, and colliding times included (mod keeps duplicates).
      times.push_back(rng % 10'000'000'000'000ull);
    }
    for (int i = 0; i < 400; ++i) {
      q.schedule_at(times[static_cast<std::size_t>(i)],
                    [&order, i] { order.push_back(i); });
    }
    EXPECT_EQ(q.run(), 400u);
    orders.push_back(order);
  }
  for (std::size_t i = 1; i < orders.size(); ++i) {
    EXPECT_EQ(orders[0], orders[i]) << "width sweep diverged at index " << i;
  }
}

// Handlers scheduling into the bucket being drained (and behind a cursor
// that run_until's peek moved forward) must interleave canonically.
TEST(EventCalendar, IncursionSchedulingStaysOrdered) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1'000'000, [&] {
    order.push_back(0);
    q.schedule_in(0, [&] { order.push_back(1); });  // same instant, runs after
    q.schedule_in(3, [&] { order.push_back(2); });  // same bucket
  });
  // Peek moves the drain cursor to the 1 ms bucket; this lands behind it.
  EXPECT_EQ(q.next_event_time(), 1'000'000u);
  q.run_until(500'000);
  q.schedule_at(600'000, [&] { order.push_back(-1); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(EventCalendar, WidthChangeOnEmptyQueueKeepsOrdering) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5'000, [&] { order.push_back(0); });
  q.run();
  q.set_bucket_width_log2(6);
  EXPECT_EQ(q.bucket_width_log2(), 6u);
  q.schedule_at(6'000, [&] { order.push_back(1); });
  q.schedule_at(5'500, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

}  // namespace
}  // namespace asp::net

namespace asp::scenario {
namespace {

using asp::net::EventQueue;

struct ScopedBucketWidth {
  unsigned saved;
  explicit ScopedBucketWidth(unsigned w)
      : saved(EventQueue::default_bucket_width_log2()) {
    EventQueue::set_default_bucket_width_log2(w);
  }
  ~ScopedBucketWidth() { EventQueue::set_default_bucket_width_log2(saved); }
};

// The calendar analogue of batch_equivalence_test.cpp's batch-limit sweep:
// bucket width is a pure performance knob, so every width × shard-count
// combination must produce byte-identical metrics JSON on the checked-in
// 1k-node fat-tree.
TEST(EventCalendarDeterminism, WidthByShardSweepOn1kFatTree) {
  constexpr unsigned kWidths[] = {4, 10, 14};
  constexpr int kShardCounts[] = {1, 4};

  ScenarioConfig cfg;
  std::string err;
  ASSERT_TRUE(load_scn_file(std::string(ASP_SCENARIO_DIR) + "/fat_tree_1k.scn",
                            cfg, err))
      << err;
  cfg.run.duration = net::millis(20);  // keep tier-1 fast; ~100 requests

  std::string reference;
  for (unsigned w : kWidths) {
    for (int shards : kShardCounts) {
      ScopedBucketWidth width(w);
      Scenario sc(cfg);
      ScenarioMetrics m = sc.run(shards);
      const std::string json = m.to_json();
      if (reference.empty()) {
        EXPECT_GT(m.delivered_packets, 0u);
        reference = json;
      } else {
        EXPECT_EQ(reference, json)
            << "diverged at width_log2=" << w << " shards=" << shards;
      }
    }
  }
}

}  // namespace
}  // namespace asp::scenario
