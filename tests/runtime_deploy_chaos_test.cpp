// Deployment under network faults: the control network between management
// station and daemon is exactly the degraded network ASPs exist for, so the
// DEPLOY path must converge through loss, partitions and corruption — with
// the client callback firing exactly once and the daemon never
// double-installing.
#include <cstdio>

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "runtime/deploy.hpp"

namespace asp::runtime {
namespace {

using asp::net::Impairments;
using asp::net::ip;
using asp::net::millis;
using asp::net::Network;
using asp::net::Node;
using asp::net::seconds;

const char* kGoodAsp =
    "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n"
    "  (OnRemote(network, p); (ps + 1, ss))";

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

struct ChaosRig {
  explicit ChaosRig(asp::net::SimTime link_delay = millis(1)) {
    admin = &net.add_node("admin");
    router = &net.add_router("router");
    link = &net.link(*admin, ip("10.0.1.1"), *router, ip("10.0.1.254"), 10e6,
                     link_delay);
    admin->routes().add_default(0);
    rt = std::make_unique<AspRuntime>(*router);
    server = std::make_unique<DeployServer>(*rt);
    deployer = std::make_unique<Deployer>(*admin);
  }

  Network net;
  Node* admin;
  Node* router;
  asp::net::PointToPointLink* link;
  std::unique_ptr<AspRuntime> rt;
  std::unique_ptr<DeployServer> server;
  std::unique_ptr<Deployer> deployer;
};

TEST(DeployChaos, ConvergesOverLossyControlLink) {
  ChaosRig rig;
  Impairments imp;
  imp.loss_rate = 0.10;
  imp.seed = 11;
  rig.link->set_impairments(imp);

  int fired = 0;
  DeployResult out;
  rig.deployer->deploy(rig.router->addr(), kGoodAsp, [&](const DeployResult& r) {
    out = r;
    ++fired;
  });
  rig.net.run_until(rig.net.now() + seconds(30));

  EXPECT_EQ(fired, 1) << "callback must fire exactly once";
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(rig.rt->installed());
  EXPECT_EQ(rig.server->deployments(), 1) << "retries must not double-install";
}

TEST(DeployChaos, AcceptanceLossPlusPartitionTwoTargets) {
  // The issue's acceptance bar: 10% loss and one 2 s partition on the control
  // link; the Deployer converges on every node, no double-install, and each
  // callback fires exactly once.
  Network net;
  Node& admin = net.add_node("admin");
  Node& r1 = net.add_router("r1");
  Node& r2 = net.add_router("r2");
  auto& l1 = net.link(admin, ip("10.0.1.1"), r1, ip("10.0.1.254"), 10e6, millis(1));
  auto& l2 = net.link(admin, ip("10.0.2.1"), r2, ip("10.0.2.254"), 10e6, millis(1));
  admin.routes().add(ip("10.0.1.0"), 24, 0);
  admin.routes().add(ip("10.0.2.0"), 24, 1);
  // TCP sources from the admin's primary address (10.0.1.1), so r2 needs a
  // return route off its own subnet.
  r1.routes().add_default(0);
  r2.routes().add_default(0);

  Impairments imp;
  imp.loss_rate = 0.10;
  imp.seed = 21;
  l1.set_impairments(imp);
  imp.seed = 22;
  l2.set_impairments(imp);
  l1.schedule_outage(millis(500), millis(2500));  // one 2 s partition

  AspRuntime rt1(r1), rt2(r2);
  DeployServer s1(rt1), s2(rt2);
  Deployer deployer(admin);

  int fired1 = 0, fired2 = 0;
  DeployResult out1, out2;
  Deployer::Options opts;
  opts.max_attempts = 8;
  deployer.deploy(r1.addr(), kGoodAsp, [&](const DeployResult& r) { out1 = r; ++fired1; },
                  opts);
  deployer.deploy(r2.addr(), kGoodAsp, [&](const DeployResult& r) { out2 = r; ++fired2; },
                  opts);
  net.run_until(net.now() + seconds(60));

  EXPECT_EQ(fired1, 1);
  EXPECT_EQ(fired2, 1);
  EXPECT_TRUE(out1.ok) << out1.error;
  EXPECT_TRUE(out2.ok) << out2.error;
  EXPECT_TRUE(rt1.installed());
  EXPECT_TRUE(rt2.installed());
  EXPECT_EQ(s1.deployments(), 1) << "no double-install through the partition";
  EXPECT_EQ(s2.deployments(), 1);
}

TEST(DeployChaos, PartitionedDaemonFailsTerminallyExactlyOnce) {
  ChaosRig rig;
  rig.link->set_link_up(false);  // daemon unreachable for the whole run

  int fired = 0;
  DeployResult out;
  Deployer::Options opts;
  opts.attempt_timeout = millis(500);
  opts.max_attempts = 3;
  opts.initial_backoff = millis(100);
  rig.deployer->deploy(rig.router->addr(), kGoodAsp, [&](const DeployResult& r) {
    out = r;
    ++fired;
  }, opts);
  rig.net.run_until(rig.net.now() + seconds(30));

  EXPECT_EQ(fired, 1) << "terminal error must fire exactly once, never zero";
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_NE(out.error.find("timeout"), std::string::npos) << out.error;
  EXPECT_NE(out.error.find("gave up after 3 attempts"), std::string::npos) << out.error;
  EXPECT_FALSE(rig.rt->installed());
}

TEST(DeployChaos, CorruptBodyIsRejectedByChecksum) {
  // Hand-deliver a well-formed header whose checksum does not match the body:
  // the daemon must refuse it instead of handing the verifier a silently
  // different program.
  ChaosRig rig;
  std::string reply;
  auto conn = rig.admin->tcp().connect(rig.router->addr(), kDeployPort);
  conn->on_established([&] {
    conn->send(std::string("DEPLOY/1 jit 0 3 0123456789abcdef\nfoo"));
  });
  conn->on_data([&](const std::vector<std::uint8_t>& d) {
    reply.append(d.begin(), d.end());
  });
  rig.net.run_until(rig.net.now() + seconds(2));

  EXPECT_EQ(reply.rfind("ERR bad-checksum", 0), 0u) << reply;
  EXPECT_FALSE(rig.rt->installed());
  EXPECT_EQ(rig.server->rejections(), 1);
}

TEST(DeployChaos, UnknownEngineTokenIsRefused) {
  // A typo'd engine used to fall through silently to the JIT; now it is a
  // loud wire error.
  ChaosRig rig;
  std::string body = "foo";
  std::string reply;
  auto conn = rig.admin->tcp().connect(rig.router->addr(), kDeployPort);
  conn->on_established([&] {
    conn->send("DEPLOY/1 jitt 0 3 " + hex64(deploy_checksum(body)) + "\n" + body);
  });
  conn->on_data([&](const std::vector<std::uint8_t>& d) {
    reply.append(d.begin(), d.end());
  });
  rig.net.run_until(rig.net.now() + seconds(2));

  EXPECT_EQ(reply.rfind("ERR bad-engine jitt", 0), 0u) << reply;
  EXPECT_FALSE(rig.rt->installed());
  EXPECT_EQ(rig.server->rejections(), 1);
}

TEST(DeployChaos, FragmentedDeployWithTrailingBytesInstallsOnce) {
  // The header, body and some trailing garbage arrive in separate segments;
  // the daemon must assemble them, install exactly once, and ignore the
  // trailing bytes rather than re-entering the install path.
  ChaosRig rig;
  std::string body(kGoodAsp);
  std::string header = "DEPLOY/1 jit 0 " + std::to_string(body.size()) + " " +
                       hex64(deploy_checksum(body)) + "\n";
  std::string reply;
  auto conn = rig.admin->tcp().connect(rig.router->addr(), kDeployPort);
  conn->on_established([&] {
    conn->send(header.substr(0, 9));
    conn->send(header.substr(9));
    conn->send(body.substr(0, 17));
    conn->send(body.substr(17));
    conn->send(std::string("trailing junk that must not re-trigger install"));
  });
  conn->on_data([&](const std::vector<std::uint8_t>& d) {
    reply.append(d.begin(), d.end());
  });
  rig.net.run_until(rig.net.now() + seconds(2));

  EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  EXPECT_EQ(reply.find('\n'), reply.size() - 1) << "exactly one reply line: " << reply;
  EXPECT_TRUE(rig.rt->installed());
  EXPECT_EQ(rig.server->deployments(), 1);
  EXPECT_EQ(rig.server->rejections(), 0);
}

TEST(DeployChaos, LostReplyRetryIsIdempotent) {
  // The daemon installs and replies OK, but a partition eats the reply (and
  // outlives TCP's retransmission budget). The client's retry reaches a
  // daemon that already installed this exact program: it must be answered
  // from the content-hash cache, not reinstalled.
  ChaosRig rig(millis(10));
  // Timeline: SYN 0->10ms, SYN-ACK 20ms, DEPLOY body 20->30ms, install at
  // 30 ms, OK in flight 30->40ms. Down at 35 ms kills the reply mid-flight;
  // up at 3 s is past both TCP's ~2.4 s retransmission give-up and the
  // client's per-attempt deadline, so only a fresh attempt can get through.
  rig.link->schedule_outage(millis(35), seconds(3));

  int fired = 0;
  DeployResult out;
  Deployer::Options opts;
  opts.attempt_timeout = seconds(1);
  opts.max_attempts = 6;
  rig.deployer->deploy(rig.router->addr(), kGoodAsp, [&](const DeployResult& r) {
    out = r;
    ++fired;
  }, opts);
  rig.net.run_until(rig.net.now() + seconds(30));

  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_GT(out.attempts, 1) << "the lost reply must have forced a retry";
  EXPECT_TRUE(rig.rt->installed());
  EXPECT_EQ(rig.server->deployments(), 1) << "retry must dedup, not reinstall";
  EXPECT_GE(rig.server->dedups(), 1);
}

TEST(DeployChaos, CorruptionHealsAndConverges) {
  // Every frame is corrupted until the link heals at t=1s. Each corrupted
  // exchange (garbled header, garbled body failing its checksum, or a
  // garbled reply) classifies as transient, so the client keeps retrying and
  // converges after the heal.
  ChaosRig rig;
  Impairments imp;
  imp.corrupt_rate = 1.0;
  imp.seed = 31;
  rig.link->set_impairments(imp);
  rig.net.events().schedule_at(seconds(1),
                               [&] { rig.link->impairments().corrupt_rate = 0; });

  int fired = 0;
  DeployResult out;
  Deployer::Options opts;
  opts.max_attempts = 8;
  rig.deployer->deploy(rig.router->addr(), kGoodAsp, [&](const DeployResult& r) {
    out = r;
    ++fired;
  }, opts);
  rig.net.run_until(rig.net.now() + seconds(60));

  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_GT(out.attempts, 1);
  EXPECT_TRUE(rig.rt->installed());
  EXPECT_EQ(rig.server->deployments(), 1);
}

}  // namespace
}  // namespace asp::runtime
