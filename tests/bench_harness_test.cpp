// bench/harness.hpp flag parsing: the shared flags apply, google-benchmark's
// flag family and caller-declared prefixes pass through, and — the regression
// this file pins — an unknown `--` flag is a hard error (exit 2), never a
// silent no-op. A typoed `--shard=4` once ran a serial bench that reported
// itself as sharded.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness.hpp"

namespace asp::bench {
namespace {

/// argv builder: keeps storage alive and hands out a mutable char** like
/// main() gets.
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    strings.insert(strings.begin(), "bench");
    for (std::string& s : strings) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
  }
  int argc() const { return static_cast<int>(strings.size()); }
  char** argv() { return ptrs.data(); }

  std::vector<std::string> strings;
  std::vector<char*> ptrs;
};

TEST(BenchHarness, AppliesSharedFlags) {
  Argv a({"--shards=16", "--seed=99", "--duration=2.5"});
  Options o = parse_options(a.argc(), a.argv());
  EXPECT_EQ(o.shards, 16);
  EXPECT_EQ(o.seed, 99u);
  EXPECT_DOUBLE_EQ(o.duration_s, 2.5);
}

TEST(BenchHarness, DefaultsSurviveWhenFlagAbsent) {
  Argv a({"--shards=4"});
  Options o = parse_options(a.argc(), a.argv(), {.shards = 8, .duration_s = 10.0});
  EXPECT_EQ(o.shards, 4);          // flag wins
  EXPECT_DOUBLE_EQ(o.duration_s, 10.0);  // default kept
}

TEST(BenchHarness, ClampsToSaneMinima) {
  Argv a({"--shards=0", "--duration=-3"});
  Options o = parse_options(a.argc(), a.argv());
  EXPECT_EQ(o.shards, 1);
  EXPECT_DOUBLE_EQ(o.duration_s, 0);
}

TEST(BenchHarness, BenchmarkFlagsAndPositionalsPassThrough) {
  Argv a({"--benchmark_filter=jit", "--v=2", "trace.dat", "--help"});
  Options o = parse_options(a.argc(), a.argv());  // must not exit
  EXPECT_EQ(o.shards, 1);
}

TEST(BenchHarness, ExtraPrefixesPassThrough) {
  Argv a({"--scenario=x.scn", "--smoke"});
  parse_options(a.argc(), a.argv(), {}, {"--scenario=", "--smoke"});
}

TEST(BenchHarnessDeath, RejectsUnknownFlag) {
  // The historical typo: singular --shard. Must die, not silently serialize.
  EXPECT_EXIT(
      {
        Argv a({"--shard=4"});
        parse_options(a.argc(), a.argv());
      },
      testing::ExitedWithCode(2), "unknown flag '--shard=4'");
}

TEST(BenchHarnessDeath, StripVariantAlsoRejects) {
  EXPECT_EXIT(
      {
        Argv a({"--benchmark_filter=x", "--bogus"});
        int argc = a.argc();
        parse_and_strip_options(argc, a.argv());
      },
      testing::ExitedWithCode(2), "unknown flag '--bogus'");
}

TEST(BenchHarnessDeath, ExtraPrefixOnlyCoversDeclaredDriver) {
  // --scenario= is only legal for drivers that declare it.
  EXPECT_EXIT(
      {
        Argv a({"--scenario=x.scn"});
        parse_options(a.argc(), a.argv());
      },
      testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchHarness, StripRemovesOursKeepsTheirs) {
  Argv a({"--shards=2", "--benchmark_filter=abc", "positional", "--seed=7"});
  int argc = a.argc();
  Options o = parse_and_strip_options(argc, a.argv());
  EXPECT_EQ(o.shards, 2);
  EXPECT_EQ(o.seed, 7u);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(a.argv()[1], "--benchmark_filter=abc");
  EXPECT_STREQ(a.argv()[2], "positional");
  EXPECT_EQ(a.argv()[3], nullptr);
}

}  // namespace
}  // namespace asp::bench
