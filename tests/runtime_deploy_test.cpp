#include "runtime/deploy.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace asp::runtime {
namespace {

using asp::net::ip;
using asp::net::millis;
using asp::net::Network;
using asp::net::Node;
using asp::net::seconds;

struct DeployRig {
  DeployRig() {
    admin = &net.add_node("admin");
    router = &net.add_router("router");
    net.link(*admin, ip("10.0.1.1"), *router, ip("10.0.1.254"), 10e6, millis(1));
    admin->routes().add_default(0);
    rt = std::make_unique<AspRuntime>(*router);
    server = std::make_unique<DeployServer>(*rt);
    deployer = std::make_unique<Deployer>(*admin);
  }

  DeployResult deploy(const std::string& source, Deployer::Options opts = {}) {
    DeployResult out;
    bool fired = false;
    deployer->deploy(router->addr(), source,
                     [&](const DeployResult& r) {
                       out = r;
                       fired = true;
                     },
                     opts);
    net.run_until(net.now() + seconds(5));
    EXPECT_TRUE(fired) << "no reply from deployment daemon";
    return out;
  }

  Network net;
  Node* admin;
  Node* router;
  std::unique_ptr<AspRuntime> rt;
  std::unique_ptr<DeployServer> server;
  std::unique_ptr<Deployer> deployer;
};

const char* kGoodAsp =
    "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n"
    "  (OnRemote(network, p); (ps + 1, ss))";

TEST(Deploy, InstallsVerifiedProtocolRemotely) {
  DeployRig rig;
  DeployResult r = rig.deploy(kGoodAsp);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(rig.rt->installed());
  EXPECT_EQ(rig.server->deployments(), 1);
  // The reply reports channel count and codegen time.
  EXPECT_EQ(r.message.rfind("OK 1 ", 0), 0u) << r.message;
}

TEST(Deploy, DeployedProtocolActuallyRuns) {
  DeployRig rig;
  ASSERT_TRUE(rig.deploy(kGoodAsp).ok);
  // Ping a third node through the router: the deployed ASP forwards it.
  Node& far = rig.net.add_node("far");
  rig.net.link(*rig.router, ip("10.0.2.254"), far, ip("10.0.2.1"), 10e6, millis(1));
  far.routes().add_default(0);
  int got = 0;
  asp::net::UdpSocket sink(far, 7, [&](const asp::net::Packet&) { ++got; });
  asp::net::UdpSocket src(*rig.admin, 9999, nullptr);
  src.send_to(far.addr(), 7, asp::net::bytes_of("x"));
  rig.net.run_until(rig.net.now() + seconds(1));
  EXPECT_EQ(got, 1);
  EXPECT_GT(rig.rt->packets_handled(), 0u);
}

TEST(Deploy, SyntaxErrorIsReportedNotInstalled) {
  DeployRig rig;
  DeployResult r = rig.deploy("channel oops(");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("ERR"), std::string::npos);
  EXPECT_FALSE(rig.rt->installed());
  EXPECT_EQ(rig.server->rejections(), 1);
}

TEST(Deploy, GateRejectsUnverifiableWithoutAuthentication) {
  DeployRig rig;
  const char* ping_pong = R"(
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  if ipDst(#1 p) = 10.0.0.1 then
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))
  else
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))
)";
  DeployResult r = rig.deploy(ping_pong);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("verification"), std::string::npos);

  // The paper's escape hatch: authenticated users may deploy it anyway.
  Deployer::Options opts;
  opts.authenticated = true;
  DeployResult r2 = rig.deploy(ping_pong, opts);
  EXPECT_TRUE(r2.ok) << r2.message;
  EXPECT_TRUE(rig.rt->installed());
}

TEST(Deploy, RedeploymentReplacesProtocol) {
  DeployRig rig;
  ASSERT_TRUE(rig.deploy(kGoodAsp).ok);
  const char* v2 =
      "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n"
      "  (println(\"v2\"); OnRemote(network, p); (ps + 1, ss))";
  ASSERT_TRUE(rig.deploy(v2).ok);
  EXPECT_EQ(rig.server->deployments(), 2);
  // Traffic now hits v2.
  Node& far = rig.net.add_node("far");
  rig.net.link(*rig.router, ip("10.0.2.254"), far, ip("10.0.2.1"), 10e6, millis(1));
  asp::net::UdpSocket sink(far, 7, [](const asp::net::Packet&) {});
  asp::net::UdpSocket src(*rig.admin, 9999, nullptr);
  src.send_to(far.addr(), 7, asp::net::bytes_of("x"));
  rig.net.run_until(rig.net.now() + seconds(1));
  EXPECT_EQ(rig.rt->log(), "v2\n");
}

TEST(Deploy, EngineSelectionIsHonoured) {
  DeployRig rig;
  Deployer::Options opts;
  opts.engine = planp::EngineKind::kInterp;
  ASSERT_TRUE(rig.deploy(kGoodAsp, opts).ok);
  EXPECT_STREQ(rig.rt->protocol().engine().engine_name(), "interp");
}

}  // namespace
}  // namespace asp::runtime
