#include "runtime/deploy.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace asp::runtime {
namespace {

using asp::net::ip;
using asp::net::millis;
using asp::net::Network;
using asp::net::Node;
using asp::net::seconds;

struct DeployRig {
  DeployRig() {
    admin = &net.add_node("admin");
    router = &net.add_router("router");
    net.link(*admin, ip("10.0.1.1"), *router, ip("10.0.1.254"), 10e6, millis(1));
    admin->routes().add_default(0);
    rt = std::make_unique<AspRuntime>(*router);
    server = std::make_unique<DeployServer>(*rt);
    deployer = std::make_unique<Deployer>(*admin);
  }

  DeployResult deploy(const std::string& source, Deployer::Options opts = {}) {
    DeployResult out;
    bool fired = false;
    deployer->deploy(router->addr(), source,
                     [&](const DeployResult& r) {
                       out = r;
                       fired = true;
                     },
                     opts);
    net.run_until(net.now() + seconds(5));
    EXPECT_TRUE(fired) << "no reply from deployment daemon";
    return out;
  }

  Network net;
  Node* admin;
  Node* router;
  std::unique_ptr<AspRuntime> rt;
  std::unique_ptr<DeployServer> server;
  std::unique_ptr<Deployer> deployer;
};

const char* kGoodAsp =
    "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n"
    "  (OnRemote(network, p); (ps + 1, ss))";

TEST(Deploy, InstallsVerifiedProtocolRemotely) {
  DeployRig rig;
  DeployResult r = rig.deploy(kGoodAsp);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(rig.rt->installed());
  EXPECT_EQ(rig.server->deployments(), 1);
  // The reply parses into structured fields: channel count, codegen time, no
  // error text.
  EXPECT_EQ(r.channels, 1);
  EXPECT_GT(r.codegen_us, 0.0);
  EXPECT_TRUE(r.error.empty()) << r.error;
}

TEST(Deploy, DeployedProtocolActuallyRuns) {
  DeployRig rig;
  ASSERT_TRUE(rig.deploy(kGoodAsp).ok);
  // Ping a third node through the router: the deployed ASP forwards it.
  Node& far = rig.net.add_node("far");
  rig.net.link(*rig.router, ip("10.0.2.254"), far, ip("10.0.2.1"), 10e6, millis(1));
  far.routes().add_default(0);
  int got = 0;
  asp::net::UdpSocket sink(far, 7, [&](const asp::net::Packet&) { ++got; });
  asp::net::UdpSocket src(*rig.admin, 9999, nullptr);
  src.send_to(far.addr(), 7, asp::net::bytes_of("x"));
  rig.net.run_until(rig.net.now() + seconds(1));
  EXPECT_EQ(got, 1);
  EXPECT_GT(rig.rt->stats().packets_handled, 0u);
}

TEST(Deploy, SyntaxErrorIsReportedNotInstalled) {
  DeployRig rig;
  DeployResult r = rig.deploy("channel oops(");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.channels, 0);
  EXPECT_FALSE(rig.rt->installed());
  EXPECT_EQ(rig.server->rejections(), 1);
}

TEST(Deploy, GateRejectsUnverifiableWithoutAuthentication) {
  DeployRig rig;
  const char* ping_pong = R"(
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  if ipDst(#1 p) = 10.0.0.1 then
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))
  else
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))
)";
  DeployResult r = rig.deploy(ping_pong);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("verification"), std::string::npos);

  // The paper's escape hatch: authenticated users may deploy it anyway.
  Deployer::Options opts;
  opts.authenticated = true;
  DeployResult r2 = rig.deploy(ping_pong, opts);
  EXPECT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(rig.rt->installed());
}

TEST(Deploy, RedeploymentReplacesProtocol) {
  DeployRig rig;
  ASSERT_TRUE(rig.deploy(kGoodAsp).ok);
  const char* v2 =
      "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n"
      "  (println(\"v2\"); OnRemote(network, p); (ps + 1, ss))";
  ASSERT_TRUE(rig.deploy(v2).ok);
  EXPECT_EQ(rig.server->deployments(), 2);
  // Traffic now hits v2.
  Node& far = rig.net.add_node("far");
  rig.net.link(*rig.router, ip("10.0.2.254"), far, ip("10.0.2.1"), 10e6, millis(1));
  asp::net::UdpSocket sink(far, 7, [](const asp::net::Packet&) {});
  asp::net::UdpSocket src(*rig.admin, 9999, nullptr);
  src.send_to(far.addr(), 7, asp::net::bytes_of("x"));
  rig.net.run_until(rig.net.now() + seconds(1));
  EXPECT_EQ(rig.rt->log(), "v2\n");
}

TEST(Deploy, EngineSelectionIsHonoured) {
  DeployRig rig;
  Deployer::Options opts;
  opts.engine = planp::EngineKind::kInterp;
  ASSERT_TRUE(rig.deploy(kGoodAsp, opts).ok);
  EXPECT_STREQ(rig.rt->protocol().engine().engine_name(), "interp");
}

TEST(Deploy, WrongWireVersionIsRefused) {
  DeployRig rig;
  // Speak a future protocol version at the daemon by hand: it must answer
  // with a clear bad-version error, not try to parse the body.
  std::string reply;
  auto conn = rig.admin->tcp().connect(rig.router->addr(), kDeployPort);
  conn->on_established([&] { conn->send(std::string("DEPLOY/9 jit 0 3\nfoo")); });
  conn->on_data([&](const std::vector<std::uint8_t>& d) {
    reply.append(d.begin(), d.end());
  });
  rig.net.run_until(rig.net.now() + seconds(2));
  EXPECT_EQ(reply.rfind("ERR bad-version", 0), 0u) << reply;
  EXPECT_FALSE(rig.rt->installed());
  EXPECT_EQ(rig.server->rejections(), 1);
  // The structured parser classifies it as a failure with the reason text.
  DeployResult parsed = DeployResult::from_reply(reply.substr(0, reply.find('\n')));
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("bad-version"), std::string::npos);
}

TEST(Deploy, UnversionedLegacyHeaderIsRefused) {
  DeployRig rig;
  std::string reply;
  auto conn = rig.admin->tcp().connect(rig.router->addr(), kDeployPort);
  conn->on_established([&] { conn->send(std::string("DEPLOY jit 0 3\nfoo")); });
  conn->on_data([&](const std::vector<std::uint8_t>& d) {
    reply.append(d.begin(), d.end());
  });
  rig.net.run_until(rig.net.now() + seconds(2));
  EXPECT_EQ(reply.rfind("ERR bad-version", 0), 0u) << reply;
  EXPECT_FALSE(rig.rt->installed());
}

TEST(Deploy, ReplyParserHandlesAllShapes) {
  DeployResult ok = DeployResult::from_reply("OK 3 412.5");
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.channels, 3);
  EXPECT_DOUBLE_EQ(ok.codegen_us, 412.5);
  EXPECT_TRUE(ok.error.empty());

  DeployResult err = DeployResult::from_reply("ERR verification: boom");
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, "verification: boom");

  DeployResult garbage = DeployResult::from_reply("HELLO");
  EXPECT_FALSE(garbage.ok);
  EXPECT_NE(garbage.error.find("unparseable"), std::string::npos);

  DeployResult truncated = DeployResult::from_reply("OK");
  EXPECT_FALSE(truncated.ok);
  EXPECT_EQ(truncated.channels, 0);
}

TEST(Deploy, ServerMetricsReachRegistry) {
  // The daemon reports into node/<name>/deploy/*; deltas across one
  // deployment must line up with the scalar accessors.
  obs::Counter& dep = obs::registry().counter("node/router/deploy/deployments");
  std::uint64_t before = dep.value();
  DeployRig rig;
  ASSERT_TRUE(rig.deploy(kGoodAsp).ok);
  EXPECT_EQ(dep.value(), before + 1);
}

}  // namespace
}  // namespace asp::runtime
