#include "net/node.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace asp::net {
namespace {

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable rt;
  rt.add_default(0);
  rt.add(ip("10.0.0.0"), 8, 1);
  rt.add(ip("10.1.0.0"), 16, 2);
  rt.add(ip("10.1.2.0"), 24, 3);

  EXPECT_EQ(rt.lookup(ip("10.1.2.3"))->iface, 3);
  EXPECT_EQ(rt.lookup(ip("10.1.9.9"))->iface, 2);
  EXPECT_EQ(rt.lookup(ip("10.9.9.9"))->iface, 1);
  EXPECT_EQ(rt.lookup(ip("172.16.0.1"))->iface, 0);
}

TEST(RoutingTable, EmptyTableReturnsNull) {
  RoutingTable rt;
  EXPECT_EQ(rt.lookup(ip("1.2.3.4")), nullptr);
}

TEST(Node, OwnsAllInterfaceAddresses) {
  Network net;
  Node& n = net.add_node("n");
  n.add_interface(ip("10.0.0.1"));
  n.add_interface(ip("192.168.1.1"));
  EXPECT_TRUE(n.owns(ip("10.0.0.1")));
  EXPECT_TRUE(n.owns(ip("192.168.1.1")));
  EXPECT_FALSE(n.owns(ip("10.0.0.2")));
  EXPECT_EQ(n.addr(), ip("10.0.0.1"));
}

TEST(Node, LoopbackDelivery) {
  Network net;
  Node& n = net.add_node("n");
  n.add_interface(ip("10.0.0.1"));
  int got = 0;
  UdpSocket sock(n, 5000, [&](const Packet&) { ++got; });
  sock.send_to(n.addr(), 5000, bytes_of("hi"));
  net.run();
  EXPECT_EQ(got, 1);
}

TEST(Node, RouterForwardsAcrossLinks) {
  Network net;
  Node& a = net.add_node("a");
  Node& r = net.add_router("r");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.1.1"), r, ip("10.0.1.254"), 10e6, millis(1));
  net.link(r, ip("10.0.2.254"), b, ip("10.0.2.1"), 10e6, millis(1));
  a.routes().add_default(0);
  b.routes().add_default(0);
  r.routes().add(ip("10.0.1.0"), 24, 0);
  r.routes().add(ip("10.0.2.0"), 24, 1);

  int got = 0;
  UdpSocket sock(b, 7, [&](const Packet& p) {
    ++got;
    EXPECT_EQ(p.ip.src, ip("10.0.1.1"));
    EXPECT_EQ(p.ip.ttl, 63);  // one hop decrements once
  });
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, bytes_of("x"));
  net.run();
  EXPECT_EQ(got, 1);
}

TEST(Node, HostDoesNotForwardTransitTraffic) {
  Network net;
  Node& a = net.add_node("a");
  Node& h = net.add_node("h");  // plain host in the middle
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.1.1"), h, ip("10.0.1.2"), 10e6, millis(1));
  net.link(h, ip("10.0.2.2"), b, ip("10.0.2.1"), 10e6, millis(1));
  a.routes().add_default(0);
  h.routes().add(ip("10.0.2.0"), 24, 1);

  int got = 0;
  UdpSocket sock(b, 7, [&](const Packet&) { ++got; });
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, bytes_of("x"));
  net.run();
  EXPECT_EQ(got, 0);
}

TEST(Node, TtlExpiryDropsPacket) {
  Network net;
  Node& a = net.add_node("a");
  Node& r = net.add_router("r");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.1.1"), r, ip("10.0.1.254"), 10e6, millis(1));
  net.link(r, ip("10.0.2.254"), b, ip("10.0.2.1"), 10e6, millis(1));
  a.routes().add_default(0);
  r.routes().add(ip("10.0.2.0"), 24, 1);

  int got = 0;
  UdpSocket sock(b, 7, [&](const Packet&) { ++got; });
  Packet p = Packet::make_udp(a.addr(), b.addr(), 1, 7, bytes_of("x"));
  p.ip.ttl = 1;
  a.send_ip(std::move(p));
  net.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(r.dropped_ttl(), 1u);
}

TEST(Node, NoRouteIsCountedAndDropped) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.1.1"), b, ip("10.0.1.2"), 10e6, millis(1));
  // a has no routes at all.
  a.send_ip(Packet::make_udp(a.addr(), ip("99.99.99.99"), 1, 7, {}));
  net.run();
  EXPECT_EQ(a.dropped_no_route(), 1u);
}

TEST(Node, IpHookConsumesPacket) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.1.1"), b, ip("10.0.1.2"), 10e6, millis(1));
  a.routes().add_default(0);

  int hooked = 0, delivered = 0;
  b.set_ip_hook([&](Packet&, Interface&) {
    ++hooked;
    return true;  // consume
  });
  UdpSocket sock(b, 7, [&](const Packet&) { ++delivered; });
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, bytes_of("x"));
  net.run();
  EXPECT_EQ(hooked, 1);
  EXPECT_EQ(delivered, 0);
}

TEST(Node, IpHookPassThroughKeepsDefaultBehaviour) {
  Network net;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  net.link(a, ip("10.0.1.1"), b, ip("10.0.1.2"), 10e6, millis(1));
  a.routes().add_default(0);

  int hooked = 0, delivered = 0;
  b.set_ip_hook([&](Packet&, Interface&) {
    ++hooked;
    return false;
  });
  UdpSocket sock(b, 7, [&](const Packet&) { ++delivered; });
  UdpSocket src(a, 9999, nullptr);
  src.send_to(b.addr(), 7, bytes_of("x"));
  net.run();
  EXPECT_EQ(hooked, 1);
  EXPECT_EQ(delivered, 1);
}

TEST(Node, HookCanRewriteDestination) {
  // The essence of the load-balancing gateway: rewrite ip.dst in flight.
  Network net;
  Node& a = net.add_node("a");
  Node& r = net.add_router("r");
  Node& b1 = net.add_node("b1");
  Node& b2 = net.add_node("b2");
  net.link(a, ip("10.0.1.1"), r, ip("10.0.1.254"), 10e6, millis(1));
  net.link(r, ip("10.0.2.254"), b1, ip("10.0.2.1"), 10e6, millis(1));
  net.link(r, ip("10.0.3.254"), b2, ip("10.0.3.1"), 10e6, millis(1));
  a.routes().add_default(0);
  r.routes().add(ip("10.0.1.0"), 24, 0);
  r.routes().add(ip("10.0.2.0"), 24, 1);
  r.routes().add(ip("10.0.3.0"), 24, 2);

  r.set_ip_hook([&](Packet& p, Interface&) {
    if (p.ip.dst == ip("10.0.2.1")) {
      p.ip.dst = ip("10.0.3.1");  // virtual -> physical
      r.forward(std::move(p));
      return true;
    }
    return false;
  });

  int got1 = 0, got2 = 0;
  UdpSocket s1(b1, 7, [&](const Packet&) { ++got1; });
  UdpSocket s2(b2, 7, [&](const Packet&) { ++got2; });
  UdpSocket src(a, 9999, nullptr);
  src.send_to(ip("10.0.2.1"), 7, bytes_of("x"));
  net.run();
  EXPECT_EQ(got1, 0);
  EXPECT_EQ(got2, 1);
}

TEST(Node, MulticastRoutingForwardsDownstream) {
  Network net;
  Node& src = net.add_node("src");
  Node& r = net.add_router("r");
  Node& c1 = net.add_node("c1");
  Node& c2 = net.add_node("c2");
  net.link(src, ip("10.0.1.1"), r, ip("10.0.1.254"), 10e6, millis(1));
  auto& lan = net.segment("lan", 10e6);
  net.attach(r, lan, ip("192.168.1.254"));
  net.attach(c1, lan, ip("192.168.1.1"));
  net.attach(c2, lan, ip("192.168.1.2"));

  Ipv4Addr group = ip("224.5.6.7");
  src.routes().add_default(0);
  src.add_mroute(group, {0});
  r.add_mroute(group, {1});
  c1.join_group(group);
  c2.join_group(group);

  int got1 = 0, got2 = 0;
  UdpSocket s1(c1, 7, [&](const Packet&) { ++got1; });
  UdpSocket s2(c2, 7, [&](const Packet&) { ++got2; });
  UdpSocket s(src, 9999, nullptr);
  s.send_to(group, 7, bytes_of("audio"));
  net.run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
}

TEST(Node, UdpWithNoListenerIsCounted) {
  Network net;
  Node& n = net.add_node("n");
  n.add_interface(ip("10.0.0.1"));
  n.send_ip(Packet::make_udp(n.addr(), n.addr(), 1, 4242, {}));
  net.run();
  EXPECT_EQ(n.dropped_no_listener(), 1u);
}

}  // namespace
}  // namespace asp::net
