// Policy experimentation (paper §3.1: "strategies can be quickly developed
// and experimented with" — here by swapping the router ASP).
#include <gtest/gtest.h>

#include "apps/asp_sources.hpp"
#include "apps/audio/experiment.hpp"
#include "planp/analysis.hpp"
#include "planp/parser.hpp"

namespace asp::apps {
namespace {

TEST(AudioPolicy, HysteresisAspPassesAllAnalyses) {
  auto r = planp::analyze(
      planp::typecheck(planp::parse(audio_router_hysteresis_asp())));
  EXPECT_TRUE(r.fully_verified())
      << r.global_termination_detail << r.delivery_detail << r.duplication_detail;
}

TEST(AudioPolicy, BothPoliciesDegradeUnderLargeLoad) {
  for (AudioPolicy policy : {AudioPolicy::kThreshold, AudioPolicy::kHysteresis}) {
    AudioExperiment exp(true, planp::EngineKind::kJit, policy);
    auto r = exp.run(15.0, {{0.0, 0.0}, {5.0, 9.7e6}});
    EXPECT_EQ(r.series.back().level, 2) << "policy " << static_cast<int>(policy);
  }
}

TEST(AudioPolicy, HysteresisSuppressesMediumLoadOscillation) {
  // The threshold policy flaps when the load straddles the 85% threshold;
  // the hysteresis policy holds the degraded level until the segment calms.
  std::vector<LoadStep> schedule{{0.0, 0.0}, {5.0, 8.35e6}};
  AudioExperiment threshold(true, planp::EngineKind::kJit, AudioPolicy::kThreshold);
  auto r_thresh = threshold.run(60.0, schedule);
  AudioExperiment hysteresis(true, planp::EngineKind::kJit, AudioPolicy::kHysteresis);
  auto r_hyst = hysteresis.run(60.0, schedule);

  EXPECT_GT(r_thresh.level_switches, 50) << "threshold policy should oscillate";
  EXPECT_LT(r_hyst.level_switches, r_thresh.level_switches / 4)
      << "hysteresis should remove most oscillation";
}

TEST(AudioPolicy, HysteresisRecoversAfterLoadClears) {
  AudioExperiment exp(true, planp::EngineKind::kJit, AudioPolicy::kHysteresis);
  auto r = exp.run(30.0, {{0.0, 0.0}, {5.0, 9.7e6}, {15.0, 0.0}});
  // After the load clears at t=15 and the hold period expires, full quality
  // returns.
  EXPECT_EQ(r.series.back().level, 0);
  bool degraded_midway = false;
  for (const auto& s : r.series) {
    if (s.t_sec > 6 && s.t_sec < 14 && s.level == 2) degraded_midway = true;
  }
  EXPECT_TRUE(degraded_midway);
}

}  // namespace
}  // namespace asp::apps
