// Cross-shard remote-free protocol (DESIGN.md §6e): blocks freed by a
// non-owning shard must ride the lock-free remote channel home, be reclaimed
// at drains, and never corrupt a freelist — under randomized producer/
// consumer interleavings, with poison-on-free on, and under TSAN (the
// MemShard* suite is in the TSAN CI filter precisely for the channel's
// release-push/acquire-drain pairing).
#include <gtest/gtest.h>

#include <barrier>
#include <cstdint>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "mem/pool.hpp"
#include "mem/shard.hpp"
#include "planp/value.hpp"

namespace {

using namespace asp;

// Runs `fn` on a fresh thread bound to its own shard and joins it. The test
// body thread keeps its own binding (typically shard 0), so `fn` is a
// genuine foreign shard.
template <typename Fn>
void on_other_shard(Fn fn) {
  std::thread([&] {
    mem::bind_shard(-1);
    fn();
  }).join();
}

TEST(MemShard, CrossShardBufferFreeRidesRemoteChannelHome) {
  mem::reset_for_test();
  mem::ShardPools& mine = mem::shard();

  mem::BufferPool::Handle h = mine.buffers().acquire(256);
  h->assign(100, 0x5A);
  const std::uint64_t freed_before = mine.buffers().stats().remote_freed.load();

  on_other_shard([&] { h.reset(); });  // foreign free -> remote push

  EXPECT_EQ(mine.buffers().stats().remote_freed.load(), freed_before + 1);
  EXPECT_EQ(mine.buffers().stats().remote_drained.load(), 0u);

  mem::drain_remote_frees();
  EXPECT_EQ(mine.buffers().stats().remote_drained.load(), 1u);

  // The reclaimed node serves the owner's next acquire from the freelist.
  const std::uint64_t hits_before = mine.buffers().stats().hits.load();
  mem::BufferPool::Handle h2 = mine.buffers().acquire(256);
  EXPECT_EQ(mine.buffers().stats().hits.load(), hits_before + 1);
}

TEST(MemShard, CrossShardSlabFreeRoutesByChunkHome) {
  mem::reset_for_test();
  mem::SlabPool& slab = mem::shard().slab();

  void* p = slab.allocate(96);
  const std::uint64_t freed_before = slab.stats().remote_freed.load();

  // Foreign thread frees through ITS OWN shard's slab: deallocate routes by
  // the chunk's home pool, not the invoked instance.
  on_other_shard([&] { mem::shard().slab().deallocate(p, 96); });

  EXPECT_EQ(slab.stats().remote_freed.load(), freed_before + 1);
  mem::drain_remote_frees();
  EXPECT_GE(slab.stats().remote_drained.load(), 1u);
}

TEST(MemShard, UnboundThreadFreeGoesRemoteNotLocal) {
  mem::reset_for_test();
  mem::ShardPools& mine = mem::shard();
  mem::BufferPool::Handle h = mine.buffers().acquire(64);

  // A thread that never binds a shard has a null owner token, which never
  // matches a pool's token — its frees must go remote, not graft the node
  // onto a freelist it doesn't own.
  std::thread([&] { h.reset(); }).join();

  EXPECT_GE(mine.buffers().stats().remote_freed.load(), 1u);
}

TEST(MemShard, ShardIdsLineUpWithBindAndRecycleWarmInstances) {
  mem::reset_for_test();
  int first_id = -1;
  int second_id = -1;
  std::thread([&] {
    mem::bind_shard(-1);
    first_id = mem::shard().id();
    mem::shard().buffers().acquire(64);  // warm one node
  }).join();
  std::thread([&] {
    mem::bind_shard(first_id);  // id was released at thread exit -> reusable
    second_id = mem::shard().id();
  }).join();
  EXPECT_GE(first_id, 0);
  EXPECT_EQ(second_id, first_id);
}

// Binds every pool set in [0, max_id], draining its remote channels, then
// restores the caller's binding. Reclaims frees stranded on released
// instances (pushed after their owner's exit drain) — including by earlier
// tests in this binary, which is why the stress below sweeps BEFORE taking
// its baseline.
void sweep_drain(int max_id) {
  const int my_id = mem::shard().id();
  for (int id = 0; id <= max_id; ++id) {
    mem::bind_shard(id);
    mem::drain_remote_frees();
  }
  mem::bind_shard(my_id);
}

// The stress: P producer shards each allocate buffers/tuples/slab blocks and
// scatter them to randomly chosen consumer inboxes; C consumer shards pop at
// random and drop them (foreign frees), with random drain points on both
// sides. Run with poison ON so any premature recycle of a live block reads
// back a loud sentinel, and under TSAN for the channel's memory ordering.
TEST(MemShard, RandomizedCrossShardStressReclaimsEverything) {
  mem::reset_for_test();
  const bool poison_before = mem::poison_enabled();
  mem::set_poison(true);

  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr int kItemsPerProducer = 2'000;

  struct Item {
    mem::BufferPool::Handle buf;
    planp::Value tuple;
    void* blk = nullptr;       // raw slab block, freed via consumer's slab
    std::size_t blk_size = 0;
    std::uint8_t fill = 0;
  };
  struct Inbox {
    std::mutex mu;
    std::vector<Item> v;
    bool closed = false;
  };
  Inbox inboxes[kConsumers];

  // The stress threads take the lowest free ids, all <= my_id + threads, so
  // this sweep range covers every instance they can land on (plus whatever
  // earlier tests created and may have left strands on).
  const int kSweepMax = mem::shard().id() + kProducers + kConsumers + 16;
  sweep_drain(kSweepMax);
  const mem::PoolTotals t_before = mem::total_pool_stats();
  std::barrier producers_done(kProducers + 1);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      mem::bind_shard(-1);
      std::mt19937 rng(1000u + static_cast<unsigned>(p));
      mem::ShardPools& sp = mem::shard();
      for (int i = 0; i < kItemsPerProducer; ++i) {
        Item it;
        it.fill = static_cast<std::uint8_t>(rng() & 0x7F);
        it.buf = sp.buffers().acquire(64 + (rng() % 512));
        it.buf->assign(48, it.fill);
        it.tuple = planp::Value::of_tuple({planp::Value::of_int(it.fill),
                                           planp::Value::of_int(i)});
        it.blk_size = 16 + (rng() % 256);
        it.blk = sp.slab().allocate(it.blk_size);
        Inbox& box = inboxes[rng() % kConsumers];
        {
          std::lock_guard<std::mutex> lk(box.mu);
          box.v.push_back(std::move(it));
        }
        if (rng() % 32 == 0) mem::drain_remote_frees();
      }
      mem::drain_remote_frees();
      producers_done.arrive_and_wait();
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      mem::bind_shard(-1);
      std::mt19937 rng(2000u + static_cast<unsigned>(c));
      Inbox& box = inboxes[c];
      std::vector<Item> grabbed;
      for (;;) {
        bool closed;
        {
          std::lock_guard<std::mutex> lk(box.mu);
          grabbed.swap(box.v);
          closed = box.closed;
        }
        for (Item& it : grabbed) {
          // The handed-off storage must still hold the producer's bytes —
          // poison mode would have scribbled 0xA5 over any premature
          // recycle.
          ASSERT_EQ(it.buf->size(), 48u);
          ASSERT_EQ((*it.buf)[0], it.fill);
          ASSERT_EQ(it.tuple.as_tuple()[0].as_int(), it.fill);
          mem::shard().slab().deallocate(it.blk, it.blk_size);  // routes home
          // Dropping the Item frees buf + tuple from this foreign shard.
        }
        grabbed.clear();
        if (rng() % 8 == 0) mem::drain_remote_frees();
        if (closed) break;
        std::this_thread::yield();
      }
      mem::drain_remote_frees();
    });
  }

  producers_done.arrive_and_wait();
  for (Inbox& box : inboxes) {
    std::lock_guard<std::mutex> lk(box.mu);
    box.closed = true;
  }
  for (std::thread& t : threads) t.join();

  // Exit drains can miss frees pushed after an owner's last drain; sweep
  // the same id range to reclaim the stragglers, then check the books.
  sweep_drain(kSweepMax);
  mem::drain_remote_frees();

  const mem::PoolTotals t_after = mem::total_pool_stats();
  EXPECT_GT(t_after.remote_freed, t_before.remote_freed);  // ring was exercised
  EXPECT_EQ(t_after.remote_freed - t_before.remote_freed,
            t_after.remote_drained - t_before.remote_drained);
  EXPECT_EQ(t_after.live, t_before.live);

  mem::set_poison(poison_before);
}

}  // namespace
