#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

namespace asp::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker, enough to certify to_json() output: validates
// objects, strings, numbers and null (the only constructs the exporter
// emits), rejecting trailing garbage.
// ---------------------------------------------------------------------------
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return object();
    if (c == '"') return string();
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(s_[pos_]) || s_[pos_] == '.' ||
                                s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(s_[pos_])) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Counter, CountsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Histogram, ExactStatsAlongsideBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.observe(10);
  h.observe(20);
  h.observe(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 60.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, QuantilesOnUniformDistribution) {
  // 1..1000 uniformly: log2 buckets with in-bucket linear interpolation and
  // min/max clamping land within a few percent of the true quantile.
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.observe(v);
  EXPECT_NEAR(h.quantile(0.50), 500.0, 25.0);
  EXPECT_NEAR(h.quantile(0.90), 900.0, 45.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Histogram, QuantilesOnConstantDistribution) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(42.0);
  // Every observation sits in bucket (32, 64]; clamping the interpolation to
  // the observed range makes the estimate exact.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 42.0);
}

TEST(Histogram, QuantilesOnBimodalDistribution) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(3.0);    // bucket (2,4]
  for (int i = 0; i < 10; ++i) h.observe(900.0);  // bucket (512,1024]
  double p50 = h.quantile(0.50);
  EXPECT_GE(p50, 2.0);
  EXPECT_LE(p50, 4.0);
  // p99 interpolates inside the upper mode's bucket: bounded below by the
  // bucket floor and above by the observed max.
  double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 900.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 900.0);  // clamped to max
}

TEST(Histogram, EdgeValues) {
  Histogram h;
  h.observe(0);
  h.observe(-5);  // clamped to 0
  h.observe(1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_EQ(h.buckets()[0], 3u);  // bucket 0 covers [0, 1]
}

TEST(Histogram, BucketBoundaries) {
  Histogram h;
  h.observe(2.0);  // boundary: belongs to (1,2]
  h.observe(2.5);  // (2,4]
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(10), 1024.0);
}

TEST(Registry, SameNameSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x/y");
  reg.counter("x/z").inc();  // interleaved registration must not move a
  Counter& b = reg.counter("x/y");
  a.inc();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);
  // Different kinds may share a name without clashing.
  reg.gauge("x/y").set(7);
  EXPECT_EQ(reg.counter("x/y").value(), 1u);
}

TEST(Registry, ResetZeroesWithoutInvalidating) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  c.inc(5);
  h.observe(3);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(Json, ExportIsValidAndComplete) {
  MetricsRegistry reg;
  reg.counter("node/r/asp/packets_handled").inc(12);
  reg.gauge("node/r/net/load").set(0.75);
  Histogram& h = reg.histogram("planp/jit/codegen_us");
  for (int v = 1; v <= 100; ++v) h.observe(v);

  std::string json = to_json(reg);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"node/r/asp/packets_handled\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"planp/jit/codegen_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(Json, EmptyRegistryIsValid) {
  MetricsRegistry reg;
  std::string json = to_json(reg);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(Json, EscapesAwkwardNames) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\with\nstuff").inc();
  std::string json = to_json(reg);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(Json, WriteFileRoundTrip) {
  MetricsRegistry reg;
  reg.counter("a").inc(3);
  std::string path = testing::TempDir() + "obs_metrics_test.json";
  ASSERT_TRUE(write_json(reg, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  std::remove(path.c_str());
  std::string contents(buf, n);
  EXPECT_TRUE(JsonChecker(contents).valid()) << contents;
  EXPECT_NE(contents.find("\"a\": 3"), std::string::npos);
}

TEST(Registry, DefaultRegistryIsProcessWide) {
  Counter& c = registry().counter("obs_test/self");
  std::uint64_t before = c.value();
  registry().counter("obs_test/self").inc();
  EXPECT_EQ(c.value(), before + 1);
}

TEST(Registry, StabilizedGaugeRecordsMedianAfterWarmup) {
  int calls = 0;
  // Samples after the 2 warmup calls: 10, 50, 30, 1000, 20 -> median 30.
  double vals[] = {0, 0, 10, 50, 30, 1000, 20};
  double med = record_stabilized_gauge(
      "obs_test/stabilized", [&]() { return vals[calls++]; }, /*warmup=*/2,
      /*reps=*/5);
  EXPECT_EQ(calls, 7);
  EXPECT_DOUBLE_EQ(med, 30.0);
  EXPECT_DOUBLE_EQ(registry().gauge("obs_test/stabilized").value(), 30.0);
}

}  // namespace
}  // namespace asp::obs
