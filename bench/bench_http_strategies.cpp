// Extension bench (paper §3.2/§5): comparing load-balancing strategies by
// swapping the gateway ASP, and the failover timeline.
#include <cstdio>

#include "apps/http/experiment.hpp"
#include "obs/metrics.hpp"

using namespace asp::apps;

namespace {

double run_strategy(GatewayStrategy s, int machines) {
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.strategy = s;
  opts.client_machines = machines;
  opts.processes_per_machine = 4;
  opts.trace_accesses = 40'000;
  HttpExperiment exp(opts);
  return exp.run(15.0).requests_per_sec;
}

}  // namespace

int main() {
  std::printf("=== Gateway strategies: throughput at saturation (requests/s) ===\n\n");
  std::printf("%10s %14s %14s %14s\n", "machines", "modulo (fig2)", "source-hash",
              "failover");
  for (int m : {2, 6}) {
    std::printf("%10d %14.1f %14.1f %14.1f\n", m,
                run_strategy(GatewayStrategy::kModulo, m),
                run_strategy(GatewayStrategy::kHash, m),
                run_strategy(GatewayStrategy::kFailover, m));
  }

  std::printf("\n=== Failover timeline: server 0 dies at t=10 s, returns at t=20 s ===\n\n");
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.strategy = GatewayStrategy::kFailover;
  opts.client_machines = 4;
  opts.processes_per_machine = 3;
  opts.trace_accesses = 40'000;
  HttpExperiment exp(opts);

  exp.network().events().schedule_at(asp::net::seconds(10.0), [&] {
    exp.kill_server(0);
    exp.mark_server(0, true);
  });
  exp.network().events().schedule_at(asp::net::seconds(20.0), [&] {
    // The server process restarts; note we cannot re-listen in this harness,
    // so recovery is demonstrated on the admin plane only.
    exp.mark_server(0, false);
  });

  std::printf("%8s %10s %10s   (requests served per 5 s interval)\n", "t(s)",
              "srv0", "srv1");
  std::uint64_t prev0 = 0, prev1 = 0;
  for (int t = 5; t <= 30; t += 5) {
    exp.network().events().schedule_at(asp::net::seconds(t), [&, t] {
      std::uint64_t s0 = exp.servers()[0]->requests_served();
      std::uint64_t s1 = exp.servers()[1]->requests_served();
      std::printf("%8d %10llu %10llu\n", t,
                  static_cast<unsigned long long>(s0 - prev0),
                  static_cast<unsigned long long>(s1 - prev1));
      prev0 = s0;
      prev1 = s1;
    });
  }
  exp.run(30.0);
  std::printf("\nexpected shape: srv0's per-interval count collapses to ~0 after "
              "t=10 while srv1 absorbs the load.\n");
  asp::obs::write_bench_json("http_strategies");
  return 0;
}
