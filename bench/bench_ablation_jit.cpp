// Ablation: what each ingredient of the run-time specializer buys.
//
// DESIGN.md calls out two design choices in the Tempo-analog: (i) pre-decoded
// templates with patched constants/primitive pointers, (ii) superinstruction
// fusion of common sequences (header projections, 1-arg primitive calls,
// compare-against-constant). This bench isolates them:
//   interpreter -> bytecode VM       : the value of compiling at all
//   bytecode VM -> JIT (no fusion)   : the value of template patching
//   JIT (no fusion) -> JIT (fusion)  : the value of fusion
#include <benchmark/benchmark.h>

#include "apps/asp_sources.hpp"
#include "bench/harness.hpp"
#include "net/network.hpp"
#include "planp/compile.hpp"
#include "planp/interp.hpp"
#include "planp/jit.hpp"
#include "planp/parser.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace asp;
using planp::Value;

struct Fixture {
  Fixture() {
    checked = planp::typecheck(planp::parse(apps::audio_router_asp()));
    compiled = planp::compile(checked);
    env.load_percent = 95;
    net::IpHeader ip;
    ip.src = net::ip("10.0.1.1");
    ip.dst = net::ip("224.1.1.1");
    ip.proto = net::IpProto::kUdp;
    packet = Value::of_tuple({Value::of_ip(ip),
                              Value::of_udp(net::UdpHeader{5004, 5004}),
                              Value::of_blob(std::vector<std::uint8_t>(440))});
    ps = Value::of_int(0);
    ss = Value::unit();
  }

  void pump(benchmark::State& state, planp::Engine& engine) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(engine.run_channel(0, ps, ss, packet));
      env.sends.clear();
    }
    state.SetItemsProcessed(state.iterations());
  }

  planp::NullEnv env;
  planp::CheckedProgram checked;
  planp::CompiledProgram compiled;
  Value packet, ps, ss;
};

void BM_Ablation_Interp(benchmark::State& state) {
  Fixture fx;
  planp::Interp engine(fx.checked, fx.env);
  fx.pump(state, engine);
}
BENCHMARK(BM_Ablation_Interp);

void BM_Ablation_BytecodeVm(benchmark::State& state) {
  Fixture fx;
  planp::VmEngine engine(fx.compiled, fx.env);
  fx.pump(state, engine);
}
BENCHMARK(BM_Ablation_BytecodeVm);

void BM_Ablation_JitNoFusion(benchmark::State& state) {
  Fixture fx;
  planp::JitEngine engine(fx.compiled, fx.env, /*fuse=*/false);
  fx.pump(state, engine);
}
BENCHMARK(BM_Ablation_JitNoFusion);

void BM_Ablation_JitFused(benchmark::State& state) {
  Fixture fx;
  planp::JitEngine engine(fx.compiled, fx.env, /*fuse=*/true);
  fx.pump(state, engine);
}
BENCHMARK(BM_Ablation_JitFused);

// Template counts: fusion compresses the code (reported once as a counter).
void BM_Ablation_TemplateCounts(benchmark::State& state) {
  Fixture fx;
  std::size_t fused = 0, unfused = 0;
  for (const auto& b : fx.compiled.channel_bodies) {
    fused += planp::specialize_block(b, fx.compiled, true).code.size();
    unfused += planp::specialize_block(b, fx.compiled, false).code.size();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fused);
  }
  state.counters["templates_fused"] = static_cast<double>(fused);
  state.counters["templates_unfused"] = static_cast<double>(unfused);
}
BENCHMARK(BM_Ablation_TemplateCounts)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  asp::bench::parse_and_strip_options(argc, argv);  // shared flags first
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  asp::obs::write_bench_json("ablation_jit");
  return 0;
}
