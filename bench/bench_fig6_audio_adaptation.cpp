// Figure 6: measured audio bandwidth under a stepped network load.
//
// Paper: no load -> 16-bit stereo at 176 kb/s; large load at t=100 s -> the
// protocol "immediately switches" to 8-bit mono (44 kb/s); a smaller load at
// t=220 s -> quality oscillates between 8 and 16 bit mono; a small load at
// t=340 s -> 16-bit mono (88 kb/s). Rates here are on-the-wire (headers and
// the quality tag add ~6%).
#include <cstdio>

#include "apps/audio/experiment.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace asp::apps;

  std::printf("=== Figure 6: audio bandwidth vs time (adaptation in the router) ===\n");
  std::printf("load schedule: t=100s large (9.7 Mb/s), t=220s medium (8.35 Mb/s), "
              "t=340s small (7.0 Mb/s)\n\n");
  std::printf("%8s %12s %12s %8s\n", "t(s)", "audio(kb/s)", "load(Mb/s)", "level");

  AudioExperiment exp(/*adaptation=*/true);
  AudioRunResult r = exp.run(460.0, AudioExperiment::figure6_schedule(),
                             /*sample_period_sec=*/4.0);

  for (const AudioSample& s : r.series) {
    std::printf("%8.0f %12.1f %12.2f %8d\n", s.t_sec, s.audio_kbps,
                s.load_kbps / 1000.0, s.level);
  }

  std::printf("\nsummary: frames sent=%llu received=%llu, on-the-wire quality "
              "switches=%d\n",
              static_cast<unsigned long long>(r.frames_sent),
              static_cast<unsigned long long>(r.frames_received), r.level_switches);
  std::printf("expected shape: ~189 kb/s (16-bit stereo) -> ~57 kb/s (8-bit mono) "
              "at t>100 ->\n  a 57..101 mix while the medium load straddles the "
              "threshold (t>220; the paper's\n  'varies between 8 and 16 bit "
              "monaural') -> ~101 kb/s (16-bit mono) at t>340\n");
  asp::obs::write_bench_json("fig6_audio_adaptation");
  return 0;
}
