// §3.3: point-to-point MPEG server turned multipoint by ASPs.
//
// Claim: with the monitor/capture ASPs, N segment-local clients watching the
// same video cost the server a single stream, and every client still
// receives the full stream rate. (The paper gives no figure; this bench
// regenerates the section's quantitative claims.)
#include <cstdio>

#include "apps/mpeg/experiment.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace asp::apps;

  std::printf("=== MPEG: point-to-point server, multipoint delivery ===\n\n");
  std::printf("%8s | %28s | %28s\n", "", "without ASPs", "with monitor+capture ASPs");
  std::printf("%8s | %8s %9s %9s | %8s %9s %9s\n", "clients", "streams", "egress",
              "min-rate", "streams", "egress", "min-rate");
  std::printf("%8s | %8s %9s %9s | %8s %9s %9s\n", "", "", "(Mb/s)", "(Mb/s)", "",
              "(Mb/s)", "(Mb/s)");

  for (int n : {1, 2, 4, 8}) {
    MpegExperiment base(/*sharing=*/false, n);
    MpegRunResult r0 = base.run(8.0 + 0.3 * n);
    MpegExperiment shared(/*sharing=*/true, n);
    MpegRunResult r1 = shared.run(8.0 + 0.3 * n);
    std::printf("%8d | %8d %9.2f %9.2f | %8d %9.2f %9.2f\n", n, r0.server_streams,
                r0.server_egress_mbps, r0.min_client_mbps, r1.server_streams,
                r1.server_egress_mbps, r1.min_client_mbps);
  }

  std::printf("\nexpected shape: server streams/egress grow linearly without ASPs "
              "and stay constant with them;\nmin client rate stays at the full "
              "stream rate (~0.8 Mb/s) in both cases.\n");
  asp::obs::write_bench_json("mpeg_multipoint");
  return 0;
}
