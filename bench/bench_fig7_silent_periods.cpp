// Figure 7: silent periods during audio playback, with and without
// adaptation, under various segment loads.
//
// Paper: "the adaptation does, in fact, reduce the number of gaps in audio
// playback".
#include <cstdio>

#include "apps/audio/experiment.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace asp::apps;

  struct Config {
    const char* name;
    double load_bps;
  };
  const Config configs[] = {
      {"no load", 0.0},
      {"small load (7.0 Mb/s)", 7.0e6},
      {"medium load (8.45 Mb/s)", 8.45e6},
      {"large load (9.7 Mb/s)", 9.7e6},
      {"saturating load (9.9 Mb/s)", 9.9e6},
  };

  std::printf("=== Figure 7: silent periods during 120 s of playback ===\n\n");
  std::printf("%-28s %22s %22s\n", "", "without adaptation", "with adaptation");
  std::printf("%-28s %10s %11s %10s %11s\n", "segment load", "gaps", "gap-ticks",
              "gaps", "gap-ticks");

  for (const Config& c : configs) {
    std::vector<LoadStep> schedule{{0.0, 0.0}, {5.0, c.load_bps}};
    AudioExperiment without(/*adaptation=*/false);
    AudioRunResult r0 = without.run(120.0, schedule);
    AudioExperiment with(/*adaptation=*/true);
    AudioRunResult r1 = with.run(120.0, schedule);
    std::printf("%-28s %10d %11d %10d %11d\n", c.name, r0.silent_periods,
                r0.silent_ticks, r1.silent_periods, r1.silent_ticks);
  }
  std::printf("\nexpected shape: under saturating loads, adaptation removes nearly "
              "all playback gaps.\n");
  asp::obs::write_bench_json("fig7_silent_periods");
  return 0;
}
