// Figure 8: HTTP server performance — served requests/s versus offered load
// for the four configurations of paper §3.2.
//
// Claims to reproduce:
//   * curve (b) ASP gateway  ~= curve (c) built-in C gateway,
//   * the 2-server cluster serves ~1.75x the load of a single server,
//   * and ~85% of two servers with disjoint client sets (the gateway is the
//     contention point).
#include <cstdio>

#include "apps/http/experiment.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace asp::apps;

  const int kMachines[] = {1, 2, 4, 6, 8};
  const double kDuration = 20.0;

  std::printf("=== Figure 8: HTTP cluster throughput (requests/s) ===\n");
  std::printf("closed-loop clients, 4 processes per client machine, 20 s runs\n\n");
  std::printf("%10s %14s %14s %16s %14s\n", "machines", "single (a)", "ASP gw (b)",
              "builtin-C gw (c)", "disjoint");

  double peak_single = 0, peak_asp = 0, peak_builtin = 0, peak_disjoint = 0;
  for (int m : kMachines) {
    double rps[4] = {0, 0, 0, 0};
    const HttpConfig cfgs[] = {HttpConfig::kSingleServer, HttpConfig::kAspGateway,
                               HttpConfig::kBuiltinGateway, HttpConfig::kDisjoint};
    for (int i = 0; i < 4; ++i) {
      HttpExperiment::Options opts;
      opts.config = cfgs[i];
      opts.client_machines = m;
      opts.processes_per_machine = 4;
      opts.trace_accesses = 80'000;
      HttpExperiment exp(opts);
      rps[i] = exp.run(kDuration).requests_per_sec;
    }
    std::printf("%10d %14.1f %14.1f %16.1f %14.1f\n", m, rps[0], rps[1], rps[2], rps[3]);
    peak_single = std::max(peak_single, rps[0]);
    peak_asp = std::max(peak_asp, rps[1]);
    peak_builtin = std::max(peak_builtin, rps[2]);
    peak_disjoint = std::max(peak_disjoint, rps[3]);
  }

  std::printf("\nsaturation summary:\n");
  std::printf("  ASP gateway vs built-in C gateway : %.3f  (paper: ~1.0)\n",
              peak_asp / peak_builtin);
  std::printf("  cluster vs single server          : %.2fx (paper: 1.75x)\n",
              peak_asp / peak_single);
  std::printf("  cluster vs disjoint two servers   : %.0f%%  (paper: ~85%%)\n",
              100.0 * peak_asp / peak_disjoint);
  asp::obs::write_bench_json("fig8_http_cluster");
  return 0;
}
