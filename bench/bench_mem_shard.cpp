// Alloc-contention bench for the shard-local memory subsystem (DESIGN.md
// §6e): k threads, each bound to its own shard's pool set, churning buffers,
// tuples, and raw slab blocks — locally AND across shards through a hand-off
// ring, so the remote-free channels carry real traffic.
//
// What it gates (exported as bench/mem_shard/* gauges, CI asserts them):
//   * spills stays 0 across the measured phase — no pool op took a mutex
//     (the orphan path never engaged), at every shard count.
//   * after the final drains, remote_freed == remote_drained and live is
//     back to its baseline — every cross-shard free was reclaimed, nothing
//     is stranded on a channel.
// Throughput (aggregate Mops/s) is recorded for EXPERIMENTS.md, never
// asserted: it depends on the runner's core count.
#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "mem/pool.hpp"
#include "mem/shard.hpp"
#include "obs/metrics.hpp"
#include "planp/value.hpp"

namespace {

using namespace asp;

// One alloc/free cycle touches: a pooled buffer (+ its slab-backed control
// block), a PLAN-P tuple, and a raw slab block.
constexpr int kWarmIters = 5'000;
constexpr int kMeasureIters = 30'000;
constexpr int kHandoffEvery = 4;   // every 4th buffer/tuple crosses shards
constexpr int kDrainEvery = 64;    // simulated window-barrier cadence

struct Handoff {
  mem::BufferPool::Handle buf;
  planp::Value tuple;
};

// Mutex-guarded inbox ring: harness-side synchronization only — the pools
// themselves must stay lock-free, which is exactly what the spills gauge
// checks.
struct Inbox {
  std::mutex mu;
  std::vector<Handoff> v;
};

void churn(int iters, Inbox& my_inbox, Inbox& next_inbox) {
  mem::ShardPools& sp = mem::shard();
  std::vector<Handoff> popped;
  for (int i = 0; i < iters; ++i) {
    // Local slab round-trip (between kAlign and kMaxBlock).
    void* blk = sp.slab().allocate(96);
    sp.slab().deallocate(blk, 96);

    mem::BufferPool::Handle buf = sp.buffers().acquire(768);
    buf->assign(600, static_cast<std::uint8_t>(i));
    planp::Value tuple = planp::Value::of_tuple(
        {planp::Value::of_int(i), planp::Value::of_int(i * 2)});

    if (i % kHandoffEvery == 0) {
      // Hand both to the next shard; IT drops them, so the release runs on
      // a non-owner thread and rides our remote-free channels home.
      std::lock_guard<std::mutex> lk(next_inbox.mu);
      next_inbox.v.push_back({std::move(buf), std::move(tuple)});
    }
    // else: dropped here — the owner fast path, straight to the freelist.

    if (i % kHandoffEvery == 1) {
      {
        std::lock_guard<std::mutex> lk(my_inbox.mu);
        popped.swap(my_inbox.v);
      }
      popped.clear();  // releases foreign handles -> remote-free pushes
    }
    if (i % kDrainEvery == kDrainEvery - 1) mem::drain_remote_frees();
  }
}

struct RoundResult {
  double mops = 0;          // aggregate alloc/free cycles per microsecond
  double spills = 0;        // orphan-path ops during the measured phase
  double remote_freed = 0;  // cross-shard frees during the measured phase
  bool reclaimed = false;   // remote_freed == remote_drained after drains
  bool live_balanced = false;
};

RoundResult run_round(int k) {
  std::vector<Inbox> inboxes(static_cast<std::size_t>(k));
  std::barrier warm_churned(k + 1);  // nobody pushes after this
  std::barrier warm_cleaned(k + 1);  // inboxes empty; remote pushes all sent
  std::barrier warmed(k + 1);        // channels drained; steady baseline
  std::barrier measuring(k + 1);
  std::barrier done(k + 1);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(k));
  // Actual pool-set ids, written by each worker before the warm barrier: the
  // preferred id can be taken (this thread keeps its binding from the
  // previous round's sweep), and the final drain must cover the ids the
  // workers really got, or a late cross-shard free stays stranded.
  std::vector<int> ids(static_cast<std::size_t>(k), -1);
  for (int i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      mem::bind_shard(i);
      ids[static_cast<std::size_t>(i)] = mem::shard().id();
      Inbox& mine = inboxes[static_cast<std::size_t>(i)];
      Inbox& next = inboxes[static_cast<std::size_t>((i + 1) % k)];
      churn(kWarmIters, mine, next);
      warm_churned.arrive_and_wait();
      // Release parked foreign handles (their remote-free pushes must land
      // before owners drain), then drain own channels, so the measured phase
      // starts from a clean baseline: empty inboxes, empty channels.
      {
        std::lock_guard<std::mutex> lk(mine.mu);
        mine.v.clear();
      }
      warm_cleaned.arrive_and_wait();
      mem::drain_remote_frees();
      warmed.arrive_and_wait();
      measuring.arrive_and_wait();
      churn(kMeasureIters, mine, next);
      done.arrive_and_wait();
      // Post-measure: release any handles still parked in the inbox, then
      // drain one last time (thread-exit teardown drains again anyway).
      {
        std::lock_guard<std::mutex> lk(mine.mu);
        mine.v.clear();
      }
      mem::drain_remote_frees();
    });
  }

  warm_churned.arrive_and_wait();
  warm_cleaned.arrive_and_wait();
  warmed.arrive_and_wait();
  const mem::PoolTotals before = mem::total_pool_stats();
  auto t0 = std::chrono::steady_clock::now();
  measuring.arrive_and_wait();
  done.arrive_and_wait();
  auto t1 = std::chrono::steady_clock::now();
  const mem::PoolTotals during = mem::total_pool_stats();
  for (std::thread& t : threads) t.join();

  // The joined workers drained their own channels at exit, but a free can
  // land on a channel after its owner's last drain. Reclaim the leftovers by
  // re-binding each pool set the workers actually used — also exercising
  // the rebind path — before checking the books balance.
  for (int id : ids) {
    mem::bind_shard(id);
    mem::drain_remote_frees();
  }

  const mem::PoolTotals after = mem::total_pool_stats();
  RoundResult r;
  const double cycles =
      static_cast<double>(k) * kMeasureIters * 3;  // slab + buffer + tuple
  r.mops = cycles / std::chrono::duration<double>(t1 - t0).count() / 1e6;
  r.spills = static_cast<double>(during.spills - before.spills);
  r.remote_freed = static_cast<double>(during.remote_freed - before.remote_freed);
  r.reclaimed = after.remote_freed == after.remote_drained;
  r.live_balanced = after.live == before.live;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // --shards=N adds a shard count to the default {1, 4, 16} sweep.
  const bench::Options opts = bench::parse_options(argc, argv);
  std::vector<int> points = {1, 4, 16};
  if (std::find(points.begin(), points.end(), opts.shards) == points.end()) {
    points.push_back(opts.shards);
  }

  obs::MetricsRegistry& reg = obs::registry();
  bool ok = true;
  for (int k : points) {
    RoundResult r = run_round(k);
    const std::string p = "bench/mem_shard/shards_" + std::to_string(k) + "/";
    reg.gauge(p + "cycles_mops").set(r.mops);
    reg.gauge(p + "spills").set(r.spills);
    reg.gauge(p + "remote_freed").set(r.remote_freed);
    reg.gauge(p + "reclaim_balanced").set(r.reclaimed ? 1 : 0);
    reg.gauge(p + "live_balanced").set(r.live_balanced ? 1 : 0);
    std::printf("mem_shard: shards_%d %.2f Mops/s aggregate, %g spills, "
                "%g remote frees, reclaim %s, live %s\n",
                k, r.mops, r.spills, r.remote_freed,
                r.reclaimed ? "balanced" : "UNBALANCED",
                r.live_balanced ? "balanced" : "UNBALANCED");
    ok = ok && r.spills == 0 && r.reclaimed && r.live_balanced;
  }

  mem::publish_metrics();
  obs::write_bench_json("mem_shard");
  if (!ok) {
    std::printf("mem_shard: FAILED contention gate (see above)\n");
    return 1;
  }
  return 0;
}
