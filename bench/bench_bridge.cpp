// The cited bridge claim (paper §1/§2.4): "a PLAN-P Ethernet bridge can be
// as efficient as an in-kernel built-in C programmed bridge".
//
// Two measurements: per-frame CPU cost of the bridging decision
// (JIT-specialized ASP vs hand-written C++), and simulated end-to-end
// throughput across the bridge (identical by construction — the network is
// the bottleneck, which is the regime the paper's claim lives in).
#include <benchmark/benchmark.h>

#include <map>

#include "apps/asp_sources.hpp"
#include "bench/harness.hpp"
#include "net/network.hpp"
#include "planp/compile.hpp"
#include "planp/interp.hpp"
#include "planp/jit.hpp"
#include "planp/parser.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace asp;
using planp::Value;

Value make_frame(int i) {
  net::IpHeader h;
  h.src = net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(1 + i % 8));
  h.dst = net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(11 + i % 8));
  return Value::of_tuple(
      {Value::of_ip(h), Value::of_blob(std::vector<std::uint8_t>(256))});
}

void BM_Bridge_AspJit(benchmark::State& state) {
  planp::NullEnv env;
  planp::CheckedProgram checked = planp::typecheck(planp::parse(apps::bridge_asp()));
  planp::CompiledProgram compiled = planp::compile(checked);
  planp::JitEngine engine(compiled, env);
  Value ps = planp::default_value(checked.channels[0]->ps_type);
  Value ss = Value::unit();
  std::vector<Value> frames;
  for (int i = 0; i < 64; ++i) frames.push_back(make_frame(i));
  int i = 0;
  for (auto _ : state) {
    env.arrival = i % 2;
    Value out = engine.run_channel(0, ps, ss, frames[i++ & 63]);
    ps = out.as_tuple()[0];
    env.sends.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bridge_AspJit);

void BM_Bridge_AspInterp(benchmark::State& state) {
  planp::NullEnv env;
  planp::CheckedProgram checked = planp::typecheck(planp::parse(apps::bridge_asp()));
  planp::Interp engine(checked, env);
  Value ps = planp::default_value(checked.channels[0]->ps_type);
  Value ss = Value::unit();
  std::vector<Value> frames;
  for (int i = 0; i < 64; ++i) frames.push_back(make_frame(i));
  int i = 0;
  for (auto _ : state) {
    env.arrival = i % 2;
    Value out = engine.run_channel(0, ps, ss, frames[i++ & 63]);
    ps = out.as_tuple()[0];
    env.sends.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bridge_AspInterp);

void BM_Bridge_BuiltinC(benchmark::State& state) {
  std::map<std::uint32_t, int> table;
  std::vector<net::Packet> frames;
  for (int i = 0; i < 64; ++i) {
    net::Packet p;
    p.ip.src = net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(1 + i % 8));
    p.ip.dst = net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(11 + i % 8));
    p.payload = std::vector<std::uint8_t>(256, 0);
    frames.push_back(std::move(p));
  }
  int i = 0;
  int forwarded = 0;
  for (auto _ : state) {
    const net::Packet& p = frames[i & 63];
    int side = (i++ % 2);
    table[p.ip.src.bits()] = side;
    auto it = table.find(p.ip.dst.bits());
    int dst_side = it != table.end() ? it->second : -1;
    if (dst_side != side) ++forwarded;
    benchmark::DoNotOptimize(forwarded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bridge_BuiltinC);

}  // namespace

int main(int argc, char** argv) {
  asp::bench::parse_and_strip_options(argc, argv);  // shared flags first
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  asp::obs::write_bench_json("bridge");
  return 0;
}
