// In-network caching at scenario scale (ROADMAP item 2): the checked-in
// fat_tree_cache.scn run three ways — no cache, the verified PLAN-P
// edge-cache ASP, and the hand-written native hook — so three claims are
// measured in one sweep:
//
//   offload     origin requests per completed fetch must fall at least 2x
//               with the ASP tier installed (gated: the bench fails without
//               it — a cache that does not offload is miswired);
//   parity      planp and native must agree on every cache verdict (hits,
//               misses, fills and origin counts are compared exactly: both
//               tiers see the identical deterministic request stream);
//   determinism the planp run's metrics JSON must be byte-identical at
//               shards 1/4/16 (same witness as bench_parallel).
//
// Wall-clock per mode is recorded (never gated — host-dependent, marked
// hw_limited like bench_parallel) to show what PLAN-P interpretation costs
// on the edge dispatch path relative to the native hook.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/harness.hpp"
#include "mem/pool.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"

#ifndef ASP_SCENARIO_DIR
#define ASP_SCENARIO_DIR "scenarios"
#endif

namespace {

struct CacheRun {
  double ms = 0;
  std::string json;
  asp::scenario::ScenarioMetrics m;
};

CacheRun run_mode(asp::scenario::ScenarioConfig cfg, const std::string& mode,
                  int shards) {
  cfg.asp_cache = mode;
  asp::scenario::Scenario sc(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  CacheRun out;
  out.m = sc.run(shards);
  out.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  out.json = out.m.to_json();
  return out;
}

double per_completed(const asp::scenario::ScenarioMetrics& m) {
  return m.workload.completed == 0
             ? 0
             : static_cast<double>(m.workload.origin_requests) /
                   static_cast<double>(m.workload.completed);
}

}  // namespace

int main(int argc, char** argv) {
  // --duration=S overrides the .scn run length; --shards=N caps the
  // determinism sweep (serial always runs).
  const asp::bench::Options opts =
      asp::bench::parse_options(argc, argv, {.shards = 16});
  const unsigned hw = std::thread::hardware_concurrency();
  const bool hw_limited = hw <= 1;
  asp::obs::registry().gauge("bench/cache/hardware_concurrency").set(hw);
  asp::obs::registry().gauge("bench/cache/hw_limited").set(hw_limited ? 1 : 0);

  asp::scenario::ScenarioConfig cfg;
  std::string err;
  const std::string path = std::string(ASP_SCENARIO_DIR) + "/fat_tree_cache.scn";
  if (!asp::scenario::load_scn_file(path, cfg, err)) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  if (opts.duration_s > 0) {
    cfg.run.duration = static_cast<asp::net::SimTime>(opts.duration_s * 1e9);
  }

  std::printf("=== In-network caching: %s, %.0f ms sim ===\n\n", cfg.name.c_str(),
              static_cast<double>(cfg.run.duration) / 1e6);
  std::printf("%8s %10s %10s %10s %10s %10s %12s %12s\n", "cache", "wall ms",
              "completed", "origin", "hits", "hit %", "p50 us", "p99 us");

  CacheRun runs[3];
  const char* modes[3] = {"none", "planp", "native"};
  for (int i = 0; i < 3; ++i) {
    CacheRun& r = runs[i];
    r = run_mode(cfg, modes[i], /*shards=*/1);
    const double lookups =
        static_cast<double>(r.m.cache_hits + r.m.cache_misses);
    std::printf("%8s %10.1f %10llu %10llu %10llu %9.1f%% %12.0f %12.0f\n",
                modes[i], r.ms,
                static_cast<unsigned long long>(r.m.workload.completed),
                static_cast<unsigned long long>(r.m.workload.origin_requests),
                static_cast<unsigned long long>(r.m.cache_hits),
                lookups > 0 ? 100.0 * static_cast<double>(r.m.cache_hits) / lookups
                            : 0.0,
                static_cast<double>(r.m.workload.latency_quantile_ns(0.50)) / 1e3,
                static_cast<double>(r.m.workload.latency_quantile_ns(0.99)) / 1e3);
    const std::string p = std::string("bench/cache/") + modes[i] + "/";
    asp::obs::registry().gauge(p + "wall_ms").set(r.ms);
    asp::obs::registry().gauge(p + "completed")
        .set(static_cast<double>(r.m.workload.completed));
    asp::obs::registry().gauge(p + "origin_requests")
        .set(static_cast<double>(r.m.workload.origin_requests));
    asp::obs::registry().gauge(p + "cache_hits")
        .set(static_cast<double>(r.m.cache_hits));
    asp::obs::registry().gauge(p + "latency_p50_ns")
        .set(static_cast<double>(r.m.workload.latency_quantile_ns(0.50)));
    asp::obs::registry().gauge(p + "latency_p99_ns")
        .set(static_cast<double>(r.m.workload.latency_quantile_ns(0.99)));
  }

  bool ok = true;

  // Gate 1: offload. Origin requests per completed fetch must at least halve.
  const double base = per_completed(runs[0].m);
  const double planp = per_completed(runs[1].m);
  const double reduction = planp > 0 ? base / planp : 0;
  std::printf("\norigin offload: %.2f -> %.2f origin/completed (%.1fx reduction)\n",
              base, planp, reduction);
  asp::obs::registry().gauge("bench/cache/offload_factor").set(reduction);
  if (runs[1].m.workload.completed == 0 || reduction < 2.0) {
    std::printf("FAIL: cache tier must cut origin traffic at least 2x\n");
    ok = false;
  }

  // Gate 2: planp/native parity — identical policy over the identical
  // deterministic request stream means identical verdicts, exactly.
  const auto& mp = runs[1].m;
  const auto& mn = runs[2].m;
  const bool parity = mp.cache_hits == mn.cache_hits &&
                      mp.cache_misses == mn.cache_misses &&
                      mp.cache_fills == mn.cache_fills &&
                      mp.workload.origin_requests == mn.workload.origin_requests &&
                      mp.workload.completed == mn.workload.completed;
  std::printf("planp/native parity: %s\n", parity ? "OK" : "FAILED");
  if (!parity) ok = false;
  asp::obs::registry().gauge("bench/cache/parity").set(parity ? 1 : 0);
  if (runs[1].ms > 0) {
    asp::obs::registry()
        .gauge("bench/cache/native_over_planp_wall")
        .set(runs[2].ms / runs[1].ms);
  }

  // Gate 3: shard determinism of the planp run's serialized metrics.
  bool deterministic = true;
  for (int s : {4, 16}) {
    if (s > opts.shards) continue;
    CacheRun r = run_mode(cfg, "planp", s);
    deterministic = deterministic && r.json == runs[1].json;
  }
  std::printf("shard determinism (1/4/16): %s\n",
              deterministic ? "OK (byte-identical JSON)" : "FAILED");
  if (!deterministic) ok = false;
  asp::obs::registry().gauge("bench/cache/deterministic").set(deterministic ? 1 : 0);

  // The whole sweep must stay on the allocator fast path.
  const asp::mem::PoolTotals pools = asp::mem::total_pool_stats();
  asp::obs::registry().gauge("bench/cache/pool_spills")
      .set(static_cast<double>(pools.spills));
  if (pools.spills != 0) {
    std::printf("FAIL: %llu pool spills (expected 0)\n",
                static_cast<unsigned long long>(pools.spills));
    ok = false;
  }

  asp::obs::write_bench_json("cache");
  return ok ? 0 : 1;
}
