// Event-scheduler bench: schedule/cancel/drain mixes shaped like the
// internet-scale scenario workload (DESIGN.md §6h), measuring events/sec and
// heap allocations per executed event through EventQueue::run().
//
// Three mixes, all fully deterministic (fixed seeds, fixed event counts, no
// wall-clock dependence in the workload itself):
//   * timer_heavy    — a population of self-rescheduling workload timers,
//                      each firing also re-arming an RTO-style helper timer
//                      via cancel+schedule (the tcp.cpp pattern). This is the
//                      shape the closed-loop workload synthesizer puts on
//                      every host-bundle queue.
//   * delivery_heavy — a driver timer fanning out same-(sink, key, time)
//                      packet deliveries that drain as PacketBatch groups,
//                      i.e. the forwarding-plane shape of a scenario run.
//   * mixed          — both at once, approximating a full scenario shard.
//
// What CI gates (see .github/workflows/ci.yml, Release job): allocs/event is
// exactly 0 in steady state for every mix — scheduling, cancelling, and
// draining live entirely in the queue's pooled slab after warmup. Events/sec
// and the speedup over the recorded pre-PR binary-heap baseline are written
// to BENCH_event.json for EXPERIMENTS.md, never asserted (they depend on the
// runner).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "mem/pool.hpp"
#include "net/batch.hpp"
#include "net/event.hpp"
#include "net/network.hpp"  // net::ip()
#include "net/packet.hpp"
#include "obs/metrics.hpp"

// --- allocation accounting ----------------------------------------------------
// Same process-wide operator-new replacement as bench_fastpath: every global
// allocation is counted, and the per-event figures difference the counter
// around a measured run() so startup noise can't pollute them.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
void count_alloc() { g_allocs.fetch_add(1, std::memory_order_relaxed); }
std::uint64_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched pair
// after inlining; the replacement really is malloc/free-backed, so the
// warning is a false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  count_alloc();
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  count_alloc();
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void* operator new(std::size_t n, std::align_val_t al) {
  count_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n) == 0) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  count_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n) == 0) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace asp;

// Pre-PR baseline: the std::priority_queue + unordered_set implementation,
// measured on this machine with this exact workload right before the
// calendar-queue rebuild (same build flags, same seeds). Kept in the JSON so
// the speedup gauge compares against a recorded figure, not a guess.
constexpr double kHeapTimerHeavyEps = 5.77e5;
constexpr double kHeapTimerHeavyAllocsPerEvent = 1.0;
constexpr double kHeapDeliveryHeavyEps = 9.6e6;
constexpr double kHeapDeliveryHeavyAllocsPerEvent = 0.0;
constexpr double kHeapMixedEps = 2.0e6;
constexpr double kHeapMixedAllocsPerEvent = 0.3045;

// Deterministic xorshift64: the only randomness source in the workload.
std::uint64_t xorshift(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

// --- timer-heavy --------------------------------------------------------------
// kTimers closed-loop "user" timers: each firing re-arms itself 0.2–2.0 ms
// out (the synthesizer's think-time band) and, like tcp.cpp's arm_timer(),
// cancels its previous RTO helper and schedules a fresh one +5 ms out. The
// helpers almost never fire — they are churned through cancel() — so in
// steady state the queue holds ~kTimers live timers plus a few multiples of
// kTimers cancelled-but-undrained entries, exactly the shape the RTO path
// puts on a busy shard.
struct TimerSim {
  net::EventQueue q;
  struct Timer {
    std::uint64_t rng;
    net::EventId rto = 0;
  };
  std::vector<Timer> timers;

  explicit TimerSim(std::size_t n, std::uint64_t seed) {
    timers.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      timers[i].rng = xorshift(seed + 0x9E3779B97F4A7C15ull * (i + 1));
      // Stagger the initial firings across the first 2 ms.
      q.schedule_at(1 + timers[i].rng % 2'000'000, [this, i] { fire(i); });
    }
  }

  void fire(std::size_t i) {
    Timer& t = timers[i];
    q.cancel(t.rto);  // cancel-before-rearm, as TcpConnection does
    t.rto = q.schedule_in(5'000'000, [] {});
    t.rng = xorshift(t.rng);
    q.schedule_in(200'000 + t.rng % 1'800'000, [this, i] { fire(i); });
  }
};

// --- delivery-heavy -----------------------------------------------------------
// A driver timer fires every 2 µs and fans out kFanout deliveries, grouped
// same-(sink, key, time) in runs of kGroup so the batch drain engages exactly
// as it does behind a scenario router port.
struct CountSink final : net::DeliverySink {
  std::uint64_t packets = 0;
  void deliver_batch(std::uint32_t, net::PacketBatch&& batch) override {
    packets += batch.size();
    batch.clear();  // recycle the boxes, as the runtime's receive path does
  }
};

struct DeliverySim {
  static constexpr std::uint32_t kSinks = 4;
  static constexpr std::uint32_t kGroup = 16;

  net::EventQueue q;
  CountSink sinks[kSinks];
  net::Packet tmpl;
  std::uint32_t fanout;

  explicit DeliverySim(std::uint32_t fanout_groups) : fanout(fanout_groups) {
    tmpl = net::Packet::make_raw(net::ip("10.0.0.1"), net::ip("10.0.0.2"), {});
    q.schedule_at(1, [this] { drive(); });
  }

  void drive() {
    const net::SimTime at = q.now() + 1'000;
    std::uint32_t rank = 0;
    for (std::uint32_t g = 0; g < fanout; ++g) {
      CountSink& s = sinks[g % kSinks];
      for (std::uint32_t j = 0; j < kGroup; ++j) {
        q.schedule_delivery(at, q.now(), rank++, s, g % kSinks,
                            net::packet_boxes().box(tmpl));
      }
    }
    q.schedule_in(2'000, [this] { drive(); });
  }
};

// --- mixed --------------------------------------------------------------------
// Timer churn and delivery fan-out on one queue: the full shard shape.
struct MixedSim {
  TimerSim timers;

  MixedSim(std::size_t n_timers, std::uint64_t seed, std::uint32_t fanout_groups)
      : timers(n_timers, seed), fanout(fanout_groups) {
    tmpl = net::Packet::make_raw(net::ip("10.0.0.1"), net::ip("10.0.0.2"), {});
    timers.q.schedule_at(1, [this] { drive(); });
  }

  void drive() {
    net::EventQueue& q = timers.q;
    const net::SimTime at = q.now() + 1'000;
    std::uint32_t rank = 0;
    for (std::uint32_t g = 0; g < fanout; ++g) {
      for (std::uint32_t j = 0; j < DeliverySim::kGroup; ++j) {
        q.schedule_delivery(at, q.now(), rank++, sink, 0,
                            net::packet_boxes().box(tmpl));
      }
    }
    q.schedule_in(2'000, [this] { drive(); });
  }

  CountSink sink;
  net::Packet tmpl;
  std::uint32_t fanout;
};

// --- measurement --------------------------------------------------------------

struct MixResult {
  double eps = 0;               // executed events per second
  double allocs_per_event = 0;  // heap allocations per executed event
};

template <typename Queue>
MixResult measure(Queue& q, std::uint64_t warm_events, std::uint64_t events) {
  q.run(warm_events);  // grow pools/slabs/containers to steady state
  const std::uint64_t a0 = alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t ran = q.run(events);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t a1 = alloc_count();
  MixResult r;
  r.eps = static_cast<double>(ran) / std::chrono::duration<double>(t1 - t0).count();
  r.allocs_per_event = static_cast<double>(a1 - a0) / static_cast<double>(ran);
  return r;
}

void record(const std::string& mix, const MixResult& r, double base_eps,
            double base_allocs) {
  obs::MetricsRegistry& reg = obs::registry();
  const std::string p = "bench/event/" + mix + "/";
  reg.gauge(p + "events_per_sec").set(r.eps);
  reg.gauge(p + "allocs_per_event").set(r.allocs_per_event);
  reg.gauge(p + "heap_baseline_events_per_sec").set(base_eps);
  reg.gauge(p + "heap_baseline_allocs_per_event").set(base_allocs);
  reg.gauge(p + "speedup_vs_heap").set(base_eps > 0 ? r.eps / base_eps : 0);
  std::printf("event: %-14s %8.3g events/s (%.2fx heap baseline %.3g) at "
              "%.4f allocs/event (heap: %.3f)\n",
              mix.c_str(), r.eps, base_eps > 0 ? r.eps / base_eps : 0, base_eps,
              r.allocs_per_event, base_allocs);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_options(argc, argv);  // shared flag harness (rejects unknowns)

  {
    TimerSim sim(16'384, 1);
    MixResult r = measure(sim.q, 2'000'000, 4'000'000);
    record("timer_heavy", r, kHeapTimerHeavyEps, kHeapTimerHeavyAllocsPerEvent);
  }
  {
    DeliverySim sim(4);  // 4 groups of 16 → 64 deliveries per driver firing
    MixResult r = measure(sim.q, 1'500'000, 2'000'000);
    record("delivery_heavy", r, kHeapDeliveryHeavyEps,
           kHeapDeliveryHeavyAllocsPerEvent);
  }
  {
    MixedSim sim(4'096, 1, 1);  // timer churn + 16 deliveries per 2 µs
    MixResult r = measure(sim.timers.q, 2'000'000, 4'000'000);
    record("mixed", r, kHeapMixedEps, kHeapMixedAllocsPerEvent);
  }

  mem::publish_metrics();
  obs::write_bench_json("event");
  return 0;
}
