// Chaos bench: delivered goodput and deploy convergence under the
// Impairments fault model, exported as bench/chaos/* gauges into
// BENCH_chaos.json.
//
// Everything exported here is sim-derived (event timestamps and per-cause
// frame counts), never wall-clock, so two runs of this binary produce an
// identical BENCH_chaos.json "bench/chaos/*" section — CI runs it twice and
// diffs exactly that. The one wall-clock contaminant is the daemon's
// codegen-time field inside the OK reply: its digit count perturbs the
// reply's wire size by a byte or two, shifting sim arrivals by sub-
// microseconds, so convergence times are exported rounded to whole sim
// milliseconds.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "apps/audio/experiment.hpp"
#include "bench/harness.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "runtime/deploy.hpp"

namespace {

using namespace asp;

const char* kGoodAsp =
    "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n"
    "  (OnRemote(network, p); (ps + 1, ss))";

// --- deploy convergence under loss + partition --------------------------------

struct Convergence {
  double sim_ms = -1;  // callback time; -1 if it never fired (it must)
  int attempts = 0;
  bool ok = false;
};

// One management push over a 10 Mb/s control link with 10% random loss,
// issued into a partition that heals at t=2s — the client must eat at least
// one attempt timeout and converge via retry. Returns when the exactly-once
// callback fires.
Convergence deploy_convergence(std::uint64_t seed) {
  net::Network netw;
  net::Node& admin = netw.add_node("admin");
  net::Node& router = netw.add_router("router");
  auto& link = netw.link(admin, net::ip("10.0.1.1"), router, net::ip("10.0.1.254"),
                         10e6, net::millis(1));
  admin.routes().add_default(0);

  net::Impairments imp;
  imp.loss_rate = 0.10;
  imp.seed = seed;
  link.set_impairments(imp);
  link.set_link_up(false);
  link.schedule_link_state(net::seconds(2), true);

  runtime::AspRuntime rt(router);
  runtime::DeployServer server(rt);
  runtime::Deployer deployer(admin);

  Convergence out;
  runtime::Deployer::Options opts;
  opts.max_attempts = 8;
  deployer.deploy(router.addr(), kGoodAsp,
                  [&](const runtime::DeployResult& r) {
                    out.sim_ms = net::to_seconds(netw.now()) * 1e3;
                    out.attempts = r.attempts;
                    out.ok = r.ok;
                  },
                  opts);
  netw.run_until(netw.now() + net::seconds(120));
  return out;
}

// --- audio goodput under a chaos schedule -------------------------------------

struct AudioChaos {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_down = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;

  bool operator==(const AudioChaos& o) const {
    return frames_sent == o.frames_sent && frames_received == o.frames_received &&
           delivered == o.delivered && dropped_loss == o.dropped_loss &&
           dropped_down == o.dropped_down && duplicated == o.duplicated &&
           corrupted == o.corrupted;
  }
};

// The §3.1 broadcast for 12 s of sim time with the client LAN losing,
// duplicating, corrupting and jittering frames, plus one 2 s partition.
AudioChaos audio_chaos(std::uint64_t seed) {
  apps::AudioExperiment exp(/*adaptation=*/true);
  net::Medium* lan = exp.network().find_medium("client-lan");
  net::Impairments imp;
  imp.loss_rate = 0.05;
  imp.duplicate_rate = 0.02;
  imp.corrupt_rate = 0.01;
  imp.jitter = net::millis(2);
  imp.seed = seed;
  lan->set_impairments(imp);
  lan->schedule_outage(net::seconds(4), net::seconds(6));

  auto result = exp.run(12.0, {{0.0, 0.0}});

  AudioChaos out;
  out.frames_sent = result.frames_sent;
  out.frames_received = result.frames_received;
  out.delivered = lan->delivered_packets();
  out.dropped_loss = lan->dropped_loss();
  out.dropped_down = lan->dropped_down();
  out.duplicated = lan->duplicated_packets();
  out.corrupted = lan->corrupted_packets();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsRegistry& reg = obs::registry();
  // --seed=N shifts the three deploy-convergence seeds to N, N+1, N+2
  // (default 1,2,3 — what CI asserts on).
  const asp::bench::Options opts = asp::bench::parse_options(argc, argv);

  // Gauge names follow the repo-wide hierarchical scheme (DESIGN.md §6b):
  // bench/chaos/<scenario>/<instance>/<metric>.
  for (std::uint64_t seed = opts.seed; seed < opts.seed + 3; ++seed) {
    Convergence c = deploy_convergence(seed);
    std::string p = "bench/chaos/deploy/seed_" + std::to_string(seed) + "/";
    reg.gauge(p + "convergence_ms").set(std::floor(c.sim_ms));
    reg.gauge(p + "attempts").set(c.attempts);
    reg.gauge(p + "ok").set(c.ok ? 1 : 0);
    std::printf("chaos deploy seed %llu: %s after %d attempts at %.0f sim-ms\n",
                static_cast<unsigned long long>(seed), c.ok ? "ok" : "FAILED",
                c.attempts, std::floor(c.sim_ms));
  }

  AudioChaos a = audio_chaos(7);
  reg.gauge("bench/chaos/audio/frames_sent").set(static_cast<double>(a.frames_sent));
  reg.gauge("bench/chaos/audio/frames_received")
      .set(static_cast<double>(a.frames_received));
  reg.gauge("bench/chaos/audio/goodput_ratio")
      .set(a.frames_sent ? static_cast<double>(a.frames_received) / a.frames_sent : 0);
  reg.gauge("bench/chaos/audio/delivered").set(static_cast<double>(a.delivered));
  reg.gauge("bench/chaos/audio/dropped_loss").set(static_cast<double>(a.dropped_loss));
  reg.gauge("bench/chaos/audio/dropped_down").set(static_cast<double>(a.dropped_down));
  reg.gauge("bench/chaos/audio/duplicated").set(static_cast<double>(a.duplicated));
  reg.gauge("bench/chaos/audio/corrupted").set(static_cast<double>(a.corrupted));

  // In-process determinism check: the identical schedule and seed must replay
  // every per-cause count bit-for-bit (the issue's acceptance criterion).
  AudioChaos b = audio_chaos(7);
  reg.gauge("bench/chaos/deterministic_repeat").set(a == b ? 1 : 0);
  std::printf("chaos audio: %llu/%llu frames (%.3f goodput), "
              "loss %llu down %llu dup %llu corrupt %llu, repeat %s\n",
              static_cast<unsigned long long>(a.frames_received),
              static_cast<unsigned long long>(a.frames_sent),
              a.frames_sent ? static_cast<double>(a.frames_received) / a.frames_sent : 0,
              static_cast<unsigned long long>(a.dropped_loss),
              static_cast<unsigned long long>(a.dropped_down),
              static_cast<unsigned long long>(a.duplicated),
              static_cast<unsigned long long>(a.corrupted),
              a == b ? "identical" : "DIVERGED");

  asp::obs::write_bench_json("chaos");
  return 0;
}
