// Parallel executor scaling: wall-clock time for the paper's two big
// workloads — the §3.2 HTTP cluster (Figure 8 topology, 8 client machines =
// 9 islands) and the §3.1 audio broadcast (2 islands) — run serial and at
// 2/4/8 shards, plus the generated 10^4-node fat-tree scenario
// (scenarios/fat_tree_10k.scn, 1445 islands) swept at 4/16/64 shards.
// Every configuration carries a determinism cross-check: each shard count
// must reproduce the serial counters (for the scenario, the byte-exact
// metrics JSON), or the numbers are meaningless.
//
// Speedup depends on the host, so it is recorded, never gated: the windowed
// loop only helps when hardware_concurrency > 1, and a shard count above the
// core count just adds barrier overhead. The JSON marks both conditions —
// `hw_limited` globally (hw <= 1: every speedup gauge is noise) and
// per-row `hw_limited` (shards > hw) — so EXPERIMENTS.md tables can filter.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "apps/audio/experiment.hpp"
#include "apps/http/experiment.hpp"
#include "bench/harness.hpp"
#include "net/exec.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"

#ifndef ASP_SCENARIO_DIR
#define ASP_SCENARIO_DIR "scenarios"
#endif

namespace {

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct HttpRun {
  double ms = 0;
  std::uint64_t completed = 0;
  std::uint64_t windows = 0, cross = 0;
  int shards = 1;
};

HttpRun run_http(int shards, double duration_s) {
  using namespace asp::apps;
  HttpExperiment::Options opts;
  opts.config = HttpConfig::kAspGateway;
  opts.client_machines = 8;
  opts.processes_per_machine = 4;
  opts.trace_accesses = 10'000;
  HttpExperiment exp(opts);

  std::unique_ptr<asp::net::ParallelExecutor> exec;
  if (shards > 1)
    exec = std::make_unique<asp::net::ParallelExecutor>(exp.network(), shards);

  auto t0 = std::chrono::steady_clock::now();
  HttpRunResult r = exp.run(duration_s);
  HttpRun out;
  out.ms = wall_ms(t0);
  out.completed = r.completed;
  if (exec) {
    out.windows = exec->stats().windows;
    out.cross = exec->stats().cross_messages;
    out.shards = exec->shard_count();
  }
  return out;
}

struct AudioRun {
  double ms = 0;
  std::uint64_t received = 0;
  int shards = 1;
};

AudioRun run_audio(int shards) {
  using namespace asp::apps;
  AudioExperiment exp(/*adaptation=*/true);
  std::unique_ptr<asp::net::ParallelExecutor> exec;
  if (shards > 1)
    exec = std::make_unique<asp::net::ParallelExecutor>(exp.network(), shards);
  auto t0 = std::chrono::steady_clock::now();
  AudioRunResult r = exp.run(120.0, AudioExperiment::figure6_schedule());
  AudioRun out;
  out.ms = wall_ms(t0);
  out.received = r.frames_received;
  if (exec) out.shards = exec->shard_count();
  return out;
}

struct ScenarioRun {
  double ms = 0;
  std::string json;
  std::uint64_t delivered = 0;
  std::uint64_t nodes = 0;
  int shards = 1;
  int islands = 0;
};

ScenarioRun run_scenario(const asp::scenario::ScenarioConfig& cfg, int shards) {
  asp::scenario::Scenario sc(cfg);
  auto t0 = std::chrono::steady_clock::now();
  asp::scenario::ScenarioMetrics m = sc.run(shards);
  ScenarioRun out;
  out.ms = wall_ms(t0);
  out.json = m.to_json();
  out.delivered = m.delivered_packets;
  out.nodes = m.nodes;
  out.shards = m.shards;
  out.islands = m.islands;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --shards=N caps the sweeps (serial always runs as the baseline);
  // --duration=S sets the HTTP sim length. The audio run keeps its fixed
  // 120 s schedule — it exists to exercise the 2-island topology — and the
  // scenario sweep keeps the duration from the .scn file.
  const asp::bench::Options opts =
      asp::bench::parse_options(argc, argv, {.shards = 64, .duration_s = 10.0});
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== Parallel executor scaling (hardware threads: %u) ===\n\n", hw);
  asp::obs::registry().gauge("bench/parallel/hardware_concurrency").set(hw);
  // hw <= 1 also covers hardware_concurrency() == 0 ("unknown"). Speedups
  // are still recorded below, but the JSON says they carry no signal.
  const bool hw_limited = hw <= 1;
  asp::obs::registry().gauge("bench/parallel/hw_limited").set(hw_limited ? 1 : 0);
  if (hw_limited) {
    std::printf("NOTE: <= 1 hardware thread: speedup gauges are recorded for "
                "completeness but carry no scaling signal (hw_limited = 1).\n\n");
  }

  std::printf("HTTP cluster, 8 client machines (9 islands), %.0f s sim:\n",
              opts.duration_s);
  std::printf("%8s %10s %10s %10s %10s %10s\n", "shards", "wall ms", "speedup",
              "completed", "windows", "cross msg");
  double base = 0;
  std::uint64_t serial_completed = 0;
  bool deterministic = true;
  for (int s : {1, 2, 4, 8}) {
    if (s > opts.shards && s != 1) continue;
    HttpRun r = run_http(s, opts.duration_s);
    if (s == 1) {
      base = r.ms;
      serial_completed = r.completed;
    }
    deterministic = deterministic && r.completed == serial_completed;
    double speedup = base / r.ms;
    std::printf("%8d %10.1f %9.2fx %10llu %10llu %10llu\n", r.shards, r.ms, speedup,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.windows),
                static_cast<unsigned long long>(r.cross));
    const std::string p = "bench/parallel/http/shards_" + std::to_string(s) + "/";
    asp::obs::registry().gauge(p + "wall_ms").set(r.ms);
    asp::obs::registry().gauge(p + "speedup").set(speedup);
    asp::obs::registry().gauge(p + "completed").set(static_cast<double>(r.completed));
  }

  std::printf("\nAudio broadcast (2 islands), 120 s sim:\n");
  std::printf("%8s %10s %10s %10s\n", "shards", "wall ms", "speedup", "frames rx");
  double abase = 0;
  std::uint64_t serial_rx = 0;
  for (int s : {1, 2}) {
    AudioRun r = run_audio(s);
    if (s == 1) {
      abase = r.ms;
      serial_rx = r.received;
    }
    deterministic = deterministic && r.received == serial_rx;
    double speedup = abase / r.ms;
    std::printf("%8d %10.1f %9.2fx %10llu\n", r.shards, r.ms, speedup,
                static_cast<unsigned long long>(r.received));
    const std::string p = "bench/parallel/audio/shards_" + std::to_string(s) + "/";
    asp::obs::registry().gauge(p + "wall_ms").set(r.ms);
    asp::obs::registry().gauge(p + "speedup").set(speedup);
  }

  // Generated internet-scale scenario: the checked-in 10^4-node fat-tree
  // with 10^5 closed-loop users. Serial is the baseline; the byte-exact
  // metrics JSON is the determinism witness at every shard count.
  asp::scenario::ScenarioConfig cfg;
  std::string scn_err;
  const std::string scn_path =
      std::string(ASP_SCENARIO_DIR) + "/fat_tree_10k.scn";
  if (!asp::scenario::load_scn_file(scn_path, cfg, scn_err)) {
    std::fprintf(stderr, "cannot load %s: %s\n", scn_path.c_str(), scn_err.c_str());
    return 1;
  }
  std::printf("\nGenerated scenario %s, %.0f ms sim:\n", cfg.name.c_str(),
              static_cast<double>(cfg.run.duration) / 1e6);
  std::printf("%8s %10s %10s %10s %10s %12s\n", "shards", "wall ms", "speedup",
              "delivered", "islands", "hw-limited");
  double sbase = 0;
  std::string serial_json;
  for (int s : {1, 4, 16, 64}) {
    if (s > opts.shards && s != 1) continue;
    ScenarioRun r = run_scenario(cfg, s);
    if (s == 1) {
      sbase = r.ms;
      serial_json = r.json;
      asp::obs::registry()
          .gauge("bench/parallel/scenario/nodes")
          .set(static_cast<double>(r.nodes));
    }
    if (r.islands > 0) {
      asp::obs::registry()
          .gauge("bench/parallel/scenario/islands")
          .set(static_cast<double>(r.islands));
    }
    deterministic = deterministic && r.json == serial_json;
    const double speedup = sbase / r.ms;
    const bool row_limited = hw_limited || static_cast<unsigned>(s) > hw;
    std::printf("%8d %10.1f %9.2fx %10llu %10d %12s\n", r.shards, r.ms, speedup,
                static_cast<unsigned long long>(r.delivered), r.islands,
                row_limited ? "yes" : "no");
    const std::string p =
        "bench/parallel/scenario/shards_" + std::to_string(s) + "/";
    asp::obs::registry().gauge(p + "wall_ms").set(r.ms);
    asp::obs::registry().gauge(p + "speedup").set(speedup);
    asp::obs::registry().gauge(p + "delivered").set(static_cast<double>(r.delivered));
    asp::obs::registry().gauge(p + "hw_limited").set(row_limited ? 1 : 0);
  }
  std::printf("\ndeterminism cross-check: %s\n",
              deterministic ? "OK (all shard counts match serial)" : "FAILED");
  asp::obs::registry().gauge("bench/parallel/deterministic").set(deterministic ? 1 : 0);
  asp::obs::write_bench_json("parallel");
  return deterministic ? 0 : 1;
}
