// Figure 3: code generation time (ms) for the paper's PLAN-P programs.
//
// The paper reports 6.1-33.9 ms for 28-161 line programs on a Sun Ultra-1;
// our run-time specializer assembles pre-decoded templates, so absolute times
// are far smaller on modern hardware — the property to reproduce is that
// generation is linear in program size and trivially cheap at download time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/asp_sources.hpp"
#include "bench/harness.hpp"
#include "net/network.hpp"
#include "planp/compile.hpp"
#include "planp/jit.hpp"
#include "planp/parser.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace asp;

struct Prog {
  const char* name;
  std::string source;
};

std::vector<Prog> programs() {
  return {
      {"Audio Broadcasting (router)", apps::audio_router_asp()},
      {"Audio Broadcasting (client)", apps::audio_client_asp()},
      {"Extensible Web Server",
       apps::http_gateway_asp(net::ip("10.0.9.9"), net::ip("131.254.60.81"),
                              net::ip("131.254.60.109"))},
      {"MPEG (monitor)", apps::mpeg_monitor_asp(net::ip("10.0.1.1"))},
      {"MPEG (client)", apps::mpeg_capture_asp(net::ip("192.168.1.1"), 7000, 7010)},
  };
}

void print_table() {
  std::printf("\n=== Figure 3: code generation time for PLAN-P programs ===\n");
  std::printf("%-30s %8s %12s %14s %12s\n", "program", "lines", "bytecode", "templates",
              "codegen(ms)");
  for (const Prog& p : programs()) {
    planp::NullEnv env;
    planp::CheckedProgram checked = planp::typecheck(planp::parse(p.source));
    planp::CompiledProgram compiled = planp::compile(checked);
    planp::JitEngine jit(compiled, env);
    const planp::CodegenStats& s = jit.codegen_stats();
    std::printf("%-30s %8d %12zu %14zu %12.4f\n", p.name, s.source_lines,
                s.input_instrs, s.output_instrs, s.generation_ms);
  }
  std::printf("(paper, Sun Ultra-1 170MHz: 28..161 lines -> 6.1..33.9 ms)\n\n");
}

void BM_CodegenOnly(benchmark::State& state) {
  // Pure specialization cost: bytecode -> patched templates (what happens at
  // download time after the program has been verified).
  auto progs = programs();
  const Prog& p = progs[static_cast<std::size_t>(state.range(0))];
  planp::CheckedProgram checked = planp::typecheck(planp::parse(p.source));
  planp::CompiledProgram compiled = planp::compile(checked);
  for (auto _ : state) {
    for (const auto& b : compiled.channel_bodies) {
      benchmark::DoNotOptimize(planp::specialize_block(b, compiled));
    }
    for (const auto& b : compiled.functions) {
      benchmark::DoNotOptimize(planp::specialize_block(b, compiled));
    }
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_CodegenOnly)->DenseRange(0, 4);

void BM_FullDownloadPipeline(benchmark::State& state) {
  // Everything a router does on download: parse, check, verify-ready
  // compile, specialize.
  auto progs = programs();
  const Prog& p = progs[static_cast<std::size_t>(state.range(0))];
  planp::NullEnv env;
  for (auto _ : state) {
    planp::CheckedProgram checked = planp::typecheck(planp::parse(p.source));
    planp::CompiledProgram compiled = planp::compile(checked);
    planp::JitEngine jit(compiled, env);
    benchmark::DoNotOptimize(&jit);
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_FullDownloadPipeline)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  asp::bench::parse_and_strip_options(argc, argv);  // shared flags first
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  asp::obs::write_bench_json("fig3_codegen");
  return 0;
}
