// Shared CLI options for bench/ and examples/ drivers.
//
// Every driver that takes a shard count, an impairment seed or a run
// duration parses them here instead of growing its own strncmp loop. Flags:
//
//   --shards=N       run on the sharded parallel executor (1 = serial)
//   --seed=N         base RNG seed for impairment/chaos scenarios
//   --duration=SECS  simulated duration (fractional seconds accepted)
//
// Unknown `--` flags are REJECTED with an error (exit 2): a typoed
// `--shard=4` used to silently run a serial bench that reported itself as
// sharded. Two escape hatches keep legitimate flag families flowing:
//   * google-benchmark's own flags (--benchmark_*, --help, --version, --v=)
//     always pass through, so one argv serves both parsers;
//   * a driver with extra flags of its own (e.g. --scenario=) lists their
//     prefixes in `extra_prefixes` and parses them from argv afterwards.
// Positional (non `--`) arguments are never touched.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>

namespace asp::bench {

struct Options {
  int shards = 1;
  std::uint64_t seed = 1;
  double duration_s = 0;  // 0 = keep the driver's scenario default
};

namespace detail {
/// Applies `a` to `o` if it is one of the shared flags; returns whether it
/// was recognized (so the strip variant knows what to remove).
inline bool apply_flag(const char* a, Options& o) {
  if (std::strncmp(a, "--shards=", 9) == 0) {
    o.shards = std::atoi(a + 9);
  } else if (std::strncmp(a, "--seed=", 7) == 0) {
    o.seed = std::strtoull(a + 7, nullptr, 10);
  } else if (std::strncmp(a, "--duration=", 11) == 0) {
    o.duration_s = std::strtod(a + 11, nullptr);
  } else {
    return false;
  }
  return true;
}

/// Flags that belong to another legitimate parser and must flow through.
inline bool passthrough_flag(const char* a,
                             std::initializer_list<const char*> extra_prefixes) {
  if (std::strncmp(a, "--benchmark_", 12) == 0) return true;
  if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "--version") == 0)
    return true;
  if (std::strncmp(a, "--v=", 4) == 0) return true;  // benchmark verbosity
  for (const char* p : extra_prefixes) {
    if (std::strncmp(a, p, std::strlen(p)) == 0) return true;
  }
  return false;
}

[[noreturn]] inline void reject_flag(const char* a) {
  std::fprintf(stderr,
               "error: unknown flag '%s'\n"
               "known flags: --shards=N --seed=N --duration=SECS "
               "(plus --benchmark_* / --help / --version)\n",
               a);
  std::exit(2);
}

inline Options clamp(Options o) {
  if (o.shards < 1) o.shards = 1;
  if (o.duration_s < 0) o.duration_s = 0;
  return o;
}
}  // namespace detail

/// Parses the shared flags out of argv. `defaults` seeds the result, so each
/// driver keeps its own scenario defaults for anything not on the command
/// line. Values are clamped to sane minima (shards >= 1, duration >= 0).
/// Any other `--` flag not covered by `extra_prefixes` or the benchmark
/// passthrough list is an error (exit 2).
inline Options parse_options(int argc, char** argv, Options defaults = {},
                             std::initializer_list<const char*> extra_prefixes = {}) {
  Options o = defaults;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (detail::apply_flag(a, o)) continue;
    if (std::strncmp(a, "--", 2) != 0) continue;  // positional: not ours
    if (!detail::passthrough_flag(a, extra_prefixes)) detail::reject_flag(a);
  }
  return detail::clamp(o);
}

/// parse_options that also REMOVES the recognized flags from argv (compacting
/// it in place and updating argc). google-benchmark binaries call this BEFORE
/// benchmark::Initialize, so one command line carries both flag families and
/// ReportUnrecognizedArguments never trips over ours. Same rejection rule as
/// parse_options: an unknown `--` flag is fatal, not silently forwarded.
inline Options parse_and_strip_options(
    int& argc, char** argv, Options defaults = {},
    std::initializer_list<const char*> extra_prefixes = {}) {
  Options o = defaults;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (detail::apply_flag(a, o)) continue;
    if (std::strncmp(a, "--", 2) == 0 &&
        !detail::passthrough_flag(a, extra_prefixes)) {
      detail::reject_flag(a);
    }
    argv[kept++] = argv[i];
  }
  argv[kept] = nullptr;  // kept <= argc, so the slot exists
  argc = kept;
  return detail::clamp(o);
}

}  // namespace asp::bench
