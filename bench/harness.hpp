// Shared CLI options for bench/ and examples/ drivers.
//
// Every driver that takes a shard count, an impairment seed or a run
// duration parses them here instead of growing its own strncmp loop. Flags:
//
//   --shards=N       run on the sharded parallel executor (1 = serial)
//   --seed=N         base RNG seed for impairment/chaos scenarios
//   --duration=SECS  simulated duration (fractional seconds accepted)
//
// Unknown flags are left alone so google-benchmark binaries can share argv
// with their own flag parser.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace asp::bench {

struct Options {
  int shards = 1;
  std::uint64_t seed = 1;
  double duration_s = 0;  // 0 = keep the driver's scenario default
};

/// Parses the shared flags out of argv. `defaults` seeds the result, so each
/// driver keeps its own scenario defaults for anything not on the command
/// line. Values are clamped to sane minima (shards >= 1, duration >= 0).
inline Options parse_options(int argc, char** argv, Options defaults = {}) {
  Options o = defaults;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--shards=", 9) == 0) {
      o.shards = std::atoi(a + 9);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      o.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--duration=", 11) == 0) {
      o.duration_s = std::strtod(a + 11, nullptr);
    }
  }
  if (o.shards < 1) o.shards = 1;
  if (o.duration_s < 0) o.duration_s = 0;
  return o;
}

}  // namespace asp::bench
