// Shared CLI options for bench/ and examples/ drivers.
//
// Every driver that takes a shard count, an impairment seed or a run
// duration parses them here instead of growing its own strncmp loop. Flags:
//
//   --shards=N       run on the sharded parallel executor (1 = serial)
//   --seed=N         base RNG seed for impairment/chaos scenarios
//   --duration=SECS  simulated duration (fractional seconds accepted)
//
// Unknown flags are left alone so google-benchmark binaries can share argv
// with their own flag parser.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace asp::bench {

struct Options {
  int shards = 1;
  std::uint64_t seed = 1;
  double duration_s = 0;  // 0 = keep the driver's scenario default
};

namespace detail {
/// Applies `a` to `o` if it is one of the shared flags; returns whether it
/// was recognized (so the strip variant knows what to remove).
inline bool apply_flag(const char* a, Options& o) {
  if (std::strncmp(a, "--shards=", 9) == 0) {
    o.shards = std::atoi(a + 9);
  } else if (std::strncmp(a, "--seed=", 7) == 0) {
    o.seed = std::strtoull(a + 7, nullptr, 10);
  } else if (std::strncmp(a, "--duration=", 11) == 0) {
    o.duration_s = std::strtod(a + 11, nullptr);
  } else {
    return false;
  }
  return true;
}

inline Options clamp(Options o) {
  if (o.shards < 1) o.shards = 1;
  if (o.duration_s < 0) o.duration_s = 0;
  return o;
}
}  // namespace detail

/// Parses the shared flags out of argv. `defaults` seeds the result, so each
/// driver keeps its own scenario defaults for anything not on the command
/// line. Values are clamped to sane minima (shards >= 1, duration >= 0).
inline Options parse_options(int argc, char** argv, Options defaults = {}) {
  Options o = defaults;
  for (int i = 1; i < argc; ++i) detail::apply_flag(argv[i], o);
  return detail::clamp(o);
}

/// parse_options that also REMOVES the recognized flags from argv (compacting
/// it in place and updating argc). google-benchmark binaries call this BEFORE
/// benchmark::Initialize, so one command line carries both flag families and
/// ReportUnrecognizedArguments never trips over ours.
inline Options parse_and_strip_options(int& argc, char** argv, Options defaults = {}) {
  Options o = defaults;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (!detail::apply_flag(argv[i], o)) argv[kept++] = argv[i];
  }
  argv[kept] = nullptr;  // kept <= argc, so the slot exists
  argc = kept;
  return detail::clamp(o);
}

}  // namespace asp::bench
