// §2.1: cost of the download-time safety analyses.
//
// The paper argues verification is cheap: termination explores ~r*d*2^d
// abstract states and duplication reaches a fix-point in a handful of
// iterations. This bench measures the full analysis on every ASP and prints
// the explored state counts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/asp_sources.hpp"
#include "bench/harness.hpp"
#include "net/network.hpp"
#include "planp/analysis.hpp"
#include "planp/parser.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace asp;

struct Prog {
  const char* name;
  std::string source;
};

std::vector<Prog> programs() {
  return {
      {"audio-router", apps::audio_router_asp()},
      {"audio-client", apps::audio_client_asp()},
      {"http-gateway",
       apps::http_gateway_asp(net::ip("10.0.9.9"), net::ip("131.254.60.81"),
                              net::ip("131.254.60.109"))},
      {"mpeg-monitor", apps::mpeg_monitor_asp(net::ip("10.0.1.1"))},
      {"mpeg-capture", apps::mpeg_capture_asp(net::ip("192.168.1.1"), 7000, 7010)},
  };
}

void print_table() {
  std::printf("\n=== Verifier: analysis results per ASP ===\n");
  std::printf("%-14s %8s %10s %6s %6s %6s %6s\n", "program", "states", "fixpoint",
              "term", "deliv", "dup", "gate");
  for (const Prog& p : programs()) {
    planp::AnalysisReport r =
        planp::analyze(planp::typecheck(planp::parse(p.source)));
    std::printf("%-14s %8d %10d %6s %6s %6s %6s\n", p.name, r.states_explored,
                r.fixpoint_iterations, r.global_termination ? "yes" : "no",
                r.guaranteed_delivery ? "yes" : "no",
                r.linear_duplication ? "yes" : "no",
                r.accepted() ? "accept" : "auth");
  }
  std::printf("('auth' = rejected by the conservative gate, loadable by "
              "authenticated users, paper 2.1)\n\n");
}

void BM_Analyze(benchmark::State& state) {
  auto progs = programs();
  const Prog& p = progs[static_cast<std::size_t>(state.range(0))];
  planp::CheckedProgram checked = planp::typecheck(planp::parse(p.source));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planp::analyze(checked));
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_Analyze)->DenseRange(0, 4);

void BM_ParseAndCheck(benchmark::State& state) {
  auto progs = programs();
  const Prog& p = progs[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(planp::typecheck(planp::parse(p.source)));
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_ParseAndCheck)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  asp::bench::parse_and_strip_options(argc, argv);  // shared flags first
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  asp::obs::write_bench_json("verifier");
  return 0;
}
