// Zero-copy packet fast path (COW payloads + interned dispatch + threaded
// JIT) over the pooled-buffer/arena memory subsystem: end-to-end packets/sec
// through AspRuntime::inject and heap allocations/packet, across interp vs
// jit vs the jit+COW pass-through path.
//
// Besides the google-benchmark timings, main() publishes median-of-5 gauges
// (bench/fastpath/*) into BENCH_fastpath.json, alongside the pre-PR baseline:
// the same workload measured back-to-back (interleaved, median of 5) against
// a build of the previous commit — fast-path dispatch but malloc-backed
// buffers, heap tuples, and per-call execution frames:
//   tagged dispatch   ~2.15e6 pps at 8 allocs/packet
//   pass-through      ~6.89e7 pps at 0 allocs/packet
//
// Every global operator new is attributed to a subsystem via the thread-local
// mem::AllocTag the pools set around their refill paths, so the per-packet
// figure decomposes into buffer / tuple / frame / event / other.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "mem/pool.hpp"
#include "mem/shard.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "runtime/engine.hpp"

// --- allocation accounting ----------------------------------------------------
// Counts every global operator new in the process, bucketed by the subsystem
// tag active on the allocating thread; the per-packet figures difference the
// counters around a measured loop, so unrelated startup allocations don't
// pollute them.
namespace {
constexpr std::size_t kTagCount =
    static_cast<std::size_t>(asp::mem::AllocTag::kCount);
std::atomic<std::uint64_t> g_allocs_by_tag[kTagCount]{};

void count_alloc() {
  const auto tag = static_cast<std::size_t>(asp::mem::current_alloc_tag());
  g_allocs_by_tag[tag].fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched pair
// after inlining; the replacement really is malloc/free-backed, so the
// warning is a false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  count_alloc();
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  count_alloc();
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Aligned forms too: slab chunk refills use 64 KiB-aligned operator new, and
// they must show up in the per-packet figure like every other allocation.
void* operator new(std::size_t n, std::align_val_t al) {
  count_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n) == 0) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  count_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n) == 0) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace asp;

// Pre-PR numbers, measured on the same machine/flags with the same workload
// (see the header comment). Kept in the JSON so the speedup is computed
// against a recorded baseline rather than a guess.
constexpr double kPreprTaggedPps = 2.15e6;
constexpr double kPreprTaggedAllocsPerPacket = 8.0;
constexpr double kPreprPassthroughPps = 6.89e7;
constexpr double kPreprPassthroughAllocsPerPacket = 0.0;

// PR-4 fast path re-measured on this machine right before this PR: pooled
// buffers and interned dispatch, but per-packet string-keyed channel lookup,
// type-tree packet decode and single-packet inject only. The batched
// match-action pipeline is held to >=2x this figure at batch >= 32.
constexpr double kPr4TaggedJitPps = 2.27e6;

// The alloc budget the memory subsystem is held to on the tagged path; CI
// fails the Release job if the measured figure exceeds it — serial AND at
// every multi-shard point below.
constexpr double kTaggedAllocBudget = 2.0;

// PR-6 single-packet tagged jit figure on this machine; the multi-shard
// speedup gauges are computed against it (recorded, not asserted: CI runners
// time-slice the shard threads on however many cores they have).
constexpr double kPr6TaggedJitPps = 5.06e6;

// Shard counts the shard-local memory subsystem is exercised at. Each point
// runs one thread per shard, each bound to its own mem::ShardPools, and CI
// asserts 0 allocs/packet and 0 pool-mutex spills in steady state at all of
// them (ISSUE 7 acceptance).
constexpr int kShardPoints[] = {1, 4, 16};

// Batch sizes the gauges re-record (bench/fastpath/batch_<n>/...).
constexpr int kBatchSizes[] = {1, 8, 32, 64};

// Display names, indexed by AllocTag.
constexpr const char* kTagName[kTagCount] = {"other", "buffer", "tuple",
                                             "frame", "event"};

const char* kProtocol = R"(
channel ctrl(ps : int, ss : unit, p : ip*udp*char*int) is (drop(); (ps + 1, ss))
channel ctrl(ps : int, ss : unit, p : ip*udp*blob) is (drop(); (ps + 1, ss))
channel stats(ps : int, ss : unit, p : ip*udp*blob) is (drop(); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*udp*blob) is (drop(); (ps, ss))
)";

struct Fixture {
  net::Network network;
  net::Node& node;
  runtime::AspRuntime rt;

  explicit Fixture(planp::EngineKind engine) : node(network.add_node("bench")), rt(node) {
    node.add_interface(net::ip("10.0.0.2"));
    planp::Protocol::Options opts;
    opts.engine = engine;
    rt.install(kProtocol, opts);
  }
};

// A tagged control packet: dispatches to both `ctrl` overloads.
net::Packet tagged_packet() {
  net::Packet p = net::Packet::make_udp(net::ip("10.0.0.1"), net::ip("10.0.0.2"),
                                        9999, 7,
                                        std::vector<std::uint8_t>(1024, 0x5A));
  p.set_channel("ctrl");
  return p;
}

// A pass-through TCP packet: no channel of the protocol matches, so it falls
// through to IP untouched — the pure dispatch+COW overhead path.
net::Packet passthrough_packet() {
  net::TcpHeader h;
  h.sport = 30000;
  h.dport = 80;
  return net::Packet::make_tcp(net::ip("10.0.0.1"), net::ip("10.0.0.2"), h,
                               std::vector<std::uint8_t>(1024, 0xC3));
}

void BM_Fastpath_Tagged_Interp(benchmark::State& state) {
  Fixture f(planp::EngineKind::kInterp);
  net::Packet p = tagged_packet();
  for (auto _ : state) benchmark::DoNotOptimize(f.rt.inject(p));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fastpath_Tagged_Interp);

void BM_Fastpath_Tagged_Jit(benchmark::State& state) {
  Fixture f(planp::EngineKind::kJit);
  net::Packet p = tagged_packet();
  for (auto _ : state) benchmark::DoNotOptimize(f.rt.inject(p));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fastpath_Tagged_Jit);

void BM_Fastpath_PassThrough_JitCow(benchmark::State& state) {
  Fixture f(planp::EngineKind::kJit);
  net::Packet p = passthrough_packet();
  for (auto _ : state) benchmark::DoNotOptimize(f.rt.inject(p));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fastpath_PassThrough_JitCow);

// Batched match-action dispatch: the batch is assembled inside the timed
// region (boxing a copy per packet, as the event layer would), so the figure
// is end-to-end comparable with the single-packet numbers above.
void BM_Fastpath_Tagged_Jit_Batch(benchmark::State& state) {
  Fixture f(planp::EngineKind::kJit);
  net::Packet p = tagged_packet();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    net::PacketBatch batch;
    for (std::size_t j = 0; j < n; ++j) {
      batch.push(net::packet_boxes().box(p));
    }
    benchmark::DoNotOptimize(f.rt.inject_batch(std::move(batch)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fastpath_Tagged_Jit_Batch)->Arg(1)->Arg(8)->Arg(32)->Arg(64);

// --- gauge export -------------------------------------------------------------

double measure_pps(runtime::AspRuntime& rt, const net::Packet& packet, int n) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    net::Packet copy = packet;
    benchmark::DoNotOptimize(rt.inject(std::move(copy)));
  }
  auto t1 = std::chrono::steady_clock::now();
  return n / std::chrono::duration<double>(t1 - t0).count();
}

double measure_batch_pps(runtime::AspRuntime& rt, const net::Packet& packet,
                         std::size_t batch_size, int n_batches) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n_batches; ++i) {
    net::PacketBatch batch;
    for (std::size_t j = 0; j < batch_size; ++j) {
      batch.push(net::packet_boxes().box(packet));
    }
    benchmark::DoNotOptimize(rt.inject_batch(std::move(batch)));
  }
  auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(n_batches) * static_cast<double>(batch_size) /
         std::chrono::duration<double>(t1 - t0).count();
}

struct AllocBreakdown {
  double total = 0;
  double by_tag[kTagCount] = {};
};

AllocBreakdown measure_allocs_per_packet(runtime::AspRuntime& rt,
                                         const net::Packet& packet, int n) {
  std::uint64_t before[kTagCount];
  for (std::size_t t = 0; t < kTagCount; ++t) {
    before[t] = g_allocs_by_tag[t].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < n; ++i) {
    net::Packet copy = packet;
    benchmark::DoNotOptimize(rt.inject(std::move(copy)));
  }
  AllocBreakdown out;
  for (std::size_t t = 0; t < kTagCount; ++t) {
    std::uint64_t after = g_allocs_by_tag[t].load(std::memory_order_relaxed);
    out.by_tag[t] = static_cast<double>(after - before[t]) / n;
    out.total += out.by_tag[t];
  }
  return out;
}

AllocBreakdown measure_batch_allocs_per_packet(runtime::AspRuntime& rt,
                                               const net::Packet& packet,
                                               std::size_t batch_size,
                                               int n_batches) {
  std::uint64_t before[kTagCount];
  for (std::size_t t = 0; t < kTagCount; ++t) {
    before[t] = g_allocs_by_tag[t].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < n_batches; ++i) {
    net::PacketBatch batch;
    for (std::size_t j = 0; j < batch_size; ++j) {
      batch.push(net::packet_boxes().box(packet));
    }
    benchmark::DoNotOptimize(rt.inject_batch(std::move(batch)));
  }
  const double n = static_cast<double>(n_batches) * static_cast<double>(batch_size);
  AllocBreakdown out;
  for (std::size_t t = 0; t < kTagCount; ++t) {
    std::uint64_t after = g_allocs_by_tag[t].load(std::memory_order_relaxed);
    out.by_tag[t] = static_cast<double>(after - before[t]) / n;
    out.total += out.by_tag[t];
  }
  return out;
}

void export_gauges() {
  constexpr int kPackets = 200'000;
  obs::MetricsRegistry& reg = obs::registry();

  Fixture interp(planp::EngineKind::kInterp);
  Fixture jit(planp::EngineKind::kJit);
  net::Packet tagged = tagged_packet();
  net::Packet passthrough = passthrough_packet();

  double interp_pps = obs::record_stabilized_gauge(
      "bench/fastpath/tagged_interp_pps",
      [&] { return measure_pps(interp.rt, tagged, kPackets); });
  double jit_pps = obs::record_stabilized_gauge(
      "bench/fastpath/tagged_jit_pps",
      [&] { return measure_pps(jit.rt, tagged, kPackets); });
  double pass_pps = obs::record_stabilized_gauge(
      "bench/fastpath/passthrough_jit_pps",
      [&] { return measure_pps(jit.rt, passthrough, kPackets); });
  double pass_allocs = obs::record_stabilized_gauge(
      "bench/fastpath/passthrough_allocs_per_packet", [&] {
        return measure_allocs_per_packet(jit.rt, passthrough, kPackets).total;
      });
  // The stabilized gauge wants a scalar, so the total is stabilized and the
  // per-subsystem decomposition comes from one extra measured pass.
  double tagged_allocs = obs::record_stabilized_gauge(
      "bench/fastpath/tagged_allocs_per_packet", [&] {
        return measure_allocs_per_packet(jit.rt, tagged, kPackets).total;
      });
  AllocBreakdown tagged_split = measure_allocs_per_packet(jit.rt, tagged, kPackets);
  for (std::size_t t = 0; t < kTagCount; ++t) {
    reg.gauge(std::string("bench/fastpath/tagged_allocs_") + kTagName[t] +
              "_per_packet")
        .set(tagged_split.by_tag[t]);
  }

  // Batched match-action dispatch across the recorded batch sizes; the
  // batch-32 point carries the alloc split and the headline speedup.
  double batch32_pps = 0;
  for (int bs : kBatchSizes) {
    const std::size_t n = static_cast<std::size_t>(bs);
    double pps = obs::record_stabilized_gauge(
        "bench/fastpath/batch_" + std::to_string(bs) + "/tagged_jit_pps",
        [&] { return measure_batch_pps(jit.rt, tagged, n, kPackets / bs); });
    if (bs == 32) batch32_pps = pps;
  }
  double batch_allocs = obs::record_stabilized_gauge(
      "bench/fastpath/batch_32/tagged_allocs_per_packet", [&] {
        return measure_batch_allocs_per_packet(jit.rt, tagged, 32, kPackets / 32)
            .total;
      });
  AllocBreakdown batch_split =
      measure_batch_allocs_per_packet(jit.rt, tagged, 32, kPackets / 32);
  for (std::size_t t = 0; t < kTagCount; ++t) {
    reg.gauge(std::string("bench/fastpath/batch_32/tagged_allocs_") + kTagName[t] +
              "_per_packet")
        .set(batch_split.by_tag[t]);
  }
  reg.gauge("bench/fastpath/pr4_tagged_jit_pps").set(kPr4TaggedJitPps);
  reg.gauge("bench/fastpath/batch_32/tagged_speedup_vs_pr4")
      .set(batch32_pps / kPr4TaggedJitPps);

  reg.gauge("bench/fastpath/tagged_allocs_budget").set(kTaggedAllocBudget);
  reg.gauge("bench/fastpath/prepr_tagged_pps").set(kPreprTaggedPps);
  reg.gauge("bench/fastpath/prepr_tagged_allocs_per_packet")
      .set(kPreprTaggedAllocsPerPacket);
  reg.gauge("bench/fastpath/prepr_passthrough_pps").set(kPreprPassthroughPps);
  reg.gauge("bench/fastpath/prepr_passthrough_allocs_per_packet")
      .set(kPreprPassthroughAllocsPerPacket);
  reg.gauge("bench/fastpath/tagged_speedup_vs_prepr").set(jit_pps / kPreprTaggedPps);
  reg.gauge("bench/fastpath/passthrough_speedup_vs_prepr")
      .set(pass_pps / kPreprPassthroughPps);
  reg.gauge("bench/fastpath/jit_vs_interp").set(jit_pps / interp_pps);

  std::printf("fastpath: tagged interp %.3g pps, jit %.3g pps (%.2fx pre-PR); "
              "pass-through %.3g pps (%.2fx pre-PR) at %.3f allocs/packet\n",
              interp_pps, jit_pps, jit_pps / kPreprTaggedPps, pass_pps,
              pass_pps / kPreprPassthroughPps, pass_allocs);
  std::printf("fastpath: tagged %.3f allocs/packet (budget %.0f):", tagged_allocs,
              kTaggedAllocBudget);
  for (std::size_t t = 0; t < kTagCount; ++t) {
    std::printf(" %s=%.3f", kTagName[t], tagged_split.by_tag[t]);
  }
  std::printf("\n");
  std::printf("fastpath: batched tagged jit");
  for (int bs : kBatchSizes) {
    std::printf(" batch_%d=%.3g pps", bs,
                reg.gauge("bench/fastpath/batch_" + std::to_string(bs) +
                          "/tagged_jit_pps")
                    .value());
  }
  std::printf(" (batch_32 %.2fx PR-4) at %.3f allocs/packet\n",
              batch32_pps / kPr4TaggedJitPps, batch_allocs);
}

// --- multi-shard gauges -------------------------------------------------------

// The tagged jit path with k threads, each bound to its own shard's pool set
// and driving its own runtime — the shard-local memory subsystem under real
// thread parallelism. All alloc counting is process-wide, so the per-packet
// figure aggregates every thread; the spills delta proves no pool mutex was
// touched during the measured phase. Wall-clock pps aggregates the k threads
// and is recorded, not asserted (it depends on the runner's core count).
void export_shard_gauges(const std::vector<int>& shard_points) {
  constexpr int kWarmPackets = 20'000;
  constexpr int kMeasurePackets = 60'000;
  obs::MetricsRegistry& reg = obs::registry();

  for (int k : shard_points) {
    std::barrier warmed(k + 1);    // every thread finished warmup
    std::barrier measuring(k + 1); // counters snapshotted, start the clock
    std::barrier done(k + 1);      // every thread finished the measured loop
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      threads.emplace_back([&] {
        // Bind to the lowest free pool set (main holds shard 0, so the k
        // workers land on 1..k) and keep every pool touch shard-local.
        mem::bind_shard(-1);
        Fixture f(planp::EngineKind::kJit);
        net::Packet tagged = tagged_packet();
        measure_pps(f.rt, tagged, kWarmPackets);  // warm pools + freelists
        warmed.arrive_and_wait();
        measuring.arrive_and_wait();
        measure_pps(f.rt, tagged, kMeasurePackets);
        done.arrive_and_wait();
        // Fixture teardown happens after `done`, outside the timed region.
      });
    }
    warmed.arrive_and_wait();
    std::uint64_t allocs_before = 0;
    for (const auto& c : g_allocs_by_tag) {
      allocs_before += c.load(std::memory_order_relaxed);
    }
    const mem::PoolTotals before = mem::total_pool_stats();
    auto t0 = std::chrono::steady_clock::now();
    measuring.arrive_and_wait();
    done.arrive_and_wait();
    auto t1 = std::chrono::steady_clock::now();
    std::uint64_t allocs_after = 0;
    for (const auto& c : g_allocs_by_tag) {
      allocs_after += c.load(std::memory_order_relaxed);
    }
    const mem::PoolTotals after = mem::total_pool_stats();
    for (std::thread& t : threads) t.join();

    const double packets = static_cast<double>(k) * kMeasurePackets;
    const double pps = packets / std::chrono::duration<double>(t1 - t0).count();
    const double allocs = static_cast<double>(allocs_after - allocs_before) / packets;
    const double spills = static_cast<double>(after.spills - before.spills);
    const std::string p = "bench/fastpath/shards_" + std::to_string(k) + "/";
    reg.gauge(p + "tagged_jit_pps").set(pps);
    reg.gauge(p + "tagged_allocs_per_packet").set(allocs);
    reg.gauge(p + "spills").set(spills);
    reg.gauge(p + "remote_freed")
        .set(static_cast<double>(after.remote_freed - before.remote_freed));
    reg.gauge(p + "tagged_speedup_vs_pr6").set(pps / kPr6TaggedJitPps);
    std::printf("fastpath: shards_%d tagged jit %.3g pps aggregate "
                "(%.2fx PR-6 serial) at %.4f allocs/packet, %g pool spills\n",
                k, pps, pps / kPr6TaggedJitPps, allocs, spills);
  }
  reg.gauge("bench/fastpath/pr6_tagged_jit_pps").set(kPr6TaggedJitPps);
}

}  // namespace

int main(int argc, char** argv) {
  // Shared harness flags come out of argv first (--shards=N adds a shard
  // point to the measured set); google-benchmark parses the rest.
  const asp::bench::Options opts = asp::bench::parse_and_strip_options(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  export_gauges();
  std::vector<int> shard_points(std::begin(kShardPoints), std::end(kShardPoints));
  if (std::find(shard_points.begin(), shard_points.end(), opts.shards) ==
      shard_points.end()) {
    shard_points.push_back(opts.shards);
  }
  export_shard_gauges(shard_points);
  asp::mem::publish_metrics();
  asp::obs::write_bench_json("fastpath");
  return 0;
}
