// §2.4: per-packet execution cost — interpreter vs bytecode VM vs run-time-
// specialized JIT vs built-in C++.
//
// The paper's claims: "a PLAN-P program compiled with this JIT incurs no
// overhead in comparison to the same program written in C", and the
// interpreter is the slow-but-portable reference the JIT is derived from.
// The shape to reproduce: interpreter >> bytecode > JIT, with the JIT within
// a small constant factor of native C++ (the network-level experiments are
// insensitive to that constant, as Figure 8 shows).
#include <benchmark/benchmark.h>

#include <map>

#include "apps/asp_sources.hpp"
#include "bench/harness.hpp"
#include "net/network.hpp"
#include "planp/compile.hpp"
#include "planp/interp.hpp"
#include "planp/jit.hpp"
#include "planp/parser.hpp"
#include "planp/program.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace asp;
using planp::Value;

const net::Ipv4Addr kVirtual = net::ip("10.0.9.9");
const net::Ipv4Addr kServer0 = net::ip("131.254.60.81");
const net::Ipv4Addr kServer1 = net::ip("131.254.60.109");

Value make_packet(int i) {
  net::IpHeader ip;
  ip.src = net::Ipv4Addr(10, 1, 1, static_cast<std::uint8_t>(1 + i % 16));
  ip.dst = kVirtual;
  ip.proto = net::IpProto::kTcp;
  net::TcpHeader tcp;
  tcp.sport = static_cast<std::uint16_t>(30000 + i % 64);
  tcp.dport = 80;
  tcp.flags = (i % 8 == 0) ? net::tcpflag::kSyn : net::tcpflag::kAck;
  return Value::of_tuple({Value::of_ip(ip), Value::of_tcp(tcp),
                          Value::of_blob(std::vector<std::uint8_t>(64))});
}

struct GatewayFixture {
  GatewayFixture(planp::EngineKind kind) {
    checked = planp::typecheck(
        planp::parse(apps::http_gateway_asp(kVirtual, kServer0, kServer1)));
    switch (kind) {
      case planp::EngineKind::kInterp:
        engine = std::make_unique<planp::Interp>(checked, env);
        break;
      case planp::EngineKind::kBytecode:
        compiled = planp::compile(checked);
        engine = std::make_unique<planp::VmEngine>(compiled, env);
        break;
      case planp::EngineKind::kJit:
        compiled = planp::compile(checked);
        engine = std::make_unique<planp::JitEngine>(compiled, env);
        break;
    }
    ps = Value::of_int(0);
    ss = engine->init_state(0);
    for (int i = 0; i < 256; ++i) packets.push_back(make_packet(i));
  }

  planp::NullEnv env;
  planp::CheckedProgram checked;
  planp::CompiledProgram compiled;
  std::unique_ptr<planp::Engine> engine;
  Value ps, ss;
  std::vector<Value> packets;
};

void run_engine_bench(benchmark::State& state, planp::EngineKind kind) {
  GatewayFixture fx(kind);
  int i = 0;
  for (auto _ : state) {
    Value out = fx.engine->run_channel(0, fx.ps, fx.ss, fx.packets[i++ & 255]);
    benchmark::DoNotOptimize(out);
    fx.ps = out.as_tuple()[0];
    fx.env.sends.clear();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Gateway_Interpreter(benchmark::State& state) {
  run_engine_bench(state, planp::EngineKind::kInterp);
}
BENCHMARK(BM_Gateway_Interpreter);

void BM_Gateway_Bytecode(benchmark::State& state) {
  run_engine_bench(state, planp::EngineKind::kBytecode);
}
BENCHMARK(BM_Gateway_Bytecode);

void BM_Gateway_Jit(benchmark::State& state) {
  run_engine_bench(state, planp::EngineKind::kJit);
}
BENCHMARK(BM_Gateway_Jit);

// The same logic hand-written against the packet structs: the paper's
// "built-in C version".
void BM_Gateway_BuiltinC(benchmark::State& state) {
  std::map<std::pair<std::uint32_t, std::uint16_t>, int> table;
  int counter = 0;
  std::vector<net::Packet> packets;
  for (int i = 0; i < 256; ++i) {
    net::Packet p;
    p.ip.src = net::Ipv4Addr(10, 1, 1, static_cast<std::uint8_t>(1 + i % 16));
    p.ip.dst = kVirtual;
    p.ip.proto = net::IpProto::kTcp;
    p.tcp = net::TcpHeader{static_cast<std::uint16_t>(30000 + i % 64), 80, 0, 0,
                           static_cast<std::uint8_t>(
                               i % 8 == 0 ? net::tcpflag::kSyn : net::tcpflag::kAck),
                           0};
    p.payload = std::vector<std::uint8_t>(64, 0);
    packets.push_back(std::move(p));
  }
  int i = 0;
  for (auto _ : state) {
    net::Packet p = packets[i++ & 255];  // copy, as the engines copy values
    if (p.tcp && p.ip.dst == kVirtual && p.tcp->dport == 80) {
      auto key = std::make_pair(p.ip.src.bits(), p.tcp->sport);
      auto it = table.find(key);
      int con;
      if (it != table.end()) {
        con = it->second;
      } else {
        con = counter % 2;
        table[key] = con;
      }
      if (p.tcp->has(net::tcpflag::kSyn)) ++counter;
      p.ip.dst = con == 0 ? kServer0 : kServer1;
    } else if (p.tcp && p.tcp->sport == 80 &&
               (p.ip.src == kServer0 || p.ip.src == kServer1)) {
      p.ip.src = kVirtual;
    }
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Gateway_BuiltinC);

// Audio degradation path: dominated by the transcoding primitive, where JIT
// and C literally share the kernel — the paper's "no traffic rate
// degradation" case.
void BM_Audio_Jit(benchmark::State& state) {
  planp::NullEnv env;
  env.load_percent = 95;
  planp::CheckedProgram checked =
      planp::typecheck(planp::parse(apps::audio_router_asp()));
  planp::CompiledProgram compiled = planp::compile(checked);
  planp::JitEngine engine(compiled, env);
  net::IpHeader ip;
  ip.src = net::ip("10.0.1.1");
  ip.dst = net::ip("224.1.1.1");
  ip.proto = net::IpProto::kUdp;
  Value pkt = Value::of_tuple({Value::of_ip(ip),
                               Value::of_udp(net::UdpHeader{5004, 5004}),
                               Value::of_blob(std::vector<std::uint8_t>(440))});
  Value ps = Value::of_int(0);
  Value ss = Value::unit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_channel(0, ps, ss, pkt));
    env.sends.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Audio_Jit);

void BM_Audio_BuiltinC(benchmark::State& state) {
  std::vector<std::uint8_t> pcm(440);
  for (auto _ : state) {
    auto out = planp::audio_16_to_8(planp::audio_stereo_to_mono16(pcm));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Audio_BuiltinC);

}  // namespace

int main(int argc, char** argv) {
  asp::bench::parse_and_strip_options(argc, argv);  // shared flags first
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  asp::obs::write_bench_json("jit_vs_c");
  return 0;
}
