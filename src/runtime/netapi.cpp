#include "runtime/netapi.hpp"

namespace asp::runtime {

using planp::Type;
using planp::TypePtr;
using planp::Value;

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v));
}
std::uint16_t get16(const std::uint8_t* b) {
  return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
}
std::uint32_t get32(const std::uint8_t* b) {
  return (static_cast<std::uint32_t>(get16(b)) << 16) | get16(b + 2);
}

/// Serializes the transport header in front of the payload: an `ip*blob`
/// channel sees "everything after the IP header" as the blob, so re-emitting
/// the blob reconstructs the whole packet (e.g. the learning bridge).
std::vector<std::uint8_t> raw_rest(const asp::net::Packet& p) {
  std::vector<std::uint8_t> out;
  if (p.tcp) {
    out.reserve(asp::net::TcpHeader::kWireSize + p.payload.size());
    put16(out, p.tcp->sport);
    put16(out, p.tcp->dport);
    put32(out, p.tcp->seq);
    put32(out, p.tcp->ack);
    out.push_back(p.tcp->flags);
    out.push_back(0);  // header-length/reserved placeholder
    put16(out, p.tcp->wnd);
    put32(out, 0);  // checksum + urgent placeholder
  } else if (p.udp) {
    out.reserve(asp::net::UdpHeader::kWireSize + p.payload.size());
    put16(out, p.udp->sport);
    put16(out, p.udp->dport);
    put16(out, static_cast<std::uint16_t>(p.payload.size() + 8));
    put16(out, 0);  // checksum placeholder
  }
  out.insert(out.end(), p.payload.begin(), p.payload.end());
  return out;
}

/// Inverse of raw_rest: splits the transport header back out of the blob,
/// guided by ip.proto.
void split_rest(asp::net::Packet& p, std::vector<std::uint8_t> rest) {
  if (p.ip.proto == asp::net::IpProto::kTcp &&
      rest.size() >= asp::net::TcpHeader::kWireSize) {
    asp::net::TcpHeader h;
    h.sport = get16(rest.data());
    h.dport = get16(rest.data() + 2);
    h.seq = get32(rest.data() + 4);
    h.ack = get32(rest.data() + 8);
    h.flags = rest[12];
    h.wnd = get16(rest.data() + 14);
    p.tcp = h;
    rest.erase(rest.begin(), rest.begin() + asp::net::TcpHeader::kWireSize);
    p.payload = std::move(rest);
    return;
  }
  if (p.ip.proto == asp::net::IpProto::kUdp &&
      rest.size() >= asp::net::UdpHeader::kWireSize) {
    p.udp = asp::net::UdpHeader{get16(rest.data()), get16(rest.data() + 2)};
    rest.erase(rest.begin(), rest.begin() + asp::net::UdpHeader::kWireSize);
    p.payload = std::move(rest);
    return;
  }
  p.ip.proto = asp::net::IpProto::kRaw;
  p.payload = std::move(rest);
}

}  // namespace

std::optional<Value> decode_packet(const asp::net::Packet& p, const TypePtr& type) {
  const auto& parts = type->args();
  // Pooled tuple storage: in steady state the vector (and its capacity) comes
  // off the tuple pool's freelist, so a decode allocates nothing.
  planp::TupleRep fields = Value::make_tuple_storage(parts.size());

  std::size_t i = 0;
  fields->push_back(Value::of_ip(p.ip));
  ++i;

  bool transport_in_blob = false;
  if (i < parts.size() && parts[i]->is(Type::Kind::kTcp)) {
    if (p.ip.proto != asp::net::IpProto::kTcp || !p.tcp) return std::nullopt;
    fields->push_back(Value::of_tcp(*p.tcp));
    ++i;
  } else if (i < parts.size() && parts[i]->is(Type::Kind::kUdp)) {
    if (p.ip.proto != asp::net::IpProto::kUdp || !p.udp) return std::nullopt;
    fields->push_back(Value::of_udp(*p.udp));
    ++i;
  } else {
    // Header-only pattern (`ip*...`): accepts any protocol; the transport
    // header rides inside the blob so nothing is lost on re-emission.
    transport_in_blob = p.tcp.has_value() || p.udp.has_value();
  }

  // Payload bytes the scalar fields decode from: for header-only patterns the
  // transport header rides at the front, so nothing is lost on re-emission.
  // Only that case materializes bytes; otherwise we read the packet's shared
  // payload buffer in place.
  std::vector<std::uint8_t> scratch;
  if (transport_in_blob) scratch = raw_rest(p);
  const std::vector<std::uint8_t>& rest =
      transport_in_blob ? scratch : p.payload.bytes();

  std::size_t off = 0;
  for (; i < parts.size(); ++i) {
    switch (parts[i]->kind()) {
      case Type::Kind::kChar:
        if (off + 1 > rest.size()) return std::nullopt;
        fields->push_back(Value::of_char(static_cast<char>(rest[off])));
        off += 1;
        break;
      case Type::Kind::kBool:
        if (off + 1 > rest.size()) return std::nullopt;
        if (rest[off] > 1) return std::nullopt;  // strict bool encoding
        fields->push_back(Value::of_bool(rest[off] != 0));
        off += 1;
        break;
      case Type::Kind::kInt: {
        if (off + 4 > rest.size()) return std::nullopt;
        std::int32_t v = static_cast<std::int32_t>(
            (std::uint32_t{rest[off]} << 24) | (std::uint32_t{rest[off + 1]} << 16) |
            (std::uint32_t{rest[off + 2]} << 8) | rest[off + 3]);
        fields->push_back(Value::of_int(v));
        off += 4;
        break;
      }
      case Type::Kind::kBlob: {
        // The blob is the last field (is_packet_type guarantees it). A blob
        // spanning the whole payload aliases the packet buffer: no copy, and
        // every matching channel overload shares the same bytes.
        const std::size_t blob_off = off;
        off = rest.size();
        if (!transport_in_blob && blob_off == 0) {
          fields->push_back(Value::of_blob_shared(p.payload.buffer()));
        } else if (transport_in_blob && blob_off == 0) {
          fields->push_back(Value::of_blob(std::move(scratch)));
        } else {
          fields->push_back(Value::of_blob(std::vector<std::uint8_t>(
              rest.begin() + static_cast<std::ptrdiff_t>(blob_off), rest.end())));
        }
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return Value::of_tuple_rep(std::move(fields));
}

DecodePlan compile_decode_plan(const TypePtr& type) {
  DecodePlan plan;
  const auto& parts = type->args();
  plan.arity = static_cast<std::uint16_t>(parts.size());
  std::size_t i = 1;  // parts[0] is the ip header
  if (i < parts.size() && parts[i]->is(Type::Kind::kTcp)) {
    plan.transport = DecodePlan::Transport::kTcp;
    ++i;
  } else if (i < parts.size() && parts[i]->is(Type::Kind::kUdp)) {
    plan.transport = DecodePlan::Transport::kUdp;
    ++i;
  }
  plan.valid = true;
  for (; i < parts.size(); ++i) {
    switch (parts[i]->kind()) {
      case Type::Kind::kChar:
        plan.fields.push_back(DecodePlan::FieldOp::kChar);
        plan.fixed_bytes += 1;
        break;
      case Type::Kind::kBool:
        plan.fields.push_back(DecodePlan::FieldOp::kBool);
        plan.bool_offsets.push_back(plan.fixed_bytes);
        plan.fixed_bytes += 1;
        break;
      case Type::Kind::kInt:
        plan.fields.push_back(DecodePlan::FieldOp::kInt);
        plan.fixed_bytes += 4;
        break;
      case Type::Kind::kBlob:
        plan.fields.push_back(DecodePlan::FieldOp::kBlob);
        plan.has_blob = true;
        break;
      default:
        // A shape decode_packet would always reject; the channel can never
        // match, which match_packet reports without per-packet work.
        plan.valid = false;
        return plan;
    }
  }
  return plan;
}

bool match_packet(const asp::net::Packet& p, const DecodePlan& plan) {
  if (!plan.valid) return false;
  bool transport_in_blob = false;
  switch (plan.transport) {
    case DecodePlan::Transport::kTcp:
      if (p.ip.proto != asp::net::IpProto::kTcp || !p.tcp) return false;
      break;
    case DecodePlan::Transport::kUdp:
      if (p.ip.proto != asp::net::IpProto::kUdp || !p.udp) return false;
      break;
    case DecodePlan::Transport::kAny:
      transport_in_blob = p.tcp.has_value() || p.udp.has_value();
      break;
  }
  std::size_t hdr = 0;
  if (transport_in_blob) {
    hdr = p.tcp ? asp::net::TcpHeader::kWireSize : asp::net::UdpHeader::kWireSize;
  }
  if (plan.fixed_bytes > hdr + p.payload.size()) return false;
  if (!plan.bool_offsets.empty()) {
    // Strict bool encoding is part of matching. Offsets inside a serialized
    // transport header are rare (header-only pattern with scalar fields);
    // that slow path materializes the bytes exactly like decode would.
    if (hdr == 0) {
      const auto& bytes = p.payload.bytes();
      for (std::uint32_t off : plan.bool_offsets) {
        if (bytes[off] > 1) return false;
      }
    } else {
      std::vector<std::uint8_t> rest = raw_rest(p);
      for (std::uint32_t off : plan.bool_offsets) {
        if (rest[off] > 1) return false;
      }
    }
  }
  return true;
}

std::optional<Value> decode_packet(const asp::net::Packet& p, const DecodePlan& plan,
                                   planp::TupleRep* reuse) {
  if (!plan.valid) return std::nullopt;
  bool transport_in_blob = false;
  switch (plan.transport) {
    case DecodePlan::Transport::kTcp:
      if (p.ip.proto != asp::net::IpProto::kTcp || !p.tcp) return std::nullopt;
      break;
    case DecodePlan::Transport::kUdp:
      if (p.ip.proto != asp::net::IpProto::kUdp || !p.udp) return std::nullopt;
      break;
    case DecodePlan::Transport::kAny:
      transport_in_blob = p.tcp.has_value() || p.udp.has_value();
      break;
  }

  // Steady-state storage reuse: when the caller's scratch tuple is uniquely
  // owned (the previous packet's decoded value has died), refill it in place;
  // otherwise fall back to pooled storage (e.g. the handler kept the tuple).
  planp::TupleRep fields;
  if (reuse != nullptr && *reuse != nullptr && reuse->use_count() == 1 &&
      (*reuse)->capacity() >= plan.arity) {
    fields = *reuse;
    fields->clear();
  } else {
    fields = Value::make_tuple_storage(plan.arity);
    if (reuse != nullptr) *reuse = fields;
  }

  fields->push_back(Value::of_ip(p.ip));
  if (plan.transport == DecodePlan::Transport::kTcp) {
    fields->push_back(Value::of_tcp(*p.tcp));
  } else if (plan.transport == DecodePlan::Transport::kUdp) {
    fields->push_back(Value::of_udp(*p.udp));
  }

  std::vector<std::uint8_t> scratch;
  if (transport_in_blob) scratch = raw_rest(p);
  const std::vector<std::uint8_t>& rest =
      transport_in_blob ? scratch : p.payload.bytes();

  std::size_t off = 0;
  for (DecodePlan::FieldOp op : plan.fields) {
    switch (op) {
      case DecodePlan::FieldOp::kChar:
        if (off + 1 > rest.size()) return std::nullopt;
        fields->push_back(Value::of_char(static_cast<char>(rest[off])));
        off += 1;
        break;
      case DecodePlan::FieldOp::kBool:
        if (off + 1 > rest.size()) return std::nullopt;
        if (rest[off] > 1) return std::nullopt;  // strict bool encoding
        fields->push_back(Value::of_bool(rest[off] != 0));
        off += 1;
        break;
      case DecodePlan::FieldOp::kInt: {
        if (off + 4 > rest.size()) return std::nullopt;
        std::int32_t v = static_cast<std::int32_t>(
            (std::uint32_t{rest[off]} << 24) | (std::uint32_t{rest[off + 1]} << 16) |
            (std::uint32_t{rest[off + 2]} << 8) | rest[off + 3]);
        fields->push_back(Value::of_int(v));
        off += 4;
        break;
      }
      case DecodePlan::FieldOp::kBlob: {
        const std::size_t blob_off = off;
        off = rest.size();
        if (!transport_in_blob && blob_off == 0) {
          fields->push_back(Value::of_blob_shared(p.payload.buffer()));
        } else if (transport_in_blob && blob_off == 0) {
          fields->push_back(Value::of_blob(std::move(scratch)));
        } else {
          fields->push_back(Value::of_blob(std::vector<std::uint8_t>(
              rest.begin() + static_cast<std::ptrdiff_t>(blob_off), rest.end())));
        }
        break;
      }
    }
  }
  return Value::of_tuple_rep(std::move(fields));
}

namespace {

/// Shared body of the encode_packet overloads: everything except the channel
/// tagging.
asp::net::Packet encode_packet_core(const Value& v) {
  const auto& fields = v.as_tuple();
  asp::net::Packet p;
  p.ip = fields[0].as_ip();

  std::size_t i = 1;
  if (i < fields.size()) {
    if (const auto* tcp = std::get_if<asp::net::TcpHeader>(&fields[i].rep())) {
      p.tcp = *tcp;
      p.ip.proto = asp::net::IpProto::kTcp;
      ++i;
    } else if (const auto* udp = std::get_if<asp::net::UdpHeader>(&fields[i].rep())) {
      p.udp = *udp;
      p.ip.proto = asp::net::IpProto::kUdp;
      ++i;
    }
  }

  // Header-only values (ip*blob and friends) carry the transport header at
  // the front of the bytes; it must be split back out so the packet stays
  // whole.
  const bool needs_split =
      !p.tcp && !p.udp && p.ip.proto != asp::net::IpProto::kRaw;

  // Fast path: the whole payload is one blob and needs no splitting — alias
  // the blob's buffer instead of copying it (the common re-emission shape:
  // OnRemote(chan, (hdr..., #n p)) forwards the arriving bytes untouched).
  if (i + 1 == fields.size() && !needs_split) {
    if (const auto* blob = std::get_if<planp::Blob>(&fields[i].rep())) {
      p.payload = asp::net::Payload(*blob);
      return p;
    }
  }

  std::vector<std::uint8_t> out;
  for (; i < fields.size(); ++i) {
    const auto& rep = fields[i].rep();
    if (const auto* c = std::get_if<char>(&rep)) {
      out.push_back(static_cast<std::uint8_t>(*c));
    } else if (const auto* b = std::get_if<bool>(&rep)) {
      out.push_back(*b ? 1 : 0);
    } else if (const auto* n = std::get_if<std::int64_t>(&rep)) {
      std::uint32_t u = static_cast<std::uint32_t>(*n);
      out.push_back(static_cast<std::uint8_t>(u >> 24));
      out.push_back(static_cast<std::uint8_t>(u >> 16));
      out.push_back(static_cast<std::uint8_t>(u >> 8));
      out.push_back(static_cast<std::uint8_t>(u));
    } else if (const auto* blob = std::get_if<planp::Blob>(&rep)) {
      out.insert(out.end(), (*blob)->begin(), (*blob)->end());
    } else {
      throw planp::EvalBug{"encode_packet: unsupported payload field"};
    }
  }
  if (needs_split) {
    split_rest(p, std::move(out));
  } else {
    p.payload = std::move(out);
  }
  return p;
}

}  // namespace

asp::net::Packet encode_packet(const Value& v, const std::string& channel_tag) {
  asp::net::Packet p = encode_packet_core(v);
  p.set_channel(channel_tag);
  return p;
}

asp::net::Packet encode_packet(const Value& v, std::uint32_t chan_tag) {
  asp::net::Packet p = encode_packet_core(v);
  if (chan_tag != 0) {
    // Both the name string and the id travel with the packet (the name is
    // the wire representation; the id is what dispatch keys on).
    p.channel = asp::net::ChannelTags::name_of(chan_tag);
    p.channel_tag = chan_tag;
  }
  return p;
}

}  // namespace asp::runtime
