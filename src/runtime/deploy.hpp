// ASP deployment over the network itself (paper §5: "protocol management
// functionalities, such as ASP deployment").
//
// A management station pushes PLAN-P source to a node's deployment daemon
// over TCP. The daemon runs the ordinary download pipeline — including the
// verification gate — and reports the outcome. Unverifiable protocols need
// the authenticated flag (paper §2.1's provision for privileged users).
//
// Wire format, version 1 (client -> server):
//   "DEPLOY/1 <engine> <auth> <source-bytes> <fnv64-hex>\n" followed by the
// source text. The trailing header field is an FNV-1a 64 checksum of the
// body: our simulated TCP carries no checksum of its own, so an in-flight
// bit flip would otherwise hand the verifier a silently different program.
// Reply:
//   "OK <channels> <codegen-us>\n"  or  "ERR <reason>\n".
// A header carrying any other version token draws "ERR bad-version expected
// DEPLOY/1"; an unknown engine token draws "ERR bad-engine <token>"; a body
// that fails its checksum draws "ERR bad-checksum" — old/new/corrupted
// stations fail loudly instead of misparsing.
//
// Reliability: the network between station and daemon is exactly the
// degraded network ASPs exist for, so the client side retries. Each attempt
// is bounded by `DeployOptions::attempt_timeout`; failed attempts back off
// exponentially up to `max_attempts`, and the callback fires *exactly once*
// — success or terminal error, never zero times, even against a silent or
// partitioned daemon. Only "reject:"-prefixed errors are terminal: the
// daemon sends that prefix for verdicts computed over a checksum-verified
// body (verification/compile failures), which are provably about the
// program. Every other failure — timeouts, dead connections, and all
// protocol-level errors — could be a single corrupted frame's doing and is
// retried. The daemon dedups retried installs by content hash (a retry
// whose predecessor actually installed just replays the cached OK), so
// convergence never double-installs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/tcp.hpp"
#include "runtime/engine.hpp"

namespace asp::runtime {

inline constexpr std::uint16_t kDeployPort = 9199;

/// The wire header tag this build speaks (protocol version 1).
inline constexpr const char* kDeployHeaderTag = "DEPLOY/1";

/// FNV-1a 64 over the DEPLOY body; carried hex in the header's last field.
std::uint64_t deploy_checksum(std::string_view body);

/// Per-node deployment daemon. Owns nothing but the listener; installs into
/// the node's AspRuntime.
class DeployServer {
 public:
  DeployServer(AspRuntime& runtime, std::uint16_t port = kDeployPort);

  int deployments() const { return deployments_; }
  int rejections() const { return rejections_; }
  /// Retried installs answered from the content-hash cache (no reinstall).
  int dedups() const { return dedups_; }

 private:
  struct Session {
    std::string buffer;
    bool header_seen = false;
    bool done = false;  // reply sent; trailing bytes must not re-enter finish
    planp::EngineKind engine = planp::EngineKind::kJit;
    bool authenticated = false;
    std::size_t expect = 0;
    std::uint64_t checksum = 0;
  };

  void on_data(std::shared_ptr<asp::net::TcpConnection> conn,
               std::shared_ptr<Session> s);
  void finish(std::shared_ptr<asp::net::TcpConnection> conn, const Session& s);
  void reject(std::shared_ptr<asp::net::TcpConnection> conn,
              const std::string& reason);

  AspRuntime& runtime_;
  int deployments_ = 0;
  int rejections_ = 0;
  int dedups_ = 0;
  // Content hash of the currently installed deployment and the OK reply it
  // drew, for idempotent retries.
  std::uint64_t installed_key_ = 0;
  std::string cached_reply_;
  // Instruments in the global registry (node/<name>/deploy/*).
  obs::Counter* m_deployments_ = nullptr;
  obs::Counter* m_rejections_ = nullptr;
  obs::Counter* m_dedups_ = nullptr;
  obs::Counter* m_rx_bytes_ = nullptr;
};

/// Structured outcome of one deployment attempt, parsed from the wire reply.
struct DeployResult {
  bool ok = false;
  int channels = 0;       // channels the installed protocol declares (on ok)
  double codegen_us = 0;  // daemon-side specialization time (on ok)
  std::string error;      // reason when !ok ("bad-version ...", "verification:
                          // ...", "connection closed", "timeout", ...); empty
                          // on success
  int attempts = 1;       // attempts the client made before this outcome

  /// Parses one reply line ("OK <channels> <codegen-us>" / "ERR <reason>").
  /// Anything unparseable yields ok=false with the raw line as the error.
  static DeployResult from_reply(const std::string& line);
};

/// Knobs for one deployment push (namespace-scope so it can default-construct
/// in Deployer::deploy's default argument; spelled Deployer::Options at call
/// sites).
struct DeployOptions {
  planp::EngineKind engine = planp::EngineKind::kJit;
  /// Authenticated deployments may install gate-rejected protocols.
  bool authenticated = false;
  std::uint16_t port = kDeployPort;

  /// Per-attempt deadline: an attempt that has not produced a reply by then
  /// is aborted and retried (a silent daemon must not hang the station).
  asp::net::SimTime attempt_timeout = asp::net::seconds(2);
  /// Total attempts before the terminal error callback (>= 1).
  int max_attempts = 5;
  /// Delay before the first retry; doubles on each further retry.
  asp::net::SimTime initial_backoff = asp::net::millis(250);
};

/// Management-station side: pushes an ASP to a remote daemon.
class Deployer {
 public:
  explicit Deployer(asp::net::Node& node) : node_(node) {}

  using Options = DeployOptions;
  using Callback = std::function<void(const DeployResult&)>;

  /// Asynchronously deploys `source` to `target`. `cb` fires exactly once:
  /// when the daemon replies with a definitive outcome, or — after timeouts,
  /// dead connections and corrupted exchanges have exhausted the retry
  /// budget — with a terminal error.
  void deploy(asp::net::Ipv4Addr target, const std::string& source, Callback cb,
              Options opts = Options());

 private:
  asp::net::Node& node_;
};

}  // namespace asp::runtime
