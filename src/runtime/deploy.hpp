// ASP deployment over the network itself (paper §5: "protocol management
// functionalities, such as ASP deployment").
//
// A management station pushes PLAN-P source to a node's deployment daemon
// over TCP. The daemon runs the ordinary download pipeline — including the
// verification gate — and reports the outcome. Unverifiable protocols need
// the authenticated flag (paper §2.1's provision for privileged users).
//
// Wire format, version 1 (client -> server):
//   "DEPLOY/1 <engine> <auth> <source-bytes>\n" followed by the source text.
// Reply:
//   "OK <channels> <codegen-us>\n"  or  "ERR <reason>\n".
// A header carrying any other version token draws "ERR bad-version expected
// DEPLOY/1" so old/new stations fail loudly instead of misparsing.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "net/tcp.hpp"
#include "runtime/engine.hpp"

namespace asp::runtime {

inline constexpr std::uint16_t kDeployPort = 9199;

/// The wire header tag this build speaks (protocol version 1).
inline constexpr const char* kDeployHeaderTag = "DEPLOY/1";

/// Per-node deployment daemon. Owns nothing but the listener; installs into
/// the node's AspRuntime.
class DeployServer {
 public:
  DeployServer(AspRuntime& runtime, std::uint16_t port = kDeployPort);

  int deployments() const { return deployments_; }
  int rejections() const { return rejections_; }

 private:
  struct Session {
    std::string buffer;
    bool header_seen = false;
    planp::EngineKind engine = planp::EngineKind::kJit;
    bool authenticated = false;
    std::size_t expect = 0;
  };

  void on_data(std::shared_ptr<asp::net::TcpConnection> conn,
               std::shared_ptr<Session> s);
  void finish(std::shared_ptr<asp::net::TcpConnection> conn, const Session& s);
  void reject(std::shared_ptr<asp::net::TcpConnection> conn,
              const std::string& reason);

  AspRuntime& runtime_;
  int deployments_ = 0;
  int rejections_ = 0;
  // Instruments in the global registry (node/<name>/deploy/*).
  obs::Counter* m_deployments_ = nullptr;
  obs::Counter* m_rejections_ = nullptr;
  obs::Counter* m_rx_bytes_ = nullptr;
};

/// Structured outcome of one deployment attempt, parsed from the wire reply.
struct DeployResult {
  bool ok = false;
  int channels = 0;       // channels the installed protocol declares (on ok)
  double codegen_us = 0;  // daemon-side specialization time (on ok)
  std::string error;      // reason when !ok ("bad-version ...", "verification:
                          // ...", "connection closed", ...); empty on success

  /// Parses one reply line ("OK <channels> <codegen-us>" / "ERR <reason>").
  /// Anything unparseable yields ok=false with the raw line as the error.
  static DeployResult from_reply(const std::string& line);
};

/// Knobs for one deployment push (namespace-scope so it can default-construct
/// in Deployer::deploy's default argument; spelled Deployer::Options at call
/// sites).
struct DeployOptions {
  planp::EngineKind engine = planp::EngineKind::kJit;
  /// Authenticated deployments may install gate-rejected protocols.
  bool authenticated = false;
  std::uint16_t port = kDeployPort;
};

/// Management-station side: pushes an ASP to a remote daemon.
class Deployer {
 public:
  explicit Deployer(asp::net::Node& node) : node_(node) {}

  using Options = DeployOptions;
  using Callback = std::function<void(const DeployResult&)>;

  /// Asynchronously deploys `source` to `target`; `cb` fires when the daemon
  /// replies (or the connection dies).
  void deploy(asp::net::Ipv4Addr target, const std::string& source, Callback cb,
              Options opts = Options());

 private:
  asp::net::Node& node_;
};

}  // namespace asp::runtime
