// ASP deployment over the network itself (paper §5: "protocol management
// functionalities, such as ASP deployment").
//
// A management station pushes PLAN-P source to a node's deployment daemon
// over TCP. The daemon runs the ordinary download pipeline — including the
// verification gate — and reports the outcome. Unverifiable protocols need
// the authenticated flag (paper §2.1's provision for privileged users).
//
// Wire format (client -> server):
//   "DEPLOY <engine> <auth> <source-bytes>\n" followed by the source text.
// Reply:
//   "OK <channels> <codegen-us>\n"  or  "ERR <reason>\n".
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "net/tcp.hpp"
#include "runtime/engine.hpp"

namespace asp::runtime {

inline constexpr std::uint16_t kDeployPort = 9199;

/// Per-node deployment daemon. Owns nothing but the listener; installs into
/// the node's AspRuntime.
class DeployServer {
 public:
  DeployServer(AspRuntime& runtime, std::uint16_t port = kDeployPort);

  int deployments() const { return deployments_; }
  int rejections() const { return rejections_; }

 private:
  struct Session {
    std::string buffer;
    bool header_seen = false;
    planp::EngineKind engine = planp::EngineKind::kJit;
    bool authenticated = false;
    std::size_t expect = 0;
  };

  void on_data(std::shared_ptr<asp::net::TcpConnection> conn,
               std::shared_ptr<Session> s);
  void finish(std::shared_ptr<asp::net::TcpConnection> conn, const Session& s);

  AspRuntime& runtime_;
  int deployments_ = 0;
  int rejections_ = 0;
};

/// Result of one deployment attempt.
struct DeployResult {
  bool ok = false;
  std::string message;  // "OK ..." payload or error reason
};

/// Management-station side: pushes an ASP to a remote daemon.
class Deployer {
 public:
  explicit Deployer(asp::net::Node& node) : node_(node) {}

  struct Options {
    planp::EngineKind engine = planp::EngineKind::kJit;
    /// Authenticated deployments may install gate-rejected protocols.
    bool authenticated = false;
    std::uint16_t port = kDeployPort;
  };

  using Callback = std::function<void(const DeployResult&)>;

  /// Asynchronously deploys `source` to `target`; `cb` fires when the daemon
  /// replies (or the connection dies).
  void deploy(asp::net::Ipv4Addr target, const std::string& source, Callback cb,
              const Options& opts);
  void deploy(asp::net::Ipv4Addr target, const std::string& source, Callback cb) {
    deploy(target, source, std::move(cb), Options{});
  }

 private:
  asp::net::Node& node_;
};

}  // namespace asp::runtime
