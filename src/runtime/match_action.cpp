#include "runtime/match_action.hpp"

#include <algorithm>

namespace asp::runtime {

MatchActionTable MatchActionTable::build(const planp::CheckedProgram& prog,
                                         planp::Engine& engine,
                                         const std::vector<obs::Counter*>& counters) {
  MatchActionTable t;
  const auto& channels = prog.channels;
  t.actions_.reserve(channels.size());

  std::uint32_t max_tag = 0;
  std::vector<std::uint32_t> tags;
  tags.reserve(channels.size());
  for (const auto& c : channels) {
    std::uint32_t tag = asp::net::ChannelTags::intern(c->name);
    tags.push_back(tag);
    max_tag = std::max(max_tag, tag);
  }
  t.rules_.resize(static_cast<std::size_t>(max_tag) + 1);

  for (std::size_t i = 0; i < channels.size(); ++i) {
    const planp::ChannelDef& c = *channels[i];
    MatchAction a;
    a.channel_idx = static_cast<std::uint16_t>(i);
    a.def = &c;
    a.entry = engine.channel(static_cast<int>(i));
    a.plan = compile_decode_plan(c.packet_type);
    a.needs_values = a.entry->packet_used();
    a.handled = i < counters.size() ? counters[i] : nullptr;
    t.actions_.push_back(std::move(a));

    // File the channel under its transport slots (overload order preserved:
    // channels are visited in declaration order and appended).
    Rule& r = t.rules_[tags[i]];
    const std::uint16_t idx = static_cast<std::uint16_t>(i);
    switch (t.actions_.back().plan.transport) {
      case DecodePlan::Transport::kTcp: r.by_proto[1].push_back(idx); break;
      case DecodePlan::Transport::kUdp: r.by_proto[2].push_back(idx); break;
      case DecodePlan::Transport::kAny:
        for (auto& slot : r.by_proto) slot.push_back(idx);
        break;
    }
  }

  const std::uint32_t network_tag = asp::net::ChannelTags::intern("network");
  if (network_tag < t.rules_.size()) {
    const Rule& r = t.rules_[network_tag];
    if (!r.by_proto[0].empty() || !r.by_proto[1].empty() || !r.by_proto[2].empty()) {
      t.untagged_ = static_cast<std::int64_t>(network_tag);
    }
  }
  return t;
}

}  // namespace asp::runtime
