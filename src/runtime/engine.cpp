#include "runtime/engine.hpp"

#include <chrono>

namespace asp::runtime {

using planp::Value;

AspRuntime::AspRuntime(asp::net::Node& node) : node_(node) {
  obs::MetricsRegistry& reg = obs::registry();
  metric_prefix_ = "node/" + node.name() + "/asp/";
  m_handled_ = &reg.counter(metric_prefix_ + "packets_handled");
  m_passed_ = &reg.counter(metric_prefix_ + "packets_passed");
  m_sent_ = &reg.counter(metric_prefix_ + "packets_sent");
  m_dropped_ = &reg.counter(metric_prefix_ + "packets_dropped");
  m_errors_ = &reg.counter(metric_prefix_ + "runtime_errors");
  m_handle_us_ = &reg.histogram(metric_prefix_ + "handle_us");
  network_tag_ = asp::net::ChannelTags::intern("network");
  base_ = RuntimeStats{m_handled_->value(), m_passed_->value(), m_sent_->value(),
                       m_dropped_->value(), m_errors_->value()};
}

RuntimeStats AspRuntime::stats() const {
  return RuntimeStats{m_handled_->value() - base_.packets_handled,
                      m_passed_->value() - base_.packets_passed,
                      m_sent_->value() - base_.packets_sent,
                      m_dropped_->value() - base_.packets_dropped,
                      m_errors_->value() - base_.runtime_errors};
}

AspRuntime::~AspRuntime() {
  if (cur_ != nullptr) uninstall();
}

planp::Protocol& AspRuntime::install(const std::string& source,
                                     planp::Protocol::Options opts) {
  if (cur_ != nullptr) uninstall();
  ++generation_;
  auto inst = std::make_unique<Installed>();
  inst->proto = planp::Protocol::load(source, *this, opts);

  const auto& channels = inst->proto->checked().channels;
  // The protocol state is shared between all channels (paper §2); their
  // declared protocol-state types must therefore agree.
  for (std::size_t i = 1; i < channels.size(); ++i) {
    if (!channels[i]->ps_type->equals(*channels[0]->ps_type)) {
      planp::Loc loc = channels[i]->loc;
      throw planp::PlanPError(
          "install", loc,
          "all channels must declare the same protocol state type (it is shared)");
    }
  }
  if (!channels.empty()) {
    protocol_state_ = planp::default_value(channels[0]->ps_type);
  }
  channel_states_.clear();
  channel_states_.reserve(channels.size());
  for (std::size_t i = 0; i < channels.size(); ++i) {
    channel_states_.push_back(inst->proto->engine().init_state(static_cast<int>(i)));
  }
  // Per-channel dispatch counters (overloads sharing a name share a counter).
  channel_counters_.clear();
  channel_counters_.reserve(channels.size());
  for (const auto& c : channels) {
    channel_counters_.push_back(
        &obs::registry().counter(metric_prefix_ + "channel/" + c->name + "/handled"));
  }

  // Compile the match-action table: channel name -> interned tag id, header
  // shape -> prepared action lists, each action carrying its decode plan,
  // engine entry point and metric handle (DESIGN.md §6c).
  inst->table = MatchActionTable::build(inst->proto->checked(),
                                        inst->proto->engine(), channel_counters_);

  cur_ = std::move(inst);
  node_.set_ip_hook([this](asp::net::Packet& p, asp::net::Interface& in) {
    return on_packet(p, &in);
  });
  node_.set_ip_batch_hook(
      [this](asp::net::PacketBatch&& batch, asp::net::Interface& in) {
        on_batch(std::move(batch), &in);
      });
  return *cur_->proto;
}

void AspRuntime::uninstall() {
  node_.set_ip_hook(nullptr);
  node_.set_ip_batch_hook(nullptr);
  ++generation_;
  if (dispatch_depth_ > 0 && cur_ != nullptr) {
    retired_.push_back(std::move(cur_));  // keep the executing engine alive
  }
  cur_.reset();
  channel_states_.clear();
}

bool AspRuntime::inject(asp::net::Packet p) { return on_packet(p, nullptr); }

std::size_t AspRuntime::inject_batch(asp::net::PacketBatch&& batch) {
  return on_batch(std::move(batch), nullptr);
}

/// Lazy tag resolution: packets built by encode_packet carry their tag id
/// already; those whose channel string was assigned directly resolve it here,
/// once.
static void resolve_tag(asp::net::Packet& p) {
  if (p.channel_tag == 0 && !p.channel.empty()) {
    p.channel_tag = asp::net::ChannelTags::intern(p.channel);
  }
}

bool AspRuntime::run_actions(Installed* inst, std::uint64_t generation,
                             const std::vector<std::uint16_t>& candidates,
                             asp::net::Packet& p, asp::net::Interface* in,
                             RunTally* tally) {
  ++dispatch_depth_;
  bool taken = false;
  current_in_ = in;
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (generation_ != generation) break;  // protocol swapped mid-dispatch
    const std::uint16_t i = candidates[j];
    MatchAction& a = inst->table.action(i);
    // Parse only what the action reads (the P4 shape): a body that never
    // touches its packet argument dispatches match-only — the plan validates
    // the packet but no tuple is materialized.
    Value decoded;
    if (a.needs_values) {
      std::optional<Value> d = decode_packet(p, a.plan, &a.scratch);
      if (!d) continue;
      decoded = std::move(*d);
    } else if (!match_packet(p, a.plan)) {
      continue;
    }
    // Handler wall-clock is sampled 1-in-16 (the first dispatch always):
    // two clock reads per packet cost more than the whole classification on
    // the fast path, and the latency distribution doesn't need every point.
    const bool timed = (latency_probe_++ & 0xF) == 0;
    std::chrono::steady_clock::time_point t0;
    if (timed) t0 = std::chrono::steady_clock::now();
    try {
      Value out = a.entry->run(protocol_state_, channel_states_[i], decoded);
      if (generation_ == generation) {
        // tuple_at, not as_tuple(): the (ps, ss) result is usually an inline
        // ScalarPair and must not be promoted to a heap tuple per packet.
        protocol_state_ = out.tuple_at(0);
        channel_states_[i] = out.tuple_at(1);
      }
      if (tally != nullptr) {
        ++tally->handled;
        if (a.handled != nullptr) {
          tally->action_counter[j] = a.handled;
          ++tally->action_count[j];
        }
      } else {
        m_handled_->inc();
        if (a.handled != nullptr) a.handled->inc();
      }
      taken = true;
    } catch (const planp::PlanPException& e) {
      // An exception escaping a channel aborts that packet's processing; the
      // packet is consumed (the protocol claimed it) but states are kept.
      m_errors_->inc();
      log_ += "[runtime] unhandled exception '" + e.name + "' in channel '" +
              a.def->name + "'\n";
      taken = true;
    }
    // Wall-clock handler cost (the engine runs in zero sim-time): this is
    // where interp vs bytecode vs JIT shows up per packet.
    if (timed) {
      m_handle_us_->observe(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
    }
  }
  current_in_ = nullptr;
  --dispatch_depth_;
  if (dispatch_depth_ == 0) retired_.clear();
  if (!taken) m_passed_->inc();
  return taken;
}

bool AspRuntime::on_packet(asp::net::Packet& p, asp::net::Interface* in) {
  if (cur_ == nullptr) return false;
  Installed* inst = cur_.get();  // stays alive via retired_ across reinstalls
  std::uint64_t generation = generation_;

  // User-channel packets classify by interned tag; untagged traffic goes to
  // the distinguished `network` channels (paper §2).
  resolve_tag(p);
  const MatchActionTable::Rule* rule = inst->table.classify(p.channel_tag);
  if (rule == nullptr) {  // unknown tag: no channel can match, pass to IP
    m_passed_->inc();
    return false;
  }
  return run_actions(inst, generation,
                     rule->by_proto[MatchActionTable::proto_slot(p)], p, in,
                     nullptr);
}

std::size_t AspRuntime::on_batch(asp::net::PacketBatch&& batch,
                                 asp::net::Interface* in) {
  std::size_t taken_count = 0;
  const std::size_t n = batch.size();
  std::size_t i = 0;
  while (i < n) {
    Installed* inst = cur_.get();
    const std::uint64_t generation = generation_;
    if (inst == nullptr) {
      // Uninstalled mid-batch: the remaining packets see standard IP, exactly
      // as they would have had they arrived after the uninstall.
      for (; i < n; ++i) {
        asp::net::PacketBatch::Box box = batch.take(i);
        if (box == nullptr) continue;
        if (in != nullptr) {
          node_.note_rx(*box, *in);
          node_.standard_ip(std::move(*box), *in);
        }
      }
      break;
    }

    // Classify the head packet, then extend the run: consecutive packets
    // with the same (tag, transport shape) share the classification, so the
    // table is consulted once per run, not once per packet.
    resolve_tag(batch[i]);
    const std::uint32_t run_tag = batch[i].channel_tag;
    const std::size_t run_slot = MatchActionTable::proto_slot(batch[i]);
    std::size_t run_end = i + 1;
    while (run_end < n) {
      resolve_tag(batch[run_end]);
      if (batch[run_end].channel_tag != run_tag ||
          MatchActionTable::proto_slot(batch[run_end]) != run_slot) {
        break;
      }
      ++run_end;
    }
    const MatchActionTable::Rule* rule = inst->table.classify(run_tag);
    const std::vector<std::uint16_t>* candidates =
        rule != nullptr ? &rule->by_proto[run_slot] : nullptr;
    // Defer handled-counter increments across the run (flushed by ~RunTally
    // on every exit path, including a handler exception unwinding through
    // the loop). Oversized candidate lists fall back to immediate counting.
    RunTally tally{m_handled_};
    RunTally* tally_ptr =
        candidates != nullptr && candidates->size() <= RunTally::kMaxActions
            ? &tally
            : nullptr;

    for (; i < run_end; ++i) {
      asp::net::PacketBatch::Box box = batch.take(i);
      asp::net::Packet& p = *box;
      if (in != nullptr) node_.note_rx(p, *in);
      bool taken;
      if (rule == nullptr) {
        m_passed_->inc();
        taken = false;
      } else {
        taken = run_actions(inst, generation, *candidates, p, in, tally_ptr);
      }
      if (taken) {
        ++taken_count;
      } else if (in != nullptr) {
        node_.standard_ip(std::move(p), *in);
      }
      if (generation_ != generation) {
        // A handler swapped (or removed) the protocol: stop using this run's
        // classification and re-resolve for the remaining packets.
        ++i;
        break;
      }
    }
  }
  return taken_count;
}

std::int64_t AspRuntime::link_load_percent() {
  asp::net::Medium* m = monitored_;
  if (m == nullptr && node_.iface_count() > 0) {
    m = node_.iface(static_cast<int>(node_.iface_count()) - 1).medium();
  }
  if (m == nullptr) return 0;
  double u = m->utilization();
  if (u < 0) u = 0;
  if (u > 1) u = 1;
  return static_cast<std::int64_t>(u * 100.0 + 0.5);
}

std::int64_t AspRuntime::link_bandwidth_kbps() {
  asp::net::Medium* m = monitored_;
  if (m == nullptr && node_.iface_count() > 0) {
    m = node_.iface(static_cast<int>(node_.iface_count()) - 1).medium();
  }
  if (m == nullptr) return 0;
  return static_cast<std::int64_t>(m->bandwidth_bps() / 1000.0);
}

void AspRuntime::on_remote(const std::string& channel, const Value& packet) {
  send_remote(encode_packet(packet, channel == "network" ? "" : channel));
}

void AspRuntime::on_remote(std::uint32_t chan_tag, const Value& packet) {
  // The distinguished `network` channel emits untagged traffic (tag 0).
  send_remote(encode_packet(packet, chan_tag == network_tag_ ? 0u : chan_tag));
}

void AspRuntime::send_remote(asp::net::Packet p) {
  p.id = node_.next_packet_id();
  // Defense in depth: even verified protocols respect TTL.
  if (p.ip.ttl <= 1) {
    m_dropped_->inc();
    return;
  }
  --p.ip.ttl;
  m_sent_->inc();
  if (node_.owns(p.ip.dst)) {
    node_.deliver_local(std::move(p));
    return;
  }
  node_.forward(std::move(p));
}

void AspRuntime::on_neighbor(const std::string& channel, const Value& packet) {
  send_neighbor(encode_packet(packet, channel == "network" ? "" : channel));
}

void AspRuntime::on_neighbor(std::uint32_t chan_tag, const Value& packet) {
  send_neighbor(encode_packet(packet, chan_tag == network_tag_ ? 0u : chan_tag));
}

void AspRuntime::send_neighbor(asp::net::Packet p) {
  p.id = node_.next_packet_id();
  m_sent_->inc();
  // L2 semantics: emit on every attached segment except the one the packet
  // arrived on (a locally generated packet floods all interfaces). This is
  // what lets an ASP implement a learning Ethernet bridge.
  int skip = current_in_ != nullptr ? current_in_->index() : -1;
  for (std::size_t i = 0; i < node_.iface_count(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    asp::net::Packet copy = p;
    node_.iface(static_cast<int>(i)).transmit(std::move(copy));
  }
}

void AspRuntime::deliver(const Value& packet) {
  asp::net::Packet p = encode_packet(packet, "");
  p.id = node_.next_packet_id();
  node_.deliver_local(std::move(p));
}

}  // namespace asp::runtime
