#include "runtime/engine.hpp"

#include <chrono>

namespace asp::runtime {

using planp::Value;

AspRuntime::AspRuntime(asp::net::Node& node) : node_(node) {
  obs::MetricsRegistry& reg = obs::registry();
  metric_prefix_ = "node/" + node.name() + "/asp/";
  m_handled_ = &reg.counter(metric_prefix_ + "packets_handled");
  m_passed_ = &reg.counter(metric_prefix_ + "packets_passed");
  m_sent_ = &reg.counter(metric_prefix_ + "packets_sent");
  m_dropped_ = &reg.counter(metric_prefix_ + "packets_dropped");
  m_errors_ = &reg.counter(metric_prefix_ + "runtime_errors");
  m_handle_us_ = &reg.histogram(metric_prefix_ + "handle_us");
  base_ = RuntimeStats{m_handled_->value(), m_passed_->value(), m_sent_->value(),
                       m_dropped_->value(), m_errors_->value()};
}

RuntimeStats AspRuntime::stats() const {
  return RuntimeStats{m_handled_->value() - base_.packets_handled,
                      m_passed_->value() - base_.packets_passed,
                      m_sent_->value() - base_.packets_sent,
                      m_dropped_->value() - base_.packets_dropped,
                      m_errors_->value() - base_.runtime_errors};
}

AspRuntime::~AspRuntime() {
  if (cur_ != nullptr) uninstall();
}

std::size_t AspRuntime::DispatchIndex::proto_slot(const asp::net::Packet& p) {
  if (p.tcp && p.ip.proto == asp::net::IpProto::kTcp) return 1;
  if (p.udp && p.ip.proto == asp::net::IpProto::kUdp) return 2;
  return 0;
}

planp::Protocol& AspRuntime::install(const std::string& source,
                                     planp::Protocol::Options opts) {
  if (cur_ != nullptr) uninstall();
  ++generation_;
  auto inst = std::make_unique<Installed>();
  inst->proto = planp::Protocol::load(source, *this, opts);

  const auto& channels = inst->proto->checked().channels;
  // The protocol state is shared between all channels (paper §2); their
  // declared protocol-state types must therefore agree.
  for (std::size_t i = 1; i < channels.size(); ++i) {
    if (!channels[i]->ps_type->equals(*channels[0]->ps_type)) {
      planp::Loc loc = channels[i]->loc;
      throw planp::PlanPError(
          "install", loc,
          "all channels must declare the same protocol state type (it is shared)");
    }
  }
  if (!channels.empty()) {
    protocol_state_ = planp::default_value(channels[0]->ps_type);
  }
  channel_states_.clear();
  channel_states_.reserve(channels.size());
  for (std::size_t i = 0; i < channels.size(); ++i) {
    channel_states_.push_back(inst->proto->engine().init_state(static_cast<int>(i)));
  }
  // Per-channel dispatch counters (overloads sharing a name share a counter).
  channel_counters_.clear();
  channel_counters_.reserve(channels.size());
  for (const auto& c : channels) {
    channel_counters_.push_back(
        &obs::registry().counter(metric_prefix_ + "channel/" + c->name + "/handled"));
  }

  // Build the dispatch index: channel name -> interned tag id, header shape
  // -> slot lists. A channel whose packet type names a transport (`ip*tcp*…`)
  // can only ever match packets of that shape, so it is filed under that slot
  // alone; header-only channels (`ip*…`) accept any shape.
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const planp::ChannelDef& c = *channels[i];
    std::uint32_t tag = asp::net::ChannelTags::intern(c.name);
    DispatchIndex::Entry& e = inst->index.by_tag[tag];
    const auto& parts = c.packet_type->args();
    const std::uint16_t idx = static_cast<std::uint16_t>(i);
    if (parts.size() > 1 && parts[1]->is(planp::Type::Kind::kTcp)) {
      e.by_proto[1].push_back(idx);
    } else if (parts.size() > 1 && parts[1]->is(planp::Type::Kind::kUdp)) {
      e.by_proto[2].push_back(idx);
    } else {
      for (auto& slot : e.by_proto) slot.push_back(idx);
    }
  }
  inst->index.untagged =
      inst->index.lookup(asp::net::ChannelTags::intern("network"));

  cur_ = std::move(inst);
  node_.set_ip_hook([this](asp::net::Packet& p, asp::net::Interface& in) {
    return on_packet(p, &in);
  });
  return *cur_->proto;
}

void AspRuntime::uninstall() {
  node_.set_ip_hook(nullptr);
  ++generation_;
  if (dispatch_depth_ > 0 && cur_ != nullptr) {
    retired_.push_back(std::move(cur_));  // keep the executing engine alive
  }
  cur_.reset();
  channel_states_.clear();
}

bool AspRuntime::inject(asp::net::Packet p) { return on_packet(p, nullptr); }

bool AspRuntime::on_packet(asp::net::Packet& p, asp::net::Interface* in) {
  if (cur_ == nullptr) return false;
  Installed* inst = cur_.get();  // stays alive via retired_ across reinstalls
  planp::Protocol* proto = inst->proto.get();
  std::uint64_t generation = generation_;
  const auto& channels = proto->checked().channels;

  // User-channel packets dispatch by interned tag; untagged traffic goes to
  // the distinguished `network` channels (paper §2). Packets built by
  // encode_packet carry their tag id already; those whose channel string was
  // assigned directly resolve it here, once.
  if (p.channel_tag == 0 && !p.channel.empty()) {
    p.channel_tag = asp::net::ChannelTags::intern(p.channel);
  }
  const DispatchIndex::Entry* entry = inst->index.lookup(p.channel_tag);
  if (entry == nullptr) {  // unknown tag: no channel can match, pass to IP
    m_passed_->inc();
    return false;
  }
  const std::vector<std::uint16_t>& candidates =
      entry->by_proto[DispatchIndex::proto_slot(p)];

  ++dispatch_depth_;
  bool taken = false;
  current_in_ = in;
  for (std::uint16_t i : candidates) {
    if (generation_ != generation) break;  // protocol swapped mid-dispatch
    const planp::ChannelDef& c = *channels[i];
    std::optional<Value> decoded = decode_packet(p, c.packet_type);
    if (!decoded) continue;
    // Handler wall-clock is sampled 1-in-16 (the first dispatch always):
    // two clock reads per packet cost more than the whole dispatch index on
    // the fast path, and the latency distribution doesn't need every point.
    const bool timed = (latency_probe_++ & 0xF) == 0;
    std::chrono::steady_clock::time_point t0;
    if (timed) t0 = std::chrono::steady_clock::now();
    try {
      Value out = proto->engine().run_channel(static_cast<int>(i), protocol_state_,
                                              channel_states_[i], *decoded);
      if (generation_ == generation) {
        // tuple_at, not as_tuple(): the (ps, ss) result is usually an inline
        // ScalarPair and must not be promoted to a heap tuple per packet.
        protocol_state_ = out.tuple_at(0);
        channel_states_[i] = out.tuple_at(1);
      }
      m_handled_->inc();
      if (i < channel_counters_.size()) channel_counters_[i]->inc();
      taken = true;
    } catch (const planp::PlanPException& e) {
      // An exception escaping a channel aborts that packet's processing; the
      // packet is consumed (the protocol claimed it) but states are kept.
      m_errors_->inc();
      log_ += "[runtime] unhandled exception '" + e.name + "' in channel '" +
              c.name + "'\n";
      taken = true;
    }
    // Wall-clock handler cost (the engine runs in zero sim-time): this is
    // where interp vs bytecode vs JIT shows up per packet.
    if (timed) {
      m_handle_us_->observe(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
    }
  }
  current_in_ = nullptr;
  --dispatch_depth_;
  if (dispatch_depth_ == 0) retired_.clear();
  if (!taken) m_passed_->inc();
  return taken;
}

std::int64_t AspRuntime::link_load_percent() {
  asp::net::Medium* m = monitored_;
  if (m == nullptr && node_.iface_count() > 0) {
    m = node_.iface(static_cast<int>(node_.iface_count()) - 1).medium();
  }
  if (m == nullptr) return 0;
  double u = m->utilization();
  if (u < 0) u = 0;
  if (u > 1) u = 1;
  return static_cast<std::int64_t>(u * 100.0 + 0.5);
}

std::int64_t AspRuntime::link_bandwidth_kbps() {
  asp::net::Medium* m = monitored_;
  if (m == nullptr && node_.iface_count() > 0) {
    m = node_.iface(static_cast<int>(node_.iface_count()) - 1).medium();
  }
  if (m == nullptr) return 0;
  return static_cast<std::int64_t>(m->bandwidth_bps() / 1000.0);
}

void AspRuntime::on_remote(const std::string& channel, const Value& packet) {
  asp::net::Packet p = encode_packet(packet, channel == "network" ? "" : channel);
  p.id = node_.next_packet_id();
  // Defense in depth: even verified protocols respect TTL.
  if (p.ip.ttl <= 1) {
    m_dropped_->inc();
    return;
  }
  --p.ip.ttl;
  m_sent_->inc();
  if (node_.owns(p.ip.dst)) {
    node_.deliver_local(std::move(p));
    return;
  }
  node_.forward(std::move(p));
}

void AspRuntime::on_neighbor(const std::string& channel, const Value& packet) {
  asp::net::Packet p = encode_packet(packet, channel == "network" ? "" : channel);
  p.id = node_.next_packet_id();
  m_sent_->inc();
  // L2 semantics: emit on every attached segment except the one the packet
  // arrived on (a locally generated packet floods all interfaces). This is
  // what lets an ASP implement a learning Ethernet bridge.
  int skip = current_in_ != nullptr ? current_in_->index() : -1;
  for (std::size_t i = 0; i < node_.iface_count(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    asp::net::Packet copy = p;
    node_.iface(static_cast<int>(i)).transmit(std::move(copy));
  }
}

void AspRuntime::deliver(const Value& packet) {
  asp::net::Packet p = encode_packet(packet, "");
  p.id = node_.next_packet_id();
  node_.deliver_local(std::move(p));
}

}  // namespace asp::runtime
