#include "runtime/engine.hpp"

#include <chrono>

namespace asp::runtime {

using planp::Value;

AspRuntime::AspRuntime(asp::net::Node& node) : node_(node) {
  obs::MetricsRegistry& reg = obs::registry();
  metric_prefix_ = "node/" + node.name() + "/asp/";
  m_handled_ = &reg.counter(metric_prefix_ + "packets_handled");
  m_passed_ = &reg.counter(metric_prefix_ + "packets_passed");
  m_sent_ = &reg.counter(metric_prefix_ + "packets_sent");
  m_dropped_ = &reg.counter(metric_prefix_ + "packets_dropped");
  m_errors_ = &reg.counter(metric_prefix_ + "runtime_errors");
  m_handle_us_ = &reg.histogram(metric_prefix_ + "handle_us");
  base_ = RuntimeStats{m_handled_->value(), m_passed_->value(), m_sent_->value(),
                       m_dropped_->value(), m_errors_->value()};
}

RuntimeStats AspRuntime::stats() const {
  return RuntimeStats{m_handled_->value() - base_.packets_handled,
                      m_passed_->value() - base_.packets_passed,
                      m_sent_->value() - base_.packets_sent,
                      m_dropped_->value() - base_.packets_dropped,
                      m_errors_->value() - base_.runtime_errors};
}

AspRuntime::~AspRuntime() {
  if (proto_ != nullptr) uninstall();
}

planp::Protocol& AspRuntime::install(const std::string& source,
                                     planp::Protocol::Options opts) {
  if (proto_ != nullptr) uninstall();
  ++generation_;
  proto_ = planp::Protocol::load(source, *this, opts);

  const auto& channels = proto_->checked().channels;
  // The protocol state is shared between all channels (paper §2); their
  // declared protocol-state types must therefore agree.
  for (std::size_t i = 1; i < channels.size(); ++i) {
    if (!channels[i]->ps_type->equals(*channels[0]->ps_type)) {
      planp::Loc loc = channels[i]->loc;
      proto_.reset();
      throw planp::PlanPError(
          "install", loc,
          "all channels must declare the same protocol state type (it is shared)");
    }
  }
  if (!channels.empty()) {
    protocol_state_ = planp::default_value(channels[0]->ps_type);
  }
  channel_states_.clear();
  channel_states_.reserve(channels.size());
  for (std::size_t i = 0; i < channels.size(); ++i) {
    channel_states_.push_back(proto_->engine().init_state(static_cast<int>(i)));
  }
  // Per-channel dispatch counters (overloads sharing a name share a counter).
  channel_counters_.clear();
  channel_counters_.reserve(channels.size());
  for (const auto& c : channels) {
    channel_counters_.push_back(
        &obs::registry().counter(metric_prefix_ + "channel/" + c->name + "/handled"));
  }

  node_.set_ip_hook([this](asp::net::Packet& p, asp::net::Interface& in) {
    return on_packet(p, &in);
  });
  return *proto_;
}

void AspRuntime::uninstall() {
  node_.set_ip_hook(nullptr);
  ++generation_;
  if (dispatch_depth_ > 0 && proto_ != nullptr) {
    retired_.push_back(std::move(proto_));  // keep the executing engine alive
  }
  proto_.reset();
  channel_states_.clear();
}

bool AspRuntime::inject(asp::net::Packet p) { return on_packet(p, nullptr); }

bool AspRuntime::on_packet(asp::net::Packet& p, asp::net::Interface* in) {
  if (proto_ == nullptr) return false;
  planp::Protocol* proto = proto_.get();
  std::uint64_t generation = generation_;
  const auto& channels = proto->checked().channels;

  ++dispatch_depth_;
  bool taken = false;
  current_in_ = in;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (generation_ != generation) break;  // protocol swapped mid-dispatch
    const planp::ChannelDef& c = *channels[i];
    // User-channel packets dispatch by tag; untagged traffic goes to the
    // distinguished `network` channels (paper §2).
    if (p.channel.empty()) {
      if (c.name != "network") continue;
    } else {
      if (c.name != p.channel) continue;
    }
    std::optional<Value> decoded = decode_packet(p, c.packet_type);
    if (!decoded) continue;
    auto t0 = std::chrono::steady_clock::now();
    try {
      Value out = proto->engine().run_channel(static_cast<int>(i), protocol_state_,
                                              channel_states_[i], *decoded);
      if (generation_ == generation) {
        const auto& pair = out.as_tuple();
        protocol_state_ = pair[0];
        channel_states_[i] = pair[1];
      }
      m_handled_->inc();
      if (i < channel_counters_.size()) channel_counters_[i]->inc();
      taken = true;
    } catch (const planp::PlanPException& e) {
      // An exception escaping a channel aborts that packet's processing; the
      // packet is consumed (the protocol claimed it) but states are kept.
      m_errors_->inc();
      log_ += "[runtime] unhandled exception '" + e.name + "' in channel '" +
              c.name + "'\n";
      taken = true;
    }
    // Wall-clock handler cost (the engine runs in zero sim-time): this is
    // where interp vs bytecode vs JIT shows up per packet.
    m_handle_us_->observe(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }
  current_in_ = nullptr;
  --dispatch_depth_;
  if (dispatch_depth_ == 0) retired_.clear();
  if (!taken) m_passed_->inc();
  return taken;
}

std::int64_t AspRuntime::link_load_percent() {
  asp::net::Medium* m = monitored_;
  if (m == nullptr && node_.iface_count() > 0) {
    m = node_.iface(static_cast<int>(node_.iface_count()) - 1).medium();
  }
  if (m == nullptr) return 0;
  double u = m->utilization();
  if (u < 0) u = 0;
  if (u > 1) u = 1;
  return static_cast<std::int64_t>(u * 100.0 + 0.5);
}

std::int64_t AspRuntime::link_bandwidth_kbps() {
  asp::net::Medium* m = monitored_;
  if (m == nullptr && node_.iface_count() > 0) {
    m = node_.iface(static_cast<int>(node_.iface_count()) - 1).medium();
  }
  if (m == nullptr) return 0;
  return static_cast<std::int64_t>(m->bandwidth_bps() / 1000.0);
}

void AspRuntime::on_remote(const std::string& channel, const Value& packet) {
  asp::net::Packet p = encode_packet(packet, channel == "network" ? "" : channel);
  p.id = node_.next_packet_id();
  // Defense in depth: even verified protocols respect TTL.
  if (p.ip.ttl <= 1) {
    m_dropped_->inc();
    return;
  }
  --p.ip.ttl;
  m_sent_->inc();
  if (node_.owns(p.ip.dst)) {
    node_.deliver_local(std::move(p));
    return;
  }
  node_.forward(std::move(p));
}

void AspRuntime::on_neighbor(const std::string& channel, const Value& packet) {
  asp::net::Packet p = encode_packet(packet, channel == "network" ? "" : channel);
  p.id = node_.next_packet_id();
  m_sent_->inc();
  // L2 semantics: emit on every attached segment except the one the packet
  // arrived on (a locally generated packet floods all interfaces). This is
  // what lets an ASP implement a learning Ethernet bridge.
  int skip = current_in_ != nullptr ? current_in_->index() : -1;
  for (std::size_t i = 0; i < node_.iface_count(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    asp::net::Packet copy = p;
    node_.iface(static_cast<int>(i)).transmit(std::move(copy));
  }
}

void AspRuntime::deliver(const Value& packet) {
  asp::net::Packet p = encode_packet(packet, "");
  p.id = node_.next_packet_id();
  node_.deliver_local(std::move(p));
}

}  // namespace asp::runtime
