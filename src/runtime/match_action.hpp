// Match-action classification for the packet path (DESIGN.md §6c).
//
// The P4 shape, applied to ASP dispatch: at install time every channel is
// compiled into an Action — prepared engine entry point, flat decode plan,
// pre-resolved metric handle — and the channel set into a classification
// table keyed by (interned channel tag, transport shape). The per-packet
// path is then: classify -> run prepared actions; no string hashing, no
// type-tree walk, no registry lookup. Channels whose bodies never read the
// packet argument (packet_used() == false) are dispatched match-only: the
// packet is validated against the plan but no tuple is materialized.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "planp/interp.hpp"
#include "planp/typecheck.hpp"
#include "runtime/netapi.hpp"

namespace asp::runtime {

/// Everything the per-packet path needs for one channel, resolved once at
/// install time.
struct MatchAction {
  std::uint16_t channel_idx = 0;          // index into the protocol's channels
  const planp::ChannelDef* def = nullptr; // for error reporting (name)
  planp::Engine::Channel* entry = nullptr;  // prepared engine handle
  DecodePlan plan;
  bool needs_values = true;               // entry->packet_used()
  obs::Counter* handled = nullptr;        // pre-resolved per-channel counter
  planp::TupleRep scratch;                // reusable decode storage
};

/// The install-time-compiled dispatch table: interned tag -> transport shape
/// -> action list (overload order preserved). Tags are dense small ints, so
/// classification is a bounds check and two array indexings.
class MatchActionTable {
 public:
  struct Rule {
    // Action indices per transport shape: [0] raw/header-only, [1] tcp,
    // [2] udp. A channel naming a transport is filed under that slot alone;
    // header-only channels accept any shape.
    std::array<std::vector<std::uint16_t>, 3> by_proto;
  };

  /// Compiles the table for `prog`'s channels. `counters` is the aligned
  /// per-channel dispatch counter list (may be shorter; missing -> null).
  static MatchActionTable build(const planp::CheckedProgram& prog,
                                planp::Engine& engine,
                                const std::vector<obs::Counter*>& counters);

  /// Transport shape slot of `p` (raw 0 / tcp 1 / udp 2).
  static std::size_t proto_slot(const asp::net::Packet& p) {
    if (p.tcp && p.ip.proto == asp::net::IpProto::kTcp) return 1;
    if (p.udp && p.ip.proto == asp::net::IpProto::kUdp) return 2;
    return 0;
  }

  /// The rule for an interned channel tag; tag 0 (untagged traffic) resolves
  /// to the distinguished `network` channels. Null when no channel can match.
  const Rule* classify(std::uint32_t tag) const {
    if (tag == 0) {
      return untagged_ < 0 ? nullptr : &rules_[static_cast<std::size_t>(untagged_)];
    }
    if (tag >= rules_.size()) return nullptr;
    const Rule& r = rules_[tag];
    return r.by_proto[0].empty() && r.by_proto[1].empty() && r.by_proto[2].empty()
               ? nullptr
               : &r;
  }

  MatchAction& action(std::uint16_t idx) { return actions_[idx]; }
  const MatchAction& action(std::uint16_t idx) const { return actions_[idx]; }
  std::size_t size() const { return actions_.size(); }

 private:
  std::vector<MatchAction> actions_;  // one per channel, index == channel idx
  std::vector<Rule> rules_;           // dense, indexed by interned tag
  std::int64_t untagged_ = -1;        // index of the `network` rule, if any
};

}  // namespace asp::runtime
