#include "runtime/deploy.hpp"

#include <sstream>

namespace asp::runtime {

using asp::net::TcpConnection;

DeployServer::DeployServer(AspRuntime& runtime, std::uint16_t port)
    : runtime_(runtime) {
  obs::MetricsRegistry& reg = obs::registry();
  const std::string prefix = "node/" + runtime_.node().name() + "/deploy/";
  m_deployments_ = &reg.counter(prefix + "deployments");
  m_rejections_ = &reg.counter(prefix + "rejections");
  m_rx_bytes_ = &reg.counter(prefix + "rx_bytes");

  runtime_.node().tcp().listen(port, [this](std::shared_ptr<TcpConnection> conn) {
    auto session = std::make_shared<Session>();
    conn->on_data([this, conn, session](const std::vector<std::uint8_t>& d) {
      session->buffer.append(d.begin(), d.end());
      m_rx_bytes_->inc(d.size());
      on_data(conn, session);
    });
  });
}

void DeployServer::reject(std::shared_ptr<TcpConnection> conn,
                          const std::string& reason) {
  ++rejections_;
  m_rejections_->inc();
  conn->send("ERR " + reason + "\n");
  conn->close();
}

void DeployServer::on_data(std::shared_ptr<TcpConnection> conn,
                           std::shared_ptr<Session> s) {
  if (!s->header_seen) {
    auto eol = s->buffer.find('\n');
    if (eol == std::string::npos) return;
    std::istringstream in(s->buffer.substr(0, eol));
    std::string cmd, engine;
    int auth = 0;
    std::size_t len = 0;
    in >> cmd >> engine >> auth >> len;
    s->buffer.erase(0, eol + 1);
    if (cmd.rfind("DEPLOY", 0) != 0 || in.fail()) {
      reject(conn, "malformed header");
      return;
    }
    if (cmd != kDeployHeaderTag) {
      // A DEPLOY header speaking another (or no) version: refuse loudly
      // rather than guessing at its framing.
      reject(conn, std::string("bad-version expected ") + kDeployHeaderTag);
      return;
    }
    s->engine = engine == "interp"     ? planp::EngineKind::kInterp
                : engine == "bytecode" ? planp::EngineKind::kBytecode
                                       : planp::EngineKind::kJit;
    s->authenticated = auth != 0;
    s->expect = len;
    s->header_seen = true;
  }
  if (s->buffer.size() >= s->expect) {
    finish(conn, *s);
  }
}

void DeployServer::finish(std::shared_ptr<TcpConnection> conn, const Session& s) {
  planp::Protocol::Options opts;
  opts.engine = s.engine;
  opts.require_verified = !s.authenticated;
  try {
    planp::Protocol& proto = runtime_.install(s.buffer.substr(0, s.expect), opts);
    ++deployments_;
    m_deployments_->inc();
    double codegen_us = 0;
    if (const planp::CodegenStats* cs = runtime_.protocol().codegen_stats()) {
      codegen_us = cs->generation_ms * 1000.0;
    }
    conn->send("OK " + std::to_string(proto.checked().channels.size()) + " " +
               std::to_string(codegen_us) + "\n");
    conn->close();
  } catch (const planp::VerificationError& e) {
    reject(conn, std::string("verification: ") + e.what());
  } catch (const planp::PlanPError& e) {
    reject(conn, e.what());
  }
}

DeployResult DeployResult::from_reply(const std::string& line) {
  DeployResult r;
  if (line.rfind("OK", 0) == 0) {
    std::istringstream in(line);
    std::string tag;
    in >> tag >> r.channels >> r.codegen_us;
    if (in.fail()) {
      r.channels = 0;
      r.codegen_us = 0;
      r.error = "unparseable reply: " + line;
      return r;
    }
    r.ok = true;
    return r;
  }
  if (line.rfind("ERR ", 0) == 0) {
    r.error = line.substr(4);
    return r;
  }
  r.error = line.empty() ? "empty reply" : "unparseable reply: " + line;
  return r;
}

void Deployer::deploy(asp::net::Ipv4Addr target, const std::string& source,
                      Callback cb, Options opts) {
  auto conn = node_.tcp().connect(target, opts.port);
  const char* engine = opts.engine == planp::EngineKind::kInterp     ? "interp"
                       : opts.engine == planp::EngineKind::kBytecode ? "bytecode"
                                                                     : "jit";
  std::string message = std::string(kDeployHeaderTag) + " " + engine + " " +
                        (opts.authenticated ? "1" : "0") + " " +
                        std::to_string(source.size()) + "\n" + source;
  auto reply = std::make_shared<std::string>();
  auto done = std::make_shared<bool>(false);
  auto callback = std::make_shared<Callback>(std::move(cb));

  conn->on_established([conn, message] { conn->send(message); });
  conn->on_data([reply, done, callback](const std::vector<std::uint8_t>& d) {
    reply->append(d.begin(), d.end());
    auto eol = reply->find('\n');
    if (eol != std::string::npos && !*done) {
      *done = true;
      (*callback)(DeployResult::from_reply(reply->substr(0, eol)));
    }
  });
  conn->on_closed([done, callback] {
    if (!*done) {
      *done = true;
      DeployResult dead;
      dead.error = "connection closed";
      (*callback)(dead);
    }
  });
}

}  // namespace asp::runtime
