#include "runtime/deploy.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "net/node.hpp"

namespace asp::runtime {

using asp::net::TcpConnection;

std::uint64_t deploy_checksum(std::string_view body) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (unsigned char c : body) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

namespace {

std::string checksum_hex(std::uint64_t sum) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(sum));
  return buf;
}

/// Hash identifying one install request end-to-end: same body, engine and
/// auth flag => same installed state, so a retry may be answered from cache.
std::uint64_t install_key(std::string_view body, planp::EngineKind engine,
                          bool authenticated) {
  std::uint64_t h = deploy_checksum(body);
  h ^= (static_cast<std::uint64_t>(engine) + 1) * 0x9E3779B97F4A7C15ull;
  h ^= authenticated ? 0x5851F42D4C957F2Dull : 0;
  return h;
}

}  // namespace

DeployServer::DeployServer(AspRuntime& runtime, std::uint16_t port)
    : runtime_(runtime) {
  obs::MetricsRegistry& reg = obs::registry();
  const std::string prefix = "node/" + runtime_.node().name() + "/deploy/";
  m_deployments_ = &reg.counter(prefix + "deployments");
  m_rejections_ = &reg.counter(prefix + "rejections");
  m_dedups_ = &reg.counter(prefix + "dedups");
  m_rx_bytes_ = &reg.counter(prefix + "rx_bytes");

  runtime_.node().tcp().listen(port, [this](std::shared_ptr<TcpConnection> conn) {
    auto session = std::make_shared<Session>();
    // The connection owns this callback, so capturing it strongly here would
    // be a reference cycle that leaks every session; the TCP stack keeps the
    // connection alive while it is open.
    std::weak_ptr<TcpConnection> weak = conn;
    conn->on_data([this, weak, session](const std::vector<std::uint8_t>& d) {
      auto c = weak.lock();
      if (!c) return;
      session->buffer.append(d.begin(), d.end());
      m_rx_bytes_->inc(d.size());
      on_data(std::move(c), session);
    });
  });
}

void DeployServer::reject(std::shared_ptr<TcpConnection> conn,
                          const std::string& reason) {
  ++rejections_;
  m_rejections_->inc();
  conn->send("ERR " + reason + "\n");
  conn->close();
}

void DeployServer::on_data(std::shared_ptr<TcpConnection> conn,
                           std::shared_ptr<Session> s) {
  if (s->done) return;  // trailing bytes after the reply: ignore them
  if (!s->header_seen) {
    auto eol = s->buffer.find('\n');
    if (eol == std::string::npos) return;
    std::istringstream in(s->buffer.substr(0, eol));
    std::string cmd, engine, sum;
    int auth = 0;
    std::size_t len = 0;
    in >> cmd >> engine >> auth >> len >> sum;
    s->buffer.erase(0, eol + 1);
    if (cmd.rfind("DEPLOY", 0) != 0) {
      s->done = true;
      reject(conn, "malformed header");
      return;
    }
    if (cmd != kDeployHeaderTag) {
      // A DEPLOY header speaking another (or no) version: refuse loudly
      // rather than guessing at its framing.
      s->done = true;
      reject(conn, std::string("bad-version expected ") + kDeployHeaderTag);
      return;
    }
    if (in.fail()) {
      s->done = true;
      reject(conn, "malformed header");
      return;
    }
    if (engine == "interp") {
      s->engine = planp::EngineKind::kInterp;
    } else if (engine == "bytecode") {
      s->engine = planp::EngineKind::kBytecode;
    } else if (engine == "jit") {
      s->engine = planp::EngineKind::kJit;
    } else {
      // An unknown token ("jitt", "") used to fall through silently to kJit;
      // reject it so a typo'd station learns immediately.
      s->done = true;
      reject(conn, "bad-engine " + engine);
      return;
    }
    std::uint64_t checksum = 0;
    auto [ptr, ec] =
        std::from_chars(sum.data(), sum.data() + sum.size(), checksum, 16);
    if (ec != std::errc() || ptr != sum.data() + sum.size()) {
      s->done = true;
      reject(conn, "malformed header");
      return;
    }
    s->authenticated = auth != 0;
    s->expect = len;
    s->checksum = checksum;
    s->header_seen = true;
  }
  if (s->buffer.size() >= s->expect) {
    s->done = true;  // set before finish: install callbacks must not re-enter
    finish(conn, *s);
  }
}

void DeployServer::finish(std::shared_ptr<TcpConnection> conn, const Session& s) {
  const std::string body = s.buffer.substr(0, s.expect);
  if (deploy_checksum(body) != s.checksum) {
    // The body that arrived is not the body the station framed: corrupted in
    // flight. Reject rather than handing the verifier a different program.
    reject(conn, "bad-checksum");
    return;
  }
  const std::uint64_t key = install_key(body, s.engine, s.authenticated);
  if (runtime_.installed() && key == installed_key_ && !cached_reply_.empty()) {
    // Idempotent retry: the previous attempt installed this exact program but
    // its OK reply was lost. Replay the reply; do not install twice.
    ++dedups_;
    m_dedups_->inc();
    conn->send(cached_reply_);
    conn->close();
    return;
  }
  planp::Protocol::Options opts;
  opts.engine = s.engine;
  opts.require_verified = !s.authenticated;
  try {
    planp::Protocol& proto = runtime_.install(body, opts);
    ++deployments_;
    m_deployments_->inc();
    double codegen_us = 0;
    if (const planp::CodegenStats* cs = runtime_.protocol().codegen_stats()) {
      codegen_us = cs->generation_ms * 1000.0;
    }
    std::string reply = "OK " + std::to_string(proto.checked().channels.size()) +
                        " " + std::to_string(codegen_us) + "\n";
    installed_key_ = key;
    cached_reply_ = reply;
    conn->send(reply);
    conn->close();
  } catch (const planp::VerificationError& e) {
    // "reject:" marks a verdict computed over a checksum-verified body — the
    // one class of error a client should NOT retry (see transient_failure).
    reject(conn, std::string("reject: verification: ") + e.what());
  } catch (const planp::PlanPError& e) {
    reject(conn, std::string("reject: ") + e.what());
  }
}

DeployResult DeployResult::from_reply(const std::string& line) {
  DeployResult r;
  if (line.rfind("OK", 0) == 0) {
    std::istringstream in(line);
    std::string tag;
    in >> tag >> r.channels >> r.codegen_us;
    if (in.fail()) {
      r.channels = 0;
      r.codegen_us = 0;
      r.error = "unparseable reply: " + line;
      return r;
    }
    r.ok = true;
    return r;
  }
  if (line.rfind("ERR ", 0) == 0) {
    r.error = line.substr(4);
    return r;
  }
  r.error = line.empty() ? "empty reply" : "unparseable reply: " + line;
  return r;
}

// --- client side --------------------------------------------------------------

namespace {

/// One in-flight deployment push: shared by every attempt's callbacks and
/// timers. `settled` makes the user callback fire exactly once.
struct DeployJob {
  asp::net::Node* node = nullptr;
  asp::net::Ipv4Addr target;
  std::string message;
  DeployOptions opts;
  Deployer::Callback cb;
  bool settled = false;
  int attempts = 0;
  std::shared_ptr<TcpConnection> conn;  // current attempt's connection
  obs::Counter* m_attempts = nullptr;
  obs::Counter* m_retries = nullptr;
  obs::Counter* m_successes = nullptr;
  obs::Counter* m_failures = nullptr;
};

/// Failures worth retrying: transport-level death and corruption-class
/// errors (a retry re-sends the same bytes over different luck). Definitive
/// daemon verdicts — verification, syntax, bad-engine, bad-version — are
/// terminal: the same program will fail the same way every time.
// Only a "reject:"-prefixed verdict is terminal: the daemon computed it over
// a checksum-verified body, so it is provably about the program itself.
// Everything else — timeouts, dead connections, and every protocol-level
// error ("bad-checksum", "bad-version", "bad-engine", "malformed header",
// garbled replies) — can be fabricated by a single corrupted frame in either
// direction, so the client retries rather than trust damaged goods.
bool transient_failure(const DeployResult& r) {
  if (r.ok) return false;
  return r.error.rfind("reject: ", 0) != 0;
}

void settle(const std::shared_ptr<DeployJob>& job, DeployResult r) {
  if (job->settled) return;
  job->settled = true;
  job->conn.reset();
  r.attempts = job->attempts;
  (r.ok ? job->m_successes : job->m_failures)->inc();
  if (job->cb) job->cb(r);
}

void start_attempt(const std::shared_ptr<DeployJob>& job);

/// Ends a failed attempt: schedules the next one after exponential backoff,
/// or settles with a terminal error once the budget is spent.
void retry_or_fail(const std::shared_ptr<DeployJob>& job, const std::string& err) {
  if (job->settled) return;
  job->conn.reset();
  if (job->attempts >= job->opts.max_attempts) {
    DeployResult r;
    r.error = err + " (gave up after " + std::to_string(job->attempts) +
              (job->attempts == 1 ? " attempt)" : " attempts)");
    settle(job, r);
    return;
  }
  job->m_retries->inc();
  asp::net::SimTime backoff = job->opts.initial_backoff
                              << (job->attempts > 0 ? job->attempts - 1 : 0);
  job->node->events().schedule_in(backoff, [job] {
    if (!job->settled) start_attempt(job);
  });
}

void start_attempt(const std::shared_ptr<DeployJob>& job) {
  ++job->attempts;
  job->m_attempts->inc();
  auto conn = job->node->tcp().connect(job->target, job->opts.port);
  job->conn = conn;
  // `live` scopes the callbacks and the timeout to THIS attempt: once the
  // attempt is decided (reply, death, or deadline), stragglers are inert.
  auto live = std::make_shared<bool>(true);
  auto reply = std::make_shared<std::string>();
  std::weak_ptr<TcpConnection> weak = conn;  // no conn->conn capture cycles

  conn->on_established([job, weak, live] {
    if (job->settled || !*live) return;
    if (auto c = weak.lock()) c->send(job->message);
  });
  conn->on_data([job, weak, live, reply](const std::vector<std::uint8_t>& d) {
    if (job->settled || !*live) return;
    reply->append(d.begin(), d.end());
    auto eol = reply->find('\n');
    if (eol == std::string::npos) return;
    *live = false;
    DeployResult r = DeployResult::from_reply(reply->substr(0, eol));
    if (transient_failure(r)) {
      // A corrupted exchange (the reply itself may be damaged goods): tear
      // the connection down and try again.
      retry_or_fail(job, r.error);
      if (auto c = weak.lock()) c->abort();
      return;
    }
    settle(job, std::move(r));
    if (auto c = weak.lock()) c->close();
  });
  conn->on_closed([job, live] {
    if (job->settled || !*live) return;
    *live = false;
    retry_or_fail(job, "connection closed");
  });
  // Attempt deadline: a dropped SYN the TCP layer is still grinding on, or a
  // daemon that accepted and went silent, must not hang the callback forever.
  job->node->events().schedule_in(job->opts.attempt_timeout, [job, weak, live] {
    if (job->settled || !*live) return;
    *live = false;
    retry_or_fail(job, "timeout");
    if (auto c = weak.lock()) c->abort();
  });
}

}  // namespace

void Deployer::deploy(asp::net::Ipv4Addr target, const std::string& source,
                      Callback cb, Options opts) {
  const char* engine = opts.engine == planp::EngineKind::kInterp     ? "interp"
                       : opts.engine == planp::EngineKind::kBytecode ? "bytecode"
                                                                     : "jit";
  auto job = std::make_shared<DeployJob>();
  job->node = &node_;
  job->target = target;
  job->opts = opts;
  if (job->opts.max_attempts < 1) job->opts.max_attempts = 1;
  job->cb = std::move(cb);
  job->message = std::string(kDeployHeaderTag) + " " + engine + " " +
                 (opts.authenticated ? "1" : "0") + " " +
                 std::to_string(source.size()) + " " +
                 checksum_hex(deploy_checksum(source)) + "\n" + source;
  obs::MetricsRegistry& reg = obs::registry();
  const std::string prefix = "node/" + node_.name() + "/deployer/";
  job->m_attempts = &reg.counter(prefix + "attempts");
  job->m_retries = &reg.counter(prefix + "retries");
  job->m_successes = &reg.counter(prefix + "successes");
  job->m_failures = &reg.counter(prefix + "failures");
  start_attempt(job);
}

}  // namespace asp::runtime
