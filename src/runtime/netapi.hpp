// Packet <-> PLAN-P value conversion.
//
// A channel over `ip*tcp*char*int` sees a TCP packet as a 4-tuple whose
// payload has been decoded into a char then a big-endian int32 (paper Figure 4
// relies on this to dispatch on the first payload byte). Scalar payload fields
// are decoded in order; a trailing `blob` takes the rest.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "planp/types.hpp"
#include "planp/value.hpp"

namespace asp::runtime {

/// Decodes `p` as a value of packet type `type`. Returns nullopt when the
/// packet does not match (wrong protocol, payload too short, ...).
std::optional<planp::Value> decode_packet(const asp::net::Packet& p,
                                          const planp::TypePtr& type);

/// Compiled decode recipe for one channel packet type: the type-tree walk of
/// decode_packet hoisted to install time, so the per-packet path runs a flat
/// loop over field ops (the "parser" stage of the match-action pipeline,
/// DESIGN.md §6c). Built once per channel by compile_decode_plan.
struct DecodePlan {
  /// kAny = header-only pattern (`ip*...`): accepts any transport, the
  /// transport header rides at the front of the logical payload bytes.
  enum class Transport : std::uint8_t { kAny, kTcp, kUdp };
  enum class FieldOp : std::uint8_t { kChar, kBool, kInt, kBlob };

  Transport transport = Transport::kAny;
  std::vector<FieldOp> fields;            // payload fields, in order
  std::vector<std::uint32_t> bool_offsets;  // strict-encoding check offsets
  std::uint32_t fixed_bytes = 0;          // bytes consumed by scalar fields
  bool has_blob = false;                  // trailing blob takes the rest
  bool valid = false;                     // false: type can never decode
  std::uint16_t arity = 0;                // decoded tuple arity
};

/// Compiles `type` (a packet tuple type) into a flat decode plan.
DecodePlan compile_decode_plan(const planp::TypePtr& type);

/// Validation only: true iff decode_packet(p, plan, ...) would succeed.
/// Checks transport shape, payload length and strict-bool bytes without
/// materializing a tuple — the match-only half of match-action dispatch,
/// used when the channel body never reads its packet argument.
bool match_packet(const asp::net::Packet& p, const DecodePlan& plan);

/// decode_packet driven by a pre-compiled plan. Decodes exactly like the
/// type-directed overload. `reuse` (optional) supplies tuple storage that is
/// refilled in place when uniquely owned — the steady-state zero-allocation
/// path for batch dispatch; when the previous packet's tuple is still alive
/// (e.g. stored into channel state) fresh pooled storage is used instead.
std::optional<planp::Value> decode_packet(const asp::net::Packet& p,
                                          const DecodePlan& plan,
                                          planp::TupleRep* reuse = nullptr);

/// Encodes a PLAN-P packet value back onto the wire. `channel_tag` is attached
/// for user-defined channels (empty for the distinguished `network` channel).
asp::net::Packet encode_packet(const planp::Value& v, const std::string& channel_tag);

/// Same, keyed by interned channel id — the send path of the compiled
/// engines, which never touch a name string per packet (tag 0 = untagged).
asp::net::Packet encode_packet(const planp::Value& v, std::uint32_t chan_tag);

}  // namespace asp::runtime
