// Packet <-> PLAN-P value conversion.
//
// A channel over `ip*tcp*char*int` sees a TCP packet as a 4-tuple whose
// payload has been decoded into a char then a big-endian int32 (paper Figure 4
// relies on this to dispatch on the first payload byte). Scalar payload fields
// are decoded in order; a trailing `blob` takes the rest.
#pragma once

#include <optional>

#include "net/packet.hpp"
#include "planp/types.hpp"
#include "planp/value.hpp"

namespace asp::runtime {

/// Decodes `p` as a value of packet type `type`. Returns nullopt when the
/// packet does not match (wrong protocol, payload too short, ...).
std::optional<planp::Value> decode_packet(const asp::net::Packet& p,
                                          const planp::TypePtr& type);

/// Encodes a PLAN-P packet value back onto the wire. `channel_tag` is attached
/// for user-defined channels (empty for the distinguished `network` channel).
asp::net::Packet encode_packet(const planp::Value& v, const std::string& channel_tag);

}  // namespace asp::runtime
