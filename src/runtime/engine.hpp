// AspRuntime: the per-node PLAN-P layer (the paper's Solaris kernel module).
//
// Installing a protocol hooks the node's IP layer: every arriving packet is
// offered to the protocol's channels; a packet whose type matches a channel's
// packet type is handed to that channel (all matching overloads run, each with
// its own channel state and a shared protocol state). Packets no channel
// claims fall through to standard IP behaviour.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/batch.hpp"
#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "planp/cache.hpp"
#include "planp/program.hpp"
#include "runtime/match_action.hpp"
#include "runtime/netapi.hpp"

namespace asp::runtime {

/// One coherent snapshot of a runtime's dispatch statistics, counted since
/// that AspRuntime was constructed. Returned by AspRuntime::stats(); the
/// live values are carried by the global metrics registry under
/// node/<name>/asp/* (which accumulates process-wide — the snapshot is the
/// per-instance delta).
struct RuntimeStats {
  std::uint64_t packets_handled = 0;  // consumed by a channel
  std::uint64_t packets_passed = 0;   // fell through to standard IP
  std::uint64_t packets_sent = 0;     // emitted via OnRemote/OnNeighbor
  std::uint64_t packets_dropped = 0;  // explicit drop() or TTL exhaustion
  std::uint64_t runtime_errors = 0;   // exceptions escaping a channel
};

class AspRuntime : public planp::EnvApi {
 public:
  explicit AspRuntime(asp::net::Node& node);
  ~AspRuntime();
  AspRuntime(const AspRuntime&) = delete;
  AspRuntime& operator=(const AspRuntime&) = delete;

  /// Downloads a protocol into this node: parse, check, verify, specialize,
  /// install. Throws PlanPError / VerificationError.
  planp::Protocol& install(const std::string& source,
                           planp::Protocol::Options opts = make_default_options());

  /// Removes the protocol and restores standard IP processing.
  void uninstall();

  bool installed() const { return cur_ != nullptr; }
  planp::Protocol& protocol() { return *cur_->proto; }
  asp::net::Node& node() { return node_; }

  /// Medium whose utilization linkLoad() reports (the audio router monitors
  /// its outgoing segment). Defaults to the medium of the last interface.
  void set_monitored_medium(asp::net::Medium* m) { monitored_ = m; }

  /// Also run the hook on packets this node *sends* (end-host ASPs, e.g. the
  /// audio client transform applies on receive; the MPEG request rewriting
  /// could apply on send). Default: receive path only.
  // (Send-path hooking is expressed by the applications calling inject().)

  /// Feeds a locally generated packet through the installed protocol exactly
  /// as if it had arrived from the network. Returns true if a channel took it.
  bool inject(asp::net::Packet p);

  /// Batch variant of inject(): dispatches every packet in canonical order
  /// through the match-action pipeline (classification hoisted across runs of
  /// same-shape packets). Packets no channel claims are discarded, mirroring
  /// inject(). Returns the number of packets a channel took.
  std::size_t inject_batch(asp::net::PacketBatch&& batch);

  // --- statistics -------------------------------------------------------------
  /// Dispatch counters since construction, as one coherent snapshot. The same
  /// figures (plus per-channel dispatch counts and the packet handling-latency
  /// histogram node/<name>/asp/handle_us, sampled 1-in-16 dispatches) live in
  /// obs::registry().
  RuntimeStats stats() const;
  const std::string& log() const { return log_; }
  void clear_log() { log_.clear(); }

  // --- EnvApi -----------------------------------------------------------------
  void print(const std::string& s) override { log_ += s; }
  asp::net::Ipv4Addr this_host() override { return node_.addr(); }
  std::int64_t time_ms() override {
    return static_cast<std::int64_t>(node_.events().now() / asp::net::kNsPerMs);
  }
  std::int64_t link_load_percent() override;
  std::int64_t link_bandwidth_kbps() override;
  std::int64_t arrival_iface() override {
    return current_in_ != nullptr ? current_in_->index() : -1;
  }
  void on_remote(const std::string& channel, const planp::Value& packet) override;
  void on_neighbor(const std::string& channel, const planp::Value& packet) override;
  void on_remote(std::uint32_t chan_tag, const planp::Value& packet) override;
  void on_neighbor(std::uint32_t chan_tag, const planp::Value& packet) override;
  void deliver(const planp::Value& packet) override;
  void drop() override { m_dropped_->inc(); }
  /// The node's object cache, created on first cache-primitive use so nodes
  /// without caching ASPs pay nothing. Counters land under cache/<node>/*.
  planp::CacheStore& cache() override {
    if (cache_ == nullptr) {
      cache_ = std::make_unique<planp::CacheStore>("cache/" + node_.name());
    }
    return *cache_;
  }

 private:
  static planp::Protocol::Options make_default_options() {
    planp::Protocol::Options o;
    return o;
  }

  /// A protocol together with its match-action table: the two retire as a
  /// unit so a reinstall from inside a channel handler cannot free the table
  /// the in-flight dispatch loop is iterating.
  struct Installed {
    std::unique_ptr<planp::Protocol> proto;
    MatchActionTable table;
  };

  bool on_packet(asp::net::Packet& p, asp::net::Interface* in);
  /// The node's batch hook body: per packet, in canonical order — note_rx,
  /// match-action dispatch, standard IP for non-consumed packets. With
  /// `in == nullptr` (inject_batch) the node-side steps are skipped. Returns
  /// the number of packets a channel consumed.
  std::size_t on_batch(asp::net::PacketBatch&& batch, asp::net::Interface* in);
  /// Deferred dispatch-counter increments for one batch run: one atomic add
  /// per counter per run instead of per packet. Holds only registry-owned
  /// Counter pointers, so the flush stays safe even when a handler retires
  /// the protocol (and its table) mid-run.
  struct RunTally {
    static constexpr std::size_t kMaxActions = 8;
    obs::Counter* handled_counter = nullptr;
    std::uint64_t handled = 0;
    std::array<obs::Counter*, kMaxActions> action_counter{};
    std::array<std::uint32_t, kMaxActions> action_count{};
    ~RunTally() { flush(); }
    void flush() {
      if (handled != 0) {
        handled_counter->inc(handled);
        handled = 0;
      }
      for (std::size_t j = 0; j < kMaxActions; ++j) {
        if (action_count[j] != 0) {
          action_counter[j]->inc(action_count[j]);
          action_count[j] = 0;
        }
      }
    }
  };
  /// Runs one packet's candidate actions (the shared core of on_packet and
  /// on_batch). `candidates` is the packet's classification for its transport
  /// shape; increments packets_passed and returns false when no action
  /// consumes the packet. With `tally` non-null the handled-counter
  /// increments are deferred into it (batch path) instead of applied here.
  bool run_actions(Installed* inst, std::uint64_t generation,
                   const std::vector<std::uint16_t>& candidates,
                   asp::net::Packet& p, asp::net::Interface* in,
                   RunTally* tally);
  void send_remote(asp::net::Packet p);
  void send_neighbor(asp::net::Packet p);

  asp::net::Node& node_;
  std::unique_ptr<Installed> cur_;
  // Reentrancy: a channel's deliver() can reach application code that
  // reinstalls a protocol (the MPEG client swaps its reply ASP for the
  // capture ASP). The executing protocol is retired, not destroyed, until
  // dispatch unwinds; a generation counter stops the dispatch loop.
  std::vector<std::unique_ptr<Installed>> retired_;
  int dispatch_depth_ = 0;
  std::uint64_t generation_ = 0;
  planp::Value protocol_state_;
  std::vector<planp::Value> channel_states_;
  asp::net::Medium* monitored_ = nullptr;
  asp::net::Interface* current_in_ = nullptr;  // arrival interface during dispatch
  std::uint32_t network_tag_ = 0;  // interned "network" (untagged sends)
  std::unique_ptr<planp::CacheStore> cache_;  // lazy; survives reinstalls

  // Instruments in the global registry (node/<name>/asp/*), cached at
  // construction; stats() subtracts base_ so snapshots are per-instance even
  // though the registry accumulates across runtimes sharing a node name.
  std::string metric_prefix_;
  obs::Counter* m_handled_ = nullptr;
  obs::Counter* m_passed_ = nullptr;
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
  obs::Histogram* m_handle_us_ = nullptr;
  std::uint32_t latency_probe_ = 0;  // 1-in-16 handle_us sampling phase
  std::vector<obs::Counter*> channel_counters_;  // aligned with channels
  RuntimeStats base_;
  std::string log_;
};

}  // namespace asp::runtime
