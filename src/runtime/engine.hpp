// AspRuntime: the per-node PLAN-P layer (the paper's Solaris kernel module).
//
// Installing a protocol hooks the node's IP layer: every arriving packet is
// offered to the protocol's channels; a packet whose type matches a channel's
// packet type is handed to that channel (all matching overloads run, each with
// its own channel state and a shared protocol state). Packets no channel
// claims fall through to standard IP behaviour.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "planp/program.hpp"
#include "runtime/netapi.hpp"

namespace asp::runtime {

/// One coherent snapshot of a runtime's dispatch statistics, counted since
/// that AspRuntime was constructed. Returned by AspRuntime::stats(); the
/// live values are carried by the global metrics registry under
/// node/<name>/asp/* (which accumulates process-wide — the snapshot is the
/// per-instance delta).
struct RuntimeStats {
  std::uint64_t packets_handled = 0;  // consumed by a channel
  std::uint64_t packets_passed = 0;   // fell through to standard IP
  std::uint64_t packets_sent = 0;     // emitted via OnRemote/OnNeighbor
  std::uint64_t packets_dropped = 0;  // explicit drop() or TTL exhaustion
  std::uint64_t runtime_errors = 0;   // exceptions escaping a channel
};

class AspRuntime : public planp::EnvApi {
 public:
  explicit AspRuntime(asp::net::Node& node);
  ~AspRuntime();
  AspRuntime(const AspRuntime&) = delete;
  AspRuntime& operator=(const AspRuntime&) = delete;

  /// Downloads a protocol into this node: parse, check, verify, specialize,
  /// install. Throws PlanPError / VerificationError.
  planp::Protocol& install(const std::string& source,
                           planp::Protocol::Options opts = make_default_options());

  /// Removes the protocol and restores standard IP processing.
  void uninstall();

  bool installed() const { return cur_ != nullptr; }
  planp::Protocol& protocol() { return *cur_->proto; }
  asp::net::Node& node() { return node_; }

  /// Medium whose utilization linkLoad() reports (the audio router monitors
  /// its outgoing segment). Defaults to the medium of the last interface.
  void set_monitored_medium(asp::net::Medium* m) { monitored_ = m; }

  /// Also run the hook on packets this node *sends* (end-host ASPs, e.g. the
  /// audio client transform applies on receive; the MPEG request rewriting
  /// could apply on send). Default: receive path only.
  // (Send-path hooking is expressed by the applications calling inject().)

  /// Feeds a locally generated packet through the installed protocol exactly
  /// as if it had arrived from the network. Returns true if a channel took it.
  bool inject(asp::net::Packet p);

  // --- statistics -------------------------------------------------------------
  /// Dispatch counters since construction, as one coherent snapshot. The same
  /// figures (plus per-channel dispatch counts and the packet handling-latency
  /// histogram node/<name>/asp/handle_us, sampled 1-in-16 dispatches) live in
  /// obs::registry().
  RuntimeStats stats() const;
  const std::string& log() const { return log_; }
  void clear_log() { log_.clear(); }

  // --- EnvApi -----------------------------------------------------------------
  void print(const std::string& s) override { log_ += s; }
  asp::net::Ipv4Addr this_host() override { return node_.addr(); }
  std::int64_t time_ms() override {
    return static_cast<std::int64_t>(node_.events().now() / asp::net::kNsPerMs);
  }
  std::int64_t link_load_percent() override;
  std::int64_t link_bandwidth_kbps() override;
  std::int64_t arrival_iface() override {
    return current_in_ != nullptr ? current_in_->index() : -1;
  }
  void on_remote(const std::string& channel, const planp::Value& packet) override;
  void on_neighbor(const std::string& channel, const planp::Value& packet) override;
  void deliver(const planp::Value& packet) override;
  void drop() override { m_dropped_->inc(); }

 private:
  static planp::Protocol::Options make_default_options() {
    planp::Protocol::Options o;
    return o;
  }

  bool on_packet(asp::net::Packet& p, asp::net::Interface* in);

  /// Per-protocol dispatch index, built once at install time. Maps an
  /// interned channel-tag id and the packet's header shape (raw/tcp/udp) to
  /// the candidate channel indices, replacing the per-packet linear
  /// string-compare scan over every channel. Untagged traffic resolves to the
  /// distinguished `network` channels.
  struct DispatchIndex {
    struct Entry {
      // Candidate channel indices per transport shape, ascending (overload
      // order preserved): [0] raw / header-only, [1] tcp, [2] udp.
      std::array<std::vector<std::uint16_t>, 3> by_proto;
    };
    std::unordered_map<std::uint32_t, Entry> by_tag;
    const Entry* untagged = nullptr;  // the `network` entry, if any

    static std::size_t proto_slot(const asp::net::Packet& p);
    const Entry* lookup(std::uint32_t tag) const {
      if (tag == 0) return untagged;
      auto it = by_tag.find(tag);
      return it == by_tag.end() ? nullptr : &it->second;
    }
  };

  /// A protocol together with its dispatch index: the two retire as a unit so
  /// a reinstall from inside a channel handler cannot free the index the
  /// in-flight dispatch loop is iterating.
  struct Installed {
    std::unique_ptr<planp::Protocol> proto;
    DispatchIndex index;
  };

  asp::net::Node& node_;
  std::unique_ptr<Installed> cur_;
  // Reentrancy: a channel's deliver() can reach application code that
  // reinstalls a protocol (the MPEG client swaps its reply ASP for the
  // capture ASP). The executing protocol is retired, not destroyed, until
  // dispatch unwinds; a generation counter stops the dispatch loop.
  std::vector<std::unique_ptr<Installed>> retired_;
  int dispatch_depth_ = 0;
  std::uint64_t generation_ = 0;
  planp::Value protocol_state_;
  std::vector<planp::Value> channel_states_;
  asp::net::Medium* monitored_ = nullptr;
  asp::net::Interface* current_in_ = nullptr;  // arrival interface during dispatch

  // Instruments in the global registry (node/<name>/asp/*), cached at
  // construction; stats() subtracts base_ so snapshots are per-instance even
  // though the registry accumulates across runtimes sharing a node name.
  std::string metric_prefix_;
  obs::Counter* m_handled_ = nullptr;
  obs::Counter* m_passed_ = nullptr;
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
  obs::Histogram* m_handle_us_ = nullptr;
  std::uint32_t latency_probe_ = 0;  // 1-in-16 handle_us sampling phase
  std::vector<obs::Counter*> channel_counters_;  // aligned with channels
  RuntimeStats base_;
  std::string log_;
};

}  // namespace asp::runtime
