// Link impairments: a seeded, deterministic fault model for media.
//
// The paper's premise is that ASPs adapt applications to a *degraded*
// network (§3.1 adapts audio quality to measured bandwidth, §3.3 survives
// receiver churn), so the simulator must be able to produce degradation on
// demand: random loss, duplication, reordering (delay jitter), payload
// corruption, and scheduled link outages (partitions). Every impairment is
// driven by one xorshift stream seeded from `Impairments::seed`, and the
// event queue is FIFO at equal timestamps, so a fixed (topology, traffic,
// impairment) triple replays bit-for-bit — chaos tests and bench_chaos
// assert on exact counts.
#pragma once

#include <cstdint>

#include "net/time.hpp"
#include "obs/relaxed.hpp"

namespace asp::net {

/// Impairment configuration for one medium. Rates are per-frame
/// probabilities in [0, 1]; `jitter` is the upper bound of a uniform extra
/// delivery delay (which is what produces reordering: a later frame whose
/// draw is small overtakes an earlier frame whose draw was large).
struct Impairments {
  double loss_rate = 0;       ///< P(frame dies in flight)
  double duplicate_rate = 0;  ///< P(frame is delivered twice)
  double corrupt_rate = 0;    ///< P(one payload byte is flipped in flight)
  SimTime jitter = 0;         ///< extra delivery delay, uniform in [0, jitter]
  /// Seed for the medium's xorshift stream. The default matches the
  /// pre-Impairments loss stream, so loss-only configurations reproduce the
  /// exact drop pattern older tests were written against.
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  bool any() const {
    return loss_rate > 0 || duplicate_rate > 0 || corrupt_rate > 0 || jitter > 0;
  }
};

/// Per-cause delivery/drop accounting for one medium. The old conflated
/// `dropped_packets_` counter could not tell a queue overflow from injected
/// loss from a partition; the chaos bench needs to attribute what it
/// measures, so every cause counts separately (the legacy aggregate is the
/// sum, see Medium::dropped_packets()).
///
/// Relaxed atomics: a cut point-to-point link counts from both endpoint
/// shards (each direction drops on its sender's thread, and an in-flight
/// frame can die at arrival on the receiver's thread). Totals are exact at
/// window barriers.
struct ImpairmentStats {
  obs::RelaxedU64 dropped_queue;        ///< egress backlog exceeded capacity
  obs::RelaxedU64 dropped_loss;         ///< random in-flight loss
  obs::RelaxedU64 dropped_down;         ///< link was down (at tx or arrival)
  obs::RelaxedU64 dropped_unaddressed;  ///< no station claimed the frame
  obs::RelaxedU64 duplicated;           ///< extra copies put on the wire
  obs::RelaxedU64 corrupted;            ///< frames with a flipped byte

  std::uint64_t total_dropped() const {
    return dropped_queue.load() + dropped_loss.load() + dropped_down.load() +
           dropped_unaddressed.load();
  }
};

}  // namespace asp::net
