#include "net/packet.hpp"

namespace asp::net {

Packet Packet::make_udp(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sport,
                        std::uint16_t dport, std::vector<std::uint8_t> payload) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kUdp;
  p.udp = UdpHeader{sport, dport};
  p.payload = std::move(payload);
  return p;
}

Packet Packet::make_tcp(Ipv4Addr src, Ipv4Addr dst, const TcpHeader& hdr,
                        std::vector<std::uint8_t> payload) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kTcp;
  p.tcp = hdr;
  p.payload = std::move(payload);
  return p;
}

Packet Packet::make_raw(Ipv4Addr src, Ipv4Addr dst, std::vector<std::uint8_t> payload) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kRaw;
  p.payload = std::move(payload);
  return p;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string string_of(const std::vector<std::uint8_t>& b) {
  return {b.begin(), b.end()};
}

}  // namespace asp::net
