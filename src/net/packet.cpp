#include "net/packet.hpp"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "mem/shard.hpp"

namespace asp::net {

Buffer make_buffer(std::vector<std::uint8_t> bytes) {
  // Allocated non-const (the Buffer alias adds the const): Payload::mutate()
  // may cast it away again once it proves the buffer is unshared. The pool
  // adopts the storage, so release recycles it instead of freeing it.
  return mem::buffer_pool().adopt(std::move(bytes));
}

Buffer acquire_buffer(std::size_t capacity_hint) {
  return mem::buffer_pool().acquire(capacity_hint);
}

const Buffer& Payload::empty_buffer() {
  static const Buffer empty = make_buffer({});
  return empty;
}

std::vector<std::uint8_t>& Payload::mutate() {
  // use_count covers both other Payloads and blob Values aliasing the bytes;
  // the shared empty buffer always has extra refs, so it is never written.
  if (buf_.use_count() != 1) {
    // Clone into a pooled buffer (freelist storage, no heap in steady state).
    auto clone = mem::buffer_pool().acquire(buf_->size());
    clone->assign(buf_->begin(), buf_->end());
    buf_ = std::move(clone);
  }
  return const_cast<std::vector<std::uint8_t>&>(*buf_);
}

namespace {

// Interning is cold (runtime install time) but can happen on any shard
// thread, so the table takes a mutex; names live in a deque so the
// references name_of() hands out stay stable across later interns.
struct TagTable {
  std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> ids;
  std::deque<std::string> names{""};  // id 0 = untagged
};

TagTable& tag_table() {
  static TagTable t;
  return t;
}

}  // namespace

std::uint32_t ChannelTags::intern(const std::string& name) {
  if (name.empty()) return 0;
  TagTable& t = tag_table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto [it, inserted] = t.ids.try_emplace(name, static_cast<std::uint32_t>(t.names.size()));
  if (inserted) t.names.push_back(name);
  return it->second;
}

const std::string& ChannelTags::name_of(std::uint32_t id) {
  TagTable& t = tag_table();
  std::lock_guard<std::mutex> lock(t.mu);
  if (id >= t.names.size()) return t.names[0];
  return t.names[id];
}

Packet Packet::make_udp(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sport,
                        std::uint16_t dport, Payload payload) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kUdp;
  p.udp = UdpHeader{sport, dport};
  p.payload = std::move(payload);
  return p;
}

Packet Packet::make_tcp(Ipv4Addr src, Ipv4Addr dst, const TcpHeader& hdr,
                        Payload payload) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kTcp;
  p.tcp = hdr;
  p.payload = std::move(payload);
  return p;
}

Packet Packet::make_raw(Ipv4Addr src, Ipv4Addr dst, Payload payload) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.proto = IpProto::kRaw;
  p.payload = std::move(payload);
  return p;
}

mem::BoxPool<Packet>& packet_boxes() {
  // Shard-local slot: each shard boxes packets out of its own instance
  // (leaked with its ShardPools); a box recycled across a shard boundary —
  // or during static destruction — rides the remote-free channel home.
  static const int slot =
      mem::ShardPools::register_slot([](mem::ShardPools& sp) -> mem::PoolBase* {
        return new mem::BoxPool<Packet>("mem/" + sp.label() + "/packet_box",
                                        mem::AllocTag::kEvent, sp.token(),
                                        sp.locked());
      });
  struct Cache {
    const mem::ShardPools* sp = nullptr;
    mem::BoxPool<Packet>* pool = nullptr;
  };
  static thread_local Cache cache;
  mem::ShardPools& sp = mem::shard();
  if (cache.sp != &sp) {
    cache.sp = &sp;
    cache.pool = static_cast<mem::BoxPool<Packet>*>(sp.slot(slot));
  }
  return *cache.pool;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string string_of(const std::vector<std::uint8_t>& b) {
  return {b.begin(), b.end()};
}

std::string string_of(const Payload& p) { return string_of(p.bytes()); }

}  // namespace asp::net
