#include "net/trace.hpp"

#include <cstdio>

namespace asp::net {

std::string describe(const Packet& p) {
  std::string s = p.ip.src.str();
  if (p.tcp) s += ":" + std::to_string(p.tcp->sport);
  if (p.udp) s += ":" + std::to_string(p.udp->sport);
  s += " > " + p.ip.dst.str();
  if (p.tcp) {
    s += ":" + std::to_string(p.tcp->dport) + " tcp ";
    if (p.tcp->has(tcpflag::kSyn)) s += 'S';
    if (p.tcp->has(tcpflag::kFin)) s += 'F';
    if (p.tcp->has(tcpflag::kRst)) s += 'R';
    if (p.tcp->has(tcpflag::kPsh)) s += 'P';
    if (p.tcp->has(tcpflag::kAck)) s += '.';
    s += " seq=" + std::to_string(p.tcp->seq) + " ack=" + std::to_string(p.tcp->ack);
  } else if (p.udp) {
    s += ":" + std::to_string(p.udp->dport) + " udp";
  } else {
    s += " raw";
  }
  s += " len=" + std::to_string(p.payload.size());
  s += " ttl=" + std::to_string(p.ip.ttl);
  if (!p.channel.empty()) s += " chan=" + p.channel;
  return s;
}

std::string PacketTracer::dump() const {
  std::string out;
  char head[64];
  for (const TraceEvent& e : events_) {
    std::snprintf(head, sizeof head, "[%10.6f] %-12s #%llu ", to_seconds(e.time),
                  e.node.c_str(), static_cast<unsigned long long>(e.packet_id));
    out += head;
    out += e.summary;
    out += '\n';
  }
  return out;
}

}  // namespace asp::net
