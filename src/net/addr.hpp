// IPv4 addresses.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace asp::net {

/// An IPv4 address (host byte order). Value type, totally ordered, hashable.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad notation ("131.254.60.81"). Returns nullopt on error.
  static std::optional<Ipv4Addr> parse(const std::string& s);

  constexpr std::uint32_t bits() const { return bits_; }
  std::string str() const;

  /// 224.0.0.0/4.
  constexpr bool is_multicast() const { return (bits_ >> 28) == 0xE; }
  constexpr bool is_unspecified() const { return bits_ == 0; }

  /// True if this address falls in `prefix`/`prefix_len`.
  constexpr bool in_prefix(Ipv4Addr prefix, int prefix_len) const {
    if (prefix_len == 0) return true;
    std::uint32_t mask = prefix_len >= 32 ? 0xFFFFFFFFu : ~(0xFFFFFFFFu >> prefix_len);
    return (bits_ & mask) == (prefix.bits_ & mask);
  }

  friend constexpr bool operator==(Ipv4Addr a, Ipv4Addr b) { return a.bits_ == b.bits_; }
  friend constexpr bool operator!=(Ipv4Addr a, Ipv4Addr b) { return a.bits_ != b.bits_; }
  friend constexpr bool operator<(Ipv4Addr a, Ipv4Addr b) { return a.bits_ < b.bits_; }

 private:
  std::uint32_t bits_ = 0;
};

}  // namespace asp::net

template <>
struct std::hash<asp::net::Ipv4Addr> {
  std::size_t operator()(asp::net::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};
