// A deliberately small TCP: 3-way handshake, cumulative ACKs, go-back-N
// retransmission with a slow-start/AIMD congestion window, FIN teardown.
//
// This is the substrate for the HTTP load-balancing experiment (paper §3.2):
// what matters there is that connections are established end-to-end through a
// gateway that rewrites addresses, and that servers saturate under load.
//
// Threading (DESIGN.md §6f): a TcpStack and every TcpConnection it owns are
// SHARD-CONFINED to their node's shard — timers go through the node's
// events(), segments leave via the node's interfaces, and peer segments
// arrive as ordinary packet deliveries on this shard's queue. A connection's
// two endpoints may live on different shards; they only ever interact
// through transmitted packets, never by touching each other's state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace asp::net {

class TcpStack;

/// One end of a TCP connection.
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  enum class State {
    kClosed,
    kListen,
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait,    // we sent FIN, waiting for ACK/FIN
    kCloseWait,  // peer sent FIN, we still may send
    kLastAck,
  };

  using DataHandler = std::function<void(const std::vector<std::uint8_t>&)>;
  using EventHandler = std::function<void()>;

  static constexpr std::uint32_t kMss = 1460;
  static constexpr std::uint32_t kMaxWnd = 64 * 1024;

  ~TcpConnection();

  /// Queues application data for reliable delivery.
  void send(std::vector<std::uint8_t> data);
  void send(const std::string& s) { send(std::vector<std::uint8_t>(s.begin(), s.end())); }

  /// Half-closes: FIN after all queued data is acknowledged.
  void close();
  /// Drops all state immediately (no FIN).
  void abort();

  void on_established(EventHandler h) { established_cb_ = std::move(h); }
  void on_data(DataHandler h) { data_cb_ = std::move(h); }
  void on_closed(EventHandler h) { closed_cb_ = std::move(h); }

  State state() const { return state_; }
  Ipv4Addr local_addr() const { return local_; }
  Ipv4Addr remote_addr() const { return remote_; }
  std::uint16_t local_port() const { return lport_; }
  std::uint16_t remote_port() const { return rport_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  friend class TcpStack;

  TcpConnection(TcpStack& stack, Ipv4Addr local, std::uint16_t lport, Ipv4Addr remote,
                std::uint16_t rport);

  void start_connect();
  void start_accept(const Packet& syn);
  void handle(const Packet& p);
  void pump();           // transmit new segments within the window
  void emit(std::uint8_t flags, std::uint32_t seq, std::vector<std::uint8_t> data);
  void arm_timer();
  void on_timeout();
  void finish(bool notify);

  TcpStack& stack_;
  Ipv4Addr local_, remote_;
  std::uint16_t lport_, rport_;
  State state_ = State::kClosed;

  // Send side (go-back-N over a byte stream).
  std::deque<std::uint8_t> send_buf_;  // bytes not yet acked; front == snd_una_
  std::uint32_t snd_una_ = 0;          // first unacked seq
  std::uint32_t snd_nxt_ = 0;          // next seq to send
  std::uint32_t iss_ = 0;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  bool peer_fin_seen_ = false;

  // Receive side.
  std::uint32_t rcv_nxt_ = 0;

  // Congestion control.
  std::uint32_t cwnd_ = 2 * kMss;
  std::uint32_t ssthresh_ = kMaxWnd;

  EventId rto_timer_ = 0;
  bool timer_armed_ = false;
  SimTime rto_ = millis(200);
  int consecutive_timeouts_ = 0;
  static constexpr int kMaxRetries = 12;  // then the connection is declared dead

  DataHandler data_cb_;
  EventHandler established_cb_;
  EventHandler closed_cb_;

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t retransmissions_ = 0;

  // Cached instruments in the global registry (node/<name>/tcp/...).
  obs::Counter* m_tx_bytes_ = nullptr;
  obs::Counter* m_rx_bytes_ = nullptr;
  obs::Counter* m_retransmits_ = nullptr;
};

/// Per-node TCP demultiplexer.
class TcpStack {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<TcpConnection>)>;

  explicit TcpStack(Node& node) : node_(node) {}

  /// Starts accepting connections on `port`.
  void listen(std::uint16_t port, AcceptHandler on_accept);
  void stop_listening(std::uint16_t port) { listeners_.erase(port); }

  /// Opens a connection to dst:dport. Callbacks fire as the handshake runs.
  std::shared_ptr<TcpConnection> connect(Ipv4Addr dst, std::uint16_t dport);

  /// Demux entry from Node::deliver_local. Returns false if nobody wants it.
  bool on_packet(const Packet& p);

  Node& node() { return node_; }
  std::size_t open_connections() const { return conns_.size(); }

 private:
  friend class TcpConnection;
  using Key = std::tuple<std::uint32_t, std::uint16_t, std::uint32_t, std::uint16_t>;
  static Key key(Ipv4Addr l, std::uint16_t lp, Ipv4Addr r, std::uint16_t rp) {
    return {l.bits(), lp, r.bits(), rp};
  }

  void drop(TcpConnection& c);

  Node& node_;
  std::map<Key, std::shared_ptr<TcpConnection>> conns_;
  std::map<std::uint16_t, AcceptHandler> listeners_;
  std::uint16_t next_ephemeral_ = 32768;
};

}  // namespace asp::net
