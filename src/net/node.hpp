// Nodes: hosts and routers with an IP stack that PLAN-P programs can replace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/event.hpp"
#include "net/medium.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"

namespace asp::net {

class Node;
class TcpStack;

/// One routing table entry. `next_hop` unspecified means the destination is
/// directly attached to the interface's medium.
struct Route {
  Ipv4Addr prefix;
  int prefix_len = 0;
  int iface = 0;
  Ipv4Addr next_hop;
};

/// Longest-prefix-match routing table. Routes live in one contiguous vector
/// kept sorted by prefix length (longest first, stable within a length), so
/// lookup is a forward scan that can stop at the FIRST match — the
/// longest-prefix winner by construction. Same match semantics as the old
/// best-so-far scan (first-added wins among equal-length matches), but the
/// common case on generated topologies (a /30 or /24 hit near the front)
/// touches a fraction of the table.
class RoutingTable {
 public:
  void add(Ipv4Addr prefix, int prefix_len, int iface, Ipv4Addr next_hop = {});
  void add_default(int iface, Ipv4Addr next_hop = {}) { add({}, 0, iface, next_hop); }
  /// Returns the best route for `dst` or nullptr. Longest-prefix scan with a
  /// one-entry MRU cache in front: core routers in a fat-tree forward long
  /// runs of packets to the same destination, and each would otherwise
  /// re-scan up to k prefixes. Hit/miss totals are published process-wide as
  /// node/_agg/net/route_cache_{hits,misses}.
  const Route* lookup(Ipv4Addr dst) const;
  /// Routes in lookup order (longest prefix first), not insertion order.
  const std::vector<Route>& routes() const { return routes_; }

 private:
  std::vector<Route> routes_;  // sorted: prefix_len descending, stable
  // MRU cache (index, not pointer: add() reallocates routes_ and also
  // invalidates — a new longer prefix may beat the cached match).
  mutable Ipv4Addr cached_dst_{};
  mutable std::size_t cached_idx_ = SIZE_MAX;  // SIZE_MAX: empty
};

/// An unreliable datagram socket bound to a UDP port on a node.
class UdpSocket {
 public:
  using Handler = std::function<void(const Packet&)>;

  UdpSocket(Node& node, std::uint16_t port, Handler on_packet);
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  void send_to(Ipv4Addr dst, std::uint16_t dport, std::vector<std::uint8_t> payload);
  std::uint16_t port() const { return port_; }
  Node& node() { return node_; }
  void handle(const Packet& p) { if (on_packet_) on_packet_(p); }

 private:
  Node& node_;
  std::uint16_t port_;
  Handler on_packet_;
};

/// A simulated machine. A Node with `router()` set forwards IP packets between
/// its interfaces; hosts only source/sink traffic. The PLAN-P runtime attaches
/// via `set_ip_hook`, which sees every packet entering the IP layer — exactly
/// where the paper's Solaris kernel module sits (paper Figure 1).
///
/// Threading (DESIGN.md §6f): a Node is SHARD-CONFINED — it lives on exactly
/// one shard, and every method (receive, send_ip, forward, the statistics
/// accessors, TCP/UDP) must run on that shard's thread. Packets from other
/// shards arrive only via the owning medium's merged mailbox events, which
/// the executor schedules onto this node's queue; no foreign thread calls
/// into a Node directly. events() returns the owning shard's queue — always
/// schedule node-local work there, never on another node's queue. The
/// statistics counters stay plain fields for exactly this reason.
class Node {
 public:
  /// Hook result: consumed (the ASP handled the packet) or pass-through.
  using IpHook = std::function<bool(Packet&, Interface&)>;

  /// Batch hook: takes over the ENTIRE receive path for a PacketBatch. The
  /// installer must, for each packet in order: call note_rx(), dispatch, and
  /// route non-consumed packets through standard_ip() — that contract is what
  /// keeps batched and per-packet runs byte-identical (DESIGN.md §6c).
  using IpBatchHook = std::function<void(PacketBatch&&, Interface&)>;

  Node(EventQueue& events, std::string name);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Creation index within the owning Network (set by add_node). Used as the
  /// canonical tie-break rank for p2p frame deliveries — see
  /// EventQueue::schedule_ranked and DESIGN.md §6f. Standalone nodes keep 0.
  std::uint32_t topo_index() const { return topo_index_; }
  void set_topo_index(std::uint32_t i) { topo_index_ = i; }

  const std::string& name() const { return name_; }
  EventQueue& events() { return *events_; }

  /// Rebinds this node to a shard's private queue (barrier-only: called by
  /// the parallel executor at install time, before any worker runs).
  void bind_events(EventQueue& q) { events_ = &q; }

  /// Adds an interface with the given IP address; returns it. A connected
  /// route for the interface subnet (default /24) is installed automatically.
  ///
  /// Interfaces live in contiguous per-node storage (cache-compact: the whole
  /// receive/forward path indexes a flat array instead of chasing a deque of
  /// unique_ptrs). Growing the array can relocate the objects: attached media
  /// are repointed automatically (Medium::repoint), but a raw Interface& held
  /// by CALLER code is invalidated by a later add_interface on the SAME node —
  /// re-fetch via iface(i), or reserve_ifaces() the final count up front.
  Interface& add_interface(Ipv4Addr addr, int prefix_len = 24);
  /// Pre-sizes the interface array (topology generators know node degrees),
  /// guaranteeing no relocation for the next `n - iface_count()` adds.
  void reserve_ifaces(std::size_t n);
  Interface& iface(int i) { return ifaces_.at(static_cast<std::size_t>(i)); }
  const Interface& iface(int i) const {
    return ifaces_.at(static_cast<std::size_t>(i));
  }
  std::size_t iface_count() const { return ifaces_.size(); }

  /// True if `a` is one of this node's interface addresses.
  bool owns(Ipv4Addr a) const;
  /// The node's primary address (interface 0).
  Ipv4Addr addr() const;

  void set_router(bool r) { router_ = r; }
  bool router() const { return router_; }

  RoutingTable& routes() { return routes_; }
  const RoutingTable& routes() const { return routes_; }

  /// IGMP-lite: join/leave a multicast group (hosts). Flat sorted storage —
  /// membership checks are a binary search over contiguous addresses.
  void join_group(Ipv4Addr group) {
    auto it = std::lower_bound(groups_.begin(), groups_.end(), group);
    if (it == groups_.end() || *it != group) groups_.insert(it, group);
  }
  void leave_group(Ipv4Addr group) {
    auto it = std::lower_bound(groups_.begin(), groups_.end(), group);
    if (it != groups_.end() && *it == group) groups_.erase(it);
  }
  bool in_group(Ipv4Addr group) const {
    return std::binary_search(groups_.begin(), groups_.end(), group);
  }

  /// Multicast route: packets to `group` are forwarded out of `ifaces`.
  void add_mroute(Ipv4Addr group, std::vector<int> out_ifaces);

  /// Installs/clears the PLAN-P intercept for packets entering the IP layer.
  /// Redefines the whole packet path: any batch hook is cleared, because a
  /// batch hook is only valid as the batched form of the CURRENT single-packet
  /// hook (an installer that has one calls set_ip_batch_hook afterwards).
  void set_ip_hook(IpHook hook) {
    ip_hook_ = std::move(hook);
    ip_batch_hook_ = nullptr;
  }

  /// Installs/clears the batched intercept (see IpBatchHook contract). Call
  /// after set_ip_hook — it must stay semantically paired with the single
  /// hook. Without one, receive_batch() degrades to per-packet receive().
  void set_ip_batch_hook(IpBatchHook hook) { ip_batch_hook_ = std::move(hook); }

  /// Pure observers invoked on every received packet, before the hook
  /// (measurement taps for experiments; cannot consume or modify). Taps
  /// compose: each add_rx_tap appends to a multicast list, so a tracer and a
  /// metrics probe can watch the same node.
  using RxTap = std::function<void(const Packet&, const Interface&)>;
  void add_rx_tap(RxTap tap) {
    if (tap) rx_taps_.push_back(std::move(tap));
  }
  void clear_rx_taps() { rx_taps_.clear(); }
  /// Single-tap shim kept for source compatibility: clears every installed
  /// tap, then installs `tap` (nullptr just clears).
  [[deprecated("replaces every installed tap; use add_rx_tap")]] void set_rx_tap(
      RxTap tap) {
    rx_taps_.clear();
    if (tap) rx_taps_.push_back(std::move(tap));
  }

  /// Entry point from a medium: a packet arrived on `in`.
  void receive(Packet p, Interface& in);

  /// Entry point from a medium's batch drain: every member arrived on `in`
  /// at the same timestamp, in canonical order.
  void receive_batch(PacketBatch&& batch, Interface& in);

  /// Receive-side accounting + rx taps for one packet — the first half of
  /// receive(). Public for IpBatchHook installers, which must run it per
  /// packet before dispatching (so taps observe batched and per-packet runs
  /// identically).
  void note_rx(const Packet& p, Interface& in);

  /// Standard IP processing — the second half of receive(), everything after
  /// the PLAN-P hook declined the packet: multicast handling, local delivery,
  /// router forwarding. Public for IpBatchHook installers, which must feed
  /// every non-consumed packet through here in order.
  void standard_ip(Packet p, Interface& in);

  /// Sends a locally generated IP packet (routes, then transmits). Packets
  /// addressed to this node loop back to local delivery.
  void send_ip(Packet p);

  /// Routes and transmits without local-delivery shortcut; used by routers
  /// and by the runtime's OnRemote.
  void forward(Packet p);

  TcpStack& tcp() { return *tcp_; }

  /// Hands a packet straight to the local transport layer (UDP/TCP demux),
  /// bypassing routing and the PLAN-P hook. Used by the runtime's deliver().
  void deliver_local(Packet p);

  // --- statistics -----------------------------------------------------------
  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }
  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }
  std::uint64_t dropped_ttl() const { return dropped_ttl_; }
  std::uint64_t dropped_no_listener() const { return dropped_no_listener_; }

  /// Fresh packet id (node-scoped uniqueness is enough for tracing).
  std::uint64_t next_packet_id() { return ++packet_seq_; }

  /// Egress accounting hook (called by Interface::note_tx): mirrors transmit
  /// volume into the global metrics registry.
  void note_tx_metrics(std::size_t bytes) {
    m_tx_packets_->inc();
    m_tx_bytes_->inc(bytes);
  }

 private:
  friend class UdpSocket;

  /// One multicast forwarding entry (sorted by group in mroutes_).
  struct MRoute {
    Ipv4Addr group;
    std::vector<int> out;
  };
  const std::vector<int>* mroute_lookup(Ipv4Addr group) const;
  UdpSocket* udp_lookup(std::uint16_t port) const;

  EventQueue* events_;  // owning shard's queue (rebindable, never null)
  std::string name_;
  std::uint32_t topo_index_ = 0;
  // Flat per-node state (DESIGN.md §6g): interfaces by value in one
  // contiguous array; groups/mroutes/udp ports as sorted vectors instead of
  // node-per-entry trees. A 10^4-node topology walks these on every packet.
  std::vector<Interface> ifaces_;
  bool router_ = false;
  RoutingTable routes_;
  std::vector<Ipv4Addr> groups_;  // sorted
  std::vector<MRoute> mroutes_;   // sorted by group
  IpHook ip_hook_;
  IpBatchHook ip_batch_hook_;
  std::vector<RxTap> rx_taps_;
  std::vector<std::pair<std::uint16_t, UdpSocket*>> udp_ports_;  // sorted by port
  std::unique_ptr<TcpStack> tcp_;

  // Cached instruments in the global registry (node/<name>/net/...). The
  // scalar accessors above stay per-instance; these accumulate process-wide.
  obs::Counter* m_rx_packets_ = nullptr;
  obs::Counter* m_rx_bytes_ = nullptr;
  obs::Counter* m_tx_packets_ = nullptr;
  obs::Counter* m_tx_bytes_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;

  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  std::uint64_t dropped_ttl_ = 0;
  std::uint64_t dropped_no_listener_ = 0;
  std::uint64_t packet_seq_ = 0;
};

}  // namespace asp::net
