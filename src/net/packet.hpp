// Packet model: IPv4 header plus optional TCP/UDP headers and a payload blob.
//
// PLAN-P channels pattern-match on the header stack (e.g. a channel over
// `ip*tcp*blob` sees every TCP packet), so the packet keeps its headers as
// structured fields rather than raw bytes.
//
// Payloads are copy-on-write: the bytes live in a shared immutable buffer
// (the same rep as a PLAN-P blob), so fan-out on a broadcast segment, TCP
// segmentation and packet->value decoding all alias one allocation. Mutation
// goes through Packet::mutable_payload(), which clones only when the buffer
// is shared — the zero-copy discipline of production proxies (cf. ATS's
// IOBuffer chains).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/pool.hpp"
#include "net/addr.hpp"

namespace asp::net {

/// Shared immutable byte buffer: the payload rep, aliasable with planp::Blob.
using Buffer = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Wraps bytes in a Buffer. All buffers in the system are created through
/// here (or alias one that was): the pointee is allocated non-const, which is
/// what makes Payload's clone-on-write const_cast well-defined. The storage
/// is adopted into mem::buffer_pool(), so when the last reference (Payload,
/// blob Value, aliased packet) drops, the vector — capacity and all — goes
/// back on a freelist instead of to the allocator.
Buffer make_buffer(std::vector<std::uint8_t> bytes);

/// An empty pooled buffer with capacity >= `capacity_hint`: the zero-copy way
/// to build a payload (fill via mutate()/const_cast at the producer). Served
/// from the pool's freelist in steady state.
Buffer acquire_buffer(std::size_t capacity_hint);

/// A copy-on-write byte sequence. Copies alias; `mutate()` clones the bytes
/// iff the buffer is shared. The read API mirrors the std::vector subset the
/// packet path uses, so most call sites did not change when Packet::payload
/// switched from std::vector to Payload.
class Payload {
 public:
  Payload() : buf_(empty_buffer()) {}
  Payload(std::vector<std::uint8_t> bytes)  // NOLINT: implicit by design
      : buf_(bytes.empty() ? empty_buffer() : make_buffer(std::move(bytes))) {}
  Payload(Buffer b) : buf_(b ? std::move(b) : empty_buffer()) {}  // NOLINT
  Payload(std::initializer_list<std::uint8_t> bytes)
      : Payload(std::vector<std::uint8_t>(bytes)) {}

  std::size_t size() const { return buf_->size(); }
  bool empty() const { return buf_->empty(); }
  const std::uint8_t* data() const { return buf_->data(); }
  std::vector<std::uint8_t>::const_iterator begin() const { return buf_->begin(); }
  std::vector<std::uint8_t>::const_iterator end() const { return buf_->end(); }
  std::uint8_t operator[](std::size_t i) const { return (*buf_)[i]; }

  /// Read view of the bytes (never null; empty payloads share one buffer).
  const std::vector<std::uint8_t>& bytes() const { return *buf_; }

  /// The refcounted buffer itself, for aliasing into a PLAN-P blob Value or
  /// another packet without copying.
  const Buffer& buffer() const { return buf_; }

  /// Clone-on-write access: returns the bytes as a mutable vector, cloning
  /// them first iff the buffer is shared with another Payload/blob.
  std::vector<std::uint8_t>& mutate();

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.buf_ == b.buf_ || *a.buf_ == *b.buf_;
  }
  friend bool operator==(const Payload& a, const std::vector<std::uint8_t>& b) {
    return *a.buf_ == b;
  }
  friend bool operator==(const std::vector<std::uint8_t>& a, const Payload& b) {
    return a == *b.buf_;
  }

 private:
  static const Buffer& empty_buffer();

  Buffer buf_;
};

/// Interned channel-tag ids: process-wide, dense, stable small ints standing
/// in for channel-name strings on the dispatch fast path. 0 means "no tag".
class ChannelTags {
 public:
  /// Id for `name`, interning it on first sight ("" -> 0). O(1) amortized.
  static std::uint32_t intern(const std::string& name);
  /// Name for an interned id ("" for 0 or unknown ids).
  static const std::string& name_of(std::uint32_t id);
};

/// IP protocol numbers we model.
enum class IpProto : std::uint8_t { kRaw = 0, kTcp = 6, kUdp = 17 };

struct IpHeader {
  Ipv4Addr src;
  Ipv4Addr dst;
  IpProto proto = IpProto::kRaw;
  std::uint8_t ttl = 64;
  std::uint8_t tos = 0;

  static constexpr std::size_t kWireSize = 20;
};

/// TCP flag bits.
namespace tcpflag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflag

struct TcpHeader {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t wnd = 0;

  static constexpr std::size_t kWireSize = 20;

  bool has(std::uint8_t f) const { return (flags & f) != 0; }
};

struct UdpHeader {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;

  static constexpr std::size_t kWireSize = 8;
};

/// A network packet. Copyable (broadcast media copy it per receiver); copies
/// alias the payload buffer until one side mutates.
struct Packet {
  IpHeader ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  Payload payload;

  /// PLAN-P user-defined channel tag. Packets sent on a user channel carry the
  /// channel name so the receiving runtime can dispatch them (paper §2: "When
  /// packets are sent on a user-defined channel, the packet is tagged").
  std::string channel;

  /// Interned id of `channel` (0 = untagged). Senders set it via
  /// set_channel(); the runtime resolves it lazily for packets whose channel
  /// string was assigned directly.
  std::uint32_t channel_tag = 0;

  /// Sets the channel tag, keeping name and interned id consistent.
  void set_channel(const std::string& name) {
    channel = name;
    channel_tag = ChannelTags::intern(name);
  }

  /// Clone-on-write access to the payload bytes.
  std::vector<std::uint8_t>& mutable_payload() { return payload.mutate(); }

  /// Unique id for tracing/debugging; assigned by the sender.
  std::uint64_t id = 0;

  /// Per-hop L2 destination hint set by the sender's route lookup (stands in
  /// for ARP): on a shared segment the frame is delivered to the interface
  /// with this address. Unspecified means "resolve by ip.dst".
  Ipv4Addr l2_next_hop;

  /// Bytes on the wire: headers + payload (+4 for a channel tag when present).
  std::size_t wire_size() const {
    std::size_t n = IpHeader::kWireSize + payload.size();
    if (tcp) n += TcpHeader::kWireSize;
    if (udp) n += UdpHeader::kWireSize;
    if (!channel.empty()) n += 4;
    return n;
  }

  /// Convenience factories.
  static Packet make_udp(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sport,
                         std::uint16_t dport, Payload payload);
  static Packet make_tcp(Ipv4Addr src, Ipv4Addr dst, const TcpHeader& hdr,
                         Payload payload);
  static Packet make_raw(Ipv4Addr src, Ipv4Addr dst, Payload payload);
};

/// Pool of in-flight Packet boxes: media move a Packet into a box so their
/// delivery callbacks capture a pointer-sized handle (fits SmallFn's inline
/// buffer) instead of a ~150-byte Packet. Boxes recycle on delivery.
mem::BoxPool<Packet>& packet_boxes();

/// Builds a payload from a string (for control messages).
std::vector<std::uint8_t> bytes_of(const std::string& s);
/// Interprets a payload as a string.
std::string string_of(const std::vector<std::uint8_t>& b);
std::string string_of(const Payload& p);

}  // namespace asp::net
