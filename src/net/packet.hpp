// Packet model: IPv4 header plus optional TCP/UDP headers and a payload blob.
//
// PLAN-P channels pattern-match on the header stack (e.g. a channel over
// `ip*tcp*blob` sees every TCP packet), so the packet keeps its headers as
// structured fields rather than raw bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.hpp"

namespace asp::net {

/// IP protocol numbers we model.
enum class IpProto : std::uint8_t { kRaw = 0, kTcp = 6, kUdp = 17 };

struct IpHeader {
  Ipv4Addr src;
  Ipv4Addr dst;
  IpProto proto = IpProto::kRaw;
  std::uint8_t ttl = 64;
  std::uint8_t tos = 0;

  static constexpr std::size_t kWireSize = 20;
};

/// TCP flag bits.
namespace tcpflag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflag

struct TcpHeader {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t wnd = 0;

  static constexpr std::size_t kWireSize = 20;

  bool has(std::uint8_t f) const { return (flags & f) != 0; }
};

struct UdpHeader {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;

  static constexpr std::size_t kWireSize = 8;
};

/// A network packet. Copyable (broadcast media copy it per receiver).
struct Packet {
  IpHeader ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::vector<std::uint8_t> payload;

  /// PLAN-P user-defined channel tag. Packets sent on a user channel carry the
  /// channel name so the receiving runtime can dispatch them (paper §2: "When
  /// packets are sent on a user-defined channel, the packet is tagged").
  std::string channel;

  /// Unique id for tracing/debugging; assigned by the sender.
  std::uint64_t id = 0;

  /// Per-hop L2 destination hint set by the sender's route lookup (stands in
  /// for ARP): on a shared segment the frame is delivered to the interface
  /// with this address. Unspecified means "resolve by ip.dst".
  Ipv4Addr l2_next_hop;

  /// Bytes on the wire: headers + payload (+4 for a channel tag when present).
  std::size_t wire_size() const {
    std::size_t n = IpHeader::kWireSize + payload.size();
    if (tcp) n += TcpHeader::kWireSize;
    if (udp) n += UdpHeader::kWireSize;
    if (!channel.empty()) n += 4;
    return n;
  }

  /// Convenience factories.
  static Packet make_udp(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sport,
                         std::uint16_t dport, std::vector<std::uint8_t> payload);
  static Packet make_tcp(Ipv4Addr src, Ipv4Addr dst, const TcpHeader& hdr,
                         std::vector<std::uint8_t> payload);
  static Packet make_raw(Ipv4Addr src, Ipv4Addr dst, std::vector<std::uint8_t> payload);
};

/// Builds a payload from a string (for control messages).
std::vector<std::uint8_t> bytes_of(const std::string& s);
/// Interprets a payload as a string.
std::string string_of(const std::vector<std::uint8_t>& b);

}  // namespace asp::net
