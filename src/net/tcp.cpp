#include "net/tcp.hpp"

#include <algorithm>
#include <cassert>

namespace asp::net {

namespace {
// Sequence comparison tolerant of wraparound (not that our streams wrap).
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_le(std::uint32_t a, std::uint32_t b) { return a == b || seq_lt(a, b); }
}  // namespace

TcpConnection::TcpConnection(TcpStack& stack, Ipv4Addr local, std::uint16_t lport,
                             Ipv4Addr remote, std::uint16_t rport)
    : stack_(stack), local_(local), remote_(remote), lport_(lport), rport_(rport) {
  obs::MetricsRegistry& reg = obs::registry();
  const std::string prefix = "node/" + stack_.node().name() + "/tcp/";
  m_tx_bytes_ = &reg.counter(prefix + "tx_bytes");
  m_rx_bytes_ = &reg.counter(prefix + "rx_bytes");
  m_retransmits_ = &reg.counter(prefix + "retransmits");
  reg.counter(prefix + "connections").inc();
}

TcpConnection::~TcpConnection() = default;

void TcpConnection::start_connect() {
  state_ = State::kSynSent;
  iss_ = 1;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes a sequence number
  emit(tcpflag::kSyn, iss_, {});
  arm_timer();
}

void TcpConnection::start_accept(const Packet& syn) {
  state_ = State::kSynRcvd;
  rcv_nxt_ = syn.tcp->seq + 1;
  iss_ = 1;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  emit(tcpflag::kSyn | tcpflag::kAck, iss_, {});
  arm_timer();
}

void TcpConnection::emit(std::uint8_t flags, std::uint32_t seq,
                         std::vector<std::uint8_t> data) {
  TcpHeader h;
  h.sport = lport_;
  h.dport = rport_;
  h.seq = seq;
  h.ack = rcv_nxt_;
  h.flags = flags | ((state_ != State::kSynSent) ? tcpflag::kAck : 0);
  if (state_ == State::kSynSent) h.flags = flags;  // first SYN has no ACK
  h.wnd = static_cast<std::uint16_t>(std::min<std::uint32_t>(kMaxWnd, 0xFFFF));
  Packet p = Packet::make_tcp(local_, remote_, h, std::move(data));
  p.id = stack_.node().next_packet_id();
  stack_.node().send_ip(std::move(p));
}

void TcpConnection::send(std::vector<std::uint8_t> data) {
  if (state_ == State::kClosed || fin_pending_ || fin_sent_) return;
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished || state_ == State::kCloseWait) pump();
}

void TcpConnection::close() {
  if (state_ == State::kClosed) return;
  fin_pending_ = true;
  pump();
}

void TcpConnection::abort() { finish(false); }

void TcpConnection::pump() {
  // Send any window-permitted data in [snd_nxt_, snd_una_ + cwnd).
  std::uint32_t inflight = snd_nxt_ - snd_una_;
  std::uint32_t wnd = std::min(cwnd_, kMaxWnd);
  // Data seq space starts at iss_+1; offset of snd_nxt_ into send_buf_:
  while (!send_buf_.empty() && inflight < wnd) {
    std::uint32_t buf_off = snd_nxt_ - snd_una_;
    if (buf_off >= send_buf_.size()) break;  // everything queued is in flight
    std::uint32_t chunk = std::min<std::uint32_t>(
        {kMss, static_cast<std::uint32_t>(send_buf_.size()) - buf_off, wnd - inflight});
    std::vector<std::uint8_t> data(send_buf_.begin() + buf_off,
                                   send_buf_.begin() + buf_off + chunk);
    emit(tcpflag::kPsh, snd_nxt_, std::move(data));
    snd_nxt_ += chunk;
    bytes_sent_ += chunk;
    m_tx_bytes_->inc(chunk);
    inflight = snd_nxt_ - snd_una_;
  }
  // FIN once all data is sent.
  std::uint32_t unsent = snd_una_ + static_cast<std::uint32_t>(send_buf_.size()) - snd_nxt_;
  if (fin_pending_ && !fin_sent_ && unsent == 0) {
    emit(tcpflag::kFin, snd_nxt_, {});
    snd_nxt_ += 1;
    fin_sent_ = true;
    if (state_ == State::kEstablished) state_ = State::kFinWait;
    if (state_ == State::kCloseWait) state_ = State::kLastAck;
  }
  if (snd_nxt_ != snd_una_) arm_timer();
}

void TcpConnection::arm_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  auto self = shared_from_this();
  rto_timer_ = stack_.node().events().schedule_in(rto_, [self]() {
    self->timer_armed_ = false;
    self->on_timeout();
  });
}

void TcpConnection::on_timeout() {
  if (state_ == State::kClosed) return;
  if (snd_una_ == snd_nxt_ && !fin_pending_) {
    consecutive_timeouts_ = 0;
    return;  // nothing outstanding
  }
  if (++consecutive_timeouts_ > kMaxRetries) {
    finish(true);  // peer is gone; give up
    return;
  }

  ++retransmissions_;
  m_retransmits_->inc();
  // Multiplicative decrease, then go-back-N from snd_una_.
  ssthresh_ = std::max(cwnd_ / 2, 2 * kMss);
  cwnd_ = 2 * kMss;

  if (state_ == State::kSynSent) {
    emit(tcpflag::kSyn, iss_, {});
  } else if (state_ == State::kSynRcvd) {
    emit(tcpflag::kSyn | tcpflag::kAck, iss_, {});
  } else {
    snd_nxt_ = snd_una_;
    fin_sent_ = false;  // will be re-emitted by pump if due
    pump();
  }
  arm_timer();
}

void TcpConnection::handle(const Packet& p) {
  const TcpHeader& h = *p.tcp;

  if (h.has(tcpflag::kRst)) {
    finish(true);
    return;
  }

  switch (state_) {
    case State::kSynSent:
      if (h.has(tcpflag::kSyn) && h.has(tcpflag::kAck) && h.ack == iss_ + 1) {
        rcv_nxt_ = h.seq + 1;
        snd_una_ = h.ack;
        state_ = State::kEstablished;
        emit(tcpflag::kAck, snd_nxt_, {});
        if (established_cb_) established_cb_();
        pump();
      }
      return;
    case State::kSynRcvd:
      if (h.has(tcpflag::kAck) && h.ack == iss_ + 1) {
        snd_una_ = h.ack;
        state_ = State::kEstablished;
        if (established_cb_) established_cb_();
        pump();
        // Fall through to process any piggybacked data below.
      } else if (h.has(tcpflag::kSyn)) {
        emit(tcpflag::kSyn | tcpflag::kAck, iss_, {});  // retransmitted SYN
        return;
      } else {
        return;
      }
      break;
    case State::kClosed:
      return;
    default:
      break;
  }

  // --- Established-family processing ---------------------------------------

  // ACK processing.
  if (h.has(tcpflag::kAck) && seq_lt(snd_una_, h.ack) && seq_le(h.ack, snd_nxt_)) {
    consecutive_timeouts_ = 0;  // forward progress
    std::uint32_t acked = h.ack - snd_una_;
    std::uint32_t fin_in_flight = fin_sent_ ? 1 : 0;
    std::uint32_t data_acked =
        std::min<std::uint32_t>(acked, static_cast<std::uint32_t>(send_buf_.size()));
    send_buf_.erase(send_buf_.begin(), send_buf_.begin() + data_acked);
    snd_una_ = h.ack;
    // Additive increase in congestion avoidance, exponential in slow start.
    if (cwnd_ < ssthresh_) {
      cwnd_ = std::min(cwnd_ + acked, kMaxWnd);
    } else {
      cwnd_ = std::min<std::uint32_t>(cwnd_ + kMss * kMss / cwnd_, kMaxWnd);
    }
    if (fin_in_flight != 0 && snd_una_ == snd_nxt_) {
      // Our FIN was acknowledged.
      if (state_ == State::kLastAck) {
        finish(true);
        return;
      }
      if (state_ == State::kFinWait && peer_fin_seen_) {
        finish(true);
        return;
      }
    }
    pump();
  }

  // In-order data.
  if (!p.payload.empty()) {
    if (h.seq == rcv_nxt_) {
      rcv_nxt_ += static_cast<std::uint32_t>(p.payload.size());
      bytes_received_ += p.payload.size();
      m_rx_bytes_->inc(p.payload.size());
      emit(tcpflag::kAck, snd_nxt_, {});
      if (data_cb_) data_cb_(p.payload.bytes());
    } else {
      // Out of order / duplicate: re-ACK what we expect.
      emit(tcpflag::kAck, snd_nxt_, {});
    }
  }

  // FIN processing.
  if (h.has(tcpflag::kFin)) {
    std::uint32_t fin_seq = h.seq + static_cast<std::uint32_t>(p.payload.size());
    if (fin_seq == rcv_nxt_) {
      rcv_nxt_ += 1;
      peer_fin_seen_ = true;
      emit(tcpflag::kAck, snd_nxt_, {});
      if (state_ == State::kEstablished) {
        state_ = State::kCloseWait;
      } else if (state_ == State::kFinWait && snd_una_ == snd_nxt_) {
        finish(true);
        return;
      }
      if (state_ == State::kCloseWait && fin_pending_) pump();
    } else if (seq_lt(fin_seq, rcv_nxt_)) {
      emit(tcpflag::kAck, snd_nxt_, {});  // duplicate FIN
    }
  }
}

void TcpConnection::finish(bool notify) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  if (timer_armed_) {
    stack_.node().events().cancel(rto_timer_);
    timer_armed_ = false;
  }
  auto self = shared_from_this();  // keep alive through callbacks
  stack_.drop(*this);
  // Clear the handlers: they commonly capture shared_ptrs back to this very
  // connection (deploy sessions, HTTP clients), and a closed connection must
  // not keep such reference cycles alive. The callables are destroyed from a
  // fresh event rather than here, because one of them may be the function
  // currently executing (abort() called from inside on_established/on_data).
  auto closed = std::move(closed_cb_);
  if (established_cb_ || data_cb_) {
    stack_.node().events().schedule_in(
        0, [graveyard_e = std::move(established_cb_),
            graveyard_d = std::move(data_cb_)] {});
  }
  established_cb_ = nullptr;
  data_cb_ = nullptr;
  closed_cb_ = nullptr;
  if (notify && closed) closed();
}

void TcpStack::listen(std::uint16_t port, AcceptHandler on_accept) {
  listeners_[port] = std::move(on_accept);
}

std::shared_ptr<TcpConnection> TcpStack::connect(Ipv4Addr dst, std::uint16_t dport) {
  std::uint16_t sport = next_ephemeral_++;
  if (next_ephemeral_ == 0) next_ephemeral_ = 32768;
  auto conn = std::shared_ptr<TcpConnection>(
      new TcpConnection(*this, node_.addr(), sport, dst, dport));
  conns_[key(node_.addr(), sport, dst, dport)] = conn;
  conn->start_connect();
  return conn;
}

bool TcpStack::on_packet(const Packet& p) {
  const TcpHeader& h = *p.tcp;
  auto it = conns_.find(key(p.ip.dst, h.dport, p.ip.src, h.sport));
  if (it != conns_.end()) {
    auto conn = it->second;  // keep alive: handle() may drop it from the map
    conn->handle(p);
    return true;
  }
  if (h.has(tcpflag::kSyn) && !h.has(tcpflag::kAck)) {
    auto lit = listeners_.find(h.dport);
    if (lit == listeners_.end()) {
      // Closed port: refuse actively so the peer fails fast instead of
      // retrying into the void.
      TcpHeader rst;
      rst.sport = h.dport;
      rst.dport = h.sport;
      rst.seq = 0;
      rst.ack = h.seq + 1;
      rst.flags = tcpflag::kRst | tcpflag::kAck;
      Packet r = Packet::make_tcp(p.ip.dst, p.ip.src, rst, {});
      r.id = node_.next_packet_id();
      node_.send_ip(std::move(r));
      return false;
    }
    auto conn = std::shared_ptr<TcpConnection>(
        new TcpConnection(*this, p.ip.dst, h.dport, p.ip.src, h.sport));
    conns_[key(p.ip.dst, h.dport, p.ip.src, h.sport)] = conn;
    conn->start_accept(p);
    lit->second(conn);
    return true;
  }
  return false;
}

void TcpStack::drop(TcpConnection& c) {
  conns_.erase(key(c.local_addr(), c.local_port(), c.remote_addr(), c.remote_port()));
}

}  // namespace asp::net
