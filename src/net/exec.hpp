// ParallelExecutor: conservative sharded execution of a Network (DESIGN.md
// §6f).
//
// The topology is partitioned into islands — maximal groups of nodes joined
// by Ethernet segments or by point-to-point links that cannot be cut (zero
// delay, or impairments configured, since impairment RNG draws must stay in
// serial order). Islands are merged into N shards by a greedy min-cut/LPT
// heuristic; each shard owns a private EventQueue driven by its own thread
// (the caller's thread drives shard 0, which reuses the Network's primary
// queue so net.now() stays meaningful).
//
// Time advances in bounded-lookahead windows. With W = the minimum delay over
// cut links, every shard may safely run up to cap = next_min + W - 1, where
// next_min is the earliest pending event anywhere: any frame transmitted in
// the window arrives at sender_now + delay >= next_min + W > cap, i.e.
// strictly after the window, so no shard can receive an event in its past.
// Cross-shard frames travel through lock-free mailboxes (mailbox.hpp) and are
// merged at the window barrier, sorted by (arrival, sent, sender_topo, seq)
// so that a run with N shards is byte-identical to the serial run.
//
// Threading: construct, run_until()/run() (or net.run_until() — overrides are
// installed), and destroy all from ONE thread. The destructor parks and joins
// the workers and rebinds every node/medium to the primary queue, leaving the
// Network usable serially again (events still pending in private shard queues
// at that point are dropped — destroy the executor only after a run drains).
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "net/event.hpp"
#include "net/mailbox.hpp"
#include "net/network.hpp"

namespace asp::net {

class ParallelExecutor {
 public:
  struct Stats {
    std::uint64_t windows = 0;         ///< barrier iterations
    std::uint64_t cross_messages = 0;  ///< frames merged through mailboxes
    std::uint64_t events_run = 0;      ///< summed over shards (valid when idle)
  };

  /// Partitions `net` and installs run overrides. `shards` is the requested
  /// shard count; the effective count is min(shards, islands) and `shards<=0`
  /// means one shard per island. The Network must outlive the executor, and
  /// the topology must not be mutated while the executor is attached.
  explicit ParallelExecutor(Network& net, int shards = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Windowed parallel equivalents of EventQueue::run_until / run. Calling
  /// net.run_until()/net.run() lands here via the installed overrides.
  void run_until(SimTime t);
  void run();

  int shard_count() const { return static_cast<int>(shards_.size()); }
  int island_count() const { return islands_; }
  /// Cross-shard lookahead W (min delay over cut links); kNever if no link
  /// was cut (single effective shard).
  SimTime lookahead() const { return lookahead_; }
  /// Shard owning `n`'s event queue.
  int shard_of(const Node& n) const;
  const Stats& stats() const { return stats_; }

 private:
  struct Shard {
    EventQueue* queue = nullptr;        // shard 0: &net.events()
    std::unique_ptr<EventQueue> owned;  // shards 1..N-1
    Mailbox inbox;
    std::uint64_t seq = 0;  // per-shard cross-send counter (sender thread only)
    std::uint64_t events_run = 0;
  };

  void partition(int requested);
  void install();
  void window_loop(SimTime t, bool bounded);
  void dispatch_window(SimTime cap);
  void merge_mailboxes();
  SimTime next_min();
  void worker_main(int shard);

  Network& net_;
  std::vector<Shard> shards_;
  std::unordered_map<const Node*, int> node_shard_;
  int islands_ = 0;
  SimTime lookahead_ = EventQueue::kNever;
  Stats stats_;

  // Window barrier (coordinator = caller thread, workers = shards 1..N-1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t gen_ = 0;  // bumped per window; workers chase it
  SimTime target_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace asp::net
