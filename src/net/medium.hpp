// Transmission media: point-to-point links and shared Ethernet segments.
//
// Threading (DESIGN.md §6f): a medium normally lives on one shard — the
// partitioner never splits an EthernetSegment (all stations share busy state
// and one RNG stream), and never splits a PointToPointLink that carries
// impairments (the RNG draw order must stay serial). The only object touched
// from two shards is a CUT point-to-point link: each direction's transmit
// runs on its sender's thread (own busy_until_ slot and direction meter) and
// hands the frame to the receiving shard through a mailbox poster. The
// members shared across a cut — link_up_, delivered/drop counters — are
// relaxed atomics; everything else stays shard-confined.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/batch.hpp"
#include "net/event.hpp"
#include "net/impairments.hpp"
#include "net/meter.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"
#include "obs/metrics.hpp"

namespace asp::net {

class Node;
class Medium;

/// A network interface: the attachment point between a Node and a Medium.
/// Shard-confined to its node's shard (tx accounting is written only from
/// the owning node's transmits).
class Interface {
 public:
  Interface(Node* node, int index) : node_(node), index_(index) {}

  Node* node() const { return node_; }
  int index() const { return index_; }
  Medium* medium() const { return medium_; }
  void attach(Medium* m) { medium_ = m; }

  /// The node's IP address on this interface.
  Ipv4Addr addr() const { return addr_; }
  void set_addr(Ipv4Addr a) { addr_ = a; }

  /// Promiscuous interfaces receive all frames on a shared segment, not just
  /// those addressed to them (used by the MPEG monitor/capture ASPs, §3.3).
  bool promiscuous() const { return promiscuous_; }
  void set_promiscuous(bool p) { promiscuous_ = p; }

  /// Router interfaces pick up frames whose IP destination is off-segment.
  bool gateway() const { return gateway_; }
  void set_gateway(bool g) { gateway_ = g; }

  /// Hands a packet to the attached medium for transmission. The rvalue
  /// overload moves the packet through (call sites on the forwarding path all
  /// pass rvalues); the lvalue overload copies — cheaply, since the payload
  /// is copy-on-write.
  void transmit(Packet&& p);
  void transmit(const Packet& p);

  /// Egress bandwidth accounting (bytes handed to the medium, pre-drop).
  BandwidthMeter& tx_meter() { return tx_meter_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t tx_packets() const { return tx_packets_; }
  void note_tx(SimTime now, std::size_t bytes);  // defined in medium.cpp (needs Node)

  /// Attachment slot on the owning medium (set by the medium at attach time).
  /// Media use it as the batch-drain `key` identifying the sender, so two
  /// frames from the same station can share a PacketBatch.
  std::uint32_t medium_slot() const { return medium_slot_; }
  void set_medium_slot(std::uint32_t s) { medium_slot_ = s; }

 private:
  Node* node_;
  int index_;
  std::uint32_t medium_slot_ = 0;
  Medium* medium_ = nullptr;
  Ipv4Addr addr_;
  bool promiscuous_ = false;
  bool gateway_ = false;
  BandwidthMeter tx_meter_{kNsPerSec / 2};
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t tx_packets_ = 0;
};

/// Base class for transmission media.
class Medium {
 public:
  Medium(EventQueue& events, std::string name, double bits_per_sec, SimTime delay,
         std::uint64_t queue_capacity_bytes);
  virtual ~Medium() = default;

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Transmits `p` from interface `from`. May drop on queue overflow.
  /// Callable from `from`'s owning shard only (for a cut link that means
  /// either endpoint shard, each confined to its own direction).
  virtual void transmit(Interface& from, Packet p) = 0;

  /// Interface-relocation fixup: nodes store interfaces by value in a growable
  /// array (Node::add_interface), so an attached Interface can move. The node
  /// calls repoint(slot, fresh) for each attached interface after a grow;
  /// `slot` is the value Interface::medium_slot() held at attach time.
  /// Setup-time only (topology construction is single-threaded).
  virtual void repoint(std::uint32_t /*slot*/, Interface* /*fresh*/) {}

  /// Rebinds the medium's scheduling queue (barrier-only: executor install
  /// time). Link-state flips and intra-shard deliveries land on this queue.
  void bind_events(EventQueue& q) { events_ = &q; }
  EventQueue& events() { return *events_; }

  const std::string& name() const { return name_; }
  double bandwidth_bps() const { return bandwidth_bps_; }
  SimTime delay() const { return delay_; }

  /// Delivered totals (relaxed atomics: exact at barriers / end of run).
  std::uint64_t delivered_packets() const { return delivered_packets_.load(); }
  std::uint64_t delivered_bytes() const { return delivered_bytes_.load(); }

  // --- fault injection --------------------------------------------------------

  /// Installs an impairment configuration and reseeds the medium's random
  /// stream from `imp.seed` (two media with the same config, traffic and seed
  /// replay identically).
  void set_impairments(const Impairments& imp) {
    imp_ = imp;
    rng_ = imp.seed != 0 ? imp.seed : 1;  // xorshift state must be nonzero
  }
  /// Mutable access for mid-run schedule changes (rates/jitter only; this
  /// does NOT reseed, so the random stream keeps its position).
  Impairments& impairments() { return imp_; }
  const Impairments& impairments() const { return imp_; }

  /// Legacy shim: uniform random loss only.
  void set_loss_rate(double rate) { imp_.loss_rate = rate; }
  double loss_rate() const { return imp_.loss_rate; }

  /// Link state. A down link drops frames at transmission *and* kills frames
  /// still in flight when it goes down (their arrival finds the link down).
  /// Atomic: both endpoint shards of a cut link read it on their fast paths.
  bool link_up() const { return link_up_.load(std::memory_order_relaxed); }
  void set_link_up(bool up);
  /// Schedules a link-state flip at absolute time `at` (on the owning
  /// shard's queue; the new state is visible to the peer shard from its next
  /// window).
  void schedule_link_state(SimTime at, bool up) {
    events_->schedule_at(at, [this, up] { set_link_up(up); });
  }
  /// Schedules one outage (partition): down at `down_at`, back up at `up_at`.
  void schedule_outage(SimTime down_at, SimTime up_at) {
    schedule_link_state(down_at, false);
    schedule_link_state(up_at, true);
  }

  /// Per-cause drop/duplication/corruption counts.
  const ImpairmentStats& impairment_stats() const { return stats_; }
  std::uint64_t dropped_queue() const { return stats_.dropped_queue; }
  std::uint64_t dropped_loss() const { return stats_.dropped_loss; }
  std::uint64_t dropped_down() const { return stats_.dropped_down; }
  std::uint64_t dropped_unaddressed() const { return stats_.dropped_unaddressed; }
  std::uint64_t duplicated_packets() const { return stats_.duplicated; }
  std::uint64_t corrupted_packets() const { return stats_.corrupted; }
  /// Legacy aggregate: every frame that failed to reach a receiver.
  std::uint64_t dropped_packets() const { return stats_.total_dropped(); }

  /// Aggregate carried-traffic meter (all senders). For point-to-point
  /// links the carried load lives in per-direction meters instead — use
  /// utilization(). Shard-confined (meters mutate on read).
  BandwidthMeter& meter() { return meter_; }

  /// Current utilization in [0,1]: carried bits over the meter window
  /// relative to capacity. Shard-confined: call from the medium's owning
  /// shard only (for a cut link, barrier-only — it reads both direction
  /// meters).
  virtual double utilization() {
    return meter_.rate_bps(events_->now()) / bandwidth_bps_;
  }

 protected:
  /// The impairment dice for one frame, rolled in a fixed order (loss,
  /// corruption, duplication, per-copy jitter) so the stream is deterministic
  /// for a fixed configuration.
  struct FramePlan {
    bool lost = false;
    bool corrupt = false;
    int copies = 1;          // 2 when duplicated
    SimTime extra[2] = {0, 0};  // per-copy delivery jitter
  };
  FramePlan plan_frame();

  /// Flips one payload byte in place (no-op on empty payloads) and counts it.
  void apply_corruption(Packet& p);

  std::uint64_t next_rng() {
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return rng_;
  }
  /// One Bernoulli draw; consumes randomness only when `rate > 0`.
  bool roll(double rate) {
    if (rate <= 0) return false;
    return static_cast<double>(next_rng() % 1'000'000) < rate * 1e6;
  }

  void count_drop_queue() { ++stats_.dropped_queue; m_drop_queue_->inc(); }
  void count_drop_loss() { ++stats_.dropped_loss; m_drop_loss_->inc(); }
  void count_drop_down() { ++stats_.dropped_down; m_drop_down_->inc(); }
  void count_drop_unaddressed() {
    ++stats_.dropped_unaddressed;
    m_drop_unaddressed_->inc();
  }
  void count_duplicated() { ++stats_.duplicated; m_duplicated_->inc(); }
  void note_delivered(const Packet& p) {
    ++delivered_packets_;
    delivered_bytes_ += p.wire_size();
    m_delivered_->inc();
  }

  EventQueue* events_;  // owning shard's queue (rebindable, never null)
  std::string name_;
  double bandwidth_bps_;
  SimTime delay_;
  std::uint64_t queue_capacity_;  // bytes of backlog allowed beyond the wire
  obs::RelaxedU64 delivered_packets_;  // cut links count from both shards
  obs::RelaxedU64 delivered_bytes_;
  Impairments imp_;        // shard-confined (impaired media are never cut)
  ImpairmentStats stats_;  // relaxed atomics (see impairments.hpp)
  std::atomic<bool> link_up_{true};
  std::uint64_t rng_ = 0x9E3779B97F4A7C15ull;  // shard-confined (never cut)
  BandwidthMeter meter_{kNsPerSec / 2};

  // Cached instruments in the global registry (medium/<name>/...).
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_drop_queue_ = nullptr;
  obs::Counter* m_drop_loss_ = nullptr;
  obs::Counter* m_drop_down_ = nullptr;
  obs::Counter* m_drop_unaddressed_ = nullptr;
  obs::Counter* m_duplicated_ = nullptr;
  obs::Counter* m_corrupted_ = nullptr;
  obs::Gauge* m_link_up_ = nullptr;
};

/// Full-duplex point-to-point link between exactly two interfaces.
///
/// The duplex directions are independent: direction d (sender ends_[d]) has
/// its own busy_until_ slot and carried-traffic meter, all written only from
/// the sender's shard. That is what makes a clean link CUTTABLE by the
/// parallel executor: its delay() becomes cross-shard lookahead, and each
/// direction's deliveries are posted to the receiving shard's mailbox
/// through the installed poster instead of the local queue.
class PointToPointLink : public Medium, public DeliverySink {
 public:
  PointToPointLink(EventQueue& events, std::string name, double bits_per_sec,
                   SimTime delay, std::uint64_t queue_capacity_bytes = 64 * 1024)
      : Medium(events, std::move(name), bits_per_sec, delay, queue_capacity_bytes) {}

  void connect(Interface& a, Interface& b) {
    ends_[0] = &a;
    ends_[1] = &b;
    a.set_medium_slot(0);
    b.set_medium_slot(1);
    a.attach(this);
    b.attach(this);
  }

  void repoint(std::uint32_t slot, Interface* fresh) override {
    ends_[slot] = fresh;
  }

  void transmit(Interface& from, Packet p) override;

  Interface* end(int i) const { return ends_[i]; }

  /// Sums both direction meters (barrier-only on a cut link).
  double utilization() override;

  /// Poster for frames whose receiving end lives on another shard. Invoked
  /// on the SENDER's thread with the computed arrival time; the executor's
  /// implementation enqueues into the receiver shard's mailbox. Barrier-only
  /// install (executor setup), `end` is the RECEIVING end index.
  using CrossShardPoster = std::function<void(SimTime arrival, Packet&& p)>;
  void set_cross_poster(int end, CrossShardPoster f) { cross_[end] = std::move(f); }

  /// Arrival half of a delivery for receiving end `end`: link-state check,
  /// delivered accounting, hand-off to the node. Public so the executor can
  /// run it on the receiving shard at the merged arrival time.
  void deliver_arrival(int end, Packet&& p);

  /// Batched arrival (DeliverySink): every member is bound for end `key`;
  /// per-packet link-state checks and delivered accounting run in canonical
  /// order, then the whole batch enters the node in one call.
  void deliver_batch(std::uint32_t key, PacketBatch&& batch) override;

 private:
  void schedule_delivery(Interface* to, Packet&& p, SimTime arrival);

  Interface* ends_[2] = {nullptr, nullptr};
  SimTime busy_until_[2] = {0, 0};       // per direction (sender-shard state)
  BandwidthMeter dir_meter_[2] = {BandwidthMeter{kNsPerSec / 2},
                                  BandwidthMeter{kNsPerSec / 2}};
  CrossShardPoster cross_[2];            // indexed by receiving end
};

/// Shared half-duplex Ethernet segment: every attached interface contends for
/// the same capacity; frames are addressed by IP (our L2 is implicit ARP).
/// Never cut: busy_until_ and the RNG stream are shared by every station, so
/// the partitioner keeps all attached nodes on one shard.
class EthernetSegment : public Medium, public DeliverySink {
 public:
  EthernetSegment(EventQueue& events, std::string name, double bits_per_sec,
                  SimTime delay = micros(50),
                  std::uint64_t queue_capacity_bytes = 128 * 1024)
      : Medium(events, std::move(name), bits_per_sec, delay, queue_capacity_bytes) {}

  void attach(Interface& iface) {
    iface.set_medium_slot(static_cast<std::uint32_t>(ifaces_.size()));
    ifaces_.push_back(&iface);
    iface.attach(this);
  }

  void transmit(Interface& from, Packet p) override;

  void repoint(std::uint32_t slot, Interface* fresh) override {
    ifaces_[slot] = fresh;
  }

  const std::vector<Interface*>& interfaces() const { return ifaces_; }

  /// Batched arrival (DeliverySink): `key` is the sending station's slot.
  /// Consecutive unicast frames resolving to the same receiver are regrouped
  /// into one per-node batch; multicast frames and segments with promiscuous
  /// listeners fall back to the per-frame fan-out (their serial order
  /// interleaves receivers, which a receiver-major regrouping would break).
  void deliver_batch(std::uint32_t key, PacketBatch&& batch) override;

 private:
  void schedule_delivery(const Interface* from, Packet&& p, SimTime arrival);
  void deliver(const Interface& from, Packet&& p);
  /// Unicast receiver for `p` sent by `from` (L2 hint, then gateway
  /// fallback), or nullptr when no station claims it.
  Interface* unicast_target(const Interface& from, const Packet& p) const;

  std::vector<Interface*> ifaces_;
  SimTime busy_until_ = 0;  // shared medium
};

}  // namespace asp::net
