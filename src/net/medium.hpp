// Transmission media: point-to-point links and shared Ethernet segments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/event.hpp"
#include "net/meter.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"

namespace asp::net {

class Node;
class Medium;

/// A network interface: the attachment point between a Node and a Medium.
class Interface {
 public:
  Interface(Node* node, int index) : node_(node), index_(index) {}

  Node* node() const { return node_; }
  int index() const { return index_; }
  Medium* medium() const { return medium_; }
  void attach(Medium* m) { medium_ = m; }

  /// The node's IP address on this interface.
  Ipv4Addr addr() const { return addr_; }
  void set_addr(Ipv4Addr a) { addr_ = a; }

  /// Promiscuous interfaces receive all frames on a shared segment, not just
  /// those addressed to them (used by the MPEG monitor/capture ASPs, §3.3).
  bool promiscuous() const { return promiscuous_; }
  void set_promiscuous(bool p) { promiscuous_ = p; }

  /// Router interfaces pick up frames whose IP destination is off-segment.
  bool gateway() const { return gateway_; }
  void set_gateway(bool g) { gateway_ = g; }

  /// Hands a packet to the attached medium for transmission. The rvalue
  /// overload moves the packet through (call sites on the forwarding path all
  /// pass rvalues); the lvalue overload copies — cheaply, since the payload
  /// is copy-on-write.
  void transmit(Packet&& p);
  void transmit(const Packet& p);

  /// Egress bandwidth accounting (bytes handed to the medium, pre-drop).
  BandwidthMeter& tx_meter() { return tx_meter_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t tx_packets() const { return tx_packets_; }
  void note_tx(SimTime now, std::size_t bytes);  // defined in medium.cpp (needs Node)

 private:
  Node* node_;
  int index_;
  Medium* medium_ = nullptr;
  Ipv4Addr addr_;
  bool promiscuous_ = false;
  bool gateway_ = false;
  BandwidthMeter tx_meter_{kNsPerSec / 2};
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t tx_packets_ = 0;
};

/// Base class for transmission media.
class Medium {
 public:
  Medium(EventQueue& events, std::string name, double bits_per_sec, SimTime delay,
         std::uint64_t queue_capacity_bytes)
      : events_(events),
        name_(std::move(name)),
        bandwidth_bps_(bits_per_sec),
        delay_(delay),
        queue_capacity_(queue_capacity_bytes) {}
  virtual ~Medium() = default;

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Transmits `p` from interface `from`. May drop on queue overflow.
  virtual void transmit(Interface& from, Packet p) = 0;

  const std::string& name() const { return name_; }
  double bandwidth_bps() const { return bandwidth_bps_; }
  SimTime delay() const { return delay_; }

  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  std::uint64_t dropped_packets() const { return dropped_packets_; }

  /// Random uniform loss injection (failure testing). Deterministic per
  /// medium: an xorshift stream seeded at construction.
  void set_loss_rate(double rate) { loss_rate_ = rate; }
  double loss_rate() const { return loss_rate_; }

  /// Aggregate carried-traffic meter (all senders).
  BandwidthMeter& meter() { return meter_; }

  /// Current utilization in [0,1]: carried bits over the meter window
  /// relative to capacity.
  double utilization() {
    return meter_.rate_bps(events_.now()) / bandwidth_bps_;
  }

 protected:
  /// True if the loss process says this packet dies on the wire.
  bool roll_loss() {
    if (loss_rate_ <= 0) return false;
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return static_cast<double>(rng_ % 1'000'000) < loss_rate_ * 1e6;
  }

  EventQueue& events_;
  std::string name_;
  double bandwidth_bps_;
  SimTime delay_;
  std::uint64_t queue_capacity_;  // bytes of backlog allowed beyond the wire
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t dropped_packets_ = 0;
  double loss_rate_ = 0;
  std::uint64_t rng_ = 0x9E3779B97F4A7C15ull;
  BandwidthMeter meter_{kNsPerSec / 2};
};

/// Full-duplex point-to-point link between exactly two interfaces.
class PointToPointLink : public Medium {
 public:
  PointToPointLink(EventQueue& events, std::string name, double bits_per_sec,
                   SimTime delay, std::uint64_t queue_capacity_bytes = 64 * 1024)
      : Medium(events, std::move(name), bits_per_sec, delay, queue_capacity_bytes) {}

  void connect(Interface& a, Interface& b) {
    ends_[0] = &a;
    ends_[1] = &b;
    a.attach(this);
    b.attach(this);
  }

  void transmit(Interface& from, Packet p) override;

 private:
  Interface* ends_[2] = {nullptr, nullptr};
  SimTime busy_until_[2] = {0, 0};  // per direction
};

/// Shared half-duplex Ethernet segment: every attached interface contends for
/// the same capacity; frames are addressed by IP (our L2 is implicit ARP).
class EthernetSegment : public Medium {
 public:
  EthernetSegment(EventQueue& events, std::string name, double bits_per_sec,
                  SimTime delay = micros(50),
                  std::uint64_t queue_capacity_bytes = 128 * 1024)
      : Medium(events, std::move(name), bits_per_sec, delay, queue_capacity_bytes) {}

  void attach(Interface& iface) {
    ifaces_.push_back(&iface);
    iface.attach(this);
  }

  void transmit(Interface& from, Packet p) override;

  const std::vector<Interface*>& interfaces() const { return ifaces_; }

 private:
  void deliver(const Interface& from, Packet&& p);

  std::vector<Interface*> ifaces_;
  SimTime busy_until_ = 0;  // shared medium
};

}  // namespace asp::net
