// Sliding-window bandwidth measurement.
//
// The audio-adaptation ASP (paper §3.1) decides quality from bandwidth
// measured *locally on the router*, so meters hang off interfaces/segments.
#pragma once

#include <cstdint>
#include <deque>

#include "net/time.hpp"

namespace asp::net {

/// Records (time, bytes) samples and reports the average bit rate over a
/// trailing window. O(1) amortized per record.
class BandwidthMeter {
 public:
  explicit BandwidthMeter(SimTime window = kNsPerSec) : window_(window) {}

  void record(SimTime t, std::uint64_t bytes) {
    if (!seen_sample_) {
      seen_sample_ = true;
      first_sample_time_ = t;
    }
    samples_.push_back({t, bytes});
    total_bytes_ += bytes;
    evict(t);
  }

  /// Average bits/sec over the trailing window ending at `now`.
  ///
  /// Before a full window of history exists, the divisor is the elapsed time
  /// since the first sample rather than the whole window — dividing by the
  /// full window would underreport the rate during start-up (the §3.1
  /// adaptation ASP reads this meter from the first packet onwards). A floor
  /// of 1 ms (clamped to the window) keeps the first instants finite.
  double rate_bps(SimTime now) {
    evict(now);
    if (!seen_sample_) return 0;
    SimTime elapsed = now > first_sample_time_ ? now - first_sample_time_ : 0;
    SimTime floor = window_ < kNsPerMs ? window_ : kNsPerMs;
    SimTime effective = elapsed < floor ? floor : (elapsed > window_ ? window_ : elapsed);
    return static_cast<double>(total_bytes_) * 8.0 / to_seconds(effective);
  }

  std::uint64_t window_bytes(SimTime now) {
    evict(now);
    return total_bytes_;
  }

  SimTime window() const { return window_; }

 private:
  void evict(SimTime now) {
    SimTime cutoff = now > window_ ? now - window_ : 0;
    while (!samples_.empty() && samples_.front().time < cutoff) {
      total_bytes_ -= samples_.front().bytes;
      samples_.pop_front();
    }
  }

  struct Sample {
    SimTime time;
    std::uint64_t bytes;
  };
  SimTime window_;
  std::deque<Sample> samples_;
  std::uint64_t total_bytes_ = 0;
  bool seen_sample_ = false;
  SimTime first_sample_time_ = 0;
};

}  // namespace asp::net
