// Sliding-window bandwidth measurement.
//
// The audio-adaptation ASP (paper §3.1) decides quality from bandwidth
// measured *locally on the router*, so meters hang off interfaces/segments.
#pragma once

#include <cstdint>
#include <deque>

#include "net/time.hpp"

namespace asp::net {

/// Records (time, bytes) samples and reports the average bit rate over a
/// trailing window. O(1) amortized per record.
class BandwidthMeter {
 public:
  explicit BandwidthMeter(SimTime window = kNsPerSec) : window_(window) {}

  void record(SimTime t, std::uint64_t bytes) {
    samples_.push_back({t, bytes});
    total_bytes_ += bytes;
    evict(t);
  }

  /// Average bits/sec over the trailing window ending at `now`.
  double rate_bps(SimTime now) {
    evict(now);
    return static_cast<double>(total_bytes_) * 8.0 / to_seconds(window_);
  }

  std::uint64_t window_bytes(SimTime now) {
    evict(now);
    return total_bytes_;
  }

  SimTime window() const { return window_; }

 private:
  void evict(SimTime now) {
    SimTime cutoff = now > window_ ? now - window_ : 0;
    while (!samples_.empty() && samples_.front().time < cutoff) {
      total_bytes_ -= samples_.front().bytes;
      samples_.pop_front();
    }
  }

  struct Sample {
    SimTime time;
    std::uint64_t bytes;
  };
  SimTime window_;
  std::deque<Sample> samples_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace asp::net
