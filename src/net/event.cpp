#include "net/event.hpp"

#include <cassert>

namespace asp::net {

EventId EventQueue::schedule_at(SimTime t, EventFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  queue_.push(Entry{t < now_ ? now_ : t, now_, UINT32_MAX, id, std::move(fn)});
  return id;
}

EventId EventQueue::schedule_ranked(SimTime t, SimTime sched, std::uint32_t rank,
                                    EventFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  queue_.push(Entry{t, sched, rank, id, std::move(fn)});
  return id;
}

bool EventQueue::pop_one() {
  while (!queue_.empty()) {
    // Entries are move-only (SmallFn); top() is const&, but popping
    // immediately after makes the move-out safe — the moved-from entry never
    // participates in another heap comparison.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.time;
    e.fn();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && pop_one()) ++n;
  return n;
}

SimTime EventQueue::next_event_time() {
  // Discard cancelled entries at the head so the answer is the time of an
  // event that will actually run.
  while (!queue_.empty()) {
    if (auto it = cancelled_.find(queue_.top().id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    return queue_.top().time;
  }
  return kNever;
}

std::uint64_t EventQueue::run_until(SimTime t) {
  std::uint64_t n = 0;
  // next_event_time() skips cancelled heads, so a cancelled entry at time
  // <= t can never smuggle in a live event scheduled past t.
  while (next_event_time() <= t) {
    if (pop_one()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace asp::net
