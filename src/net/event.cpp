#include "net/event.hpp"

#include <cassert>

namespace asp::net {

namespace {

std::atomic<std::size_t>& default_batch_limit_slot() {
  static std::atomic<std::size_t> limit{32};
  return limit;
}

std::size_t clamp_batch_limit(std::size_t n) {
  if (n < 1) return 1;
  if (n > PacketBatch::kCapacity) return PacketBatch::kCapacity;
  return n;
}

}  // namespace

void EventQueue::set_batch_limit(std::size_t n) { batch_limit_ = clamp_batch_limit(n); }

void EventQueue::set_default_batch_limit(std::size_t n) {
  default_batch_limit_slot().store(clamp_batch_limit(n), std::memory_order_relaxed);
}

std::size_t EventQueue::default_batch_limit() {
  return default_batch_limit_slot().load(std::memory_order_relaxed);
}

EventId EventQueue::schedule_at(SimTime t, EventFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  queue_.push(Entry{t < now_ ? now_ : t, now_, UINT32_MAX, id, std::move(fn)});
  return id;
}

EventId EventQueue::schedule_ranked(SimTime t, SimTime sched, std::uint32_t rank,
                                    EventFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  queue_.push(Entry{t, sched, rank, id, std::move(fn)});
  return id;
}

EventId EventQueue::schedule_delivery(SimTime t, SimTime sched, std::uint32_t rank,
                                      DeliverySink& sink, std::uint32_t key,
                                      PacketBatch::Box box) {
  assert(t >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  queue_.push(Entry{t, sched, rank, id, EventFn{}, &sink, key, std::move(box)});
  return id;
}

std::uint64_t EventQueue::pop_some(std::uint64_t max_events) {
  while (!queue_.empty()) {
    // Entries are move-only (SmallFn); top() is const&, but popping
    // immediately after makes the move-out safe — the moved-from entry never
    // participates in another heap comparison.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.time;
    if (e.sink == nullptr) {
      e.fn();
      return 1;
    }

    // Batch drain. Safety rule (DESIGN.md §6c): an entry may join the batch
    // only if it has the same (sink, key), the same timestamp, AND a schedule
    // clock strictly before that timestamp. Anything a handler schedules
    // while the batch runs carries sched == time (now_ == e.time), which
    // sorts at-or-after every remaining member under the canonical
    // comparator — so nothing that serial execution would have interleaved
    // between two members can exist. Draining them together is therefore a
    // pure reordering of *pop* operations, not of *execution* order.
    PacketBatch batch;
    batch.push(std::move(e.box));
    std::uint64_t want = batch_limit_ < max_events ? batch_limit_ : max_events;
    while (batch.size() < want && !queue_.empty()) {
      const Entry& top = queue_.top();
      if (top.sink != e.sink || top.key != e.key || top.time != e.time ||
          top.sched >= e.time) {
        break;
      }
      if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
        // Media never cancel deliveries (net/batch.hpp contract), but stay
        // robust: discard it exactly as the per-event path would have.
        cancelled_.erase(it);
        queue_.pop();
        continue;
      }
      batch.push(std::move(const_cast<Entry&>(top).box));
      queue_.pop();
    }
    std::uint64_t n = batch.size();
    e.sink->deliver_batch(e.key, std::move(batch));
    return n;
  }
  return 0;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit) {
    std::uint64_t ran = pop_some(limit - n);
    if (ran == 0) break;
    n += ran;
  }
  return n;
}

SimTime EventQueue::next_event_time() {
  // Discard cancelled entries at the head so the answer is the time of an
  // event that will actually run.
  while (!queue_.empty()) {
    if (auto it = cancelled_.find(queue_.top().id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    return queue_.top().time;
  }
  return kNever;
}

std::uint64_t EventQueue::run_until(SimTime t) {
  std::uint64_t n = 0;
  // next_event_time() skips cancelled heads, so a cancelled entry at time
  // <= t can never smuggle in a live event scheduled past t.
  while (next_event_time() <= t) {
    n += pop_some(UINT64_MAX);
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace asp::net
