#include "net/event.hpp"

#include <cassert>

namespace asp::net {

EventId EventQueue::schedule_at(SimTime t, EventFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  queue_.push(Entry{t < now_ ? now_ : t, id, std::move(fn)});
  return id;
}

bool EventQueue::pop_one() {
  while (!queue_.empty()) {
    // Entries are move-only (SmallFn); top() is const&, but popping
    // immediately after makes the move-out safe — the moved-from entry never
    // participates in another heap comparison.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.time;
    e.fn();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && pop_one()) ++n;
  return n;
}

std::uint64_t EventQueue::run_until(SimTime t) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    if (pop_one()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace asp::net
