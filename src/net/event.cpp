#include "net/event.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>

#include "mem/pool.hpp"

namespace asp::net {

namespace {

std::atomic<std::size_t>& default_batch_limit_slot() {
  static std::atomic<std::size_t> limit{32};
  return limit;
}

std::size_t clamp_batch_limit(std::size_t n) {
  if (n < 1) return 1;
  if (n > PacketBatch::kCapacity) return PacketBatch::kCapacity;
  return n;
}

std::atomic<unsigned>& default_wlog_slot() {
  static std::atomic<unsigned> w{10};  // 1.024 µs level-0 buckets
  return w;
}

unsigned clamp_wlog(unsigned w) {
  if (w < 4) return 4;
  if (w > 20) return 20;
  return w;
}

/// Circular occupancy scan: first set bit among the 256 ring positions
/// starting at `from` (inclusive), in circular order, or -1 if none. The
/// caller's placement window is at most 256 buckets wide, so circular order
/// from just-past-the-cursor IS ascending bucket-number order.
int scan_ring(const std::uint64_t* occ, unsigned from) {
  for (unsigned step = 0; step < 5; ++step) {
    const unsigned w = ((from >> 6) + step) & 3;
    std::uint64_t bits = occ[w];
    if (step == 0) {
      bits &= ~std::uint64_t{0} << (from & 63);
    } else if (step == 4) {
      const unsigned r = from & 63;
      bits &= r ? (std::uint64_t{1} << r) - 1 : 0;
    }
    if (bits != 0) return static_cast<int>(w * 64 + std::countr_zero(bits));
  }
  return -1;
}

}  // namespace

EventQueue::EventQueue()
    : batch_limit_(default_batch_limit()), wlog_(default_bucket_width_log2()) {}

EventQueue::~EventQueue() = default;

void EventQueue::set_batch_limit(std::size_t n) { batch_limit_ = clamp_batch_limit(n); }

void EventQueue::set_default_batch_limit(std::size_t n) {
  default_batch_limit_slot().store(clamp_batch_limit(n), std::memory_order_relaxed);
}

std::size_t EventQueue::default_batch_limit() {
  return default_batch_limit_slot().load(std::memory_order_relaxed);
}

void EventQueue::set_bucket_width_log2(unsigned w) {
  assert(occupied_ == 0 && "bucket width can only change on an empty queue");
  if (occupied_ != 0) return;
  wlog_ = clamp_wlog(w);
  // No entry is referenced anywhere (occupied_ == 0 means every slot was
  // reclaimed, and a slot is only reclaimed when its key leaves its
  // container), so re-basing the cursor is safe.
  cur_b_ = now_ >> wlog_;
  sorted_.clear();
  spos_ = 0;
  far_min_ = kNever;
}

void EventQueue::set_default_bucket_width_log2(unsigned w) {
  default_wlog_slot().store(clamp_wlog(w), std::memory_order_relaxed);
}

unsigned EventQueue::default_bucket_width_log2() {
  return default_wlog_slot().load(std::memory_order_relaxed);
}

// --- slab ---------------------------------------------------------------------

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ == UINT32_MAX) {
    // Grow by one chunk, attributed to the event subsystem like every pool
    // refill (bench_fastpath / bench_event difference the counter around
    // their measured loops; steady state allocates nothing).
    mem::ScopedAllocTag tag(mem::AllocTag::kEvent);
    chunks_.push_back(std::make_unique<Entry[]>(kChunkSlots));
    mem::note_event_slab_chunk(kChunkSlots * sizeof(Entry));
    const std::uint32_t base =
        static_cast<std::uint32_t>((chunks_.size() - 1) * kChunkSlots);
    // Thread the freelist so slots pop in ascending order.
    for (std::size_t i = kChunkSlots; i-- > 0;) {
      Entry& e = chunks_.back()[i];
      e.next_free = free_head_;
      free_head_ = base + static_cast<std::uint32_t>(i);
    }
  }
  const std::uint32_t slot = free_head_;
  free_head_ = slab(slot).next_free;
  ++occupied_;
  return slot;
}

void EventQueue::free_slot(std::uint32_t slot) {
  Entry& e = slab(slot);
  e.state = kFree;
  if (++e.gen == 0) e.gen = 1;  // gen 0 is reserved for "never a valid id"
  e.next_free = free_head_;
  free_head_ = slot;
  --occupied_;
}

// --- scheduling ---------------------------------------------------------------

EventId EventQueue::schedule_at(SimTime t, EventFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  if (t < now_) t = now_;
  const std::uint32_t slot = alloc_slot();
  Entry& e = slab(slot);
  e.fn = std::move(fn);
  e.sink = nullptr;
  e.state = kLive;
  ++pending_;
  place(Key{t, now_, seq_++, UINT32_MAX, slot});
  return (static_cast<EventId>(e.gen) << 32) | slot;
}

EventId EventQueue::schedule_ranked(SimTime t, SimTime sched, std::uint32_t rank,
                                    EventFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  const std::uint32_t slot = alloc_slot();
  Entry& e = slab(slot);
  e.fn = std::move(fn);
  e.sink = nullptr;
  e.state = kLive;
  ++pending_;
  place(Key{t, sched, seq_++, rank, slot});
  return (static_cast<EventId>(e.gen) << 32) | slot;
}

EventId EventQueue::schedule_delivery(SimTime t, SimTime sched, std::uint32_t rank,
                                      DeliverySink& sink, std::uint32_t key,
                                      PacketBatch::Box box) {
  assert(t >= now_ && "cannot schedule in the past");
  const std::uint32_t slot = alloc_slot();
  Entry& e = slab(slot);
  e.sink = &sink;
  e.key = key;
  e.box = std::move(box);
  e.state = kLive;
  ++pending_;
  place(Key{t, sched, seq_++, rank, slot});
  return (static_cast<EventId>(e.gen) << 32) | slot;
}

void EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0) return;  // 0 (and any pre-handle id) was never issued
  if ((slot >> kBucketBits) >= chunks_.size()) return;
  Entry& e = slab(slot);
  if (e.gen != gen || e.state != kLive) return;  // already ran, or slot reused
  // Mark dead and destroy the payload eagerly (captures release now); the
  // slot itself is reclaimed when its bucket drains past the key, so no
  // bucket ever references a reused slot.
  e.state = kDead;
  e.fn = EventFn{};
  e.box.reset();
  e.sink = nullptr;
  --pending_;
}

// --- calendar -----------------------------------------------------------------

// Routes a key to its home: the incursion heap when it lands at or behind
// the drain cursor (a handler scheduling into the bucket being drained, or a
// run_until() peek having moved the cursor past now_), else the finest wheel
// level whose 256-bucket window reaches it, else the far band.
void EventQueue::place(const Key& k) {
  const std::uint64_t b0 = k.time >> wlog_;
  if (b0 <= cur_b_) {
    incur_.push_back(k);
    std::push_heap(incur_.begin(), incur_.end(),
                   [](const Key& a, const Key& b) { return key_less(b, a); });
    return;
  }
  for (unsigned L = 0; L < kLevels; ++L) {
    const std::uint64_t bL = k.time >> (wlog_ + kBucketBits * L);
    const std::uint64_t curL = cur_b_ >> (kBucketBits * L);
    if (bL - curL <= kBuckets) {
      // All occupied cells at level L hold bucket numbers in
      // (curL, curL + 256] — 256 consecutive values with unique residues —
      // so the cell either is empty or already holds exactly this bucket.
      const unsigned idx = static_cast<unsigned>(bL & (kBuckets - 1));
      Cell& c = cells_[L][idx];
      const std::uint64_t bit = std::uint64_t{1} << (idx & 63);
      if ((occ_[L][idx >> 6] & bit) == 0) {
        occ_[L][idx >> 6] |= bit;
        c.num = bL;
        const std::size_t want = std::bit_ceil(bucket_hiwat_);
        if (c.keys.capacity() < want) {
          // Bring every cell up to the largest bucket seen so far (rounded
          // to a power of two, so high-water creep within a band is free).
          // The seal step swaps key vectors between cells and sorted_,
          // which circulates capacities around the ring — without this, a
          // cell that periodically hosts an outsized bucket keeps re-growing
          // whatever small vector migrated in, and steady state never
          // reaches 0 allocs/event.
          mem::ScopedAllocTag tag(mem::AllocTag::kEvent);
          c.keys.reserve(want);
        }
      }
      assert(c.num == bL && "wheel cell residue collision");
      c.keys.push_back(k);
      return;
    }
  }
  far_.push_back(k);
  if (k.time < far_min_) far_min_ = k.time;
}

// Moves the drain cursor to the next occupied bucket: seals the nearest
// level-0 bucket (sorting it canonically) after cascading any upper-level
// bucket or far-band prefix that starts at or before it. Tie order — far
// band, then coarser levels first — guarantees no entry that belongs inside
// a sealed range is still parked somewhere coarser. Returns false when the
// calendar holds nothing (the incursion heap may still).
bool EventQueue::advance() {
  for (;;) {
    SimTime best_start = kNever;
    int best_level = -1;  // -1 none; kLevels means "refill from far band"
    unsigned best_idx = 0;
    for (unsigned L = 0; L < kLevels; ++L) {
      const std::uint64_t curL = cur_b_ >> (kBucketBits * L);
      const int idx =
          scan_ring(occ_[L], static_cast<unsigned>((curL + 1) & (kBuckets - 1)));
      if (idx < 0) continue;
      const SimTime start = cells_[L][idx].num << (wlog_ + kBucketBits * L);
      if (start <= best_start) {  // ties: prefer coarser
        best_start = start;
        best_level = static_cast<int>(L);
        best_idx = static_cast<unsigned>(idx);
      }
    }
    if (far_min_ != kNever) {
      const SimTime fstart = (far_min_ >> wlog_) << wlog_;
      if (fstart <= best_start) best_level = static_cast<int>(kLevels);
    }
    if (best_level < 0) return false;

    if (best_level == static_cast<int>(kLevels)) {
      // Refill: stand just before the band minimum's bucket and pull in
      // everything the wheel horizon now covers (lazily partitioned — the
      // remainder is rescanned at the next refill).
      cur_b_ = (far_min_ >> wlog_) - 1;
      SimTime new_min = kNever;
      std::size_t w = 0;
      for (std::size_t i = 0; i < far_.size(); ++i) {
        const Key k = far_[i];
        const std::uint64_t b3 = k.time >> (wlog_ + kBucketBits * (kLevels - 1));
        const std::uint64_t cur3 = cur_b_ >> (kBucketBits * (kLevels - 1));
        if (b3 - cur3 <= kBuckets) {
          place(k);
        } else {
          if (k.time < new_min) new_min = k.time;
          far_[w++] = k;
        }
      }
      far_.resize(w);
      far_min_ = new_min;
      continue;
    }

    const unsigned L = static_cast<unsigned>(best_level);
    Cell& c = cells_[L][best_idx];
    occ_[L][best_idx >> 6] &= ~(std::uint64_t{1} << (best_idx & 63));
    if (L == 0) {
      cur_b_ = c.num;
      sorted_.clear();
      spos_ = 0;
      std::swap(sorted_, c.keys);  // capacities recycle between cell and seal
      if (sorted_.size() > bucket_hiwat_) bucket_hiwat_ = sorted_.size();
      std::sort(sorted_.begin(), sorted_.end(),
                [](const Key& a, const Key& b) { return key_less(a, b); });
      return true;
    }
    // Cascade: every key in the coarse bucket lands strictly after the new
    // cursor and within the next-finer window, so this terminates.
    cur_b_ = (c.num << (kBucketBits * L)) - 1;
    cascade_.clear();
    std::swap(cascade_, c.keys);
    for (const Key& k : cascade_) place(k);
    cascade_.clear();
  }
}

void EventQueue::prune_dead_heads() {
  while (spos_ < sorted_.size() && slab(sorted_[spos_].slot).state == kDead) {
    free_slot(sorted_[spos_].slot);
    ++spos_;
  }
  while (!incur_.empty() && slab(incur_.front().slot).state == kDead) {
    free_slot(incur_.front().slot);
    std::pop_heap(incur_.begin(), incur_.end(),
                  [](const Key& a, const Key& b) { return key_less(b, a); });
    incur_.pop_back();
  }
}

// The canonical head across the sealed bucket and the incursion heap,
// reclaiming cancelled entries in its way; advances the cursor as needed.
// Incursion entries sit in strictly earlier level-0 buckets than anything
// still on the wheel, so comparing the two heads is a complete merge.
// Returns null when no runnable event remains. The pointer is valid until
// the next mutating call.
const EventQueue::Key* EventQueue::peek_head() {
  for (;;) {
    prune_dead_heads();
    const Key* s = spos_ < sorted_.size() ? &sorted_[spos_] : nullptr;
    const Key* i = incur_.empty() ? nullptr : incur_.data();
    if (s != nullptr && i != nullptr) return key_less(*s, *i) ? s : i;
    if (s != nullptr) return s;
    if (i != nullptr) return i;
    if (!advance()) return nullptr;
  }
}

bool EventQueue::take_head(Key& out) {
  const Key* h = peek_head();
  if (h == nullptr) return false;
  out = *h;
  if (spos_ < sorted_.size() && h == &sorted_[spos_]) {
    ++spos_;
  } else {
    std::pop_heap(incur_.begin(), incur_.end(),
                  [](const Key& a, const Key& b) { return key_less(b, a); });
    incur_.pop_back();
  }
  return true;
}

// --- draining -----------------------------------------------------------------

std::uint64_t EventQueue::pop_some(std::uint64_t max_events) {
  Key k;
  if (!take_head(k)) return 0;
  Entry& e = slab(k.slot);
  now_ = k.time;
  --pending_;
  if (e.sink == nullptr) {
    EventFn fn = std::move(e.fn);
    // Reclaim before invoking: a handler cancelling its own id (or a fired
    // id, the old cancelled_-set leak) hits a bumped generation and no-ops.
    free_slot(k.slot);
    fn();
    return 1;
  }

  // Batch drain. Safety rule (DESIGN.md §6c): an entry may join the batch
  // only if it has the same (sink, key), the same timestamp, AND a schedule
  // clock strictly before that timestamp. Anything a handler schedules
  // while the batch runs carries sched == time (now_ == k.time), which
  // sorts at-or-after every remaining member under the canonical
  // comparator — so nothing that serial execution would have interleaved
  // between two members can exist. Draining them together is therefore a
  // pure reordering of *pop* operations, not of *execution* order.
  DeliverySink* sink = e.sink;
  const std::uint32_t dkey = e.key;
  PacketBatch batch;
  batch.push(std::move(e.box));
  e.sink = nullptr;
  free_slot(k.slot);
  const std::uint64_t want = batch_limit_ < max_events ? batch_limit_ : max_events;
  while (batch.size() < want) {
    const Key* h = peek_head();
    if (h == nullptr || h->time != k.time || h->sched >= k.time) break;
    Entry& pe = slab(h->slot);
    if (pe.sink != sink || pe.key != dkey) break;
    const std::uint32_t slot = h->slot;
    if (spos_ < sorted_.size() && h == &sorted_[spos_]) {
      ++spos_;
    } else {
      std::pop_heap(incur_.begin(), incur_.end(),
                    [](const Key& a, const Key& b) { return key_less(b, a); });
      incur_.pop_back();
    }
    --pending_;
    batch.push(std::move(pe.box));
    pe.sink = nullptr;
    free_slot(slot);
  }
  const std::uint64_t n = batch.size();
  sink->deliver_batch(dkey, std::move(batch));
  return n;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit) {
    std::uint64_t ran = pop_some(limit - n);
    if (ran == 0) break;
    n += ran;
  }
  return n;
}

SimTime EventQueue::next_event_time() {
  if (pending_ == 0) return kNever;  // dead entries may linger; none will run
  const Key* h = peek_head();
  return h != nullptr ? h->time : kNever;
}

std::uint64_t EventQueue::run_until(SimTime t) {
  std::uint64_t n = 0;
  // next_event_time() reclaims cancelled heads, so a cancelled entry at time
  // <= t can never smuggle in a live event scheduled past t. The peek may
  // move the drain cursor past t; anything scheduled into the gap afterwards
  // routes through the incursion heap, preserving canonical order.
  while (next_event_time() <= t) {
    n += pop_some(UINT64_MAX);
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace asp::net
