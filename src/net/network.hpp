// Network: owns the event queue, nodes and media, and offers topology helpers.
//
// Threading (DESIGN.md §6f): build the topology single-threaded, then either
// run it single-threaded (the default — events() is the only queue) or
// attach a net::ParallelExecutor, which partitions nodes/media into shards,
// rebinds their queues and installs run overrides so run()/run_until()
// drive the windowed parallel loop. Topology mutation (add_node, link,
// segment, attach) is setup-time only — never call it while a run is in
// progress. events() is the PRIMARY (shard 0) queue; under an executor,
// other shards' events live in their private queues.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/event.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"
#include "net/tcp.hpp"

namespace asp::net {

/// Container/factory for a whole simulated network.
class Network {
 public:
  EventQueue& events() { return events_; }
  SimTime now() const { return events_.now(); }

  Node& add_node(const std::string& name) {
    nodes_.push_back(std::make_unique<Node>(events_, name));
    nodes_.back()->set_topo_index(static_cast<std::uint32_t>(nodes_.size() - 1));
    return *nodes_.back();
  }

  Node& add_router(const std::string& name) {
    Node& n = add_node(name);
    n.set_router(true);
    return n;
  }

  /// Creates a point-to-point link and connects fresh interfaces on a and b.
  /// `prefix_len` sizes the connected route each end installs — generated
  /// fabrics use /30 per link so per-link subnets never alias (the /24
  /// default suits hand-built rigs where each link is its own subnet).
  PointToPointLink& link(Node& a, Ipv4Addr addr_a, Node& b, Ipv4Addr addr_b,
                         double bits_per_sec, SimTime delay = micros(100),
                         std::uint64_t queue_bytes = 64 * 1024,
                         int prefix_len = 24) {
    auto l = std::make_unique<PointToPointLink>(
        events_, a.name() + "-" + b.name(), bits_per_sec, delay, queue_bytes);
    Interface& ia = a.add_interface(addr_a, prefix_len);
    Interface& ib = b.add_interface(addr_b, prefix_len);
    if (a.router()) ia.set_gateway(true);
    if (b.router()) ib.set_gateway(true);
    l->connect(ia, ib);
    media_.push_back(std::move(l));
    return static_cast<PointToPointLink&>(*media_.back());
  }

  /// Creates a shared Ethernet segment.
  EthernetSegment& segment(const std::string& name, double bits_per_sec,
                           SimTime delay = micros(50),
                           std::uint64_t queue_bytes = 128 * 1024) {
    auto s = std::make_unique<EthernetSegment>(events_, name, bits_per_sec, delay,
                                               queue_bytes);
    media_.push_back(std::move(s));
    return static_cast<EthernetSegment&>(*media_.back());
  }

  /// Attaches `n` to a segment with address `addr`; returns the interface.
  Interface& attach(Node& n, EthernetSegment& seg, Ipv4Addr addr) {
    Interface& i = n.add_interface(addr);
    if (n.router()) i.set_gateway(true);
    seg.attach(i);
    return i;
  }

  void run_until(SimTime t) {
    if (run_until_override_) {
      run_until_override_(t);
    } else {
      events_.run_until(t);
    }
  }
  void run() {
    if (run_override_) {
      run_override_();
    } else {
      events_.run();
    }
  }

  /// Installs (or clears, with empty functions) the run delegates. Used by
  /// the parallel executor so experiment code calling net.run_until() drives
  /// the windowed multi-shard loop unchanged.
  void set_run_override(std::function<void(SimTime)> run_until_fn,
                        std::function<void()> run_fn) {
    run_until_override_ = std::move(run_until_fn);
    run_override_ = std::move(run_fn);
  }

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

  /// Every medium in creation order (chaos tests/benches impair them).
  const std::vector<std::unique_ptr<Medium>>& media() const { return media_; }

  /// Finds a medium by name ("a-b" for links, the given name for segments);
  /// nullptr when absent.
  Medium* find_medium(const std::string& name) {
    for (auto& m : media_)
      if (m->name() == name) return m.get();
    return nullptr;
  }

 private:
  EventQueue events_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Medium>> media_;
  std::function<void(SimTime)> run_until_override_;
  std::function<void()> run_override_;
};

/// Parses a dotted quad that is known to be valid (test/topology helper).
inline Ipv4Addr ip(const std::string& s) {
  auto a = Ipv4Addr::parse(s);
  return a ? *a : Ipv4Addr{};
}

}  // namespace asp::net
