#include "net/exec.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <tuple>

#include "mem/shard.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"

namespace asp::net {

namespace {

// Union-find over node topology indices.
struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
};

// A p2p link may be cut iff crossing it costs nonzero sim time (that delay is
// the lookahead) and it draws no impairment randomness: the xorshift streams
// are per-medium but the paper experiments assert exact serial equivalence,
// and an impaired link transmitted from two threads would reorder its draws.
bool cuttable(const PointToPointLink& l) {
  return !l.impairments().any() && l.delay() > 0 && l.end(0) != nullptr &&
         l.end(1) != nullptr;
}

}  // namespace

ParallelExecutor::ParallelExecutor(Network& net, int shards) : net_(net) {
  partition(shards);
  install();
}

ParallelExecutor::~ParallelExecutor() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) t.join();
    // Workers drained their own channels on exit; sweep anything they freed
    // back to the coordinator's shard on the way out.
    mem::drain_remote_frees();
  }
  net_.set_run_override({}, {});
  // Rebind everything to the primary queue so the Network stays usable
  // serially. Events still pending in private queues die with them.
  EventQueue& q = net_.events();
  for (const auto& n : net_.nodes()) n->bind_events(q);
  for (const auto& m : net_.media()) {
    m->bind_events(q);
    if (auto* l = dynamic_cast<PointToPointLink*>(m.get())) {
      l->set_cross_poster(0, {});
      l->set_cross_poster(1, {});
    }
  }
}

void ParallelExecutor::partition(int requested) {
  const auto& nodes = net_.nodes();
  const int n = static_cast<int>(nodes.size());
  std::unordered_map<const Node*, int> topo;
  topo.reserve(nodes.size());
  for (int i = 0; i < n; ++i) topo[nodes[static_cast<std::size_t>(i)].get()] = i;

  UnionFind uf(static_cast<std::size_t>(n));
  for (const auto& m : net_.media()) {
    if (auto* seg = dynamic_cast<EthernetSegment*>(m.get())) {
      // Segments are never cut: every attached station shares a shard.
      const auto& ifs = seg->interfaces();
      for (std::size_t i = 1; i < ifs.size(); ++i)
        uf.unite(topo[ifs[0]->node()], topo[ifs[i]->node()]);
    } else if (auto* link = dynamic_cast<PointToPointLink*>(m.get())) {
      if (!cuttable(*link))
        uf.unite(topo[link->end(0)->node()], topo[link->end(1)->node()]);
    }
  }

  // Islands in order of their smallest node index (deterministic labels).
  std::vector<int> island_of(static_cast<std::size_t>(n), -1);
  std::vector<int> weight;  // nodes per island
  for (int i = 0; i < n; ++i) {
    int r = uf.find(i);
    if (island_of[static_cast<std::size_t>(r)] < 0) {
      island_of[static_cast<std::size_t>(r)] = static_cast<int>(weight.size());
      weight.push_back(0);
    }
    island_of[static_cast<std::size_t>(i)] = island_of[static_cast<std::size_t>(r)];
    ++weight[static_cast<std::size_t>(island_of[static_cast<std::size_t>(i)])];
  }
  islands_ = static_cast<int>(weight.size());

  int target = requested <= 0 ? islands_ : std::min(requested, islands_);
  if (target < 1) target = 1;

  // LPT greedy: heaviest island first into the least-loaded shard. Ties break
  // toward the lower island index / lower shard index, so the assignment is a
  // pure function of the topology.
  std::vector<int> order(static_cast<std::size_t>(islands_));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    std::size_t ua = static_cast<std::size_t>(a), ub = static_cast<std::size_t>(b);
    return weight[ua] != weight[ub] ? weight[ua] > weight[ub] : a < b;
  });
  std::vector<int> load(static_cast<std::size_t>(target), 0);
  std::vector<int> island_shard(static_cast<std::size_t>(islands_), 0);
  for (int isl : order) {
    int best = 0;
    for (int s = 1; s < target; ++s)
      if (load[static_cast<std::size_t>(s)] < load[static_cast<std::size_t>(best)])
        best = s;
    island_shard[static_cast<std::size_t>(isl)] = best;
    load[static_cast<std::size_t>(best)] += weight[static_cast<std::size_t>(isl)];
  }

  // Shard is immovable (atomics in the mailbox): build the vector at its
  // final size in place. Nothing resizes it afterwards, so the Shard*
  // captured by cross posters stay valid.
  shards_ = std::vector<Shard>(static_cast<std::size_t>(target));
  for (int i = 0; i < n; ++i)
    node_shard_[nodes[static_cast<std::size_t>(i)].get()] =
        island_shard[static_cast<std::size_t>(island_of[static_cast<std::size_t>(i)])];
}

void ParallelExecutor::install() {
  const auto& nodes = net_.nodes();
  shards_[0].queue = &net_.events();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shards_[s].owned = std::make_unique<EventQueue>();
    shards_[s].queue = shards_[s].owned.get();
    shards_[s].queue->run_until(net_.events().now());  // sync clocks
  }

  for (const auto& n : nodes)
    n->bind_events(*shards_[static_cast<std::size_t>(node_shard_[n.get()])].queue);

  for (const auto& m : net_.media()) {
    auto* link = dynamic_cast<PointToPointLink*>(m.get());
    if (link == nullptr) {
      // Segment (or unplugged medium): every station shares one shard.
      int s = 0;
      if (auto* seg = dynamic_cast<EthernetSegment*>(m.get());
          seg != nullptr && !seg->interfaces().empty())
        s = node_shard_[seg->interfaces()[0]->node()];
      m->bind_events(*shards_[static_cast<std::size_t>(s)].queue);
      continue;
    }
    int s0 = link->end(0) != nullptr ? node_shard_[link->end(0)->node()] : 0;
    int s1 = link->end(1) != nullptr ? node_shard_[link->end(1)->node()] : s0;
    // Link-state flips (schedule_link_state) run on end 0's shard.
    link->bind_events(*shards_[static_cast<std::size_t>(s0)].queue);
    if (s0 == s1) continue;

    // Cut link: each direction posts to the receiving shard's mailbox. The
    // poster runs on the SENDER's thread; seq is that shard's private
    // counter, so no two messages from one sender shard ever tie on it.
    lookahead_ = std::min(lookahead_, link->delay());
    int shard_at[2] = {s0, s1};
    for (int recv = 0; recv < 2; ++recv) {
      Node* sender = link->end(1 - recv)->node();
      Shard* snd = &shards_[static_cast<std::size_t>(shard_at[1 - recv])];
      Shard* dst = &shards_[static_cast<std::size_t>(shard_at[recv])];
      std::uint32_t sender_topo = sender->topo_index();
      link->set_cross_poster(
          recv, [link, recv, snd, dst, sender_topo](SimTime arrival, Packet&& p) {
            auto* m = new CrossShardMsg;
            m->arrival = arrival;
            m->sent = snd->queue->now();
            m->sender_topo = sender_topo;
            m->seq = ++snd->seq;
            m->link = link;
            m->end = recv;
            m->packet = std::move(p);
            dst->inbox.push(m);
          });
    }
  }

  net_.set_run_override([this](SimTime t) { run_until(t); }, [this] { run(); });

  for (std::size_t s = 1; s < shards_.size(); ++s)
    workers_.emplace_back([this, s] { worker_main(static_cast<int>(s)); });
}

int ParallelExecutor::shard_of(const Node& n) const {
  auto it = node_shard_.find(&n);
  return it == node_shard_.end() ? 0 : it->second;
}

SimTime ParallelExecutor::next_min() {
  SimTime t = EventQueue::kNever;
  for (Shard& s : shards_) t = std::min(t, s.queue->next_event_time());
  return t;
}

void ParallelExecutor::worker_main(int shard) {
  // Pin this thread to pool set `shard`: every pool acquisition in the
  // window body below is shard-local (mem/shard.hpp), and frees of foreign
  // blocks ride the remote-free channels drained at the barrier.
  mem::bind_shard(shard);
  Shard& me = shards_[static_cast<std::size_t>(shard)];
  std::uint64_t seen = 0;
  for (;;) {
    SimTime cap;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || gen_ != seen; });
      if (stop_) return;
      seen = gen_;
      cap = target_;
    }
    std::uint64_t ran = me.queue->run_until(cap);
    // Barrier drain: reclaim blocks other shards freed back to us during the
    // window, before parking. Memory-only — event order is untouched, so
    // serial-vs-sharded determinism is unaffected.
    mem::drain_remote_frees();
    {
      std::lock_guard<std::mutex> lk(mu_);
      me.events_run += ran;
      --pending_;
    }
    cv_done_.notify_one();
  }
}

void ParallelExecutor::dispatch_window(SimTime cap) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    target_ = cap;
    pending_ = static_cast<int>(workers_.size());
    ++gen_;
  }
  cv_work_.notify_all();
  shards_[0].events_run += shards_[0].queue->run_until(cap);  // coordinator = shard 0
  mem::drain_remote_frees();  // barrier drain for the coordinator's shard
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
  }
  ++stats_.windows;
}

void ParallelExecutor::merge_mailboxes() {
  for (Shard& sh : shards_) {
    std::vector<CrossShardMsg*> msgs = sh.inbox.drain();
    if (msgs.empty()) continue;
    // Total deterministic order. Scheduling in sorted order hands out
    // increasing sequence numbers, so the queue's (time, sched, rank, seq)
    // tie-break reproduces exactly this order — matching the serial schedule.
    std::sort(msgs.begin(), msgs.end(), [](const CrossShardMsg* a,
                                           const CrossShardMsg* b) {
      return std::tie(a->arrival, a->sent, a->sender_topo, a->seq) <
             std::tie(b->arrival, b->sent, b->sender_topo, b->seq);
    });
    for (CrossShardMsg* m : msgs) {
      assert(m->arrival > sh.queue->now() && "window safety violated");
      PointToPointLink* link = m->link;
      int end = m->end;
      // Reconstruct the canonical delivery key — (sender transmit clock,
      // sender topo index) — that the serial path stamps in
      // PointToPointLink::schedule_delivery, so a merged delivery sorts
      // exactly where the serial run would have put it. Scheduled as a
      // batchable delivery entry: merged frames take the same batch-drain
      // path as local ones.
      sh.queue->schedule_delivery(m->arrival, m->sent, m->sender_topo, *link,
                                  static_cast<std::uint32_t>(end),
                                  packet_boxes().box(std::move(m->packet)));
      delete m;
      ++stats_.cross_messages;
    }
  }
}

void ParallelExecutor::window_loop(SimTime t, bool bounded) {
  if (shards_.size() == 1) {
    // One effective shard (single island or shards=1): plain serial run on
    // the primary queue. Overrides would recurse through Network::run, so go
    // to the queue directly.
    if (bounded) {
      stats_.events_run += net_.events().run_until(t);
    } else {
      stats_.events_run += net_.events().run();
    }
    return;
  }
  // W > 0 (cut links all have delay() > 0); W == kNever iff the shards are
  // fully disjoint, in which case the overflow guard below yields one
  // unbounded window — which is exactly right.
  const SimTime W = lookahead_;
  for (;;) {
    // Merge first: the previous window's cross frames — or frames posted by
    // setup code that transmits before run() — live in mailboxes and must
    // count toward next_min, or the loop would end with work in flight.
    merge_mailboxes();
    SimTime next = next_min();
    if (next == EventQueue::kNever || (bounded && next > t)) break;
    // Strict cap: any cross frame sent in the window arrives at
    // >= next + W > cap, never AT the cap (window-edge ties would race).
    SimTime cap = next > EventQueue::kNever - W ? EventQueue::kNever - 1 : next + W - 1;
    if (bounded && cap > t) cap = t;
    dispatch_window(cap);
  }
  if (bounded) {
    // Advance every clock to exactly t (no events remain at or before t).
    dispatch_window(t);
    merge_mailboxes();
  }
  stats_.events_run = 0;
  for (const Shard& s : shards_) stats_.events_run += s.events_run;
}

void ParallelExecutor::run_until(SimTime t) { window_loop(t, true); }

void ParallelExecutor::run() { window_loop(0, false); }

}  // namespace asp::net
