#include "net/medium.hpp"

#include "net/node.hpp"

namespace asp::net {

void Interface::transmit(Packet&& p) {
  if (medium_ == nullptr) return;  // unplugged
  medium_->transmit(*this, std::move(p));
}

void Interface::transmit(const Packet& p) {
  if (medium_ == nullptr) return;
  medium_->transmit(*this, p);
}

void Interface::note_tx(SimTime now, std::size_t bytes) {
  tx_bytes_ += bytes;
  ++tx_packets_;
  tx_meter_.record(now, bytes);
  if (node_ != nullptr) node_->note_tx_metrics(bytes);
}

Medium::Medium(EventQueue& events, std::string name, double bits_per_sec,
               SimTime delay, std::uint64_t queue_capacity_bytes)
    : events_(&events),
      name_(std::move(name)),
      bandwidth_bps_(bits_per_sec),
      delay_(delay),
      queue_capacity_(queue_capacity_bytes) {
  obs::MetricsRegistry& reg = obs::registry();
  // Coarse mode (scenario-scale topologies): one aggregate instrument set —
  // see obs::instance_metrics_enabled().
  const std::string prefix = obs::instance_metrics_enabled()
                                 ? "medium/" + name_ + "/"
                                 : "medium/_agg/";
  m_delivered_ = &reg.counter(prefix + "delivered_packets");
  m_drop_queue_ = &reg.counter(prefix + "dropped_queue");
  m_drop_loss_ = &reg.counter(prefix + "dropped_loss");
  m_drop_down_ = &reg.counter(prefix + "dropped_down");
  m_drop_unaddressed_ = &reg.counter(prefix + "dropped_unaddressed");
  m_duplicated_ = &reg.counter(prefix + "duplicated");
  m_corrupted_ = &reg.counter(prefix + "corrupted");
  m_link_up_ = &reg.gauge(prefix + "link_up");
  m_link_up_->set(1);
}

void Medium::set_link_up(bool up) {
  link_up_.store(up, std::memory_order_relaxed);
  m_link_up_->set(up ? 1 : 0);
}

Medium::FramePlan Medium::plan_frame() {
  FramePlan f;
  if (roll(imp_.loss_rate)) {
    f.lost = true;
    return f;
  }
  f.corrupt = roll(imp_.corrupt_rate);
  if (roll(imp_.duplicate_rate)) f.copies = 2;
  if (imp_.jitter > 0) {
    for (int i = 0; i < f.copies; ++i) f.extra[i] = next_rng() % (imp_.jitter + 1);
  }
  return f;
}

void Medium::apply_corruption(Packet& p) {
  if (p.payload.empty()) return;  // headers are structured fields; only the
                                  // payload has bytes to flip
  std::uint64_t r = next_rng();
  std::vector<std::uint8_t>& bytes = p.mutable_payload();
  bytes[r % bytes.size()] ^= static_cast<std::uint8_t>((r >> 8) % 255 + 1);
  ++stats_.corrupted;
  m_corrupted_->inc();
}

double PointToPointLink::utilization() {
  SimTime now = events_->now();
  return (dir_meter_[0].rate_bps(now) + dir_meter_[1].rate_bps(now)) / bandwidth_bps_;
}

void PointToPointLink::deliver_arrival(int end, Packet&& p) {
  if (!link_up()) {  // partition started while the frame was in flight
    count_drop_down();
    return;
  }
  note_delivered(p);
  Interface& in = *ends_[end];
  in.node()->receive(std::move(p), in);
}

void PointToPointLink::deliver_batch(std::uint32_t key, PacketBatch&& batch) {
  const int end = static_cast<int>(key);
  if (!link_up()) {  // partition started while the frames were in flight
    // link_up_ only flips from scheduled events, which the batch drain never
    // crosses (they fail the same-(sink,key,time) predicate), so one check
    // covers — and disposes of — the whole batch, exactly as N serial checks
    // would have.
    for (std::size_t i = 0; i < batch.size(); ++i) count_drop_down();
    return;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) note_delivered(batch[i]);
  Interface& in = *ends_[end];
  in.node()->receive_batch(std::move(batch), in);
}

void PointToPointLink::schedule_delivery(Interface* to, Packet&& p, SimTime arrival) {
  const int end = (to == ends_[0]) ? 0 : 1;
  if (cross_[end]) {
    // Receiving end lives on another shard: hand the frame to its mailbox
    // (the executor merges and schedules the delivery over there).
    cross_[end](arrival, std::move(p));
    return;
  }
  // The in-flight Packet rides in a pooled box; the delivery entry carries
  // (sink=this, key=end, box) directly, so the queue's batch drain can group
  // it with adjacent same-destination deliveries (net/batch.hpp).
  //
  // schedule_delivery stamps the canonical (sender clock, sender topo index)
  // tie-break so serial and sharded runs order same-nanosecond deliveries
  // identically (the cross-shard path above reconstructs exactly this key
  // when the mailbox is merged).
  Node* sender = ends_[1 - end]->node();
  events_->schedule_delivery(arrival, sender->events().now(), sender->topo_index(),
                             *this, static_cast<std::uint32_t>(end),
                             packet_boxes().box(std::move(p)));
}

void PointToPointLink::transmit(Interface& from, Packet p) {
  int dir = (&from == ends_[0]) ? 0 : 1;
  Interface* to = ends_[1 - dir];
  if (to == nullptr) return;

  // The SENDER's clock: on a cut link each direction transmits from its own
  // shard, and events_ belongs to only one of them.
  SimTime now = from.node()->events().now();
  if (!link_up()) {
    count_drop_down();
    return;
  }
  SimTime serialize = tx_time(p.wire_size(), bandwidth_bps_);
  SimTime start = busy_until_[dir] > now ? busy_until_[dir] : now;
  // Backlog check: how much queueing (in time) would this packet see?
  SimTime backlog_limit = tx_time(queue_capacity_, bandwidth_bps_);
  if (start - now > backlog_limit) {
    count_drop_queue();
    return;
  }
  busy_until_[dir] = start + serialize;
  std::size_t bytes = p.wire_size();
  from.note_tx(now, bytes);
  dir_meter_[dir].record(now, bytes);
  // A lost frame still occupied the wire and counted toward the tx meters:
  // the sender offered the load whether or not it arrived.
  FramePlan plan = plan_frame();
  if (plan.lost) {
    count_drop_loss();
    return;
  }
  if (plan.corrupt) apply_corruption(p);
  if (plan.copies > 1) {
    count_duplicated();
    schedule_delivery(to, Packet(p), busy_until_[dir] + delay_ + plan.extra[1]);
  }
  schedule_delivery(to, std::move(p), busy_until_[dir] + delay_ + plan.extra[0]);
}

void EthernetSegment::schedule_delivery(const Interface* from, Packet&& p,
                                        SimTime arrival) {
  // Same (sched=now, rank=max) tie-break key the plain schedule_at path
  // stamped before deliveries became batchable: segment frames keep sorting
  // exactly where they always did. key = the sender's slot, so only frames
  // from the same station share a batch.
  events_->schedule_delivery(arrival, events_->now(), UINT32_MAX, *this,
                             from->medium_slot(), packet_boxes().box(std::move(p)));
}

void EthernetSegment::deliver_batch(std::uint32_t key, PacketBatch&& batch) {
  const Interface& from = *ifaces_.at(key);
  if (!link_up()) {  // same single-check argument as PointToPointLink
    for (std::size_t i = 0; i < batch.size(); ++i) count_drop_down();
    return;
  }
  // A promiscuous listener sees every frame, interleaved with the addressed
  // receiver in serial order — regrouping would reorder, so fall back.
  bool promiscuous = false;
  for (const Interface* iface : ifaces_) promiscuous |= iface->promiscuous();

  PacketBatch group;
  Interface* group_target = nullptr;
  auto flush = [&] {
    if (group.empty()) return;
    group_target->node()->receive_batch(std::move(group), *group_target);
    group = PacketBatch{};
  };
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Packet& p = batch[i];
    if (p.ip.dst.is_multicast() || promiscuous) {
      flush();
      deliver(from, std::move(p));
      continue;
    }
    Interface* target = unicast_target(from, p);
    if (target == nullptr) {
      flush();
      count_drop_unaddressed();
      continue;
    }
    if (target != group_target) flush();
    group_target = target;
    note_delivered(p);
    group.push(batch.take(i));
  }
  flush();
}

void EthernetSegment::transmit(Interface& from, Packet p) {
  // Segments are never cut: events_ is always the sender's shard queue.
  SimTime now = events_->now();
  if (!link_up()) {
    count_drop_down();
    return;
  }
  SimTime serialize = tx_time(p.wire_size(), bandwidth_bps_);
  SimTime start = busy_until_ > now ? busy_until_ : now;
  SimTime backlog_limit = tx_time(queue_capacity_, bandwidth_bps_);
  if (start - now > backlog_limit) {
    count_drop_queue();
    return;
  }
  busy_until_ = start + serialize;
  std::size_t bytes = p.wire_size();
  from.note_tx(now, bytes);
  meter_.record(now, bytes);
  FramePlan plan = plan_frame();
  if (plan.lost) {
    count_drop_loss();
    return;
  }
  if (plan.corrupt) apply_corruption(p);
  const Interface* sender = &from;
  if (plan.copies > 1) {
    count_duplicated();
    schedule_delivery(sender, Packet(p), busy_until_ + delay_ + plan.extra[1]);
  }
  schedule_delivery(sender, std::move(p), busy_until_ + delay_ + plan.extra[0]);
}

Interface* EthernetSegment::unicast_target(const Interface& from,
                                           const Packet& p) const {
  Ipv4Addr l2 = p.l2_next_hop.is_unspecified() ? p.ip.dst : p.l2_next_hop;
  for (Interface* iface : ifaces_) {
    if (iface != &from && iface->addr() == l2) return iface;
  }
  // No station owns the L2 address: fall back to the first gateway.
  for (Interface* iface : ifaces_) {
    if (iface != &from && iface->gateway()) return iface;
  }
  return nullptr;
}

void EthernetSegment::deliver(const Interface& from, Packet&& p) {
  // Fan-out discipline: every receiver but the last gets a COW copy (aliasing
  // the one payload buffer); the final receiver gets the packet moved in.
  auto hand_copy = [&](Interface* iface) {
    note_delivered(p);
    iface->node()->receive(p, *iface);
  };
  auto hand_last = [&](Interface* iface) {
    note_delivered(p);
    iface->node()->receive(std::move(p), *iface);
  };

  if (p.ip.dst.is_multicast()) {
    // Broadcast semantics: every other station sees the frame; the node
    // decides whether it cares (group membership / router / promiscuous).
    Interface* last = nullptr;
    for (Interface* iface : ifaces_) {
      if (iface == &from) continue;
      if (last != nullptr) hand_copy(last);
      last = iface;
    }
    if (last != nullptr) hand_last(last);
    return;
  }

  Interface* target = unicast_target(from, p);
  // Promiscuous listeners see every frame regardless of addressing.
  for (Interface* iface : ifaces_) {
    if (iface != &from && iface != target && iface->promiscuous()) hand_copy(iface);
  }
  if (target != nullptr) {
    hand_last(target);
  } else {
    count_drop_unaddressed();
  }
}

}  // namespace asp::net
