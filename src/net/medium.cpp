#include "net/medium.hpp"

#include "net/node.hpp"

namespace asp::net {

void Interface::transmit(Packet&& p) {
  if (medium_ == nullptr) return;  // unplugged
  medium_->transmit(*this, std::move(p));
}

void Interface::transmit(const Packet& p) {
  if (medium_ == nullptr) return;
  medium_->transmit(*this, p);
}

void Interface::note_tx(SimTime now, std::size_t bytes) {
  tx_bytes_ += bytes;
  ++tx_packets_;
  tx_meter_.record(now, bytes);
  if (node_ != nullptr) node_->note_tx_metrics(bytes);
}

void PointToPointLink::transmit(Interface& from, Packet p) {
  int dir = (&from == ends_[0]) ? 0 : 1;
  Interface* to = ends_[1 - dir];
  if (to == nullptr) return;

  SimTime now = events_.now();
  SimTime serialize = tx_time(p.wire_size(), bandwidth_bps_);
  SimTime start = busy_until_[dir] > now ? busy_until_[dir] : now;
  // Backlog check: how much queueing (in time) would this packet see?
  SimTime backlog_limit = tx_time(queue_capacity_, bandwidth_bps_);
  if (start - now > backlog_limit) {
    ++dropped_packets_;
    return;
  }
  busy_until_[dir] = start + serialize;
  std::size_t bytes = p.wire_size();
  from.note_tx(now, bytes);
  meter_.record(now, bytes);
  if (roll_loss()) {
    ++dropped_packets_;
    return;
  }
  SimTime arrival = busy_until_[dir] + delay_;
  events_.schedule_at(arrival, [this, to, p = std::move(p)]() mutable {
    ++delivered_packets_;
    delivered_bytes_ += p.wire_size();
    Interface& in = *to;
    in.node()->receive(std::move(p), in);
  });
}

void EthernetSegment::transmit(Interface& from, Packet p) {
  SimTime now = events_.now();
  SimTime serialize = tx_time(p.wire_size(), bandwidth_bps_);
  SimTime start = busy_until_ > now ? busy_until_ : now;
  SimTime backlog_limit = tx_time(queue_capacity_, bandwidth_bps_);
  if (start - now > backlog_limit) {
    ++dropped_packets_;
    return;
  }
  busy_until_ = start + serialize;
  std::size_t bytes = p.wire_size();
  from.note_tx(now, bytes);
  meter_.record(now, bytes);
  if (roll_loss()) {
    ++dropped_packets_;
    return;
  }
  SimTime arrival = busy_until_ + delay_;
  const Interface* sender = &from;
  events_.schedule_at(arrival, [this, sender, p = std::move(p)]() mutable {
    deliver(*sender, std::move(p));
  });
}

void EthernetSegment::deliver(const Interface& from, Packet&& p) {
  // Fan-out discipline: every receiver but the last gets a COW copy (aliasing
  // the one payload buffer); the final receiver gets the packet moved in.
  auto hand_copy = [&](Interface* iface) {
    ++delivered_packets_;
    delivered_bytes_ += p.wire_size();
    iface->node()->receive(p, *iface);
  };
  auto hand_last = [&](Interface* iface) {
    ++delivered_packets_;
    delivered_bytes_ += p.wire_size();
    iface->node()->receive(std::move(p), *iface);
  };

  if (p.ip.dst.is_multicast()) {
    // Broadcast semantics: every other station sees the frame; the node
    // decides whether it cares (group membership / router / promiscuous).
    Interface* last = nullptr;
    for (Interface* iface : ifaces_) {
      if (iface == &from) continue;
      if (last != nullptr) hand_copy(last);
      last = iface;
    }
    if (last != nullptr) hand_last(last);
    return;
  }

  Ipv4Addr l2 = p.l2_next_hop.is_unspecified() ? p.ip.dst : p.l2_next_hop;
  Interface* target = nullptr;
  for (Interface* iface : ifaces_) {
    if (iface != &from && iface->addr() == l2) {
      target = iface;
      break;
    }
  }
  if (target == nullptr) {
    // No station owns the L2 address: fall back to the first gateway.
    for (Interface* iface : ifaces_) {
      if (iface != &from && iface->gateway()) {
        target = iface;
        break;
      }
    }
  }
  // Promiscuous listeners see every frame regardless of addressing.
  for (Interface* iface : ifaces_) {
    if (iface != &from && iface != target && iface->promiscuous()) hand_copy(iface);
  }
  if (target != nullptr) {
    hand_last(target);
  } else {
    ++dropped_packets_;
  }
}

}  // namespace asp::net
