#include "net/node.hpp"

#include "net/tcp.hpp"

namespace asp::net {

namespace {

// Process-wide route-cache totals: tables belong to shard-confined nodes but
// are too numerous (and too short-lived in tests) for per-instance
// instruments, so they share one aggregate pair like coarse node metrics.
// Counter increments are relaxed-atomic, so concurrent shards are fine.
struct RouteCacheCounters {
  obs::Counter* hits;
  obs::Counter* misses;
};
RouteCacheCounters& route_cache_counters() {
  static RouteCacheCounters c{
      &obs::registry().counter("node/_agg/net/route_cache_hits"),
      &obs::registry().counter("node/_agg/net/route_cache_misses")};
  return c;
}

}  // namespace

void RoutingTable::add(Ipv4Addr prefix, int prefix_len, int iface, Ipv4Addr next_hop) {
  // Stable insert keeping prefix_len descending: lookup's first match is the
  // longest prefix, and first-added still wins among equal lengths.
  auto it = std::find_if(routes_.begin(), routes_.end(),
                         [&](const Route& r) { return r.prefix_len < prefix_len; });
  routes_.insert(it, Route{prefix, prefix_len, iface, next_hop});
  cached_idx_ = SIZE_MAX;  // the new route may now be the best match
}

const Route* RoutingTable::lookup(Ipv4Addr dst) const {
  if (cached_idx_ != SIZE_MAX && dst == cached_dst_) {
    route_cache_counters().hits->inc();
    return &routes_[cached_idx_];
  }
  route_cache_counters().misses->inc();
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    if (dst.in_prefix(routes_[i].prefix, routes_[i].prefix_len)) {
      cached_dst_ = dst;  // sorted: first = best
      cached_idx_ = i;
      return &routes_[i];
    }
  }
  return nullptr;
}

UdpSocket::UdpSocket(Node& node, std::uint16_t port, Handler on_packet)
    : node_(node), port_(port), on_packet_(std::move(on_packet)) {
  auto it = std::lower_bound(
      node_.udp_ports_.begin(), node_.udp_ports_.end(), port_,
      [](const auto& entry, std::uint16_t p) { return entry.first < p; });
  if (it != node_.udp_ports_.end() && it->first == port_) {
    it->second = this;  // last binder wins, as with the old map
  } else {
    node_.udp_ports_.insert(it, {port_, this});
  }
}

UdpSocket::~UdpSocket() {
  auto it = std::lower_bound(
      node_.udp_ports_.begin(), node_.udp_ports_.end(), port_,
      [](const auto& entry, std::uint16_t p) { return entry.first < p; });
  if (it != node_.udp_ports_.end() && it->first == port_ && it->second == this)
    node_.udp_ports_.erase(it);
}

void UdpSocket::send_to(Ipv4Addr dst, std::uint16_t dport,
                        std::vector<std::uint8_t> payload) {
  Packet p = Packet::make_udp(node_.addr(), dst, port_, dport, std::move(payload));
  p.id = node_.next_packet_id();
  node_.send_ip(std::move(p));
}

Node::Node(EventQueue& events, std::string name)
    : events_(&events), name_(std::move(name)), tcp_(std::make_unique<TcpStack>(*this)) {
  ifaces_.reserve(2);  // hosts and leaf routers never relocate
  obs::MetricsRegistry& reg = obs::registry();
  // Coarse mode (scenario-scale topologies) folds every node into one shared
  // aggregate instrument set — see obs::instance_metrics_enabled().
  const std::string prefix = obs::instance_metrics_enabled()
                                 ? "node/" + name_ + "/net/"
                                 : "node/_agg/net/";
  m_rx_packets_ = &reg.counter(prefix + "rx_packets");
  m_rx_bytes_ = &reg.counter(prefix + "rx_bytes");
  m_tx_packets_ = &reg.counter(prefix + "tx_packets");
  m_tx_bytes_ = &reg.counter(prefix + "tx_bytes");
  m_delivered_ = &reg.counter(prefix + "delivered_packets");
  m_dropped_ = &reg.counter(prefix + "dropped_packets");
}

Node::~Node() = default;

Interface& Node::add_interface(Ipv4Addr addr, int prefix_len) {
  if (ifaces_.size() == ifaces_.capacity()) {
    // Relocation: media hold raw Interface* into this array, so after the
    // grow every attached medium gets repointed at the fresh addresses.
    ifaces_.reserve(std::max<std::size_t>(2, ifaces_.capacity() * 2));
    for (Interface& ifc : ifaces_) {
      if (ifc.medium() != nullptr) ifc.medium()->repoint(ifc.medium_slot(), &ifc);
    }
  }
  ifaces_.emplace_back(this, static_cast<int>(ifaces_.size()));
  Interface& added = ifaces_.back();
  added.set_addr(addr);
  if (!addr.is_unspecified()) {
    std::uint32_t mask =
        prefix_len >= 32 ? 0xFFFFFFFFu : ~(0xFFFFFFFFu >> prefix_len);
    routes_.add(Ipv4Addr{addr.bits() & mask}, prefix_len, added.index());
  }
  return added;
}

void Node::reserve_ifaces(std::size_t n) {
  if (n <= ifaces_.capacity()) return;
  ifaces_.reserve(n);
  for (Interface& ifc : ifaces_) {
    if (ifc.medium() != nullptr) ifc.medium()->repoint(ifc.medium_slot(), &ifc);
  }
}

void Node::add_mroute(Ipv4Addr group, std::vector<int> out_ifaces) {
  auto it = std::lower_bound(
      mroutes_.begin(), mroutes_.end(), group,
      [](const MRoute& m, Ipv4Addr g) { return m.group < g; });
  if (it != mroutes_.end() && it->group == group) {
    it->out = std::move(out_ifaces);  // replace, as with the old map
  } else {
    mroutes_.insert(it, MRoute{group, std::move(out_ifaces)});
  }
}

const std::vector<int>* Node::mroute_lookup(Ipv4Addr group) const {
  auto it = std::lower_bound(
      mroutes_.begin(), mroutes_.end(), group,
      [](const MRoute& m, Ipv4Addr g) { return m.group < g; });
  if (it != mroutes_.end() && it->group == group) return &it->out;
  return nullptr;
}

UdpSocket* Node::udp_lookup(std::uint16_t port) const {
  auto it = std::lower_bound(
      udp_ports_.begin(), udp_ports_.end(), port,
      [](const auto& entry, std::uint16_t p) { return entry.first < p; });
  if (it != udp_ports_.end() && it->first == port) return it->second;
  return nullptr;
}

bool Node::owns(Ipv4Addr a) const {
  for (const Interface& i : ifaces_) {
    if (i.addr() == a) return true;
  }
  return false;
}

Ipv4Addr Node::addr() const { return ifaces_.empty() ? Ipv4Addr{} : ifaces_[0].addr(); }

void Node::note_rx(const Packet& p, Interface& in) {
  ++rx_packets_;
  rx_bytes_ += p.wire_size();
  m_rx_packets_->inc();
  m_rx_bytes_->inc(p.wire_size());
  for (const RxTap& tap : rx_taps_) tap(p, in);
}

void Node::receive(Packet p, Interface& in) {
  note_rx(p, in);
  // The PLAN-P layer sees the packet before the standard IP behaviour.
  if (ip_hook_ && ip_hook_(p, in)) return;
  standard_ip(std::move(p), in);
}

void Node::receive_batch(PacketBatch&& batch, Interface& in) {
  if (ip_batch_hook_) {
    ip_batch_hook_(std::move(batch), in);
    return;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    receive(std::move(*batch.take(i)), in);
  }
}

void Node::standard_ip(Packet p, Interface& in) {
  if (p.ip.dst.is_multicast()) {
    if (in_group(p.ip.dst)) deliver_local(p);
    if (router_) {
      const std::vector<int>* outs = mroute_lookup(p.ip.dst);
      if (outs != nullptr && p.ip.ttl > 1) {
        for (int out : *outs) {
          if (out == in.index()) continue;
          Packet copy = p;
          --copy.ip.ttl;
          copy.l2_next_hop = Ipv4Addr{};
          iface(out).transmit(std::move(copy));
        }
      }
    }
    return;
  }

  if (owns(p.ip.dst)) {
    deliver_local(std::move(p));
    return;
  }

  if (!router_) return;  // hosts drop transit traffic (non-promiscuous default)

  if (p.ip.ttl <= 1) {
    ++dropped_ttl_;
    m_dropped_->inc();
    return;
  }
  --p.ip.ttl;
  forward(std::move(p));
}

void Node::forward(Packet p) {
  if (p.ip.dst.is_multicast()) {
    const std::vector<int>* found = mroute_lookup(p.ip.dst);
    static const std::vector<int> kDefaultOut{0};
    const std::vector<int>& outs = found != nullptr ? *found : kDefaultOut;  // hosts: iface 0
    if (ifaces_.empty()) {
      ++dropped_no_route_;
      m_dropped_->inc();
      return;
    }
    for (std::size_t k = 0; k < outs.size(); ++k) {
      int out = outs[k];
      Packet copy = p;
      copy.l2_next_hop = Ipv4Addr{};
      iface(out).transmit(std::move(copy));
    }
    return;
  }
  const Route* r = routes_.lookup(p.ip.dst);
  if (r == nullptr) {
    ++dropped_no_route_;
    m_dropped_->inc();
    return;
  }
  p.l2_next_hop = r->next_hop;
  iface(r->iface).transmit(std::move(p));
}

void Node::send_ip(Packet p) {
  if (p.id == 0) p.id = next_packet_id();
  if (owns(p.ip.dst)) {
    // Loopback. Boxed so the capture fits the EventFn inline buffer.
    events_->schedule_in(0, [this, box = packet_boxes().box(std::move(p))]() mutable {
      deliver_local(std::move(*box));
    });
    return;
  }
  forward(std::move(p));
}

void Node::deliver_local(Packet p) {
  ++delivered_packets_;
  m_delivered_->inc();
  if (p.ip.proto == IpProto::kUdp && p.udp) {
    if (UdpSocket* sock = udp_lookup(p.udp->dport)) {
      sock->handle(p);
      return;
    }
    ++dropped_no_listener_;
    m_dropped_->inc();
    return;
  }
  if (p.ip.proto == IpProto::kTcp && p.tcp) {
    if (!tcp_->on_packet(p)) {
      ++dropped_no_listener_;
      m_dropped_->inc();
    }
    return;
  }
  ++dropped_no_listener_;
  m_dropped_->inc();
}

}  // namespace asp::net
