#include "net/node.hpp"

#include "net/tcp.hpp"

namespace asp::net {

void RoutingTable::add(Ipv4Addr prefix, int prefix_len, int iface, Ipv4Addr next_hop) {
  routes_.push_back(Route{prefix, prefix_len, iface, next_hop});
}

const Route* RoutingTable::lookup(Ipv4Addr dst) const {
  const Route* best = nullptr;
  for (const Route& r : routes_) {
    if (dst.in_prefix(r.prefix, r.prefix_len)) {
      if (best == nullptr || r.prefix_len > best->prefix_len) best = &r;
    }
  }
  return best;
}

UdpSocket::UdpSocket(Node& node, std::uint16_t port, Handler on_packet)
    : node_(node), port_(port), on_packet_(std::move(on_packet)) {
  node_.udp_ports_[port_] = this;
}

UdpSocket::~UdpSocket() { node_.udp_ports_.erase(port_); }

void UdpSocket::send_to(Ipv4Addr dst, std::uint16_t dport,
                        std::vector<std::uint8_t> payload) {
  Packet p = Packet::make_udp(node_.addr(), dst, port_, dport, std::move(payload));
  p.id = node_.next_packet_id();
  node_.send_ip(std::move(p));
}

Node::Node(EventQueue& events, std::string name)
    : events_(&events), name_(std::move(name)), tcp_(std::make_unique<TcpStack>(*this)) {
  obs::MetricsRegistry& reg = obs::registry();
  const std::string prefix = "node/" + name_ + "/net/";
  m_rx_packets_ = &reg.counter(prefix + "rx_packets");
  m_rx_bytes_ = &reg.counter(prefix + "rx_bytes");
  m_tx_packets_ = &reg.counter(prefix + "tx_packets");
  m_tx_bytes_ = &reg.counter(prefix + "tx_bytes");
  m_delivered_ = &reg.counter(prefix + "delivered_packets");
  m_dropped_ = &reg.counter(prefix + "dropped_packets");
}

Node::~Node() = default;

Interface& Node::add_interface(Ipv4Addr addr, int prefix_len) {
  ifaces_.push_back(std::make_unique<Interface>(this, static_cast<int>(ifaces_.size())));
  ifaces_.back()->set_addr(addr);
  if (!addr.is_unspecified()) {
    std::uint32_t mask =
        prefix_len >= 32 ? 0xFFFFFFFFu : ~(0xFFFFFFFFu >> prefix_len);
    routes_.add(Ipv4Addr{addr.bits() & mask}, prefix_len, ifaces_.back()->index());
  }
  return *ifaces_.back();
}

bool Node::owns(Ipv4Addr a) const {
  for (const auto& i : ifaces_) {
    if (i->addr() == a) return true;
  }
  return false;
}

Ipv4Addr Node::addr() const { return ifaces_.empty() ? Ipv4Addr{} : ifaces_[0]->addr(); }

void Node::note_rx(const Packet& p, Interface& in) {
  ++rx_packets_;
  rx_bytes_ += p.wire_size();
  m_rx_packets_->inc();
  m_rx_bytes_->inc(p.wire_size());
  for (const RxTap& tap : rx_taps_) tap(p, in);
}

void Node::receive(Packet p, Interface& in) {
  note_rx(p, in);
  // The PLAN-P layer sees the packet before the standard IP behaviour.
  if (ip_hook_ && ip_hook_(p, in)) return;
  standard_ip(std::move(p), in);
}

void Node::receive_batch(PacketBatch&& batch, Interface& in) {
  if (ip_batch_hook_) {
    ip_batch_hook_(std::move(batch), in);
    return;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    receive(std::move(*batch.take(i)), in);
  }
}

void Node::standard_ip(Packet p, Interface& in) {
  if (p.ip.dst.is_multicast()) {
    if (in_group(p.ip.dst)) deliver_local(p);
    if (router_) {
      auto it = mroutes_.find(p.ip.dst);
      if (it != mroutes_.end() && p.ip.ttl > 1) {
        for (int out : it->second) {
          if (out == in.index()) continue;
          Packet copy = p;
          --copy.ip.ttl;
          copy.l2_next_hop = Ipv4Addr{};
          iface(out).transmit(std::move(copy));
        }
      }
    }
    return;
  }

  if (owns(p.ip.dst)) {
    deliver_local(std::move(p));
    return;
  }

  if (!router_) return;  // hosts drop transit traffic (non-promiscuous default)

  if (p.ip.ttl <= 1) {
    ++dropped_ttl_;
    m_dropped_->inc();
    return;
  }
  --p.ip.ttl;
  forward(std::move(p));
}

void Node::forward(Packet p) {
  if (p.ip.dst.is_multicast()) {
    auto it = mroutes_.find(p.ip.dst);
    static const std::vector<int> kDefaultOut{0};
    const std::vector<int>& outs =
        it != mroutes_.end() ? it->second : kDefaultOut;  // hosts: iface 0
    if (ifaces_.empty()) {
      ++dropped_no_route_;
      m_dropped_->inc();
      return;
    }
    for (std::size_t k = 0; k < outs.size(); ++k) {
      int out = outs[k];
      Packet copy = p;
      copy.l2_next_hop = Ipv4Addr{};
      iface(out).transmit(std::move(copy));
    }
    return;
  }
  const Route* r = routes_.lookup(p.ip.dst);
  if (r == nullptr) {
    ++dropped_no_route_;
    m_dropped_->inc();
    return;
  }
  p.l2_next_hop = r->next_hop;
  iface(r->iface).transmit(std::move(p));
}

void Node::send_ip(Packet p) {
  if (p.id == 0) p.id = next_packet_id();
  if (owns(p.ip.dst)) {
    // Loopback. Boxed so the capture fits the EventFn inline buffer.
    events_->schedule_in(0, [this, box = packet_boxes().box(std::move(p))]() mutable {
      deliver_local(std::move(*box));
    });
    return;
  }
  forward(std::move(p));
}

void Node::deliver_local(Packet p) {
  ++delivered_packets_;
  m_delivered_->inc();
  if (p.ip.proto == IpProto::kUdp && p.udp) {
    auto it = udp_ports_.find(p.udp->dport);
    if (it != udp_ports_.end()) {
      it->second->handle(p);
      return;
    }
    ++dropped_no_listener_;
    m_dropped_->inc();
    return;
  }
  if (p.ip.proto == IpProto::kTcp && p.tcp) {
    if (!tcp_->on_packet(p)) {
      ++dropped_no_listener_;
      m_dropped_->inc();
    }
    return;
  }
  ++dropped_no_listener_;
  m_dropped_->inc();
}

}  // namespace asp::net
