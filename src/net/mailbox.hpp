// Cross-shard mailbox: the only channel through which a frame moves between
// shards of a parallel run (DESIGN.md §6f).
//
// Threading model: during a window, any shard thread whose node transmits on
// a cut link push()es into the RECEIVING shard's mailbox. push() is lock-free
// (a Treiber-stack CAS) and never blocks an event handler. drain() is
// BARRIER-ONLY: the coordinator calls it after every worker has parked, so it
// runs with no concurrent pushers. Arrival order out of drain() is
// unspecified — the executor sorts messages by their ordering key
// (arrival, sent, sender_topo, seq) before scheduling, which is what makes a
// sharded run byte-identical to the serial one.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/time.hpp"

namespace asp::net {

class PointToPointLink;

/// One frame in flight across a shard boundary, plus the key the coordinator
/// sorts on when merging a window's mailboxes.
struct CrossShardMsg {
  std::atomic<CrossShardMsg*> next{nullptr};

  SimTime arrival = 0;            ///< absolute delivery time at the receiver
  SimTime sent = 0;               ///< sender shard's clock at transmit
  std::uint32_t sender_topo = 0;  ///< creation index of the sending node
  std::uint64_t seq = 0;          ///< per-sender-shard push counter
  PointToPointLink* link = nullptr;
  int end = 0;  ///< receiving end index on `link`

  Packet packet;
};

/// Lock-free MPSC mailbox (multi-producer push, single barrier-time consumer).
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;
  ~Mailbox() {
    for (CrossShardMsg* m : drain()) delete m;
  }

  /// Any shard thread, any time during a window. Takes ownership of `m`.
  void push(CrossShardMsg* m) {
    CrossShardMsg* h = head_.load(std::memory_order_relaxed);
    do {
      m->next.store(h, std::memory_order_relaxed);
    } while (!head_.compare_exchange_weak(h, m, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Coordinator only, at a window barrier (no concurrent pushers). Returns
  /// every queued message in unspecified order; caller sorts and deletes.
  std::vector<CrossShardMsg*> drain() {
    std::vector<CrossShardMsg*> out;
    CrossShardMsg* m = head_.exchange(nullptr, std::memory_order_acquire);
    while (m != nullptr) {
      out.push_back(m);
      m = m->next.load(std::memory_order_relaxed);
    }
    return out;
  }

  bool empty() const { return head_.load(std::memory_order_acquire) == nullptr; }

 private:
  std::atomic<CrossShardMsg*> head_{nullptr};
};

}  // namespace asp::net
