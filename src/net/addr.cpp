#include "net/addr.hpp"

#include <charconv>

namespace asp::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(const std::string& s) {
  std::uint32_t bits = 0;
  const char* p = s.data();
  const char* end = s.data() + s.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    bits = (bits << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr{bits};
}

std::string Ipv4Addr::str() const {
  return std::to_string(bits_ >> 24) + '.' + std::to_string((bits_ >> 16) & 0xFF) +
         '.' + std::to_string((bits_ >> 8) & 0xFF) + '.' + std::to_string(bits_ & 0xFF);
}

}  // namespace asp::net
