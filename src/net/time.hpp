// Simulation time: 64-bit nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace asp::net {

/// Simulated time in nanoseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kNsPerUs = 1'000;
inline constexpr SimTime kNsPerMs = 1'000'000;
inline constexpr SimTime kNsPerSec = 1'000'000'000;

/// Converts seconds (fractional allowed) to SimTime.
constexpr SimTime seconds(double s) { return static_cast<SimTime>(s * 1e9); }
/// Converts milliseconds to SimTime.
constexpr SimTime millis(double ms) { return static_cast<SimTime>(ms * 1e6); }
/// Converts microseconds to SimTime.
constexpr SimTime micros(double us) { return static_cast<SimTime>(us * 1e3); }
/// Converts a SimTime to fractional seconds (for reporting).
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Transmission time of `bytes` over a link of `bits_per_sec` capacity.
/// Rounded UP to whole nanoseconds, never below 1 ns for a nonempty frame:
/// truncation gave 0 ns for small frames on fast links (e.g. 64 B at 1 Tb/s),
/// which let 10^5 aggregated flows pile events onto one timestamp — event
/// storms, zero-width serialization and meaningless meter rates.
constexpr SimTime tx_time(std::uint64_t bytes, double bits_per_sec) {
  if (bytes == 0) return 0;
  const double ns = static_cast<double>(bytes) * 8.0 / bits_per_sec * 1e9;
  SimTime t = static_cast<SimTime>(ns);
  if (static_cast<double>(t) < ns) ++t;  // ceil for fractional results
  return t < 1 ? 1 : t;
}

}  // namespace asp::net
