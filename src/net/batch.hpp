// Packet batches: the unit of the batched dispatch pipeline.
//
// A PacketBatch is a small fixed-capacity view over pooled Packet boxes
// (mem::BoxPool handles): the EventQueue's batch drain collects up to
// kCapacity same-timestamp deliveries bound for the same sink into one batch
// so the receiving runtime can amortize classification and JIT entry across
// packets (DESIGN.md §6c). Batching is purely mechanical: the members are
// processed in exactly the order the serial per-event path would have run
// them, so traces and counters stay byte-identical at any batch size.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "net/packet.hpp"

namespace asp::net {

/// A fixed-capacity sequence of in-flight packets, in canonical delivery
/// order. Holds pooled boxes, so draining a batch recycles each Packet's
/// storage exactly as the single-event path would.
class PacketBatch {
 public:
  using Box = mem::BoxPool<Packet>::Handle;

  /// Hard size limit; EventQueue::set_batch_limit() may choose any value in
  /// [1, kCapacity].
  static constexpr std::size_t kCapacity = 64;

  PacketBatch() = default;
  PacketBatch(PacketBatch&&) = default;
  PacketBatch& operator=(PacketBatch&&) = default;
  PacketBatch(const PacketBatch&) = delete;
  PacketBatch& operator=(const PacketBatch&) = delete;

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  bool full() const { return n_ == kCapacity; }

  /// Appends a boxed packet (caller guarantees !full()).
  void push(Box b) { boxes_[n_++] = std::move(b); }

  Packet& operator[](std::size_t i) { return *boxes_[i]; }
  const Packet& operator[](std::size_t i) const { return *boxes_[i]; }

  /// Moves the i-th box out (the slot becomes empty; size is unchanged —
  /// callers drain front to back and then clear()).
  Box take(std::size_t i) { return std::move(boxes_[i]); }

  /// Releases every remaining box back to the pool and empties the batch.
  void clear() {
    for (std::size_t i = 0; i < n_; ++i) boxes_[i].reset();
    n_ = 0;
  }

 private:
  std::array<Box, kCapacity> boxes_{};
  std::size_t n_ = 0;
};

/// Receiver side of the batched delivery path. A medium schedules deliveries
/// as (sink, key, box) entries; the EventQueue drains consecutive
/// same-timestamp entries with equal (sink, key) into one PacketBatch and
/// hands it over in canonical order. `key` disambiguates within a sink (the
/// receiving end of a p2p link, the sender slot on a segment).
///
/// Contract: deliveries scheduled through this path are NOT cancellable —
/// media discard the EventId (a delivery in flight has no owner to cancel
/// it), which is what lets the drain move boxes out eagerly.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  virtual void deliver_batch(std::uint32_t key, PacketBatch&& batch) = 0;
};

}  // namespace asp::net
