// Discrete-event scheduler: the heart of the simulator.
//
// Threading (DESIGN.md §6f): an EventQueue is SHARD-CONFINED. Under the
// parallel executor every shard owns one private queue, and only that
// shard's worker thread may call any method here — there is deliberately no
// internal locking. Cross-shard work never touches a foreign queue directly:
// it goes through a mailbox (net/mailbox.hpp) and is scheduled into the
// target queue by the coordinator at a window barrier, when no worker is
// running. Single-shard programs are unaffected: one thread, one queue.
//
// Implementation (DESIGN.md §6h): a deterministic hierarchical calendar
// queue. Entries live in a pooled slab (chunks tagged mem::AllocTag::kEvent)
// and are ordered through 32-byte sort keys only — the ~100-byte payload
// (SmallFn capture, delivery box) never moves during ordering. Scheduling
// and cancelling are O(1); cancel is a generation-checked handle
// invalidation, so there is no cancelled-id side table to leak or to rehash
// on the hot path. Buckets drain in canonical (time, sched, rank, seq)
// order, byte-identical to the previous binary-heap implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/smallfn.hpp"
#include "net/batch.hpp"
#include "net/time.hpp"

namespace asp::net {

/// Identifies a scheduled event so it can be cancelled. Packed handle:
/// (generation << 32) | slab slot. Generations start at 1 and bump when a
/// slot is reclaimed, so 0 is never a valid id and a stale handle (the event
/// already ran, or its slot was reused) cancels nothing.
using EventId = std::uint64_t;

/// Event callback type: move-only, with a 64-byte inline capture buffer (see
/// mem/smallfn.hpp). Callbacks on the packet path must fit inline — see the
/// capture budget note on EventQueue::Entry.
using EventFn = mem::SmallFn<64>;

/// A calendar queue of timestamped callbacks. Events at equal times run in
/// order of the clock at which they were scheduled, then in scheduling order
/// (FIFO) — which keeps simulations deterministic. In a serial run the two
/// rules coincide (now() never decreases, so FIFO sequence numbers already
/// order by schedule clock); the distinction only matters for cross-shard
/// merges, see net/exec.cpp.
///
/// Packet deliveries scheduled via schedule_delivery() additionally
/// participate in BATCH DRAINING: when the head of the queue is a delivery,
/// up to batch_limit() consecutive same-timestamp deliveries with the same
/// (sink, key) are popped together and handed to the sink as one
/// PacketBatch. The drain is order-preserving by construction — see the
/// safety-rule comment on pop_some() — so any batch limit (including 1)
/// produces byte-identical simulations.
class EventQueue {
 public:
  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to run at absolute time `t` (>= now()).
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedules a point-to-point frame delivery with an explicit tie-break
  /// key: `sched` is the sender's clock at transmit time and `rank` its
  /// topology index. Used for p2p deliveries in BOTH serial and parallel
  /// runs so that deliveries colliding to the nanosecond sort identically
  /// whether they were enqueued locally at transmit time (serial / same
  /// shard) or merged from a mailbox at a window barrier (cross-shard) —
  /// the determinism contract's canonical order (DESIGN.md §6f).
  EventId schedule_ranked(SimTime t, SimTime sched, std::uint32_t rank, EventFn fn);

  /// Schedules a batchable packet delivery: at time `t` the boxed packet is
  /// handed to `sink` (with `key` disambiguating the sink's input), possibly
  /// grouped with adjacent same-(sink, key, t) deliveries into one
  /// PacketBatch. (`sched`, `rank`) is the same canonical tie-break key as
  /// schedule_ranked — media stamp the sender clock / topo index here.
  /// The returned id is for bookkeeping symmetry only: batched deliveries
  /// are part of the non-cancellable delivery contract (net/batch.hpp) and
  /// media discard it.
  EventId schedule_delivery(SimTime t, SimTime sched, std::uint32_t rank,
                            DeliverySink& sink, std::uint32_t key,
                            PacketBatch::Box box);

  /// Schedules `fn` to run `delay` after the current time.
  EventId schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event in O(1): the handle's generation is checked
  /// against the slot, the callback's captures are destroyed eagerly, and
  /// the slot is reclaimed when its bucket drains. Cancelling an already-run,
  /// stale, or unknown id (including 0) is a no-op — a handle can never hit
  /// an event other than the one it was issued for.
  void cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed (each batched delivery counts as
  /// one event per packet; a drain never collects past the remaining limit).
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with timestamps <= `t`; afterwards now() == t.
  std::uint64_t run_until(SimTime t);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// True if no runnable events remain.
  bool empty() const { return pending_ == 0; }

  /// Number of pending (non-cancelled) events. Exact: cancelling an
  /// already-run id no longer skews the count (it is a pure no-op).
  std::size_t pending() const { return pending_; }

  /// Sentinel returned by next_event_time() when no runnable event remains.
  static constexpr SimTime kNever = ~SimTime{0};

  /// Timestamp of the earliest runnable (non-cancelled) event, or kNever.
  /// Lazily reclaims cancelled entries at the head. The parallel executor's
  /// coordinator reads this at window barriers to size the next safe window.
  SimTime next_event_time();

  /// Maximum deliveries drained into one PacketBatch (clamped to
  /// [1, PacketBatch::kCapacity]; 1 disables batching). Per-queue; new
  /// queues start from default_batch_limit().
  void set_batch_limit(std::size_t n);
  std::size_t batch_limit() const { return batch_limit_; }

  /// Process-wide default applied to queues constructed afterwards (the
  /// parallel executor's shard queues inherit it too). Tests sweep this to
  /// prove batched-vs-single equivalence.
  static void set_default_batch_limit(std::size_t n);
  static std::size_t default_batch_limit();

  /// log2 of the level-0 calendar bucket width in ns (clamped to [4, 20];
  /// default 10 → 1.024 µs buckets, each wheel level 256× coarser). Purely a
  /// performance knob: buckets partition time and drain in canonical order,
  /// so any width produces byte-identical simulations — the determinism
  /// sweep in tests/event_calendar_test.cpp proves it. Takes effect only
  /// while the queue holds no entries (live or cancelled-undrained).
  void set_bucket_width_log2(unsigned w);
  unsigned bucket_width_log2() const { return wlog_; }

  /// Process-wide default applied to queues constructed afterwards, like
  /// set_default_batch_limit().
  static void set_default_bucket_width_log2(unsigned w);
  static unsigned default_bucket_width_log2();

 private:
  // --- geometry ---------------------------------------------------------------
  // kLevels wheel levels of kBuckets buckets each; level L buckets are
  // 2^(wlog_ + kBucketBits*L) ns wide. Level 0 is sealed-and-run; upper
  // levels cascade into finer levels when the cursor reaches them. Events
  // beyond the level-3 horizon (~4.4 simulated hours at the default width)
  // wait in the lazily-partitioned far band.
  static constexpr unsigned kBucketBits = 8;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;  // 256
  static constexpr unsigned kLevels = 4;
  static constexpr std::size_t kChunkSlots = 256;  // slab slots per chunk

  // Capture budget: `fn` stores its capture inline up to EventFn::kInlineBytes
  // (64 bytes — a `this` pointer plus several shared_ptrs, or a pooled
  // Packet box handle, all fit). Anything larger silently falls back to a
  // heap allocation per scheduled event, which bench_fastpath surfaces as
  // mem/event/heap_captures. When a callback needs a Packet, move it into
  // net::packet_boxes() and capture the pointer-sized box handle instead of
  // the ~150-byte Packet (see medium.cpp / node.cpp).
  //
  // Delivery entries bypass `fn` entirely: they carry (sink, key, box)
  // directly so the batch drain can move the boxes out without invoking
  // anything.
  //
  // The slot's payload. Ordering fields live in Key, not here: the slab
  // entry is written once at schedule and read once at drain.
  struct Entry {
    EventFn fn;
    DeliverySink* sink = nullptr;  // non-null: batchable delivery entry
    PacketBatch::Box box{};
    std::uint32_t key = 0;
    std::uint32_t gen = 1;        // bumps on reclaim; 0 is never issued
    std::uint32_t next_free = 0;  // freelist link while FREE
    std::uint8_t state = 0;       // kFree / kLive / kDead
  };
  enum : std::uint8_t { kFree = 0, kLive = 1, kDead = 2 };

  // The 32-byte sort key — the only thing the calendar moves, sorts, or
  // heapifies. `seq` is the per-queue schedule sequence number: it plays
  // exactly the role the monotonically-issued id played in the old
  // comparator, so canonical order is bit-for-bit unchanged.
  struct Key {
    SimTime time;
    SimTime sched;
    std::uint64_t seq;
    std::uint32_t rank;
    std::uint32_t slot;
  };
  static bool key_less(const Key& a, const Key& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.sched != b.sched) return a.sched < b.sched;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.seq < b.seq;
  }

  // One wheel cell. `num` is the absolute bucket number held (valid iff the
  // occupancy bit is set); the placement window guarantees at most one
  // absolute bucket maps to a cell at a time.
  struct Cell {
    std::uint64_t num = 0;
    std::vector<Key> keys;
  };

  // --- slab -------------------------------------------------------------------
  Entry& slab(std::uint32_t slot) {
    return chunks_[slot >> 8][slot & (kChunkSlots - 1)];
  }
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);

  // --- calendar ---------------------------------------------------------------
  void place(const Key& k);
  bool advance();                 // move cur_b_ to the next occupied bucket
  bool take_head(Key& out);       // consume the canonical head (skips dead)
  const Key* peek_head();         // canonical head without consuming, or null
  void prune_dead_heads();
  std::uint64_t pop_some(std::uint64_t max_events);

  SimTime now_ = 0;
  std::uint64_t seq_ = 1;         // canonical FIFO tie-break (old next_id_)
  std::size_t pending_ = 0;       // live (non-cancelled, not-yet-run) entries
  std::size_t occupied_ = 0;      // live + cancelled-but-undrained slots
  std::size_t batch_limit_;
  unsigned wlog_;

  // Drain cursor: absolute level-0 bucket number currently sealed. Entries
  // landing at or before it go to the incursion heap.
  std::uint64_t cur_b_ = 0;

  std::vector<std::unique_ptr<Entry[]>> chunks_;
  std::uint32_t free_head_ = UINT32_MAX;  // slab freelist head (slot index)

  std::vector<Key> sorted_;       // sealed current bucket, canonically sorted
  std::size_t spos_ = 0;          // consumption index into sorted_
  std::size_t bucket_hiwat_ = 0;  // largest bucket sealed so far (see place())
  std::vector<Key> incur_;        // min-heap: entries at/behind the cursor
  std::vector<Key> far_;          // beyond the wheel horizon, unsorted
  SimTime far_min_ = kNever;
  std::vector<Key> cascade_;      // scratch for redistributing a coarse bucket

  Cell cells_[kLevels][kBuckets];
  std::uint64_t occ_[kLevels][kBuckets / 64] = {};
};

}  // namespace asp::net
