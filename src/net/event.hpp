// Discrete-event scheduler: the heart of the simulator.
//
// Threading (DESIGN.md §6f): an EventQueue is SHARD-CONFINED. Under the
// parallel executor every shard owns one private queue, and only that
// shard's worker thread may call any method here — there is deliberately no
// internal locking. Cross-shard work never touches a foreign queue directly:
// it goes through a mailbox (net/mailbox.hpp) and is scheduled into the
// target queue by the coordinator at a window barrier, when no worker is
// running. Single-shard programs are unaffected: one thread, one queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "mem/smallfn.hpp"
#include "net/batch.hpp"
#include "net/time.hpp"

namespace asp::net {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

/// Event callback type: move-only, with a 64-byte inline capture buffer (see
/// mem/smallfn.hpp). Callbacks on the packet path must fit inline — see the
/// capture budget note on EventQueue::Entry.
using EventFn = mem::SmallFn<64>;

/// A priority queue of timestamped callbacks. Events at equal times run in
/// order of the clock at which they were scheduled, then in scheduling order
/// (FIFO) — which keeps simulations deterministic. In a serial run the two
/// rules coincide (now() never decreases, so FIFO ids already order by
/// schedule clock); the distinction only matters for cross-shard merges, see
/// schedule_merged().
///
/// Packet deliveries scheduled via schedule_delivery() additionally
/// participate in BATCH DRAINING: when the head of the queue is a delivery,
/// up to batch_limit() consecutive same-timestamp deliveries with the same
/// (sink, key) are popped together and handed to the sink as one
/// PacketBatch. The drain is order-preserving by construction — see the
/// safety-rule comment on pop_some() — so any batch limit (including 1)
/// produces byte-identical simulations.
class EventQueue {
 public:
  EventQueue() : batch_limit_(default_batch_limit()) {}

  /// Schedules `fn` to run at absolute time `t` (>= now()).
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedules a point-to-point frame delivery with an explicit tie-break
  /// key: `sched` is the sender's clock at transmit time and `rank` its
  /// topology index. Used for p2p deliveries in BOTH serial and parallel
  /// runs so that deliveries colliding to the nanosecond sort identically
  /// whether they were enqueued locally at transmit time (serial / same
  /// shard) or merged from a mailbox at a window barrier (cross-shard) —
  /// the determinism contract's canonical order (DESIGN.md §6f).
  EventId schedule_ranked(SimTime t, SimTime sched, std::uint32_t rank, EventFn fn);

  /// Schedules a batchable packet delivery: at time `t` the boxed packet is
  /// handed to `sink` (with `key` disambiguating the sink's input), possibly
  /// grouped with adjacent same-(sink, key, t) deliveries into one
  /// PacketBatch. (`sched`, `rank`) is the same canonical tie-break key as
  /// schedule_ranked — media stamp the sender clock / topo index here.
  /// The returned id is for bookkeeping symmetry only: batched deliveries
  /// are part of the non-cancellable delivery contract (net/batch.hpp) and
  /// media discard it.
  EventId schedule_delivery(SimTime t, SimTime sched, std::uint32_t rank,
                            DeliverySink& sink, std::uint32_t key,
                            PacketBatch::Box box);

  /// Schedules `fn` to run `delay` after the current time.
  EventId schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-run or unknown id is a no-op.
  void cancel(EventId id) { cancelled_.insert(id); }

  /// Runs events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed (each batched delivery counts as
  /// one event per packet; a drain never collects past the remaining limit).
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with timestamps <= `t`; afterwards now() == t.
  std::uint64_t run_until(SimTime t);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// True if no runnable events remain.
  bool empty() const { return queue_.size() == cancelled_.size(); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Sentinel returned by next_event_time() when no runnable event remains.
  static constexpr SimTime kNever = ~SimTime{0};

  /// Timestamp of the earliest runnable (non-cancelled) event, or kNever.
  /// Lazily discards cancelled entries at the head. The parallel executor's
  /// coordinator reads this at window barriers to size the next safe window.
  SimTime next_event_time();

  /// Maximum deliveries drained into one PacketBatch (clamped to
  /// [1, PacketBatch::kCapacity]; 1 disables batching). Per-queue; new
  /// queues start from default_batch_limit().
  void set_batch_limit(std::size_t n);
  std::size_t batch_limit() const { return batch_limit_; }

  /// Process-wide default applied to queues constructed afterwards (the
  /// parallel executor's shard queues inherit it too). Tests sweep this to
  /// prove batched-vs-single equivalence.
  static void set_default_batch_limit(std::size_t n);
  static std::size_t default_batch_limit();

 private:
  // Capture budget: `fn` stores its capture inline up to EventFn::kInlineBytes
  // (64 bytes — a `this` pointer plus several shared_ptrs, or a pooled
  // Packet box handle, all fit). Anything larger silently falls back to a
  // heap allocation per scheduled event, which bench_fastpath surfaces as
  // mem/event/heap_captures. When a callback needs a Packet, move it into
  // net::packet_boxes() and capture the pointer-sized box handle instead of
  // the ~150-byte Packet (see medium.cpp / node.cpp).
  //
  // Delivery entries bypass `fn` entirely: they carry (sink, key, box)
  // directly so the batch drain can move the boxes out without invoking
  // anything.
  struct Entry {
    SimTime time;
    SimTime sched;       // clock when scheduled (sender clock for deliveries)
    std::uint32_t rank;  // sender topo index for p2p deliveries, else max
    EventId id;
    EventFn fn;
    DeliverySink* sink = nullptr;  // non-null: batchable delivery entry
    std::uint32_t key = 0;
    PacketBatch::Box box{};
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.sched != b.sched) return a.sched > b.sched;
      if (a.rank != b.rank) return a.rank > b.rank;
      return a.id > b.id;
    }
  };

  /// Pops and executes the next runnable event; a delivery head may drain up
  /// to min(batch_limit_, max_events) entries as one batch. Returns the
  /// number of events executed (0 when the queue is empty).
  std::uint64_t pop_some(std::uint64_t max_events);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::size_t batch_limit_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace asp::net
