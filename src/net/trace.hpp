// Packet tracing: a lightweight tcpdump for the simulator.
//
// Attach a PacketTracer to the nodes you care about and every packet entering
// their IP layer is recorded with a timestamp and a one-line summary.
// Intended for debugging experiments and for tests that assert on traffic
// patterns rather than endpoint state.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/node.hpp"

namespace asp::net {

/// One-line human-readable packet summary:
/// "10.0.0.1:4321 > 10.0.0.2:80 tcp S len=0 ttl=64".
std::string describe(const Packet& p);

struct TraceEvent {
  SimTime time = 0;
  std::string node;
  std::uint64_t packet_id = 0;
  std::string summary;
};

/// Threading: a tracer's event buffer is unsynchronized, so one tracer is
/// SHARD-CONFINED — attach() it only to nodes that live on the same shard
/// (single-shard runs: anywhere). Use one tracer per shard when tracing a
/// parallel run.
class PacketTracer {
 public:
  /// Maximum retained events; older ones are discarded (ring semantics).
  explicit PacketTracer(std::size_t capacity = 100'000) : capacity_(capacity) {}

  /// Starts recording packets arriving at `n`. Adds an rx tap; other taps
  /// (a second tracer, a metrics probe) keep firing alongside this one.
  /// Events carry the node's own clock at arrival time — read through the
  /// Node (not captured by value) so shard rebinding keeps the right queue.
  void attach(Node& n) {
    n.add_rx_tap([this, node = &n](const Packet& p, const Interface&) {
      record(node->events().now(), node->name(), p);
    });
  }

  /// Records an event explicitly (for senders/custom points).
  void record(SimTime t, const std::string& node, const Packet& p) {
    if (events_.size() >= capacity_) {
      events_.erase(events_.begin(), events_.begin() + static_cast<std::ptrdiff_t>(
                                          capacity_ / 2));
      ++discarded_;
    }
    events_.push_back(TraceEvent{t != 0 ? t : now_(), node, p.id, describe(p)});
  }

  /// Supplies the clock used when record() is called with t == 0 (typically
  /// bound to the Network's event queue).
  void set_clock(std::function<SimTime()> now) { now_ = std::move(now); }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }
  bool truncated() const { return discarded_ > 0; }

  /// Events whose summary contains `needle`.
  std::vector<TraceEvent> grep(const std::string& needle) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events_) {
      if (e.summary.find(needle) != std::string::npos) out.push_back(e);
    }
    return out;
  }

  /// Text dump, one event per line: "[12.001934] router  #42 10.0.0.1 > ...".
  std::string dump() const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  int discarded_ = 0;
  std::function<SimTime()> now_ = [] { return SimTime{0}; };
};

}  // namespace asp::net
