// The audio broadcasting experiment of paper §3.1 (Figures 5, 6, 7).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/audio/audio.hpp"
#include "net/network.hpp"
#include "runtime/engine.hpp"

namespace asp::apps {

/// One sample of the Figure 6 time series.
struct AudioSample {
  double t_sec;
  double audio_kbps;   // audio traffic on the client segment
  double load_kbps;    // generator traffic
  int level;           // quality level at the client (-1: none seen)
};

struct AudioRunResult {
  std::vector<AudioSample> series;  // Figure 6
  int silent_periods = 0;           // Figure 7
  int silent_ticks = 0;
  int level_switches = 0;  // on-the-wire quality changes seen by the client
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
};

/// A (time, offered load) step schedule for the load generator.
struct LoadStep {
  double at_sec;
  double rate_bps;
};

/// Which router adaptation policy to install (paper §3.1: strategies are
/// swapped by swapping the ASP).
enum class AudioPolicy {
  kThreshold,   // the paper's policy: a pure function of measured load
  kHysteresis,  // extension: upgrade only after a sustained calm period
};

/// The Figure 5 topology: source --(100 Mb link)--> router --(10 Mb
/// segment)--> {audio client, load generator, sink}. ASPs are installed in
/// the router and the client when `adaptation` is true.
class AudioExperiment {
 public:
  explicit AudioExperiment(bool adaptation,
                           planp::EngineKind engine = planp::EngineKind::kJit,
                           AudioPolicy policy = AudioPolicy::kThreshold);

  /// Runs for `duration_sec` with the given load schedule, sampling every
  /// `sample_period_sec`.
  AudioRunResult run(double duration_sec, const std::vector<LoadStep>& schedule,
                     double sample_period_sec = 1.0);

  asp::net::Network& network() { return net_; }
  asp::runtime::AspRuntime* router_runtime() { return router_rt_.get(); }

  /// The paper's Figure 6 load schedule: no load, then large at 100 s,
  /// medium at 220 s, small at 340 s (scaled to a 10 Mb/s segment).
  static std::vector<LoadStep> figure6_schedule();

 private:
  asp::net::Network net_;
  asp::net::Node* source_node_;
  asp::net::Node* router_node_;
  asp::net::Node* client_node_;
  asp::net::Node* loadgen_node_;
  asp::net::Node* sink_node_;
  asp::net::EthernetSegment* segment_;

  std::unique_ptr<AudioSource> source_;
  std::unique_ptr<AudioClient> client_;
  std::unique_ptr<LoadGenerator> loadgen_;
  std::unique_ptr<asp::runtime::AspRuntime> router_rt_;
  std::unique_ptr<asp::runtime::AspRuntime> client_rt_;
};

}  // namespace asp::apps
