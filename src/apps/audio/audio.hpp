// Audio broadcasting application (paper §3.1).
//
// The application itself is deliberately "unmodified": a source that
// multicasts CD-quality PCM and a client that plays whatever raw PCM arrives
// on its port. All adaptation lives in the ASPs (asp_sources.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/node.hpp"

namespace asp::apps {

/// Audio format constants. The paper's rates: 16-bit stereo = 176 kb/s,
/// 16-bit mono = 88 kb/s, 8-bit mono = 44 kb/s => sample rate 5512 Hz.
struct AudioFormat {
  static constexpr int kSampleRateHz = 5512;
  static constexpr int kFrameMs = 20;
  static constexpr int kSamplesPerFrame = kSampleRateHz * kFrameMs / 1000;  // 110
  static constexpr int kStereoFrameBytes = kSamplesPerFrame * 2 * 2;        // 440
  static constexpr std::uint16_t kPort = 5004;
};

/// Broadcasts a deterministic 16-bit stereo tone over IP multicast,
/// one frame every 20 ms.
class AudioSource {
 public:
  AudioSource(asp::net::Node& node, asp::net::Ipv4Addr group);

  void start();
  void stop() { running_ = false; }

  std::uint64_t frames_sent() const { return frames_sent_; }

 private:
  void tick();
  std::vector<std::uint8_t> make_frame();

  asp::net::Node& node_;
  asp::net::Ipv4Addr group_;
  asp::net::UdpSocket socket_;
  bool running_ = false;
  std::uint64_t frames_sent_ = 0;
  double phase_ = 0;
};

/// Plays the received stream: a 20 ms playback clock consumes one frame per
/// tick from a small jitter buffer; an empty buffer at a tick opens a silent
/// period (the Figure 7 metric).
class AudioClient {
 public:
  AudioClient(asp::net::Node& node, asp::net::Ipv4Addr group);

  void start();

  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t payload_bytes_received() const { return payload_bytes_; }
  /// Number of distinct playback gaps so far.
  int silent_periods() const { return silent_periods_; }
  /// Ticks spent silent (gap length accumulates here).
  int silent_ticks() const { return silent_ticks_; }

  /// Audio bandwidth on the wire (pre-reconstruction), bits/sec, over the
  /// trailing half second. This is the Figure 6 series.
  double wire_rate_bps() { return wire_meter_.rate_bps(node_.events().now()); }

  /// Most recent quality tag seen on the wire (0/1/2), -1 before any.
  int last_level() const { return last_level_; }

  /// Number of quality-level changes observed on the wire.
  int level_switches() const { return level_switches_; }

 private:
  void on_frame(const asp::net::Packet& p);
  void playback_tick();

  asp::net::Node& node_;
  asp::net::UdpSocket socket_;
  asp::net::BandwidthMeter wire_meter_{asp::net::kNsPerSec / 2};

  int buffered_frames_ = 0;
  static constexpr int kMaxBuffer = 4;
  bool started_ = false;
  bool in_gap_ = false;
  std::uint64_t frames_received_ = 0;
  std::uint64_t payload_bytes_ = 0;
  int silent_periods_ = 0;
  int silent_ticks_ = 0;
  int last_level_ = -1;
  int level_switches_ = 0;
};

/// Constant-bit-rate UDP load generator (the "load generator" box of
/// Figure 5). Rate is adjustable while running.
class LoadGenerator {
 public:
  LoadGenerator(asp::net::Node& node, asp::net::Ipv4Addr sink,
                std::uint16_t sink_port = 9);

  /// Sets the offered load in bits/sec (0 stops emission).
  void set_rate_bps(double bps);
  void start();

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void tick();

  asp::net::Node& node_;
  asp::net::Ipv4Addr sink_;
  std::uint16_t sink_port_;
  asp::net::UdpSocket socket_;
  double rate_bps_ = 0;
  bool running_ = false;
  std::uint64_t packets_sent_ = 0;
  static constexpr std::size_t kPayload = 1222;  // 1250 B on the wire
};

}  // namespace asp::apps
