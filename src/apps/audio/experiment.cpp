#include "apps/audio/experiment.hpp"

#include "apps/asp_sources.hpp"

namespace asp::apps {

using asp::net::ip;
using asp::net::millis;
using asp::net::seconds;

namespace {
const asp::net::Ipv4Addr kGroup = ip("224.1.1.1");
}

AudioExperiment::AudioExperiment(bool adaptation, planp::EngineKind engine,
                                 AudioPolicy policy) {
  source_node_ = &net_.add_node("audio-source");
  router_node_ = &net_.add_router("router");
  client_node_ = &net_.add_node("audio-client");
  loadgen_node_ = &net_.add_node("load-generator");
  sink_node_ = &net_.add_node("sink");

  // Source to router: fast point-to-point uplink.
  net_.link(*source_node_, ip("10.0.1.1"), *router_node_, ip("10.0.1.254"), 100e6,
            millis(1));
  // The contended client segment: 10 Mb/s Ethernet.
  segment_ = &net_.segment("client-lan", 10e6, asp::net::micros(50));
  net_.attach(*router_node_, *segment_, ip("192.168.1.254"));
  net_.attach(*client_node_, *segment_, ip("192.168.1.1"));
  net_.attach(*loadgen_node_, *segment_, ip("192.168.1.2"));
  net_.attach(*sink_node_, *segment_, ip("192.168.1.3"));

  // Multicast plumbing: source -> uplink; router -> client segment.
  source_node_->add_mroute(kGroup, {0});
  router_node_->add_mroute(kGroup, {1});
  source_node_->routes().add_default(0);

  source_ = std::make_unique<AudioSource>(*source_node_, kGroup);
  client_ = std::make_unique<AudioClient>(*client_node_, kGroup);
  loadgen_ = std::make_unique<LoadGenerator>(*loadgen_node_, sink_node_->addr());

  if (adaptation) {
    planp::Protocol::Options opts;
    opts.engine = engine;
    router_rt_ = std::make_unique<asp::runtime::AspRuntime>(*router_node_);
    router_rt_->set_monitored_medium(segment_);
    router_rt_->install(policy == AudioPolicy::kThreshold
                            ? audio_router_asp()
                            : audio_router_hysteresis_asp(),
                        opts);

    client_rt_ = std::make_unique<asp::runtime::AspRuntime>(*client_node_);
    client_rt_->install(audio_client_asp(), opts);
  }
}

std::vector<LoadStep> AudioExperiment::figure6_schedule() {
  return {
      {0.0, 0.0},       // quiet segment: full quality
      {100.0, 9.7e6},   // large load: drop to 8-bit mono
      {220.0, 8.35e6},  // medium load: hovers around the level-2 threshold
      {340.0, 7.0e6},   // small load: 16-bit mono
  };
}

AudioRunResult AudioExperiment::run(double duration_sec,
                                    const std::vector<LoadStep>& schedule,
                                    double sample_period_sec) {
  AudioRunResult result;

  source_->start();
  client_->start();
  loadgen_->start();
  // Each helper event is scheduled on the queue of the node whose state it
  // touches, so a parallel run keeps them shard-local (client, load-gen and
  // sink all share the client-lan island).
  for (const LoadStep& step : schedule) {
    loadgen_node_->events().schedule_at(
        seconds(step.at_sec), [this, r = step.rate_bps] { loadgen_->set_rate_bps(r); });
  }

  // Generator-rate meter for reporting.
  auto gen_meter = std::make_shared<asp::net::BandwidthMeter>(asp::net::kNsPerSec / 2);
  sink_node_->add_rx_tap(
      [this, gen_meter](const asp::net::Packet& p, const asp::net::Interface&) {
        if (p.udp && p.udp->dport == 9)
          gen_meter->record(sink_node_->events().now(), p.wire_size());
      });

  double t = sample_period_sec;
  while (t <= duration_sec + 1e-9) {
    client_node_->events().schedule_at(seconds(t), [this, t, gen_meter, &result] {
      result.series.push_back(AudioSample{
          t,
          client_->wire_rate_bps() / 1000.0,
          gen_meter->rate_bps(client_node_->events().now()) / 1000.0,
          client_->last_level(),
      });
    });
    t += sample_period_sec;
  }

  net_.run_until(seconds(duration_sec));

  result.silent_periods = client_->silent_periods();
  result.silent_ticks = client_->silent_ticks();
  result.level_switches = client_->level_switches();
  result.frames_sent = source_->frames_sent();
  result.frames_received = client_->frames_received();
  return result;
}

}  // namespace asp::apps
