#include "apps/audio/audio.hpp"

#include <cmath>

namespace asp::apps {

using asp::net::kNsPerMs;
using asp::net::Packet;
using asp::net::SimTime;

AudioSource::AudioSource(asp::net::Node& node, asp::net::Ipv4Addr group)
    : node_(node), group_(group), socket_(node, AudioFormat::kPort, nullptr) {}

void AudioSource::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void AudioSource::tick() {
  if (!running_) return;
  socket_.send_to(group_, AudioFormat::kPort, make_frame());
  ++frames_sent_;
  node_.events().schedule_in(AudioFormat::kFrameMs * kNsPerMs, [this] { tick(); });
}

std::vector<std::uint8_t> AudioSource::make_frame() {
  // A 440 Hz tone, 16-bit little-endian stereo.
  std::vector<std::uint8_t> pcm;
  pcm.reserve(AudioFormat::kStereoFrameBytes);
  constexpr double kToneHz = 440.0;
  for (int i = 0; i < AudioFormat::kSamplesPerFrame; ++i) {
    phase_ += 2.0 * 3.14159265358979 * kToneHz / AudioFormat::kSampleRateHz;
    auto s = static_cast<std::int16_t>(20000.0 * std::sin(phase_));
    for (int ch = 0; ch < 2; ++ch) {
      pcm.push_back(static_cast<std::uint8_t>(s & 0xFF));
      pcm.push_back(static_cast<std::uint8_t>((s >> 8) & 0xFF));
    }
  }
  return pcm;
}

AudioClient::AudioClient(asp::net::Node& node, asp::net::Ipv4Addr group)
    : node_(node),
      socket_(node, AudioFormat::kPort, [this](const Packet& p) { on_frame(p); }) {
  node_.join_group(group);
  // Wire-rate tap: counts audio bytes as they arrive, i.e. the degraded
  // format, before the client ASP reconstructs them.
  node_.add_rx_tap([this](const Packet& p, const asp::net::Interface&) {
    bool is_audio = p.udp && p.udp->dport == AudioFormat::kPort;
    if (is_audio) {
      wire_meter_.record(node_.events().now(), p.wire_size());
      int level = last_level_;
      if (p.channel == "audio" && !p.payload.empty()) {
        level = p.payload[0] - '0';
      } else if (p.channel.empty()) {
        level = 0;  // untagged: original quality
      }
      if (last_level_ >= 0 && level != last_level_) ++level_switches_;
      last_level_ = level;
    }
  });
}

void AudioClient::start() {
  if (started_) return;
  started_ = true;
  playback_tick();
}

void AudioClient::on_frame(const asp::net::Packet& p) {
  ++frames_received_;
  payload_bytes_ += p.payload.size();
  if (buffered_frames_ < kMaxBuffer) ++buffered_frames_;
}

void AudioClient::playback_tick() {
  if (buffered_frames_ > 0) {
    --buffered_frames_;
    in_gap_ = false;
  } else if (frames_received_ > 0) {  // playback has begun at least once
    if (!in_gap_) {
      ++silent_periods_;
      in_gap_ = true;
    }
    ++silent_ticks_;
  }
  node_.events().schedule_in(AudioFormat::kFrameMs * kNsPerMs,
                             [this] { playback_tick(); });
}

LoadGenerator::LoadGenerator(asp::net::Node& node, asp::net::Ipv4Addr sink,
                             std::uint16_t sink_port)
    : node_(node), sink_(sink), sink_port_(sink_port), socket_(node, 9998, nullptr) {}

void LoadGenerator::set_rate_bps(double bps) {
  bool was_idle = rate_bps_ <= 0;
  rate_bps_ = bps;
  if (was_idle && running_ && bps > 0) tick();
}

void LoadGenerator::start() {
  if (running_) return;
  running_ = true;
  if (rate_bps_ > 0) tick();
}

void LoadGenerator::tick() {
  if (!running_ || rate_bps_ <= 0) return;
  socket_.send_to(sink_, sink_port_, std::vector<std::uint8_t>(kPayload));
  ++packets_sent_;
  double wire_bits = (kPayload + 28) * 8.0;
  SimTime gap = static_cast<SimTime>(wire_bits / rate_bps_ * 1e9);
  node_.events().schedule_in(gap, [this] { tick(); });
}

}  // namespace asp::apps
