#include "apps/cache/experiment.hpp"

#include "apps/asp_sources.hpp"

namespace asp::apps {

using asp::net::ip;
using asp::net::Ipv4Addr;
using asp::net::millis;
using asp::net::seconds;

namespace {
const Ipv4Addr kOrigin = ip("10.0.2.1");
}  // namespace

const char* cache_mode_name(CacheMode m) {
  switch (m) {
    case CacheMode::kNoCache: return "no-cache";
    case CacheMode::kAspProxy: return "asp-proxy";
    case CacheMode::kNativeProxy: return "native-proxy";
  }
  return "?";
}

CacheExperiment::CacheExperiment(Options opts) : opts_(std::move(opts)) { build(); }
CacheExperiment::~CacheExperiment() = default;

void CacheExperiment::build() {
  proxy_ = &net_.add_router("proxy");

  // Origin segment: 100 Mb/s.
  auto& origin_lan = net_.segment("origin-lan", 100e6, asp::net::micros(20));
  net_.attach(*proxy_, origin_lan, ip("10.0.2.254"));
  origin_node_ = &net_.add_node("origin");
  net_.attach(*origin_node_, origin_lan, kOrigin);
  origin_node_->routes().add_default(0, ip("10.0.2.254"));
  origin_ = std::make_unique<CacheOrigin>(*origin_node_);

  // Client machines on dedicated 10 Mb/s access links.
  std::vector<TraceEntry> trace =
      make_trace(opts_.trace_accesses, opts_.trace_files);
  for (int c = 0; c < opts_.client_machines; ++c) {
    asp::net::Node& n = net_.add_node("client" + std::to_string(c));
    Ipv4Addr caddr(10, 1, static_cast<std::uint8_t>(c + 1), 1);
    Ipv4Addr gaddr(10, 1, static_cast<std::uint8_t>(c + 1), 254);
    net_.link(n, caddr, *proxy_, gaddr, 10e6, millis(1));
    n.routes().add_default(0, gaddr);

    // Rotate the trace per machine so the pools do not run in lockstep.
    std::size_t off = (static_cast<std::size_t>(c) * 997) % trace.size();
    std::vector<TraceEntry> rotated(trace.begin() + static_cast<long>(off),
                                    trace.end());
    rotated.insert(rotated.end(), trace.begin(),
                   trace.begin() + static_cast<long>(off));
    pools_.push_back(std::make_unique<CacheClientPool>(
        n, kOrigin, std::move(rotated), opts_.processes_per_machine));
  }

  switch (opts_.mode) {
    case CacheMode::kAspProxy: {
      rt_ = std::make_unique<asp::runtime::AspRuntime>(*proxy_);
      planp::Protocol::Options popts;
      popts.engine = opts_.engine;
      // Unlike the load-balancing gateway, the cache proxy passes all five
      // analyses (hit replies ride the destination-preserving `hit` channel),
      // so the default verified-download path applies.
      rt_->install(cache_proxy_asp(kOrigin, kCachePort,
                                   static_cast<int>(opts_.cache_entries),
                                   static_cast<int>(opts_.cache_ttl_ms)),
                   popts);
      break;
    }
    case CacheMode::kNativeProxy:
      native_ = std::make_unique<NativeCacheProxy>(*proxy_, kOrigin,
                                                   opts_.cache_entries,
                                                   opts_.cache_ttl_ms);
      break;
    case CacheMode::kNoCache:
      break;  // plain IP forwarding
  }
}

planp::CacheStore::Stats CacheExperiment::cache_stats() const {
  if (rt_ != nullptr) return rt_->cache().stats();
  if (native_ != nullptr) return native_->store().stats();
  return {};
}

CacheRunResult CacheExperiment::run(double duration_sec) {
  for (auto& pool : pools_) pool->start();
  net_.run_until(seconds(duration_sec));

  CacheRunResult r;
  r.duration_sec = duration_sec;
  for (auto& pool : pools_) {
    r.completed += pool->completed();
    r.failed += pool->failed();
    r.mean_latency_ms += pool->mean_latency_ms();
  }
  r.mean_latency_ms /= static_cast<double>(pools_.size());
  r.requests_per_sec = static_cast<double>(r.completed) / duration_sec;
  r.origin_served = origin_->requests_served();
  r.cache = cache_stats();
  return r;
}

}  // namespace asp::apps
