// The in-network caching-proxy experiment (ROADMAP item 2): measures origin
// offload and client latency with the edge cache off, as a PLAN-P ASP, and as
// the hand-written C++ proxy.
#pragma once

#include <memory>
#include <vector>

#include "apps/cache/cache.hpp"
#include "net/network.hpp"
#include "runtime/engine.hpp"

namespace asp::apps {

/// The three measured configurations.
enum class CacheMode {
  kNoCache,       // every request rides through to the origin
  kAspProxy,      // asps/cache_proxy.planp installed at the edge router
  kNativeProxy,   // the hand-written C++ proxy at the same router
};

const char* cache_mode_name(CacheMode m);

struct CacheRunResult {
  double duration_sec = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double requests_per_sec = 0;
  double mean_latency_ms = 0;
  std::uint64_t origin_served = 0;     // requests that reached the origin
  planp::CacheStore::Stats cache;      // zeros in kNoCache
};

/// Topology: N client machines on dedicated 10 Mb/s links to an edge router,
/// which fronts the origin's 100 Mb/s segment. The cache (when enabled) sits
/// on the edge router — the natural aggregation point, where the paper
/// deploys its ASPs.
class CacheExperiment {
 public:
  struct Options {
    CacheMode mode = CacheMode::kAspProxy;
    planp::EngineKind engine = planp::EngineKind::kJit;
    int client_machines = 4;
    int processes_per_machine = 4;
    std::size_t trace_accesses = 80'000;
    std::size_t trace_files = 2000;     // Zipf universe size
    std::size_t cache_entries = 256;
    std::int64_t cache_ttl_ms = 0;      // <=0: never expires
  };

  explicit CacheExperiment(Options opts);
  ~CacheExperiment();

  CacheRunResult run(double duration_sec);

  asp::net::Network& network() { return net_; }
  asp::net::Node& proxy() { return *proxy_; }
  asp::runtime::AspRuntime* proxy_runtime() { return rt_.get(); }
  CacheOrigin& origin() { return *origin_; }
  const std::vector<std::unique_ptr<CacheClientPool>>& pools() const {
    return pools_;
  }

  /// The live cache counters for the active mode (all-zero under kNoCache).
  planp::CacheStore::Stats cache_stats() const;

 private:
  void build();

  Options opts_;
  asp::net::Network net_;
  asp::net::Node* proxy_ = nullptr;
  asp::net::Node* origin_node_ = nullptr;
  std::unique_ptr<CacheOrigin> origin_;
  std::vector<std::unique_ptr<CacheClientPool>> pools_;
  std::unique_ptr<asp::runtime::AspRuntime> rt_;        // kAspProxy
  std::unique_ptr<NativeCacheProxy> native_;            // kNativeProxy
};

}  // namespace asp::apps
