// In-network HTTP caching proxy (ROADMAP item 2): origin, clients, and the
// hand-written C++ proxy baseline.
//
// The wire protocol is deliberately tiny — "GET <path>" requests and
// "RSP <path> <body>" responses over UDP — so the same policy can be written
// twice: once as asps/cache_proxy.planp and once here against the packet
// structs, and the two can be diffed byte-for-byte (tests/apps_cache_test.cpp).
// Both sides share planp::CacheStore, so residency, TTL and LRU decisions are
// identical by construction; what the comparison checks is the wire handling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/http/http.hpp"  // TraceEntry / make_trace / trace_path
#include "net/network.hpp"
#include "planp/cache.hpp"

namespace asp::apps {

/// UDP port the origin serves on (and the proxies intercept).
inline constexpr std::uint16_t kCachePort = 8080;
/// First client-side port; process p of a pool binds kCacheClientPort + p.
inline constexpr std::uint16_t kCacheClientPort = 9100;

/// The deterministic response for `path`: "RSP <path> " + size_from_path(path)
/// content bytes patterned from FNV(path). Origin and tests agree on bytes
/// without shared state, so a cache hit can be diffed against an origin fetch.
std::vector<std::uint8_t> cache_response_body(const std::string& path);

/// Origin server: answers "GET <path>" datagrams with the canonical response.
class CacheOrigin {
 public:
  explicit CacheOrigin(asp::net::Node& node);

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  asp::net::Node& node_;
  std::unique_ptr<asp::net::UdpSocket> sock_;
  std::uint64_t served_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

/// Closed-loop client pool: each process requests the next trace entry as
/// soon as the previous response lands (or a watchdog gives up on it).
class CacheClientPool {
 public:
  CacheClientPool(asp::net::Node& node, asp::net::Ipv4Addr origin,
                  std::vector<TraceEntry> trace, int processes);

  void start();

  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  double mean_latency_ms() const {
    return completed_ > 0 ? total_latency_ms_ / static_cast<double>(completed_) : 0;
  }

  /// Test hook: invoked with (path, full response payload) per completion.
  void on_response(std::function<void(const std::string&,
                                      const std::vector<std::uint8_t>&)> cb) {
    on_response_ = std::move(cb);
  }

 private:
  struct Proc {
    std::unique_ptr<asp::net::UdpSocket> sock;
    std::string outstanding;         // path awaited ("" = idle)
    asp::net::SimTime issued = 0;
    std::uint64_t epoch = 0;         // invalidates stale watchdogs
  };

  void issue(std::size_t proc);

  asp::net::Node& node_;
  asp::net::Ipv4Addr origin_;
  std::vector<TraceEntry> trace_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::size_t next_entry_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t bytes_received_ = 0;
  double total_latency_ms_ = 0;
  std::function<void(const std::string&, const std::vector<std::uint8_t>&)>
      on_response_;
};

/// The C++ baseline proxy: same policy as cache_proxy.planp, hand-written
/// against the packet structs and hooked into a router's IP layer. Serves
/// hits by synthesizing the reply locally (payload aliases the cached
/// buffer — zero copies), forwards misses, fills from passing responses.
class NativeCacheProxy {
 public:
  NativeCacheProxy(asp::net::Node& router, asp::net::Ipv4Addr origin,
                   std::size_t entries = 256, std::int64_t ttl_ms = 0);

  std::uint64_t hits() const { return store_.stats().hits; }
  const planp::CacheStore& store() const { return store_; }

 private:
  bool on_packet(asp::net::Packet& p);

  asp::net::Node& node_;
  asp::net::Ipv4Addr origin_;
  planp::CacheStore store_;
};

}  // namespace asp::apps
