#include "apps/cache/cache.hpp"

#include <cstring>

namespace asp::apps {

using asp::net::Ipv4Addr;
using asp::net::Packet;
using asp::net::SimTime;
using asp::net::UdpSocket;

std::vector<std::uint8_t> cache_response_body(const std::string& path) {
  std::string head = "RSP " + path + " ";
  std::uint32_t content = size_from_path(path);
  std::vector<std::uint8_t> out;
  out.reserve(head.size() + content);
  out.assign(head.begin(), head.end());
  std::uint64_t h = planp::CacheStore::fnv1a(path.data(), path.size());
  for (std::uint32_t i = 0; i < content; ++i) {
    out.push_back(static_cast<std::uint8_t>('a' + ((h >> (8 * (i % 8))) + i) % 26));
  }
  return out;
}

namespace {

/// "GET <path>" / "RSP <path> ..." -> <path>; "" when the shape is wrong.
std::string second_word(const net::Payload& payload) {
  const std::uint8_t* d = payload.data();
  std::size_t n = payload.size();
  std::size_t start = 0;
  while (start < n && d[start] != ' ') ++start;
  if (start == n) return "";
  ++start;  // past the separator
  std::size_t end = start;
  while (end < n && d[end] != ' ' && d[end] != '\n') ++end;
  return std::string(reinterpret_cast<const char*>(d + start), end - start);
}

bool starts_with(const net::Payload& payload, const char* prefix) {
  std::size_t len = std::strlen(prefix);
  return payload.size() >= len && std::memcmp(payload.data(), prefix, len) == 0;
}

}  // namespace

CacheOrigin::CacheOrigin(asp::net::Node& node) : node_(node) {
  sock_ = std::make_unique<UdpSocket>(node_, kCachePort, [this](const Packet& p) {
    if (!p.udp || !starts_with(p.payload, "GET ")) return;
    std::string path = second_word(p.payload);
    if (path.empty()) return;
    std::vector<std::uint8_t> body = cache_response_body(path);
    ++served_;
    bytes_sent_ += body.size();
    sock_->send_to(p.ip.src, p.udp->sport, std::move(body));
  });
}

CacheClientPool::CacheClientPool(asp::net::Node& node, asp::net::Ipv4Addr origin,
                                 std::vector<TraceEntry> trace, int processes)
    : node_(node), origin_(origin), trace_(std::move(trace)) {
  procs_.reserve(static_cast<std::size_t>(processes));
  for (int i = 0; i < processes; ++i) {
    auto proc = std::make_unique<Proc>();
    std::size_t idx = procs_.size();
    proc->sock = std::make_unique<UdpSocket>(
        node_, static_cast<std::uint16_t>(kCacheClientPort + i),
        [this, idx](const Packet& p) {
          Proc& me = *procs_[idx];
          if (me.outstanding.empty() || !starts_with(p.payload, "RSP ")) return;
          if (second_word(p.payload) != me.outstanding) return;  // stale reply
          ++completed_;
          bytes_received_ += p.payload.size();
          total_latency_ms_ +=
              static_cast<double>(node_.events().now() - me.issued) / 1e6;
          if (on_response_) on_response_(me.outstanding, p.payload.bytes());
          me.outstanding.clear();
          ++me.epoch;
          issue(idx);
        });
    procs_.push_back(std::move(proc));
  }
}

void CacheClientPool::start() {
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    // Slight stagger so request bursts do not align in the same microsecond.
    node_.events().schedule_in(asp::net::micros(137) * static_cast<SimTime>(i),
                               [this, i] { issue(i); });
  }
}

void CacheClientPool::issue(std::size_t proc) {
  if (trace_.empty()) return;
  Proc& me = *procs_[proc];
  const TraceEntry& entry = trace_[next_entry_++ % trace_.size()];
  me.outstanding = entry.path;
  me.issued = node_.events().now();
  std::uint64_t epoch = me.epoch;
  me.sock->send_to(origin_, kCachePort, net::bytes_of("GET " + entry.path));

  // Watchdog: a request whose response is lost (chaos runs impair links) is
  // abandoned and the process moves on. One second dwarfs the millisecond
  // RTTs of the rigs while keeping lossy closed loops moving. The epoch
  // check voids the timer when the response did arrive and later requests
  // are in flight.
  node_.events().schedule_in(asp::net::seconds(1), [this, proc, epoch] {
    Proc& p = *procs_[proc];
    if (p.epoch == epoch && !p.outstanding.empty()) {
      p.outstanding.clear();
      ++p.epoch;
      ++failed_;
      issue(proc);
    }
  });
}

NativeCacheProxy::NativeCacheProxy(asp::net::Node& router, asp::net::Ipv4Addr origin,
                                   std::size_t entries, std::int64_t ttl_ms)
    : node_(router), origin_(origin), store_("cache/" + router.name()) {
  store_.configure(entries, ttl_ms);
  node_.set_ip_hook([this](Packet& p, asp::net::Interface&) { return on_packet(p); });
}

bool NativeCacheProxy::on_packet(Packet& p) {
  if (!p.udp) return false;
  std::int64_t now_ms = static_cast<std::int64_t>(node_.events().now() / 1000000u);

  // Request toward the origin: serve a fresh copy locally if we hold one.
  if (p.ip.dst == origin_ && p.udp->dport == kCachePort &&
      starts_with(p.payload, "GET ")) {
    std::uint64_t key =
        planp::CacheStore::key_of("GET", origin_.bits(), second_word(p.payload));
    if (const net::Buffer* body = store_.lookup(key, now_ms)) {
      Packet reply = Packet::make_udp(origin_, p.ip.src, kCachePort, p.udp->sport,
                                      net::Payload(*body));  // aliases the cache
      reply.id = node_.next_packet_id();
      node_.forward(std::move(reply));
      return true;  // consumed: the origin never sees it
    }
    return false;  // miss: standard forwarding takes it to the origin
  }

  // Response from the origin passing through: fill, then let it continue.
  if (p.ip.src == origin_ && p.udp->sport == kCachePort &&
      starts_with(p.payload, "RSP ")) {
    std::uint64_t key =
        planp::CacheStore::key_of("GET", origin_.bits(), second_word(p.payload));
    store_.store(key, p.payload.buffer(), now_ms);
  }
  return false;
}

}  // namespace asp::apps
