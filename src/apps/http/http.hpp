// HTTP server/client/trace models (paper §3.2).
//
// The server is an Apache-1.2.6-like queueing model: a fixed pool of child
// processes, each serving one request at a time with a size-dependent service
// time. Clients are closed-loop: each "client process" issues the next trace
// request as soon as the previous response completes, which is the paper's
// "clients continuously issue requests so as to measure the maximum load".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/tcp.hpp"

namespace asp::apps {

/// One access of the replayed trace.
struct TraceEntry {
  std::string path;
  std::uint32_t size;  // response body bytes
};

/// Synthesizes a web trace: Zipf-popular files with log-normal sizes
/// (cache-defeating spread, like the replayed IRISA trace of 80 000 accesses).
std::vector<TraceEntry> make_trace(std::size_t accesses, std::size_t files = 2000,
                                   std::uint32_t seed = 42);

/// Apache-like server model.
class HttpServer {
 public:
  struct Options {
    int children = 5;                  // Apache 1.2.6 ran "5 to 10 child processes"
    double fixed_overhead_ms = 14.0;   // parse + fork-pool + syscall path
    double disk_mbytes_per_sec = 10.0; // size-dependent part
  };

  HttpServer(asp::net::Node& node, Options opts);

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  int busy_children() const { return busy_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct Pending {
    std::shared_ptr<asp::net::TcpConnection> conn;
    std::uint32_t size;
  };

  void on_request(std::shared_ptr<asp::net::TcpConnection> conn, const std::string& line);
  void maybe_start();
  void finish(const Pending& job);

  asp::net::Node& node_;
  Options opts_;
  int busy_ = 0;
  std::deque<Pending> queue_;
  std::uint64_t served_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

/// Encodes the response size in the path so server and client agree without
/// shared state: "/f<index>_s<size>".
std::string trace_path(std::size_t file_index, std::uint32_t size);
std::uint32_t size_from_path(const std::string& path);

/// A pool of closed-loop client processes replaying a trace.
class HttpClientPool {
 public:
  HttpClientPool(asp::net::Node& node, asp::net::Ipv4Addr server,
                 std::vector<TraceEntry> trace, int processes);

  void start();

  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  double mean_latency_ms() const {
    return completed_ > 0 ? total_latency_ms_ / static_cast<double>(completed_) : 0;
  }

 private:
  void issue(int proc);

  asp::net::Node& node_;
  asp::net::Ipv4Addr server_;
  std::vector<TraceEntry> trace_;
  int processes_;
  std::size_t next_entry_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t bytes_received_ = 0;
  double total_latency_ms_ = 0;
};

}  // namespace asp::apps
