// The clustered HTTP server experiment of paper §3.2 (Figure 8).
#pragma once

#include <memory>
#include <vector>

#include "apps/http/http.hpp"
#include "net/network.hpp"
#include "runtime/engine.hpp"

namespace asp::apps {

/// The four measured configurations.
enum class HttpConfig {
  kSingleServer,   // curve (a): one physical server, no gateway logic
  kAspGateway,     // curve (b): 2 servers behind the PLAN-P gateway ASP
  kBuiltinGateway, // curve (c): 2 servers behind the built-in C gateway
  kDisjoint,       // 2 servers, clients split between them, no gateway
};

const char* http_config_name(HttpConfig c);

/// Load-balancing strategy for the ASP gateway (paper §3.2/§5: strategies are
/// evaluated by swapping the gateway ASP).
enum class GatewayStrategy {
  kModulo,    // figure 2: modulo on the number of requests, sticky table
  kHash,      // stateless source hashing
  kFailover,  // modulo-style with an administrative down/up control channel
};

struct HttpRunResult {
  double duration_sec = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double requests_per_sec = 0;
  double mean_latency_ms = 0;
};

/// Topology: N client machines, each on its own 10 Mb/s link to the gateway
/// machine, which fronts a 100 Mb/s server segment with up to two servers.
/// The gateway machine forwards every packet with a fixed per-packet CPU cost
/// (calibrated to the paper's Sun Ultra-1 170 MHz forwarding path) — this is
/// the "contention point" that caps the cluster at ~85% of two free-standing
/// servers.
class HttpExperiment {
 public:
  struct Options {
    HttpConfig config = HttpConfig::kAspGateway;
    int client_machines = 4;
    int processes_per_machine = 4;
    std::size_t trace_accesses = 80'000;
    double gateway_cost_us = 80.0;  // per-packet forwarding cost
    planp::EngineKind engine = planp::EngineKind::kJit;
    GatewayStrategy strategy = GatewayStrategy::kModulo;
    HttpServer::Options server;
  };

  explicit HttpExperiment(Options opts);
  ~HttpExperiment();

  HttpRunResult run(double duration_sec);

  asp::net::Network& network() { return net_; }
  asp::runtime::AspRuntime* gateway_runtime() { return gw_rt_.get(); }
  const std::vector<std::unique_ptr<HttpServer>>& servers() const { return servers_; }

  /// Crashes a physical server (it stops accepting connections).
  void kill_server(int idx);
  /// Sends the administrative "DOWN/UP <idx>" datagram to the failover
  /// gateway (only meaningful with GatewayStrategy::kFailover).
  void mark_server(int idx, bool down);

 private:
  void build();
  void install_asp_gateway();
  void install_builtin_gateway();

  Options opts_;
  asp::net::Network net_;
  asp::net::Node* gateway_ = nullptr;
  std::vector<asp::net::Node*> server_nodes_;
  std::vector<asp::net::Node*> client_nodes_;
  std::vector<std::unique_ptr<HttpServer>> servers_;
  std::vector<std::unique_ptr<HttpClientPool>> pools_;
  std::unique_ptr<asp::runtime::AspRuntime> gw_rt_;

  // Gateway CPU model: packets queue behind a single forwarding core.
  asp::net::SimTime gw_busy_until_ = 0;
  std::uint64_t gw_packets_ = 0;

  bool delay_and_forward(asp::net::Packet& p);
};

}  // namespace asp::apps
