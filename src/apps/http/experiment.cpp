#include "apps/http/experiment.hpp"

#include "apps/asp_sources.hpp"

namespace asp::apps {

using asp::net::ip;
using asp::net::Ipv4Addr;
using asp::net::millis;
using asp::net::Packet;
using asp::net::seconds;
using asp::net::SimTime;

namespace {
const Ipv4Addr kVirtual = ip("10.0.9.9");
const Ipv4Addr kServer0 = ip("10.0.2.1");
const Ipv4Addr kServer1 = ip("10.0.2.2");
}  // namespace

const char* http_config_name(HttpConfig c) {
  switch (c) {
    case HttpConfig::kSingleServer: return "single-server";
    case HttpConfig::kAspGateway: return "asp-gateway";
    case HttpConfig::kBuiltinGateway: return "builtin-c-gateway";
    case HttpConfig::kDisjoint: return "two-servers-disjoint";
  }
  return "?";
}

HttpExperiment::HttpExperiment(Options opts) : opts_(std::move(opts)) { build(); }
HttpExperiment::~HttpExperiment() = default;

void HttpExperiment::build() {
  gateway_ = &net_.add_router("gateway");

  // Server segment: 100 Mb/s.
  auto& server_lan = net_.segment("server-lan", 100e6, asp::net::micros(20));
  net_.attach(*gateway_, server_lan, ip("10.0.2.254"));

  int nservers = opts_.config == HttpConfig::kSingleServer ? 1 : 2;
  for (int s = 0; s < nservers; ++s) {
    asp::net::Node& n = net_.add_node("server" + std::to_string(s));
    net_.attach(n, server_lan, s == 0 ? kServer0 : kServer1);
    n.routes().add_default(0, ip("10.0.2.254"));
    server_nodes_.push_back(&n);
    servers_.push_back(std::make_unique<HttpServer>(n, opts_.server));
  }

  // Client machines: dedicated 10 Mb/s access links (the paper's clients sit
  // on 10 Mb Ethernet).
  std::vector<TraceEntry> trace = make_trace(opts_.trace_accesses);
  for (int c = 0; c < opts_.client_machines; ++c) {
    asp::net::Node& n = net_.add_node("client" + std::to_string(c));
    Ipv4Addr caddr(10, 1, static_cast<std::uint8_t>(c + 1), 1);
    Ipv4Addr gaddr(10, 1, static_cast<std::uint8_t>(c + 1), 254);
    net_.link(n, caddr, *gateway_, gaddr, 10e6, millis(1));
    n.routes().add_default(0, gaddr);
    client_nodes_.push_back(&n);

    Ipv4Addr target;
    switch (opts_.config) {
      case HttpConfig::kSingleServer: target = kServer0; break;
      case HttpConfig::kDisjoint: target = (c % 2 == 0) ? kServer0 : kServer1; break;
      default: target = kVirtual; break;
    }
    // Rotate the trace per machine so the pools do not run in lockstep.
    std::vector<TraceEntry> rotated(trace.begin() + (c * 997) % trace.size(),
                                    trace.end());
    rotated.insert(rotated.end(), trace.begin(),
                   trace.begin() + (c * 997) % trace.size());
    pools_.push_back(std::make_unique<HttpClientPool>(
        n, target, std::move(rotated), opts_.processes_per_machine));
  }

  switch (opts_.config) {
    case HttpConfig::kAspGateway: install_asp_gateway(); break;
    case HttpConfig::kBuiltinGateway: install_builtin_gateway(); break;
    default: break;  // plain IP forwarding, no gateway CPU model
  }
}

bool HttpExperiment::delay_and_forward(Packet& p) {
  // Single forwarding core: packets queue behind gw_busy_until_. All gateway
  // state lives on the gateway's shard, so read that node's clock — under a
  // parallel run net_.now() is shard 0's clock, not necessarily ours.
  SimTime now = gateway_->events().now();
  SimTime cost = asp::net::micros(opts_.gateway_cost_us);
  SimTime start = gw_busy_until_ > now ? gw_busy_until_ : now;
  if (start - now > asp::net::millis(50)) return false;  // input queue full: drop
  gw_busy_until_ = start + cost;
  ++gw_packets_;
  return true;
}

void HttpExperiment::install_asp_gateway() {
  gw_rt_ = std::make_unique<asp::runtime::AspRuntime>(*gateway_);
  planp::Protocol::Options popts;
  popts.engine = opts_.engine;
  // The two-server gateway cannot be *proven* to terminate by the
  // conservative analysis (the destination alternates between two literals
  // in the abstract); it is loaded through the authenticated path, exactly
  // the paper's provision for legitimate-but-unprovable protocols (§2.1).
  popts.require_verified = false;
  std::string source;
  switch (opts_.strategy) {
    case GatewayStrategy::kModulo:
      source = http_gateway_asp(kVirtual, kServer0, kServer1);
      break;
    case GatewayStrategy::kHash:
      source = http_gateway_hash_asp(kVirtual, kServer0, kServer1);
      break;
    case GatewayStrategy::kFailover:
      source = http_gateway_failover_asp(kVirtual, kServer0, kServer1);
      break;
  }
  gw_rt_->install(source, popts);

  // Wrap the runtime in the CPU-cost queue.
  gateway_->set_ip_hook([this](Packet& p, asp::net::Interface&) {
    if (!delay_and_forward(p)) return true;  // dropped at the gateway input
    // Boxed so the deferred Packet fits the EventFn inline capture budget.
    // Scheduled on the gateway's own queue (shard-local under an executor).
    gateway_->events().schedule_at(
        gw_busy_until_, [this, box = asp::net::packet_boxes().box(Packet(p))]() mutable {
          Packet& q = *box;
          if (!gw_rt_->inject(q)) {
            if (q.ip.ttl > 1) {
              --q.ip.ttl;
              gateway_->forward(std::move(q));
            }
          }
        });
    return true;
  });
}

void HttpExperiment::install_builtin_gateway() {
  // The built-in C version of the load-balancing server (paper curve c):
  // identical behaviour, hand-written against the packet structs.
  auto table = std::make_shared<std::map<std::pair<std::uint32_t, std::uint16_t>, int>>();
  auto counter = std::make_shared<int>(0);

  gateway_->set_ip_hook([this, table, counter](Packet& p, asp::net::Interface&) {
    if (!delay_and_forward(p)) return true;
    // Boxed Packet + two shared_ptrs + this: 56 bytes, inside the EventFn
    // inline capture budget. Gateway queue: shard-local under an executor.
    gateway_->events().schedule_at(gw_busy_until_, [this, table, counter,
                                               box = asp::net::packet_boxes().box(
                                                   Packet(p))]() mutable {
      Packet& q = *box;
      if (q.tcp && q.ip.dst == kVirtual && q.tcp->dport == 80) {
        auto key = std::make_pair(q.ip.src.bits(), q.tcp->sport);
        auto it = table->find(key);
        int con;
        if (it != table->end()) {
          con = it->second;
        } else {
          con = (*counter) % 2;
          (*table)[key] = con;
        }
        if (q.tcp->has(asp::net::tcpflag::kSyn) && !q.tcp->has(asp::net::tcpflag::kAck)) {
          ++(*counter);
        }
        q.ip.dst = con == 0 ? kServer0 : kServer1;
      } else if (q.tcp && q.tcp->sport == 80 &&
                 (q.ip.src == kServer0 || q.ip.src == kServer1)) {
        q.ip.src = kVirtual;
      }
      if (q.ip.ttl > 1) {
        --q.ip.ttl;
        q.l2_next_hop = Ipv4Addr{};
        gateway_->forward(std::move(q));
      }
    });
    return true;
  });
}

void HttpExperiment::kill_server(int idx) {
  server_nodes_.at(static_cast<std::size_t>(idx))->tcp().stop_listening(80);
}

void HttpExperiment::mark_server(int idx, bool down) {
  // Administrative datagram from the first client machine to the gateway.
  asp::net::Node& admin = *client_nodes_.at(0);
  asp::net::Packet p = asp::net::Packet::make_udp(
      admin.addr(), ip("10.0.2.254"), 9908, 9909,
      asp::net::bytes_of(std::string(down ? "DOWN " : "UP ") + std::to_string(idx)));
  p.id = admin.next_packet_id();
  admin.send_ip(std::move(p));
}

HttpRunResult HttpExperiment::run(double duration_sec) {
  for (auto& pool : pools_) pool->start();
  net_.run_until(seconds(duration_sec));

  HttpRunResult r;
  r.duration_sec = duration_sec;
  for (auto& pool : pools_) {
    r.completed += pool->completed();
    r.failed += pool->failed();
    r.mean_latency_ms += pool->mean_latency_ms();
  }
  r.mean_latency_ms /= static_cast<double>(pools_.size());
  r.requests_per_sec = static_cast<double>(r.completed) / duration_sec;
  return r;
}

}  // namespace asp::apps
