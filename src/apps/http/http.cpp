#include "apps/http/http.hpp"

#include <algorithm>
#include <cmath>

namespace asp::apps {

using asp::net::millis;
using asp::net::Packet;
using asp::net::SimTime;
using asp::net::TcpConnection;

std::string trace_path(std::size_t file_index, std::uint32_t size) {
  return "/f" + std::to_string(file_index) + "_s" + std::to_string(size);
}

std::uint32_t size_from_path(const std::string& path) {
  auto pos = path.rfind("_s");
  if (pos == std::string::npos) return 1024;
  return static_cast<std::uint32_t>(std::strtoul(path.c_str() + pos + 2, nullptr, 10));
}

std::vector<TraceEntry> make_trace(std::size_t accesses, std::size_t files,
                                   std::uint32_t seed) {
  std::mt19937 rng(seed);

  // Per-file sizes: log-normal, median ~6 KB, capped at 512 KB.
  std::lognormal_distribution<double> size_dist(std::log(6000.0), 1.0);
  std::vector<std::uint32_t> sizes(files);
  for (auto& s : sizes) {
    s = static_cast<std::uint32_t>(
        std::clamp(size_dist(rng), 200.0, 512.0 * 1024.0));
  }

  // Zipf(1.0) popularity via inverse-CDF sampling.
  std::vector<double> cdf(files);
  double acc = 0;
  for (std::size_t i = 0; i < files; ++i) {
    acc += 1.0 / static_cast<double>(i + 1);
    cdf[i] = acc;
  }
  std::uniform_real_distribution<double> uni(0.0, acc);

  std::vector<TraceEntry> trace;
  trace.reserve(accesses);
  for (std::size_t i = 0; i < accesses; ++i) {
    double u = uni(rng);
    std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (idx >= files) idx = files - 1;
    trace.push_back(TraceEntry{trace_path(idx, sizes[idx]), sizes[idx]});
  }
  return trace;
}

HttpServer::HttpServer(asp::net::Node& node, Options opts) : node_(node), opts_(opts) {
  node_.tcp().listen(80, [this](std::shared_ptr<TcpConnection> conn) {
    auto buffer = std::make_shared<std::string>();
    conn->on_data([this, conn, buffer](const std::vector<std::uint8_t>& d) {
      buffer->append(d.begin(), d.end());
      auto eol = buffer->find('\n');
      if (eol != std::string::npos) {
        on_request(conn, buffer->substr(0, eol));
        buffer->clear();
      }
    });
  });
}

void HttpServer::on_request(std::shared_ptr<TcpConnection> conn,
                            const std::string& line) {
  // "GET <path>"
  std::uint32_t size = 1024;
  auto sp = line.find(' ');
  if (sp != std::string::npos) size = size_from_path(line.substr(sp + 1));
  queue_.push_back(Pending{std::move(conn), size});
  maybe_start();
}

void HttpServer::maybe_start() {
  while (busy_ < opts_.children && !queue_.empty()) {
    Pending job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    double service_ms =
        opts_.fixed_overhead_ms + job.size / (opts_.disk_mbytes_per_sec * 1000.0);
    node_.events().schedule_in(millis(service_ms), [this, job = std::move(job)] {
      finish(job);
    });
  }
}

void HttpServer::finish(const Pending& job) {
  --busy_;
  if (job.conn->state() == TcpConnection::State::kEstablished ||
      job.conn->state() == TcpConnection::State::kCloseWait) {
    std::string header = "HTTP/1.0 200 OK\nContent-Length: " +
                         std::to_string(job.size) + "\n\n";
    std::vector<std::uint8_t> response(header.begin(), header.end());
    response.resize(header.size() + job.size, 'x');
    job.conn->send(std::move(response));
    job.conn->close();
    ++served_;
    bytes_sent_ += job.size;
  }
  maybe_start();
}

HttpClientPool::HttpClientPool(asp::net::Node& node, asp::net::Ipv4Addr server,
                               std::vector<TraceEntry> trace, int processes)
    : node_(node), server_(server), trace_(std::move(trace)), processes_(processes) {}

void HttpClientPool::start() {
  for (int i = 0; i < processes_; ++i) {
    // Slight stagger so connections do not all open in the same microsecond.
    node_.events().schedule_in(asp::net::micros(137) * static_cast<SimTime>(i),
                               [this, i] { issue(i); });
  }
}

void HttpClientPool::issue(int proc) {
  if (trace_.empty()) return;
  const TraceEntry& entry = trace_[next_entry_++ % trace_.size()];
  SimTime started = node_.events().now();

  auto conn = node_.tcp().connect(server_, 80);
  auto received = std::make_shared<std::size_t>(0);
  auto done = std::make_shared<bool>(false);
  std::uint32_t expect = entry.size;

  conn->on_established([conn, path = entry.path] { conn->send("GET " + path + "\n"); });
  conn->on_data([this, received, expect, done, started, proc,
                 conn](const std::vector<std::uint8_t>& d) {
    *received += d.size();
    if (!*done && *received >= expect) {  // header + body; close-delimited
      *done = true;
      ++completed_;
      bytes_received_ += *received;
      total_latency_ms_ +=
          static_cast<double>(node_.events().now() - started) / 1e6;
      conn->close();
      issue(proc);
    }
  });
  conn->on_closed([this, done, proc] {
    if (!*done) {
      ++failed_;
      issue(proc);
    }
  });

  // Watchdog: a connection that never completes (SYN lost to a saturated
  // gateway, server overload) is abandoned and the process moves on.
  node_.events().schedule_in(asp::net::seconds(15), [this, done, conn, proc] {
    if (!*done && conn->state() != TcpConnection::State::kClosed) {
      *done = true;
      conn->abort();
      ++failed_;
      issue(proc);
    }
  });
}

}  // namespace asp::apps
