// The point-to-point -> multipoint MPEG experiment of paper §3.3.
#pragma once

#include <memory>
#include <vector>

#include "apps/mpeg/mpeg.hpp"
#include "net/network.hpp"
#include "runtime/engine.hpp"

namespace asp::apps {

struct MpegRunResult {
  int clients = 0;
  int server_streams = 0;        // open streams at the server at steady state
  double server_egress_mbps = 0; // server uplink video bandwidth
  int clients_playing = 0;       // clients actually receiving video
  int clients_sharing = 0;       // clients fed by the capture ASP
  double min_client_mbps = 0;    // weakest client's receive rate
  double max_client_mbps = 0;
};

/// Topology: server --(100 Mb link)--> router --(10 Mb segment)--> {monitor
/// machine, N clients}. With sharing enabled, the monitor ASP runs
/// promiscuously on the monitor machine and each client runs the
/// reply/capture ASPs; the server is never modified.
class MpegExperiment {
 public:
  explicit MpegExperiment(bool sharing, int clients,
                          planp::EngineKind engine = planp::EngineKind::kJit);
  ~MpegExperiment();

  /// All clients request the same file, staggered 300 ms apart; measures at
  /// `measure_at_sec` into the run.
  MpegRunResult run(double measure_at_sec = 10.0);

  asp::net::Network& network() { return net_; }
  MpegServer& server() { return *server_; }

 private:
  bool sharing_;
  int nclients_;
  planp::EngineKind engine_;
  asp::net::Network net_;
  asp::net::Node* server_node_ = nullptr;
  asp::net::Node* monitor_node_ = nullptr;
  std::vector<asp::net::Node*> client_nodes_;
  std::unique_ptr<MpegServer> server_;
  std::vector<std::unique_ptr<MpegClient>> clients_;
  std::unique_ptr<asp::runtime::AspRuntime> monitor_rt_;
  std::vector<std::unique_ptr<asp::runtime::AspRuntime>> client_rts_;
};

}  // namespace asp::apps
