// Point-to-point MPEG video server and client (paper §3.3).
//
// Mirrors the OGI distributed MPEG player's structure: a TCP control
// connection to the server ("PLAY <file> <vport>" / "SETUP <file> <w> <h>
// <fps>"), then a UDP video stream of synthetic MPEG-1 GOP frames. The ASPs
// (monitor + capture) turn this point-to-point service into segment-local
// multipoint without changing the server.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/tcp.hpp"

namespace asp::apps {

/// Synthetic MPEG-1 stream: a repeating 9-frame GOP (IBBPBBPBB) at 30 fps.
struct MpegFormat {
  static constexpr int kFps = 30;
  static constexpr std::uint16_t kCtrlPort = 9000;
  static constexpr std::uint16_t kQueryPort = 9100;

  /// Frame size (bytes) for frame number `n` of the stream.
  static std::size_t frame_size(std::uint64_t n) {
    static constexpr std::size_t kGop[9] = {12000, 1500, 1500, 4000, 1500,
                                            1500,  4000, 1500, 1500};
    return kGop[n % 9];
  }
};

/// The unmodified point-to-point video server.
class MpegServer {
 public:
  explicit MpegServer(asp::net::Node& node);

  int active_streams() const { return static_cast<int>(streams_.size()); }
  std::uint64_t video_bytes_sent() const { return video_bytes_; }
  std::uint64_t connections_accepted() const { return accepted_; }

  /// Egress video bandwidth over the last half second (bits/sec).
  double egress_bps() { return meter_.rate_bps(node_.events().now()); }

 private:
  struct Stream {
    asp::net::Ipv4Addr client;
    std::uint16_t vport;
    std::uint64_t frame = 0;
    bool stopped = false;
  };

  void on_control(std::shared_ptr<asp::net::TcpConnection> conn, const std::string& line);
  void stream_tick(std::uint64_t id);

  asp::net::Node& node_;
  asp::net::UdpSocket video_out_;
  std::map<std::uint64_t, Stream> streams_;
  std::uint64_t next_id_ = 1;
  std::uint64_t video_bytes_ = 0;
  std::uint64_t accepted_ = 0;
  asp::net::BandwidthMeter meter_{asp::net::kNsPerSec / 2};
};

/// The video client. With sharing enabled it first asks the segment monitor
/// whether the file is already being streamed; only on a miss does it open
/// its own connection to the server (the paper's modified client behaviour).
class MpegClient {
 public:
  /// `install_capture` is invoked when the monitor reports an existing
  /// stream: (shared_client_addr, shared_vport) -> the app installs the
  /// capture ASP. Null disables sharing (baseline point-to-point client).
  using InstallCapture =
      std::function<void(asp::net::Ipv4Addr shared_client, std::uint16_t shared_vport)>;

  MpegClient(asp::net::Node& node, asp::net::Ipv4Addr server,
             asp::net::Ipv4Addr monitor, std::uint16_t vport,
             InstallCapture install_capture);

  /// Starts playback of `file`.
  void play(const std::string& file);

  bool sharing() const { return sharing_; }
  bool playing() const { return playing_; }
  std::uint64_t video_bytes() const { return video_bytes_; }
  std::uint64_t frames() const { return frames_; }
  double receive_bps() { return meter_.rate_bps(node_.events().now()); }
  const std::string& setup_info() const { return setup_; }

 private:
  void query_monitor();
  void on_monitor_reply(const std::string& reply);
  void connect_to_server();
  void on_video(const asp::net::Packet& p);

  asp::net::Node& node_;
  asp::net::Ipv4Addr server_;
  asp::net::Ipv4Addr monitor_;
  std::uint16_t vport_;
  InstallCapture install_capture_;
  asp::net::UdpSocket video_in_;
  std::unique_ptr<asp::net::UdpSocket> query_sock_;
  std::shared_ptr<asp::net::TcpConnection> ctrl_;
  std::string file_;
  std::string setup_;
  bool playing_ = false;
  bool sharing_ = false;
  bool reply_seen_ = false;
  std::uint64_t video_bytes_ = 0;
  std::uint64_t frames_ = 0;
  asp::net::BandwidthMeter meter_{asp::net::kNsPerSec / 2};
};

}  // namespace asp::apps
