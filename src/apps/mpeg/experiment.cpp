#include "apps/mpeg/experiment.hpp"

#include "apps/asp_sources.hpp"

namespace asp::apps {

using asp::net::ip;
using asp::net::Ipv4Addr;
using asp::net::millis;
using asp::net::seconds;

MpegExperiment::MpegExperiment(bool sharing, int clients, planp::EngineKind engine)
    : sharing_(sharing), nclients_(clients), engine_(engine) {
  server_node_ = &net_.add_node("video-server");
  asp::net::Node& router = net_.add_router("router");
  net_.link(*server_node_, ip("10.0.1.1"), router, ip("10.0.1.254"), 100e6, millis(1));
  server_node_->routes().add_default(0);

  auto& lan = net_.segment("client-lan", 10e6, asp::net::micros(50));
  net_.attach(router, lan, ip("192.168.1.254"));

  monitor_node_ = &net_.add_node("monitor");
  asp::net::Interface& mon_if = net_.attach(*monitor_node_, lan, ip("192.168.1.100"));
  monitor_node_->routes().add_default(0, ip("192.168.1.254"));

  server_ = std::make_unique<MpegServer>(*server_node_);

  planp::Protocol::Options popts;
  popts.engine = engine_;
  if (sharing_) {
    mon_if.set_promiscuous(true);
    monitor_rt_ = std::make_unique<asp::runtime::AspRuntime>(*monitor_node_);
    monitor_rt_->install(mpeg_monitor_asp(server_node_->addr()), popts);
  }

  for (int c = 0; c < nclients_; ++c) {
    asp::net::Node& n = net_.add_node("client" + std::to_string(c));
    asp::net::Interface& cif =
        net_.attach(n, lan, Ipv4Addr(192, 168, 1, static_cast<std::uint8_t>(c + 1)));
    n.routes().add_default(0, ip("192.168.1.254"));
    client_nodes_.push_back(&n);

    std::uint16_t vport = static_cast<std::uint16_t>(7000 + 10 * c);
    MpegClient::InstallCapture install = nullptr;
    if (sharing_) {
      cif.set_promiscuous(true);
      auto rt = std::make_unique<asp::runtime::AspRuntime>(n);
      rt->install(mpeg_reply_asp(), popts);
      asp::runtime::AspRuntime* rt_raw = rt.get();
      client_rts_.push_back(std::move(rt));
      install = [rt_raw, vport, this](Ipv4Addr shared_client, std::uint16_t shared_vport) {
        planp::Protocol::Options o;
        o.engine = engine_;
        rt_raw->uninstall();
        rt_raw->install(mpeg_capture_asp(shared_client, shared_vport, vport), o);
      };
    }
    clients_.push_back(std::make_unique<MpegClient>(
        n, server_node_->addr(),
        sharing_ ? monitor_node_->addr() : Ipv4Addr{}, vport, std::move(install)));
  }
}

MpegExperiment::~MpegExperiment() = default;

MpegRunResult MpegExperiment::run(double measure_at_sec) {
  // Helper events run on the queue of the node whose state they touch, so a
  // parallel run keeps them shard-local: play()/client sampling on the LAN
  // shard, server sampling on the server's shard.
  for (int c = 0; c < nclients_; ++c) {
    client_nodes_[static_cast<std::size_t>(c)]->events().schedule_at(
        seconds(0.1 + 0.3 * c),
        [this, c] { clients_[static_cast<std::size_t>(c)]->play("movie.mpg"); });
  }

  MpegRunResult r;
  r.clients = nclients_;
  server_node_->events().schedule_at(seconds(measure_at_sec), [this, &r] {
    r.server_streams = server_->active_streams();
    r.server_egress_mbps = server_->egress_bps() / 1e6;
  });
  monitor_node_->events().schedule_at(seconds(measure_at_sec), [this, &r] {
    double lo = 1e18, hi = 0;
    for (auto& c : clients_) {
      if (c->playing()) ++r.clients_playing;
      if (c->sharing()) ++r.clients_sharing;
      double bps = c->receive_bps();
      lo = std::min(lo, bps);
      hi = std::max(hi, bps);
    }
    r.min_client_mbps = (clients_.empty() ? 0 : lo) / 1e6;
    r.max_client_mbps = hi / 1e6;
  });
  net_.run_until(seconds(measure_at_sec + 0.05));
  return r;
}

}  // namespace asp::apps
