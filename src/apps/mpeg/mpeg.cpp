#include "apps/mpeg/mpeg.hpp"

#include <sstream>

namespace asp::apps {

using asp::net::kNsPerSec;
using asp::net::millis;
using asp::net::Packet;
using asp::net::TcpConnection;

MpegServer::MpegServer(asp::net::Node& node)
    : node_(node), video_out_(node, 9001, nullptr) {
  node_.tcp().listen(MpegFormat::kCtrlPort, [this](std::shared_ptr<TcpConnection> c) {
    ++accepted_;
    auto buffer = std::make_shared<std::string>();
    c->on_data([this, c, buffer](const std::vector<std::uint8_t>& d) {
      buffer->append(d.begin(), d.end());
      auto eol = buffer->find('\n');
      while (eol != std::string::npos) {
        on_control(c, buffer->substr(0, eol));
        buffer->erase(0, eol + 1);
        eol = buffer->find('\n');
      }
    });
  });
}

void MpegServer::on_control(std::shared_ptr<TcpConnection> conn,
                            const std::string& line) {
  std::istringstream in(line);
  std::string cmd, file;
  int vport = 0;
  in >> cmd >> file >> vport;
  if (cmd == "PLAY" && !file.empty() && vport > 0) {
    std::uint64_t id = next_id_++;
    streams_[id] = Stream{conn->remote_addr(), static_cast<std::uint16_t>(vport), 0,
                          false};
    conn->send("SETUP " + file + " 352 240 " + std::to_string(MpegFormat::kFps) + "\n");
    auto self_id = id;
    conn->on_closed([this, self_id] {
      auto it = streams_.find(self_id);
      if (it != streams_.end()) it->second.stopped = true;
    });
    stream_tick(id);
  } else if (cmd == "STOP") {
    // Stop every stream to this client (simplified teardown).
    for (auto& [id, s] : streams_) {
      if (s.client == conn->remote_addr()) s.stopped = true;
    }
  }
}

void MpegServer::stream_tick(std::uint64_t id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) return;
  Stream& s = it->second;
  if (s.stopped) {
    streams_.erase(it);
    return;
  }
  std::size_t size = MpegFormat::frame_size(s.frame);
  // Fragment into MTU-sized UDP packets; first 8 payload bytes carry the
  // frame number and fragment index so the client can count frames.
  std::size_t off = 0;
  int frag = 0;
  while (off < size) {
    std::size_t chunk = std::min<std::size_t>(1400, size - off);
    std::vector<std::uint8_t> payload(chunk + 8);
    std::uint32_t fn = static_cast<std::uint32_t>(s.frame);
    payload[0] = static_cast<std::uint8_t>(fn >> 24);
    payload[1] = static_cast<std::uint8_t>(fn >> 16);
    payload[2] = static_cast<std::uint8_t>(fn >> 8);
    payload[3] = static_cast<std::uint8_t>(fn);
    payload[4] = static_cast<std::uint8_t>(frag++);
    video_out_.send_to(s.client, s.vport, std::move(payload));
    video_bytes_ += chunk + 8;
    meter_.record(node_.events().now(), chunk + 8 + 28);
    off += chunk;
  }
  ++s.frame;
  node_.events().schedule_in(kNsPerSec / MpegFormat::kFps, [this, id] {
    stream_tick(id);
  });
}

MpegClient::MpegClient(asp::net::Node& node, asp::net::Ipv4Addr server,
                       asp::net::Ipv4Addr monitor, std::uint16_t vport,
                       InstallCapture install_capture)
    : node_(node),
      server_(server),
      monitor_(monitor),
      vport_(vport),
      install_capture_(std::move(install_capture)),
      video_in_(node, vport, [this](const Packet& p) { on_video(p); }) {}

void MpegClient::play(const std::string& file) {
  file_ = file;
  if (install_capture_ != nullptr && !monitor_.is_unspecified()) {
    query_monitor();
  } else {
    connect_to_server();
  }
}

void MpegClient::query_monitor() {
  query_sock_ = std::make_unique<asp::net::UdpSocket>(
      node_, static_cast<std::uint16_t>(vport_ + 1), [this](const Packet& p) {
        on_monitor_reply(asp::net::string_of(p.payload));
      });
  query_sock_->send_to(monitor_, MpegFormat::kQueryPort, asp::net::bytes_of("QUERY " + file_));
  // Miss or lost reply: fall back to a direct connection after 200 ms.
  node_.events().schedule_in(millis(200), [this] {
    if (!reply_seen_ && !playing_) connect_to_server();
  });
}

void MpegClient::on_monitor_reply(const std::string& reply) {
  if (reply_seen_) return;
  reply_seen_ = true;
  std::istringstream in(reply);
  std::string status;
  in >> status;
  if (status == "FOUND") {
    std::string addr_s;
    int shared_vport = 0;
    in >> addr_s >> shared_vport;
    auto addr = asp::net::Ipv4Addr::parse(addr_s);
    std::string rest;
    std::getline(in, rest);
    setup_ = rest;
    if (addr && shared_vport > 0 && install_capture_) {
      sharing_ = true;
      playing_ = true;
      install_capture_(*addr, static_cast<std::uint16_t>(shared_vport));
      return;
    }
  }
  connect_to_server();
}

void MpegClient::connect_to_server() {
  if (playing_) return;
  playing_ = true;
  ctrl_ = node_.tcp().connect(server_, MpegFormat::kCtrlPort);
  ctrl_->on_established([this] {
    ctrl_->send("PLAY " + file_ + " " + std::to_string(vport_) + "\n");
  });
  ctrl_->on_data([this](const std::vector<std::uint8_t>& d) {
    setup_ += asp::net::string_of(d);
  });
}

void MpegClient::on_video(const Packet& p) {
  video_bytes_ += p.payload.size();
  meter_.record(node_.events().now(), p.wire_size());
  // Count a frame when its first fragment arrives.
  if (p.payload.size() >= 5 && p.payload[4] == 0) ++frames_;
}

}  // namespace asp::apps
