// PLAN-P source text of every ASP used in the paper's experiments (§3).
//
// ASPs are configured at download time by substituting addresses/ports into
// the source — the paper's point that "the ASP can be easily changed so as to
// permit the addition/removal of a physical server, or to match a new network
// topology". Human-readable copies live in /asps; tests assert the two stay
// in sync.
#pragma once

#include <string>

#include "net/addr.hpp"

namespace asp::apps {

// --- PLAN-P Ethernet bridge ----------------------------------------------------

/// The learning Ethernet bridge the paper cites from the authors' earlier
/// work (§1/§2.4: "a PLAN-P Ethernet bridge can be as efficient as an
/// in-kernel built-in C programmed bridge"). The shared protocol state learns
/// which interface each source sits behind; frames whose destination is on
/// the arrival side are filtered, everything else is flooded to the other
/// side(s) via OnNeighbor.
inline std::string bridge_asp() {
  return R"(-- Learning Ethernet bridge (paper 1/2.4 cited claim).
channel network(ps : (host, int) hash_table, ss : unit, p : ip*blob) is
  let val src : host = ipSrc(#1 p)
      val dst : host = ipDst(#1 p)
      val side : int = arrivalIface()
  in
    (tableSet(ps, src, side);
     if (try tableGet(ps, dst) with -1) = side then
       (drop(); (ps, ss))    -- destination is on the arrival segment
     else
       (OnNeighbor(network, p); (ps, ss)))
  end
)";
}

// --- §3.1 audio broadcasting -------------------------------------------------

/// Router ASP: per-segment bandwidth adaptation. Degrades 16-bit stereo to
/// 16-bit mono to 8-bit mono as the outgoing segment's load rises.
inline std::string audio_router_asp() {
  return R"(-- Audio broadcasting: in-router bandwidth adaptation (paper 3.1).
-- Quality levels: 0 = 16-bit stereo (176 kb/s), 1 = 16-bit mono (88 kb/s),
-- 2 = 8-bit mono (44 kb/s). The tag character rides in front of the PCM.
val audioPort : int = 5004

fun levelFor(load : int) : int =
  if load >= 85 then 2 else if load >= 60 then 1 else 0

fun tagOf(level : int) : char =
  if level = 2 then '2' else if level = 1 then '1' else '0'

fun degradeFrom0(level : int, pcm : blob) : blob =
  if level = 2 then audio16To8(audioStereoToMono(pcm))
  else if level = 1 then audioStereoToMono(pcm)
  else pcm

fun degradeMore(cur : int, need : int, pcm : blob) : blob =
  if cur = 0 then degradeFrom0(need, pcm)
  else if cur = 1 and need = 2 then audio16To8(pcm)
  else pcm

-- Untagged traffic: tag and degrade multicast audio; forward everything else.
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let val iph : ip = #1 p
      val udph : udp = #2 p
  in
    if udpDst(udph) = audioPort and isMulticast(ipDst(iph)) then
      let val level : int = levelFor(linkLoad()) in
        (OnRemote(audio, (iph, udph, tagOf(level), degradeFrom0(level, #3 p)));
         (level, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end

-- Audio already tagged by an upstream router: degrade further if this
-- segment is more loaded (adaptation is per segment, paper 3.1).
channel audio(ps : int, ss : unit, p : ip*udp*char*blob) is
  let val cur : int = charPos(#3 p) - 48
      val need : int = levelFor(linkLoad())
  in
    if need > cur then
      (OnRemote(audio, (#1 p, #2 p, tagOf(need), degradeMore(cur, need, #4 p)));
       (need, ss))
    else
      (OnRemote(audio, p); (cur, ss))
  end
)";
}

/// Client ASP: restores degraded audio to the 16-bit stereo format the
/// unmodified player expects.
inline std::string audio_client_asp() {
  return R"(-- Audio broadcasting: client-side reconstruction (paper 3.1).
fun restore(level : int, pcm : blob) : blob =
  if level = 2 then audioMonoToStereo(audio8To16(pcm))
  else if level = 1 then audioMonoToStereo(pcm)
  else pcm

channel audio(ps : int, ss : unit, p : ip*udp*char*blob) is
  let val level : int = charPos(#3 p) - 48
  in (deliver((#1 p, #2 p, restore(level, #4 p))); (level, ss)) end
)";
}

/// Alternative adaptation policy (paper §3.1: "there are many other
/// strategies ... The advantage of PLAN-P is that strategies can be quickly
/// developed and experimented with"): hysteresis — degrading is immediate,
/// recovering requires the load to stay low, which suppresses the oscillation
/// the threshold policy shows at medium load. The protocol state holds the
/// current level; the channel state counts consecutive low-load packets.
inline std::string audio_router_hysteresis_asp() {
  return R"(-- Audio adaptation with hysteresis: oscillation-free variant of 3.1.
val audioPort : int = 5004
val holdFrames : int = 50   -- ~1 s of audio must stay calm before upgrading

fun levelFor(load : int) : int =
  if load >= 85 then 2 else if load >= 60 then 1 else 0

fun tagOf(level : int) : char =
  if level = 2 then '2' else if level = 1 then '1' else '0'

fun degradeFrom0(level : int, pcm : blob) : blob =
  if level = 2 then audio16To8(audioStereoToMono(pcm))
  else if level = 1 then audioStereoToMono(pcm)
  else pcm

channel network(ps : int, ss : int, p : ip*udp*blob) initstate 0 is
  let val iph : ip = #1 p
      val udph : udp = #2 p
  in
    if udpDst(udph) = audioPort and isMulticast(ipDst(iph)) then
      let val want : int = levelFor(linkLoad())
          val level : int =
            if want >= ps then want                     -- degrade immediately
            else if ss >= holdFrames then want          -- calm long enough
            else ps                                     -- hold the old level
          val calm : int = if want < ps then ss + 1 else 0
      in
        (OnRemote(audio, (iph, udph, tagOf(level), degradeFrom0(level, #3 p)));
         (level, calm))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end

channel audio(ps : int, ss : int, p : ip*udp*char*blob) is
  (OnRemote(audio, p); (ps, ss))
)";
}

// --- §3.2 extensible HTTP server ----------------------------------------------

/// Gateway ASP (paper Figure 2, completed): balances HTTP connections across
/// two physical servers behind one virtual address. The strategy is the
/// paper's "modulo on the number of requests"; connections stay sticky via
/// the hash table.
inline std::string http_gateway_asp(asp::net::Ipv4Addr virtual_server,
                                    asp::net::Ipv4Addr server0,
                                    asp::net::Ipv4Addr server1) {
  return std::string(R"(-- Extensible HTTP server with load balancing (paper 3.2, figure 2).
val virtualServer : host = )") + virtual_server.str() + R"(
val server0 : host = )" + server0.str() + R"(
val server1 : host = )" + server1.str() + R"(
val httpPort : int = 80

-- Picks (and records) the physical server for a connection.
fun getSetS(src : host, sport : int,
            ss : (host*int, int) hash_table, ps : int) : int =
  try tableGet(ss, (src, sport))
  with (tableSet(ss, (src, sport), ps % 2); ps % 2)

channel network(ps : int, ss : (host*int, int) hash_table, p : ip*tcp*blob)
initstate mkTable(1024) is
  let val iph : ip = #1 p
      val tcph : tcp = #2 p
      val body : blob = #3 p
  in
    if ipDst(iph) = virtualServer and tcpDst(tcph) = httpPort then
      -- incoming HTTP requests
      let val con : int = getSetS(ipSrc(iph), tcpSrc(tcph), ss, ps) in
        if con = 0 then
          -- replace the logical server by server 0
          (OnRemote(network, (ipDestSet(iph, server0), tcph, body));
           (if tcpSyn(tcph) and not tcpAck(tcph) then ps + 1 else ps, ss))
        else
          -- replace the logical server by server 1
          (OnRemote(network, (ipDestSet(iph, server1), tcph, body));
           (if tcpSyn(tcph) and not tcpAck(tcph) then ps + 1 else ps, ss))
      end
    else
      if tcpSrc(tcph) = httpPort and
         (ipSrc(iph) = server0 or ipSrc(iph) = server1) then
        -- results: the physical server hides behind the virtual address
        (OnRemote(network, (ipSrcSet(iph, virtualServer), tcph, body)); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
)";
}

/// Alternative strategy (paper §3.2/§5: "different load-balancing strategies
/// can be evaluated by changing the gateway ASP"): stateless source hashing —
/// no connection table at all, the server choice is a pure function of the
/// client address and port.
inline std::string http_gateway_hash_asp(asp::net::Ipv4Addr virtual_server,
                                         asp::net::Ipv4Addr server0,
                                         asp::net::Ipv4Addr server1) {
  return std::string(R"(-- Load balancing by source hashing: stateless variant of figure 2.
val virtualServer : host = )") + virtual_server.str() + R"(
val server0 : host = )" + server0.str() + R"(
val server1 : host = )" + server1.str() + R"(

fun pick(src : host, sport : int) : int = (hostToInt(src) + sport * 7919) % 2

channel network(ps : unit, ss : unit, p : ip*tcp*blob) is
  let val iph : ip = #1 p
      val tcph : tcp = #2 p
  in
    if ipDst(iph) = virtualServer and tcpDst(tcph) = 80 then
      if pick(ipSrc(iph), tcpSrc(tcph)) = 0 then
        (OnRemote(network, (ipDestSet(iph, server0), tcph, #3 p)); (ps, ss))
      else
        (OnRemote(network, (ipDestSet(iph, server1), tcph, #3 p)); (ps, ss))
    else
      if tcpSrc(tcph) = 80 and (ipSrc(iph) = server0 or ipSrc(iph) = server1) then
        (OnRemote(network, (ipSrcSet(iph, virtualServer), tcph, #3 p)); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
)";
}

/// Fault-tolerant gateway (paper §5: "we want to enrich the HTTP cluster
/// server experiment with fault-tolerance capabilities"): an administrative
/// UDP control channel marks servers down/up; connections are steered to the
/// live server and existing assignments to a dead server are overridden.
inline std::string http_gateway_failover_asp(asp::net::Ipv4Addr virtual_server,
                                             asp::net::Ipv4Addr server0,
                                             asp::net::Ipv4Addr server1,
                                             int admin_port = 9909) {
  return std::string(R"(-- Load-balancing gateway with administrative failover.
-- Shared protocol state: "down0"/"down1" -> 1 marks a server dead.
val virtualServer : host = )") + virtual_server.str() + R"(
val server0 : host = )" + server0.str() + R"(
val server1 : host = )" + server1.str() + R"(
val adminPort : int = )" + std::to_string(admin_port) + R"(

fun isDown(flags : (string, int) hash_table, idx : int) : bool =
  (try tableGet(flags, "down" ^ intToString(idx)) with 0) = 1

fun choose(flags : (string, int) hash_table, want : int) : int =
  if isDown(flags, want) then 1 - want else want

-- Admin channel: "DOWN <idx>" / "UP <idx>" sent to the gateway.
channel network(ps : (string, int) hash_table, ss : unit, p : ip*udp*blob) is
  let val body : string = blobToString(#3 p) in
    if ipDst(#1 p) = thisHost() and udpDst(#2 p) = adminPort then
      (if startsWith(body, "DOWN ") then
         tableSet(ps, "down" ^ strWord(body, 1), 1)
       else if startsWith(body, "UP ") then
         tableSet(ps, "down" ^ strWord(body, 1), 0)
       else ();
       drop(); (ps, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end

channel network(ps : (string, int) hash_table,
                ss : (host*int, int) hash_table, p : ip*tcp*blob)
initstate mkTable(1024) is
  let val iph : ip = #1 p
      val tcph : tcp = #2 p
  in
    if ipDst(iph) = virtualServer and tcpDst(tcph) = 80 then
      let val key : host*int = (ipSrc(iph), tcpSrc(tcph))
          val want : int =
            try tableGet(ss, key)
            with let val n : int = (tcpSrc(tcph) + hostToInt(ipSrc(iph))) % 2 in
                   (tableSet(ss, key, n); n)
                 end
          val con : int = choose(ps, want)
      in
        if con = 0 then
          (OnRemote(network, (ipDestSet(iph, server0), tcph, #3 p)); (ps, ss))
        else
          (OnRemote(network, (ipDestSet(iph, server1), tcph, #3 p)); (ps, ss))
      end
    else
      if tcpSrc(tcph) = 80 and (ipSrc(iph) = server0 or ipSrc(iph) = server1) then
        (OnRemote(network, (ipSrcSet(iph, virtualServer), tcph, #3 p)); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
)";
}

/// Image distillation over a loaded link (paper §5: "our medium term goal is
/// to do adaptation of data traffic such as images ... over low bandwidth
/// networks. One possible solution is the integration of image distillation
/// support into PLAN-P").
inline std::string image_distill_asp(int image_port = 8008) {
  return std::string(R"(-- Image distillation in the router (paper 5, medium-term goals).
val imagePort : int = )") + std::to_string(image_port) + R"(

fun qualityFor(load : int) : int =
  if load >= 90 then 8 else if load >= 70 then 4 else if load >= 50 then 2 else 1

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  if udpDst(#2 p) = imagePort then
    let val q : int = qualityFor(linkLoad()) in
      (OnRemote(network, (#1 p, #2 p, try distillImage(#3 p, q) with #3 p));
       (q, ss))
    end
  else
    (OnRemote(network, p); (ps, ss))
)";
}

// --- in-network HTTP caching proxy (ROADMAP item 2) ----------------------------

/// Edge-cache ASP: a Traffic Server-style forward proxy scaled down to one
/// channel pair. Requests for originHost:httpPort are answered from the
/// router's object cache when fresh (cacheLookup raises CacheMiss otherwise);
/// misses travel on to the origin, and the response fills the cache as it
/// passes back through the router. Cache hits ride the `hit` channel so the
/// verifier sees an acyclic send graph: the reply (destination rewritten to
/// the requesting client) never re-enters `network`, and `hit` itself only
/// forwards destination-preserving packets. Hosts deliver by port, tag or no
/// tag, so an unmodified client cannot tell a hit from an origin response.
inline std::string cache_proxy_asp(asp::net::Ipv4Addr origin, int http_port = 8080,
                                   int entries = 256, int ttl_ms = 0) {
  return std::string(R"(-- In-network HTTP caching proxy (DESIGN.md 6i).
val originHost : host = )") + origin.str() + R"(
val httpPort : int = )" + std::to_string(http_port) + R"(
val cacheEntries : int = )" + std::to_string(entries) + R"(
val cacheTtlMs : int = )" + std::to_string(ttl_ms) + R"(

-- "GET <path>" / "RSP <path> <body>": the path is word 1 either way.
fun pathOf(body : string) : string = try strWord(body, 1) with ""

channel network(ps : int, ss : unit, p : ip*udp*blob)
initstate cacheConfigure(cacheEntries, cacheTtlMs) is
  let val iph : ip = #1 p
      val udph : udp = #2 p
      val body : string = blobToString(#3 p)
  in
    if ipDst(iph) = originHost and udpDst(udph) = httpPort
       and startsWith(body, "GET ") then
      -- One non-raising lookup, empty blob = miss (not try around
      -- cacheLookup: a try's worst case sums body and handler, so a handler
      -- that re-sends would break the duplication analysis and one that
      -- drops would break guaranteed delivery; and exactly one lookup call
      -- keeps the hit/miss counters aligned with the native C++ proxy).
      let val key : int = cacheKey("GET", originHost, pathOf(body))
          val cached : blob = cacheGetDefault(key, blobFromString(""))
      in
        if blobLen(cached) > 0 then
          (OnRemote(hit, (ipDestSet(ipSrcSet(iph, originHost), ipSrc(iph)),
                          udpSrcSet(udpDstSet(udph, udpSrc(udph)), httpPort),
                          cached));
           (ps + 1, ss))
        else (OnRemote(network, p); (ps, ss))
      end
    else
      if ipSrc(iph) = originHost and udpSrc(udph) = httpPort
         and startsWith(body, "RSP ") then
        (cacheStore(cacheKey("GET", originHost, pathOf(body)), #3 p);
         OnRemote(network, p); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end

-- Hits in transit: routers between the cache and the client pass them along.
channel hit(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(hit, p); (ps, ss))
)";
}

// --- §3.3 point-to-point to multipoint MPEG -----------------------------------

/// Monitor ASP: runs promiscuously on one machine of the client segment.
/// Tracks open connections to the video server and answers client queries so
/// a new client can join an existing stream instead of opening its own.
inline std::string mpeg_monitor_asp(asp::net::Ipv4Addr server_host,
                                    int ctrl_port = 9000, int query_port = 9100) {
  return std::string(R"(-- Multipoint MPEG from a point-to-point server: monitor (paper 3.3).
-- The shared protocol state maps
--   "pending <client> <sport>" -> "<file> <vport>"        (PLAY seen)
--   "stream <file>"            -> "<client> <vport> SETUP ..." (stream live)
val serverHost : host = )") + server_host.str() + R"(
val ctrlPort : int = )" + std::to_string(ctrl_port) + R"(
val queryPort : int = )" + std::to_string(query_port) + R"(

-- Watch control traffic crossing the segment (we see copies: promiscuous).
channel network(ps : (string, string) hash_table, ss : unit, p : ip*tcp*blob) is
  let val iph : ip = #1 p
      val tcph : tcp = #2 p
      val body : string = blobToString(#3 p)
  in
    if ipDst(iph) = serverHost and tcpDst(tcph) = ctrlPort
       and startsWith(body, "PLAY ") then
      -- "PLAY <file> <vport>"
      (tableSet(ps, "pending " ^ hostToString(ipSrc(iph)) ^ " " ^
                    intToString(tcpSrc(tcph)),
                try strWord(body, 1) ^ " " ^ strWord(body, 2) with "");
       drop(); (ps, ss))
    else
      if ipSrc(iph) = serverHost and tcpSrc(tcph) = ctrlPort
         and startsWith(body, "SETUP ") then
        -- "SETUP <file> <w> <h> <fps>": stream is live, remember where it goes
        let val key : string = "pending " ^ hostToString(ipDst(iph)) ^ " " ^
                               intToString(tcpDst(tcph))
        in
          ((try
              let val req : string = tableGet(ps, key) in
                (tableSet(ps, "stream " ^ strWord(req, 0),
                          hostToString(ipDst(iph)) ^ " " ^
                          (try strWord(req, 1) with "0") ^ " " ^ body);
                 tableRemove(ps, key))
              end
            with ());
           drop(); (ps, ss))
        end
      else
        (drop(); (ps, ss))
  end

-- Client queries: "QUERY <file>" -> "FOUND <client> <vport> SETUP ..." | "MISS"
channel network(ps : (string, string) hash_table, ss : unit, p : ip*udp*blob) is
  let val iph : ip = #1 p
      val udph : udp = #2 p
  in
    if ipDst(iph) = thisHost() and udpDst(udph) = queryPort then
      let val q : string = blobToString(#3 p)
          val answer : string =
            try "FOUND " ^ tableGet(ps, "stream " ^ strWord(q, 1))
            with "MISS"
      in
        (OnRemote(reply, (ipDestSet(ipSrcSet(iph, thisHost()), ipSrc(iph)),
                          udpSrcSet(udpDstSet(udph, udpSrc(udph)), queryPort),
                          blobFromString(answer)));
         (ps, ss))
      end
    else
      (drop(); (ps, ss))
  end

-- Replies ride a user channel so the destination's ASP delivers them; on the
-- monitor itself it handles loopback queries.
channel reply(ps : (string, string) hash_table, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps, ss))
)";
}

/// Client-side ASP, phase 1: installed before querying the monitor; handles
/// the monitor's reply channel only.
inline std::string mpeg_reply_asp() {
  return R"(-- Multipoint MPEG: client reply handler (paper 3.3).
channel reply(ps : int, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))
)";
}

/// Client-side ASP, phase 2: installed once the monitor reports an existing
/// stream. Captures video packets addressed to the original client and
/// delivers them to the local player.
inline std::string mpeg_capture_asp(asp::net::Ipv4Addr shared_client,
                                    int shared_vport, int my_vport) {
  return std::string(R"(-- Multipoint MPEG: capture packets of a shared stream (paper 3.3).
val sharedClient : host = )") + shared_client.str() + R"(
val sharedPort : int = )" + std::to_string(shared_vport) + R"(
val myPort : int = )" + std::to_string(my_vport) + R"(

channel reply(ps : int, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let val iph : ip = #1 p
      val udph : udp = #2 p
  in
    if ipDst(iph) = sharedClient and udpDst(udph) = sharedPort then
      -- a copy of the shared stream: redirect it to the local player
      (deliver((ipDestSet(iph, thisHost()), udpDstSet(udph, myPort), #3 p));
       (ps + 1, ss))
    else
      if ipDst(iph) = thisHost() then (deliver(p); (ps, ss))
      else (drop(); (ps, ss))
  end
)";
}

}  // namespace asp::apps
