// Protocol: one downloaded ASP, taken through the full pipeline
//   source -> lex/parse -> typecheck -> safety analyses (the gate)
//          -> bytecode -> run-time specialization -> executable engine.
#pragma once

#include <memory>
#include <string>

#include "planp/analysis.hpp"
#include "planp/compile.hpp"
#include "planp/interp.hpp"
#include "planp/jit.hpp"

namespace asp::planp {

enum class EngineKind { kInterp, kBytecode, kJit };

/// Thrown when the verification gate rejects a program (paper §2.1: programs
/// "should be analyzed and rejected if they cannot be shown to terminate or
/// to exhibit non-exponential packet duplication").
class VerificationError : public std::exception {
 public:
  explicit VerificationError(const AnalysisReport& report);
  const char* what() const noexcept override { return message_.c_str(); }
  const AnalysisReport& report() const { return report_; }

 private:
  AnalysisReport report_;
  std::string message_;
};

/// A compiled, verified, loadable protocol.
class Protocol {
 public:
  struct Options {
    EngineKind engine = EngineKind::kJit;
    /// Reject programs failing the mandatory analyses. Privileged/
    /// authenticated users may load unverified protocols (paper §2.1).
    bool require_verified = true;
  };

  /// Runs the whole pipeline. Throws PlanPError (syntax/type errors) or
  /// VerificationError (gate). `env` must outlive the protocol.
  static std::unique_ptr<Protocol> load(const std::string& source, EnvApi& env,
                                        Options opts);
  static std::unique_ptr<Protocol> load(const std::string& source, EnvApi& env) {
    return load(source, env, Options{});
  }

  const CheckedProgram& checked() const { return checked_; }
  const AnalysisReport& report() const { return report_; }
  const CompiledProgram& compiled() const { return compiled_; }
  Engine& engine() { return *engine_; }

  /// Non-null when the engine is the JIT.
  const CodegenStats* codegen_stats() const {
    auto* j = dynamic_cast<JitEngine*>(engine_.get());
    return j != nullptr ? &j->codegen_stats() : nullptr;
  }

 private:
  Protocol() = default;

  CheckedProgram checked_;
  AnalysisReport report_;
  CompiledProgram compiled_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace asp::planp
