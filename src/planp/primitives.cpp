#include "planp/primitives.hpp"

#include <algorithm>
#include <cstring>

#include "planp/cache.hpp"

namespace asp::planp {

namespace {

using Args = std::vector<Value>;

[[noreturn]] void raise(const char* name) { throw PlanPException{name}; }

std::int64_t clamp16(std::int64_t v) {
  return std::clamp<std::int64_t>(v, -32768, 32767);
}

std::int16_t sample16(const std::vector<std::uint8_t>& pcm, std::size_t i) {
  // Little-endian 16-bit samples.
  return static_cast<std::int16_t>(pcm[2 * i] | (pcm[2 * i + 1] << 8));
}

void put16(std::vector<std::uint8_t>& out, std::int16_t s) {
  out.push_back(static_cast<std::uint8_t>(s & 0xFF));
  out.push_back(static_cast<std::uint8_t>((s >> 8) & 0xFF));
}

}  // namespace

std::vector<std::uint8_t> audio_stereo_to_mono16(const std::vector<std::uint8_t>& pcm) {
  std::vector<std::uint8_t> out;
  std::size_t frames = pcm.size() / 4;  // L16 + R16
  out.reserve(frames * 2);
  for (std::size_t f = 0; f < frames; ++f) {
    std::int32_t l = sample16(pcm, 2 * f);
    std::int32_t r = sample16(pcm, 2 * f + 1);
    put16(out, static_cast<std::int16_t>(clamp16((l + r) / 2)));
  }
  return out;
}

std::vector<std::uint8_t> audio_mono_to_stereo16(const std::vector<std::uint8_t>& pcm) {
  std::vector<std::uint8_t> out;
  std::size_t samples = pcm.size() / 2;
  out.reserve(samples * 4);
  for (std::size_t i = 0; i < samples; ++i) {
    std::int16_t s = sample16(pcm, i);
    put16(out, s);
    put16(out, s);
  }
  return out;
}

std::vector<std::uint8_t> audio_16_to_8(const std::vector<std::uint8_t>& pcm) {
  std::vector<std::uint8_t> out;
  std::size_t samples = pcm.size() / 2;
  out.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    // Keep the high byte, biased to unsigned (classic 8-bit PCM).
    out.push_back(static_cast<std::uint8_t>((sample16(pcm, i) >> 8) + 128));
  }
  return out;
}

std::vector<std::uint8_t> audio_8_to_16(const std::vector<std::uint8_t>& pcm) {
  std::vector<std::uint8_t> out;
  out.reserve(pcm.size() * 2);
  for (std::uint8_t b : pcm) {
    put16(out, static_cast<std::int16_t>((static_cast<int>(b) - 128) << 8));
  }
  return out;
}

namespace {

// Shorthand type constructors for signatures.
TypePtr I() { return Type::Int(); }
TypePtr B() { return Type::Bool(); }
TypePtr C() { return Type::Char(); }
TypePtr S() { return Type::String(); }
TypePtr U() { return Type::Unit(); }
TypePtr H() { return Type::Host(); }
TypePtr BL() { return Type::Blob(); }
TypePtr IP() { return Type::Ip(); }
TypePtr TCP() { return Type::Tcp(); }
TypePtr UDP() { return Type::Udp(); }
TypePtr VA() { return Type::Var(0); }
TypePtr VB() { return Type::Var(1); }
TypePtr TAB() { return Type::Table(Type::Var(0), Type::Var(1)); }

}  // namespace

Primitives::Primitives() {
  auto add = [this](std::string name, std::vector<TypePtr> params, TypePtr ret,
                    std::function<Value(EnvApi&, const Args&)> fn,
                    bool may_raise = false, int cost = 1) {
    int idx = static_cast<int>(prims_.size());
    by_name_[name].push_back(idx);
    prims_.push_back(
        Primitive{std::move(name), std::move(params), std::move(ret), may_raise,
                  std::move(fn), cost});
  };

  // --- output ---------------------------------------------------------------
  for (TypePtr t : {S(), I(), B(), C(), H()}) {
    add("print", {t}, U(),
        [](EnvApi& env, const Args& a) {
          env.print(a[0].str());
          return Value::unit();
        },
        /*may_raise=*/false, /*cost=*/8);
    add("println", {t}, U(),
        [](EnvApi& env, const Args& a) {
          env.print(a[0].str() + "\n");
          return Value::unit();
        },
        /*may_raise=*/false, /*cost=*/8);
  }

  // --- conversions / scalar helpers ------------------------------------------
  add("intToString", {I()}, S(),
      [](EnvApi&, const Args& a) { return Value::of_string(std::to_string(a[0].as_int())); });
  add("hostToString", {H()}, S(),
      [](EnvApi&, const Args& a) { return Value::of_string(a[0].as_host().str()); });
  add("charPos", {C()}, I(), [](EnvApi&, const Args& a) {
    return Value::of_int(static_cast<unsigned char>(a[0].as_char()));
  });
  add("ord", {C()}, I(), [](EnvApi&, const Args& a) {
    return Value::of_int(static_cast<unsigned char>(a[0].as_char()));
  });
  add(
      "chr", {I()}, C(),
      [](EnvApi&, const Args& a) {
        std::int64_t v = a[0].as_int();
        if (v < 0 || v > 255) raise("InvalidChar");
        return Value::of_char(static_cast<char>(v));
      },
      /*may_raise=*/true);
  add("abs", {I()}, I(), [](EnvApi&, const Args& a) {
    std::int64_t v = a[0].as_int();
    return Value::of_int(v < 0 ? -v : v);
  });
  add("min", {I(), I()}, I(), [](EnvApi&, const Args& a) {
    return Value::of_int(std::min(a[0].as_int(), a[1].as_int()));
  });
  add("max", {I(), I()}, I(), [](EnvApi&, const Args& a) {
    return Value::of_int(std::max(a[0].as_int(), a[1].as_int()));
  });
  add("stringLen", {S()}, I(), [](EnvApi&, const Args& a) {
    return Value::of_int(static_cast<std::int64_t>(a[0].as_string().size()));
  });
  add(
      "substring", {S(), I(), I()}, S(),
      [](EnvApi&, const Args& a) {
        const std::string& s = a[0].as_string();
        std::int64_t from = a[1].as_int(), len = a[2].as_int();
        if (from < 0 || len < 0 || from + len > static_cast<std::int64_t>(s.size())) {
          raise("OutOfBounds");
        }
        return Value::of_string(s.substr(static_cast<std::size_t>(from),
                                         static_cast<std::size_t>(len)));
      },
      /*may_raise=*/true, /*cost=*/8);
  add("startsWith", {S(), S()}, B(), [](EnvApi&, const Args& a) {
    const std::string& s = a[0].as_string();
    const std::string& pre = a[1].as_string();
    return Value::of_bool(s.rfind(pre, 0) == 0);
  });
  add("strIndex", {S(), S()}, I(), [](EnvApi&, const Args& a) {
    auto pos = a[0].as_string().find(a[1].as_string());
    return Value::of_int(pos == std::string::npos ? -1 : static_cast<std::int64_t>(pos));
  });
  // ASP extensions (paper §2.3: primitives added when PLAN-P moved from pure
  // routing to ASPs — protocol text parsing for the MPEG monitor).
  add(
      "strWord", {S(), I()}, S(),
      [](EnvApi&, const Args& a) {
        const std::string& s = a[0].as_string();
        std::int64_t want = a[1].as_int();
        std::size_t pos = 0;
        std::int64_t idx = 0;
        while (pos < s.size()) {
          while (pos < s.size() && s[pos] == ' ') ++pos;
          std::size_t start = pos;
          while (pos < s.size() && s[pos] != ' ') ++pos;
          if (start == pos) break;
          if (idx == want) return Value::of_string(s.substr(start, pos - start));
          ++idx;
        }
        raise("OutOfBounds");
      },
      /*may_raise=*/true, /*cost=*/8);
  add(
      "stringToInt", {S()}, I(),
      [](EnvApi&, const Args& a) {
        const std::string& s = a[0].as_string();
        if (s.empty()) raise("BadNumber");
        std::size_t i = s[0] == '-' ? 1 : 0;
        if (i == s.size()) raise("BadNumber");
        std::int64_t v = 0;
        for (; i < s.size(); ++i) {
          if (s[i] < '0' || s[i] > '9') raise("BadNumber");
          v = v * 10 + (s[i] - '0');
        }
        return Value::of_int(s[0] == '-' ? -v : v);
      },
      /*may_raise=*/true);
  add(
      "stringToHost", {S()}, H(),
      [](EnvApi&, const Args& a) {
        auto h = asp::net::Ipv4Addr::parse(a[0].as_string());
        if (!h) raise("BadHost");
        return Value::of_host(*h);
      },
      /*may_raise=*/true);

  // --- hash tables ------------------------------------------------------------
  add("mkTable", {I()}, TAB(),
      [](EnvApi&, const Args& a) {
        return Value::of_table(std::make_shared<HashTable>(
            static_cast<std::size_t>(std::max<std::int64_t>(1, a[0].as_int()))));
      },
      /*may_raise=*/false, /*cost=*/64);
  add(
      "tableGet", {TAB(), VA()}, VB(),
      [](EnvApi&, const Args& a) {
        auto v = a[0].as_table()->get(a[1]);
        if (!v) raise("NotFound");
        return *v;
      },
      /*may_raise=*/true, /*cost=*/4);
  add("tableSet", {TAB(), VA(), VB()}, U(),
      [](EnvApi&, const Args& a) {
        a[0].as_table()->set(a[1], a[2]);
        return Value::unit();
      },
      /*may_raise=*/false, /*cost=*/4);
  add("tableMem", {TAB(), VA()}, B(),
      [](EnvApi&, const Args& a) {
        return Value::of_bool(a[0].as_table()->contains(a[1]));
      },
      /*may_raise=*/false, /*cost=*/4);
  add("tableRemove", {TAB(), VA()}, U(),
      [](EnvApi&, const Args& a) {
        a[0].as_table()->remove(a[1]);
        return Value::unit();
      },
      /*may_raise=*/false, /*cost=*/4);
  add("tableSize", {TAB()}, I(), [](EnvApi&, const Args& a) {
    return Value::of_int(static_cast<std::int64_t>(a[0].as_table()->size()));
  });
  add("tableGetDefault", {TAB(), VA(), VB()}, VB(),
      [](EnvApi&, const Args& a) {
        auto v = a[0].as_table()->get(a[1]);
        return v ? *v : a[2];
      },
      /*may_raise=*/false, /*cost=*/4);

  // --- IP header --------------------------------------------------------------
  add("ipSrc", {IP()}, H(),
      [](EnvApi&, const Args& a) { return Value::of_host(a[0].as_ip().src); });
  add("ipDst", {IP()}, H(),
      [](EnvApi&, const Args& a) { return Value::of_host(a[0].as_ip().dst); });
  add("ipSrcSet", {IP(), H()}, IP(), [](EnvApi&, const Args& a) {
    asp::net::IpHeader h = a[0].as_ip();
    h.src = a[1].as_host();
    return Value::of_ip(h);
  });
  add("ipDestSet", {IP(), H()}, IP(), [](EnvApi&, const Args& a) {
    asp::net::IpHeader h = a[0].as_ip();
    h.dst = a[1].as_host();
    return Value::of_ip(h);
  });
  add("ipProto", {IP()}, I(), [](EnvApi&, const Args& a) {
    return Value::of_int(static_cast<std::int64_t>(a[0].as_ip().proto));
  });
  add("ipTtl", {IP()}, I(),
      [](EnvApi&, const Args& a) { return Value::of_int(a[0].as_ip().ttl); });
  add("ipTos", {IP()}, I(),
      [](EnvApi&, const Args& a) { return Value::of_int(a[0].as_ip().tos); });
  add("ipTosSet", {IP(), I()}, IP(), [](EnvApi&, const Args& a) {
    asp::net::IpHeader h = a[0].as_ip();
    h.tos = static_cast<std::uint8_t>(a[1].as_int());
    return Value::of_ip(h);
  });
  add("isMulticast", {H()}, B(), [](EnvApi&, const Args& a) {
    return Value::of_bool(a[0].as_host().is_multicast());
  });
  add("hostToInt", {H()}, I(), [](EnvApi&, const Args& a) {
    return Value::of_int(a[0].as_host().bits());
  });

  // --- TCP header --------------------------------------------------------------
  add("tcpSrc", {TCP()}, I(),
      [](EnvApi&, const Args& a) { return Value::of_int(a[0].as_tcp().sport); });
  add("tcpDst", {TCP()}, I(),
      [](EnvApi&, const Args& a) { return Value::of_int(a[0].as_tcp().dport); });
  add("tcpSeq", {TCP()}, I(),
      [](EnvApi&, const Args& a) { return Value::of_int(a[0].as_tcp().seq); });
  add("tcpAckNo", {TCP()}, I(),
      [](EnvApi&, const Args& a) { return Value::of_int(a[0].as_tcp().ack); });
  add("tcpSrcSet", {TCP(), I()}, TCP(), [](EnvApi&, const Args& a) {
    asp::net::TcpHeader h = a[0].as_tcp();
    h.sport = static_cast<std::uint16_t>(a[1].as_int());
    return Value::of_tcp(h);
  });
  add("tcpDstSet", {TCP(), I()}, TCP(), [](EnvApi&, const Args& a) {
    asp::net::TcpHeader h = a[0].as_tcp();
    h.dport = static_cast<std::uint16_t>(a[1].as_int());
    return Value::of_tcp(h);
  });
  add("tcpSyn", {TCP()}, B(), [](EnvApi&, const Args& a) {
    return Value::of_bool(a[0].as_tcp().has(asp::net::tcpflag::kSyn));
  });
  add("tcpAck", {TCP()}, B(), [](EnvApi&, const Args& a) {
    return Value::of_bool(a[0].as_tcp().has(asp::net::tcpflag::kAck));
  });
  add("tcpFin", {TCP()}, B(), [](EnvApi&, const Args& a) {
    return Value::of_bool(a[0].as_tcp().has(asp::net::tcpflag::kFin));
  });
  add("tcpRst", {TCP()}, B(), [](EnvApi&, const Args& a) {
    return Value::of_bool(a[0].as_tcp().has(asp::net::tcpflag::kRst));
  });

  // --- UDP header --------------------------------------------------------------
  add("udpSrc", {UDP()}, I(),
      [](EnvApi&, const Args& a) { return Value::of_int(a[0].as_udp().sport); });
  add("udpDst", {UDP()}, I(),
      [](EnvApi&, const Args& a) { return Value::of_int(a[0].as_udp().dport); });
  add("udpSrcSet", {UDP(), I()}, UDP(), [](EnvApi&, const Args& a) {
    asp::net::UdpHeader h = a[0].as_udp();
    h.sport = static_cast<std::uint16_t>(a[1].as_int());
    return Value::of_udp(h);
  });
  add("udpDstSet", {UDP(), I()}, UDP(), [](EnvApi&, const Args& a) {
    asp::net::UdpHeader h = a[0].as_udp();
    h.dport = static_cast<std::uint16_t>(a[1].as_int());
    return Value::of_udp(h);
  });

  // --- blobs ---------------------------------------------------------------------
  add("blobLen", {BL()}, I(), [](EnvApi&, const Args& a) {
    return Value::of_int(static_cast<std::int64_t>(a[0].as_blob()->size()));
  });
  add(
      "blobByte", {BL(), I()}, I(),
      [](EnvApi&, const Args& a) {
        const auto& b = *a[0].as_blob();
        std::int64_t i = a[1].as_int();
        if (i < 0 || i >= static_cast<std::int64_t>(b.size())) raise("OutOfBounds");
        return Value::of_int(b[static_cast<std::size_t>(i)]);
      },
      /*may_raise=*/true);
  add(
      "blobSub", {BL(), I(), I()}, BL(),
      [](EnvApi&, const Args& a) {
        const auto& b = *a[0].as_blob();
        std::int64_t from = a[1].as_int(), len = a[2].as_int();
        if (from < 0 || len < 0 || from + len > static_cast<std::int64_t>(b.size())) {
          raise("OutOfBounds");
        }
        return Value::of_blob(std::vector<std::uint8_t>(
            b.begin() + from, b.begin() + from + len));
      },
      /*may_raise=*/true, /*cost=*/32);
  add("blobCat", {BL(), BL()}, BL(),
      [](EnvApi&, const Args& a) {
        std::vector<std::uint8_t> out = *a[0].as_blob();
        const auto& b = *a[1].as_blob();
        out.insert(out.end(), b.begin(), b.end());
        return Value::of_blob(std::move(out));
      },
      /*may_raise=*/false, /*cost=*/32);
  add("blobFromString", {S()}, BL(),
      [](EnvApi&, const Args& a) {
        const std::string& s = a[0].as_string();
        return Value::of_blob(std::vector<std::uint8_t>(s.begin(), s.end()));
      },
      /*may_raise=*/false, /*cost=*/16);
  add("blobToString", {BL()}, S(),
      [](EnvApi&, const Args& a) {
        const auto& b = *a[0].as_blob();
        return Value::of_string(std::string(b.begin(), b.end()));
      },
      /*may_raise=*/false, /*cost=*/16);
  // 64-bit little-endian field access, for binary wire formats (the scenario
  // cache profile's object ids / sequence numbers). Both are TOTAL — an
  // out-of-range offset reads 0 / writes nothing — so verified caching ASPs
  // can parse packets without a try (a raising read would cost them the
  // guaranteed-delivery verdict; see cacheGetDefault below).
  add("blobInt", {BL(), I()}, I(),
      [](EnvApi&, const Args& a) {
        const auto& b = *a[0].as_blob();
        std::int64_t off = a[1].as_int();
        if (off < 0 || off + 8 > static_cast<std::int64_t>(b.size())) {
          return Value::of_int(0);
        }
        std::uint64_t v = 0;
        std::memcpy(&v, b.data() + off, 8);  // LE hosts only, like sample16
        return Value::of_int(static_cast<std::int64_t>(v));
      },
      /*may_raise=*/false, /*cost=*/2);
  add("blobPutInt", {BL(), I(), I()}, BL(),
      [](EnvApi&, const Args& a) {
        const auto& b = *a[0].as_blob();
        std::int64_t off = a[1].as_int();
        if (off < 0 || off + 8 > static_cast<std::int64_t>(b.size())) {
          return a[0];  // nothing to patch: the blob passes through unchanged
        }
        // Copy into a pooled buffer (capacity guaranteed, so the assignment
        // does not allocate in steady state), then patch the field.
        net::Buffer out = net::acquire_buffer(b.size());
        auto& bytes = const_cast<std::vector<std::uint8_t>&>(*out);
        bytes = b;
        std::uint64_t v = static_cast<std::uint64_t>(a[2].as_int());
        std::memcpy(bytes.data() + off, &v, 8);
        return Value::of_blob_shared(std::move(out));
      },
      /*may_raise=*/false, /*cost=*/32);

  // --- audio transcoding (paper §3.1: degrade 16-bit stereo to 8-bit mono) ----
  add("audioStereoToMono", {BL()}, BL(),
      [](EnvApi&, const Args& a) {
        return Value::of_blob(audio_stereo_to_mono16(*a[0].as_blob()));
      },
      /*may_raise=*/false, /*cost=*/64);
  add("audioMonoToStereo", {BL()}, BL(),
      [](EnvApi&, const Args& a) {
        return Value::of_blob(audio_mono_to_stereo16(*a[0].as_blob()));
      },
      /*may_raise=*/false, /*cost=*/64);
  add("audio16To8", {BL()}, BL(),
      [](EnvApi&, const Args& a) {
        return Value::of_blob(audio_16_to_8(*a[0].as_blob()));
      },
      /*may_raise=*/false, /*cost=*/64);
  add("audio8To16", {BL()}, BL(),
      [](EnvApi&, const Args& a) {
        return Value::of_blob(audio_8_to_16(*a[0].as_blob()));
      },
      /*may_raise=*/false, /*cost=*/64);

  // --- image distillation (paper §5: "integration of image distillation
  // support into PLAN-P" for low-bandwidth adaptation) -------------------------
  add(
      "distillImage", {BL(), I()}, BL(),
      [](EnvApi&, const Args& a) {
        const auto& img = *a[0].as_blob();
        std::int64_t q = a[1].as_int();
        if (q < 1 || q > 16) raise("BadQuality");
        if (q == 1) return a[0];
        std::vector<std::uint8_t> out;
        out.reserve(img.size() / static_cast<std::size_t>(q) + 1);
        for (std::size_t i = 0; i < img.size(); i += static_cast<std::size_t>(q)) {
          out.push_back(img[i]);
        }
        return Value::of_blob(std::move(out));
      },
      /*may_raise=*/true, /*cost=*/64);

  // --- object cache (HTTP edge caching ASPs; planp/cache.hpp, DESIGN.md §6i) --
  // Keys are 64-bit FNV-1a digests carried as PLAN-P ints; bodies are blobs
  // aliased into the node's CacheStore, so a fill pins the packet's pooled
  // payload buffer and an eviction releases it — no copies on either side.
  add("cacheConfigure", {I(), I()}, U(),
      [](EnvApi& env, const Args& a) {
        env.cache().configure(
            static_cast<std::size_t>(std::max<std::int64_t>(1, a[0].as_int())),
            a[1].as_int());
        return Value::unit();
      },
      /*may_raise=*/false, /*cost=*/64);
  add("cacheKey", {S(), H(), S()}, I(),
      [](EnvApi&, const Args& a) {
        return Value::of_int(static_cast<std::int64_t>(CacheStore::key_of(
            a[0].as_string(), a[1].as_host().bits(), a[2].as_string())));
      },
      /*may_raise=*/false, /*cost=*/8);
  add("cacheKey", {I(), H()}, I(),
      [](EnvApi&, const Args& a) {
        return Value::of_int(static_cast<std::int64_t>(CacheStore::key_of(
            static_cast<std::uint64_t>(a[0].as_int()), a[1].as_host().bits())));
      },
      /*may_raise=*/false, /*cost=*/2);
  add(
      "cacheLookup", {I()}, BL(),
      [](EnvApi& env, const Args& a) {
        const net::Buffer* b = env.cache().lookup(
            static_cast<std::uint64_t>(a[0].as_int()), env.time_ms());
        if (b == nullptr) raise("CacheMiss");
        return Value::of_blob_shared(*b);
      },
      /*may_raise=*/true, /*cost=*/8);
  // Non-raising lookup (mirrors tableGetDefault): the form verified caching
  // ASPs use on the fast path — a raising call would force a try whose
  // handler either re-sends (breaking the duplication analysis, which sums a
  // try's body and handler) or drops (breaking guaranteed delivery).
  add("cacheGetDefault", {I(), BL()}, BL(),
      [](EnvApi& env, const Args& a) {
        const net::Buffer* b = env.cache().lookup(
            static_cast<std::uint64_t>(a[0].as_int()), env.time_ms());
        return b == nullptr ? a[1] : Value::of_blob_shared(*b);
      },
      /*may_raise=*/false, /*cost=*/8);
  add("cacheStore", {I(), BL()}, U(),
      [](EnvApi& env, const Args& a) {
        env.cache().store(static_cast<std::uint64_t>(a[0].as_int()),
                          a[1].as_blob(), env.time_ms());
        return Value::unit();
      },
      /*may_raise=*/false, /*cost=*/8);
  add("cacheHas", {I()}, B(),
      [](EnvApi& env, const Args& a) {
        return Value::of_bool(env.cache().contains(
            static_cast<std::uint64_t>(a[0].as_int()), env.time_ms()));
      },
      /*may_raise=*/false, /*cost=*/4);
  add("cacheSize", {}, I(), [](EnvApi& env, const Args&) {
    return Value::of_int(static_cast<std::int64_t>(env.cache().size()));
  });

  // --- environment ------------------------------------------------------------
  add("thisHost", {}, H(),
      [](EnvApi& env, const Args&) { return Value::of_host(env.this_host()); });
  add("getTime", {}, I(),
      [](EnvApi& env, const Args&) { return Value::of_int(env.time_ms()); });
  add("linkLoad", {}, I(),
      [](EnvApi& env, const Args&) { return Value::of_int(env.link_load_percent()); });
  add("linkBandwidth", {}, I(), [](EnvApi& env, const Args&) {
    return Value::of_int(env.link_bandwidth_kbps());
  });
  add("arrivalIface", {}, I(),
      [](EnvApi& env, const Args&) { return Value::of_int(env.arrival_iface()); });
}

const Primitives& Primitives::instance() {
  static const Primitives p;
  return p;
}

const std::vector<int>& Primitives::overloads(const std::string& name) const {
  static const std::vector<int> empty;
  auto it = by_name_.find(name);
  return it == by_name_.end() ? empty : it->second;
}

}  // namespace asp::planp
