#include "planp/compile.hpp"

#include <unordered_map>

namespace asp::planp {

std::size_t CompiledProgram::total_instructions() const {
  std::size_t n = 0;
  for (const auto& b : global_inits) n += b.code.size();
  for (const auto& b : functions) n += b.code.size();
  for (const auto& b : channel_bodies) n += b.code.size();
  for (const auto& b : channel_inits) n += b.code.size();
  return n;
}

namespace {

BinCode bin_code(const std::string& op) {
  if (op == "+") return BinCode::kAdd;
  if (op == "-") return BinCode::kSub;
  if (op == "*") return BinCode::kMul;
  if (op == "/") return BinCode::kDiv;
  if (op == "%") return BinCode::kMod;
  if (op == "=") return BinCode::kEq;
  if (op == "<>") return BinCode::kNe;
  if (op == "<") return BinCode::kLt;
  if (op == "<=") return BinCode::kLe;
  if (op == ">") return BinCode::kGt;
  if (op == ">=") return BinCode::kGe;
  return BinCode::kConcat;  // "^"
}

class Compiler {
 public:
  explicit Compiler(const CheckedProgram& prog) : prog_(prog) {}

  CompiledProgram run() {
    out_.source = &prog_;
    for (const ValDef* v : prog_.globals) {
      out_.global_inits.push_back(block(*v->init, /*frame_slots=*/8));
    }
    for (const FunDef* f : prog_.functions) {
      out_.functions.push_back(block(*f->body, f->frame_slots));
    }
    for (const ChannelDef* c : prog_.channels) {
      out_.channel_bodies.push_back(block(*c->body, c->frame_slots));
      if (c->init_state != nullptr) {
        out_.channel_inits.push_back(block(*c->init_state, /*frame_slots=*/8));
      } else {
        out_.channel_inits.push_back(CodeBlock{});
      }
    }
    return std::move(out_);
  }

 private:
  CodeBlock block(const Expr& body, int frame_slots) {
    code_.clear();
    depth_ = 0;
    max_depth_ = 0;
    emit_expr(body);
    emit(Op::kReturn, 0, 0, -1);
    CodeBlock b;
    b.code = std::move(code_);
    b.frame_slots = frame_slots;
    b.max_stack = max_depth_ + 4;
    return b;
  }

  int emit(Op op, std::int32_t a, std::int32_t b, int stack_delta) {
    code_.push_back(Instr{op, a, b});
    depth_ += stack_delta;
    max_depth_ = std::max(max_depth_, depth_);
    return static_cast<int>(code_.size()) - 1;
  }

  std::int32_t constant(Value v) {
    // Scalars are deduplicated; aggregates appended as-is.
    for (std::size_t i = 0; i < out_.consts.size(); ++i) {
      const auto& rep = out_.consts[i].rep();
      if (rep.index() != v.rep().index()) continue;
      if (std::holds_alternative<TupleRep>(rep) || std::holds_alternative<TableRef>(rep) ||
          std::holds_alternative<Blob>(rep)) {
        continue;
      }
      if (out_.consts[i].equals(v)) return static_cast<std::int32_t>(i);
    }
    out_.consts.push_back(std::move(v));
    return static_cast<std::int32_t>(out_.consts.size()) - 1;
  }

  void patch(int at, std::int32_t target) { code_[static_cast<std::size_t>(at)].a = target; }
  std::int32_t here() const { return static_cast<std::int32_t>(code_.size()); }

  void emit_expr(const Expr& e) {
    using K = Expr::Kind;
    switch (e.kind) {
      case K::kIntLit:
        emit(Op::kConst, constant(Value::of_int(e.int_val)), 0, +1);
        return;
      case K::kBoolLit:
        emit(Op::kConst, constant(Value::of_bool(e.bool_val)), 0, +1);
        return;
      case K::kCharLit:
        emit(Op::kConst, constant(Value::of_char(e.char_val)), 0, +1);
        return;
      case K::kStringLit:
        emit(Op::kConst, constant(Value::of_string(e.str_val)), 0, +1);
        return;
      case K::kHostLit:
        emit(Op::kConst, constant(Value::of_host(e.host_val)), 0, +1);
        return;
      case K::kUnitLit:
        emit(Op::kConst, constant(Value::unit()), 0, +1);
        return;

      case K::kVar:
        if (is_local_var(e.var_slot)) {
          emit(Op::kLoadLocal, e.var_slot, 0, +1);
        } else {
          emit(Op::kLoadGlobal, global_index(e.var_slot), 0, +1);
        }
        return;

      case K::kLet:
        emit_expr(*e.args[0]);
        emit(Op::kStoreLocal, e.var_slot, 0, -1);
        emit_expr(*e.args[1]);
        return;

      case K::kIf: {
        emit_expr(*e.args[0]);
        int jf = emit(Op::kJumpIfFalse, 0, 0, -1);
        emit_expr(*e.args[1]);
        int depth_after_then = depth_;
        int jend = emit(Op::kJump, 0, 0, 0);
        patch(jf, here());
        depth_ = depth_after_then - 1;  // else starts from pre-then depth
        emit_expr(*e.args[2]);
        patch(jend, here());
        return;
      }

      case K::kSeq:
        for (std::size_t i = 0; i + 1 < e.args.size(); ++i) {
          emit_expr(*e.args[i]);
          emit(Op::kPop, 0, 0, -1);
        }
        emit_expr(*e.args.back());
        return;

      case K::kTuple:
        for (const auto& a : e.args) emit_expr(*a);
        emit(Op::kMakeTuple, static_cast<std::int32_t>(e.args.size()), 0,
             1 - static_cast<int>(e.args.size()));
        return;

      case K::kProj:
        emit_expr(*e.args[0]);
        emit(Op::kProj, e.proj_index - 1, 0, 0);
        return;

      case K::kCall: {
        for (const auto& a : e.args) emit_expr(*a);
        int nargs = static_cast<int>(e.args.size());
        if (is_primitive_call(e.call_target)) {
          emit(Op::kCallPrim, e.call_target, nargs, 1 - nargs);
        } else {
          emit(Op::kCallFun, user_fun_index(e.call_target), nargs, 1 - nargs);
        }
        return;
      }

      case K::kBinOp:
        emit_expr(*e.args[0]);
        emit_expr(*e.args[1]);
        emit(Op::kBinOp, static_cast<std::int32_t>(bin_code(e.name)), 0, -1);
        return;

      case K::kUnOp:
        emit_expr(*e.args[0]);
        emit(e.name == "not" ? Op::kNot : Op::kNeg, 0, 0, 0);
        return;

      case K::kAnd: {
        // a and b  ==>  if !a then false else b
        emit_expr(*e.args[0]);
        int jf = emit(Op::kJumpIfFalse, 0, 0, -1);
        emit_expr(*e.args[1]);
        int jend = emit(Op::kJump, 0, 0, 0);
        patch(jf, here());
        --depth_;
        emit(Op::kConst, constant(Value::of_bool(false)), 0, +1);
        patch(jend, here());
        return;
      }

      case K::kOr: {
        emit_expr(*e.args[0]);
        int jt = emit(Op::kJumpIfTrue, 0, 0, -1);
        emit_expr(*e.args[1]);
        int jend = emit(Op::kJump, 0, 0, 0);
        patch(jt, here());
        --depth_;
        emit(Op::kConst, constant(Value::of_bool(true)), 0, +1);
        patch(jend, here());
        return;
      }

      case K::kRaise:
        emit(Op::kRaise, constant(Value::of_string(e.str_val)), 0, +1);
        return;

      case K::kTry: {
        int tp = emit(Op::kTryPush, 0, 0, 0);
        emit_expr(*e.args[0]);
        emit(Op::kTryPop, 0, 0, 0);
        int jend = emit(Op::kJump, 0, 0, 0);
        patch(tp, here());
        --depth_;  // handler starts from the depth at kTryPush
        emit_expr(*e.args[1]);
        patch(jend, here());
        return;
      }

      case K::kSend: {
        if (e.args.empty()) {
          emit(Op::kConst, constant(Value::unit()), 0, +1);  // drop(): dummy
        } else {
          emit_expr(*e.args[0]);
        }
        const std::int32_t name_idx = constant(Value::of_string(e.name));
        // Intern the channel id now so the VM's kSend never hashes the name.
        if (out_.const_tags.size() < out_.consts.size()) {
          out_.const_tags.resize(out_.consts.size(), 0);
        }
        out_.const_tags[static_cast<std::size_t>(name_idx)] =
            net::ChannelTags::intern(e.name);
        emit(Op::kSend, static_cast<std::int32_t>(e.send_kind), name_idx, -1);
        emit(Op::kConst, constant(Value::unit()), 0, +1);
        return;
      }
    }
    throw EvalBug{"compile: unhandled expression kind"};
  }

  const CheckedProgram& prog_;
  CompiledProgram out_;
  std::vector<Instr> code_;
  int depth_ = 0;
  int max_depth_ = 0;
};

}  // namespace

CompiledProgram compile(const CheckedProgram& prog) { return Compiler(prog).run(); }

// --- VM ----------------------------------------------------------------------

namespace {
/// Bumps the engine's call depth for one scope; exception-safe.
struct DepthGuard {
  std::size_t& d;
  explicit DepthGuard(std::size_t& depth) : d(depth) { ++d; }
  ~DepthGuard() { --d; }
};
}  // namespace

VmEngine::VmEngine(const CompiledProgram& prog, EnvApi& env) : prog_(prog), env_(env) {
  globals_.reserve(prog_.global_inits.size());
  auto& fr = arena_.at_depth(depth_);
  DepthGuard g(depth_);
  for (const CodeBlock& b : prog_.global_inits) {
    fr.locals.clear();
    fr.locals.resize(static_cast<std::size_t>(b.frame_slots));
    globals_.push_back(run_block(b, fr));
  }
}

Value VmEngine::init_state(int chan_idx) {
  const CodeBlock& b = prog_.channel_inits.at(static_cast<std::size_t>(chan_idx));
  if (b.code.empty()) {
    return default_value(
        prog_.source->channels.at(static_cast<std::size_t>(chan_idx))->ss_type);
  }
  auto& fr = arena_.at_depth(depth_);
  DepthGuard g(depth_);
  fr.locals.clear();
  fr.locals.resize(static_cast<std::size_t>(b.frame_slots));
  return run_block(b, fr);
}

Value VmEngine::run_channel(int chan_idx, const Value& ps, const Value& ss,
                            const Value& packet) {
  const CodeBlock& b = prog_.channel_bodies.at(static_cast<std::size_t>(chan_idx));
  auto& fr = arena_.at_depth(depth_);
  DepthGuard g(depth_);
  fr.locals.clear();
  fr.locals.resize(static_cast<std::size_t>(std::max(b.frame_slots, 3)));
  fr.locals[0] = ps;
  fr.locals[1] = ss;
  fr.locals[2] = packet;
  Value out = run_block(b, fr);
  if (mem::poison_enabled()) {
    const Value sentinel = Value::of_int(mem::kPoisonInt);
    for (std::size_t d = 0; d < arena_.depth(); ++d) arena_.scribble(d, sentinel);
  }
  return out;
}

namespace {

void run_binop(BinCode code, std::vector<Value>& stack) {
  Value b = std::move(stack.back());
  stack.pop_back();
  Value a = std::move(stack.back());
  stack.pop_back();
  switch (code) {
    case BinCode::kAdd: stack.push_back(Value::of_int(a.as_int() + b.as_int())); return;
    case BinCode::kSub: stack.push_back(Value::of_int(a.as_int() - b.as_int())); return;
    case BinCode::kMul: stack.push_back(Value::of_int(a.as_int() * b.as_int())); return;
    case BinCode::kDiv:
      if (b.as_int() == 0) throw PlanPException{"DivByZero"};
      stack.push_back(Value::of_int(a.as_int() / b.as_int()));
      return;
    case BinCode::kMod:
      if (b.as_int() == 0) throw PlanPException{"DivByZero"};
      stack.push_back(Value::of_int(a.as_int() % b.as_int()));
      return;
    case BinCode::kEq: stack.push_back(Value::of_bool(a.equals(b))); return;
    case BinCode::kNe: stack.push_back(Value::of_bool(!a.equals(b))); return;
    case BinCode::kConcat:
      stack.push_back(Value::of_string(a.as_string() + b.as_string()));
      return;
    default: {
      int cmp;
      if (const auto* s = std::get_if<std::string>(&a.rep())) {
        cmp = s->compare(b.as_string());
      } else if (const auto* c = std::get_if<char>(&a.rep())) {
        cmp = *c - b.as_char();
      } else {
        std::int64_t x = a.as_int(), y = b.as_int();
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      bool r = code == BinCode::kLt   ? cmp < 0
               : code == BinCode::kLe ? cmp <= 0
               : code == BinCode::kGt ? cmp > 0
                                      : cmp >= 0;
      stack.push_back(Value::of_bool(r));
      return;
    }
  }
}

}  // namespace

Value VmEngine::run_block(const CodeBlock& block, mem::FrameArena<Value>::Frame& fr) {
  std::vector<Value>& locals = fr.locals;
  std::vector<Value>& stack = fr.stack;
  stack.clear();
  if (stack.capacity() < static_cast<std::size_t>(block.max_stack)) {
    mem::ScopedAllocTag tag(mem::AllocTag::kFrame);
    stack.reserve(static_cast<std::size_t>(block.max_stack));
  }
  struct TryFrame {
    std::int32_t handler_pc;
    std::size_t stack_depth;
  };
  std::vector<TryFrame> tries;
  std::size_t pc = 0;

  for (;;) {
    try {
      for (;;) {
        const Instr& in = block.code[pc];
        ++pc;
        switch (in.op) {
          case Op::kConst:
            stack.push_back(prog_.consts[static_cast<std::size_t>(in.a)]);
            break;
          case Op::kLoadLocal:
            stack.push_back(locals[static_cast<std::size_t>(in.a)]);
            break;
          case Op::kStoreLocal:
            locals[static_cast<std::size_t>(in.a)] = std::move(stack.back());
            stack.pop_back();
            break;
          case Op::kLoadGlobal:
            stack.push_back(globals_[static_cast<std::size_t>(in.a)]);
            break;
          case Op::kJump:
            pc = static_cast<std::size_t>(in.a);
            break;
          case Op::kJumpIfFalse: {
            bool c = stack.back().as_bool();
            stack.pop_back();
            if (!c) pc = static_cast<std::size_t>(in.a);
            break;
          }
          case Op::kJumpIfTrue: {
            bool c = stack.back().as_bool();
            stack.pop_back();
            if (c) pc = static_cast<std::size_t>(in.a);
            break;
          }
          case Op::kPop:
            stack.pop_back();
            break;
          case Op::kDup:
            stack.push_back(stack.back());
            break;
          case Op::kMakeTuple: {
            std::size_t n = static_cast<std::size_t>(in.a);
            if (n == 2) {
              // Scalar pairs go inline in the Value; others use pooled rep.
              Value second = std::move(stack.back());
              stack.pop_back();
              Value first = std::move(stack.back());
              stack.pop_back();
              stack.push_back(Value::of_pair(std::move(first), std::move(second)));
            } else {
              TupleRep t = Value::make_tuple_storage(n);
              t->assign(std::make_move_iterator(stack.end() - static_cast<std::ptrdiff_t>(n)),
                        std::make_move_iterator(stack.end()));
              stack.resize(stack.size() - n);
              stack.push_back(Value::of_tuple_rep(std::move(t)));
            }
            break;
          }
          case Op::kProj: {
            Value t = std::move(stack.back());
            stack.pop_back();
            stack.push_back(t.tuple_at(static_cast<std::size_t>(in.a)));
            break;
          }
          case Op::kCallPrim: {
            std::size_t n = static_cast<std::size_t>(in.b);
            // Arguments are staged into the callee arena frame's args vector
            // (warm capacity, no allocation); depth is bumped in case the
            // primitive re-enters the engine.
            auto& callee = arena_.at_depth(depth_);
            DepthGuard g(depth_);
            callee.args.assign(
                std::make_move_iterator(stack.end() - static_cast<std::ptrdiff_t>(n)),
                std::make_move_iterator(stack.end()));
            stack.resize(stack.size() - n);
            stack.push_back(Primitives::instance().at(in.a).fn(env_, callee.args));
            break;
          }
          case Op::kCallFun: {
            std::size_t n = static_cast<std::size_t>(in.b);
            const CodeBlock& fb = prog_.functions[static_cast<std::size_t>(in.a)];
            auto& callee = arena_.at_depth(depth_);
            DepthGuard g(depth_);
            callee.locals.clear();
            callee.locals.resize(
                static_cast<std::size_t>(std::max<int>(fb.frame_slots,
                                                       static_cast<int>(n))));
            for (std::size_t i = 0; i < n; ++i) {
              callee.locals[n - 1 - i] = std::move(stack.back());
              stack.pop_back();
            }
            stack.push_back(run_block(fb, callee));
            break;
          }
          case Op::kBinOp:
            run_binop(static_cast<BinCode>(in.a), stack);
            break;
          case Op::kNot: {
            bool v = stack.back().as_bool();
            stack.back() = Value::of_bool(!v);
            break;
          }
          case Op::kNeg: {
            std::int64_t v = stack.back().as_int();
            stack.back() = Value::of_int(-v);
            break;
          }
          case Op::kRaise:
            throw PlanPException{
                prog_.consts[static_cast<std::size_t>(in.a)].as_string()};
          case Op::kTryPush:
            tries.push_back(TryFrame{in.a, stack.size()});
            break;
          case Op::kTryPop:
            tries.pop_back();
            break;
          case Op::kSend: {
            Value pkt = std::move(stack.back());
            stack.pop_back();
            const std::uint32_t tag =
                prog_.const_tags[static_cast<std::size_t>(in.b)];
            switch (static_cast<SendKind>(in.a)) {
              case SendKind::kOnRemote: env_.on_remote(tag, pkt); break;
              case SendKind::kOnNeighbor: env_.on_neighbor(tag, pkt); break;
              case SendKind::kDeliver: env_.deliver(pkt); break;
              case SendKind::kDrop: env_.drop(); break;
            }
            break;
          }
          case Op::kReturn:
            return std::move(stack.back());
        }
      }
    } catch (const PlanPException&) {
      if (tries.empty()) throw;
      TryFrame t = tries.back();
      tries.pop_back();
      stack.resize(t.stack_depth);
      pc = static_cast<std::size_t>(t.handler_pc);
    }
  }
}

}  // namespace asp::planp
