// Built-in PLAN-P primitives and the environment interface they run against.
//
// The paper (§2.3): "Extending the interpreter with a new primitive involves
// defining two C functions. One function performs the calculation of the
// primitive, while the second computes the return type of the primitive given
// the types of its arguments." Here the two roles are the `fn` member and the
// signature (with type variables resolved by unification in the checker).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"
#include "planp/types.hpp"
#include "planp/value.hpp"

namespace asp::planp {

class CacheStore;  // planp/cache.hpp

/// What a running PLAN-P program can observe/do in its host node. Implemented
/// by the ASP runtime (src/runtime); tests use lightweight fakes.
class EnvApi {
 public:
  // Constructor/destructor live in cache.cpp: default_cache_ is a
  // unique_ptr to the forward-declared CacheStore, so both members that
  // could destroy it must be out of line.
  EnvApi();
  virtual ~EnvApi();

  /// `print`/`println` output sink.
  virtual void print(const std::string& s) = 0;
  /// `thisHost()`: the node's primary address.
  virtual asp::net::Ipv4Addr this_host() = 0;
  /// `getTime()`: current time in milliseconds.
  virtual std::int64_t time_ms() = 0;
  /// `linkLoad()`: outgoing link utilization in percent [0,100]. This is the
  /// local measurement the audio router ASP adapts on (paper §3.1).
  virtual std::int64_t link_load_percent() = 0;
  /// `linkBandwidth()`: outgoing link capacity in kb/s.
  virtual std::int64_t link_bandwidth_kbps() = 0;
  /// `arrivalIface()`: index of the interface the current packet arrived on
  /// (-1 for locally generated packets). The PLAN-P Ethernet bridge of the
  /// authors' earlier work needs this to learn which side a host is on.
  virtual std::int64_t arrival_iface() = 0;

  // Packet emission, used by the kSend AST node (not by primitives).
  virtual void on_remote(const std::string& channel, const Value& packet) = 0;
  virtual void on_neighbor(const std::string& channel, const Value& packet) = 0;
  virtual void deliver(const Value& packet) = 0;
  virtual void drop() = 0;

  // Interned-id sends: the compiled engines (VM, JIT) resolve the channel
  // name to a net::ChannelTags id once at compile/specialization time and
  // emit through these, so the per-packet path never hashes a std::string.
  // The defaults round-trip through the string API for environments that
  // only implement that (tests, NullEnv); the ASP runtime overrides them.
  virtual void on_remote(std::uint32_t chan_tag, const Value& packet) {
    on_remote(net::ChannelTags::name_of(chan_tag), packet);
  }
  virtual void on_neighbor(std::uint32_t chan_tag, const Value& packet) {
    on_neighbor(net::ChannelTags::name_of(chan_tag), packet);
  }

  /// The node's object cache, backing the cache* primitives (planp/cache.hpp,
  /// DESIGN.md §6i). The default is a lazily created private store with no
  /// obs mirror — enough for tests and NullEnv; AspRuntime overrides it with
  /// the node's store so counters land under cache/<node>/*.
  virtual CacheStore& cache();

 private:
  std::unique_ptr<CacheStore> default_cache_;  // backs the default cache()
};

/// EnvApi that ignores sends and collects prints; for tests and pure bench.
class NullEnv : public EnvApi {
 public:
  void print(const std::string& s) override { output += s; }
  asp::net::Ipv4Addr this_host() override { return host; }
  std::int64_t time_ms() override { return now_ms; }
  std::int64_t link_load_percent() override { return load_percent; }
  std::int64_t link_bandwidth_kbps() override { return bandwidth_kbps; }
  std::int64_t arrival_iface() override { return arrival; }
  void on_remote(const std::string& c, const Value& p) override {
    sends.push_back({c, p});
  }
  void on_neighbor(const std::string& c, const Value& p) override {
    sends.push_back({c, p});
  }
  void deliver(const Value& p) override { delivered.push_back(p); }
  void drop() override { ++drops; }

  std::string output;
  asp::net::Ipv4Addr host;
  std::int64_t now_ms = 0;
  std::int64_t load_percent = 0;
  std::int64_t bandwidth_kbps = 10'000;
  std::int64_t arrival = 0;
  std::vector<std::pair<std::string, Value>> sends;
  std::vector<Value> delivered;
  int drops = 0;
};

/// One primitive overload.
struct Primitive {
  std::string name;
  std::vector<TypePtr> params;  // may contain Type::Var(n)
  TypePtr ret;
  bool may_raise = false;  // used by the guaranteed-delivery analysis
  std::function<Value(EnvApi&, const std::vector<Value>&)> fn;
  /// Abstract work units charged by the bounded-cost analysis (analysis.cpp):
  /// 1 for scalar ops, more for ops that touch whole payloads or state.
  int cost = 1;
};

/// The global primitive table. Indices are stable: Expr::call_target holds one.
class Primitives {
 public:
  static const Primitives& instance();

  const std::vector<Primitive>& all() const { return prims_; }
  const Primitive& at(int idx) const { return prims_.at(static_cast<std::size_t>(idx)); }

  /// All overload indices for `name` (empty if unknown).
  const std::vector<int>& overloads(const std::string& name) const;

  bool known(const std::string& name) const { return !overloads(name).empty(); }

 private:
  Primitives();
  std::vector<Primitive> prims_;
  std::unordered_map<std::string, std::vector<int>> by_name_;
};

// --- audio transcoding helpers (exposed for the built-in C baseline) --------

/// 16-bit stereo PCM -> 16-bit mono (average channels). Sizes halve.
std::vector<std::uint8_t> audio_stereo_to_mono16(const std::vector<std::uint8_t>& pcm);
/// 16-bit mono -> 8-bit mono. Sizes halve.
std::vector<std::uint8_t> audio_16_to_8(const std::vector<std::uint8_t>& pcm);
/// 8-bit mono -> 16-bit mono (inverse companding; lossy round trip).
std::vector<std::uint8_t> audio_8_to_16(const std::vector<std::uint8_t>& pcm);
/// 16-bit mono -> 16-bit stereo (duplicate channel).
std::vector<std::uint8_t> audio_mono_to_stereo16(const std::vector<std::uint8_t>& pcm);

}  // namespace asp::planp
