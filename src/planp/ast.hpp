// PLAN-P abstract syntax.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "net/addr.hpp"
#include "planp/types.hpp"

namespace asp::planp {

struct Loc {
  int line = 0;
  int col = 0;
  std::string str() const { return std::to_string(line) + ":" + std::to_string(col); }
};

/// Compile-time error in a PLAN-P program (lexing, parsing, typing).
class PlanPError : public std::exception {
 public:
  PlanPError(std::string phase, Loc loc, std::string message)
      : loc_(loc),
        message_(std::move(phase) + " error at " + loc.str() + ": " + message) {}
  const char* what() const noexcept override { return message_.c_str(); }
  Loc loc() const { return loc_; }

 private:
  Loc loc_;
  std::string message_;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// How a packet leaves a channel (paper §2).
enum class SendKind {
  kOnRemote,    // forward toward the packet's (possibly rewritten) destination
  kOnNeighbor,  // emit on the local segment only
  kDeliver,     // hand to the local application
  kDrop,        // intentionally discard
};

/// Expression node. One struct with a kind tag: every pass (check, analyse,
/// interpret, compile) is a switch over `kind`, which keeps them in one place.
struct Expr {
  enum class Kind {
    kIntLit,
    kBoolLit,
    kCharLit,
    kStringLit,
    kHostLit,
    kUnitLit,
    kVar,
    kLet,    // name/decl_type; args[0]=init, args[1]=body
    kIf,     // args[0]=cond, args[1]=then, args[2]=else
    kSeq,    // args = e1; e2; ...
    kTuple,  // args = elements
    kProj,   // proj_index (1-based); args[0]=tuple
    kCall,   // name=primitive or user function; args=arguments
    kBinOp,  // name = "+", "-", ...; args[0], args[1]
    kUnOp,   // name = "not" | "-"
    kAnd,    // short-circuit; args[0], args[1]
    kOr,
    kRaise,  // str_val = exception name
    kTry,    // args[0]=protected, args[1]=handler
    kSend,   // send_kind; name = channel (OnRemote/OnNeighbor); args[0]=packet
  };

  Kind kind;
  Loc loc;

  std::int64_t int_val = 0;
  bool bool_val = false;
  char char_val = 0;
  std::string str_val;
  asp::net::Ipv4Addr host_val;

  std::string name;     // Var/Let/Call/BinOp/UnOp/Send
  int proj_index = 0;   // Proj (1-based, as in the paper's #n)
  SendKind send_kind = SendKind::kOnRemote;
  std::vector<ExprPtr> args;

  TypePtr decl_type;  // Let annotation
  // Filled in by the type checker:
  TypePtr type;
  int call_target = -1;   // Call: index into resolved primitive overloads, or
                          // ~fun_index for user functions (see typecheck.hpp)
  int var_slot = -1;      // Var/Let: de Bruijn-ish frame slot for compilation

  static ExprPtr make(Kind k, Loc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = k;
    e->loc = loc;
    return e;
  }
};

/// Top-level `val name : t = expr`.
struct ValDef {
  std::string name;
  TypePtr type;
  ExprPtr init;
  Loc loc;
};

/// `fun name(a : t, ...) : t = expr` — non-recursive by construction.
struct FunDef {
  std::string name;
  std::vector<std::pair<std::string, TypePtr>> params;
  TypePtr ret;
  ExprPtr body;
  Loc loc;
  int frame_slots = 0;  // assigned by the type checker
};

/// `channel name(ps : t, ss : t, p : packet-type) [initstate e] is e`.
///
/// The body's value is the pair (new protocol state, new channel state).
struct ChannelDef {
  std::string name;
  std::string ps_name, ss_name, p_name;
  TypePtr ps_type, ss_type, packet_type;
  ExprPtr init_state;  // may be null: state starts as unit/default
  ExprPtr body;
  Loc loc;
  int frame_slots = 0;
};

/// A whole PLAN-P protocol: an ordered list of declarations.
struct Program {
  using Decl = std::variant<ValDef, FunDef, ChannelDef>;
  std::vector<Decl> decls;

  std::vector<const ChannelDef*> channels() const;
  std::vector<const FunDef*> functions() const;
  const FunDef* find_function(const std::string& name) const;

  /// Number of source lines (for the Figure 3 bench).
  int source_lines = 0;
};

/// Pretty-prints an expression. The output re-parses to the same AST
/// (tests assert print-parse round trips).
std::string to_string(const Expr& e);

/// Pretty-prints a whole program in concrete PLAN-P syntax.
std::string to_string(const Program& p);

}  // namespace asp::planp
