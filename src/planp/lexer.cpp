#include "planp/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace asp::planp {

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"val", Tok::kVal},          {"fun", Tok::kFun},
      {"channel", Tok::kChannel},  {"initstate", Tok::kInitstate},
      {"is", Tok::kIs},            {"let", Tok::kLet},
      {"in", Tok::kIn},            {"end", Tok::kEnd},
      {"if", Tok::kIf},            {"then", Tok::kThen},
      {"else", Tok::kElse},        {"try", Tok::kTry},
      {"with", Tok::kWith},        {"raise", Tok::kRaise},
      {"and", Tok::kAnd},          {"or", Tok::kOr},
      {"not", Tok::kNot},          {"true", Tok::kTrue},
      {"false", Tok::kFalse},      {"hash_table", Tok::kHashTable},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_ws_and_comments();
      Loc loc{line_, col_};
      if (at_end()) {
        out.push_back({Tok::kEof, loc, "", 0, 0, {}});
        return out;
      }
      char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        out.push_back(number(loc));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(ident(loc));
      } else if (c == '"') {
        out.push_back(string_lit(loc));
      } else if (c == '\'') {
        out.push_back(char_lit(loc));
      } else {
        out.push_back(punct(loc));
      }
    }
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws_and_comments() {
    for (;;) {
      if (at_end()) return;
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '-' && peek(1) == '-') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        return;
      }
    }
  }

  Token number(Loc loc) {
    std::string digits = scan_digits();
    // A dotted quad? Only if exactly 3 more ".digits" groups follow.
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      std::string quad = digits;
      for (int part = 0; part < 3; ++part) {
        if (peek() != '.' || !std::isdigit(static_cast<unsigned char>(peek(1)))) {
          throw PlanPError("lex", loc, "malformed IP address literal");
        }
        advance();  // '.'
        quad += '.';
        quad += scan_digits();
      }
      auto a = asp::net::Ipv4Addr::parse(quad);
      if (!a) throw PlanPError("lex", loc, "invalid IP address literal '" + quad + "'");
      Token t{Tok::kHost, loc, quad, 0, 0, *a};
      return t;
    }
    Token t{Tok::kInt, loc, digits, 0, 0, {}};
    try {
      t.int_val = std::stoll(digits);
    } catch (const std::exception&) {
      throw PlanPError("lex", loc, "integer literal out of range");
    }
    return t;
  }

  std::string scan_digits() {
    std::string s;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      s += advance();
    }
    return s;
  }

  Token ident(Loc loc) {
    std::string s;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_')) {
      s += advance();
    }
    auto it = keywords().find(s);
    if (it != keywords().end()) return {it->second, loc, s, 0, 0, {}};
    return {Tok::kIdent, loc, s, 0, 0, {}};
  }

  Token string_lit(Loc loc) {
    advance();  // opening quote
    std::string s;
    while (!at_end() && peek() != '"') {
      char c = advance();
      if (c == '\\' && !at_end()) {
        char esc = advance();
        switch (esc) {
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case '\\': s += '\\'; break;
          case '"': s += '"'; break;
          default:
            throw PlanPError("lex", loc, std::string("unknown escape '\\") + esc + "'");
        }
      } else {
        s += c;
      }
    }
    if (at_end()) throw PlanPError("lex", loc, "unterminated string literal");
    advance();  // closing quote
    return {Tok::kString, loc, s, 0, 0, {}};
  }

  Token char_lit(Loc loc) {
    advance();  // opening quote
    if (at_end()) throw PlanPError("lex", loc, "unterminated character literal");
    char c = advance();
    if (c == '\\' && !at_end()) {
      char esc = advance();
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case '\\': c = '\\'; break;
        case '\'': c = '\''; break;
        default:
          throw PlanPError("lex", loc, std::string("unknown escape '\\") + esc + "'");
      }
    }
    if (at_end() || peek() != '\'') {
      throw PlanPError("lex", loc, "unterminated character literal");
    }
    advance();  // closing quote
    Token t{Tok::kChar, loc, std::string(1, c), 0, c, {}};
    return t;
  }

  Token punct(Loc loc) {
    char c = advance();
    switch (c) {
      case '(': return {Tok::kLParen, loc, "(", 0, 0, {}};
      case ')': return {Tok::kRParen, loc, ")", 0, 0, {}};
      case ',': return {Tok::kComma, loc, ",", 0, 0, {}};
      case ';': return {Tok::kSemi, loc, ";", 0, 0, {}};
      case ':': return {Tok::kColon, loc, ":", 0, 0, {}};
      case '*': return {Tok::kStar, loc, "*", 0, 0, {}};
      case '+': return {Tok::kPlus, loc, "+", 0, 0, {}};
      case '-': return {Tok::kMinus, loc, "-", 0, 0, {}};
      case '/': return {Tok::kSlash, loc, "/", 0, 0, {}};
      case '%': return {Tok::kPercent, loc, "%", 0, 0, {}};
      case '^': return {Tok::kCaret, loc, "^", 0, 0, {}};
      case '=': return {Tok::kEq, loc, "=", 0, 0, {}};
      case '#': return {Tok::kHash, loc, "#", 0, 0, {}};
      case '<':
        if (peek() == '>') {
          advance();
          return {Tok::kNe, loc, "<>", 0, 0, {}};
        }
        if (peek() == '=') {
          advance();
          return {Tok::kLe, loc, "<=", 0, 0, {}};
        }
        return {Tok::kLt, loc, "<", 0, 0, {}};
      case '>':
        if (peek() == '=') {
          advance();
          return {Tok::kGe, loc, ">=", 0, 0, {}};
        }
        return {Tok::kGt, loc, ">", 0, 0, {}};
      default:
        throw PlanPError("lex", loc, std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(const std::string& src) { return Lexer(src).run(); }

std::string tok_name(Tok t) {
  switch (t) {
    case Tok::kInt: return "integer";
    case Tok::kString: return "string";
    case Tok::kChar: return "char";
    case Tok::kHost: return "host literal";
    case Tok::kIdent: return "identifier";
    case Tok::kVal: return "'val'";
    case Tok::kFun: return "'fun'";
    case Tok::kChannel: return "'channel'";
    case Tok::kInitstate: return "'initstate'";
    case Tok::kIs: return "'is'";
    case Tok::kLet: return "'let'";
    case Tok::kIn: return "'in'";
    case Tok::kEnd: return "'end'";
    case Tok::kIf: return "'if'";
    case Tok::kThen: return "'then'";
    case Tok::kElse: return "'else'";
    case Tok::kTry: return "'try'";
    case Tok::kWith: return "'with'";
    case Tok::kRaise: return "'raise'";
    case Tok::kAnd: return "'and'";
    case Tok::kOr: return "'or'";
    case Tok::kNot: return "'not'";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kHashTable: return "'hash_table'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kColon: return "':'";
    case Tok::kStar: return "'*'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kCaret: return "'^'";
    case Tok::kEq: return "'='";
    case Tok::kNe: return "'<>'";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kHash: return "'#'";
    case Tok::kEof: return "end of input";
  }
  return "?";
}

}  // namespace asp::planp
