#include "planp/value.hpp"

#include "mem/pool.hpp"
#include "mem/shard.hpp"

namespace asp::planp {

namespace {

/// On recycle under poison mode, scribble sentinel ints over the slots so a
/// stale reference into recycled tuple storage reads "POIS" instead of a
/// plausible value.
struct TuplePoison {
  void operator()(std::vector<Value>& v) const {
    for (Value& e : v) e = Value::of_int(mem::kPoisonInt);
  }
};

using TuplePool = mem::VecPool<Value, TuplePoison>;

TuplePool& tuple_pool() {
  // Shard-local slot: every shard thread decodes tuples, so each gets its
  // own instance (leaked with its ShardPools); a tuple recycled on a foreign
  // shard — or during static destruction — rides the remote-free channel
  // back to its home instance.
  static const int slot =
      mem::ShardPools::register_slot([](mem::ShardPools& sp) -> mem::PoolBase* {
        return new TuplePool("mem/" + sp.label() + "/tuple", mem::AllocTag::kTuple,
                             sp.slab(), sp.token(), sp.locked());
      });
  // Cache the shard→pool resolution so the steady path is one TLS read +
  // one compare; refreshes itself after a rebind or TLS teardown.
  struct Cache {
    const mem::ShardPools* sp = nullptr;
    TuplePool* pool = nullptr;
  };
  static thread_local Cache cache;
  mem::ShardPools& sp = mem::shard();
  if (cache.sp != &sp) {
    cache.sp = &sp;
    cache.pool = static_cast<TuplePool*>(sp.slot(slot));
  }
  return *cache.pool;
}

/// Rehydrate a Scalar slot as a full Value (no heap — all alternatives are
/// by-value reps).
Value from_scalar(const Scalar& s) {
  return std::visit([](const auto& x) { return Value{Value::Rep{x}}; }, s);
}

/// The Scalar for a Value, or nullopt if its shape doesn't fit inline.
std::optional<Scalar> to_scalar(const Value& v) {
  return std::visit(
      [](const auto& x) -> std::optional<Scalar> {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, UnitVal> || std::is_same_v<T, std::int64_t> ||
                      std::is_same_v<T, bool> || std::is_same_v<T, char> ||
                      std::is_same_v<T, asp::net::Ipv4Addr>) {
          return Scalar{x};
        } else {
          return std::nullopt;
        }
      },
      v.rep());
}

}  // namespace

Value Value::of_tuple(std::vector<Value> elems) {
  // Adopt the caller's storage into a pooled node: the vector itself joins
  // the freelist (and recycles its capacity) when the last reference drops.
  TupleRep t = tuple_pool().acquire(0);
  *t = std::move(elems);
  return of_tuple_rep(std::move(t));
}

Value Value::of_pair(Value a, Value b) {
  if (auto sa = to_scalar(a)) {
    if (auto sb = to_scalar(b)) {
      return Value{Rep{ScalarPair{std::move(*sa), std::move(*sb)}}};
    }
  }
  TupleRep t = make_tuple_storage(2);
  t->push_back(std::move(a));
  t->push_back(std::move(b));
  return of_tuple_rep(std::move(t));
}

TupleRep Value::make_tuple_storage(std::size_t n) { return tuple_pool().acquire(n); }

const std::vector<Value>& Value::as_tuple() const {
  if (const TupleRep* t = std::get_if<TupleRep>(&rep_)) return **t;
  if (const ScalarPair* p = std::get_if<ScalarPair>(&rep_)) {
    // Lazy promotion to the vector rep; logically const (observable tuple
    // value is unchanged), same discipline as the mutable hash_cache_.
    TupleRep t = make_tuple_storage(2);
    t->push_back(from_scalar(p->first));
    t->push_back(from_scalar(p->second));
    const_cast<Value*>(this)->rep_ = Rep{std::move(t)};
    return *std::get<TupleRep>(rep_);
  }
  throw EvalBug{"value is not a tuple"};
}

std::size_t Value::tuple_size() const {
  if (const TupleRep* t = std::get_if<TupleRep>(&rep_)) return (*t)->size();
  if (std::holds_alternative<ScalarPair>(rep_)) return 2;
  throw EvalBug{"value is not a tuple"};
}

Value Value::tuple_at(std::size_t i) const {
  if (const TupleRep* t = std::get_if<TupleRep>(&rep_)) return (**t)[i];
  if (const ScalarPair* p = std::get_if<ScalarPair>(&rep_)) {
    return from_scalar(i == 0 ? p->first : p->second);
  }
  throw EvalBug{"value is not a tuple"};
}

bool Value::equals(const Value& o) const {
  // Cross-rep tuple equality: an inline ScalarPair and a TupleRep holding
  // the same elements are the same tuple.
  if (rep_.index() != o.rep_.index() && is_tuple() && o.is_tuple()) {
    if (tuple_size() != o.tuple_size()) return false;
    for (std::size_t i = 0; i < tuple_size(); ++i) {
      if (!tuple_at(i).equals(o.tuple_at(i))) return false;
    }
    return true;
  }
  if (rep_.index() != o.rep_.index()) return false;
  return std::visit(
      [&o](const auto& a) -> bool {
        using T = std::decay_t<decltype(a)>;
        const T& b = std::get<T>(o.rep_);
        if constexpr (std::is_same_v<T, UnitVal>) {
          return true;
        } else if constexpr (std::is_same_v<T, std::int64_t> ||
                             std::is_same_v<T, bool> || std::is_same_v<T, char> ||
                             std::is_same_v<T, std::string>) {
          return a == b;
        } else if constexpr (std::is_same_v<T, asp::net::Ipv4Addr>) {
          return a == b;
        } else if constexpr (std::is_same_v<T, Blob>) {
          return a == b || (a && b && *a == *b);
        } else if constexpr (std::is_same_v<T, asp::net::IpHeader>) {
          return a.src == b.src && a.dst == b.dst && a.proto == b.proto &&
                 a.ttl == b.ttl && a.tos == b.tos;
        } else if constexpr (std::is_same_v<T, asp::net::TcpHeader>) {
          return a.sport == b.sport && a.dport == b.dport && a.seq == b.seq &&
                 a.ack == b.ack && a.flags == b.flags && a.wnd == b.wnd;
        } else if constexpr (std::is_same_v<T, asp::net::UdpHeader>) {
          return a.sport == b.sport && a.dport == b.dport;
        } else if constexpr (std::is_same_v<T, TupleRep>) {
          if (a->size() != b->size()) return false;
          for (std::size_t i = 0; i < a->size(); ++i) {
            if (!(*a)[i].equals((*b)[i])) return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, TableRef>) {
          return a == b;  // identity
        } else if constexpr (std::is_same_v<T, ChanVal>) {
          return a == b;
        } else if constexpr (std::is_same_v<T, ScalarPair>) {
          return a.first == b.first && a.second == b.second;
        }
      },
      rep_);
}

namespace {
std::size_t mix(std::size_t h, std::size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}
}  // namespace

std::size_t Value::hash() const {
  // Only the aggregates are worth memoizing (and they are immutable, so the
  // memo can never go stale); scalars hash in a few cycles.
  if (std::holds_alternative<TupleRep>(rep_) || std::holds_alternative<Blob>(rep_)) {
    if (hash_cache_ == 0) {
      std::size_t h = hash_uncached();
      hash_cache_ = h == 0 ? 1 : h;
    }
    return hash_cache_;
  }
  return hash_uncached();
}

std::size_t Value::hash_uncached() const {
  return std::visit(
      [](const auto& a) -> std::size_t {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, UnitVal>) {
          return 0x55;
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::hash<std::int64_t>{}(a);
        } else if constexpr (std::is_same_v<T, bool>) {
          return a ? 3 : 7;
        } else if constexpr (std::is_same_v<T, char>) {
          return std::hash<char>{}(a);
        } else if constexpr (std::is_same_v<T, std::string>) {
          return std::hash<std::string>{}(a);
        } else if constexpr (std::is_same_v<T, asp::net::Ipv4Addr>) {
          return std::hash<asp::net::Ipv4Addr>{}(a);
        } else if constexpr (std::is_same_v<T, Blob>) {
          // Content hash, consistent with equals() comparing contents.
          std::size_t h = 0xB10B;
          for (std::uint8_t byte : *a) h = mix(h, byte);
          return h;
        } else if constexpr (std::is_same_v<T, TupleRep>) {
          std::size_t h = 0xABCD;
          for (const Value& v : *a) h = mix(h, v.hash());
          return h;
        } else if constexpr (std::is_same_v<T, ScalarPair>) {
          // Must match the TupleRep chain exactly: cross-rep equal tuples
          // are interchangeable as table keys.
          std::size_t h = 0xABCD;
          h = mix(h, from_scalar(a.first).hash());
          h = mix(h, from_scalar(a.second).hash());
          return h;
        } else {
          throw EvalBug{"value is not hashable"};
        }
      },
      rep_);
}

std::string Value::str() const {
  return std::visit(
      [](const auto& a) -> std::string {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, UnitVal>) {
          return "()";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(a);
        } else if constexpr (std::is_same_v<T, bool>) {
          return a ? "true" : "false";
        } else if constexpr (std::is_same_v<T, char>) {
          return std::string(1, a);
        } else if constexpr (std::is_same_v<T, std::string>) {
          return a;
        } else if constexpr (std::is_same_v<T, asp::net::Ipv4Addr>) {
          return a.str();
        } else if constexpr (std::is_same_v<T, Blob>) {
          return "<blob:" + std::to_string(a ? a->size() : 0) + ">";
        } else if constexpr (std::is_same_v<T, asp::net::IpHeader>) {
          return "<ip " + a.src.str() + "->" + a.dst.str() + ">";
        } else if constexpr (std::is_same_v<T, asp::net::TcpHeader>) {
          return "<tcp " + std::to_string(a.sport) + "->" + std::to_string(a.dport) + ">";
        } else if constexpr (std::is_same_v<T, asp::net::UdpHeader>) {
          return "<udp " + std::to_string(a.sport) + "->" + std::to_string(a.dport) + ">";
        } else if constexpr (std::is_same_v<T, TupleRep>) {
          std::string s = "(";
          for (std::size_t i = 0; i < a->size(); ++i) {
            if (i > 0) s += ", ";
            s += (*a)[i].str();
          }
          return s + ")";
        } else if constexpr (std::is_same_v<T, TableRef>) {
          return "<hash_table:" + std::to_string(a ? a->size() : 0) + ">";
        } else if constexpr (std::is_same_v<T, ChanVal>) {
          return "<chan " + a.name + ">";
        } else if constexpr (std::is_same_v<T, ScalarPair>) {
          return "(" + from_scalar(a.first).str() + ", " + from_scalar(a.second).str() + ")";
        }
      },
      rep_);
}

Value default_value(const TypePtr& t) {
  switch (t->kind()) {
    case Type::Kind::kInt: return Value::of_int(0);
    case Type::Kind::kBool: return Value::of_bool(false);
    case Type::Kind::kChar: return Value::of_char('\0');
    case Type::Kind::kString: return Value::of_string("");
    case Type::Kind::kUnit: return Value::unit();
    case Type::Kind::kHost: return Value::of_host({});
    case Type::Kind::kBlob: return Value::of_blob(std::vector<std::uint8_t>{});
    case Type::Kind::kIp: return Value::of_ip({});
    case Type::Kind::kTcp: return Value::of_tcp({});
    case Type::Kind::kUdp: return Value::of_udp({});
    case Type::Kind::kTuple: {
      std::vector<Value> elems;
      elems.reserve(t->args().size());
      for (const auto& e : t->args()) elems.push_back(default_value(e));
      return Value::of_tuple(std::move(elems));
    }
    case Type::Kind::kTable:
      return Value::of_table(std::make_shared<HashTable>());
    case Type::Kind::kChan:
      return Value::of_chan("");
    case Type::Kind::kVar:
    case Type::Kind::kBottom:
      break;  // no runtime values of these kinds
  }
  return Value::unit();
}

}  // namespace asp::planp
