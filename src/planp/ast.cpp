#include "planp/ast.hpp"

namespace asp::planp {

std::vector<const ChannelDef*> Program::channels() const {
  std::vector<const ChannelDef*> out;
  for (const auto& d : decls) {
    if (const auto* c = std::get_if<ChannelDef>(&d)) out.push_back(c);
  }
  return out;
}

std::vector<const FunDef*> Program::functions() const {
  std::vector<const FunDef*> out;
  for (const auto& d : decls) {
    if (const auto* f = std::get_if<FunDef>(&d)) out.push_back(f);
  }
  return out;
}

const FunDef* Program::find_function(const std::string& name) const {
  for (const auto& d : decls) {
    if (const auto* f = std::get_if<FunDef>(&d)) {
      if (f->name == name) return f;
    }
  }
  return nullptr;
}

namespace {

void escape_into(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      default: out += c;
    }
  }
}

void print(const Expr& e, std::string& out) {
  using K = Expr::Kind;
  switch (e.kind) {
    case K::kIntLit: out += std::to_string(e.int_val); break;
    case K::kBoolLit: out += e.bool_val ? "true" : "false"; break;
    case K::kCharLit:
      out += '\'';
      if (e.char_val == '\n') out += "\\n";
      else if (e.char_val == '\t') out += "\\t";
      else if (e.char_val == '\\') out += "\\\\";
      else if (e.char_val == '\'') out += "\\'";
      else out += e.char_val;
      out += '\'';
      break;
    case K::kStringLit:
      out += '"';
      escape_into(e.str_val, out);
      out += '"';
      break;
    case K::kHostLit: out += e.host_val.str(); break;
    case K::kUnitLit: out += "()"; break;
    case K::kVar: out += e.name; break;
    case K::kLet:
      out += "(let val " + e.name + " : " +
             (e.decl_type != nullptr ? e.decl_type->str() : "?") + " = ";
      print(*e.args[0], out);
      out += " in ";
      print(*e.args[1], out);
      out += " end)";
      break;
    case K::kIf:
      out += "(if ";
      print(*e.args[0], out);
      out += " then ";
      print(*e.args[1], out);
      out += " else ";
      print(*e.args[2], out);
      out += ")";
      break;
    case K::kSeq:
      out += '(';
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += "; ";
        print(*e.args[i], out);
      }
      out += ')';
      break;
    case K::kTuple:
      out += '(';
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        print(*e.args[i], out);
      }
      out += ')';
      break;
    case K::kProj:
      out += '#' + std::to_string(e.proj_index) + ' ';
      print(*e.args[0], out);
      break;
    case K::kCall:
      out += e.name + '(';
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        print(*e.args[i], out);
      }
      out += ')';
      break;
    case K::kBinOp:
      out += '(';
      print(*e.args[0], out);
      out += ' ' + e.name + ' ';
      print(*e.args[1], out);
      out += ')';
      break;
    case K::kUnOp:
      out += e.name + ' ';
      print(*e.args[0], out);
      break;
    case K::kAnd:
      out += '(';
      print(*e.args[0], out);
      out += " and ";
      print(*e.args[1], out);
      out += ')';
      break;
    case K::kOr:
      out += '(';
      print(*e.args[0], out);
      out += " or ";
      print(*e.args[1], out);
      out += ')';
      break;
    case K::kRaise:
      out += "(raise \"";
      escape_into(e.str_val, out);
      out += "\")";
      break;
    case K::kTry:
      out += "(try ";
      print(*e.args[0], out);
      out += " with ";
      print(*e.args[1], out);
      out += ")";
      break;
    case K::kSend:
      switch (e.send_kind) {
        case SendKind::kOnRemote: out += "OnRemote(" + e.name + ", "; break;
        case SendKind::kOnNeighbor: out += "OnNeighbor(" + e.name + ", "; break;
        case SendKind::kDeliver: out += "deliver("; break;
        case SendKind::kDrop: out += "drop("; break;
      }
      if (!e.args.empty()) print(*e.args[0], out);
      out += ')';
      break;
  }
}
}  // namespace

std::string to_string(const Expr& e) {
  std::string out;
  print(e, out);
  return out;
}

std::string to_string(const Program& p) {
  std::string out;
  for (const auto& d : p.decls) {
    if (const auto* v = std::get_if<ValDef>(&d)) {
      out += "val " + v->name + " : " + v->type->str() + " = " + to_string(*v->init);
    } else if (const auto* f = std::get_if<FunDef>(&d)) {
      out += "fun " + f->name + "(";
      for (std::size_t i = 0; i < f->params.size(); ++i) {
        if (i > 0) out += ", ";
        out += f->params[i].first + " : " + f->params[i].second->str();
      }
      out += ") : " + f->ret->str() + " = " + to_string(*f->body);
    } else {
      const auto& c = std::get<ChannelDef>(d);
      out += "channel " + c.name + "(" + c.ps_name + " : " + c.ps_type->str() + ", " +
             c.ss_name + " : " + c.ss_type->str() + ", " + c.p_name + " : " +
             c.packet_type->str() + ")";
      if (c.init_state != nullptr) out += "\ninitstate " + to_string(*c.init_state);
      out += " is\n  " + to_string(*c.body);
    }
    out += "\n\n";
  }
  return out;
}

}  // namespace asp::planp
