#include "planp/interp.hpp"

namespace asp::planp {

namespace {
/// Bumps the engine's call depth for one scope; exception-safe (PLAN-P
/// `raise` unwinds through eval).
struct DepthGuard {
  std::size_t& d;
  explicit DepthGuard(std::size_t& depth) : d(depth) { ++d; }
  ~DepthGuard() { --d; }
};
}  // namespace

namespace {
/// Fallback prepared handle: delegates to the virtual run_channel (no
/// packet-use analysis, so packet_used() stays conservatively true).
class DefaultChannel : public Engine::Channel {
 public:
  DefaultChannel(Engine& e, int idx) : engine_(e), idx_(idx) {}
  Value run(const Value& ps, const Value& ss, const Value& packet) override {
    return engine_.run_channel(idx_, ps, ss, packet);
  }

 private:
  Engine& engine_;
  int idx_;
};
}  // namespace

Engine::Channel* Engine::channel(int chan_idx) {
  const std::size_t i = static_cast<std::size_t>(chan_idx);
  if (default_channels_.size() <= i) default_channels_.resize(i + 1);
  if (default_channels_[i] == nullptr) {
    default_channels_[i] = std::make_unique<DefaultChannel>(*this, chan_idx);
  }
  return default_channels_[i].get();
}

Interp::Interp(const CheckedProgram& prog, EnvApi& env) : prog_(prog), env_(env) {
  globals_.reserve(prog_.globals.size());
  auto& fr = arena_.at_depth(depth_);
  DepthGuard g(depth_);
  for (const ValDef* v : prog_.globals) {
    fr.locals.clear();
    Frame f{fr.locals};
    globals_.push_back(eval(*v->init, f));
  }
}

Value Interp::init_state(int chan_idx) {
  const ChannelDef& c = *prog_.channels.at(static_cast<std::size_t>(chan_idx));
  if (c.init_state == nullptr) return default_value(c.ss_type);
  auto& fr = arena_.at_depth(depth_);
  DepthGuard g(depth_);
  fr.locals.clear();
  Frame f{fr.locals};
  return eval(*c.init_state, f);
}

Value Interp::run_channel(int chan_idx, const Value& ps, const Value& ss,
                          const Value& packet) {
  const ChannelDef& c = *prog_.channels.at(static_cast<std::size_t>(chan_idx));
  auto& fr = arena_.at_depth(depth_);
  DepthGuard g(depth_);
  fr.locals.clear();
  fr.locals.resize(static_cast<std::size_t>(c.frame_slots));
  fr.locals[0] = ps;
  fr.locals[1] = ss;
  fr.locals[2] = packet;
  Frame f{fr.locals};
  Value out = eval(*c.body, f);
  if (mem::poison_enabled()) {
    // Any reference still pointing into a frame now reads the sentinel; the
    // differential fuzz suite runs with this on to catch use-after-reuse.
    const Value sentinel = Value::of_int(mem::kPoisonInt);
    for (std::size_t d = 0; d < arena_.depth(); ++d) arena_.scribble(d, sentinel);
  }
  return out;
}

Value Interp::eval_expr(const Expr& e) {
  auto& fr = arena_.at_depth(depth_);
  DepthGuard g(depth_);
  fr.locals.clear();
  fr.locals.resize(64);  // generous scratch space for test expressions
  Frame f{fr.locals};
  return eval(e, f);
}

Value Interp::call_function(const FunDef& fun, mem::FrameArena<Value>::Frame& fr) {
  // The arguments were staged into fr.args by the caller (kCall); move them
  // into the leading local slots.
  fr.locals.clear();
  fr.locals.resize(static_cast<std::size_t>(fun.frame_slots));
  for (std::size_t i = 0; i < fr.args.size(); ++i) fr.locals[i] = std::move(fr.args[i]);
  Frame f{fr.locals};
  return eval(*fun.body, f);
}

Value Interp::eval(const Expr& e, Frame& f) {
  using K = Expr::Kind;
  switch (e.kind) {
    case K::kIntLit: return Value::of_int(e.int_val);
    case K::kBoolLit: return Value::of_bool(e.bool_val);
    case K::kCharLit: return Value::of_char(e.char_val);
    case K::kStringLit: return Value::of_string(e.str_val);
    case K::kHostLit: return Value::of_host(e.host_val);
    case K::kUnitLit: return Value::unit();

    case K::kVar:
      if (is_local_var(e.var_slot)) {
        return f.slots[static_cast<std::size_t>(e.var_slot)];
      }
      return globals_[static_cast<std::size_t>(global_index(e.var_slot))];

    case K::kLet: {
      Value v = eval(*e.args[0], f);
      if (f.slots.size() <= static_cast<std::size_t>(e.var_slot)) {
        f.slots.resize(static_cast<std::size_t>(e.var_slot) + 1);
      }
      f.slots[static_cast<std::size_t>(e.var_slot)] = std::move(v);
      return eval(*e.args[1], f);
    }

    case K::kIf:
      return eval(*e.args[0], f).as_bool() ? eval(*e.args[1], f)
                                           : eval(*e.args[2], f);

    case K::kSeq: {
      for (std::size_t i = 0; i + 1 < e.args.size(); ++i) eval(*e.args[i], f);
      return eval(*e.args.back(), f);
    }

    case K::kTuple: {
      if (e.args.size() == 2) {
        // Pairs dominate; scalar pairs are stored inline (zero-alloc).
        Value a = eval(*e.args[0], f);
        Value b = eval(*e.args[1], f);
        return Value::of_pair(std::move(a), std::move(b));
      }
      TupleRep t = Value::make_tuple_storage(e.args.size());
      for (const auto& a : e.args) t->push_back(eval(*a, f));
      return Value::of_tuple_rep(std::move(t));
    }

    case K::kProj:
      return eval(*e.args[0], f).tuple_at(static_cast<std::size_t>(e.proj_index - 1));

    case K::kCall: {
      // Stage arguments directly in the callee's arena frame. The depth is
      // bumped for the whole call, so nested kCalls inside the argument
      // expressions stage one level deeper and cannot stomp this frame.
      auto& callee = arena_.at_depth(depth_);
      DepthGuard g(depth_);
      callee.args.clear();
      for (const auto& a : e.args) callee.args.push_back(eval(*a, f));
      if (is_primitive_call(e.call_target)) {
        return Primitives::instance().at(e.call_target).fn(env_, callee.args);
      }
      const FunDef& fun =
          *prog_.functions[static_cast<std::size_t>(user_fun_index(e.call_target))];
      return call_function(fun, callee);
    }

    case K::kBinOp: {
      const std::string& op = e.name;
      if (op == "=" || op == "<>") {
        bool eq = eval(*e.args[0], f).equals(eval(*e.args[1], f));
        return Value::of_bool(op == "=" ? eq : !eq);
      }
      if (op == "^") {
        std::string s = eval(*e.args[0], f).as_string();
        return Value::of_string(s + eval(*e.args[1], f).as_string());
      }
      if (op == "<" || op == "<=" || op == ">" || op == ">=") {
        Value a = eval(*e.args[0], f);
        Value b = eval(*e.args[1], f);
        int cmp;
        if (const auto* s = std::get_if<std::string>(&a.rep())) {
          cmp = s->compare(b.as_string());
        } else if (const auto* c = std::get_if<char>(&a.rep())) {
          cmp = *c - b.as_char();
        } else {
          std::int64_t x = a.as_int(), y = b.as_int();
          cmp = x < y ? -1 : (x > y ? 1 : 0);
        }
        bool r = op == "<" ? cmp < 0 : op == "<=" ? cmp <= 0
                 : op == ">"         ? cmp > 0
                                     : cmp >= 0;
        return Value::of_bool(r);
      }
      std::int64_t a = eval(*e.args[0], f).as_int();
      std::int64_t b = eval(*e.args[1], f).as_int();
      if (op == "+") return Value::of_int(a + b);
      if (op == "-") return Value::of_int(a - b);
      if (op == "*") return Value::of_int(a * b);
      if (b == 0) throw PlanPException{"DivByZero"};
      if (op == "/") return Value::of_int(a / b);
      return Value::of_int(a % b);  // "%"
    }

    case K::kUnOp:
      if (e.name == "not") return Value::of_bool(!eval(*e.args[0], f).as_bool());
      return Value::of_int(-eval(*e.args[0], f).as_int());

    case K::kAnd:
      return Value::of_bool(eval(*e.args[0], f).as_bool() &&
                            eval(*e.args[1], f).as_bool());
    case K::kOr:
      return Value::of_bool(eval(*e.args[0], f).as_bool() ||
                            eval(*e.args[1], f).as_bool());

    case K::kRaise:
      throw PlanPException{e.str_val};

    case K::kTry:
      try {
        return eval(*e.args[0], f);
      } catch (const PlanPException&) {
        return eval(*e.args[1], f);
      }

    case K::kSend: {
      switch (e.send_kind) {
        case SendKind::kOnRemote:
          env_.on_remote(e.name, eval(*e.args[0], f));
          break;
        case SendKind::kOnNeighbor:
          env_.on_neighbor(e.name, eval(*e.args[0], f));
          break;
        case SendKind::kDeliver:
          env_.deliver(eval(*e.args[0], f));
          break;
        case SendKind::kDrop:
          env_.drop();
          break;
      }
      return Value::unit();
    }
  }
  throw EvalBug{"unhandled expression kind"};
}

}  // namespace asp::planp
