#include "planp/jit.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.hpp"

namespace asp::planp {

namespace {

std::int32_t jop_of_bincode(BinCode c) {
  switch (c) {
    case BinCode::kAdd: return jop::kAdd;
    case BinCode::kSub: return jop::kSub;
    case BinCode::kMul: return jop::kMul;
    case BinCode::kDiv: return jop::kDiv;
    case BinCode::kMod: return jop::kMod;
    case BinCode::kEq: return jop::kEq;
    case BinCode::kNe: return jop::kNe;
    case BinCode::kLt: return jop::kLt;
    case BinCode::kLe: return jop::kLe;
    case BinCode::kGt: return jop::kGt;
    case BinCode::kGe: return jop::kGe;
    case BinCode::kConcat: return jop::kConcat;
  }
  return jop::kAdd;
}

int compare_values(const Value& a, const Value& b) {
  if (const auto* s = std::get_if<std::string>(&a.rep())) return s->compare(b.as_string());
  if (const auto* c = std::get_if<char>(&a.rep())) return *c - b.as_char();
  std::int64_t x = a.as_int(), y = b.as_int();
  return x < y ? -1 : (x > y ? 1 : 0);
}

/// Does the block ever read local slot `slot`? Channel bodies keep the packet
/// in slot 2, so a false answer means the body is packet-oblivious and the
/// dispatcher can skip payload decoding (match-only classification). Function
/// calls are covered transitively: a callee only sees the packet if the
/// caller loaded slot 2 to pass it, which this scan catches.
bool block_reads_local(const JitBlock& b, std::int32_t slot) {
  for (const SInstr& s : b.code) {
    switch (s.op) {
      case jop::kLoadLocal:
      case jop::kStoreLocal:
      case jop::kProjLocal:
      case jop::kCallPrim1L:
      case jop::kReturnLocal:
      case jop::kAddConstLocal:
      case jop::kReturnPairLocal:
        if (s.a == slot) return true;
        break;
      case jop::kMoveField:
        // a = source slot, high bits of b = destination slot.
        if (s.a == slot || (s.b >> 16) == slot) return true;
        break;
      default:
        break;
    }
  }
  return false;
}

}  // namespace

/// Install-time-prepared dispatch handle: the body block is resolved once
/// (no .at() per packet) and packet use is pre-analyzed, so the match-action
/// dispatcher can enter specialized code directly for each run of a batch.
class JitEngine::PreparedChannel : public Engine::Channel {
 public:
  PreparedChannel(JitEngine& e, const JitBlock& body)
      : engine_(e), body_(body), packet_used_(block_reads_local(body, 2)) {}
  bool packet_used() const override { return packet_used_; }
  Value run(const Value& ps, const Value& ss, const Value& packet) override {
    return engine_.run_channel_body(body_, ps, ss, packet);
  }

 private:
  JitEngine& engine_;
  const JitBlock& body_;
  bool packet_used_;
};

JitBlock specialize_block(const CodeBlock& block, const CompiledProgram& prog,
                          bool fuse) {
  const auto& code = block.code;
  // Jump targets break fusion windows (a fused pair must not be jumped into
  // the middle of).
  std::unordered_set<std::size_t> targets;
  for (const Instr& in : code) {
    if (in.op == Op::kJump || in.op == Op::kJumpIfFalse || in.op == Op::kJumpIfTrue ||
        in.op == Op::kTryPush) {
      targets.insert(static_cast<std::size_t>(in.a));
    }
  }

  JitBlock out;
  out.frame_slots = block.frame_slots;
  out.max_stack = block.max_stack;
  std::vector<std::int32_t> new_pc(code.size() + 1, 0);

  auto konst = [&](std::int32_t idx) -> const Value* {
    return &prog.consts[static_cast<std::size_t>(idx)];
  };
  auto fusible = [&](std::size_t i) { return fuse && targets.count(i) == 0; };

  std::size_t i = 0;
  while (i < code.size()) {
    new_pc[i] = static_cast<std::int32_t>(out.code.size());
    const Instr& in = code[i];
    SInstr s{};

    // --- superinstruction templates -----------------------------------------
    // LoadLocal p; Proj f; StoreLocal x   =>  MoveField
    if (in.op == Op::kLoadLocal && i + 2 < code.size() && fusible(i + 1) &&
        fusible(i + 2) && code[i + 1].op == Op::kProj &&
        code[i + 2].op == Op::kStoreLocal) {
      s.op = jop::kMoveField;
      s.a = in.a;  // source slot
      // field index in the low 16 bits, destination slot in the high bits
      s.b = (code[i + 1].a & 0xFFFF) | (code[i + 2].a << 16);
      out.code.push_back(s);
      new_pc[i + 1] = new_pc[i];
      new_pc[i + 2] = new_pc[i];
      i += 3;
      continue;
    }
    // LoadLocal p; Proj f  =>  ProjLocal
    if (in.op == Op::kLoadLocal && i + 1 < code.size() && fusible(i + 1) &&
        code[i + 1].op == Op::kProj) {
      s.op = jop::kProjLocal;
      s.a = in.a;
      s.b = code[i + 1].a;
      out.code.push_back(s);
      new_pc[i + 1] = new_pc[i];
      i += 2;
      continue;
    }
    // LoadLocal x; CallPrim(p, 1)  =>  CallPrim1L
    if (in.op == Op::kLoadLocal && i + 1 < code.size() && fusible(i + 1) &&
        code[i + 1].op == Op::kCallPrim && code[i + 1].b == 1) {
      s.op = jop::kCallPrim1L;
      s.a = in.a;
      s.prim = &Primitives::instance().at(code[i + 1].a);
      out.code.push_back(s);
      new_pc[i + 1] = new_pc[i];
      i += 2;
      continue;
    }
    // Const k; BinOp(=)  =>  EqConst
    if (in.op == Op::kConst && i + 1 < code.size() && fusible(i + 1) &&
        code[i + 1].op == Op::kBinOp &&
        static_cast<BinCode>(code[i + 1].a) == BinCode::kEq) {
      s.op = jop::kEqConst;
      s.k = konst(in.a);
      out.code.push_back(s);
      new_pc[i + 1] = new_pc[i];
      i += 2;
      continue;
    }
    // LoadLocal x; Return  =>  ReturnLocal
    if (in.op == Op::kLoadLocal && i + 1 < code.size() && fusible(i + 1) &&
        code[i + 1].op == Op::kReturn) {
      s.op = jop::kReturnLocal;
      s.a = in.a;
      out.code.push_back(s);
      new_pc[i + 1] = new_pc[i];
      i += 2;
      continue;
    }
    // Const v; Send  =>  SendConst (the sent value is patched into the
    // template; the common `drop()` / `deliver(v)` shapes never touch the
    // stack at all)
    if (in.op == Op::kConst && i + 1 < code.size() && fusible(i + 1) &&
        code[i + 1].op == Op::kSend) {
      s.op = jop::kSendConst;
      s.a = code[i + 1].a;  // SendKind
      s.k = konst(in.a);    // the value being sent
      // interned channel id, as for kSend below
      s.b = static_cast<std::int32_t>(net::ChannelTags::intern(
          prog.consts[static_cast<std::size_t>(code[i + 1].b)].as_string()));
      out.code.push_back(s);
      new_pc[i + 1] = new_pc[i];
      i += 2;
      continue;
    }
    // Const; Pop  =>  nothing (dead sequence value, e.g. the unit a send
    // pushes when its result is discarded by `;`)
    if (in.op == Op::kConst && i + 1 < code.size() && fusible(i + 1) &&
        code[i + 1].op == Op::kPop) {
      new_pc[i + 1] = new_pc[i];
      i += 2;
      continue;
    }
    // LoadLocal x; Const k; Add  =>  AddConstLocal
    if (in.op == Op::kLoadLocal && i + 2 < code.size() && fusible(i + 1) &&
        fusible(i + 2) && code[i + 1].op == Op::kConst &&
        code[i + 2].op == Op::kBinOp &&
        static_cast<BinCode>(code[i + 2].a) == BinCode::kAdd) {
      s.op = jop::kAddConstLocal;
      s.a = in.a;
      s.k = konst(code[i + 1].a);
      out.code.push_back(s);
      new_pc[i + 1] = new_pc[i];
      new_pc[i + 2] = new_pc[i];
      i += 3;
      continue;
    }
    // LoadLocal y; MakeTuple 2; Return  =>  ReturnPairLocal — the dominant
    // channel epilogue `(ps', ss)` becomes one template
    if (in.op == Op::kLoadLocal && i + 2 < code.size() && fusible(i + 1) &&
        fusible(i + 2) && code[i + 1].op == Op::kMakeTuple &&
        code[i + 1].a == 2 && code[i + 2].op == Op::kReturn) {
      s.op = jop::kReturnPairLocal;
      s.a = in.a;
      out.code.push_back(s);
      new_pc[i + 1] = new_pc[i];
      new_pc[i + 2] = new_pc[i];
      i += 3;
      continue;
    }

    // --- 1:1 templates ---------------------------------------------------------
    switch (in.op) {
      case Op::kConst:
        s.op = jop::kConst;
        s.k = konst(in.a);
        break;
      case Op::kLoadLocal: s.op = jop::kLoadLocal; s.a = in.a; break;
      case Op::kStoreLocal: s.op = jop::kStoreLocal; s.a = in.a; break;
      case Op::kLoadGlobal: s.op = jop::kLoadGlobal; s.a = in.a; break;
      case Op::kJump: s.op = jop::kJump; s.a = in.a; break;
      case Op::kJumpIfFalse: s.op = jop::kJumpIfFalse; s.a = in.a; break;
      case Op::kJumpIfTrue: s.op = jop::kJumpIfTrue; s.a = in.a; break;
      case Op::kPop: s.op = jop::kPop; break;
      case Op::kDup: s.op = jop::kDup; break;
      case Op::kMakeTuple: s.op = jop::kMakeTuple; s.a = in.a; break;
      case Op::kProj: s.op = jop::kProj; s.a = in.a; break;
      case Op::kCallPrim:
        s.op = jop::kCallPrim;
        s.b = in.b;
        s.prim = &Primitives::instance().at(in.a);
        break;
      case Op::kCallFun: s.op = jop::kCallFun; s.a = in.a; s.b = in.b; break;
      case Op::kBinOp: s.op = jop_of_bincode(static_cast<BinCode>(in.a)); break;
      case Op::kNot: s.op = jop::kNot; break;
      case Op::kNeg: s.op = jop::kNeg; break;
      case Op::kRaise:
        s.op = jop::kRaise;
        s.k = konst(in.a);
        break;
      case Op::kTryPush: s.op = jop::kTryPush; s.a = in.a; break;
      case Op::kTryPop: s.op = jop::kTryPop; break;
      case Op::kSend:
        s.op = jop::kSend;
        s.a = in.a;
        s.k = konst(in.b);
        // Patch the interned channel id in at specialization time: the send
        // handler then dispatches by integer tag, never hashing the name on
        // the packet path. (Deliver/drop carry the empty name, tag 0.)
        s.b = static_cast<std::int32_t>(
            net::ChannelTags::intern(s.k->as_string()));
        break;
      case Op::kReturn: s.op = jop::kReturn; break;
    }
    out.code.push_back(s);
    ++i;
  }
  new_pc[code.size()] = static_cast<std::int32_t>(out.code.size());

  // Patch jump targets to specialized addresses.
  for (SInstr& s : out.code) {
    switch (s.op) {
      case jop::kJump:
      case jop::kJumpIfFalse:
      case jop::kJumpIfTrue:
      case jop::kTryPush:
        s.a = new_pc[static_cast<std::size_t>(s.a)];
        break;
      default:
        break;
    }
  }
  return out;
}

JitEngine::JitEngine(const CompiledProgram& prog, EnvApi& env, bool fuse)
    : prog_(prog), env_(env) {
  auto t0 = std::chrono::steady_clock::now();
  functions_.reserve(prog_.functions.size());
  for (const CodeBlock& b : prog_.functions) {
    functions_.push_back(specialize_block(b, prog_, fuse));
  }
  channel_bodies_.reserve(prog_.channel_bodies.size());
  for (const CodeBlock& b : prog_.channel_bodies) {
    channel_bodies_.push_back(specialize_block(b, prog_, fuse));
  }
  channel_inits_.reserve(prog_.channel_inits.size());
  for (const CodeBlock& b : prog_.channel_inits) {
    channel_inits_.push_back(specialize_block(b, prog_, fuse));
  }
  std::vector<JitBlock> global_blocks;
  global_blocks.reserve(prog_.global_inits.size());
  for (const CodeBlock& b : prog_.global_inits) {
    global_blocks.push_back(specialize_block(b, prog_, fuse));
  }
  auto t1 = std::chrono::steady_clock::now();
  stats_.generation_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  stats_.input_instrs = prog_.total_instructions();
  for (const auto& v : {std::cref(functions_), std::cref(channel_bodies_),
                        std::cref(channel_inits_), std::cref(global_blocks)}) {
    for (const JitBlock& b : v.get()) stats_.output_instrs += b.code.size();
  }
  stats_.code_bytes = stats_.output_instrs * sizeof(SInstr);
  if (prog_.source != nullptr) stats_.source_lines = prog_.source->program.source_lines;

  // Direct threading: resolve each template's opcode to its handler address
  // once, here, so run_block dispatches with a single indirect goto instead
  // of a bounds-checked switch. Under the fallback build the table is null
  // and the handlers stay unpatched (the switch ignores them).
  {
    const void* const* table = nullptr;
    Buffers& probe = buffer_at(0);
    JitBlock empty;
    run_block(empty, probe, &table);
    if (table != nullptr) {
      auto patch = [&](std::vector<JitBlock>& blocks) {
        for (JitBlock& blk : blocks) {
          for (SInstr& s : blk.code) {
            s.handler = table[static_cast<std::size_t>(s.op)];
          }
        }
      };
      patch(functions_);
      patch(channel_bodies_);
      patch(channel_inits_);
      patch(global_blocks);
    }
  }

  // Prepared dispatch handles, one per channel. channel_bodies_ is frozen
  // from here on, so the handles can keep direct block references.
  prepared_.reserve(channel_bodies_.size());
  for (const JitBlock& b : channel_bodies_) {
    prepared_.push_back(std::make_unique<PreparedChannel>(*this, b));
  }

  // Figure 3 in registry form: specialization cost per JIT construction.
  obs::MetricsRegistry& reg = obs::registry();
  reg.histogram("planp/jit/codegen_us").observe(stats_.generation_ms * 1000.0);
  reg.counter("planp/jit/compiles").inc();
  reg.counter("planp/jit/input_instrs").inc(stats_.input_instrs);
  reg.counter("planp/jit/output_instrs").inc(stats_.output_instrs);

  globals_.reserve(global_blocks.size());
  for (const JitBlock& b : global_blocks) {
    Buffers& buf = buffer_at(0);
    buf.locals.assign(static_cast<std::size_t>(std::max(b.frame_slots, 8)), Value{});
    globals_.push_back(run_block(b, buf));
  }
}

JitEngine::~JitEngine() = default;

JitEngine::Buffers& JitEngine::buffer_at(int depth) {
  return arena_.at_depth(static_cast<std::size_t>(depth));
}

Value JitEngine::init_state(int chan_idx) {
  const JitBlock& b = channel_inits_.at(static_cast<std::size_t>(chan_idx));
  if (b.code.empty()) {
    return default_value(
        prog_.source->channels.at(static_cast<std::size_t>(chan_idx))->ss_type);
  }
  Buffers& buf = buffer_at(depth_);
  buf.locals.assign(static_cast<std::size_t>(std::max(b.frame_slots, 8)), Value{});
  return run_block(b, buf);
}

Value JitEngine::run_channel(int chan_idx, const Value& ps, const Value& ss,
                             const Value& packet) {
  return run_channel_body(channel_bodies_.at(static_cast<std::size_t>(chan_idx)),
                          ps, ss, packet);
}

Engine::Channel* JitEngine::channel(int chan_idx) {
  return prepared_.at(static_cast<std::size_t>(chan_idx)).get();
}

Value JitEngine::run_channel_body(const JitBlock& b, const Value& ps,
                                  const Value& ss, const Value& packet) {
  Buffers& buf = buffer_at(depth_);
  std::size_t slots = static_cast<std::size_t>(std::max(b.frame_slots, 3));
  buf.locals.resize(slots);
  buf.locals[0] = ps;
  buf.locals[1] = ss;
  buf.locals[2] = packet;
  Value out = run_block(b, buf);
  if (mem::poison_enabled()) {
    const Value sentinel = Value::of_int(mem::kPoisonInt);
    for (std::size_t d = 0; d < arena_.depth(); ++d) arena_.scribble(d, sentinel);
  }
  return out;
}

// Direct-threaded dispatch (GCC/Clang labels-as-values): every template
// carries its handler's address, so executing an instruction is one indirect
// goto — no bounds-checked switch, and the branch predictor sees one distinct
// indirect jump per handler instead of a single shared dispatch point. The
// portable switch fallback (ASP_NO_COMPUTED_GOTO, or non-GNU compilers)
// compiles the same handler bodies inside a switch.
#if (defined(__GNUC__) || defined(__clang__)) && !defined(ASP_NO_COMPUTED_GOTO)
#define ASP_JIT_THREADED 1
#define VM_DISPATCH() \
  in = &code[pc];     \
  ++pc;               \
  goto* in->handler
#define VM_CASE(name) lbl_##name
#else
#define ASP_JIT_THREADED 0
#define VM_DISPATCH() goto dispatch
#define VM_CASE(name) case jop::name
#endif

Value JitEngine::run_block(const JitBlock& block, Buffers& buf,
                          const void* const** table_out) {
#if ASP_JIT_THREADED
  // Must mirror the jop enum order exactly: entry i handles opcode i.
  static const void* const kLabels[jop::kCount] = {
      &&lbl_kConst,     &&lbl_kLoadLocal, &&lbl_kStoreLocal, &&lbl_kLoadGlobal,
      &&lbl_kJump,      &&lbl_kJumpIfFalse, &&lbl_kJumpIfTrue, &&lbl_kPop,
      &&lbl_kDup,       &&lbl_kMakeTuple, &&lbl_kProj,       &&lbl_kCallPrim,
      &&lbl_kCallFun,   &&lbl_kNot,       &&lbl_kNeg,        &&lbl_kRaise,
      &&lbl_kTryPush,   &&lbl_kTryPop,    &&lbl_kSend,       &&lbl_kReturn,
      &&lbl_kAdd,       &&lbl_kSub,       &&lbl_kMul,        &&lbl_kDiv,
      &&lbl_kMod,       &&lbl_kEq,        &&lbl_kNe,         &&lbl_kLt,
      &&lbl_kLe,        &&lbl_kGt,        &&lbl_kGe,         &&lbl_kConcat,
      &&lbl_kProjLocal, &&lbl_kMoveField, &&lbl_kCallPrim1L, &&lbl_kEqConst,
      &&lbl_kReturnLocal, &&lbl_kSendConst, &&lbl_kAddConstLocal,
      &&lbl_kReturnPairLocal,
  };
  if (table_out != nullptr) {
    *table_out = kLabels;
    return Value{};
  }
#else
  if (table_out != nullptr) {
    *table_out = nullptr;
    return Value{};
  }
#endif

  // Re-entering through kCallFun uses the next pool slot; the guard keeps
  // depth_ correct even when a PLAN-P exception unwinds through this frame.
  struct DepthGuard {
    int& d;
    explicit DepthGuard(int& depth) : d(depth) { ++d; }
    ~DepthGuard() { --d; }
  } guard(depth_);

  std::vector<Value>& locals = buf.locals;
  std::vector<Value>& stack = buf.stack;
  stack.clear();
  if (stack.capacity() < static_cast<std::size_t>(block.max_stack)) {
    mem::ScopedAllocTag tag(mem::AllocTag::kFrame);
    stack.reserve(static_cast<std::size_t>(block.max_stack));
  }
  std::vector<Value>& scratch_args = buf.args;
  struct TryFrame {
    std::int32_t handler_pc;
    std::size_t stack_depth;
  };
  std::vector<TryFrame> tries;
  const SInstr* code = block.code.data();
  const SInstr* in = nullptr;
  std::size_t pc = 0;

  for (;;) {
    try {
#if !ASP_JIT_THREADED
    dispatch:
      in = &code[pc];
      ++pc;
      switch (in->op) {
#else
      VM_DISPATCH();
#endif
        VM_CASE(kConst) : stack.push_back(*in->k);
        VM_DISPATCH();
        VM_CASE(kLoadLocal) : stack.push_back(locals[static_cast<std::size_t>(in->a)]);
        VM_DISPATCH();
        VM_CASE(kStoreLocal) : {
          locals[static_cast<std::size_t>(in->a)] = std::move(stack.back());
          stack.pop_back();
        }
        VM_DISPATCH();
        VM_CASE(kLoadGlobal) : stack.push_back(globals_[static_cast<std::size_t>(in->a)]);
        VM_DISPATCH();
        VM_CASE(kJump) : pc = static_cast<std::size_t>(in->a);
        VM_DISPATCH();
        VM_CASE(kJumpIfFalse) : {
          bool c = stack.back().as_bool();
          stack.pop_back();
          if (!c) pc = static_cast<std::size_t>(in->a);
        }
        VM_DISPATCH();
        VM_CASE(kJumpIfTrue) : {
          bool c = stack.back().as_bool();
          stack.pop_back();
          if (c) pc = static_cast<std::size_t>(in->a);
        }
        VM_DISPATCH();
        VM_CASE(kPop) : stack.pop_back();
        VM_DISPATCH();
        VM_CASE(kDup) : stack.push_back(stack.back());
        VM_DISPATCH();
        VM_CASE(kMakeTuple) : {
          std::size_t n = static_cast<std::size_t>(in->a);
          if (n == 2) {
            // Pairs dominate ASP tuples; scalar pairs store inline in the
            // Value (no shared_ptr<vector>, no allocation).
            Value second = std::move(stack.back());
            stack.pop_back();
            Value first = std::move(stack.back());
            stack.pop_back();
            stack.push_back(Value::of_pair(std::move(first), std::move(second)));
          } else {
            TupleRep t = Value::make_tuple_storage(n);
            t->assign(std::make_move_iterator(stack.end() - static_cast<std::ptrdiff_t>(n)),
                      std::make_move_iterator(stack.end()));
            stack.resize(stack.size() - n);
            stack.push_back(Value::of_tuple_rep(std::move(t)));
          }
        }
        VM_DISPATCH();
        VM_CASE(kProj) : {
          Value t = std::move(stack.back());
          stack.pop_back();
          stack.push_back(t.tuple_at(static_cast<std::size_t>(in->a)));
        }
        VM_DISPATCH();
        VM_CASE(kCallPrim) : {
          std::size_t n = static_cast<std::size_t>(in->b);
          scratch_args.assign(stack.end() - static_cast<std::ptrdiff_t>(n),
                              stack.end());
          stack.resize(stack.size() - n);
          stack.push_back(in->prim->fn(env_, scratch_args));
        }
        VM_DISPATCH();
        VM_CASE(kCallFun) : {
          std::size_t n = static_cast<std::size_t>(in->b);
          const JitBlock& fb = functions_[static_cast<std::size_t>(in->a)];
          Buffers& fbuf = buffer_at(depth_);
          fbuf.locals.resize(static_cast<std::size_t>(
              std::max<int>(fb.frame_slots, static_cast<int>(n))));
          for (std::size_t k = 0; k < n; ++k) {
            fbuf.locals[n - 1 - k] = std::move(stack.back());
            stack.pop_back();
          }
          stack.push_back(run_block(fb, fbuf));
        }
        VM_DISPATCH();
        VM_CASE(kAdd) : {
          std::int64_t b2 = stack.back().as_int();
          stack.pop_back();
          stack.back() = Value::of_int(stack.back().as_int() + b2);
        }
        VM_DISPATCH();
        VM_CASE(kSub) : {
          std::int64_t b2 = stack.back().as_int();
          stack.pop_back();
          stack.back() = Value::of_int(stack.back().as_int() - b2);
        }
        VM_DISPATCH();
        VM_CASE(kMul) : {
          std::int64_t b2 = stack.back().as_int();
          stack.pop_back();
          stack.back() = Value::of_int(stack.back().as_int() * b2);
        }
        VM_DISPATCH();
        VM_CASE(kDiv) : {
          std::int64_t b2 = stack.back().as_int();
          stack.pop_back();
          if (b2 == 0) throw PlanPException{"DivByZero"};
          stack.back() = Value::of_int(stack.back().as_int() / b2);
        }
        VM_DISPATCH();
        VM_CASE(kMod) : {
          std::int64_t b2 = stack.back().as_int();
          stack.pop_back();
          if (b2 == 0) throw PlanPException{"DivByZero"};
          stack.back() = Value::of_int(stack.back().as_int() % b2);
        }
        VM_DISPATCH();
        VM_CASE(kEq) : {
          Value b2 = std::move(stack.back());
          stack.pop_back();
          stack.back() = Value::of_bool(stack.back().equals(b2));
        }
        VM_DISPATCH();
        VM_CASE(kNe) : {
          Value b2 = std::move(stack.back());
          stack.pop_back();
          stack.back() = Value::of_bool(!stack.back().equals(b2));
        }
        VM_DISPATCH();
        VM_CASE(kLt) : VM_CASE(kLe) : VM_CASE(kGt) : VM_CASE(kGe) : {
          Value b2 = std::move(stack.back());
          stack.pop_back();
          int cmp = compare_values(stack.back(), b2);
          bool r = in->op == jop::kLt   ? cmp < 0
                   : in->op == jop::kLe ? cmp <= 0
                   : in->op == jop::kGt ? cmp > 0
                                        : cmp >= 0;
          stack.back() = Value::of_bool(r);
        }
        VM_DISPATCH();
        VM_CASE(kConcat) : {
          std::string b2 = stack.back().as_string();
          stack.pop_back();
          stack.back() = Value::of_string(stack.back().as_string() + b2);
        }
        VM_DISPATCH();
        VM_CASE(kNot) : stack.back() = Value::of_bool(!stack.back().as_bool());
        VM_DISPATCH();
        VM_CASE(kNeg) : stack.back() = Value::of_int(-stack.back().as_int());
        VM_DISPATCH();
        VM_CASE(kRaise) : throw PlanPException{in->k->as_string()};
        VM_CASE(kTryPush) : tries.push_back(TryFrame{in->a, stack.size()});
        VM_DISPATCH();
        VM_CASE(kTryPop) : tries.pop_back();
        VM_DISPATCH();
        VM_CASE(kSend) : {
          Value pkt = std::move(stack.back());
          stack.pop_back();
          // in->b holds the channel id interned at specialization time.
          switch (static_cast<SendKind>(in->a)) {
            case SendKind::kOnRemote:
              env_.on_remote(static_cast<std::uint32_t>(in->b), pkt);
              break;
            case SendKind::kOnNeighbor:
              env_.on_neighbor(static_cast<std::uint32_t>(in->b), pkt);
              break;
            case SendKind::kDeliver: env_.deliver(pkt); break;
            case SendKind::kDrop: env_.drop(); break;
          }
        }
        VM_DISPATCH();
        VM_CASE(kReturn) : return std::move(stack.back());

        // --- superinstructions --------------------------------------------------
        VM_CASE(kProjLocal) : stack.push_back(
            locals[static_cast<std::size_t>(in->a)]
                .tuple_at(static_cast<std::size_t>(in->b)));
        VM_DISPATCH();
        VM_CASE(kMoveField) : {
          int field = in->b & 0xFFFF;
          int dst = in->b >> 16;
          locals[static_cast<std::size_t>(dst)] =
              locals[static_cast<std::size_t>(in->a)]
                  .tuple_at(static_cast<std::size_t>(field));
        }
        VM_DISPATCH();
        VM_CASE(kCallPrim1L) : {
          scratch_args.assign(1, locals[static_cast<std::size_t>(in->a)]);
          stack.push_back(in->prim->fn(env_, scratch_args));
        }
        VM_DISPATCH();
        VM_CASE(kEqConst) : stack.back() = Value::of_bool(stack.back().equals(*in->k));
        VM_DISPATCH();
        VM_CASE(kReturnLocal) : return locals[static_cast<std::size_t>(in->a)];
        VM_CASE(kSendConst) : {
          switch (static_cast<SendKind>(in->a)) {
            case SendKind::kOnRemote:
              env_.on_remote(static_cast<std::uint32_t>(in->b), *in->k);
              break;
            case SendKind::kOnNeighbor:
              env_.on_neighbor(static_cast<std::uint32_t>(in->b), *in->k);
              break;
            case SendKind::kDeliver: env_.deliver(*in->k); break;
            case SendKind::kDrop: env_.drop(); break;
          }
        }
        VM_DISPATCH();
        VM_CASE(kAddConstLocal) : stack.push_back(Value::of_int(
            locals[static_cast<std::size_t>(in->a)].as_int() + in->k->as_int()));
        VM_DISPATCH();
        VM_CASE(kReturnPairLocal) : {
          Value first = std::move(stack.back());
          stack.pop_back();
          return Value::of_pair(std::move(first),
                                locals[static_cast<std::size_t>(in->a)]);
        }

#if !ASP_JIT_THREADED
        default:
          throw EvalBug{"jit: bad opcode"};
      }
#endif
    } catch (const PlanPException&) {
      if (tries.empty()) throw;
      TryFrame t = tries.back();
      tries.pop_back();
      stack.resize(t.stack_depth);
      pc = static_cast<std::size_t>(t.handler_pc);
    }
  }
}

#undef VM_DISPATCH
#undef VM_CASE

}  // namespace asp::planp
