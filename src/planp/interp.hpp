// PLAN-P execution engines.
//
// `Engine` is the common interface: given a channel and the current states,
// process one packet and return the (protocol state, channel state) pair.
// Three implementations exist, mirroring the paper's architecture:
//   * Interp (this header)        — portable AST interpreter,
//   * VmEngine (compile.hpp)      — bytecode VM, the compilation IR,
//   * JitEngine (jit.hpp)         — run-time-specialized threaded code,
//                                    the analog of the Tempo-generated JIT.
#pragma once

#include <memory>
#include <vector>

#include "mem/pool.hpp"
#include "planp/primitives.hpp"
#include "planp/typecheck.hpp"
#include "planp/value.hpp"

namespace asp::planp {

class Engine {
 public:
  virtual ~Engine() = default;

  /// Evaluates channel `chan_idx`'s initstate expression (or a type-default).
  virtual Value init_state(int chan_idx) = 0;

  /// Runs one packet through channel `chan_idx`. Returns the (ps, ss) pair.
  /// A PLAN-P exception escaping the channel propagates as PlanPException.
  virtual Value run_channel(int chan_idx, const Value& ps, const Value& ss,
                            const Value& packet) = 0;

  /// An install-time-prepared dispatch handle for one channel: run() is the
  /// per-packet fast path with the channel lookup already resolved, so a
  /// batch dispatcher enters the engine once per run of same-channel packets
  /// without re-indexing (DESIGN.md §6c). The engine owns the handle; it
  /// stays valid for the engine's lifetime.
  class Channel {
   public:
    virtual ~Channel() = default;
    /// True when the channel body can observe its packet argument. When
    /// false the caller may pass Value{} for `packet` — the match-action
    /// dispatcher then skips payload materialization entirely (match-only
    /// classification, the P4 shape: parse only what the action reads).
    virtual bool packet_used() const { return true; }
    /// Semantics of Engine::run_channel for the prepared channel.
    virtual Value run(const Value& ps, const Value& ss, const Value& packet) = 0;
  };

  /// The prepared handle for `chan_idx`. The default implementation wraps
  /// run_channel; engines with a cheaper entry point override it.
  virtual Channel* channel(int chan_idx);

  virtual const CheckedProgram& program() const = 0;
  virtual const char* engine_name() const = 0;

 private:
  std::vector<std::unique_ptr<Channel>> default_channels_;
};

/// Tree-walking interpreter over the type-annotated AST.
class Interp : public Engine {
 public:
  /// Evaluates top-level `val` definitions immediately (program load time).
  Interp(const CheckedProgram& prog, EnvApi& env);

  Value init_state(int chan_idx) override;
  Value run_channel(int chan_idx, const Value& ps, const Value& ss,
                    const Value& packet) override;
  const CheckedProgram& program() const override { return prog_; }
  const char* engine_name() const override { return "interp"; }

  /// Evaluates a bare expression with no locals (tests).
  Value eval_expr(const Expr& e);

  /// Value of the idx-th top-level `val` (computed at construction).
  const Value& global(int idx) const { return globals_.at(static_cast<std::size_t>(idx)); }

 private:
  /// A view of the current call's slot vector. The storage itself lives in
  /// the depth-indexed FrameArena and is reused call after call — entering a
  /// call costs a clear+resize of a warm vector, not an allocation.
  struct Frame {
    std::vector<Value>& slots;
  };

  Value eval(const Expr& e, Frame& f);
  Value call_function(const FunDef& fun, mem::FrameArena<Value>::Frame& fr);

  const CheckedProgram& prog_;
  EnvApi& env_;
  std::vector<Value> globals_;
  mem::FrameArena<Value> arena_;
  std::size_t depth_ = 0;
};

}  // namespace asp::planp
