// AST -> bytecode compiler and the plain bytecode VM.
//
// The bytecode is the intermediate form the run-time specializer (jit.hpp)
// consumes. The VM here uses portable switch dispatch and exists both as a
// middle performance point and as a semantics cross-check for the JIT.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "planp/interp.hpp"
#include "planp/typecheck.hpp"

namespace asp::planp {

enum class Op : std::uint8_t {
  kConst,        // push consts[a]
  kLoadLocal,    // push locals[a]
  kStoreLocal,   // locals[a] = pop
  kLoadGlobal,   // push globals[a]
  kJump,         // pc = a
  kJumpIfFalse,  // if !pop then pc = a
  kJumpIfTrue,   // if pop then pc = a
  kPop,          // discard top
  kDup,          // duplicate top
  kMakeTuple,    // pop a values, push tuple
  kProj,         // push pop.tuple[a]  (a is 0-based)
  kCallPrim,     // push prim[a](pop b args)
  kCallFun,      // push fun[a](pop b args)
  kBinOp,        // a = BinCode
  kNot,
  kNeg,
  kRaise,        // throw PlanPException{consts[a].string}
  kTryPush,      // push handler at pc=a
  kTryPop,       // leave protected region
  kSend,         // a = SendKind, b = const idx of channel name; pops packet
  kReturn,       // return pop
};

enum class BinCode : std::int32_t {
  kAdd, kSub, kMul, kDiv, kMod, kEq, kNe, kLt, kLe, kGt, kGe, kConcat,
};

struct Instr {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

struct CodeBlock {
  std::vector<Instr> code;
  int frame_slots = 0;
  int max_stack = 0;  // conservative bound, set by the compiler
};

/// A fully compiled protocol.
struct CompiledProgram {
  const CheckedProgram* source = nullptr;
  std::vector<Value> consts;
  /// Interned net::ChannelTags ids, parallel to `consts`: const_tags[b] is
  /// the tag of the channel name consts[b] names, filled at kSend emission.
  /// The VM sends by integer id, so the packet path never hashes a name
  /// (the JIT goes one step further and patches the id into the template).
  std::vector<std::uint32_t> const_tags;
  std::vector<CodeBlock> global_inits;    // one per top-level val
  std::vector<CodeBlock> functions;       // per user function
  std::vector<CodeBlock> channel_bodies;  // per channel
  std::vector<CodeBlock> channel_inits;   // empty code => default_value(ss)

  std::size_t total_instructions() const;
};

/// Compiles a checked program. Pure; no EnvApi needed.
CompiledProgram compile(const CheckedProgram& prog);

/// Switch-dispatch bytecode VM.
class VmEngine : public Engine {
 public:
  /// Runs the global initializers immediately.
  VmEngine(const CompiledProgram& prog, EnvApi& env);

  Value init_state(int chan_idx) override;
  Value run_channel(int chan_idx, const Value& ps, const Value& ss,
                    const Value& packet) override;
  const CheckedProgram& program() const override { return *prog_.source; }
  const char* engine_name() const override { return "bytecode"; }

 private:
  /// Executes `block` in arena frame `fr`: fr.locals must be prepared by the
  /// caller; fr.stack is the operand stack (cleared here). Frames come from
  /// the depth-indexed arena, so steady-state calls allocate nothing.
  Value run_block(const CodeBlock& block, mem::FrameArena<Value>::Frame& fr);

  const CompiledProgram& prog_;
  EnvApi& env_;
  std::vector<Value> globals_;
  mem::FrameArena<Value> arena_;
  std::size_t depth_ = 0;
};

}  // namespace asp::planp
