// CacheStore: the bounded LRU/TTL object cache behind the PLAN-P cache*
// primitives (DESIGN.md §6i).
//
// The paper's ASPs keep per-router state in PLAN-P hash tables; an HTTP edge
// cache needs a harder primitive — bounded residency, recency eviction and
// freshness — so the store lives in C++ behind EnvApi and PLAN-P sees only
// integer keys and blob bodies. One store per runtime (per node), so state is
// shard-confined like the node itself and sharded runs stay deterministic.
//
// Memory discipline: all steady-state structures (slot array, probe index,
// LRU links) are sized once by configure(); bodies are pooled net::Buffer
// references, so a fill retains the packet's payload buffer and an eviction
// returns it to the shard-local buffer pool (src/mem) — no allocator traffic
// per operation, preserving the 0-alloc/packet budget and `spills==0`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"

namespace asp::planp {

class CacheStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;  // capacity (LRU) evictions
    std::uint64_t expired = 0;    // TTL lapses observed by lookup/store
  };

  /// `metric_prefix` names the obs mirror ("cache/<node>"); empty = counters
  /// kept locally only (tests, NullEnv).
  explicit CacheStore(std::string metric_prefix = "");

  /// Sizes the store: at most `max_entries` resident objects, each fresh for
  /// `ttl_ms` after its fill (ttl_ms <= 0: never expires). Reconfiguring
  /// clears residency but keeps counters. Entry count is clamped to
  /// [1, kMaxEntries] — the verifier's cost bound assumes O(1) operations,
  /// so the probe table must stay small enough to build at install time.
  void configure(std::size_t max_entries, std::int64_t ttl_ms);

  /// The body filled under `key` if present and fresh at `now_ms`, else
  /// nullptr. A hit promotes the entry to most-recently-used; a stale entry
  /// counts as `expired` (and is dropped), not as a plain miss.
  const net::Buffer* lookup(std::uint64_t key, std::int64_t now_ms);

  /// Fills `key` with `body` (refcounted alias, no copy), evicting the
  /// least-recently-used entry if the store is full. Refilling an existing
  /// key replaces the body and refreshes its TTL.
  void store(std::uint64_t key, net::Buffer body, std::int64_t now_ms);

  /// Freshness probe without LRU promotion or hit/miss accounting.
  bool contains(std::uint64_t key, std::int64_t now_ms) const;

  std::size_t size() const { return live_; }
  std::size_t capacity() const { return slots_.size(); }
  const Stats& stats() const { return stats_; }
  void clear();

  /// Hard ceiling on configure()'s entry count (keeps install-time setup and
  /// the per-op cost the verifier assumes honest).
  static constexpr std::size_t kMaxEntries = 1 << 20;

  // --- cache-key hashing (FNV-1a, same constants as the topology digest) ----
  static std::uint64_t fnv1a(const void* bytes, std::size_t len,
                             std::uint64_t seed = 14695981039346656037ull);
  /// Key for a textual HTTP request line: method + host + path.
  static std::uint64_t key_of(const std::string& method, std::uint32_t host_bits,
                              const std::string& path);
  /// Key for a binary object id served by `host_bits` (scenario wire format).
  static std::uint64_t key_of(std::uint64_t object_id, std::uint32_t host_bits);

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Entry {
    std::uint64_t key = 0;
    std::int64_t expire_ms = 0;  // absolute deadline; <0 = never
    net::Buffer body;
    std::uint32_t prev = kNil;  // toward MRU
    std::uint32_t next = kNil;  // toward LRU
  };

  std::uint32_t find_slot(std::uint64_t key) const;  // kNil if absent
  void index_insert(std::uint64_t key, std::uint32_t slot);
  void index_erase(std::uint64_t key);  // backward-shift deletion
  void lru_unlink(std::uint32_t slot);
  void lru_push_front(std::uint32_t slot);
  void evict_slot(std::uint32_t slot);  // unlink + release body + free
  bool fresh(const Entry& e, std::int64_t now_ms) const {
    return e.expire_ms < 0 || now_ms <= e.expire_ms;
  }

  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_;    // recycled slot ids
  std::vector<std::uint32_t> index_;   // open-addressed key -> slot (kNil empty)
  std::uint64_t index_mask_ = 0;
  std::uint32_t lru_head_ = kNil;  // most recently used
  std::uint32_t lru_tail_ = kNil;  // least recently used
  std::size_t live_ = 0;
  std::int64_t ttl_ms_ = 0;  // <=0: never expires

  Stats stats_;
  // obs mirrors (<prefix>/{hits,misses,fills,evictions,expired}), cached at
  // construction like AspRuntime's; null when metric_prefix was empty.
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_fills_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_expired_ = nullptr;
};

}  // namespace asp::planp
