#include "planp/disasm.hpp"
#include <cstdarg>

#include <cstdio>

namespace asp::planp {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "Const";
    case Op::kLoadLocal: return "LoadLocal";
    case Op::kStoreLocal: return "StoreLocal";
    case Op::kLoadGlobal: return "LoadGlobal";
    case Op::kJump: return "Jump";
    case Op::kJumpIfFalse: return "JumpIfFalse";
    case Op::kJumpIfTrue: return "JumpIfTrue";
    case Op::kPop: return "Pop";
    case Op::kDup: return "Dup";
    case Op::kMakeTuple: return "MakeTuple";
    case Op::kProj: return "Proj";
    case Op::kCallPrim: return "CallPrim";
    case Op::kCallFun: return "CallFun";
    case Op::kBinOp: return "BinOp";
    case Op::kNot: return "Not";
    case Op::kNeg: return "Neg";
    case Op::kRaise: return "Raise";
    case Op::kTryPush: return "TryPush";
    case Op::kTryPop: return "TryPop";
    case Op::kSend: return "Send";
    case Op::kReturn: return "Return";
  }
  return "?";
}

const char* jop_name(std::int32_t op) {
  switch (op) {
    case jop::kConst: return "Const";
    case jop::kLoadLocal: return "LoadLocal";
    case jop::kStoreLocal: return "StoreLocal";
    case jop::kLoadGlobal: return "LoadGlobal";
    case jop::kJump: return "Jump";
    case jop::kJumpIfFalse: return "JumpIfFalse";
    case jop::kJumpIfTrue: return "JumpIfTrue";
    case jop::kPop: return "Pop";
    case jop::kDup: return "Dup";
    case jop::kMakeTuple: return "MakeTuple";
    case jop::kProj: return "Proj";
    case jop::kCallPrim: return "CallPrim";
    case jop::kCallFun: return "CallFun";
    case jop::kNot: return "Not";
    case jop::kNeg: return "Neg";
    case jop::kRaise: return "Raise";
    case jop::kTryPush: return "TryPush";
    case jop::kTryPop: return "TryPop";
    case jop::kSend: return "Send";
    case jop::kReturn: return "Return";
    case jop::kAdd: return "Add";
    case jop::kSub: return "Sub";
    case jop::kMul: return "Mul";
    case jop::kDiv: return "Div";
    case jop::kMod: return "Mod";
    case jop::kEq: return "Eq";
    case jop::kNe: return "Ne";
    case jop::kLt: return "Lt";
    case jop::kLe: return "Le";
    case jop::kGt: return "Gt";
    case jop::kGe: return "Ge";
    case jop::kConcat: return "Concat";
    case jop::kProjLocal: return "ProjLocal*";
    case jop::kMoveField: return "MoveField*";
    case jop::kCallPrim1L: return "CallPrim1L*";
    case jop::kEqConst: return "EqConst*";
    case jop::kReturnLocal: return "ReturnLocal*";
    case jop::kSendConst: return "SendConst*";
    case jop::kAddConstLocal: return "AddConstLocal*";
    case jop::kReturnPairLocal: return "ReturnPairLocal*";
  }
  return "?";
}

namespace {

const char* bin_name(BinCode c) {
  switch (c) {
    case BinCode::kAdd: return "+";
    case BinCode::kSub: return "-";
    case BinCode::kMul: return "*";
    case BinCode::kDiv: return "/";
    case BinCode::kMod: return "%";
    case BinCode::kEq: return "=";
    case BinCode::kNe: return "<>";
    case BinCode::kLt: return "<";
    case BinCode::kLe: return "<=";
    case BinCode::kGt: return ">";
    case BinCode::kGe: return ">=";
    case BinCode::kConcat: return "^";
  }
  return "?";
}

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list args;
  va_start(args, f);
  std::vsnprintf(buf, sizeof buf, f, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string disassemble(const CodeBlock& block, const CompiledProgram& prog) {
  std::string out;
  for (std::size_t i = 0; i < block.code.size(); ++i) {
    const Instr& in = block.code[i];
    out += fmt("%4zu: %-12s", i, op_name(in.op));
    switch (in.op) {
      case Op::kConst:
      case Op::kRaise:
        out += fmt(" %d  ; %s", in.a,
                   prog.consts[static_cast<std::size_t>(in.a)].str().c_str());
        break;
      case Op::kLoadLocal:
      case Op::kStoreLocal:
      case Op::kLoadGlobal:
      case Op::kMakeTuple:
      case Op::kProj:
        out += fmt(" %d", in.a);
        break;
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
      case Op::kTryPush:
        out += fmt(" -> %d", in.a);
        break;
      case Op::kCallPrim:
        out += fmt(" %s/%d", Primitives::instance().at(in.a).name.c_str(), in.b);
        break;
      case Op::kCallFun:
        out += fmt(" fun#%d/%d", in.a, in.b);
        break;
      case Op::kBinOp:
        out += fmt(" %s", bin_name(static_cast<BinCode>(in.a)));
        break;
      case Op::kSend:
        out += fmt(" kind=%d chan=%s", in.a,
                   prog.consts[static_cast<std::size_t>(in.b)].str().c_str());
        break;
      default:
        break;
    }
    out += '\n';
  }
  return out;
}

std::string disassemble(const CompiledProgram& prog) {
  std::string out;
  const CheckedProgram* src = prog.source;
  for (std::size_t i = 0; i < prog.functions.size(); ++i) {
    out += "fun " +
           (src != nullptr ? src->functions[i]->name : "#" + std::to_string(i)) +
           " (slots=" + std::to_string(prog.functions[i].frame_slots) + "):\n";
    out += disassemble(prog.functions[i], prog);
  }
  for (std::size_t i = 0; i < prog.channel_bodies.size(); ++i) {
    std::string name = src != nullptr ? src->channels[i]->name : "#" + std::to_string(i);
    std::string type = src != nullptr ? src->channels[i]->packet_type->str() : "?";
    out += "channel " + name + " (" + type +
           ", slots=" + std::to_string(prog.channel_bodies[i].frame_slots) + "):\n";
    out += disassemble(prog.channel_bodies[i], prog);
  }
  return out;
}

std::string disassemble(const JitBlock& block) {
  std::string out;
  for (std::size_t i = 0; i < block.code.size(); ++i) {
    const SInstr& in = block.code[i];
    out += fmt("%4zu: %-12s", i, jop_name(in.op));
    switch (in.op) {
      case jop::kConst:
      case jop::kEqConst:
      case jop::kRaise:
        out += fmt(" ; %s", in.k != nullptr ? in.k->str().c_str() : "?");
        break;
      case jop::kJump:
      case jop::kJumpIfFalse:
      case jop::kJumpIfTrue:
      case jop::kTryPush:
        out += fmt(" -> %d", in.a);
        break;
      case jop::kCallPrim:
      case jop::kCallPrim1L:
        out += fmt(" %s", in.prim != nullptr ? in.prim->name.c_str() : "?");
        if (in.op == jop::kCallPrim1L) out += fmt("(local %d)", in.a);
        break;
      case jop::kCallFun:
        out += fmt(" fun#%d/%d", in.a, in.b);
        break;
      case jop::kProjLocal:
        out += fmt(" local %d field %d", in.a, in.b);
        break;
      case jop::kMoveField:
        out += fmt(" local %d field %d -> local %d", in.a, in.b & 0xFFFF, in.b >> 16);
        break;
      case jop::kLoadLocal:
      case jop::kStoreLocal:
      case jop::kLoadGlobal:
      case jop::kMakeTuple:
      case jop::kProj:
      case jop::kReturnLocal:
        out += fmt(" %d", in.a);
        break;
      case jop::kSend:
        out += fmt(" kind=%d chan=%s", in.a,
                   in.k != nullptr ? in.k->str().c_str() : "?");
        break;
      case jop::kSendConst:
        out += fmt(" kind=%d tag=%d ; %s", in.a, in.b,
                   in.k != nullptr ? in.k->str().c_str() : "?");
        break;
      case jop::kAddConstLocal:
        out += fmt(" local %d ; %s", in.a,
                   in.k != nullptr ? in.k->str().c_str() : "?");
        break;
      case jop::kReturnPairLocal:
        out += fmt(" local %d", in.a);
        break;
      default:
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace asp::planp
