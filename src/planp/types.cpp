#include "planp/types.hpp"

namespace asp::planp {

bool Type::equals(const Type& o) const {
  if (kind_ != o.kind_) return false;
  if (kind_ == Kind::kVar) return var_id_ == o.var_id_;
  if (args_.size() != o.args_.size()) return false;
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (!args_[i]->equals(*o.args_[i])) return false;
  }
  return true;
}

std::string Type::str() const {
  switch (kind_) {
    case Kind::kInt: return "int";
    case Kind::kBool: return "bool";
    case Kind::kChar: return "char";
    case Kind::kString: return "string";
    case Kind::kUnit: return "unit";
    case Kind::kHost: return "host";
    case Kind::kBlob: return "blob";
    case Kind::kIp: return "ip";
    case Kind::kTcp: return "tcp";
    case Kind::kUdp: return "udp";
    case Kind::kChan: return "chan";
    case Kind::kTuple: {
      std::string s;
      for (std::size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) s += '*';
        bool paren = args_[i]->is_tuple();
        if (paren) s += '(';
        s += args_[i]->str();
        if (paren) s += ')';
      }
      return s;
    }
    case Kind::kTable:
      return "(" + args_[0]->str() + ", " + args_[1]->str() + ") hash_table";
    case Kind::kVar:
      return "'" + std::string(1, static_cast<char>('a' + var_id_ % 26));
    case Kind::kBottom:
      return "_|_";
  }
  return "?";
}

namespace {
TypePtr make_base(Type::Kind k) { return std::make_shared<Type>(k); }
}  // namespace

#define BASE_SINGLETON(Name, K)                        \
  TypePtr Type::Name() {                               \
    static const TypePtr t = make_base(Type::Kind::K); \
    return t;                                          \
  }

BASE_SINGLETON(Int, kInt)
BASE_SINGLETON(Bool, kBool)
BASE_SINGLETON(Char, kChar)
BASE_SINGLETON(String, kString)
BASE_SINGLETON(Unit, kUnit)
BASE_SINGLETON(Host, kHost)
BASE_SINGLETON(Blob, kBlob)
BASE_SINGLETON(Ip, kIp)
BASE_SINGLETON(Tcp, kTcp)
BASE_SINGLETON(Udp, kUdp)
BASE_SINGLETON(Chan, kChan)
BASE_SINGLETON(Bottom, kBottom)
#undef BASE_SINGLETON

TypePtr Type::Var(int id) {
  return std::make_shared<Type>(Kind::kVar, std::vector<TypePtr>{}, id);
}

TypePtr Type::Tuple(std::vector<TypePtr> elems) {
  return std::make_shared<Type>(Kind::kTuple, std::move(elems));
}

TypePtr Type::Table(TypePtr key, TypePtr value) {
  return std::make_shared<Type>(Kind::kTable,
                                std::vector<TypePtr>{std::move(key), std::move(value)});
}

bool is_key_type(const TypePtr& t) {
  switch (t->kind()) {
    case Type::Kind::kInt:
    case Type::Kind::kBool:
    case Type::Kind::kChar:
    case Type::Kind::kString:
    case Type::Kind::kHost:
      return true;
    case Type::Kind::kTuple:
      for (const auto& e : t->args()) {
        if (!is_key_type(e)) return false;
      }
      return true;
    default:
      return false;
  }
}

bool is_equality_type(const TypePtr& t) {
  if (is_key_type(t)) return true;
  return t->is(Type::Kind::kUnit);
}

bool is_packet_type(const TypePtr& t) {
  if (!t->is_tuple() || t->args().empty()) return false;
  const auto& parts = t->args();
  if (!parts[0]->is(Type::Kind::kIp)) return false;
  std::size_t i = 1;
  if (i < parts.size() &&
      (parts[i]->is(Type::Kind::kTcp) || parts[i]->is(Type::Kind::kUdp))) {
    ++i;
  }
  // Remaining parts: scalar payload fields, with an optional trailing blob.
  for (; i < parts.size(); ++i) {
    switch (parts[i]->kind()) {
      case Type::Kind::kChar:
      case Type::Kind::kInt:
      case Type::Kind::kBool:
        break;
      case Type::Kind::kBlob:
        return i == parts.size() - 1;  // blob swallows the rest
      default:
        return false;
    }
  }
  return true;
}

}  // namespace asp::planp
