// Safety analyses (paper §2.1).
//
// Four properties, checked at download time ("late checking"):
//  1. Local termination — holds by construction: the grammar has no loops and
//     the checker only resolves calls to previously-defined functions, so the
//     call graph is a DAG. Reported for completeness.
//  2. Global termination — packets must not cycle through the network.
//     We explore the abstract state space (channel, abstract destination),
//     the paper's r*d*2^d exploration: a potential cycle that *rewrites* the
//     destination is rejected; destination-preserving cycles are fine because
//     each hop makes progress under acyclic IP routing.
//  3. Guaranteed delivery — every terminating execution path performs a
//     forward/deliver, and no PLAN-P exception can escape unhandled.
//  4. Linear packet duplication — fix-point over channels: on every execution
//     path, at most one emitted packet reaches a channel that can itself emit.
//
// All analyses are conservative: "false" means "could not prove", not
// "violates" (the paper: privileged users may load unverified protocols).
#pragma once

#include <string>

#include "planp/typecheck.hpp"

namespace asp::planp {

struct AnalysisReport {
  bool local_termination = false;
  bool global_termination = false;
  bool guaranteed_delivery = false;
  bool linear_duplication = false;

  std::string global_termination_detail;
  std::string delivery_detail;
  std::string duplication_detail;

  /// States visited by the global-termination exploration (§2.1's r*d*2^d).
  int states_explored = 0;
  /// Iterations used by the duplication fix-point.
  int fixpoint_iterations = 0;

  /// The gate a router applies before accepting a download. Delivery is
  /// advisory (some protocols legitimately drop); termination and duplication
  /// are mandatory, as in the paper.
  bool accepted() const {
    return local_termination && global_termination && linear_duplication;
  }
  bool fully_verified() const { return accepted() && guaranteed_delivery; }
};

/// Runs all four analyses.
AnalysisReport analyze(const CheckedProgram& prog);

}  // namespace asp::planp
