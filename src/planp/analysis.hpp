// Safety analyses (paper §2.1).
//
// Four properties, checked at download time ("late checking"):
//  1. Local termination — holds by construction: the grammar has no loops and
//     the checker only resolves calls to previously-defined functions, so the
//     call graph is a DAG. Reported for completeness.
//  2. Global termination — packets must not cycle through the network.
//     We explore the abstract state space (channel, abstract destination),
//     the paper's r*d*2^d exploration: a potential cycle that *rewrites* the
//     destination is rejected; destination-preserving cycles are fine because
//     each hop makes progress under acyclic IP routing.
//  3. Guaranteed delivery — every terminating execution path performs a
//     forward/deliver, and no PLAN-P exception can escape unhandled.
//  4. Linear packet duplication — fix-point over channels: on every execution
//     path, at most one emitted packet reaches a channel that can itself emit.
//  5. Bounded per-packet cost — every primitive carries an abstract work
//     weight (Primitive::cost: 1 for scalar ops, up to 64 for payload-sized
//     ones like the audio transcoders or cacheConfigure); the worst-case sum
//     along any execution path of a channel body must fit kCostBudget. With
//     no loops this is a max-over-branches/sum-over-sequences walk, the cost
//     analogue of the duplication count. Keeps a stateful ASP (e.g. the HTTP
//     edge cache) from hiding unbounded per-packet work behind primitives.
//
// All analyses are conservative: "false" means "could not prove", not
// "violates" (the paper: privileged users may load unverified protocols).
#pragma once

#include <string>

#include "planp/typecheck.hpp"

namespace asp::planp {

struct AnalysisReport {
  /// Per-packet work-unit ceiling a channel may not exceed (analysis 5).
  /// Sized so the heaviest legitimate ASP (two audio transcodes plus
  /// bookkeeping, or a cache lookup/fill pair with a header rewrite) passes
  /// with an order of magnitude to spare.
  static constexpr int kCostBudget = 1024;

  bool local_termination = false;
  bool global_termination = false;
  bool guaranteed_delivery = false;
  bool linear_duplication = false;
  bool cost_bounded = false;

  std::string global_termination_detail;
  std::string delivery_detail;
  std::string duplication_detail;
  std::string cost_detail;

  /// States visited by the global-termination exploration (§2.1's r*d*2^d).
  int states_explored = 0;
  /// Iterations used by the duplication fix-point.
  int fixpoint_iterations = 0;
  /// Worst-case work units of any channel body (analysis 5).
  int max_channel_cost = 0;

  /// The gate a router applies before accepting a download. Delivery is
  /// advisory (some protocols legitimately drop); termination, duplication
  /// and the cost bound are mandatory, as in the paper.
  bool accepted() const {
    return local_termination && global_termination && linear_duplication &&
           cost_bounded;
  }
  bool fully_verified() const { return accepted() && guaranteed_delivery; }
};

/// Runs all four analyses.
AnalysisReport analyze(const CheckedProgram& prog);

}  // namespace asp::planp
