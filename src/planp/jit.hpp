// Run-time specializer: the JIT analog of the paper's Tempo pipeline.
//
// The paper generates a JIT automatically from the interpreter by partial
// evaluation: at download time, pre-compiled machine-code *templates* are
// assembled and patched with the program's constants. We reproduce the same
// architecture one level up: at download time each bytecode block is
// specialized into threaded code whose instruction templates have
//   * pre-resolved handler addresses (computed-goto labels / fn dispatch),
//   * constants patched in as direct pointers (no pool indirection),
//   * primitive entry points resolved to function pointers,
//   * common instruction sequences fused into superinstructions
//     (e.g. `val iph : ip = #1 p` becomes one MoveField template).
// Code generation is therefore a cheap linear pass — the property Figure 3
// of the paper measures.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "planp/compile.hpp"

namespace asp::planp {

/// Specialized instruction: a patched template.
struct SInstr {
  std::int32_t op;  // JOp
  std::int32_t a = 0;
  std::int32_t b = 0;
  const Value* k = nullptr;       // patched constant
  const Primitive* prim = nullptr;  // patched primitive entry point
  // Pre-resolved dispatch target: the address of this op's handler label
  // inside run_block (direct threading, GCC/Clang labels-as-values). Patched
  // by the JitEngine at specialization time; null until then, and unused when
  // the portable switch fallback is compiled (ASP_NO_COMPUTED_GOTO).
  const void* handler = nullptr;
};

/// Specialized ops. The first block mirrors Op; the rest are superinstructions
/// and split arithmetic templates.
namespace jop {
enum : std::int32_t {
  kConst,
  kLoadLocal,
  kStoreLocal,
  kLoadGlobal,
  kJump,
  kJumpIfFalse,
  kJumpIfTrue,
  kPop,
  kDup,
  kMakeTuple,
  kProj,
  kCallPrim,
  kCallFun,
  kNot,
  kNeg,
  kRaise,
  kTryPush,
  kTryPop,
  kSend,
  kReturn,
  // split binary ops (template per operator)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kConcat,
  // superinstructions
  kProjLocal,    // push locals[a].tuple[b]
  kMoveField,    // locals[b] = locals[a].tuple[k->int]  (fused let-projection)
  kCallPrim1L,   // push prim(locals[a])
  kEqConst,      // top = (top == *k)
  kReturnLocal,  // return locals[a]
  kSendConst,      // send(*k) with kind a / channel tag b, no stack traffic
  kAddConstLocal,  // push locals[a] + *k
  kReturnPairLocal,  // return (pop(), locals[a])
  kCount,
};
}  // namespace jop

struct JitBlock {
  std::vector<SInstr> code;
  int frame_slots = 0;
  int max_stack = 0;
};

/// Statistics from one specialization run (Figure 3 reporting).
struct CodegenStats {
  double generation_ms = 0;      // wall time of the specialization pass
  std::size_t input_instrs = 0;  // bytecode instructions consumed
  std::size_t output_instrs = 0; // templates emitted (after fusion)
  std::size_t code_bytes = 0;    // output_instrs * sizeof(SInstr)
  int source_lines = 0;
};

/// Specializes one bytecode block. `fuse` disables superinstruction fusion
/// (ablation: constants and primitives are still patched in).
JitBlock specialize_block(const CodeBlock& block, const CompiledProgram& prog,
                          bool fuse = true);

/// The JIT execution engine: specializes the whole program at construction
/// (this is "code generation time") and runs channels on specialized code.
class JitEngine : public Engine {
 public:
  /// `fuse=false` disables superinstruction fusion (ablation studies).
  JitEngine(const CompiledProgram& prog, EnvApi& env, bool fuse = true);
  ~JitEngine() override;  // out of line: PreparedChannel is incomplete here

  Value init_state(int chan_idx) override;
  Value run_channel(int chan_idx, const Value& ps, const Value& ss,
                    const Value& packet) override;
  /// Prepared handle with the body block pre-resolved and the packet-use
  /// flag computed (a body that never reads its packet local lets the
  /// dispatcher skip payload decoding — match-only classification).
  Channel* channel(int chan_idx) override;
  const CheckedProgram& program() const override { return *prog_.source; }
  const char* engine_name() const override { return "jit"; }

  const CodegenStats& codegen_stats() const { return stats_; }

 private:
  /// Per-call-depth execution frames (locals/stack/args) on a shared arena:
  /// warm vectors reused packet after packet, no per-call allocation (part of
  /// what run-time specialization buys the paper). The arena exports
  /// mem/jit_frames/* pool metrics and supports poison scribbling.
  using Buffers = mem::FrameArena<Value>::Frame;

  /// Executes one specialized block. With `table_out` non-null the call is a
  /// pure query: it writes the handler label table (indexed by jop, or null
  /// when built with the switch fallback) and returns immediately — this is
  /// how the constructor obtains the addresses it patches into SInstr.
  Value run_block(const JitBlock& block, Buffers& buf,
                  const void* const** table_out = nullptr);
  Buffers& buffer_at(int depth);
  /// run_channel with the body block already resolved (prepared channels).
  Value run_channel_body(const JitBlock& b, const Value& ps, const Value& ss,
                         const Value& packet);

  class PreparedChannel;

  const CompiledProgram& prog_;
  EnvApi& env_;
  std::vector<Value> globals_;
  std::vector<JitBlock> functions_;
  std::vector<JitBlock> channel_bodies_;
  std::vector<JitBlock> channel_inits_;
  std::vector<std::unique_ptr<PreparedChannel>> prepared_;
  mem::FrameArena<Value> arena_;
  int depth_ = 0;
  CodegenStats stats_;
};

}  // namespace asp::planp
