#include "planp/analysis.hpp"

#include <chrono>
#include <map>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "planp/primitives.hpp"

namespace asp::planp {

namespace {

// ---------------------------------------------------------------------------
// Abstract destinations for the global-termination exploration.
// ---------------------------------------------------------------------------

struct AHost {
  enum Kind { kOrigDst, kOrigSrc, kThis, kLit, kTop } kind = kTop;
  asp::net::Ipv4Addr lit;

  bool operator<(const AHost& o) const {
    if (kind != o.kind) return kind < o.kind;
    return lit < o.lit;
  }
  bool operator==(const AHost& o) const { return kind == o.kind && lit == o.lit; }
  std::string str() const {
    switch (kind) {
      case kOrigDst: return "dst";
      case kOrigSrc: return "src";
      case kThis: return "this";
      case kLit: return "lit:" + lit.str();
      case kTop: return "?";
    }
    return "?";
  }
};

/// Abstract value of an expression, tracking just enough to know what an
/// outgoing packet's IP destination is.
struct AbsVal {
  enum Kind {
    kPacketIn,    // the incoming packet tuple, unmodified
    kHdrIn,       // the incoming IP header, unmodified
    kHdrWithDst,  // an IP header whose dst is `host`
    kHost,        // a host value
    kOther,
  } kind = kOther;
  AHost host;

  static AbsVal other() { return {}; }
};

/// One packet emission found in a channel.
struct SendSite {
  std::string target_channel;  // empty for deliver/drop
  SendKind kind;
  AHost dst;  // where the emitted packet is headed
};

/// Walks expressions, computing abstract values and collecting send sites.
/// Function calls are inlined (the call graph is a DAG, so this terminates).
class AbsScanner {
 public:
  explicit AbsScanner(const CheckedProgram& prog) : prog_(prog) {}

  std::vector<SendSite> scan_channel(const ChannelDef& c) {
    sends_.clear();
    std::map<int, AbsVal> env;
    env[2] = AbsVal{AbsVal::kPacketIn, {}};  // slot 2 = packet parameter
    eval(*c.body, env);
    return std::move(sends_);
  }

 private:
  AbsVal eval(const Expr& e, std::map<int, AbsVal>& env) {
    using K = Expr::Kind;
    switch (e.kind) {
      case K::kHostLit:
        return AbsVal{AbsVal::kHost, AHost{AHost::kLit, e.host_val}};
      case K::kVar: {
        if (is_local_var(e.var_slot)) {
          auto it = env.find(e.var_slot);
          if (it != env.end()) return it->second;
        }
        return AbsVal::other();
      }
      case K::kLet: {
        AbsVal v = eval(*e.args[0], env);
        auto saved = env.find(e.var_slot) != env.end()
                         ? std::optional<AbsVal>(env[e.var_slot])
                         : std::nullopt;
        env[e.var_slot] = v;
        AbsVal r = eval(*e.args[1], env);
        if (saved) {
          env[e.var_slot] = *saved;
        } else {
          env.erase(e.var_slot);
        }
        return r;
      }
      case K::kIf: {
        eval(*e.args[0], env);
        AbsVal a = eval(*e.args[1], env);
        AbsVal b = eval(*e.args[2], env);
        if (a.kind == b.kind && a.host == b.host) return a;
        return AbsVal::other();
      }
      case K::kSeq: {
        AbsVal last = AbsVal::other();
        for (const auto& a : e.args) last = eval(*a, env);
        return last;
      }
      case K::kProj: {
        AbsVal t = eval(*e.args[0], env);
        if (t.kind == AbsVal::kPacketIn && e.proj_index == 1) {
          return AbsVal{AbsVal::kHdrIn, {}};
        }
        return AbsVal::other();
      }
      case K::kTuple: {
        // A packet literal: its "identity" for send purposes is its header.
        AbsVal first = AbsVal::other();
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          AbsVal v = eval(*e.args[i], env);
          if (i == 0) first = v;
        }
        if (first.kind == AbsVal::kHdrIn || first.kind == AbsVal::kHdrWithDst) {
          return first;
        }
        return AbsVal::other();
      }
      case K::kCall: {
        std::vector<AbsVal> args;
        args.reserve(e.args.size());
        for (const auto& a : e.args) args.push_back(eval(*a, env));
        if (is_primitive_call(e.call_target)) {
          return eval_primitive(e.name, args);
        }
        // Inline the user function.
        const FunDef& f =
            *prog_.functions[static_cast<std::size_t>(user_fun_index(e.call_target))];
        std::map<int, AbsVal> fenv;
        for (std::size_t i = 0; i < args.size(); ++i) {
          fenv[static_cast<int>(i)] = args[i];
        }
        return eval(f.body != nullptr ? *f.body : *e.args[0], fenv);
      }
      case K::kTry: {
        AbsVal a = eval(*e.args[0], env);
        AbsVal b = eval(*e.args[1], env);
        if (a.kind == b.kind && a.host == b.host) return a;
        return AbsVal::other();
      }
      case K::kSend: {
        SendSite site;
        site.kind = e.send_kind;
        site.target_channel = e.name;
        site.dst = AHost{AHost::kTop, {}};
        if (!e.args.empty()) {
          AbsVal pkt = eval(*e.args[0], env);
          if (pkt.kind == AbsVal::kPacketIn || pkt.kind == AbsVal::kHdrIn) {
            site.dst = AHost{AHost::kOrigDst, {}};
          } else if (pkt.kind == AbsVal::kHdrWithDst) {
            site.dst = pkt.host;
          }
        }
        if (e.send_kind == SendKind::kOnRemote || e.send_kind == SendKind::kOnNeighbor) {
          sends_.push_back(site);
        }
        return AbsVal::other();
      }
      default: {
        for (const auto& a : e.args) eval(*a, env);
        return AbsVal::other();
      }
    }
  }

  AbsVal eval_primitive(const std::string& name, const std::vector<AbsVal>& args) {
    if (name == "ipDestSet" && args.size() == 2 &&
        (args[0].kind == AbsVal::kHdrIn || args[0].kind == AbsVal::kHdrWithDst)) {
      if (args[1].kind == AbsVal::kHost) {
        return AbsVal{AbsVal::kHdrWithDst, args[1].host};
      }
      return AbsVal{AbsVal::kHdrWithDst, AHost{AHost::kTop, {}}};
    }
    if (name == "ipSrcSet" && !args.empty()) return args[0];  // dst untouched
    if (name == "ipTosSet" && !args.empty()) return args[0];
    if (name == "ipSrc" && !args.empty() && args[0].kind == AbsVal::kHdrIn) {
      return AbsVal{AbsVal::kHost, AHost{AHost::kOrigSrc, {}}};
    }
    if (name == "ipDst" && !args.empty() && args[0].kind == AbsVal::kHdrIn) {
      return AbsVal{AbsVal::kHost, AHost{AHost::kOrigDst, {}}};
    }
    if (name == "thisHost") {
      return AbsVal{AbsVal::kHost, AHost{AHost::kThis, {}}};
    }
    return AbsVal::other();
  }

  const CheckedProgram& prog_;
  std::vector<SendSite> sends_;
};

// ---------------------------------------------------------------------------
// Global termination: explore (channel, abstract dst) states.
// ---------------------------------------------------------------------------

struct TerminationResult {
  bool ok;
  std::string detail;
  int states;
};

TerminationResult check_global_termination(
    const CheckedProgram& prog,
    const std::vector<std::vector<SendSite>>& channel_sends) {
  struct State {
    int chan;
    AHost dst;
    bool operator<(const State& o) const {
      if (chan != o.chan) return chan < o.chan;
      return dst < o.dst;
    }
  };
  struct Edge {
    State to;
    bool changed;
  };

  // Applies a send's destination effect to a current abstract destination.
  auto step = [](const AHost& cur, const AHost& send_dst) -> std::pair<AHost, bool> {
    switch (send_dst.kind) {
      case AHost::kOrigDst:
        return {cur, false};  // destination preserved: progress under routing
      case AHost::kLit:
        return {send_dst, !(cur == send_dst)};
      case AHost::kOrigSrc:
      case AHost::kThis:
      case AHost::kTop:
        return {send_dst, true};  // conservative: may redirect every hop
    }
    return {send_dst, true};
  };

  std::map<State, std::vector<Edge>> graph;
  std::vector<State> work;
  auto touch = [&](const State& s) {
    if (graph.emplace(s, std::vector<Edge>{}).second) work.push_back(s);
  };
  for (std::size_t c = 0; c < prog.channels.size(); ++c) {
    touch(State{static_cast<int>(c), AHost{AHost::kOrigDst, {}}});
  }
  while (!work.empty()) {
    State s = work.back();
    work.pop_back();
    for (const SendSite& send : channel_sends[static_cast<std::size_t>(s.chan)]) {
      auto it = prog.channels_by_name.find(send.target_channel);
      if (it == prog.channels_by_name.end()) continue;
      auto [ndst, changed] = step(s.dst, send.dst);
      for (int target : it->second) {
        State t{target, ndst};
        touch(t);
        graph[s].push_back(Edge{t, changed});
      }
    }
  }

  // A violation is a reachable cycle containing a destination-changing edge.
  // DFS-based: for each changed edge u->v, check whether u is reachable from v.
  auto reaches = [&](const State& from, const State& to) {
    std::set<State> seen;
    std::vector<State> stack{from};
    while (!stack.empty()) {
      State s = stack.back();
      stack.pop_back();
      if (s.chan == to.chan && s.dst == to.dst) return true;
      if (!seen.insert(s).second) continue;
      for (const Edge& e : graph[s]) stack.push_back(e.to);
    }
    return false;
  };

  for (const auto& [u, edges] : graph) {
    for (const Edge& e : edges) {
      if (e.changed && reaches(e.to, u)) {
        const ChannelDef& c = *prog.channels[static_cast<std::size_t>(u.chan)];
        return {false,
                "potential packet cycle through channel '" + c.name +
                    "' (destination rewritten to " + e.to.dst.str() +
                    " inside a loop)",
                static_cast<int>(graph.size())};
      }
    }
  }
  return {true, "no destination-rewriting cycles", static_cast<int>(graph.size())};
}

// ---------------------------------------------------------------------------
// Guaranteed delivery.
// ---------------------------------------------------------------------------

class DeliveryAnalysis {
 public:
  explicit DeliveryAnalysis(const CheckedProgram& prog) : prog_(prog) {
    fun_raise_.resize(prog.functions.size());
    fun_sends_.resize(prog.functions.size());
    for (std::size_t i = 0; i < prog.functions.size(); ++i) {
      fun_raise_[i] = may_raise(*prog.functions[i]->body);
      fun_sends_[i] = delivered(*prog.functions[i]->body);
    }
  }

  bool may_raise(const Expr& e) {
    using K = Expr::Kind;
    switch (e.kind) {
      case K::kRaise:
        return true;
      case K::kTry:
        // The protected part's raises are caught; the handler's are not.
        return may_raise(*e.args[1]);
      case K::kBinOp:
        if (e.name == "/" || e.name == "%") {
          // Constant non-zero divisor is safe.
          const Expr& d = *e.args[1];
          bool const_nonzero = d.kind == K::kIntLit && d.int_val != 0;
          if (!const_nonzero) return true;
        }
        break;
      case K::kCall:
        if (is_primitive_call(e.call_target)) {
          if (Primitives::instance().at(e.call_target).may_raise) return true;
        } else if (fun_raise_[static_cast<std::size_t>(user_fun_index(e.call_target))]) {
          return true;
        }
        break;
      default:
        break;
    }
    for (const auto& a : e.args) {
      if (may_raise(*a)) return true;
    }
    return false;
  }

  /// True if every normally-terminating execution of `e` emits at least one
  /// OnRemote/OnNeighbor/deliver.
  bool delivered(const Expr& e) {
    using K = Expr::Kind;
    switch (e.kind) {
      case K::kSend:
        return e.send_kind != SendKind::kDrop;
      case K::kIf:
        return delivered(*e.args[0]) ||
               (delivered(*e.args[1]) && delivered(*e.args[2]));
      case K::kTry:
        return delivered(*e.args[0]) &&
               (!may_raise(*e.args[0]) || delivered(*e.args[1]));
      case K::kAnd:
      case K::kOr:
        return delivered(*e.args[0]);  // second operand may be skipped
      case K::kCall:
        if (!is_primitive_call(e.call_target) &&
            fun_sends_[static_cast<std::size_t>(user_fun_index(e.call_target))]) {
          return true;
        }
        break;
      default:
        break;
    }
    for (const auto& a : e.args) {
      if (delivered(*a)) return true;
    }
    return false;
  }

 private:
  const CheckedProgram& prog_;
  std::vector<bool> fun_raise_;
  std::vector<bool> fun_sends_;
};

// ---------------------------------------------------------------------------
// Linear duplication.
// ---------------------------------------------------------------------------

class DuplicationAnalysis {
 public:
  explicit DuplicationAnalysis(const CheckedProgram& prog) : prog_(prog) {
    fun_max_sends_.resize(prog.functions.size(), 0);
    for (std::size_t i = 0; i < prog.functions.size(); ++i) {
      fun_max_sends_[i] = max_sends(*prog.functions[i]->body);
    }
  }

  /// Max packets emitted along any single execution path (saturating at 2).
  int max_sends(const Expr& e) {
    using K = Expr::Kind;
    auto cap = [](int v) { return std::min(v, 2); };
    switch (e.kind) {
      case K::kSend: {
        int self = (e.send_kind == SendKind::kOnRemote ||
                    e.send_kind == SendKind::kOnNeighbor)
                       ? 1
                       : 0;
        int inner = e.args.empty() ? 0 : max_sends(*e.args[0]);
        return cap(self + inner);
      }
      case K::kIf:
        return cap(max_sends(*e.args[0]) +
                   std::max(max_sends(*e.args[1]), max_sends(*e.args[2])));
      case K::kTry:
        // Conservative: sends before the raise plus the handler's.
        return cap(max_sends(*e.args[0]) + max_sends(*e.args[1]));
      case K::kCall: {
        int n = 0;
        for (const auto& a : e.args) n += max_sends(*a);
        if (!is_primitive_call(e.call_target)) {
          n += fun_max_sends_[static_cast<std::size_t>(user_fun_index(e.call_target))];
        }
        return cap(n);
      }
      default: {
        int n = 0;
        for (const auto& a : e.args) n += max_sends(*a);
        return cap(n);
      }
    }
  }

 private:
  const CheckedProgram& prog_;
  std::vector<int> fun_max_sends_;
};

// ---------------------------------------------------------------------------
// Bounded per-packet cost.
// ---------------------------------------------------------------------------

class CostAnalysis {
 public:
  explicit CostAnalysis(const CheckedProgram& prog) : prog_(prog) {
    fun_cost_.resize(prog.functions.size(), 0);
    for (std::size_t i = 0; i < prog.functions.size(); ++i) {
      fun_cost_[i] = cost(*prog.functions[i]->body);
    }
  }

  /// Worst-case abstract work along any single execution path: every AST node
  /// costs 1 (interpreter/VM step), primitives add their declared weight,
  /// emissions add a fixed routing charge. Max over if-branches, sum over
  /// sequences; try conservatively pays protected part plus handler. Calls
  /// inline the callee's precomputed cost — the call graph is a DAG, so this
  /// mirrors DuplicationAnalysis and terminates.
  int cost(const Expr& e) {
    using K = Expr::Kind;
    // Saturate well past any budget so deep sums cannot overflow int.
    auto cap = [](long long v) {
      return static_cast<int>(std::min<long long>(v, 1 << 28));
    };
    long long n = 1;
    switch (e.kind) {
      case K::kIf:
        return cap(1 + cost(*e.args[0]) +
                   std::max(cost(*e.args[1]), cost(*e.args[2])));
      case K::kTry:
        return cap(1 + cost(*e.args[0]) + cost(*e.args[1]));
      case K::kCall: {
        for (const auto& a : e.args) n += cost(*a);
        if (is_primitive_call(e.call_target)) {
          n += Primitives::instance().at(e.call_target).cost;
        } else {
          n += fun_cost_[static_cast<std::size_t>(user_fun_index(e.call_target))];
        }
        return cap(n);
      }
      case K::kSend: {
        constexpr int kEmitCost = 4;  // route lookup + enqueue
        n += e.send_kind == SendKind::kDrop ? 0 : kEmitCost;
        for (const auto& a : e.args) n += cost(*a);
        return cap(n);
      }
      default: {
        for (const auto& a : e.args) n += cost(*a);
        return cap(n);
      }
    }
  }

 private:
  const CheckedProgram& prog_;
  std::vector<int> fun_cost_;
};

}  // namespace

AnalysisReport analyze(const CheckedProgram& prog) {
  auto t0 = std::chrono::steady_clock::now();
  AnalysisReport report;

  // 1. Local termination: structural — no loops in the grammar, and the type
  // checker only binds calls to earlier definitions, so this is by
  // construction. (A defensive re-check of the call encoding costs nothing.)
  report.local_termination = true;

  // Collect send sites per channel once.
  AbsScanner scanner(prog);
  std::vector<std::vector<SendSite>> channel_sends;
  channel_sends.reserve(prog.channels.size());
  for (const ChannelDef* c : prog.channels) {
    channel_sends.push_back(scanner.scan_channel(*c));
  }

  // 2. Global termination.
  TerminationResult term = check_global_termination(prog, channel_sends);
  report.global_termination = term.ok;
  report.global_termination_detail = term.detail;
  report.states_explored = term.states;

  // 3. Guaranteed delivery.
  DeliveryAnalysis delivery(prog);
  report.guaranteed_delivery = true;
  for (const ChannelDef* c : prog.channels) {
    if (delivery.may_raise(*c->body)) {
      report.guaranteed_delivery = false;
      report.delivery_detail = "channel '" + c->name + "' may raise an unhandled exception";
      break;
    }
    if (!delivery.delivered(*c->body)) {
      report.guaranteed_delivery = false;
      report.delivery_detail =
          "channel '" + c->name + "' has an execution path that drops the packet";
      break;
    }
  }
  if (report.guaranteed_delivery) {
    report.delivery_detail = "all paths forward or deliver; all exceptions handled";
  }

  // 4. Linear duplication: no duplicating channel may sit on a cycle of the
  // channel send-graph. Reachability is computed as a boolean fix-point (the
  // paper: at most 2^c iterations; in practice a handful).
  DuplicationAnalysis dup(prog);
  std::size_t n = prog.channels.size();
  std::vector<int> multi(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    multi[i] = dup.max_sends(*prog.channels[i]->body) >= 2;
  }
  // edges[i][j]: channel i can emit a packet handled by channel j.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (const SendSite& s : channel_sends[i]) {
      auto it = prog.channels_by_name.find(s.target_channel);
      if (it == prog.channels_by_name.end()) continue;
      for (int j : it->second) reach[i][static_cast<std::size_t>(j)] = true;
    }
  }
  // Transitive closure as a fix-point.
  int iterations = 0;
  for (bool changed = true; changed;) {
    changed = false;
    ++iterations;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!reach[i][j]) continue;
        for (std::size_t k = 0; k < n; ++k) {
          if (reach[j][k] && !reach[i][k]) {
            reach[i][k] = true;
            changed = true;
          }
        }
      }
    }
  }
  report.fixpoint_iterations = iterations;
  report.linear_duplication = true;
  report.duplication_detail = "no duplicating channel on a send cycle";
  for (std::size_t i = 0; i < n; ++i) {
    if (multi[i] && reach[i][i]) {
      report.linear_duplication = false;
      report.duplication_detail = "channel '" + prog.channels[i]->name +
                                  "' duplicates packets inside a send cycle";
      break;
    }
  }

  // 5. Bounded per-packet cost: the heaviest channel body must fit the budget.
  CostAnalysis coster(prog);
  report.max_channel_cost = 0;
  std::string costliest;
  for (const ChannelDef* c : prog.channels) {
    int units = coster.cost(*c->body);
    if (units > report.max_channel_cost) {
      report.max_channel_cost = units;
      costliest = c->name;
    }
  }
  report.cost_bounded = report.max_channel_cost <= AnalysisReport::kCostBudget;
  if (prog.channels.empty()) {
    report.cost_detail = "no channels";
  } else {
    report.cost_detail = "channel '" + costliest + "' worst-case " +
                         std::to_string(report.max_channel_cost) + " units (" +
                         (report.cost_bounded ? "within" : "exceeds") +
                         " budget " + std::to_string(AnalysisReport::kCostBudget) +
                         ")";
  }

  // The verifier-cost story (§2.1): every analysis run reports its wall time
  // and explored-state count into the registry.
  obs::MetricsRegistry& reg = obs::registry();
  reg.histogram("planp/verify/analyze_us")
      .observe(std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - t0)
                   .count());
  reg.counter("planp/verify/runs").inc();
  reg.counter("planp/verify/states_explored")
      .inc(static_cast<std::uint64_t>(report.states_explored));
  if (!report.accepted()) reg.counter("planp/verify/gate_rejections").inc();

  return report;
}

}  // namespace asp::planp
