// PLAN-P type checker.
//
// Monomorphic and bidirectional: declared types on `val` bindings, function
// signatures and channel parameters are propagated inward, which is what lets
// polymorphic-looking primitives (mkTable, tableGet, ...) resolve without a
// full inference engine. The checker also:
//   * resolves calls (user functions take precedence over primitives),
//   * enforces the no-recursion rule (a function may only call functions
//     defined before it — the basis of the local-termination guarantee),
//   * assigns frame slots to locals and indices to globals for the compiler,
//   * validates channel packet types and overloaded channels.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "planp/ast.hpp"

namespace asp::planp {

/// A type-checked program with resolved references. Produced by typecheck();
/// consumed by the analyses, the interpreter and the compiler.
struct CheckedProgram {
  Program program;

  // Pointers into program.decls, in declaration order.
  std::vector<ValDef*> globals;
  std::vector<FunDef*> functions;
  std::vector<ChannelDef*> channels;

  /// Channel-name -> indices into `channels` (overloaded channels share one).
  std::unordered_map<std::string, std::vector<int>> channels_by_name;

  const ChannelDef* channel(int idx) const { return channels.at(idx); }
};

/// Checks `p`, filling in Expr::type / call_target / var_slot annotations.
/// Throws PlanPError with a source location on any type error.
CheckedProgram typecheck(Program p);

/// Encoding of Expr::call_target: >= 0 is a primitive index,
/// < 0 is a user function: index = -call_target - 1.
inline bool is_primitive_call(int call_target) { return call_target >= 0; }
inline int user_fun_index(int call_target) { return -call_target - 1; }
inline int encode_user_fun(int fun_index) { return -fun_index - 1; }

/// Encoding of Expr::var_slot: >= 0 is a local frame slot,
/// < 0 is a global: index = -var_slot - 1.
inline bool is_local_var(int var_slot) { return var_slot >= 0; }
inline int global_index(int var_slot) { return -var_slot - 1; }
inline int encode_global(int g) { return -g - 1; }

}  // namespace asp::planp
