#include "planp/typecheck.hpp"

#include <map>

#include "planp/primitives.hpp"

namespace asp::planp {

namespace {

bool is_bottom(const TypePtr& t) { return t->is(Type::Kind::kBottom); }

/// Equal, or one side is bottom (raise unifies with anything).
bool compatible(const TypePtr& a, const TypePtr& b) {
  return is_bottom(a) || is_bottom(b) || a->equals(*b);
}

/// Picks the more informative of two compatible types.
TypePtr join(const TypePtr& a, const TypePtr& b) { return is_bottom(a) ? b : a; }

bool contains_var(const TypePtr& t) {
  if (t->is(Type::Kind::kVar)) return true;
  for (const auto& a : t->args()) {
    if (contains_var(a)) return true;
  }
  return false;
}

using Subst = std::map<int, TypePtr>;

TypePtr substitute(const TypePtr& t, const Subst& s) {
  if (t->is(Type::Kind::kVar)) {
    auto it = s.find(t->var_id());
    return it != s.end() ? it->second : t;
  }
  if (t->args().empty()) return t;
  std::vector<TypePtr> args;
  args.reserve(t->args().size());
  bool changed = false;
  for (const auto& a : t->args()) {
    TypePtr sub = substitute(a, s);
    changed = changed || sub != a;
    args.push_back(std::move(sub));
  }
  if (!changed) return t;
  return std::make_shared<Type>(t->kind(), std::move(args), t->var_id());
}

/// One-way unification: variables occur only in `pat`.
bool unify(const TypePtr& pat, const TypePtr& actual, Subst& s) {
  if (pat->is(Type::Kind::kVar)) {
    auto it = s.find(pat->var_id());
    if (it != s.end()) return it->second->equals(*actual);
    s[pat->var_id()] = actual;
    return true;
  }
  if (is_bottom(actual)) return true;  // raise fits any slot
  if (pat->kind() != actual->kind()) return false;
  if (pat->args().size() != actual->args().size()) return false;
  for (std::size_t i = 0; i < pat->args().size(); ++i) {
    if (!unify(pat->args()[i], actual->args()[i], s)) return false;
  }
  return true;
}

struct LocalBinding {
  std::string name;
  TypePtr type;
  int slot;
};

struct GlobalBinding {
  TypePtr type;
  int index;
};

class Checker {
 public:
  explicit Checker(Program p) { checked_.program = std::move(p); }

  CheckedProgram run() {
    collect_decls();
    for (auto& d : checked_.program.decls) {
      if (auto* v = std::get_if<ValDef>(&d)) {
        check_val(*v);
      } else if (auto* f = std::get_if<FunDef>(&d)) {
        check_fun(*f);
      } else {
        check_channel(std::get<ChannelDef>(d));
      }
    }
    return std::move(checked_);
  }

 private:
  [[noreturn]] void fail(Loc loc, const std::string& msg) {
    throw PlanPError("type", loc, msg);
  }

  void collect_decls() {
    // Channels are visible program-wide (OnRemote may target a channel
    // defined later); values and functions strictly earlier-only.
    for (auto& d : checked_.program.decls) {
      if (auto* c = std::get_if<ChannelDef>(&d)) {
        if (!is_packet_type(c->packet_type)) {
          fail(c->loc, "channel '" + c->name + "' packet type " +
                           c->packet_type->str() +
                           " is not a valid packet type (want ip [*tcp|*udp] "
                           "[*scalar fields] [*blob])");
        }
        int idx = static_cast<int>(checked_.channels.size());
        checked_.channels.push_back(c);
        auto& overloads = checked_.channels_by_name[c->name];
        for (int prev : overloads) {
          if (checked_.channels[prev]->packet_type->equals(*c->packet_type)) {
            fail(c->loc, "duplicate channel '" + c->name +
                             "' with identical packet type " +
                             c->packet_type->str());
          }
        }
        overloads.push_back(idx);
      }
    }
  }

  // --- declarations ----------------------------------------------------------
  void check_val(ValDef& v) {
    if (globals_.count(v.name) || fun_index_.count(v.name)) {
      fail(v.loc, "duplicate definition of '" + v.name + "'");
    }
    if (contains_var(v.type) || v.type->is(Type::Kind::kBottom)) {
      fail(v.loc, "invalid type annotation on '" + v.name + "'");
    }
    locals_.clear();
    next_slot_ = 0;
    max_slot_ = 0;
    check(*v.init, &v.type);
    int idx = static_cast<int>(checked_.globals.size());
    checked_.globals.push_back(&v);
    globals_[v.name] = GlobalBinding{v.type, idx};
  }

  void check_fun(FunDef& f) {
    if (globals_.count(f.name) || fun_index_.count(f.name)) {
      fail(f.loc, "duplicate definition of '" + f.name + "'");
    }
    if (Primitives::instance().known(f.name)) {
      fail(f.loc, "function '" + f.name + "' shadows a built-in primitive");
    }
    locals_.clear();
    next_slot_ = 0;
    max_slot_ = 0;
    for (const auto& [pname, ptype] : f.params) push_local(f.loc, pname, ptype);
    check(*f.body, &f.ret);
    f.frame_slots = max_slot_;
    // Visible to *later* definitions only: no recursion, no mutual recursion.
    int idx = static_cast<int>(checked_.functions.size());
    checked_.functions.push_back(&f);
    fun_index_[f.name] = idx;
  }

  void check_channel(ChannelDef& c) {
    locals_.clear();
    next_slot_ = 0;
    max_slot_ = 0;
    push_local(c.loc, c.ps_name, c.ps_type);
    push_local(c.loc, c.ss_name, c.ss_type);
    push_local(c.loc, c.p_name, c.packet_type);
    if (c.init_state != nullptr) {
      // initstate is evaluated in the global environment (no ps/ss/p); check
      // it in a fresh scope.
      std::vector<LocalBinding> saved;
      saved.swap(locals_);
      int saved_next = next_slot_;
      next_slot_ = 0;
      check(*c.init_state, &c.ss_type);
      locals_.swap(saved);
      next_slot_ = saved_next;
    }
    TypePtr result = Type::Tuple({c.ps_type, c.ss_type});
    check(*c.body, &result);
    c.frame_slots = max_slot_;
  }

  // --- scopes ----------------------------------------------------------------
  int push_local(Loc loc, const std::string& name, const TypePtr& type) {
    if (contains_var(type) || type->is(Type::Kind::kBottom)) {
      fail(loc, "invalid type annotation on '" + name + "'");
    }
    int slot = next_slot_++;
    max_slot_ = std::max(max_slot_, next_slot_);
    locals_.push_back(LocalBinding{name, type, slot});
    return slot;
  }

  void pop_local() {
    locals_.pop_back();
    --next_slot_;
  }

  // --- expression checking ----------------------------------------------------
  // Checks `e`, returns its type, enforces `expected` when non-null.
  TypePtr check(Expr& e, const TypePtr* expected) {
    TypePtr t = infer(e, expected);
    if (expected != nullptr && !compatible(t, *expected)) {
      fail(e.loc, "expected " + (*expected)->str() + ", found " + t->str());
    }
    e.type = (expected != nullptr && is_bottom(t)) ? *expected : t;
    return e.type;
  }

  TypePtr infer(Expr& e, const TypePtr* expected) {
    using K = Expr::Kind;
    switch (e.kind) {
      case K::kIntLit: return Type::Int();
      case K::kBoolLit: return Type::Bool();
      case K::kCharLit: return Type::Char();
      case K::kStringLit: return Type::String();
      case K::kHostLit: return Type::Host();
      case K::kUnitLit: return Type::Unit();
      case K::kVar: return check_var(e);
      case K::kLet: return check_let(e, expected);
      case K::kIf: return check_if(e, expected);
      case K::kSeq: {
        for (std::size_t i = 0; i + 1 < e.args.size(); ++i) {
          check(*e.args[i], nullptr);
        }
        return check(*e.args.back(), expected);
      }
      case K::kTuple: return check_tuple(e, expected);
      case K::kProj: return check_proj(e);
      case K::kCall: return check_call(e, expected);
      case K::kBinOp: return check_binop(e);
      case K::kUnOp: return check_unop(e);
      case K::kAnd:
      case K::kOr: {
        TypePtr b = Type::Bool();
        check(*e.args[0], &b);
        check(*e.args[1], &b);
        return b;
      }
      case K::kRaise: return Type::Bottom();
      case K::kTry: return check_try(e, expected);
      case K::kSend: return check_send(e);
    }
    fail(e.loc, "unreachable expression kind");
  }

  TypePtr check_var(Expr& e) {
    for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
      if (it->name == e.name) {
        e.var_slot = it->slot;
        return it->type;
      }
    }
    auto git = globals_.find(e.name);
    if (git != globals_.end()) {
      e.var_slot = encode_global(git->second.index);
      return git->second.type;
    }
    fail(e.loc, "unbound variable '" + e.name + "'");
  }

  TypePtr check_let(Expr& e, const TypePtr* expected) {
    check(*e.args[0], &e.decl_type);
    e.var_slot = push_local(e.loc, e.name, e.decl_type);
    TypePtr t = check(*e.args[1], expected);
    pop_local();
    return t;
  }

  TypePtr check_if(Expr& e, const TypePtr* expected) {
    TypePtr b = Type::Bool();
    check(*e.args[0], &b);
    if (expected != nullptr) {
      check(*e.args[1], expected);
      check(*e.args[2], expected);
      return *expected;
    }
    TypePtr t1 = check(*e.args[1], nullptr);
    TypePtr t2 = check(*e.args[2], nullptr);
    if (!compatible(t1, t2)) {
      fail(e.loc, "if branches have different types: " + t1->str() + " vs " +
                      t2->str());
    }
    return join(t1, t2);
  }

  TypePtr check_tuple(Expr& e, const TypePtr* expected) {
    const Type* want = nullptr;
    if (expected != nullptr && (*expected)->is_tuple() &&
        (*expected)->args().size() == e.args.size()) {
      want = expected->get();
    }
    std::vector<TypePtr> elems;
    elems.reserve(e.args.size());
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      const TypePtr* exp_i = want != nullptr ? &want->args()[i] : nullptr;
      elems.push_back(check(*e.args[i], exp_i));
    }
    return Type::Tuple(std::move(elems));
  }

  TypePtr check_proj(Expr& e) {
    TypePtr t = check(*e.args[0], nullptr);
    if (!t->is_tuple()) {
      fail(e.loc, "#" + std::to_string(e.proj_index) + " applied to non-tuple " +
                      t->str());
    }
    if (e.proj_index < 1 || e.proj_index > static_cast<int>(t->args().size())) {
      fail(e.loc, "#" + std::to_string(e.proj_index) + " out of range for " +
                      t->str());
    }
    return t->args()[static_cast<std::size_t>(e.proj_index - 1)];
  }

  TypePtr check_call(Expr& e, const TypePtr* expected) {
    // User functions first (they cannot shadow primitives; enforced above).
    auto fit = fun_index_.find(e.name);
    if (fit != fun_index_.end()) {
      const FunDef& f = *checked_.functions[static_cast<std::size_t>(fit->second)];
      if (f.params.size() != e.args.size()) {
        fail(e.loc, "function '" + e.name + "' expects " +
                        std::to_string(f.params.size()) + " arguments, got " +
                        std::to_string(e.args.size()));
      }
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        check(*e.args[i], &f.params[i].second);
      }
      e.call_target = encode_user_fun(fit->second);
      return f.ret;
    }

    const auto& overloads = Primitives::instance().overloads(e.name);
    if (overloads.empty()) {
      fail(e.loc, "unknown function or primitive '" + e.name + "'");
    }
    std::string attempts;
    for (int idx : overloads) {
      const Primitive& prim = Primitives::instance().at(idx);
      if (prim.params.size() != e.args.size()) continue;
      if (try_primitive(e, prim, expected)) {
        e.call_target = idx;
        return e.type;  // set by try_primitive
      }
      attempts += "\n  candidate: " + e.name + signature(prim);
    }
    fail(e.loc, "no matching overload for '" + e.name + "'" + attempts);
  }

  static std::string signature(const Primitive& p) {
    std::string s = "(";
    for (std::size_t i = 0; i < p.params.size(); ++i) {
      if (i > 0) s += ", ";
      s += p.params[i]->str();
    }
    return s + ") : " + p.ret->str();
  }

  bool try_primitive(Expr& e, const Primitive& prim, const TypePtr* expected) {
    // Probing can fail mid-expression (e.g. inside a let); snapshot the scope
    // so a failed attempt cannot leave dangling bindings behind.
    std::vector<LocalBinding> saved_locals = locals_;
    int saved_next = next_slot_;
    auto restore = [&] {
      locals_ = saved_locals;
      next_slot_ = saved_next;
    };
    Subst subst;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      TypePtr want = substitute(prim.params[i], subst);
      if (!contains_var(want)) {
        // Fully known: push it down (enables nested mkTable etc.). A failure
        // inside throws; convert into overload mismatch only when arity-safe:
        // primitives are few, so just let the error propagate if this is the
        // sole overload — otherwise probe non-destructively.
        try {
          check(*e.args[i], &want);
        } catch (const PlanPError&) {
          if (Primitives::instance().overloads(e.name).size() == 1) throw;
          restore();
          return false;
        }
      } else {
        TypePtr got = check(*e.args[i], nullptr);
        if (!unify(want, got, subst)) {
          restore();
          return false;
        }
      }
    }
    TypePtr ret = substitute(prim.ret, subst);
    if (contains_var(ret)) {
      if (expected != nullptr && unify(ret, *expected, subst)) {
        ret = substitute(ret, subst);
      }
      if (contains_var(ret)) {
        fail(e.loc, "cannot infer result type of '" + e.name +
                        "'; add a type annotation");
      }
    }
    e.type = ret;
    return true;
  }

  TypePtr check_binop(Expr& e) {
    const std::string& op = e.name;
    if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
      TypePtr i = Type::Int();
      check(*e.args[0], &i);
      check(*e.args[1], &i);
      return i;
    }
    if (op == "^") {
      TypePtr s = Type::String();
      check(*e.args[0], &s);
      check(*e.args[1], &s);
      return s;
    }
    TypePtr t1 = check(*e.args[0], nullptr);
    TypePtr t2 = check(*e.args[1], is_bottom(t1) ? nullptr : &t1);
    TypePtr t = join(t1, t2);
    if (op == "=" || op == "<>") {
      if (!is_equality_type(t)) {
        fail(e.loc, "'" + op + "' requires an equality type, found " + t->str());
      }
      return Type::Bool();
    }
    // Ordering comparisons.
    switch (t->kind()) {
      case Type::Kind::kInt:
      case Type::Kind::kChar:
      case Type::Kind::kString:
        return Type::Bool();
      default:
        fail(e.loc, "'" + op + "' requires int, char or string, found " + t->str());
    }
  }

  TypePtr check_unop(Expr& e) {
    if (e.name == "not") {
      TypePtr b = Type::Bool();
      check(*e.args[0], &b);
      return b;
    }
    TypePtr i = Type::Int();
    check(*e.args[0], &i);
    return i;
  }

  TypePtr check_try(Expr& e, const TypePtr* expected) {
    TypePtr t1 = check(*e.args[0], expected);
    const TypePtr* exp2 = expected;
    if (exp2 == nullptr && !is_bottom(t1)) exp2 = &t1;
    TypePtr t2 = check(*e.args[1], exp2);
    return join(t1, t2);
  }

  TypePtr check_send(Expr& e) {
    switch (e.send_kind) {
      case SendKind::kOnRemote:
      case SendKind::kOnNeighbor: {
        auto it = checked_.channels_by_name.find(e.name);
        if (it == checked_.channels_by_name.end()) {
          fail(e.loc, "unknown channel '" + e.name + "'");
        }
        const std::vector<int>& overloads = it->second;
        if (overloads.size() == 1) {
          const TypePtr& pt =
              checked_.channels[static_cast<std::size_t>(overloads[0])]->packet_type;
          check(*e.args[0], &pt);
        } else {
          TypePtr got = check(*e.args[0], nullptr);
          bool ok = false;
          for (int idx : overloads) {
            if (checked_.channels[static_cast<std::size_t>(idx)]
                    ->packet_type->equals(*got)) {
              ok = true;
              break;
            }
          }
          if (!ok) {
            fail(e.loc, "no overload of channel '" + e.name +
                            "' accepts packet type " + got->str());
          }
        }
        return Type::Unit();
      }
      case SendKind::kDeliver: {
        TypePtr t = check(*e.args[0], nullptr);
        if (!is_packet_type(t)) {
          fail(e.loc, "deliver() requires a packet value, found " + t->str());
        }
        return Type::Unit();
      }
      case SendKind::kDrop:
        return Type::Unit();
    }
    fail(e.loc, "unreachable send kind");
  }

  CheckedProgram checked_;
  std::vector<LocalBinding> locals_;
  std::unordered_map<std::string, GlobalBinding> globals_;
  std::unordered_map<std::string, int> fun_index_;
  int next_slot_ = 0;
  int max_slot_ = 0;
};

}  // namespace

CheckedProgram typecheck(Program p) { return Checker(std::move(p)).run(); }

}  // namespace asp::planp
