#include "planp/cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "planp/primitives.hpp"

namespace asp::planp {

CacheStore::CacheStore(std::string metric_prefix) {
  if (!metric_prefix.empty()) {
    obs::MetricsRegistry& reg = obs::registry();
    m_hits_ = &reg.counter(metric_prefix + "/hits");
    m_misses_ = &reg.counter(metric_prefix + "/misses");
    m_fills_ = &reg.counter(metric_prefix + "/fills");
    m_evictions_ = &reg.counter(metric_prefix + "/evictions");
    m_expired_ = &reg.counter(metric_prefix + "/expired");
  }
  configure(64, 0);  // small default; ASPs call cacheConfigure in initstate
}

void CacheStore::configure(std::size_t max_entries, std::int64_t ttl_ms) {
  max_entries = std::clamp<std::size_t>(max_entries, 1, kMaxEntries);
  ttl_ms_ = ttl_ms;
  slots_.assign(max_entries, Entry{});
  free_.clear();
  free_.reserve(max_entries);
  for (std::size_t i = max_entries; i-- > 0;) {
    free_.push_back(static_cast<std::uint32_t>(i));
  }
  // Probe table at most half full: power of two >= 2 * capacity.
  std::size_t buckets = std::bit_ceil(std::max<std::size_t>(4, max_entries * 2));
  index_.assign(buckets, kNil);
  index_mask_ = buckets - 1;
  lru_head_ = lru_tail_ = kNil;
  live_ = 0;
}

void CacheStore::clear() {
  configure(slots_.empty() ? 1 : slots_.size(), ttl_ms_);
}

std::uint64_t CacheStore::fnv1a(const void* bytes, std::size_t len,
                                std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t CacheStore::key_of(const std::string& method,
                                 std::uint32_t host_bits,
                                 const std::string& path) {
  // '\n' separators keep ("GET", "a/b") distinct from ("GETa", "/b").
  std::uint64_t h = fnv1a(method.data(), method.size());
  h = fnv1a("\n", 1, h);
  std::uint8_t hb[4] = {static_cast<std::uint8_t>(host_bits >> 24),
                        static_cast<std::uint8_t>(host_bits >> 16),
                        static_cast<std::uint8_t>(host_bits >> 8),
                        static_cast<std::uint8_t>(host_bits)};
  h = fnv1a(hb, sizeof hb, h);
  h = fnv1a("\n", 1, h);
  return fnv1a(path.data(), path.size(), h);
}

std::uint64_t CacheStore::key_of(std::uint64_t object_id,
                                 std::uint32_t host_bits) {
  std::uint8_t buf[12];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(object_id >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    buf[8 + i] = static_cast<std::uint8_t>(host_bits >> (8 * i));
  }
  return fnv1a(buf, sizeof buf);
}

std::uint32_t CacheStore::find_slot(std::uint64_t key) const {
  std::size_t i = key & index_mask_;
  while (index_[i] != kNil) {
    if (slots_[index_[i]].key == key) return index_[i];
    i = (i + 1) & index_mask_;
  }
  return kNil;
}

void CacheStore::index_insert(std::uint64_t key, std::uint32_t slot) {
  std::size_t i = key & index_mask_;
  while (index_[i] != kNil) i = (i + 1) & index_mask_;
  index_[i] = slot;
}

void CacheStore::index_erase(std::uint64_t key) {
  std::size_t i = key & index_mask_;
  while (index_[i] != kNil && slots_[index_[i]].key != key) {
    i = (i + 1) & index_mask_;
  }
  if (index_[i] == kNil) return;
  // Backward-shift deletion: close the probe run so later lookups never see
  // a tombstone (keeps probes short at any churn level).
  std::size_t hole = i;
  std::size_t j = (i + 1) & index_mask_;
  while (index_[j] != kNil) {
    std::size_t home = slots_[index_[j]].key & index_mask_;
    // Move j into the hole if its home position does not lie strictly after
    // the hole on the cyclic probe path home..j.
    bool movable = ((j - home) & index_mask_) >= ((j - hole) & index_mask_);
    if (movable) {
      index_[hole] = index_[j];
      hole = j;
    }
    j = (j + 1) & index_mask_;
  }
  index_[hole] = kNil;
}

void CacheStore::lru_unlink(std::uint32_t slot) {
  Entry& e = slots_[slot];
  if (e.prev != kNil) {
    slots_[e.prev].next = e.next;
  } else {
    lru_head_ = e.next;
  }
  if (e.next != kNil) {
    slots_[e.next].prev = e.prev;
  } else {
    lru_tail_ = e.prev;
  }
  e.prev = e.next = kNil;
}

void CacheStore::lru_push_front(std::uint32_t slot) {
  Entry& e = slots_[slot];
  e.prev = kNil;
  e.next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].prev = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNil) lru_tail_ = slot;
}

void CacheStore::evict_slot(std::uint32_t slot) {
  index_erase(slots_[slot].key);
  lru_unlink(slot);
  slots_[slot].body.reset();  // last reference returns storage to the pool
  free_.push_back(slot);
  --live_;
}

const net::Buffer* CacheStore::lookup(std::uint64_t key, std::int64_t now_ms) {
  std::uint32_t slot = find_slot(key);
  if (slot == kNil) {
    ++stats_.misses;
    if (m_misses_ != nullptr) m_misses_->inc();
    return nullptr;
  }
  if (!fresh(slots_[slot], now_ms)) {
    evict_slot(slot);
    ++stats_.expired;
    if (m_expired_ != nullptr) m_expired_->inc();
    return nullptr;
  }
  lru_unlink(slot);
  lru_push_front(slot);
  ++stats_.hits;
  if (m_hits_ != nullptr) m_hits_->inc();
  return &slots_[slot].body;
}

void CacheStore::store(std::uint64_t key, net::Buffer body, std::int64_t now_ms) {
  std::int64_t expire = ttl_ms_ <= 0 ? -1 : now_ms + ttl_ms_;
  std::uint32_t slot = find_slot(key);
  if (slot != kNil) {  // refill: replace body, refresh TTL, promote
    slots_[slot].body = std::move(body);
    slots_[slot].expire_ms = expire;
    lru_unlink(slot);
    lru_push_front(slot);
  } else {
    if (free_.empty()) {
      // Full: reclaim the LRU tail. A stale tail is an expiry, not a
      // capacity eviction — don't charge the working set for dead entries.
      bool stale = !fresh(slots_[lru_tail_], now_ms);
      evict_slot(lru_tail_);
      if (stale) {
        ++stats_.expired;
        if (m_expired_ != nullptr) m_expired_->inc();
      } else {
        ++stats_.evictions;
        if (m_evictions_ != nullptr) m_evictions_->inc();
      }
    }
    slot = free_.back();
    free_.pop_back();
    slots_[slot] = Entry{key, expire, std::move(body), kNil, kNil};
    index_insert(key, slot);
    lru_push_front(slot);
    ++live_;
  }
  ++stats_.fills;
  if (m_fills_ != nullptr) m_fills_->inc();
}

bool CacheStore::contains(std::uint64_t key, std::int64_t now_ms) const {
  std::uint32_t slot = find_slot(key);
  return slot != kNil && fresh(slots_[slot], now_ms);
}

// Default EnvApi store, created on first cache-primitive use. Defined here
// (with the destructor) so primitives.hpp only needs the forward declaration.
EnvApi::EnvApi() = default;
EnvApi::~EnvApi() = default;

CacheStore& EnvApi::cache() {
  if (default_cache_ == nullptr) default_cache_ = std::make_unique<CacheStore>();
  return *default_cache_;
}

}  // namespace asp::planp
