// PLAN-P lexer. Notable: dotted-quad IP literals ("131.254.60.81") are a
// single token (the language has no floating point, so digits+dots are
// unambiguous), and comments run from `--` to end of line, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "planp/ast.hpp"

namespace asp::planp {

enum class Tok {
  // literals / identifiers
  kInt,
  kString,
  kChar,
  kHost,
  kIdent,
  // keywords
  kVal,
  kFun,
  kChannel,
  kInitstate,
  kIs,
  kLet,
  kIn,
  kEnd,
  kIf,
  kThen,
  kElse,
  kTry,
  kWith,
  kRaise,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kHashTable,
  // punctuation / operators
  kLParen,
  kRParen,
  kComma,
  kSemi,
  kColon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kCaret,
  kEq,
  kNe,  // <>
  kLt,
  kLe,
  kGt,
  kGe,
  kHash,  // #
  kEof,
};

struct Token {
  Tok kind;
  Loc loc;
  std::string text;              // identifier / string body
  std::int64_t int_val = 0;      // kInt
  char char_val = 0;             // kChar
  asp::net::Ipv4Addr host_val;   // kHost
};

/// Tokenizes `src`. Throws PlanPError on malformed input.
std::vector<Token> lex(const std::string& src);

/// Human-readable token name (diagnostics).
std::string tok_name(Tok t);

}  // namespace asp::planp
