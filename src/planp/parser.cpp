#include "planp/parser.hpp"

#include <algorithm>
#include <unordered_map>

#include "planp/lexer.hpp"

namespace asp::planp {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Program program() {
    Program p;
    while (!at(Tok::kEof)) {
      if (at(Tok::kVal)) {
        p.decls.emplace_back(val_def());
      } else if (at(Tok::kFun)) {
        p.decls.emplace_back(fun_def());
      } else if (at(Tok::kChannel)) {
        p.decls.emplace_back(channel_def());
      } else {
        throw err("expected 'val', 'fun' or 'channel'");
      }
    }
    return p;
  }

  ExprPtr single_expr() {
    ExprPtr e = expr();
    expect(Tok::kEof, "trailing input after expression");
    return e;
  }

 private:
  // --- token plumbing -------------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t k = 1) const {
    return toks_[std::min(pos_ + k, toks_.size() - 1)];
  }
  bool at(Tok t) const { return cur().kind == t; }
  Token advance() { return toks_[pos_++]; }
  bool accept(Tok t) {
    if (at(t)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token expect(Tok t, const std::string& what) {
    if (!at(t)) {
      throw err("expected " + tok_name(t) + " (" + what + "), found " +
                tok_name(cur().kind));
    }
    return advance();
  }
  PlanPError err(const std::string& msg) const {
    return PlanPError("parse", cur().loc, msg);
  }

  // --- declarations ---------------------------------------------------------
  ValDef val_def() {
    Loc loc = cur().loc;
    expect(Tok::kVal, "val definition");
    std::string name = expect(Tok::kIdent, "val name").text;
    expect(Tok::kColon, "val type annotation");
    TypePtr t = type();
    expect(Tok::kEq, "val initializer");
    ExprPtr init = expr();
    return ValDef{std::move(name), std::move(t), std::move(init), loc};
  }

  FunDef fun_def() {
    Loc loc = cur().loc;
    expect(Tok::kFun, "fun definition");
    FunDef f;
    f.loc = loc;
    f.name = expect(Tok::kIdent, "function name").text;
    expect(Tok::kLParen, "parameter list");
    if (!at(Tok::kRParen)) {
      do {
        std::string pname = expect(Tok::kIdent, "parameter name").text;
        expect(Tok::kColon, "parameter type");
        f.params.emplace_back(std::move(pname), type());
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen, "parameter list");
    expect(Tok::kColon, "return type");
    f.ret = type();
    expect(Tok::kEq, "function body");
    f.body = expr();
    return f;
  }

  ChannelDef channel_def() {
    Loc loc = cur().loc;
    expect(Tok::kChannel, "channel definition");
    ChannelDef c;
    c.loc = loc;
    c.name = expect(Tok::kIdent, "channel name").text;
    expect(Tok::kLParen, "channel parameters");
    c.ps_name = expect(Tok::kIdent, "protocol state name").text;
    expect(Tok::kColon, "protocol state type");
    c.ps_type = type();
    expect(Tok::kComma, "channel parameters");
    c.ss_name = expect(Tok::kIdent, "channel state name").text;
    expect(Tok::kColon, "channel state type");
    c.ss_type = type();
    expect(Tok::kComma, "channel parameters");
    c.p_name = expect(Tok::kIdent, "packet name").text;
    expect(Tok::kColon, "packet type");
    c.packet_type = type();
    expect(Tok::kRParen, "channel parameters");
    if (accept(Tok::kInitstate)) c.init_state = expr();
    expect(Tok::kIs, "channel body");
    c.body = expr();
    return c;
  }

  // --- types ----------------------------------------------------------------
  TypePtr type() {
    std::vector<TypePtr> parts;
    parts.push_back(type_postfix());
    while (accept(Tok::kStar)) parts.push_back(type_postfix());
    if (parts.size() == 1) return parts[0];
    return Type::Tuple(std::move(parts));
  }

  TypePtr type_postfix() {
    if (at(Tok::kLParen)) {
      advance();
      TypePtr first = type();
      if (accept(Tok::kComma)) {
        TypePtr second = type();
        expect(Tok::kRParen, "hash_table type");
        expect(Tok::kHashTable, "hash_table type");
        TypePtr t = Type::Table(std::move(first), std::move(second));
        // Allow nested tables: ((k,v) hash_table, v2) would re-enter here,
        // but a postfix hash_table on a table is not meaningful; stop.
        return t;
      }
      expect(Tok::kRParen, "type");
      return first;
    }
    return type_atom();
  }

  TypePtr type_atom() {
    static const std::unordered_map<std::string, TypePtr (*)()> names = {
        {"int", &Type::Int},       {"bool", &Type::Bool},
        {"char", &Type::Char},     {"string", &Type::String},
        {"unit", &Type::Unit},     {"host", &Type::Host},
        {"blob", &Type::Blob},     {"ip", &Type::Ip},
        {"tcp", &Type::Tcp},       {"udp", &Type::Udp},
    };
    if (!at(Tok::kIdent)) throw err("expected a type");
    auto it = names.find(cur().text);
    if (it == names.end()) throw err("unknown type '" + cur().text + "'");
    advance();
    return it->second();
  }

  // --- expressions ----------------------------------------------------------
  ExprPtr expr() { return or_expr(); }

  ExprPtr or_expr() {
    ExprPtr lhs = and_expr();
    while (at(Tok::kOr)) {
      Loc loc = advance().loc;
      ExprPtr e = Expr::make(Expr::Kind::kOr, loc);
      e->args.push_back(std::move(lhs));
      e->args.push_back(and_expr());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr and_expr() {
    ExprPtr lhs = cmp_expr();
    while (at(Tok::kAnd)) {
      Loc loc = advance().loc;
      ExprPtr e = Expr::make(Expr::Kind::kAnd, loc);
      e->args.push_back(std::move(lhs));
      e->args.push_back(cmp_expr());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr cmp_expr() {
    ExprPtr lhs = add_expr();
    static const std::unordered_map<int, std::string> ops = {
        {static_cast<int>(Tok::kEq), "="},  {static_cast<int>(Tok::kNe), "<>"},
        {static_cast<int>(Tok::kLt), "<"},  {static_cast<int>(Tok::kLe), "<="},
        {static_cast<int>(Tok::kGt), ">"},  {static_cast<int>(Tok::kGe), ">="},
    };
    auto it = ops.find(static_cast<int>(cur().kind));
    if (it != ops.end()) {
      Loc loc = advance().loc;
      ExprPtr e = Expr::make(Expr::Kind::kBinOp, loc);
      e->name = it->second;
      e->args.push_back(std::move(lhs));
      e->args.push_back(add_expr());
      return e;
    }
    return lhs;
  }

  ExprPtr add_expr() {
    ExprPtr lhs = mul_expr();
    for (;;) {
      std::string op;
      if (at(Tok::kPlus)) op = "+";
      else if (at(Tok::kMinus)) op = "-";
      else if (at(Tok::kCaret)) op = "^";
      else break;
      Loc loc = advance().loc;
      ExprPtr e = Expr::make(Expr::Kind::kBinOp, loc);
      e->name = op;
      e->args.push_back(std::move(lhs));
      e->args.push_back(mul_expr());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr mul_expr() {
    ExprPtr lhs = unary_expr();
    for (;;) {
      std::string op;
      if (at(Tok::kStar)) op = "*";
      else if (at(Tok::kSlash)) op = "/";
      else if (at(Tok::kPercent)) op = "%";
      else break;
      Loc loc = advance().loc;
      ExprPtr e = Expr::make(Expr::Kind::kBinOp, loc);
      e->name = op;
      e->args.push_back(std::move(lhs));
      e->args.push_back(unary_expr());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr unary_expr() {
    if (at(Tok::kNot)) {
      Loc loc = advance().loc;
      ExprPtr e = Expr::make(Expr::Kind::kUnOp, loc);
      e->name = "not";
      e->args.push_back(unary_expr());
      return e;
    }
    if (at(Tok::kMinus)) {
      Loc loc = advance().loc;
      ExprPtr e = Expr::make(Expr::Kind::kUnOp, loc);
      e->name = "-";
      e->args.push_back(unary_expr());
      return e;
    }
    if (at(Tok::kHash)) {
      Loc loc = advance().loc;
      Token n = expect(Tok::kInt, "projection index");
      ExprPtr e = Expr::make(Expr::Kind::kProj, loc);
      e->proj_index = static_cast<int>(n.int_val);
      e->args.push_back(unary_expr());
      return e;
    }
    return primary();
  }

  ExprPtr primary() {
    Loc loc = cur().loc;
    switch (cur().kind) {
      case Tok::kInt: {
        ExprPtr e = Expr::make(Expr::Kind::kIntLit, loc);
        e->int_val = advance().int_val;
        return e;
      }
      case Tok::kTrue:
      case Tok::kFalse: {
        ExprPtr e = Expr::make(Expr::Kind::kBoolLit, loc);
        e->bool_val = advance().kind == Tok::kTrue;
        return e;
      }
      case Tok::kChar: {
        ExprPtr e = Expr::make(Expr::Kind::kCharLit, loc);
        e->char_val = advance().char_val;
        return e;
      }
      case Tok::kString: {
        ExprPtr e = Expr::make(Expr::Kind::kStringLit, loc);
        e->str_val = advance().text;
        return e;
      }
      case Tok::kHost: {
        ExprPtr e = Expr::make(Expr::Kind::kHostLit, loc);
        e->host_val = advance().host_val;
        return e;
      }
      case Tok::kRaise: {
        advance();
        ExprPtr e = Expr::make(Expr::Kind::kRaise, loc);
        e->str_val = expect(Tok::kString, "exception name").text;
        return e;
      }
      case Tok::kTry: {
        advance();
        ExprPtr e = Expr::make(Expr::Kind::kTry, loc);
        e->args.push_back(expr());
        expect(Tok::kWith, "exception handler");
        e->args.push_back(expr());
        return e;
      }
      case Tok::kIf: {
        advance();
        ExprPtr e = Expr::make(Expr::Kind::kIf, loc);
        e->args.push_back(expr());
        expect(Tok::kThen, "if-then");
        e->args.push_back(expr());
        expect(Tok::kElse, "if-else");
        e->args.push_back(expr());
        return e;
      }
      case Tok::kLet:
        return let_expr();
      case Tok::kLParen:
        return paren_expr();
      case Tok::kIdent:
        return ident_expr();
      default:
        throw err("expected an expression, found " + tok_name(cur().kind));
    }
  }

  ExprPtr let_expr() {
    Loc loc = cur().loc;
    expect(Tok::kLet, "let expression");
    // One or more `val x : t = e` bindings, desugared into nested kLet.
    struct Binding {
      Loc loc;
      std::string name;
      TypePtr type;
      ExprPtr init;
    };
    std::vector<Binding> bindings;
    while (at(Tok::kVal)) {
      Loc bloc = advance().loc;
      std::string name = expect(Tok::kIdent, "binding name").text;
      expect(Tok::kColon, "binding type");
      TypePtr t = type();
      expect(Tok::kEq, "binding initializer");
      bindings.push_back(Binding{bloc, std::move(name), std::move(t), expr()});
    }
    if (bindings.empty()) throw err("let requires at least one 'val' binding");
    expect(Tok::kIn, "let body");
    ExprPtr body = expr();
    expect(Tok::kEnd, "let end");
    for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
      ExprPtr e = Expr::make(Expr::Kind::kLet, it->loc);
      e->name = std::move(it->name);
      e->decl_type = std::move(it->type);
      e->args.push_back(std::move(it->init));
      e->args.push_back(std::move(body));
      body = std::move(e);
    }
    if (loc.line != 0) body->loc = loc;
    return body;
  }

  ExprPtr paren_expr() {
    Loc loc = cur().loc;
    expect(Tok::kLParen, "parenthesized expression");
    if (accept(Tok::kRParen)) return Expr::make(Expr::Kind::kUnitLit, loc);
    ExprPtr first = expr();
    if (at(Tok::kSemi)) {
      ExprPtr e = Expr::make(Expr::Kind::kSeq, loc);
      e->args.push_back(std::move(first));
      while (accept(Tok::kSemi)) e->args.push_back(expr());
      expect(Tok::kRParen, "sequence");
      return e;
    }
    if (at(Tok::kComma)) {
      ExprPtr e = Expr::make(Expr::Kind::kTuple, loc);
      e->args.push_back(std::move(first));
      while (accept(Tok::kComma)) e->args.push_back(expr());
      expect(Tok::kRParen, "tuple");
      return e;
    }
    expect(Tok::kRParen, "parenthesized expression");
    return first;
  }

  ExprPtr ident_expr() {
    Token id = advance();
    if (!at(Tok::kLParen)) {
      ExprPtr e = Expr::make(Expr::Kind::kVar, id.loc);
      e->name = id.text;
      return e;
    }
    // Call syntax. OnRemote/OnNeighbor/deliver/drop become kSend nodes.
    advance();  // '('
    if (id.text == "OnRemote" || id.text == "OnNeighbor") {
      ExprPtr e = Expr::make(Expr::Kind::kSend, id.loc);
      e->send_kind = id.text == "OnRemote" ? SendKind::kOnRemote : SendKind::kOnNeighbor;
      e->name = expect(Tok::kIdent, "channel name").text;
      expect(Tok::kComma, "packet argument");
      e->args.push_back(expr());
      expect(Tok::kRParen, id.text);
      return e;
    }
    if (id.text == "deliver") {
      ExprPtr e = Expr::make(Expr::Kind::kSend, id.loc);
      e->send_kind = SendKind::kDeliver;
      e->args.push_back(expr());
      expect(Tok::kRParen, "deliver");
      return e;
    }
    if (id.text == "drop") {
      ExprPtr e = Expr::make(Expr::Kind::kSend, id.loc);
      e->send_kind = SendKind::kDrop;
      expect(Tok::kRParen, "drop");
      return e;
    }
    ExprPtr e = Expr::make(Expr::Kind::kCall, id.loc);
    e->name = id.text;
    if (!at(Tok::kRParen)) {
      do {
        e->args.push_back(expr());
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen, "call arguments");
    return e;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

int count_lines(const std::string& src) {
  int lines = 0;
  bool nonblank = false;
  for (char c : src) {
    if (c == '\n') {
      if (nonblank) ++lines;
      nonblank = false;
    } else if (c != ' ' && c != '\t' && c != '\r') {
      nonblank = true;
    }
  }
  if (nonblank) ++lines;
  return lines;
}

}  // namespace

Program parse(const std::string& source) {
  Parser p(lex(source));
  Program prog = p.program();
  prog.source_lines = count_lines(source);
  return prog;
}

ExprPtr parse_expr(const std::string& source) {
  Parser p(lex(source));
  return p.single_expr();
}

}  // namespace asp::planp
